//===- bench/reclamation_cost.cpp - 4-way reclamation comparison ---------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// The paper's Java implementations lean on the GC; its technical
/// report evaluates C++ translations *without* memory management. This
/// bench quantifies what safe reclamation costs each algorithm on the
/// contended Fig. 1 workload where retirement traffic is highest, one
/// panel per list with the leaky no-op domain as the ceiling:
///
///  - vbl / lazy: leaky vs EBR vs VBR. EBR pays one fence-bearing
///    announce per operation plus amortized collection; VBR pays an
///    acquire clock load plus rare birth-check restarts, and its
///    immediate in-place reuse hands updaters cache-warm nodes — the
///    expectation (EXPERIMENTS.md) is that VBR closes most of the
///    EBR-to-leaky gap on update-heavy settings.
///  - harris-michael: leaky vs EBR vs HP, the per-hop protect cost
///    against the per-op announce.
///
//===----------------------------------------------------------------------===//

#include "harness/BenchJson.h"
#include "harness/TablePrinter.h"
#include "support/CommandLine.h"

using namespace vbl;
using namespace vbl::harness;

int main(int Argc, char **Argv) {
  FlagSet Flags("Reclamation cost: epoch-based vs leaky");
  Flags.addUnsignedList("threads", {1, 2, 4}, "thread counts");
  Flags.addInt("range", 50, "key range");
  Flags.addInt("update-percent", 20, "percentage of updates");
  Flags.addInt("duration-ms", 80, "measured window per repetition");
  Flags.addInt("warmup-ms", 25, "warm-up per window");
  Flags.addInt("repeats", 2, "repetitions per point");
  Flags.addInt("seed", 42, "base RNG seed");
  Flags.addString("json", "", "optional path for vbl-bench-v1 records");
  Flags.addBool("stats", false,
                "collect internal counters and report them per structure");
  if (!Flags.parse(Argc, Argv))
    return 1;
  setStatsCollection(Flags.getBool("stats"));

  WorkloadConfig Base;
  Base.UpdatePercent =
      static_cast<unsigned>(Flags.getInt("update-percent"));
  Base.KeyRange = Flags.getInt("range");
  Base.DurationMs = static_cast<unsigned>(Flags.getInt("duration-ms"));
  Base.WarmupMs = static_cast<unsigned>(Flags.getInt("warmup-ms"));
  Base.Repeats = static_cast<unsigned>(Flags.getInt("repeats"));
  Base.Seed = static_cast<uint64_t>(Flags.getInt("seed"));

  // Leaky first in every panel: it is the no-reclamation ceiling the
  // managed domains are measured against. HP only exists for
  // harris-michael (the lock-based lists have no per-hop protect
  // point), so that panel swaps VBR's column for HP's.
  struct PanelSpec {
    const char *Title;
    std::vector<std::string> Algorithms;
  };
  const std::vector<PanelSpec> Panels = {
      {"vbl: leaky vs EBR vs VBR", {"vbl-leaky", "vbl", "vbl-vbr"}},
      {"lazy: leaky vs EBR vs VBR", {"lazy-leaky", "lazy", "lazy-vbr"}},
      {"vbl-chunk: leaky vs EBR vs VBR",
       {"vbl-chunk-leaky", "vbl-chunk", "vbl-chunk-vbr"}},
      {"harris-michael: leaky vs EBR vs HP",
       {"harris-michael-leaky", "harris-michael", "harris-michael-hp"}},
  };
  BenchJsonReport Report;
  Report.setContext("bench_binary", "reclamation_cost");
  for (const PanelSpec &Spec : Panels) {
    Panel P(Spec.Title, Spec.Algorithms, Flags.getUnsignedList("threads"));
    P.measureAll(Base);
    P.print();
    P.appendJson(Report, Base);
  }
  if (!Flags.getString("json").empty())
    if (!Report.writeFile(Flags.getString("json")))
      return 1;
  return 0;
}
