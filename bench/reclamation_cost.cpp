//===- bench/reclamation_cost.cpp - EBR vs leaky (tech-report C++) -------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// The paper's Java implementations lean on the GC; its technical
/// report evaluates C++ translations *without* memory management. This
/// bench quantifies what safe reclamation costs each algorithm: the
/// epoch-based default vs the leaky no-op domain, on the contended
/// Fig. 1 workload where retirement traffic is highest. The expected
/// shape: EBR costs a few percent (one announce per operation plus
/// amortized collection), identically across algorithms — so the
/// paper's leak-based C++ comparison carries over to a
/// production-reclaimed build.
///
//===----------------------------------------------------------------------===//

#include "harness/BenchJson.h"
#include "harness/TablePrinter.h"
#include "support/CommandLine.h"

using namespace vbl;
using namespace vbl::harness;

int main(int Argc, char **Argv) {
  FlagSet Flags("Reclamation cost: epoch-based vs leaky");
  Flags.addUnsignedList("threads", {1, 2, 4}, "thread counts");
  Flags.addInt("range", 50, "key range");
  Flags.addInt("update-percent", 20, "percentage of updates");
  Flags.addInt("duration-ms", 80, "measured window per repetition");
  Flags.addInt("warmup-ms", 25, "warm-up per window");
  Flags.addInt("repeats", 2, "repetitions per point");
  Flags.addInt("seed", 42, "base RNG seed");
  Flags.addString("json", "", "optional path for vbl-bench-v1 records");
  Flags.addBool("stats", false,
                "collect internal counters and report them per structure");
  if (!Flags.parse(Argc, Argv))
    return 1;
  setStatsCollection(Flags.getBool("stats"));

  WorkloadConfig Base;
  Base.UpdatePercent =
      static_cast<unsigned>(Flags.getInt("update-percent"));
  Base.KeyRange = Flags.getInt("range");
  Base.DurationMs = static_cast<unsigned>(Flags.getInt("duration-ms"));
  Base.WarmupMs = static_cast<unsigned>(Flags.getInt("warmup-ms"));
  Base.Repeats = static_cast<unsigned>(Flags.getInt("repeats"));
  Base.Seed = static_cast<uint64_t>(Flags.getInt("seed"));

  const std::vector<std::pair<const char *, const char *>> Pairs = {
      {"vbl", "vbl-leaky"},
      {"lazy", "lazy-leaky"},
      {"harris-michael", "harris-michael-leaky"},
  };
  BenchJsonReport Report;
  Report.setContext("bench_binary", "reclamation_cost");
  for (const auto &[Reclaimed, Leaky] : Pairs) {
    Panel P(std::string(Reclaimed) + ": EBR vs leaky",
            {Leaky, Reclaimed}, Flags.getUnsignedList("threads"));
    P.measureAll(Base);
    P.print();
    P.appendJson(Report, Base);
  }
  if (!Flags.getString("json").empty())
    if (!Report.writeFile(Flags.getString("json")))
      return 1;
  return 0;
}
