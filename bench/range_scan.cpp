//===- bench/range_scan.cpp - Range-scan mixes across substrates ---------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Where do chunked scans pay? A flat list's rangeQuery chases one
/// pointer per key; the chunk list collects up to K keys per cache
/// line under one seqlock-validated window. This sweep mixes point ops
/// with range scans — point-only (scan 0%), mixed (10%) and scan-heavy
/// (50%) — over `vbl-chunk` (K=7), `vbl-chunk-k15`, flat `vbl`,
/// `harris-michael` (the lock-free mark-aware scan) and
/// `skiplist-lazy`, plus a scan-length sweep at fixed range. Expected
/// shape: at small windows the scan is dominated by the routed entry
/// and all substrates tie; as windows grow the chunk layout pulls
/// ahead roughly K-fold on scan-heavy mixes. With --stats the records
/// carry scan.retries / scan.fallbacks / scan.keys_returned, so the
/// optimistic window's retry rate under update pressure is visible in
/// the same document.
///
//===----------------------------------------------------------------------===//

#include "harness/TablePrinter.h"
#include "support/Barrier.h"
#include "support/CommandLine.h"
#include "support/Timing.h"

#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

using namespace vbl;
using namespace vbl::harness;

namespace {

struct ScanConfig {
  /// Percentage of operations that are range scans; the rest follow
  /// the usual update/contains split of WorkloadConfig::UpdatePercent.
  unsigned ScanPercent = 10;
  /// Keys spanned by each scan window [Start, Start + Length - 1].
  SetKey ScanLength = 256;
};

struct Padded {
  alignas(64) uint64_t Value = 0;
};

/// One measured window: the Runner protocol (barrier, warm-up, timed
/// window) with scans drawn into the op stream. Scans count as one op
/// each — the mixes are compared within a scan percent, never across.
RunResult runScanOnce(ConcurrentSet &Set, const WorkloadConfig &Config,
                      const ScanConfig &Scan) {
  const OpPicker Picker(Config.UpdatePercent);
  SpinBarrier StartBarrier(Config.Threads + 1);
  std::atomic<bool> WarmupDone{false};
  std::atomic<bool> Stop{false};
  std::vector<Padded> Counters(Config.Threads);

  std::vector<std::thread> Threads;
  Threads.reserve(Config.Threads);
  for (unsigned T = 0; T != Config.Threads; ++T) {
    Threads.emplace_back([&, T] {
      Xoshiro256 Rng(Config.Seed + 7919 * (T + 1));
      const auto Range = static_cast<uint64_t>(Config.KeyRange);
      std::vector<SetKey> ScanOut;
      const auto OneOp = [&] {
        const SetKey Key = static_cast<SetKey>(Rng.nextBounded(Range));
        if (Rng.nextBounded(100) < Scan.ScanPercent) {
          ScanOut.clear();
          Set.rangeQuery(Key, Key + Scan.ScanLength - 1, ScanOut);
          return;
        }
        switch (Picker.pick(Rng)) {
        case SetOp::Insert:
          Set.insert(Key);
          break;
        case SetOp::Remove:
          Set.remove(Key);
          break;
        case SetOp::Contains:
          Set.contains(Key);
          break;
        case SetOp::RangeQuery:
          vbl_unreachable("OpPicker yields point ops only");
        }
      };
      StartBarrier.arriveAndWait();
      while (!WarmupDone.load(std::memory_order_acquire))
        OneOp();
      uint64_t Ops = 0;
      while (!Stop.load(std::memory_order_acquire)) {
        OneOp();
        ++Ops;
      }
      Counters[T].Value = Ops;
    });
  }

  StartBarrier.arriveAndWait();
  std::this_thread::sleep_for(std::chrono::milliseconds(Config.WarmupMs));
  const uint64_t MeasureStart = nowNanos();
  WarmupDone.store(true, std::memory_order_release);
  std::this_thread::sleep_for(
      std::chrono::milliseconds(Config.DurationMs));
  Stop.store(true, std::memory_order_release);
  const uint64_t MeasureEnd = nowNanos();
  for (auto &Thread : Threads)
    Thread.join();

  RunResult Result;
  for (const Padded &Counter : Counters)
    Result.TotalOps += Counter.Value;
  Result.Seconds = static_cast<double>(MeasureEnd - MeasureStart) * 1e-9;
  Result.OpsPerSecond =
      static_cast<double>(Result.TotalOps) / Result.Seconds;
  Result.InvariantsHeld = Set.checkInvariants();
  return Result;
}

/// Repeats fresh structures, Runner-style; aborts on a broken
/// invariant so corrupt numbers are never published.
SampleStats measureScans(const std::string &Algorithm,
                         const WorkloadConfig &Config,
                         const ScanConfig &Scan,
                         stats::Snapshot &StatsDelta) {
  const stats::Snapshot Before = statsCollectionEnabled()
                                     ? stats::snapshotAll()
                                     : stats::Snapshot();
  SampleStats Samples;
  for (unsigned Rep = 0; Rep != Config.Repeats; ++Rep) {
    auto Set = makeSet(Algorithm);
    if (!Set) {
      std::fprintf(stderr, "error: unknown structure '%s'\n",
                   Algorithm.c_str());
      std::abort();
    }
    WorkloadConfig RepConfig = Config;
    RepConfig.Seed = Config.Seed + 1000003 * Rep;
    prefill(*Set, Config.KeyRange, RepConfig.Seed);
    const RunResult Result = runScanOnce(*Set, RepConfig, Scan);
    if (!Result.InvariantsHeld) {
      std::fprintf(stderr, "error: %s broke invariants under scans\n",
                   Algorithm.c_str());
      std::abort();
    }
    Samples.add(Result.OpsPerSecond);
  }
  StatsDelta = statsCollectionEnabled()
                   ? stats::snapshotAll().delta(Before)
                   : stats::Snapshot();
  return Samples;
}

} // namespace

int main(int Argc, char **Argv) {
  FlagSet Flags("Range-scan mixes: chunked vs flat vs lock-free scans");
  Flags.addUnsignedList("threads", {1, 4}, "thread counts to sweep");
  Flags.addUnsignedList("ranges", {1024, 8192}, "key ranges to sweep");
  Flags.addUnsignedList("scan-percents", {0, 10, 50},
                        "scan share per mix: 0 = point-only baseline, "
                        "10 = mixed, 50 = scan-heavy");
  Flags.addUnsignedList("scan-lengths", {256},
                        "keys per scan window; sweep to locate where "
                        "the chunk layout starts paying");
  Flags.addInt("update-percent", 20,
               "updates within the non-scan remainder");
  Flags.addInt("duration-ms", 80, "measured window per repetition");
  Flags.addInt("warmup-ms", 25, "warm-up before each window");
  Flags.addInt("repeats", 2, "repetitions per point");
  Flags.addInt("seed", 42, "base RNG seed");
  Flags.addString("structures",
                  "vbl-chunk,vbl,vbl-chunk-k15,harris-michael,"
                  "skiplist-lazy",
                  "comma-separated registry names to sweep");
  Flags.addString("csv", "", "optional path for the raw CSV series");
  Flags.addString("json", "", "optional path for vbl-bench-v1 records");
  Flags.addBool("stats", false,
                "collect scan.{retries,fallbacks,keys_returned} and "
                "report them per structure");
  if (!Flags.parse(Argc, Argv))
    return 1;
  setStatsCollection(Flags.getBool("stats"));

  std::vector<std::string> Structures;
  {
    const std::string &Raw = Flags.getString("structures");
    size_t Pos = 0;
    while (Pos <= Raw.size()) {
      const size_t Comma = Raw.find(',', Pos);
      Structures.push_back(Raw.substr(
          Pos, Comma == std::string::npos ? Comma : Comma - Pos));
      if (Comma == std::string::npos)
        break;
      Pos = Comma + 1;
    }
  }
  BenchJsonReport Report;
  Report.setContext("bench_binary", "range_scan");
  CsvWriter Csv = Panel::makeCsv();

  for (unsigned Range : Flags.getUnsignedList("ranges")) {
    for (unsigned ScanPercent : Flags.getUnsignedList("scan-percents")) {
      for (unsigned ScanLength : Flags.getUnsignedList("scan-lengths")) {
        // The point-only baseline is scan-length-independent; emit it
        // once per range, under the first length only.
        if (ScanPercent == 0 &&
            ScanLength != Flags.getUnsignedList("scan-lengths").front())
          continue;
        WorkloadConfig Base;
        Base.UpdatePercent =
            static_cast<unsigned>(Flags.getInt("update-percent"));
        Base.KeyRange = Range;
        Base.DurationMs =
            static_cast<unsigned>(Flags.getInt("duration-ms"));
        Base.WarmupMs = static_cast<unsigned>(Flags.getInt("warmup-ms"));
        Base.Repeats = static_cast<unsigned>(Flags.getInt("repeats"));
        Base.Seed = static_cast<uint64_t>(Flags.getInt("seed"));
        ScanConfig Scan;
        Scan.ScanPercent = ScanPercent;
        Scan.ScanLength = ScanLength;

        char Title[96];
        if (ScanPercent == 0)
          std::snprintf(Title, sizeof(Title),
                        "range_scan point-only range %u", Range);
        else
          std::snprintf(Title, sizeof(Title),
                        "range_scan scan%u len%u range %u", ScanPercent,
                        ScanLength, Range);
        // First/second form the printed ratio column: vbl-chunk / vbl
        // is the chunked-scan speedup under test.
        Panel P(Title, Structures, Flags.getUnsignedList("threads"));
        for (unsigned Threads : Flags.getUnsignedList("threads")) {
          WorkloadConfig Config = Base;
          Config.Threads = Threads;
          for (const std::string &Algorithm : Structures) {
            stats::Snapshot Delta;
            P.setResult(Threads, Algorithm,
                        measureScans(Algorithm, Config, Scan, Delta));
            if (!Delta.empty())
              P.setStats(Threads, Algorithm, Delta);
          }
        }
        P.print();
        P.appendCsv(Csv);
        P.appendJson(Report, Base);
      }
    }
  }

  std::printf("\n(vbl-chunk/vbl is the chunked-scan speedup; it should "
              "grow with scan length and scan share — the point-only "
              "panels pin the chunk protocol's baseline cost)\n");
  if (!Flags.getString("csv").empty() &&
      !Csv.writeFile(Flags.getString("csv")))
    std::fprintf(stderr, "warning: could not write %s\n",
                 Flags.getString("csv").c_str());
  if (!Flags.getString("json").empty() &&
      !Report.writeFile(Flags.getString("json")))
    return 1;
  return 0;
}
