//===- bench/unrolled_crossover.cpp - Flat VBL vs unrolled chunks --------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Where does unrolling pay? The chunked VBL variants trade per-key
/// pointer chases for K keys per cache line, at the cost of chunk
/// maintenance (split/compact/unlink) on updates. This sweep pits flat
/// `vbl` and the O(log n) `skiplist-lazy` against `vbl-chunk-k1`
/// (chunk protocol, flat-like layout — the unrolling ablation),
/// `vbl-chunk` (K=7, one 64-byte key line) and `vbl-chunk-k15` (two
/// key lines) across ranges 128..64k under a read-heavy mix. Expected
/// shape: chunks ~match flat VBL on tiny hot sets, pull ahead roughly
/// K-fold as the range grows past the cache, and eventually lose to
/// the skip list's O(log n) — the two crossovers the ratio columns
/// locate. The K=1 ablation separates layout wins from protocol costs.
///
//===----------------------------------------------------------------------===//

#include "harness/TablePrinter.h"
#include "support/Barrier.h"
#include "support/CommandLine.h"
#include "support/Stats.h"
#include "support/Timing.h"

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace vbl;
using namespace vbl::harness;

namespace {

/// The mixed hot/cold workload the adaptive chunk shapes are for, which
/// the uniform steady-state harness cannot express: a small hot region
/// takes pure insert/remove churn (validation aborts pile heat onto its
/// chunks, so the adaptive list splits them toward K_eff~1), while the
/// large cold region is read-dominated with a trickle of updates (cold
/// half-empty chunks merge toward dense cache lines). Static K pays one
/// shape for both regions; the adaptive list gets to pay each region
/// its own.
double runHotCold(ConcurrentSet &Set, unsigned Threads, SetKey Range,
                  SetKey HotKeys, unsigned HotPercent, unsigned DurationMs,
                  uint64_t Seed) {
  const uint64_t WindowNs = uint64_t{DurationMs} * 1000000ULL;
  SpinBarrier Barrier(Threads);
  std::vector<std::thread> Workers;
  std::vector<uint64_t> Ops(Threads, 0);
  Workers.reserve(Threads);
  for (unsigned T = 0; T != Threads; ++T) {
    Workers.emplace_back([&, T] {
      Xoshiro256 Rng(Seed + 0x9e3779b9ULL * (T + 1));
      Barrier.arriveAndWait();
      const uint64_t Start = nowNanos();
      uint64_t Local = 0;
      while (nowNanos() - Start < WindowNs) {
        for (int I = 0; I != 64; ++I) {
          if (Rng.nextPercent(HotPercent)) {
            // Hot region: pure update churn on few keys.
            const SetKey Key = Rng.nextBounded(HotKeys);
            if (Rng.nextBounded(2) == 0)
              Set.insert(Key);
            else
              Set.remove(Key);
          } else {
            // Cold region: 90% contains, 10% updates — enough churn
            // to keep occupancy drifting across the merge threshold.
            const SetKey Key = HotKeys + Rng.nextBounded(Range - HotKeys);
            const uint64_t Roll = Rng.nextBounded(100);
            if (Roll >= 10)
              Set.contains(Key);
            else if (Roll >= 5)
              Set.insert(Key);
            else
              Set.remove(Key);
          }
          ++Local;
        }
      }
      Ops[T] = Local;
    });
  }
  for (std::thread &Worker : Workers)
    Worker.join();
  uint64_t Total = 0;
  for (uint64_t N : Ops)
    Total += N;
  return static_cast<double>(Total) / (WindowNs * 1e-9);
}

/// measurePoint's protocol (Repeats fresh prefilled structures, median)
/// over the hot/cold runner.
BenchRecord measureHotCold(const std::string &Structure, unsigned Threads,
                           SetKey Range, SetKey HotKeys,
                           unsigned HotPercent, unsigned DurationMs,
                           unsigned Repeats, uint64_t Seed) {
  BenchRecord Record;
  Record.Bench = "hotcold_adaptive";
  Record.Structure = Structure;
  Record.Threads = Threads;
  Record.KeyRange = Range;
  Record.UpdatePercent = HotPercent;
  Record.Repeats = Repeats;

  const stats::Snapshot Before = stats::snapshotAll();
  SampleStats Throughput;
  for (unsigned R = 0; R != Repeats; ++R) {
    auto Set = makeSet(Structure);
    if (!Set) {
      std::fprintf(stderr, "error: unknown algorithm '%s'\n",
                   Structure.c_str());
      std::abort();
    }
    prefill(*Set, Range, Seed + R);
    Throughput.add(runHotCold(*Set, Threads, Range, HotKeys, HotPercent,
                              DurationMs, Seed + R));
  }
  Record.ThroughputOpsPerSec = Throughput.percentile(50);
  Record.ThroughputStddev = Throughput.stddev();
  if (statsCollectionEnabled()) {
    Record.HasStats = true;
    Record.Stats = stats::snapshotAll().delta(Before);
  }
  return Record;
}

} // namespace

int main(int Argc, char **Argv) {
  FlagSet Flags("Unrolled chunk crossover: flat VBL vs K in {1,7,15}");
  Flags.addUnsignedList("threads", {1, 4}, "thread counts to sweep");
  Flags.addUnsignedList("ranges", {128, 1024, 8192, 65536},
                        "key ranges to sweep");
  Flags.addInt("update-percent", 10,
               "percentage of updates (read-heavy by default)");
  Flags.addInt("duration-ms", 80, "measured window per repetition");
  Flags.addInt("warmup-ms", 25, "warm-up before each window");
  Flags.addInt("repeats", 2, "repetitions per point");
  Flags.addInt("seed", 42, "base RNG seed");
  Flags.addString("csv", "", "optional path for the raw CSV series");
  Flags.addString("json", "", "optional path for vbl-bench-v1 records");
  Flags.addBool("stats", false,
                "collect internal counters and report them per structure");
  Flags.addBool("hotcold", false,
                "also run the mixed hot/cold panel (adaptive vs static K)");
  Flags.addInt("hotcold-range", 8192, "key range for the hot/cold panel");
  Flags.addInt("hot-keys", 64, "size of the contended hot region");
  Flags.addInt("hot-percent", 50,
               "share of operations aimed at the hot region");
  if (!Flags.parse(Argc, Argv))
    return 1;
  setStatsCollection(Flags.getBool("stats"));

  BenchJsonReport Report;
  Report.setContext("bench_binary", "unrolled_crossover");
  CsvWriter Csv = Panel::makeCsv();

  for (unsigned Range : Flags.getUnsignedList("ranges")) {
    WorkloadConfig Base;
    Base.UpdatePercent =
        static_cast<unsigned>(Flags.getInt("update-percent"));
    Base.KeyRange = Range;
    Base.DurationMs = static_cast<unsigned>(Flags.getInt("duration-ms"));
    Base.WarmupMs = static_cast<unsigned>(Flags.getInt("warmup-ms"));
    Base.Repeats = static_cast<unsigned>(Flags.getInt("repeats"));
    Base.Seed = static_cast<uint64_t>(Flags.getInt("seed"));

    char Title[96];
    std::snprintf(Title, sizeof(Title), "unrolled range %u, %u%% updates",
                  Range, Base.UpdatePercent);
    // First/second form the printed ratio column: vbl-chunk / vbl is
    // the unrolling speedup under test.
    // vbl-chunk-adaptive rides the uniform sweep too: under uniform
    // keys its shapes should settle near static K=7, so its column
    // doubles as the adaptivity-overhead ablation.
    Panel P(Title,
            {"vbl-chunk", "vbl", "vbl-chunk-k1", "vbl-chunk-k15",
             "vbl-chunk-adaptive", "skiplist-lazy"},
            Flags.getUnsignedList("threads"));
    P.measureAll(Base);
    P.print();
    P.appendCsv(Csv);
    P.appendJson(Report, Base);
  }

  std::printf("\n(vbl-chunk/vbl is the unrolling speedup; it should "
              "grow with range until skiplist-lazy's O(log n) takes "
              "over)\n");

  if (Flags.getBool("hotcold")) {
    const SetKey Range =
        static_cast<SetKey>(Flags.getInt("hotcold-range"));
    const SetKey HotKeys = static_cast<SetKey>(Flags.getInt("hot-keys"));
    const unsigned HotPercent =
        static_cast<unsigned>(Flags.getInt("hot-percent"));
    const unsigned DurationMs =
        static_cast<unsigned>(Flags.getInt("duration-ms"));
    const unsigned Repeats = static_cast<unsigned>(Flags.getInt("repeats"));
    const uint64_t Seed = static_cast<uint64_t>(Flags.getInt("seed"));
    const std::vector<std::string> HotColdStructures = {
        "vbl-chunk-adaptive", "vbl-chunk", "vbl-chunk-k1", "vbl-chunk-k15"};
    for (unsigned Threads : Flags.getUnsignedList("threads")) {
      std::printf("\n== hotcold: %u thread(s), range %llu, hot region "
                  "%llu keys taking %u%% of ops ==\n",
                  Threads, static_cast<unsigned long long>(Range),
                  static_cast<unsigned long long>(HotKeys), HotPercent);
      double Adaptive = 0.0;
      double BestStatic = 0.0;
      std::vector<BenchRecord> RowRecords;
      for (const std::string &Structure : HotColdStructures) {
        const BenchRecord Record =
            measureHotCold(Structure, Threads, Range, HotKeys, HotPercent,
                           DurationMs, Repeats, Seed);
        std::printf("%22s %12.3f Mops\n", Structure.c_str(),
                    Record.ThroughputOpsPerSec * 1e-6);
        if (Structure == "vbl-chunk-adaptive")
          Adaptive = Record.ThroughputOpsPerSec;
        else if (Record.ThroughputOpsPerSec > BestStatic)
          BestStatic = Record.ThroughputOpsPerSec;
        RowRecords.push_back(Record);
        Report.add(Record);
      }
      if (BestStatic > 0)
        std::printf("%22s %13.2fx\n", "adaptive/best-static",
                    Adaptive / BestStatic);
      for (const BenchRecord &Record : RowRecords) {
        if (!Record.HasStats || Record.Stats.empty())
          continue;
        std::printf("  -- stats: %s --\n", Record.Structure.c_str());
        std::fputs(stats::renderTable(Record.Stats, "    ").c_str(),
                   stdout);
      }
    }
  }
  if (!Flags.getString("csv").empty() &&
      !Csv.writeFile(Flags.getString("csv")))
    std::fprintf(stderr, "warning: could not write %s\n",
                 Flags.getString("csv").c_str());
  if (!Flags.getString("json").empty() &&
      !Report.writeFile(Flags.getString("json")))
    return 1;
  return 0;
}
