//===- bench/unrolled_crossover.cpp - Flat VBL vs unrolled chunks --------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Where does unrolling pay? The chunked VBL variants trade per-key
/// pointer chases for K keys per cache line, at the cost of chunk
/// maintenance (split/compact/unlink) on updates. This sweep pits flat
/// `vbl` and the O(log n) `skiplist-lazy` against `vbl-chunk-k1`
/// (chunk protocol, flat-like layout — the unrolling ablation),
/// `vbl-chunk` (K=7, one 64-byte key line) and `vbl-chunk-k15` (two
/// key lines) across ranges 128..64k under a read-heavy mix. Expected
/// shape: chunks ~match flat VBL on tiny hot sets, pull ahead roughly
/// K-fold as the range grows past the cache, and eventually lose to
/// the skip list's O(log n) — the two crossovers the ratio columns
/// locate. The K=1 ablation separates layout wins from protocol costs.
///
//===----------------------------------------------------------------------===//

#include "harness/TablePrinter.h"
#include "support/CommandLine.h"

#include <cstdio>

using namespace vbl;
using namespace vbl::harness;

int main(int Argc, char **Argv) {
  FlagSet Flags("Unrolled chunk crossover: flat VBL vs K in {1,7,15}");
  Flags.addUnsignedList("threads", {1, 4}, "thread counts to sweep");
  Flags.addUnsignedList("ranges", {128, 1024, 8192, 65536},
                        "key ranges to sweep");
  Flags.addInt("update-percent", 10,
               "percentage of updates (read-heavy by default)");
  Flags.addInt("duration-ms", 80, "measured window per repetition");
  Flags.addInt("warmup-ms", 25, "warm-up before each window");
  Flags.addInt("repeats", 2, "repetitions per point");
  Flags.addInt("seed", 42, "base RNG seed");
  Flags.addString("csv", "", "optional path for the raw CSV series");
  Flags.addString("json", "", "optional path for vbl-bench-v1 records");
  Flags.addBool("stats", false,
                "collect internal counters and report them per structure");
  if (!Flags.parse(Argc, Argv))
    return 1;
  setStatsCollection(Flags.getBool("stats"));

  BenchJsonReport Report;
  Report.setContext("bench_binary", "unrolled_crossover");
  CsvWriter Csv = Panel::makeCsv();

  for (unsigned Range : Flags.getUnsignedList("ranges")) {
    WorkloadConfig Base;
    Base.UpdatePercent =
        static_cast<unsigned>(Flags.getInt("update-percent"));
    Base.KeyRange = Range;
    Base.DurationMs = static_cast<unsigned>(Flags.getInt("duration-ms"));
    Base.WarmupMs = static_cast<unsigned>(Flags.getInt("warmup-ms"));
    Base.Repeats = static_cast<unsigned>(Flags.getInt("repeats"));
    Base.Seed = static_cast<uint64_t>(Flags.getInt("seed"));

    char Title[96];
    std::snprintf(Title, sizeof(Title), "unrolled range %u, %u%% updates",
                  Range, Base.UpdatePercent);
    // First/second form the printed ratio column: vbl-chunk / vbl is
    // the unrolling speedup under test.
    Panel P(Title,
            {"vbl-chunk", "vbl", "vbl-chunk-k1", "vbl-chunk-k15",
             "skiplist-lazy"},
            Flags.getUnsignedList("threads"));
    P.measureAll(Base);
    P.print();
    P.appendCsv(Csv);
    P.appendJson(Report, Base);
  }

  std::printf("\n(vbl-chunk/vbl is the unrolling speedup; it should "
              "grow with range until skiplist-lazy's O(log n) takes "
              "over)\n");
  if (!Flags.getString("csv").empty() &&
      !Csv.writeFile(Flags.getString("csv")))
    std::fprintf(stderr, "warning: could not write %s\n",
                 Flags.getString("csv").c_str());
  if (!Flags.getString("json").empty() &&
      !Report.writeFile(Flags.getString("json")))
    return 1;
  return 0;
}
