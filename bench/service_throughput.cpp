//===- bench/service_throughput.cpp - Sharded front-end under skew -------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// The serving-scenario bench: a ShardedSet front-end driven by the
/// TrafficGen model (Zipfian skew, millions of simulated sessions,
/// optional open-loop bursts and a time-varying update mix) instead of
/// the synchrobench uniform loop. Sweeps access disciplines
/// (direct / batched / flat-combined / adaptive) per backend and skew,
/// and reports throughput AND completion-latency percentiles (p50 /
/// p99 / p999) — a batched op's latency is measured enqueue to
/// flush-return, so queue dwell is part of the tail, not hidden.
///
/// Why batching wins under skew: the shard adapter sorts each batch
/// and applies it in ONE amortized list traversal under one reclaim
/// guard; at theta = 0.99 most ops target a handful of shards, so B
/// ops pay roughly one traversal instead of B.
///
//===----------------------------------------------------------------------===//

#include "harness/BenchJson.h"
#include "harness/Runner.h"
#include "service/ShardedSet.h"
#include "service/TrafficGen.h"
#include "support/CommandLine.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

using namespace vbl;
using namespace vbl::harness;
using namespace vbl::service;

namespace {

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::vector<std::string> splitCsv(const std::string &Raw) {
  std::vector<std::string> Parts;
  size_t Pos = 0;
  while (Pos <= Raw.size()) {
    const size_t Comma = Raw.find(',', Pos);
    const std::string Part = Raw.substr(
        Pos, Comma == std::string::npos ? Comma : Comma - Pos);
    if (!Part.empty())
      Parts.push_back(Part);
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  return Parts;
}

/// "pct:ops,pct:ops,..." -> cyclic update-mix phases.
bool parsePhases(const std::string &Raw, std::vector<MixPhase> &Out) {
  for (const std::string &Part : splitCsv(Raw)) {
    const size_t Colon = Part.find(':');
    if (Colon == std::string::npos)
      return false;
    MixPhase P;
    P.UpdatePercent =
        static_cast<unsigned>(std::strtoul(Part.c_str(), nullptr, 10));
    P.Ops = std::strtoull(Part.c_str() + Colon + 1, nullptr, 10);
    if (P.UpdatePercent > 100 || P.Ops == 0)
      return false;
    Out.push_back(P);
  }
  return true;
}

struct ModeSpec {
  std::string Name;     // structure-name suffix
  unsigned BatchSize;   // 0 = take --batch
  CombineMode Combine;
};

bool parseMode(const std::string &Text, unsigned Batch, ModeSpec &Spec) {
  if (Text == "direct")
    Spec = {"direct", 1, CombineMode::Off};
  else if (Text == "batch")
    Spec = {"batch-b" + std::to_string(Batch), Batch, CombineMode::Off};
  else if (Text == "combine")
    Spec = {"combine", 1, CombineMode::On};
  else if (Text == "combine-batch")
    Spec = {"combine-b" + std::to_string(Batch), Batch, CombineMode::On};
  else if (Text == "adaptive")
    Spec = {"adaptive-b" + std::to_string(Batch), Batch,
            CombineMode::Adaptive};
  else
    return false;
  return true;
}

struct PointResult {
  SampleStats Throughput; // ops/s, one sample per repeat
  SampleStats Latency;    // ns, merged across threads and repeats
  bool InvariantsHeld = true;
};

struct RunConfig {
  TrafficConfig Traffic;
  unsigned Threads = 2;
  unsigned DurationMs = 120;
  unsigned WarmupMs = 40;
  unsigned Repeats = 3;
};

/// One repetition: fresh front-end, prefilled, driven by one session
/// per worker for warmup + measured window.
void runRepeat(const ShardedSet::Options &Opts, const RunConfig &Run,
               uint64_t Seed, PointResult &Result) {
  std::string Error;
  auto Front = ShardedSet::create(Opts, &Error);
  if (!Front) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    std::abort();
  }
  prefill(*Front, Run.Traffic.KeyRange, Seed);

  // Samples per worker are capped; ops past the cap still count for
  // throughput but stop stamping tags.
  constexpr size_t MaxSamplesPerWorker = 1u << 20;
  std::atomic<int> Phase{0}; // 0 warmup, 1 measured, 2 stop
  std::vector<uint64_t> Ops(Run.Threads, 0);
  std::vector<std::vector<double>> Samples(Run.Threads);
  std::vector<std::thread> Workers;
  Workers.reserve(Run.Threads);

  for (unsigned W = 0; W != Run.Threads; ++W) {
    Workers.emplace_back([&, W] {
      TrafficConfig Cfg = Run.Traffic;
      Cfg.Seed = Seed;
      TrafficGen Gen(Cfg, W, Run.Threads);
      ShardedSet::Session Session = Front->openSession();
      std::vector<double> &MySamples = Samples[W];
      MySamples.reserve(1u << 14);
      uint64_t Measured = 0;
      uint64_t NextArrival = 0; // open-loop pacing when gaps > 0
      const bool OpenLoop = Cfg.Arrivals.MeanGapNs > 0.0;
      for (;;) {
        const int P = Phase.load(std::memory_order_relaxed);
        if (P == 2)
          break;
        const TrafficGen::Item It = Gen.next();
        if (OpenLoop) {
          // Arrival clock: never submit before the op's arrival time;
          // a backlogged worker (NextArrival in the past) submits
          // immediately and the dwell shows up in the latency tail.
          NextArrival = (NextArrival ? NextArrival : nowNs()) +
                        It.ArrivalGapNs;
          while (nowNs() < NextArrival &&
                 Phase.load(std::memory_order_relaxed) != 2) {
          }
        }
        const bool Stamp =
            P == 1 && MySamples.size() < MaxSamplesPerWorker;
        Session.enqueue(It.Op, It.Key, Stamp ? nowNs() : 0);
        for (const BatchOp &Done : Session.takeCompleted()) {
          if (P == 1)
            ++Measured;
          if (Done.Tag)
            MySamples.push_back(
                static_cast<double>(nowNs() - Done.Tag));
        }
      }
      // Drain the queues: dwell of already-stamped ops still belongs
      // in the tail, but completions past the window don't count
      // toward throughput.
      Session.flush();
      for (const BatchOp &Done : Session.takeCompleted())
        if (Done.Tag)
          MySamples.push_back(static_cast<double>(nowNs() - Done.Tag));
      Ops[W] = Measured;
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(Run.WarmupMs));
  Phase.store(1, std::memory_order_relaxed);
  const uint64_t T0 = nowNs();
  std::this_thread::sleep_for(std::chrono::milliseconds(Run.DurationMs));
  Phase.store(2, std::memory_order_relaxed);
  const uint64_t T1 = nowNs();
  for (std::thread &T : Workers)
    T.join();

  uint64_t Total = 0;
  for (uint64_t N : Ops)
    Total += N;
  const double Seconds = static_cast<double>(T1 - T0) * 1e-9;
  Result.Throughput.add(static_cast<double>(Total) / Seconds);
  for (const std::vector<double> &S : Samples)
    for (double V : S)
      Result.Latency.add(V);
  if (!Front->checkInvariants())
    Result.InvariantsHeld = false;
}

void listBackends() {
  for (const SetDescription &D : registeredSetDescriptions())
    std::printf("%s\t%s\t%s\n", D.Name.c_str(), D.Describe.c_str(),
                D.FullKeyDomain ? "full" : "hash");
}

} // namespace

int main(int Argc, char **Argv) {
  FlagSet Flags("Sharded serving front-end under skewed traffic");
  Flags.addString("backends", "vbl", "comma-separated backend names");
  Flags.addUnsignedList("threads", {2, 8}, "worker thread counts");
  Flags.addInt("shards", 8, "shards per front-end");
  Flags.addString("theta", "0,0.99", "comma-separated Zipfian exponents");
  Flags.addInt("update-percent", 20, "percentage of updates");
  Flags.addInt("range", 16384, "key range");
  Flags.addInt("sessions", 4096, "simulated client sessions (total)");
  Flags.addInt("batch", 16, "ops per (session, shard) batch");
  Flags.addString("modes", "direct,batch,combine-batch",
                  "disciplines: direct,batch,combine,combine-batch,adaptive");
  Flags.addInt("duration-ms", 120, "measured window");
  Flags.addInt("warmup-ms", 40, "unmeasured warmup");
  Flags.addInt("repeats", 3, "repetitions per point");
  Flags.addInt("seed", 42, "base RNG seed");
  Flags.addInt("mean-gap-ns", 0,
               "open-loop mean interarrival gap; 0 = closed loop");
  Flags.addInt("burst-factor", 1, "burst-phase rate multiplier");
  Flags.addInt("burst-ops", 0, "arrivals per burst phase");
  Flags.addInt("calm-ops", 0, "arrivals per calm phase");
  Flags.addString("mix-phases", "",
                  "cyclic update mix, \"pct:ops,pct:ops,...\"");
  Flags.addBool("scramble", false, "hash Zipfian ranks over the range");
  Flags.addString("json", "", "optional path for vbl-bench-v1 records");
  Flags.addBool("stats", false,
                "collect internal counters and report them per point");
  Flags.addBool("list-backends", false,
                "print the backend registry (name, description, "
                "key domain) and exit");
  if (!Flags.parse(Argc, Argv))
    return 1;
  if (Flags.getBool("list-backends")) {
    listBackends();
    return 0;
  }
  setStatsCollection(Flags.getBool("stats"));

  const unsigned Batch =
      static_cast<unsigned>(Flags.getInt("batch"));
  std::vector<ModeSpec> Modes;
  for (const std::string &M : splitCsv(Flags.getString("modes"))) {
    ModeSpec Spec;
    if (!parseMode(M, Batch, Spec)) {
      std::fprintf(stderr, "error: unknown mode '%s'\n", M.c_str());
      return 1;
    }
    Modes.push_back(Spec);
  }
  std::vector<double> Thetas;
  for (const std::string &T : splitCsv(Flags.getString("theta")))
    Thetas.push_back(std::strtod(T.c_str(), nullptr));
  std::vector<MixPhase> Phases;
  if (!parsePhases(Flags.getString("mix-phases"), Phases)) {
    std::fprintf(stderr, "error: bad --mix-phases\n");
    return 1;
  }

  RunConfig Run;
  Run.DurationMs = static_cast<unsigned>(Flags.getInt("duration-ms"));
  Run.WarmupMs = static_cast<unsigned>(Flags.getInt("warmup-ms"));
  Run.Repeats = static_cast<unsigned>(Flags.getInt("repeats"));
  Run.Traffic.KeyRange = Flags.getInt("range");
  Run.Traffic.Sessions =
      static_cast<uint64_t>(Flags.getInt("sessions"));
  Run.Traffic.UpdatePercent =
      static_cast<unsigned>(Flags.getInt("update-percent"));
  Run.Traffic.Phases = Phases;
  Run.Traffic.ScrambleKeys = Flags.getBool("scramble");
  Run.Traffic.Arrivals.MeanGapNs =
      static_cast<double>(Flags.getInt("mean-gap-ns"));
  Run.Traffic.Arrivals.BurstFactor =
      static_cast<double>(Flags.getInt("burst-factor"));
  Run.Traffic.Arrivals.BurstOps =
      static_cast<uint64_t>(Flags.getInt("burst-ops"));
  Run.Traffic.Arrivals.CalmOps =
      static_cast<uint64_t>(Flags.getInt("calm-ops"));

  BenchJsonReport Report;
  Report.setContext("bench_binary", "service_throughput");
  Report.setContext("shards", std::to_string(Flags.getInt("shards")));
  Report.setContext("sessions",
                    std::to_string(Flags.getInt("sessions")));

  std::printf("%-42s %8s %12s %9s %9s %9s\n", "structure", "threads",
              "ops/s", "p50(ns)", "p99(ns)", "p999(ns)");
  for (const std::string &Backend :
       splitCsv(Flags.getString("backends"))) {
    for (double Theta : Thetas) {
      for (const ModeSpec &Mode : Modes) {
        for (unsigned Threads : Flags.getUnsignedList("threads")) {
          ShardedSet::Options Opts;
          Opts.Backend = Backend;
          Opts.Shards =
              static_cast<unsigned>(Flags.getInt("shards"));
          Opts.BatchSize = Mode.BatchSize;
          Opts.Combine = Mode.Combine;
          Run.Threads = Threads;
          Run.Traffic.Theta = Theta;

          char ThetaBuf[32];
          std::snprintf(ThetaBuf, sizeof(ThetaBuf), "%g", Theta);
          const std::string Structure =
              Backend + "/z" + ThetaBuf + "/" + Mode.Name;

          const stats::Snapshot Before =
              statsCollectionEnabled() ? stats::snapshotAll()
                                       : stats::Snapshot();
          PointResult Point;
          for (unsigned R = 0; R != Run.Repeats; ++R)
            runRepeat(Opts, Run,
                      static_cast<uint64_t>(Flags.getInt("seed")) +
                          R * 7919ULL,
                      Point);
          const stats::Snapshot Delta =
              statsCollectionEnabled()
                  ? stats::snapshotAll().delta(Before)
                  : stats::Snapshot();
          if (!Point.InvariantsHeld) {
            std::fprintf(stderr,
                         "error: %s corrupted its structure\n",
                         Structure.c_str());
            return 1;
          }

          BenchRecord Record;
          Record.Bench = "service_throughput";
          Record.Structure = Structure;
          Record.Threads = Threads;
          Record.KeyRange = Run.Traffic.KeyRange;
          Record.UpdatePercent = Run.Traffic.UpdatePercent;
          Record.Repeats = Run.Repeats;
          Record.ThroughputOpsPerSec =
              Point.Throughput.percentile(50);
          Record.ThroughputStddev = Point.Throughput.stddev();
          if (!Point.Latency.empty()) {
            Record.HasLatency = true;
            Record.P50LatencyNs = Point.Latency.percentile(50);
            Record.P99LatencyNs = Point.Latency.percentile(99);
            Record.P999LatencyNs = Point.Latency.percentile(99.9);
          }
          if (!Delta.empty()) {
            Record.HasStats = true;
            Record.Stats = Delta;
          }
          std::printf("%-42s %8u %12.0f %9.0f %9.0f %9.0f\n",
                      Structure.c_str(), Threads,
                      Record.ThroughputOpsPerSec,
                      Record.HasLatency ? Record.P50LatencyNs : 0.0,
                      Record.HasLatency ? Record.P99LatencyNs : 0.0,
                      Record.HasLatency ? Record.P999LatencyNs : 0.0);
          if (!Delta.empty())
            std::fputs(stats::renderTable(Delta, "    ").c_str(),
                       stdout);
          Report.add(Record);
        }
      }
    }
  }

  if (!Flags.getString("json").empty())
    if (!Report.writeFile(Flags.getString("json")))
      return 1;
  return 0;
}
