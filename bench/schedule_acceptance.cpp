//===- bench/schedule_acceptance.cpp - Figs. 2-3 acceptance matrix -------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Regenerates the paper's *qualitative* results (Figs. 2 and 3 and
/// Theorem 3) as a table: for a set of exhaustively explored two-thread
/// scenarios, how many interleavings of the sequential code exist, how
/// many distinct correct schedules they induce, and how many of those
/// each implementation accepts. The paper's claims appear as: the vbl
/// column equals the correct column everywhere; the lazy column is
/// strictly smaller on the Fig. 2 scenario.
///
//===----------------------------------------------------------------------===//

#include "core/VblList.h"
#include "harness/BenchJson.h"
#include "lists/LazyList.h"
#include "lists/SequentialList.h"
#include "reclaim/LeakyDomain.h"
#include "sched/InterleavingExplorer.h"
#include "sched/ScheduleChecker.h"
#include "sched/ScheduleExport.h"
#include "stats/Stats.h"
#include "support/CommandLine.h"

#include <cstdio>

using namespace vbl;
using namespace vbl::sched;

namespace {

using TracedVbl = VblList<reclaim::LeakyDomain, TracedPolicy>;
using TracedLazy = LazyList<reclaim::LeakyDomain, TracedPolicy>;
using TracedLL = SequentialList<TracedPolicy>;

struct Scenario {
  const char *Name;
  std::vector<SetKey> Prefill;
  std::pair<SetOp, SetKey> Op0;
  std::pair<SetOp, SetKey> Op1;
  std::vector<SetKey> Universe;
};

template <class ListT> EpisodeFactory factoryFor(const Scenario &S) {
  return [S]() -> Episode {
    auto List = std::make_shared<ListT>();
    for (SetKey Key : S.Prefill)
      List->insert(Key);
    auto body = [List](std::pair<SetOp, SetKey> Spec) {
      return std::function<void()>([List, Spec] {
        const auto [Op, Key] = Spec;
        switch (Op) {
        case SetOp::Insert:
          tracedOp(SetOp::Insert, Key, [&] { return List->insert(Key); });
          break;
        case SetOp::Remove:
          tracedOp(SetOp::Remove, Key, [&] { return List->remove(Key); });
          break;
        case SetOp::Contains:
          tracedOp(SetOp::Contains, Key,
                   [&] { return List->contains(Key); });
          break;
        case SetOp::RangeQuery:
          vbl_unreachable("point-op scenario corpus");
        }
      });
    };
    Episode Ep;
    Ep.HeadNode = List->headNode();
    Ep.InitialChain = List->nodeChain();
    Ep.Holder = List;
    Ep.Bodies = {body(S.Op0), body(S.Op1)};
    return Ep;
  };
}

} // namespace

int main(int Argc, char **Argv) {
  FlagSet Flags("Schedule acceptance matrix (Figs. 2-3, Theorem 3)");
  Flags.addInt("max-episodes", 60000, "exploration cap per scenario");
  Flags.addString("json", "",
                  "optional path for vbl-bench-v1 records (one record "
                  "per scenario x column; the \"throughput\" field "
                  "carries the deterministic schedule count)");
  Flags.addBool("stats", false,
                "report internal counters for the whole exploration");
  if (!Flags.parse(Argc, Argv))
    return 1;
  const auto MaxEpisodes =
      static_cast<size_t>(Flags.getInt("max-episodes"));
  harness::BenchJsonReport Report;
  Report.setContext("bench_binary", "schedule_acceptance");
  // The counts are exact for a fixed exploration cap, so the CI gate
  // compares them at effectively zero tolerance.
  Report.setContext("max_episodes", std::to_string(MaxEpisodes));

  const std::vector<Scenario> Scenarios = {
      {"fig2: ins(1) vs ins(2) on {1}", {1},
       {SetOp::Insert, 1}, {SetOp::Insert, 2}, {1, 2}},
      {"ins(1) vs ins(2) on {}", {},
       {SetOp::Insert, 1}, {SetOp::Insert, 2}, {1, 2}},
      {"ins(4) vs rem(4) on {4}", {4},
       {SetOp::Insert, 4}, {SetOp::Remove, 4}, {4}},
      {"rem(3) vs rem(3) on {3}", {3},
       {SetOp::Remove, 3}, {SetOp::Remove, 3}, {3}},
      {"rem(2) vs has(2) on {2,6}", {2, 6},
       {SetOp::Remove, 2}, {SetOp::Contains, 2}, {2, 6}},
      {"ins(7) vs rem(3) on {3}", {3},
       {SetOp::Insert, 7}, {SetOp::Remove, 3}, {3, 7}},
  };

  std::printf("%-32s %14s %9s %6s %6s\n", "scenario", "interleavings",
              "correct", "vbl", "lazy");
  bool VblOptimalEverywhere = true;
  for (const Scenario &S : Scenarios) {
    InterleavingExplorer Explorer(factoryFor<TracedLL>(S));
    std::vector<std::pair<std::string, Schedule>> Correct;
    const size_t Interleavings = Explorer.exploreAll(
        [&](const EpisodeResult &Result) {
          const Schedule Exported =
              exportLLSchedule(Result.Raw, Result.Meta.HeadNode);
          if (!checkScheduleCorrect(Exported, Result.Meta.InitialChain,
                                    S.Universe)
                   .correct())
            return;
          const std::string Key = Exported.canonicalKey();
          for (const auto &[Seen, Sched] : Correct)
            if (Seen == Key)
              return;
          Correct.emplace_back(Key, Exported);
        },
        MaxEpisodes);

    size_t VblAccepted = 0, LazyAccepted = 0;
    for (const auto &[Key, Target] : Correct) {
      VblAccepted +=
          replaySchedule(factoryFor<TracedVbl>(S), Target).Accepted;
      LazyAccepted +=
          replaySchedule(factoryFor<TracedLazy>(S), Target).Accepted;
    }
    VblOptimalEverywhere &= VblAccepted == Correct.size();
    std::printf("%-32s %14zu %9zu %6zu %6zu\n", S.Name, Interleavings,
                Correct.size(), VblAccepted, LazyAccepted);

    const auto addRecord = [&](const char *Column, size_t Count) {
      harness::BenchRecord Rec;
      Rec.Bench = S.Name;
      Rec.Structure = Column;
      Rec.Threads = 2;
      Rec.KeyRange = static_cast<SetKey>(S.Universe.size());
      Rec.Repeats = 1;
      Rec.ThroughputOpsPerSec = static_cast<double>(Count);
      Report.add(std::move(Rec));
    };
    addRecord("correct", Correct.size());
    addRecord("vbl", VblAccepted);
    addRecord("lazy", LazyAccepted);
  }
  std::printf("\nTheorem 3 (vbl accepts every correct schedule): %s\n",
              VblOptimalEverywhere ? "HOLDS" : "VIOLATED");
  if (Flags.getBool("stats")) {
    // Whole-run totals: the explorer reuses worker threads, so per
    // scenario attribution would be noise anyway.
    std::printf("\n-- stats: process total --\n");
    std::fputs(stats::renderTable(stats::snapshotAll()).c_str(), stdout);
  }
  if (!Flags.getString("json").empty() &&
      !Report.writeFile(Flags.getString("json")))
    return 1;
  return VblOptimalEverywhere ? 0 : 1;
}
