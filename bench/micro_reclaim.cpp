//===- bench/micro_reclaim.cpp - Reclamation primitive costs -------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Per-primitive costs of the reclamation substrate that replaces the
/// paper's JVM GC: epoch guard enter/exit (paid once per list
/// operation), hazard-pointer protection (paid once per traversal hop
/// in the HP variant), and retire throughput. These numbers explain the
/// deltas in bench/reclamation_cost.
///
//===----------------------------------------------------------------------===//

#include "reclaim/EpochDomain.h"
#include "reclaim/HazardPointerDomain.h"
#include "reclaim/LeakyDomain.h"

#include <benchmark/benchmark.h>

using namespace vbl;
using namespace vbl::reclaim;

namespace {

void benchEpochGuard(benchmark::State &State) {
  static EpochDomain Domain;
  for (auto _ : State) {
    EpochDomain::Guard G(Domain);
    benchmark::DoNotOptimize(&G);
  }
}

void benchEpochGuardNested(benchmark::State &State) {
  static EpochDomain Domain;
  EpochDomain::Guard Outer(Domain);
  for (auto _ : State) {
    EpochDomain::Guard Inner(Domain);
    benchmark::DoNotOptimize(&Inner);
  }
}

void benchHazardProtect(benchmark::State &State) {
  static HazardPointerDomain Domain;
  static std::atomic<int *> Source{new int(7)};
  HazardPointerDomain::Guard G(Domain);
  for (auto _ : State) {
    int *P = G.protect(0, Source);
    benchmark::DoNotOptimize(P);
  }
}

void benchEpochRetire(benchmark::State &State) {
  static EpochDomain Domain;
  // Guard per iteration: holding one guard across the whole loop would
  // pin the epoch and make every retirement unreclaimable — a
  // pathological pattern, not the one the lists use (guard per op).
  for (auto _ : State) {
    EpochDomain::Guard G(Domain);
    Domain.retire(new int(1));
  }
}

void benchHazardRetire(benchmark::State &State) {
  static HazardPointerDomain Domain;
  for (auto _ : State)
    Domain.retire(new int(1));
}

void benchLeakyGuard(benchmark::State &State) {
  static LeakyDomain Domain;
  for (auto _ : State) {
    LeakyDomain::Guard G(Domain);
    benchmark::DoNotOptimize(&G);
  }
}

} // namespace

BENCHMARK(benchLeakyGuard)->Name("guard/leaky");
BENCHMARK(benchEpochGuard)->Name("guard/epoch");
BENCHMARK(benchEpochGuard)->Name("guard/epoch_mt")->Threads(4);
BENCHMARK(benchEpochGuardNested)->Name("guard/epoch_nested");
BENCHMARK(benchHazardProtect)->Name("protect/hazard");
BENCHMARK(benchEpochRetire)->Name("retire/epoch");
BENCHMARK(benchHazardRetire)->Name("retire/hazard");

BENCHMARK_MAIN();
