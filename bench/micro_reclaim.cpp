//===- bench/micro_reclaim.cpp - Reclamation primitive costs -------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Per-primitive costs of the reclamation substrate that replaces the
/// paper's JVM GC: epoch guard enter/exit (paid once per list
/// operation), the VBR version-clock snapshot (its cheaper equivalent),
/// hazard-pointer protection (paid once per traversal hop in the HP
/// variant), retire throughput for all three managed domains, and the
/// node pool's recycle-vs-heap delta. Two families of numbers:
///
///  - "guard/...", "protect/...", "retire/...": tight loops over a
///    single primitive, reported as ops/second.
///  - "churn/...": full list workloads at high update ratio, run twice —
///    pool enabled and pool bypassed (NodePool::ScopedBypass) — so the
///    end-to-end benefit of recycling is a single ratio. These feed the
///    EXPERIMENTS.md pool table and the CI perf gate.
///
/// Emits vbl-bench-v1 JSON via --json like the figure benches.
///
//===----------------------------------------------------------------------===//

#include "harness/BenchJson.h"
#include "reclaim/EpochDomain.h"
#include "reclaim/HazardPointerDomain.h"
#include "reclaim/LeakyDomain.h"
#include "reclaim/NodePool.h"
#include "reclaim/VbrDomain.h"
#include "support/CommandLine.h"
#include "support/Stats.h"

#include <chrono>
#include <cstdio>
#include <new>
#include <string>
#include <thread>
#include <vector>

using namespace vbl;
using namespace vbl::harness;
using namespace vbl::reclaim;

namespace {

/// Keeps the compiler from discarding a primitive-only loop body.
template <class T> inline void doNotOptimize(T const &Value) {
  asm volatile("" : : "r,m"(Value) : "memory");
}

/// Times \p Body (one primitive op per call) in windows of \p DurationMs,
/// \p Repeats times; returns ops/second samples.
template <class F>
SampleStats measureLoop(unsigned Repeats, unsigned DurationMs, F &&Body) {
  using Clock = std::chrono::steady_clock;
  SampleStats Stats;
  for (unsigned Rep = 0; Rep != Repeats; ++Rep) {
    const auto Deadline =
        Clock::now() + std::chrono::milliseconds(DurationMs);
    uint64_t Ops = 0;
    const auto Start = Clock::now();
    auto Now = Start;
    while (Now < Deadline) {
      for (int I = 0; I != 256; ++I)
        Body();
      Ops += 256;
      Now = Clock::now();
    }
    const double Seconds =
        std::chrono::duration<double>(Now - Start).count();
    Stats.add(static_cast<double>(Ops) / Seconds);
  }
  return Stats;
}

/// Multi-threaded variant: \p Threads workers hammer \p Body
/// concurrently; the sample is the combined ops/second.
template <class F>
SampleStats measureLoopMt(unsigned Repeats, unsigned DurationMs,
                          unsigned Threads, F &&Body) {
  using Clock = std::chrono::steady_clock;
  SampleStats Stats;
  for (unsigned Rep = 0; Rep != Repeats; ++Rep) {
    std::atomic<bool> Go{false};
    std::atomic<bool> Stop{false};
    std::atomic<uint64_t> TotalOps{0};
    std::vector<std::thread> Workers;
    for (unsigned T = 0; T != Threads; ++T) {
      Workers.emplace_back([&] {
        while (!Go.load(std::memory_order_acquire))
          std::this_thread::yield();
        uint64_t Ops = 0;
        while (!Stop.load(std::memory_order_acquire)) {
          for (int I = 0; I != 256; ++I)
            Body();
          Ops += 256;
        }
        TotalOps.fetch_add(Ops, std::memory_order_relaxed);
      });
    }
    const auto Start = Clock::now();
    Go.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(DurationMs));
    Stop.store(true, std::memory_order_release);
    for (auto &W : Workers)
      W.join();
    const double Seconds =
        std::chrono::duration<double>(Clock::now() - Start).count();
    Stats.add(static_cast<double>(TotalOps.load(std::memory_order_relaxed)) /
              Seconds);
  }
  return Stats;
}

void report(BenchJsonReport &Report, const std::string &Structure,
            unsigned Threads, const SampleStats &Stats) {
  std::printf("  %-24s %10.2f Mops/s  (stddev %.2f, %u threads)\n",
              Structure.c_str(), Stats.mean() / 1e6, Stats.stddev() / 1e6,
              Threads);
  BenchRecord Record;
  Record.Bench = "micro_reclaim";
  Record.Structure = Structure;
  Record.Threads = Threads;
  Record.KeyRange = 0;
  Record.UpdatePercent = 0;
  Record.Repeats = static_cast<unsigned>(Stats.count());
  Record.ThroughputOpsPerSec = Stats.mean();
  Record.ThroughputStddev = Stats.stddev();
  Report.add(Record);
}

std::vector<std::string> splitCsv(const std::string &Raw) {
  std::vector<std::string> Out;
  size_t Pos = 0;
  while (Pos <= Raw.size()) {
    const size_t Comma = Raw.find(',', Pos);
    Out.push_back(
        Raw.substr(Pos, Comma == std::string::npos ? Comma : Comma - Pos));
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  FlagSet Flags("Reclamation and node-pool primitive costs");
  Flags.addInt("duration-ms", 100, "measured window per repetition");
  Flags.addInt("warmup-ms", 30, "warm-up before each churn window");
  Flags.addInt("repeats", 3, "repetitions per point");
  Flags.addInt("seed", 42, "base RNG seed");
  Flags.addInt("update-percent", 100,
               "update ratio for the churn workloads");
  Flags.addUnsignedList("churn-threads", {1, 4},
                        "thread counts for the churn workloads");
  // vbl-vbr rides along in the churn family: its recycling happens in
  // the domain's own free lists, so the pool-vs-bypass ratio should sit
  // near 1.0 — a drift there means fresh allocations crept back into
  // the steady state.
  Flags.addString("churn-algos", "vbl,vbl-vbr,harris-michael",
                  "list algorithms measured pool-vs-bypass");
  Flags.addString("churn-ranges", "128,1024",
                  "key ranges for the churn workloads");
  Flags.addString("json", "", "optional path for vbl-bench-v1 records");
  Flags.addBool("stats", false,
                "collect internal counters and report them per structure");
  if (!Flags.parse(Argc, Argv))
    return 1;
  setStatsCollection(Flags.getBool("stats"));

  const unsigned DurationMs =
      static_cast<unsigned>(Flags.getInt("duration-ms"));
  const unsigned Repeats = static_cast<unsigned>(Flags.getInt("repeats"));

  BenchJsonReport Report;
  Report.setContext("bench_binary", "micro_reclaim");
  Report.setContext("pool_bypassed_by_default",
                    NodePool::bypassed() ? "1" : "0");

  std::printf("reclamation primitives (%u ms x %u repeats):\n", DurationMs,
              Repeats);

  {
    LeakyDomain Domain;
    report(Report, "guard/leaky", 1,
           measureLoop(Repeats, DurationMs, [&] {
             LeakyDomain::Guard G(Domain);
             doNotOptimize(G);
           }));
  }
  {
    EpochDomain Domain;
    report(Report, "guard/epoch", 1,
           measureLoop(Repeats, DurationMs, [&] {
             EpochDomain::Guard G(Domain);
             doNotOptimize(G);
           }));
  }
  {
    EpochDomain Domain;
    EpochDomain::Guard Outer(Domain);
    report(Report, "guard/epoch_nested", 1,
           measureLoop(Repeats, DurationMs, [&] {
             EpochDomain::Guard Inner(Domain);
             doNotOptimize(Inner);
           }));
  }
  {
    EpochDomain Domain;
    report(Report, "guard/epoch_mt", 4,
           measureLoopMt(Repeats, DurationMs, 4, [&] {
             EpochDomain::Guard G(Domain);
             doNotOptimize(G);
           }));
  }
  {
    // The VBR guard is one acquire load of the version clock — no
    // announce store, no fence — which is the domain's headline claim
    // versus the epoch guard above.
    VbrDomain Domain;
    report(Report, "guard/vbr", 1,
           measureLoop(Repeats, DurationMs, [&] {
             VbrDomain::Guard G(Domain);
             doNotOptimize(G.version());
           }));
  }
  {
    // Multi-threaded: readers share the clock line read-only, so this
    // should scale where guard/epoch_mt pays announce-slot traffic.
    VbrDomain Domain;
    report(Report, "guard/vbr_mt", 4,
           measureLoopMt(Repeats, DurationMs, 4, [&] {
             VbrDomain::Guard G(Domain);
             doNotOptimize(G.version());
           }));
  }
  {
    HazardPointerDomain Domain;
    std::atomic<int *> Source{new int(7)};
    {
      HazardPointerDomain::Guard G(Domain);
      report(Report, "protect/hazard", 1,
             measureLoop(Repeats, DurationMs, [&] {
               int *P = G.protect(0, Source);
               doNotOptimize(P);
             }));
    }
    delete Source.load(std::memory_order_relaxed);
  }
  {
    // Guard per iteration: holding one guard across the whole loop
    // would pin the epoch and make every retirement unreclaimable — a
    // pathological pattern, not the one the lists use (guard per op).
    EpochDomain Domain;
    report(Report, "retire/epoch", 1,
           measureLoop(Repeats, DurationMs, [&] {
             EpochDomain::Guard G(Domain);
             Domain.retire(new int(1));
           }));
  }
  {
    // Same loop through the node pool: once the first grace periods
    // elapse, every allocation is a recycled block.
    EpochDomain Domain;
    report(Report, "retire/epoch_pooled", 1,
           measureLoop(Repeats, DurationMs, [&] {
             EpochDomain::Guard G(Domain);
             poolRetire(Domain, poolCreate<int>(1));
           }));
  }
  {
    HazardPointerDomain Domain;
    report(Report, "retire/hazard", 1,
           measureLoop(Repeats, DurationMs, [&] {
             Domain.retire(new int(1));
           }));
  }
  {
    // The VBR turnaround: retirement makes the block immediately
    // reusable, so after the first iteration every allocation is an
    // in-place revival of the block retired one step earlier — a
    // retire stamp plus a free-list pop/push, no grace period.
    VbrDomain Domain;
    report(Report, "retire/vbr", 1,
           measureLoop(Repeats, DurationMs, [&] {
             bool Fresh = false;
             void *Mem = Domain.allocBlockFor<int>(Fresh);
             int *P = Fresh ? ::new (Mem) int(1)
                            : std::launder(static_cast<int *>(Mem));
             Domain.retireNode(P);
           }));
  }

  // Churn workloads: identical configs with the pool on and off. The
  // ScopedBypass scope contains the whole measurement — the list (and
  // every node it allocates) is created and destroyed inside it, which
  // is the containment rule the bypass requires.
  WorkloadConfig Base;
  Base.UpdatePercent =
      static_cast<unsigned>(Flags.getInt("update-percent"));
  Base.DurationMs = DurationMs;
  Base.WarmupMs = static_cast<unsigned>(Flags.getInt("warmup-ms"));
  Base.Repeats = Repeats;
  Base.Seed = static_cast<uint64_t>(Flags.getInt("seed"));

  std::printf("list churn, %u%% updates, pool vs bypass:\n",
              Base.UpdatePercent);
  for (const std::string &Algo : splitCsv(Flags.getString("churn-algos"))) {
    for (const std::string &RangeStr :
         splitCsv(Flags.getString("churn-ranges"))) {
      for (unsigned Threads : Flags.getUnsignedList("churn-threads")) {
        WorkloadConfig Config = Base;
        Config.KeyRange = std::stoll(RangeStr);
        Config.Threads = Threads;

        BenchRecord Pooled =
            measurePoint("micro_reclaim", Algo, Config, /*WithLatency=*/false);
        Pooled.Structure = Algo + "+pool";
        BenchRecord Bypassed;
        {
          NodePool::ScopedBypass Bypass;
          Bypassed = measurePoint("micro_reclaim", Algo, Config,
                                  /*WithLatency=*/false);
        }
        Bypassed.Structure = Algo + "+bypass";
        Report.add(Pooled);
        Report.add(Bypassed);
        const double Ratio =
            Bypassed.ThroughputOpsPerSec > 0
                ? Pooled.ThroughputOpsPerSec / Bypassed.ThroughputOpsPerSec
                : 0.0;
        std::printf("  %-16s range %-6lld t=%u  pool %9.2f  bypass %9.2f "
                    "Kops/s  ratio %.2fx\n",
                    Algo.c_str(), static_cast<long long>(Config.KeyRange),
                    Threads, Pooled.ThroughputOpsPerSec / 1e3,
                    Bypassed.ThroughputOpsPerSec / 1e3, Ratio);
        for (const BenchRecord *Record : {&Pooled, &Bypassed}) {
          if (!Record->HasStats || Record->Stats.empty())
            continue;
          std::printf("    -- stats: %s --\n",
                      Record->Structure.c_str());
          std::fputs(stats::renderTable(Record->Stats, "      ").c_str(),
                     stdout);
        }
      }
    }
  }

  if (!Flags.getString("json").empty()) {
    Report.setContext("duration_ms", std::to_string(DurationMs));
    Report.setContext("repeats", std::to_string(Repeats));
    if (!Report.writeFile(Flags.getString("json")))
      return 1;
  }
  return 0;
}
