//===- bench/fig4_grid.cpp - Reproduces the Figure 4 grid ----------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Figure 4: the full evaluation grid — workloads {0%, 20%, 100%}
/// updates x key ranges {50, 200, 2000, 20000}, each panel a thread
/// sweep of VBL vs Lazy vs Harris-Michael. Twelve panels, matching the
/// paper's Intel figure. Expected shapes: VBL >= Lazy everywhere with
/// the gap widening under contention (small range, high update ratio);
/// Harris-Michael trails on read-heavy loads (mark-read overhead on
/// traversal) but is competitive on 100% updates.
///
//===----------------------------------------------------------------------===//

#include "harness/TablePrinter.h"
#include "support/CommandLine.h"

#include <cstdio>

using namespace vbl;
using namespace vbl::harness;

int main(int Argc, char **Argv) {
  FlagSet Flags("Figure 4: VBL vs Lazy vs Harris-Michael grid");
  Flags.addUnsignedList("threads", {1, 2, 4, 8}, "thread counts to sweep");
  Flags.addUnsignedList("updates", {0, 20, 100},
                        "update percentages (grid rows)");
  Flags.addUnsignedList("ranges", {50, 200, 2000, 20000},
                        "key ranges (grid columns)");
  Flags.addInt("duration-ms", 80, "measured window per repetition");
  Flags.addInt("warmup-ms", 25, "warm-up before each window");
  Flags.addInt("repeats", 2, "repetitions per point (paper: 5)");
  Flags.addInt("seed", 42, "base RNG seed");
  Flags.addString("csv", "", "optional path for the raw CSV series");
  Flags.addString("json", "", "optional path for vbl-bench-v1 records");
  Flags.addBool("stats", false,
                "collect internal counters and report them per structure");
  if (!Flags.parse(Argc, Argv))
    return 1;
  setStatsCollection(Flags.getBool("stats"));

  const std::vector<std::string> Algos = {"vbl", "lazy",
                                          "harris-michael"};
  CsvWriter Csv = Panel::makeCsv();
  BenchJsonReport Report;
  Report.setContext("bench_binary", "fig4_grid");

  for (unsigned Update : Flags.getUnsignedList("updates")) {
    for (unsigned Range : Flags.getUnsignedList("ranges")) {
      WorkloadConfig Base;
      Base.UpdatePercent = Update;
      Base.KeyRange = Range;
      Base.DurationMs =
          static_cast<unsigned>(Flags.getInt("duration-ms"));
      Base.WarmupMs = static_cast<unsigned>(Flags.getInt("warmup-ms"));
      Base.Repeats = static_cast<unsigned>(Flags.getInt("repeats"));
      Base.Seed = static_cast<uint64_t>(Flags.getInt("seed"));

      char Title[96];
      std::snprintf(Title, sizeof(Title),
                    "Fig.4 %u%% updates, range %u", Update, Range);
      Panel P(Title, Algos, Flags.getUnsignedList("threads"));
      P.measureAll(Base);
      P.print();
      P.appendCsv(Csv);
      P.appendJson(Report, Base);
    }
  }

  if (!Flags.getString("csv").empty() &&
      !Csv.writeFile(Flags.getString("csv")))
    std::fprintf(stderr, "warning: could not write %s\n",
                 Flags.getString("csv").c_str());
  if (!Flags.getString("json").empty() &&
      !Report.writeFile(Flags.getString("json")))
    return 1;
  return 0;
}
