//===- bench/ablation_vbl.cpp - Where VBL's win comes from ---------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Ablation of the design choices DESIGN.md calls out, on the Fig. 1
/// workload (most contended):
///
///  - vbl                : full algorithm;
///  - vbl-node-aware     : lockNextAtValue replaced by node-identity
///                         validation and insert deciding under the
///                         lock (Lazy-style placement) — isolates the
///                         value-aware rule;
///  - vbl-head-restart   : failed validations re-traverse from the head
///                         instead of from prev — isolates the restart
///                         optimisation (§3.2 line 24);
///  - vbl-ttas           : TTAS node locks instead of TAS;
///  - lazy / optimistic / hand-over-hand / coarse: the historical
///                         baseline ladder for context.
///
//===----------------------------------------------------------------------===//

#include "harness/TablePrinter.h"
#include "support/CommandLine.h"

using namespace vbl;
using namespace vbl::harness;

int main(int Argc, char **Argv) {
  FlagSet Flags("VBL ablations on the contended Fig.1 workload");
  Flags.addUnsignedList("threads", {1, 2, 4, 8}, "thread counts");
  Flags.addInt("range", 50, "key range");
  Flags.addInt("update-percent", 20, "percentage of updates");
  Flags.addInt("duration-ms", 80, "measured window per repetition");
  Flags.addInt("warmup-ms", 25, "warm-up per window");
  Flags.addInt("repeats", 2, "repetitions per point");
  Flags.addInt("seed", 42, "base RNG seed");
  Flags.addBool("stats", false,
                "collect internal counters and report them per structure");
  if (!Flags.parse(Argc, Argv))
    return 1;
  setStatsCollection(Flags.getBool("stats"));

  WorkloadConfig Base;
  Base.UpdatePercent =
      static_cast<unsigned>(Flags.getInt("update-percent"));
  Base.KeyRange = Flags.getInt("range");
  Base.DurationMs = static_cast<unsigned>(Flags.getInt("duration-ms"));
  Base.WarmupMs = static_cast<unsigned>(Flags.getInt("warmup-ms"));
  Base.Repeats = static_cast<unsigned>(Flags.getInt("repeats"));
  Base.Seed = static_cast<uint64_t>(Flags.getInt("seed"));

  Panel Variants("VBL variants",
                 {"vbl", "vbl-node-aware", "vbl-head-restart",
                  "vbl-ttas"},
                 Flags.getUnsignedList("threads"));
  Variants.measureAll(Base);
  Variants.print();

  Panel Ladder("baseline ladder",
               {"vbl", "lazy", "optimistic", "hand-over-hand", "coarse"},
               Flags.getUnsignedList("threads"));
  Ladder.measureAll(Base);
  Ladder.print();
  return 0;
}
