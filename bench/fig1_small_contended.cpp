//===- bench/fig1_small_contended.cpp - Reproduces Figure 1 --------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Figure 1: throughput of the Lazy Linked List vs VBL on a ~25-node
/// list (key range 50, prefilled at 1/2 density) under 20% updates,
/// sweeping the thread count. The paper's claims to check against:
/// Lazy's throughput collapses once threads contend on the small list's
/// locks, VBL keeps scaling (or at least does not collapse), and the
/// gap at high thread counts is around 1.6x on the authors' 72-core
/// box. The ratio column prints vbl/lazy directly.
///
//===----------------------------------------------------------------------===//

#include "harness/TablePrinter.h"
#include "support/CommandLine.h"

#include <cstdio>

using namespace vbl;
using namespace vbl::harness;

int main(int Argc, char **Argv) {
  FlagSet Flags("Figure 1: Lazy vs VBL, 20% updates, key range 50");
  Flags.addUnsignedList("threads", {1, 2, 4, 8}, "thread counts to sweep");
  Flags.addInt("range", 50, "key range (list size is about half)");
  Flags.addInt("update-percent", 20, "percentage of update operations");
  Flags.addInt("duration-ms", 120, "measured window per repetition");
  Flags.addInt("warmup-ms", 40, "warm-up before each window");
  Flags.addInt("repeats", 3, "repetitions per point (paper: 5)");
  Flags.addInt("seed", 42, "base RNG seed");
  Flags.addString("algos", "vbl,lazy,harris-michael",
                  "comma-separated algorithms (first/second form the "
                  "ratio column)");
  Flags.addString("csv", "", "optional path for the raw CSV series");
  Flags.addString("json", "", "optional path for vbl-bench-v1 records");
  Flags.addBool("stats", false,
                "collect internal counters and report them per structure");
  if (!Flags.parse(Argc, Argv))
    return 1;
  setStatsCollection(Flags.getBool("stats"));

  std::vector<std::string> Algos;
  {
    const std::string &Raw = Flags.getString("algos");
    size_t Pos = 0;
    while (Pos <= Raw.size()) {
      const size_t Comma = Raw.find(',', Pos);
      Algos.push_back(Raw.substr(
          Pos, Comma == std::string::npos ? Comma : Comma - Pos));
      if (Comma == std::string::npos)
        break;
      Pos = Comma + 1;
    }
  }

  WorkloadConfig Base;
  Base.UpdatePercent =
      static_cast<unsigned>(Flags.getInt("update-percent"));
  Base.KeyRange = Flags.getInt("range");
  Base.DurationMs = static_cast<unsigned>(Flags.getInt("duration-ms"));
  Base.WarmupMs = static_cast<unsigned>(Flags.getInt("warmup-ms"));
  Base.Repeats = static_cast<unsigned>(Flags.getInt("repeats"));
  Base.Seed = static_cast<uint64_t>(Flags.getInt("seed"));

  std::printf("fig1: %u%% updates, key range %lld (expected list size "
              "~%lld)\n",
              Base.UpdatePercent, static_cast<long long>(Base.KeyRange),
              static_cast<long long>(Base.KeyRange / 2));

  Panel P("Fig.1 20% updates, range 50", Algos,
          Flags.getUnsignedList("threads"));
  P.measureAll(Base);
  P.print();

  if (!Flags.getString("csv").empty()) {
    CsvWriter Csv = Panel::makeCsv();
    P.appendCsv(Csv);
    if (!Csv.writeFile(Flags.getString("csv")))
      std::fprintf(stderr, "warning: could not write %s\n",
                   Flags.getString("csv").c_str());
  }
  if (!Flags.getString("json").empty()) {
    BenchJsonReport Report;
    Report.setContext("bench_binary", "fig1_small_contended");
    P.appendJson(Report, Base);
    if (!Report.writeFile(Flags.getString("json")))
      return 1;
  }
  return 0;
}
