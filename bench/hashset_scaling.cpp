//===- bench/hashset_scaling.cpp - Flat lists vs split-ordered hashing ---===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Where does hashing pay? Sweeps the key range on a contains-heavy
/// workload (10% updates by default) and compares each flat list (vbl,
/// harris-michael) against its split-ordered hash overlay (so-hash-vbl,
/// so-hash-hm). Lists traverse O(n) nodes per operation, so their
/// throughput falls off linearly with the range; the hash overlays stay
/// near-flat (O(1) expected bucket length), and the crossover is the
/// point where sharding the paper's structures starts to matter.
/// Expected: the overlays win clearly from key range ~16k up at every
/// thread count (EXPERIMENTS.md records the measured grid).
///
//===----------------------------------------------------------------------===//

#include "harness/BenchJson.h"
#include "harness/TablePrinter.h"
#include "support/CommandLine.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace vbl;
using namespace vbl::harness;

int main(int Argc, char **Argv) {
  FlagSet Flags("Key-range sweep: flat lists vs split-ordered hash sets");
  Flags.addUnsignedList("threads", {1, 2, 4}, "thread counts to sweep");
  Flags.addUnsignedList("ranges", {1024, 4096, 16384, 65536},
                        "key ranges to sweep");
  Flags.addInt("update-percent", 10,
               "percentage of update operations (contains-heavy)");
  Flags.addInt("duration-ms", 60, "measured window per repetition");
  Flags.addInt("warmup-ms", 20, "warm-up before each window");
  Flags.addInt("repeats", 2, "repetitions per point (paper: 5)");
  Flags.addInt("seed", 42, "base RNG seed");
  Flags.addBool("latency", false,
                "collect a per-op latency repetition per point");
  Flags.addString("json", "", "optional path for vbl-bench-v1 records");
  Flags.addBool("stats", false,
                "collect internal counters and report them per structure");
  if (!Flags.parse(Argc, Argv))
    return 1;
  setStatsCollection(Flags.getBool("stats"));

  const std::vector<std::string> Structures = {
      "vbl", "so-hash-vbl", "harris-michael", "so-hash-hm"};
  const bool WithLatency = Flags.getBool("latency");

  BenchJsonReport Report;
  Report.setContext("bench_binary", "hashset_scaling");
  Report.setContext("workload", "uniform keys, contains-heavy");

  for (unsigned Threads : Flags.getUnsignedList("threads")) {
    std::printf("\n== hashset_scaling: %u thread(s), %d%% updates ==\n",
                Threads, static_cast<int>(Flags.getInt("update-percent")));
    std::printf("%10s", "range");
    for (const std::string &Structure : Structures)
      std::printf(" %16s", Structure.c_str());
    std::printf(" %14s\n", "so-vbl/vbl");
    for (unsigned Range : Flags.getUnsignedList("ranges")) {
      WorkloadConfig Config;
      Config.UpdatePercent =
          static_cast<unsigned>(Flags.getInt("update-percent"));
      Config.KeyRange = Range;
      Config.Threads = Threads;
      Config.DurationMs =
          static_cast<unsigned>(Flags.getInt("duration-ms"));
      Config.WarmupMs = static_cast<unsigned>(Flags.getInt("warmup-ms"));
      Config.Repeats = static_cast<unsigned>(Flags.getInt("repeats"));
      Config.Seed = static_cast<uint64_t>(Flags.getInt("seed"));

      std::printf("%10u", Range);
      double FlatVbl = 0.0;
      double HashVbl = 0.0;
      std::vector<BenchRecord> RowRecords;
      for (const std::string &Structure : Structures) {
        const BenchRecord Record = measurePoint(
            "hashset_scaling", Structure, Config, WithLatency);
        std::printf(" %12.3f Mops", Record.ThroughputOpsPerSec * 1e-6);
        std::fflush(stdout);
        if (Structure == "vbl")
          FlatVbl = Record.ThroughputOpsPerSec;
        else if (Structure == "so-hash-vbl")
          HashVbl = Record.ThroughputOpsPerSec;
        RowRecords.push_back(Record);
        Report.add(Record);
      }
      if (FlatVbl > 0)
        std::printf(" %13.2fx", HashVbl / FlatVbl);
      std::printf("\n");
      // Counter tables after the row so the sweep stays readable.
      for (const BenchRecord &Record : RowRecords) {
        if (!Record.HasStats || Record.Stats.empty())
          continue;
        std::printf("  -- stats: %s --\n", Record.Structure.c_str());
        std::fputs(stats::renderTable(Record.Stats, "    ").c_str(),
                   stdout);
      }
    }
  }

  if (!Flags.getString("json").empty() &&
      !Report.writeFile(Flags.getString("json")))
    return 1;
  return 0;
}
