//===- bench/hashset_scaling.cpp - Flat lists vs split-ordered hashing ---===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Where does hashing pay? Sweeps the key range on a contains-heavy
/// workload (10% updates by default) and compares each flat list (vbl,
/// harris-michael) against its split-ordered hash overlay (so-hash-vbl,
/// so-hash-hm). Lists traverse O(n) nodes per operation, so their
/// throughput falls off linearly with the range; the hash overlays stay
/// near-flat (O(1) expected bucket length), and the crossover is the
/// point where sharding the paper's structures starts to matter.
/// Expected: the overlays win clearly from key range ~16k up at every
/// thread count (EXPERIMENTS.md records the measured grid).
///
//===----------------------------------------------------------------------===//

#include "harness/BenchJson.h"
#include "harness/TablePrinter.h"
#include "support/Barrier.h"
#include "support/CommandLine.h"
#include "support/Stats.h"
#include "support/Timing.h"

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace vbl;
using namespace vbl::harness;

namespace {

/// One fill-or-drain phase's op mix: 10% contains, 80% toward the
/// phase's direction, 10% against it (so the drained table never goes
/// exactly empty and the fill keeps probing absent keys).
SetOp pickPhaseOp(Xoshiro256 &Rng, bool Fill) {
  const uint64_t Roll = Rng.nextBounded(100);
  if (Roll < 10)
    return SetOp::Contains;
  if (Fill)
    return Roll < 90 ? SetOp::Insert : SetOp::Remove;
  return Roll < 90 ? SetOp::Remove : SetOp::Insert;
}

/// The grow/shrink phased workload the steady-state harness cannot
/// express: every thread alternates insert-heavy fill phases with
/// remove-heavy drain phases on a shared wall-clock grid (phase index =
/// elapsed / PhaseMs), so the whole table inflates and deflates
/// together. Grow-only tables pay the phased shape once (the index
/// ratchets up and stays); shrink-enabled tables ride it down every
/// drain and back up every fill, which is exactly the regime the resize
/// machinery — and its cost — is for.
double runPhased(ConcurrentSet &Set, unsigned Threads, SetKey Range,
                 unsigned PhaseMs, unsigned Phases, uint64_t Seed) {
  const uint64_t WindowNs = uint64_t{PhaseMs} * Phases * 1000000ULL;
  SpinBarrier Barrier(Threads);
  std::vector<std::thread> Workers;
  std::vector<uint64_t> Ops(Threads, 0);
  Workers.reserve(Threads);
  for (unsigned T = 0; T != Threads; ++T) {
    Workers.emplace_back([&, T] {
      Xoshiro256 Rng(Seed + 0x9e3779b9ULL * (T + 1));
      Barrier.arriveAndWait();
      const uint64_t Start = nowNanos();
      uint64_t Local = 0;
      bool Fill = true;
      for (;;) {
        // Re-read the clock every 64 ops: cheap enough to keep the
        // phase grid tight at benchmark op rates.
        const uint64_t Elapsed = nowNanos() - Start;
        if (Elapsed >= WindowNs)
          break;
        Fill = ((Elapsed / 1000000ULL) / PhaseMs) % 2 == 0;
        for (int I = 0; I != 64; ++I) {
          const SetKey Key = Rng.nextBounded(Range);
          switch (pickPhaseOp(Rng, Fill)) {
          case SetOp::Insert:
            Set.insert(Key);
            break;
          case SetOp::Remove:
            Set.remove(Key);
            break;
          default:
            Set.contains(Key);
            break;
          }
          ++Local;
        }
      }
      Ops[T] = Local;
    });
  }
  for (std::thread &Worker : Workers)
    Worker.join();
  uint64_t Total = 0;
  for (uint64_t N : Ops)
    Total += N;
  return static_cast<double>(Total) / (WindowNs * 1e-9);
}

/// Repeats runPhased on fresh structures and reports the median point
/// (mirroring measurePoint's protocol), with the resize counter delta
/// attached under --stats.
BenchRecord measurePhased(const std::string &Structure, unsigned Threads,
                          SetKey Range, unsigned PhaseMs, unsigned Phases,
                          unsigned Repeats, uint64_t Seed) {
  BenchRecord Record;
  Record.Bench = "hashset_phased";
  Record.Structure = Structure;
  Record.Threads = Threads;
  Record.KeyRange = Range;
  Record.UpdatePercent = 90; // the per-phase update rate
  Record.Repeats = Repeats;

  const stats::Snapshot Before = stats::snapshotAll();
  SampleStats Throughput;
  for (unsigned R = 0; R != Repeats; ++R) {
    auto Set = makeSet(Structure);
    if (!Set) {
      std::fprintf(stderr, "error: unknown algorithm '%s'\n",
                   Structure.c_str());
      std::abort();
    }
    prefill(*Set, Range, Seed + R);
    Throughput.add(
        runPhased(*Set, Threads, Range, PhaseMs, Phases, Seed + R));
  }
  Record.ThroughputOpsPerSec = Throughput.percentile(50);
  Record.ThroughputStddev = Throughput.stddev();
  if (statsCollectionEnabled()) {
    Record.HasStats = true;
    Record.Stats = stats::snapshotAll().delta(Before);
  }
  return Record;
}

} // namespace

int main(int Argc, char **Argv) {
  FlagSet Flags("Key-range sweep: flat lists vs split-ordered hash sets");
  Flags.addUnsignedList("threads", {1, 2, 4}, "thread counts to sweep");
  Flags.addUnsignedList("ranges", {1024, 4096, 16384, 65536},
                        "key ranges to sweep");
  Flags.addInt("update-percent", 10,
               "percentage of update operations (contains-heavy)");
  Flags.addInt("duration-ms", 60, "measured window per repetition");
  Flags.addInt("warmup-ms", 20, "warm-up before each window");
  Flags.addInt("repeats", 2, "repetitions per point (paper: 5)");
  Flags.addInt("seed", 42, "base RNG seed");
  Flags.addBool("latency", false,
                "collect a per-op latency repetition per point");
  Flags.addString("json", "", "optional path for vbl-bench-v1 records");
  Flags.addBool("stats", false,
                "collect internal counters and report them per structure");
  Flags.addBool("phased", false,
                "also run the grow/shrink phased workload (grow-only vs "
                "resize-enabled tables)");
  Flags.addInt("phase-ms", 40, "fill/drain phase length (phased mode)");
  Flags.addInt("phases", 6, "number of alternating phases (phased mode)");
  Flags.addInt("phased-range", 8192, "key range for the phased workload");
  if (!Flags.parse(Argc, Argv))
    return 1;
  setStatsCollection(Flags.getBool("stats"));

  // The steady-state sweep carries the resize-enabled overlays next to
  // their grow-only twins: once the table has grown to fit the range,
  // the shrink watermark is never crossed, so any steady-state gap is
  // pure bookkeeping overhead (EXPERIMENTS.md gates it at 5%).
  const std::vector<std::string> Structures = {
      "vbl",          "so-hash-vbl", "so-hash-vbl-resize",
      "harris-michael", "so-hash-hm",  "so-hash-hm-resize"};
  const bool WithLatency = Flags.getBool("latency");

  BenchJsonReport Report;
  Report.setContext("bench_binary", "hashset_scaling");
  Report.setContext("workload", "uniform keys, contains-heavy");

  for (unsigned Threads : Flags.getUnsignedList("threads")) {
    std::printf("\n== hashset_scaling: %u thread(s), %d%% updates ==\n",
                Threads, static_cast<int>(Flags.getInt("update-percent")));
    std::printf("%10s", "range");
    for (const std::string &Structure : Structures)
      std::printf(" %16s", Structure.c_str());
    std::printf(" %14s\n", "so-vbl/vbl");
    for (unsigned Range : Flags.getUnsignedList("ranges")) {
      WorkloadConfig Config;
      Config.UpdatePercent =
          static_cast<unsigned>(Flags.getInt("update-percent"));
      Config.KeyRange = Range;
      Config.Threads = Threads;
      Config.DurationMs =
          static_cast<unsigned>(Flags.getInt("duration-ms"));
      Config.WarmupMs = static_cast<unsigned>(Flags.getInt("warmup-ms"));
      Config.Repeats = static_cast<unsigned>(Flags.getInt("repeats"));
      Config.Seed = static_cast<uint64_t>(Flags.getInt("seed"));

      std::printf("%10u", Range);
      double FlatVbl = 0.0;
      double HashVbl = 0.0;
      std::vector<BenchRecord> RowRecords;
      for (const std::string &Structure : Structures) {
        const BenchRecord Record = measurePoint(
            "hashset_scaling", Structure, Config, WithLatency);
        std::printf(" %12.3f Mops", Record.ThroughputOpsPerSec * 1e-6);
        std::fflush(stdout);
        if (Structure == "vbl")
          FlatVbl = Record.ThroughputOpsPerSec;
        else if (Structure == "so-hash-vbl")
          HashVbl = Record.ThroughputOpsPerSec;
        RowRecords.push_back(Record);
        Report.add(Record);
      }
      if (FlatVbl > 0)
        std::printf(" %13.2fx", HashVbl / FlatVbl);
      std::printf("\n");
      // Counter tables after the row so the sweep stays readable.
      for (const BenchRecord &Record : RowRecords) {
        if (!Record.HasStats || Record.Stats.empty())
          continue;
        std::printf("  -- stats: %s --\n", Record.Structure.c_str());
        std::fputs(stats::renderTable(Record.Stats, "    ").c_str(),
                   stdout);
      }
    }
  }

  if (Flags.getBool("phased")) {
    const SetKey Range =
        static_cast<SetKey>(Flags.getInt("phased-range"));
    const unsigned PhaseMs = static_cast<unsigned>(Flags.getInt("phase-ms"));
    const unsigned Phases = static_cast<unsigned>(Flags.getInt("phases"));
    const unsigned Repeats = static_cast<unsigned>(Flags.getInt("repeats"));
    const uint64_t Seed = static_cast<uint64_t>(Flags.getInt("seed"));
    // Grow-only vs resize-enabled under the same phased churn; the
    // ratio column is resize/grow-only (≈1 means the swap machinery is
    // paying for its adaptivity).
    const std::vector<std::pair<std::string, std::string>> Pairs = {
        {"so-hash-vbl", "so-hash-vbl-resize"},
        {"so-hash-hm", "so-hash-hm-resize"}};
    for (unsigned Threads : Flags.getUnsignedList("threads")) {
      std::printf("\n== hashset_phased: %u thread(s), range %llu, "
                  "%u x %u ms fill/drain phases ==\n",
                  Threads, static_cast<unsigned long long>(Range), Phases,
                  PhaseMs);
      std::printf("%22s %16s %16s %14s\n", "pair", "grow-only",
                  "resize", "resize/grow");
      for (const auto &[GrowOnly, Resize] : Pairs) {
        const BenchRecord A = measurePhased(GrowOnly, Threads, Range,
                                            PhaseMs, Phases, Repeats, Seed);
        const BenchRecord B = measurePhased(Resize, Threads, Range,
                                            PhaseMs, Phases, Repeats, Seed);
        std::printf("%22s %12.3f Mops %12.3f Mops %13.2fx\n",
                    GrowOnly.c_str(), A.ThroughputOpsPerSec * 1e-6,
                    B.ThroughputOpsPerSec * 1e-6,
                    A.ThroughputOpsPerSec > 0
                        ? B.ThroughputOpsPerSec / A.ThroughputOpsPerSec
                        : 0.0);
        for (const BenchRecord &Record : {A, B}) {
          Report.add(Record);
          if (Record.HasStats && !Record.Stats.empty()) {
            std::printf("  -- stats: %s --\n", Record.Structure.c_str());
            std::fputs(stats::renderTable(Record.Stats, "    ").c_str(),
                       stdout);
          }
        }
      }
    }
  }

  if (!Flags.getString("json").empty() &&
      !Report.writeFile(Flags.getString("json")))
    return 1;
  return 0;
}
