//===- bench/micro_ops.cpp - Per-operation cost of every algorithm -------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Single-threaded per-operation latency of every registered list plus
/// a mutex-protected std::set reference point, on a prefilled range.
/// Complements the throughput figures: differences here are pure
/// algorithmic overhead (traversal representation, lock protocol,
/// reclamation bookkeeping), with zero contention.
///
//===----------------------------------------------------------------------===//

#include "harness/BenchJson.h"
#include "harness/Workload.h"
#include "lists/SetInterface.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <mutex>
#include <set>

using namespace vbl;

namespace {

constexpr SetKey Range = 2000;

void mixedOps(benchmark::State &State, ConcurrentSet &Set) {
  Xoshiro256 Rng(1234);
  const harness::OpPicker Picker(20);
  for (auto _ : State) {
    const SetKey Key = static_cast<SetKey>(Rng.nextBounded(Range));
    bool Result = false;
    switch (Picker.pick(Rng)) {
    case SetOp::Insert:
      Result = Set.insert(Key);
      break;
    case SetOp::Remove:
      Result = Set.remove(Key);
      break;
    case SetOp::Contains:
      Result = Set.contains(Key);
      break;
    case SetOp::RangeQuery:
      vbl_unreachable("OpPicker yields point ops only");
    }
    benchmark::DoNotOptimize(Result);
  }
}

void benchAlgorithm(benchmark::State &State, const std::string &Name) {
  auto Set = makeSet(Name);
  harness::prefill(*Set, Range, 99);
  mixedOps(State, *Set);
}

void benchStdSetMutex(benchmark::State &State) {
  std::set<SetKey> Set;
  std::mutex Mutex;
  Xoshiro256 Prefill(99 ^ 0x5eedULL);
  for (SetKey Key = 0; Key != Range; ++Key)
    if (Prefill.nextPercent(50))
      Set.insert(Key);

  Xoshiro256 Rng(1234);
  const harness::OpPicker Picker(20);
  for (auto _ : State) {
    const SetKey Key = static_cast<SetKey>(Rng.nextBounded(Range));
    bool Result = false;
    std::lock_guard<std::mutex> Lock(Mutex);
    switch (Picker.pick(Rng)) {
    case SetOp::Insert:
      Result = Set.insert(Key).second;
      break;
    case SetOp::Remove:
      Result = Set.erase(Key) == 1;
      break;
    case SetOp::Contains:
      Result = Set.count(Key) == 1;
      break;
    case SetOp::RangeQuery:
      vbl_unreachable("OpPicker yields point ops only");
    }
    benchmark::DoNotOptimize(Result);
  }
}

// Google Benchmark owns the default output; for the machine-readable
// pipeline (tools/run_benches.py, bench_compare.py) `--json <path>`
// reruns the same single-threaded mixed workload through the harness
// and emits vbl-bench-v1 records instead.
int runJson(const char *Path) {
  using namespace vbl::harness;
  WorkloadConfig Config;
  Config.UpdatePercent = 20;
  Config.KeyRange = Range;
  Config.Threads = 1;
  Config.Seed = 1234;

  BenchJsonReport Report;
  Report.setContext("bench_binary", "micro_ops");
  for (const std::string &Name : registeredSetNames()) {
    const BenchRecord Record =
        measurePoint("micro_ops", Name, Config, /*WithLatency=*/false);
    std::printf("  %-24s %10.2f Kops/s\n", Name.c_str(),
                Record.ThroughputOpsPerSec / 1e3);
    if (Record.HasStats && !Record.Stats.empty())
      std::fputs(stats::renderTable(Record.Stats, "    ").c_str(),
                 stdout);
    Report.add(Record);
  }
  return Report.writeFile(Path) ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  // Hand-rolled flag scan (Google Benchmark owns the rest of argv):
  // consume --stats so Initialize below does not reject it.
  int Out = 1;
  for (int I = 1; I != Argc; ++I) {
    if (std::strcmp(Argv[I], "--stats") == 0) {
      harness::setStatsCollection(true);
      continue;
    }
    Argv[Out++] = Argv[I];
  }
  Argc = Out;
  for (int I = 1; I + 1 < Argc; ++I)
    if (std::strcmp(Argv[I], "--json") == 0)
      return runJson(Argv[I + 1]);
  for (const std::string &Name : registeredSetNames())
    benchmark::RegisterBenchmark(("mixed20/" + Name).c_str(),
                                 [Name](benchmark::State &State) {
                                   benchAlgorithm(State, Name);
                                 });
  benchmark::RegisterBenchmark("mixed20/std_set_mutex",
                               &benchStdSetMutex);
  benchmark::Initialize(&Argc, Argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (harness::statsCollectionEnabled()) {
    // Google Benchmark interleaves its own repetitions, so the best
    // available granularity here is the whole-process total.
    std::printf("\n-- stats: process total --\n");
    std::fputs(stats::renderTable(stats::snapshotAll()).c_str(), stdout);
  }
  return 0;
}
