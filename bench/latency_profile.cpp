//===- bench/latency_profile.cpp - Per-op latency percentiles ------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Complements the throughput figures with tail behaviour: per-op
/// latency percentiles under the Fig. 1 workload. The interesting
/// comparison: VBL's p99 for *failed* updates is a pure traversal
/// (never parks on a lock), while Lazy's update tail absorbs lock
/// convoys — on any host, the update-tail gap widens with threads.
///
//===----------------------------------------------------------------------===//

#include "harness/BenchJson.h"
#include "harness/Runner.h"
#include "support/CommandLine.h"

#include <cstdio>

using namespace vbl;
using namespace vbl::harness;

static void printRow(const char *Op, const SampleStats &Stats) {
  if (Stats.empty()) {
    std::printf("  %-9s (no samples)\n", Op);
    return;
  }
  std::printf("  %-9s n=%-8zu p50=%7.0fns p90=%7.0fns p99=%8.0fns "
              "p999=%8.0fns max=%9.0fns\n",
              Op, Stats.count(), Stats.percentile(50),
              Stats.percentile(90), Stats.percentile(99),
              Stats.percentile(99.9), Stats.max());
}

int main(int Argc, char **Argv) {
  FlagSet Flags("Per-operation latency percentiles");
  Flags.addUnsignedList("threads", {1, 4}, "thread counts");
  Flags.addInt("range", 50, "key range");
  Flags.addInt("update-percent", 20, "percentage of updates");
  Flags.addInt("duration-ms", 120, "measured window");
  Flags.addString("algos", "vbl,lazy,harris-michael",
                  "comma-separated algorithms");
  Flags.addInt("seed", 42, "base RNG seed");
  Flags.addString("json", "", "optional path for vbl-bench-v1 records");
  Flags.addBool("stats", false,
                "collect internal counters and report them per structure");
  if (!Flags.parse(Argc, Argv))
    return 1;
  setStatsCollection(Flags.getBool("stats"));

  std::vector<std::string> Algos;
  {
    const std::string &Raw = Flags.getString("algos");
    size_t Pos = 0;
    while (Pos <= Raw.size()) {
      const size_t Comma = Raw.find(',', Pos);
      Algos.push_back(Raw.substr(
          Pos, Comma == std::string::npos ? Comma : Comma - Pos));
      if (Comma == std::string::npos)
        break;
      Pos = Comma + 1;
    }
  }

  harness::BenchJsonReport Report;
  Report.setContext("bench_binary", "latency_profile");

  for (unsigned Threads : Flags.getUnsignedList("threads")) {
    std::printf("\n=== %u thread(s), %lld%% updates, range %lld ===\n",
                Threads,
                static_cast<long long>(Flags.getInt("update-percent")),
                static_cast<long long>(Flags.getInt("range")));
    for (const std::string &Algo : Algos) {
      WorkloadConfig Config;
      Config.UpdatePercent =
          static_cast<unsigned>(Flags.getInt("update-percent"));
      Config.KeyRange = Flags.getInt("range");
      Config.Threads = Threads;
      Config.DurationMs =
          static_cast<unsigned>(Flags.getInt("duration-ms"));
      Config.WarmupMs = 0; // Latency run: warmup folded into window.
      Config.Seed = static_cast<uint64_t>(Flags.getInt("seed"));

      auto Set = makeSet(Algo);
      if (!Set) {
        std::fprintf(stderr, "error: unknown algorithm '%s'\n",
                     Algo.c_str());
        return 1;
      }
      prefill(*Set, Config.KeyRange, Config.Seed);
      LatencyProfile Profile;
      // This bench bypasses measureAlgorithm, so it brackets the
      // window with its own snapshots.
      const stats::Snapshot StatsBefore =
          statsCollectionEnabled() ? stats::snapshotAll()
                                   : stats::Snapshot();
      const RunResult Result = runOnceLatency(*Set, Config, Profile);
      const stats::Snapshot StatsDelta =
          statsCollectionEnabled()
              ? stats::snapshotAll().delta(StatsBefore)
              : stats::Snapshot();
      if (!Result.InvariantsHeld) {
        std::fprintf(stderr, "error: %s corrupted its structure\n",
                     Algo.c_str());
        return 1;
      }
      std::printf("%s:\n", Algo.c_str());
      printRow("contains", Profile.Contains);
      printRow("insert", Profile.Insert);
      printRow("remove", Profile.Remove);
      if (!StatsDelta.empty())
        std::fputs(stats::renderTable(StatsDelta, "    ").c_str(),
                   stdout);

      // One record per operation kind: the throughput is the window's
      // (instrumented) rate, the latency percentiles are the payload.
      const std::pair<const char *, const SampleStats *> Ops[] = {
          {"contains", &Profile.Contains},
          {"insert", &Profile.Insert},
          {"remove", &Profile.Remove},
      };
      for (const auto &[Op, Stats] : Ops) {
        if (Stats->empty())
          continue;
        harness::BenchRecord Record;
        Record.Bench = "latency_profile";
        Record.Structure = Algo + "/" + Op;
        Record.Threads = Threads;
        Record.KeyRange = Config.KeyRange;
        Record.UpdatePercent = Config.UpdatePercent;
        Record.Repeats = 1;
        Record.ThroughputOpsPerSec = Result.OpsPerSecond;
        Record.HasLatency = true;
        Record.P50LatencyNs = Stats->percentile(50);
        Record.P99LatencyNs = Stats->percentile(99);
        Record.P999LatencyNs = Stats->percentile(99.9);
        // The three per-op records describe one shared window (see
        // ThroughputOpsPerSec above), so they share its delta too.
        if (!StatsDelta.empty()) {
          Record.HasStats = true;
          Record.Stats = StatsDelta;
        }
        Report.add(Record);
      }
    }
  }

  if (!Flags.getString("json").empty())
    if (!Report.writeFile(Flags.getString("json")))
      return 1;
  return 0;
}
