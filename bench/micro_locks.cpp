//===- bench/micro_locks.cpp - Spinlock primitive costs ------------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Costs of the lock primitives the lock-based lists are built from:
/// uncontended lock/unlock, uncontended tryLock, and a contended
/// counter increment. Rationale for the repo's default: the VBL node
/// lock's critical section is two stores, so the unfair TAS lock's
/// lower handoff latency beats the fair TicketLock.
///
//===----------------------------------------------------------------------===//

#include "core/ValueAwareTryLock.h"
#include "stats/Stats.h"
#include "sync/SpinLocks.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

using namespace vbl;

namespace {

template <class LockT> void benchUncontended(benchmark::State &State) {
  LockT Lock;
  for (auto _ : State) {
    Lock.lock();
    benchmark::DoNotOptimize(&Lock);
    Lock.unlock();
  }
}

template <class LockT> void benchTryLock(benchmark::State &State) {
  LockT Lock;
  for (auto _ : State) {
    const bool Ok = Lock.tryLock();
    benchmark::DoNotOptimize(Ok);
    if (Ok)
      Lock.unlock();
  }
}

template <class LockT> void benchContended(benchmark::State &State) {
  static LockT Lock;
  static long Counter;
  for (auto _ : State) {
    Lock.lock();
    ++Counter;
    Lock.unlock();
  }
  benchmark::DoNotOptimize(Counter);
}

void benchValueAwareTryLock(benchmark::State &State) {
  ValueAwareTryLock<TasLock> Lock;
  long Cell = 0;
  for (auto _ : State) {
    if (Lock.acquireIfValid<DirectPolicy>(&Cell, [&] { return true; })) {
      ++Cell;
      Lock.release<DirectPolicy>(&Cell);
    }
  }
  benchmark::DoNotOptimize(Cell);
}

} // namespace

BENCHMARK(benchUncontended<TasLock>)->Name("uncontended/tas");
BENCHMARK(benchUncontended<TtasLock>)->Name("uncontended/ttas");
BENCHMARK(benchUncontended<TicketLock>)->Name("uncontended/ticket");
BENCHMARK(benchTryLock<TasLock>)->Name("trylock/tas");
BENCHMARK(benchTryLock<TtasLock>)->Name("trylock/ttas");
BENCHMARK(benchTryLock<TicketLock>)->Name("trylock/ticket");
BENCHMARK(benchContended<TasLock>)->Name("contended/tas")->Threads(4);
BENCHMARK(benchContended<TtasLock>)->Name("contended/ttas")->Threads(4);
BENCHMARK(benchContended<TicketLock>)
    ->Name("contended/ticket")
    ->Threads(4);
BENCHMARK(benchValueAwareTryLock)->Name("uncontended/value_aware_tas");

// Expanded BENCHMARK_MAIN so --stats can be consumed before Google
// Benchmark sees (and would reject) it.
int main(int Argc, char **Argv) {
  bool WithStats = false;
  int Out = 1;
  for (int I = 1; I != Argc; ++I) {
    if (std::strcmp(Argv[I], "--stats") == 0) {
      WithStats = true;
      continue;
    }
    Argv[Out++] = Argv[I];
  }
  Argc = Out;
  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (WithStats) {
    std::printf("\n-- stats: process total --\n");
    std::fputs(stats::renderTable(stats::snapshotAll()).c_str(), stdout);
  }
  return 0;
}
