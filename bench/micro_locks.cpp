//===- bench/micro_locks.cpp - Spinlock primitive costs ------------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Costs of the lock primitives the lock-based lists are built from:
/// uncontended lock/unlock, uncontended tryLock, and a contended
/// counter increment. Rationale for the repo's default: the VBL node
/// lock's critical section is two stores, so the unfair TAS lock's
/// lower handoff latency beats the fair TicketLock.
///
//===----------------------------------------------------------------------===//

#include "core/ValueAwareTryLock.h"
#include "harness/BenchJson.h"
#include "stats/Stats.h"
#include "sync/SpinLocks.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>

using namespace vbl;

namespace {

/// Console output as usual, plus one vbl-bench-v1 record per benchmark
/// (structure = the benchmark name, throughput = iterations/s) so
/// tools/run_benches.py folds the lock microcosts into the suite
/// artifact. Aggregate rows (mean/median/stddev repetitions) are
/// skipped — each record is a single run.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
public:
  std::vector<harness::BenchRecord> Records;

  void ReportRuns(const std::vector<Run> &Runs) override {
    for (const Run &R : Runs) {
      if (R.error_occurred || R.run_type != Run::RT_Iteration)
        continue;
      harness::BenchRecord Rec;
      Rec.Bench = "micro_locks";
      Rec.Structure = R.benchmark_name();
      Rec.Threads = static_cast<unsigned>(R.threads);
      Rec.Repeats = 1;
      const double PerIterNs = R.GetAdjustedRealTime();
      Rec.ThroughputOpsPerSec = PerIterNs > 0.0 ? 1e9 / PerIterNs : 0.0;
      Records.push_back(std::move(Rec));
    }
    ConsoleReporter::ReportRuns(Runs);
  }
};

template <class LockT> void benchUncontended(benchmark::State &State) {
  LockT Lock;
  for (auto _ : State) {
    Lock.lock();
    benchmark::DoNotOptimize(&Lock);
    Lock.unlock();
  }
}

template <class LockT> void benchTryLock(benchmark::State &State) {
  LockT Lock;
  for (auto _ : State) {
    const bool Ok = Lock.tryLock();
    benchmark::DoNotOptimize(Ok);
    if (Ok)
      Lock.unlock();
  }
}

template <class LockT> void benchContended(benchmark::State &State) {
  static LockT Lock;
  static long Counter;
  for (auto _ : State) {
    Lock.lock();
    ++Counter;
    Lock.unlock();
  }
  benchmark::DoNotOptimize(Counter);
}

void benchValueAwareTryLock(benchmark::State &State) {
  ValueAwareTryLock<TasLock> Lock;
  long Cell = 0;
  for (auto _ : State) {
    if (Lock.acquireIfValid<DirectPolicy>(&Cell, [&] { return true; })) {
      ++Cell;
      Lock.release<DirectPolicy>(&Cell);
    }
  }
  benchmark::DoNotOptimize(Cell);
}

} // namespace

BENCHMARK(benchUncontended<TasLock>)->Name("uncontended/tas");
BENCHMARK(benchUncontended<TtasLock>)->Name("uncontended/ttas");
BENCHMARK(benchUncontended<TicketLock>)->Name("uncontended/ticket");
BENCHMARK(benchTryLock<TasLock>)->Name("trylock/tas");
BENCHMARK(benchTryLock<TtasLock>)->Name("trylock/ttas");
BENCHMARK(benchTryLock<TicketLock>)->Name("trylock/ticket");
BENCHMARK(benchContended<TasLock>)->Name("contended/tas")->Threads(4);
BENCHMARK(benchContended<TtasLock>)->Name("contended/ttas")->Threads(4);
BENCHMARK(benchContended<TicketLock>)
    ->Name("contended/ticket")
    ->Threads(4);
BENCHMARK(benchValueAwareTryLock)->Name("uncontended/value_aware_tas");

// Expanded BENCHMARK_MAIN so --stats and --json=<path> can be consumed
// before Google Benchmark sees (and would reject) them.
int main(int Argc, char **Argv) {
  bool WithStats = false;
  std::string JsonPath;
  int Out = 1;
  for (int I = 1; I != Argc; ++I) {
    if (std::strcmp(Argv[I], "--stats") == 0) {
      WithStats = true;
      continue;
    }
    if (std::strncmp(Argv[I], "--json=", 7) == 0) {
      JsonPath = Argv[I] + 7;
      continue;
    }
    if (std::strcmp(Argv[I], "--json") == 0 && I + 1 != Argc) {
      JsonPath = Argv[++I];
      continue;
    }
    Argv[Out++] = Argv[I];
  }
  Argc = Out;
  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  JsonCaptureReporter Reporter;
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  benchmark::Shutdown();
  if (!JsonPath.empty()) {
    harness::BenchJsonReport Report;
    Report.setContext("bench_binary", "micro_locks");
    for (harness::BenchRecord &Rec : Reporter.Records)
      Report.add(std::move(Rec));
    if (!Report.writeFile(JsonPath))
      return 1;
  }
  if (WithStats) {
    std::printf("\n-- stats: process total --\n");
    std::fputs(stats::renderTable(stats::snapshotAll()).c_str(), stdout);
  }
  return 0;
}
