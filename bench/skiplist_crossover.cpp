//===- bench/skiplist_crossover.cpp - Lists vs the skip-list extension ---===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// The paper's concluding remark motivates generalizing the approach to
/// skip lists. This bench frames that: VBL's O(n) traversals win on the
/// small, hot sets its evaluation targets, while the lazy skip list's
/// O(log n) search overtakes as the range grows. The printed sweep
/// locates the crossover on the host — the range beyond which "use a
/// skip list" beats any list-based set regardless of its concurrency
/// properties.
///
//===----------------------------------------------------------------------===//

#include "harness/TablePrinter.h"
#include "support/CommandLine.h"

#include <cstdio>

using namespace vbl;
using namespace vbl::harness;

int main(int Argc, char **Argv) {
  FlagSet Flags("Range sweep: VBL vs Lazy vs lazy skip list");
  Flags.addUnsignedList("threads", {1, 4}, "thread counts");
  Flags.addUnsignedList("ranges", {50, 200, 2000, 20000},
                        "key ranges to sweep");
  Flags.addInt("update-percent", 20, "percentage of updates");
  Flags.addInt("duration-ms", 60, "measured window per repetition");
  Flags.addInt("warmup-ms", 20, "warm-up per window");
  Flags.addInt("repeats", 2, "repetitions per point");
  Flags.addInt("seed", 42, "base RNG seed");
  Flags.addString("json", "", "optional path for vbl-bench-v1 records");
  Flags.addBool("stats", false,
                "collect internal counters and report them per structure");
  if (!Flags.parse(Argc, Argv))
    return 1;
  setStatsCollection(Flags.getBool("stats"));

  BenchJsonReport Report;
  Report.setContext("bench_binary", "skiplist_crossover");

  for (unsigned Range : Flags.getUnsignedList("ranges")) {
    WorkloadConfig Base;
    Base.UpdatePercent =
        static_cast<unsigned>(Flags.getInt("update-percent"));
    Base.KeyRange = Range;
    Base.DurationMs = static_cast<unsigned>(Flags.getInt("duration-ms"));
    Base.WarmupMs = static_cast<unsigned>(Flags.getInt("warmup-ms"));
    Base.Repeats = static_cast<unsigned>(Flags.getInt("repeats"));
    Base.Seed = static_cast<uint64_t>(Flags.getInt("seed"));

    char Title[96];
    std::snprintf(Title, sizeof(Title), "range %u, %u%% updates", Range,
                  Base.UpdatePercent);
    Panel P(Title, {"skiplist-lazy", "vbl", "bst-tombstone", "lazy"},
            Flags.getUnsignedList("threads"));
    P.measureAll(Base);
    P.print();
    P.appendJson(Report, Base);
  }
  std::printf("\n(the skiplist-lazy/vbl column locates the crossover: "
              "<1 on small hot sets, >1 once O(log n) wins)\n");
  if (!Flags.getString("json").empty() &&
      !Report.writeFile(Flags.getString("json")))
    return 1;
  return 0;
}
