//===- bench/readonly_traversal.cpp - §1 read-only claim -----------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// The paper's §1 claim: "as our algorithm differs from Harris-Michael
/// by avoiding metadata accesses during traversals, it outperforms it
/// by up to 1.6x on read-only workloads." This bench isolates that
/// effect: 0% updates across the key ranges, VBL (value-only
/// traversals) vs Harris-Michael (mark-tagged next words) vs Lazy
/// (value traversal + one mark read at the end). The vbl/harris-michael
/// ratio column is the claim under test.
///
//===----------------------------------------------------------------------===//

#include "harness/TablePrinter.h"
#include "support/CommandLine.h"

#include <cstdio>

using namespace vbl;
using namespace vbl::harness;

int main(int Argc, char **Argv) {
  FlagSet Flags("Read-only traversal: VBL vs Harris-Michael vs Lazy");
  Flags.addUnsignedList("threads", {1, 2, 4}, "thread counts to sweep");
  Flags.addUnsignedList("ranges", {200, 2000, 20000}, "key ranges");
  Flags.addInt("duration-ms", 100, "measured window per repetition");
  Flags.addInt("warmup-ms", 30, "warm-up before each window");
  Flags.addInt("repeats", 3, "repetitions per point");
  Flags.addInt("seed", 42, "base RNG seed");
  Flags.addString("json", "", "optional path for vbl-bench-v1 records");
  Flags.addBool("stats", false,
                "collect internal counters and report them per structure");
  if (!Flags.parse(Argc, Argv))
    return 1;
  setStatsCollection(Flags.getBool("stats"));

  BenchJsonReport Report;
  Report.setContext("bench_binary", "readonly_traversal");

  for (unsigned Range : Flags.getUnsignedList("ranges")) {
    WorkloadConfig Base;
    Base.UpdatePercent = 0;
    Base.KeyRange = Range;
    Base.DurationMs = static_cast<unsigned>(Flags.getInt("duration-ms"));
    Base.WarmupMs = static_cast<unsigned>(Flags.getInt("warmup-ms"));
    Base.Repeats = static_cast<unsigned>(Flags.getInt("repeats"));
    Base.Seed = static_cast<uint64_t>(Flags.getInt("seed"));

    char Title[96];
    std::snprintf(Title, sizeof(Title),
                  "read-only contains, range %u", Range);
    Panel P(Title, {"vbl", "harris-michael", "lazy"},
            Flags.getUnsignedList("threads"));
    P.measureAll(Base);
    P.print();
    P.appendJson(Report, Base);
  }
  if (!Flags.getString("json").empty() &&
      !Report.writeFile(Flags.getString("json")))
    return 1;
  return 0;
}
