//===- stats/Stats.cpp - Shard registry, aggregation, rendering ----------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "stats/Stats.h"

#include <cstdio>
#include <cstring>
#include <mutex>
#include <vector>

namespace vbl {
namespace stats {

const char *counterName(Counter C) {
  switch (C) {
  case Counter::ListTraversals:
    return "list.traversals";
  case Counter::ListTraversalHops:
    return "list.traversal_hops";
  case Counter::ListRestarts:
    return "list.restarts";
  case Counter::ListCasFailures:
    return "list.cas_failures";
  case Counter::ListTrylockFailures:
    return "list.trylock_failures";
  case Counter::ListValidationAborts:
    return "list.validation_aborts";
  case Counter::ListValueValidationAborts:
    return "list.value_validation_aborts";
  case Counter::LockAcquireRetries:
    return "lock.acquire_retries";
  case Counter::LockOptimisticRetries:
    return "lock.optimistic_retries";
  case Counter::EpochRetired:
    return "epoch.retired";
  case Counter::EpochFreed:
    return "epoch.freed";
  case Counter::EpochAdvances:
    return "epoch.advances";
  case Counter::EpochStalls:
    return "epoch.stalls";
  case Counter::HpRetired:
    return "hp.retired";
  case Counter::HpFreed:
    return "hp.freed";
  case Counter::HpScans:
    return "hp.scans";
  case Counter::HpScanKept:
    return "hp.scan_kept";
  case Counter::HpOrphanBacklog:
    return "hp.orphan_backlog";
  case Counter::HpOrphansAdopted:
    return "hp.orphans_adopted";
  case Counter::PoolHits:
    return "pool.hits";
  case Counter::PoolMisses:
    return "pool.misses";
  case Counter::PoolBypass:
    return "pool.bypass";
  case Counter::ChunkSplits:
    return "chunk.splits";
  case Counter::ChunkCompactions:
    return "chunk.compactions";
  case Counter::ChunkUnlinks:
    return "chunk.unlinks";
  case Counter::ChunkMerges:
    return "chunk.merges";
  case Counter::ChunkValidationAborts:
    return "chunk.validation_aborts";
  case Counter::VbrRetired:
    return "reclaim.vbr.retired";
  case Counter::VbrReused:
    return "reclaim.vbr.reused";
  case Counter::VbrFreshAllocs:
    return "reclaim.vbr.fresh_allocs";
  case Counter::VbrClockBumps:
    return "reclaim.vbr.clock_bumps";
  case Counter::VbrBirthRejects:
    return "reclaim.vbr.birth_rejects";
  case Counter::MapBucketInits:
    return "map.bucket_inits";
  case Counter::MapBucketInitChain:
    return "map.bucket_init_chain";
  case Counter::MapResizes:
    return "map.resizes";
  case Counter::MapResizesLost:
    return "map.resizes_lost";
  case Counter::MapResizeGrows:
    return "map.resize.grows";
  case Counter::MapResizeShrinks:
    return "map.resize.shrinks";
  case Counter::MapResizeSegmentsRetired:
    return "map.resize.retired_segments";
  case Counter::ScanRetries:
    return "scan.retries";
  case Counter::ScanFallbacks:
    return "scan.fallbacks";
  case Counter::ScanKeysReturned:
    return "scan.keys_returned";
  case Counter::AnalysisFlowChecks:
    return "analysis.flow_checks";
  case Counter::ServiceOpsDirect:
    return "service.ops_direct";
  case Counter::ServiceOpsCombined:
    return "service.ops_combined";
  case Counter::ServiceCombineRounds:
    return "service.combine_rounds";
  case Counter::ServiceCombineHandoffs:
    return "service.combine_handoffs";
  case Counter::ServiceBatchFlushes:
    return "service.batch_flushes";
  case Counter::ServiceAdaptiveDirects:
    return "service.adaptive_directs";
  case Counter::NumCounters_:
    break;
  }
  vbl_unreachable("counterName: bad Counter");
}

const char *histogramName(Histogram H) {
  switch (H) {
  case Histogram::TraversalHops:
    return "hist.traversal_hops";
  case Histogram::EpochLag:
    return "hist.epoch_lag";
  case Histogram::ChunkOccupancy:
    return "hist.chunk_occupancy";
  case Histogram::ServiceCombineOps:
    return "hist.service_combine_ops";
  case Histogram::ServiceVisitOps:
    return "hist.service_visit_ops";
  case Histogram::NumHistograms_:
    break;
  }
  vbl_unreachable("histogramName: bad Histogram");
}

#if VBL_STATS

namespace detail {

thread_local Shard *TlsShard = nullptr;

namespace {

/// Every shard ever created plus the exited-thread free list. Created
/// with `new` and never destroyed: TLS destructors of other modules
/// (reclamation domains, the node pool) may bump counters after any
/// static destructor has run.
struct Registry {
  std::mutex Mutex;
  std::vector<Shard *> All;   ///< Owned; never freed (see above).
  std::vector<Shard *> Free;  ///< Parked by exited threads, not zeroed.
  Shard *SharedTeardown = nullptr; ///< Multi-writer fallback shard.
};

Registry &registry() {
  static Registry *R = [] {
    auto *Reg = new Registry;
    Reg->SharedTeardown = new Shard;
    Reg->SharedTeardown->Shared = true;
    Reg->All.push_back(Reg->SharedTeardown);
    return Reg;
  }();
  return *R;
}

/// Set once this thread's shard holder has been destroyed; later bumps
/// (TLS-teardown frees) go to the shared shard with real RMWs.
thread_local bool TlsDead = false;

void releaseShard(Shard *S) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  R.Free.push_back(S);
}

/// RAII owner of the thread's shard: parks it (unzeroed) on exit so
/// totals stay monotonic while episode-spawning tests recycle storage.
struct ShardHolder {
  Shard *S;
  explicit ShardHolder(Shard *S) : S(S) {}
  ~ShardHolder() {
    releaseShard(S);
    TlsShard = nullptr;
    TlsDead = true;
  }
};

Shard *acquireShard() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  if (!R.Free.empty()) {
    Shard *S = R.Free.back();
    R.Free.pop_back();
    return S;
  }
  auto *S = new Shard;
  R.All.push_back(S);
  return S;
}

/// Attaches a shard to the calling thread, or returns the shared
/// teardown shard when the thread's TLS is already unwinding.
Shard *currentShardSlow() {
  if (VBL_UNLIKELY(TlsDead))
    return registry().SharedTeardown;
  thread_local ShardHolder Holder(acquireShard());
  TlsShard = Holder.S;
  return Holder.S;
}

void addAnyCell(Shard *S, std::atomic<uint64_t> &Cell, uint64_t Delta) {
  if (VBL_UNLIKELY(S->Shared)) {
    Cell.fetch_add(Delta, std::memory_order_relaxed);
    return;
  }
  addCell(Cell, Delta);
}

} // namespace

void bumpSlow(Counter C, uint64_t Delta) {
  Shard *S = currentShardSlow();
  addAnyCell(S, S->Counters[static_cast<size_t>(C)], Delta);
}

void histogramAddSlow(Histogram H, uint64_t Value) {
  Shard *S = currentShardSlow();
  addAnyCell(
      S, S->Histograms[static_cast<size_t>(H)][histogramBucket(Value)], 1);
}

} // namespace detail

Snapshot snapshotAll() {
  Snapshot Sum;
  detail::Registry &R = detail::registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  for (const detail::Shard *S : R.All) {
    for (size_t I = 0; I < NumCounters; ++I)
      Sum.Counters[I] += S->Counters[I].load(std::memory_order_relaxed);
    for (size_t I = 0; I < NumHistograms; ++I)
      for (size_t B = 0; B < HistogramBuckets; ++B)
        Sum.Histograms[I][B] +=
            S->Histograms[I][B].load(std::memory_order_relaxed);
  }
  // list.traversals is derived: every noteTraversal lands in exactly
  // one hop-histogram bucket, so the bucket sum is the traversal count
  // and the hot path saves a cell write (see noteTraversal).
  uint64_t Traversals = 0;
  for (uint64_t B :
       Sum.Histograms[static_cast<size_t>(Histogram::TraversalHops)])
    Traversals += B;
  Sum.Counters[static_cast<size_t>(Counter::ListTraversals)] += Traversals;
  return Sum;
}

#endif // VBL_STATS

std::string renderTable(const Snapshot &S, const char *Indent) {
  std::string Out;
  char Line[160];
  for (size_t I = 0; I < NumCounters; ++I) {
    if (!S.Counters[I])
      continue;
    std::snprintf(Line, sizeof(Line), "%s%-28s %12llu\n", Indent,
                  counterName(static_cast<Counter>(I)),
                  static_cast<unsigned long long>(S.Counters[I]));
    Out += Line;
  }
  for (size_t I = 0; I < NumHistograms; ++I) {
    uint64_t Total = 0;
    for (uint64_t V : S.Histograms[I])
      Total += V;
    if (!Total)
      continue;
    std::snprintf(Line, sizeof(Line), "%s%-28s ", Indent,
                  histogramName(static_cast<Histogram>(I)));
    Out += Line;
    // One "lo-hi:count" cell per non-empty bucket; bucket B holds
    // values with bit_width == B, so [2^(B-1), 2^B).
    for (size_t B = 0; B < HistogramBuckets; ++B) {
      const uint64_t Count = S.Histograms[I][B];
      if (!Count)
        continue;
      const unsigned long long Lo = B == 0 ? 0 : 1ULL << (B - 1);
      if (B == 0)
        std::snprintf(Line, sizeof(Line), "0:%llu ",
                      static_cast<unsigned long long>(Count));
      else if (B == HistogramBuckets - 1)
        std::snprintf(Line, sizeof(Line), "%llu+:%llu ", Lo,
                      static_cast<unsigned long long>(Count));
      else
        std::snprintf(Line, sizeof(Line), "%llu-%llu:%llu ", Lo,
                      (1ULL << B) - 1,
                      static_cast<unsigned long long>(Count));
      Out += Line;
    }
    Out += '\n';
  }
  return Out;
}

void appendJsonFields(const Snapshot &S, std::string &Out) {
  char Buf[96];
  bool First = true;
  for (size_t I = 0; I < NumCounters; ++I) {
    if (!S.Counters[I])
      continue;
    std::snprintf(Buf, sizeof(Buf), "%s\"%s\":%llu", First ? "" : ",",
                  counterName(static_cast<Counter>(I)),
                  static_cast<unsigned long long>(S.Counters[I]));
    Out += Buf;
    First = false;
  }
  // Non-empty histograms as fixed-width bucket arrays (bucket B holds
  // values with bit_width == B; see histogramBucket).
  for (size_t I = 0; I < NumHistograms; ++I) {
    uint64_t Total = 0;
    for (uint64_t V : S.Histograms[I])
      Total += V;
    if (!Total)
      continue;
    std::snprintf(Buf, sizeof(Buf), "%s\"%s\":[", First ? "" : ",",
                  histogramName(static_cast<Histogram>(I)));
    Out += Buf;
    for (size_t B = 0; B < HistogramBuckets; ++B) {
      std::snprintf(Buf, sizeof(Buf), "%s%llu", B ? "," : "",
                    static_cast<unsigned long long>(S.Histograms[I][B]));
      Out += Buf;
    }
    Out += ']';
    First = false;
  }
}

} // namespace stats
} // namespace vbl
