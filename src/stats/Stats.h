//===- stats/Stats.h - Sharded event counters and histograms -------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability layer: a fixed catalogue of event counters plus a
/// few bounded log2 histograms, sharded per thread so the hot paths of
/// the lists, locks and reclamation domains can count events without
/// introducing shared cache lines or lock-prefixed instructions.
///
/// The paper argues in *rejected schedules* — a configuration is slow
/// because its optimistic attempts fail validation, not because its
/// accepted operations are slow — and "In the Search of Optimal
/// Concurrency" (PAPERS.md) makes that the comparison metric. These
/// counters make the rejected work directly observable: restarts,
/// try-lock failures, value-validation aborts, CAS failures, optimistic
/// read retries, plus the reclamation backpressure signals (epoch
/// stalls, HP scan/orphan backlog, pool hit rates) that GCList treats
/// as first-class performance inputs.
///
/// Design:
///  - Each thread owns one cache-line-aligned `Shard` of plain 64-bit
///    cells. The owner bumps with `store(load(relaxed) + d, relaxed)`:
///    a single ADD instruction on x86, no RMW, race-free because only
///    the owner writes. Readers (snapshotAll) see each cell atomically
///    but may observe a mid-flight mixture across cells — snapshots are
///    monotonic per cell, not globally consistent cuts. That is the
///    right contract for delta-based reporting and for the
///    deterministic-scheduler tests, which quiesce before reading.
///  - Shards are never freed. On thread exit a shard is parked on a
///    free list *without zeroing* and handed to the next new thread, so
///    totals stay monotonic and episode-heavy tests (the explorer
///    spawns threads per episode) reuse a bounded pool instead of
///    growing without bound.
///  - A bump after the owning thread's TLS teardown (reclamation
///    domains count frees from TLS destructors) falls back to a shared
///    shard that uses real fetch_add — correctness over speed on a path
///    that runs once per thread.
///  - `VBL_STATS=0` (CMake option -DVBL_STATS=OFF) compiles the layer
///    out entirely: every hook below becomes an empty inline function,
///    snapshots are all-zero, and no storage or TLS exists. Call sites
///    do not need their own #ifdefs.
///
/// Aggregation is pull-based: `snapshotAll()` sums every shard ever
/// created; `Snapshot::delta()` subtracts a baseline. Tests that need
/// exact per-schedule numbers take a snapshot, run one fixed schedule
/// under the deterministic scheduler, and assert on the delta.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_STATS_STATS_H
#define VBL_STATS_STATS_H

#include "support/Compiler.h"

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>

#ifndef VBL_STATS
#define VBL_STATS 1
#endif

namespace vbl {
namespace stats {

/// The counter catalogue. Names (counterName) follow a dotted
/// "layer.event" convention that is stable across the JSON records,
/// the human-readable table, and DESIGN.md.
enum class Counter : uint16_t {
  // lists/core — the schedule-rejection metrics of §2-§3.
  ListTraversals,           ///< list.traversals: completed traversal loops.
                            ///  Derived at snapshot time from the hop
                            ///  histogram's bucket sum (noteTraversal).
  ListTraversalHops,        ///< list.traversal_hops: nodes visited.
  ListRestarts,             ///< list.restarts: operation restarted from
                            ///  scratch (every Policy::onRestart site).
  ListCasFailures,          ///< list.cas_failures: failed CAS on a link or
                            ///  mark word (Harris-Michael).
  ListTrylockFailures,      ///< list.trylock_failures: VBL try-lock
                            ///  acquired but the identity validation
                            ///  (next unchanged, node live) failed.
  ListValidationAborts,     ///< list.validation_aborts: lock-then-validate
                            ///  window check failed (Lazy §2.3).
  ListValueValidationAborts,///< list.value_validation_aborts: VBL §3.1
                            ///  value-based validation failed.
  // sync.
  LockAcquireRetries,       ///< lock.acquire_retries: blocking lock() spun
                            ///  through at least one failed attempt.
  LockOptimisticRetries,    ///< lock.optimistic_retries: versioned-lock
                            ///  optimistic read observed a writer or
                            ///  failed readValidate.
  // reclaim: epochs.
  EpochRetired,             ///< epoch.retired: nodes handed to an epoch
                            ///  domain.
  EpochFreed,               ///< epoch.freed: nodes whose grace period
                            ///  elapsed and whose deleter ran.
  EpochAdvances,            ///< epoch.advances: successful global-epoch
                            ///  increments.
  EpochStalls,              ///< epoch.stalls: advance blocked by a reader
                            ///  still announcing an older epoch.
  // reclaim: hazard pointers.
  HpRetired,                ///< hp.retired: nodes handed to an HP domain.
  HpFreed,                  ///< hp.freed: nodes freed by a scan.
  HpScans,                  ///< hp.scans: full hazard-array scans.
  HpScanKept,               ///< hp.scan_kept: nodes a scan kept because a
                            ///  hazard slot still protected them.
  HpOrphanBacklog,          ///< hp.orphan_backlog: net orphaned retirees
                            ///  (detach adds, adoption subtracts).
  HpOrphansAdopted,         ///< hp.orphans_adopted: orphaned retirees
                            ///  re-homed onto a live thread's list.
  // reclaim: node pool.
  PoolHits,                 ///< pool.hits: allocations served from the
                            ///  thread-local free list.
  PoolMisses,               ///< pool.misses: allocations that refilled
                            ///  from the global pool (mutex + batch).
  PoolBypass,               ///< pool.bypass: allocations routed to plain
                            ///  operator new (bypass mode or oversize).
  // chunked (unrolled) lists.
  ChunkSplits,              ///< chunk.splits: full chunk frozen and
                            ///  replaced by two halves.
  ChunkCompactions,         ///< chunk.compactions: chunk with dead slots
                            ///  but no clean slot frozen and replaced by
                            ///  one compacted copy.
  ChunkUnlinks,             ///< chunk.unlinks: logically-empty chunk
                            ///  marked and unlinked (Harris-style).
  ChunkMerges,              ///< chunk.merges: two adjacent cold chunks
                            ///  frozen and replaced by one combined
                            ///  chunk (adaptive reshaping only).
  ChunkValidationAborts,    ///< chunk.validation_aborts: lock-held
                            ///  revalidation of a chunk failed; the
                            ///  operation re-traversed.
  // reclaim: version-based reclamation.
  VbrRetired,               ///< reclaim.vbr.retired: blocks stamped with a
                            ///  retire epoch and pushed to a free list.
  VbrReused,                ///< reclaim.vbr.reused: allocations served by
                            ///  reviving a retired block in place.
  VbrFreshAllocs,           ///< reclaim.vbr.fresh_allocs: allocations that
                            ///  minted a never-used block from the pool.
  VbrClockBumps,            ///< reclaim.vbr.clock_bumps: version-clock
                            ///  advances forced by reusing a block whose
                            ///  retire epoch equals the current clock.
  VbrBirthRejects,          ///< reclaim.vbr.birth_rejects: reads that saw
                            ///  a birth epoch newer than the operation's
                            ///  start version and restarted.
  // maps.
  MapBucketInits,           ///< map.bucket_inits: lazy dummy-node splices.
  MapBucketInitChain,       ///< map.bucket_init_chain: parent links walked
                            ///  (recursion depth) across bucket inits.
  MapResizes,               ///< map.resizes: bucket-index doublings won.
  MapResizesLost,           ///< map.resizes_lost: doublings lost to a
                            ///  concurrent winner (allocated, discarded).
  MapResizeGrows,           ///< map.resize.grows: index swaps that doubled
                            ///  the capacity (policy-driven engine; a
                            ///  subset of map.resizes accounting).
  MapResizeShrinks,         ///< map.resize.shrinks: index swaps that
                            ///  halved the capacity after the load fell
                            ///  under the low watermark.
  MapResizeSegmentsRetired, ///< map.resize.retired_segments: displaced
                            ///  bucket-index arrays handed to the reclaim
                            ///  domain (grace-period table swap).
  // range scans (rangeQuery/snapshot across every backend).
  ScanRetries,              ///< scan.retries: optimistic multi-chunk
                            ///  window collects whose version
                            ///  revalidation failed and re-ran.
  ScanFallbacks,            ///< scan.fallbacks: scans that exhausted the
                            ///  retry budget and finished under
                            ///  per-chunk locks.
  ScanKeysReturned,         ///< scan.keys_returned: keys handed back by
                            ///  rangeQuery/snapshot calls.
  // analysis.
  AnalysisFlowChecks,       ///< analysis.flow_checks: flow-invariant heap
                            ///  snapshots taken (one per scheduler step
                            ///  per flow-checked episode).
  // service (sharded front-end).
  ServiceOpsDirect,         ///< service.ops_direct: ops applied on the
                            ///  direct per-op path (no combining).
  ServiceOpsCombined,       ///< service.ops_combined: ops applied inside
                            ///  a combine round (own + drained).
  ServiceCombineRounds,     ///< service.combine_rounds: combiner-lock
                            ///  epochs (one per lock hold that drained
                            ///  publication slots).
  ServiceCombineHandoffs,   ///< service.combine_handoffs: published
                            ///  batches completed by ANOTHER session's
                            ///  combiner (the waiter never took the lock).
  ServiceBatchFlushes,      ///< service.batch_flushes: session shard-queue
                            ///  drains (one backend visit per flush).
  ServiceAdaptiveDirects,   ///< service.adaptive_directs: adaptive-mode
                            ///  decisions that took the direct path on a
                            ///  cold shard instead of publishing.
  NumCounters_
};

inline constexpr size_t NumCounters = static_cast<size_t>(Counter::NumCounters_);

/// Dotted stable name for \p C ("list.restarts", ...).
const char *counterName(Counter C);

/// Bounded histograms: 16 log2 buckets; bucket B counts values with
/// bit_width(V) == B (bucket 0 is exactly zero), the last bucket
/// absorbs everything >= 2^14.
enum class Histogram : uint16_t {
  TraversalHops,  ///< hist.traversal_hops: nodes visited per traversal.
  EpochLag,       ///< hist.epoch_lag: global minus oldest announced epoch
                  ///  sampled at every failed advance (reader lag depth).
  ChunkOccupancy, ///< hist.chunk_occupancy: live keys per chunk, sampled
                  ///  whenever a chunk is frozen or unlinked (its final
                  ///  occupancy) AND on every structural-path lock
                  ///  acquisition, so long-stable chunks report their
                  ///  steady-state population too — the signal the
                  ///  adaptive chunking policy consumes.
  ServiceCombineOps, ///< hist.service_combine_ops: ops drained per
                     ///  combine round (own batch + every published batch
                     ///  the round picked up).
  ServiceVisitOps,   ///< hist.service_visit_ops: ops applied per shard
                     ///  visit (batch-flush size; 1 on the per-op path).
  NumHistograms_
};

inline constexpr size_t NumHistograms =
    static_cast<size_t>(Histogram::NumHistograms_);
inline constexpr size_t HistogramBuckets = 16;

/// Dotted stable name for \p H ("hist.traversal_hops", ...).
const char *histogramName(Histogram H);

/// Bucket index a value falls into (log2 rule above).
inline constexpr size_t histogramBucket(uint64_t Value) {
  const size_t Width = static_cast<size_t>(std::bit_width(Value));
  return Width < HistogramBuckets ? Width : HistogramBuckets - 1;
}

/// A point-in-time sum over every shard. Plain data: copy, subtract,
/// serialize freely.
struct Snapshot {
  std::array<uint64_t, NumCounters> Counters{};
  std::array<std::array<uint64_t, HistogramBuckets>, NumHistograms>
      Histograms{};

  uint64_t get(Counter C) const {
    return Counters[static_cast<size_t>(C)];
  }
  const std::array<uint64_t, HistogramBuckets> &hist(Histogram H) const {
    return Histograms[static_cast<size_t>(H)];
  }

  /// Events since \p Since (counters are monotonic, so plain unsigned
  /// subtraction; HpOrphanBacklog is the one up/down counter and wraps
  /// mod 2^64, which subtraction also handles).
  Snapshot delta(const Snapshot &Since) const {
    Snapshot D;
    for (size_t I = 0; I < NumCounters; ++I)
      D.Counters[I] = Counters[I] - Since.Counters[I];
    for (size_t I = 0; I < NumHistograms; ++I)
      for (size_t B = 0; B < HistogramBuckets; ++B)
        D.Histograms[I][B] = Histograms[I][B] - Since.Histograms[I][B];
    return D;
  }

  /// True when every cell is zero (delta of an idle interval).
  bool empty() const {
    for (uint64_t V : Counters)
      if (V)
        return false;
    for (const auto &H : Histograms)
      for (uint64_t V : H)
        if (V)
          return false;
    return true;
  }

  Snapshot &operator+=(const Snapshot &O) {
    for (size_t I = 0; I < NumCounters; ++I)
      Counters[I] += O.Counters[I];
    for (size_t I = 0; I < NumHistograms; ++I)
      for (size_t B = 0; B < HistogramBuckets; ++B)
        Histograms[I][B] += O.Histograms[I][B];
    return *this;
  }
};

#if VBL_STATS

/// True in builds that carry the layer; lets tests and the harness gate
/// assertions/reporting without preprocessor checks at every site.
inline constexpr bool Enabled = true;

namespace detail {

/// One thread's private cells. Cells are atomic only so snapshotAll can
/// read them without a data race; the owner is the only writer.
struct alignas(CacheLineBytes) Shard {
  std::array<std::atomic<uint64_t>, NumCounters> Counters{};
  std::array<std::array<std::atomic<uint64_t>, HistogramBuckets>,
             NumHistograms>
      Histograms{};
  /// The post-TLS-teardown fallback shard is written by many threads
  /// and must use real RMWs; owner shards never set this.
  bool Shared = false;
};

/// The calling thread's shard, or null before first use / after TLS
/// teardown. Header-visible so bump() is a load + test + add when hot.
extern thread_local Shard *TlsShard;

/// Slow path: attach a shard to this thread (or route to the shared
/// teardown shard) and apply the bump there.
void bumpSlow(Counter C, uint64_t Delta);
void histogramAddSlow(Histogram H, uint64_t Value);

inline void addCell(std::atomic<uint64_t> &Cell, uint64_t Delta) {
  // Owner-only write: a plain add, not a lock-prefixed RMW.
  Cell.store(Cell.load(std::memory_order_relaxed) + Delta,
             std::memory_order_relaxed);
}

} // namespace detail

/// Count \p Delta occurrences of \p C on the calling thread.
inline void bump(Counter C, uint64_t Delta = 1) {
  detail::Shard *S = detail::TlsShard;
  if (VBL_LIKELY(S != nullptr)) {
    detail::addCell(S->Counters[static_cast<size_t>(C)], Delta);
    return;
  }
  detail::bumpSlow(C, Delta);
}

/// Record \p Value in histogram \p H.
inline void histogramAdd(Histogram H, uint64_t Value) {
  detail::Shard *S = detail::TlsShard;
  if (VBL_LIKELY(S != nullptr)) {
    detail::addCell(
        S->Histograms[static_cast<size_t>(H)][histogramBucket(Value)], 1);
    return;
  }
  detail::histogramAddSlow(H, Value);
}

/// One completed traversal of \p Hops node visits: bumps
/// list.traversal_hops and the hop histogram with a single shard
/// lookup. The traversal loops accumulate Hops in a local and call
/// this once — never bump inside the pointer-chase. list.traversals is
/// *derived* in snapshotAll as the histogram's bucket sum (every
/// traversal lands in exactly one bucket), which keeps this path — the
/// only stats call on a successful read — at two cell writes. It runs
/// once per ~40ns operation on the fastest structures, so each cell
/// here is a measurable fraction of a percent of throughput.
inline void noteTraversal(uint64_t Hops) {
  detail::Shard *S = detail::TlsShard;
  if (VBL_UNLIKELY(S == nullptr)) {
    detail::bumpSlow(Counter::ListTraversalHops, Hops);
    detail::histogramAddSlow(Histogram::TraversalHops, Hops);
    return;
  }
  detail::addCell(
      S->Counters[static_cast<size_t>(Counter::ListTraversalHops)], Hops);
  detail::addCell(S->Histograms[static_cast<size_t>(
                      Histogram::TraversalHops)][histogramBucket(Hops)],
                  1);
}

/// Sum of every shard ever created (live, parked and shared). Cells are
/// read individually; quiesce first for exact numbers.
Snapshot snapshotAll();

#else // !VBL_STATS

inline constexpr bool Enabled = false;

inline void bump(Counter, uint64_t = 1) {}
inline void histogramAdd(Histogram, uint64_t) {}
inline void noteTraversal(uint64_t) {}
inline Snapshot snapshotAll() { return Snapshot{}; }

#endif // VBL_STATS

/// Renders the non-zero rows of \p S as an aligned two-column table
/// (plus histogram rows as "bucket:count" runs), one line per row, for
/// the per-structure report the benches print under --stats. Returns
/// "" when everything is zero (or the layer is compiled out).
std::string renderTable(const Snapshot &S, const char *Indent = "  ");

/// Appends the non-zero counters of \p S to \p Out as a JSON object
/// body fragment: `"list.restarts":12,"hp.scans":3` (no braces). The
/// vbl-bench-v1 writer wraps it; bench_compare.py ignores the key.
void appendJsonFields(const Snapshot &S, std::string &Out);

} // namespace stats
} // namespace vbl

#endif // VBL_STATS_STATS_H
