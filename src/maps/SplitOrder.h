//===- maps/SplitOrder.h - Recursive split-ordering key encoding ---------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Key arithmetic for the split-ordered hash set (Shalev & Shavit,
/// "Split-Ordered Lists: Lock-Free Extensible Hash Tables", JACM 2006).
/// A hash-set key is stored in the underlying ordered list under its
/// *split-order key*: the bit-reversal of its scattered hash, with bit 0
/// forced to 1. Bucket b's sentinel ("dummy") node is stored under the
/// bit-reversal of b itself, which has bit 0 clear — so dummies and
/// regular keys interleave in exactly the order recursive bucket
/// splitting needs: when the table doubles from S to 2S, the dummy of
/// new bucket b+S lands between the keys of old bucket b that hash to b
/// under 2S and those that hash to b+S, without moving any node.
///
/// Domain: the list substrate stores signed SetKey with the two extreme
/// values reserved as sentinels, which leaves 2^64 - 2 storable keys —
/// too few to injectively host bit-reversed images of a full 64-bit user
/// domain *plus* dummy keys. Restricting user keys to [0, 2^62) gives
/// every regular split-order key the shape rev(v)|1 with bit 62-image
/// clear, every dummy key an even value, and keeps both strictly inside
/// the sentinel range (see the static_asserts at the bottom).
///
/// Encoding pipeline for a user key k:
///   mix62(k)      — multiply by an odd constant mod 2^62; an invertible
///                   scatter so dense key ranges spread across buckets.
///   reverse64(.)  — bucket bits become the most-significant bits, the
///                   heart of split-ordering.
///   | 1           — tags the key "regular" (dummies are even).
///   toOrdered(.)  — flips the sign bit so unsigned order survives the
///                   signed comparisons the list substrate performs.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_MAPS_SPLITORDER_H
#define VBL_MAPS_SPLITORDER_H

#include "core/SetConfig.h"

#include <cstdint>

namespace vbl {
namespace so {

/// User keys accepted by the split-ordered hash sets: [0, 2^62).
/// The domain bound itself lives in core/SetConfig.h (vbl::isHashKey);
/// this mask is its unsigned counterpart for the encoding arithmetic.
inline constexpr uint64_t HashKeyMask =
    (uint64_t(1) << vbl::HashKeyBits) - 1;

using vbl::isHashKey;

/// Classic bit reversal by halving swaps; constexpr so the encoding
/// round-trips are checked at compile time.
inline constexpr uint64_t reverse64(uint64_t X) {
  X = ((X & 0x5555555555555555ULL) << 1) | ((X >> 1) & 0x5555555555555555ULL);
  X = ((X & 0x3333333333333333ULL) << 2) | ((X >> 2) & 0x3333333333333333ULL);
  X = ((X & 0x0F0F0F0F0F0F0F0FULL) << 4) | ((X >> 4) & 0x0F0F0F0F0F0F0F0FULL);
  X = ((X & 0x00FF00FF00FF00FFULL) << 8) | ((X >> 8) & 0x00FF00FF00FF00FFULL);
  X = ((X & 0x0000FFFF0000FFFFULL) << 16) |
      ((X >> 16) & 0x0000FFFF0000FFFFULL);
  return (X << 32) | (X >> 32);
}

/// Odd multiplier (Fibonacci hashing constant): multiplication by an odd
/// number is a bijection mod any power of two, so mix62 scatters without
/// collisions and stays invertible for snapshot decoding.
inline constexpr uint64_t MixMultiplier = 0x9E3779B97F4A7C15ULL;

/// Newton iteration for the inverse of an odd number mod 2^64; each step
/// doubles the number of correct low bits, so six steps suffice.
inline constexpr uint64_t inverseOdd64(uint64_t A) {
  uint64_t X = A;
  for (int I = 0; I < 6; ++I)
    X *= 2 - A * X;
  return X;
}

inline constexpr uint64_t MixInverse = inverseOdd64(MixMultiplier);

/// Scattered hash of a user key: the bucket of key k in a table of S =
/// 2^i buckets is mix62(k) mod S.
inline constexpr uint64_t mix62(uint64_t Key) {
  return (Key * MixMultiplier) & HashKeyMask;
}

/// Inverse of mix62 (the inverse mod 2^64 masked to 62 bits is the
/// inverse mod 2^62, since reduction commutes with masking).
inline constexpr uint64_t unmix62(uint64_t Mixed) {
  return (Mixed * MixInverse) & HashKeyMask;
}

/// Order-preserving map from the unsigned split-order domain onto the
/// signed SetKey the list substrate compares: flip the sign bit.
inline constexpr SetKey toOrdered(uint64_t U) {
  return static_cast<SetKey>(U ^ (uint64_t(1) << 63));
}

inline constexpr uint64_t fromOrdered(SetKey Key) {
  return static_cast<uint64_t>(Key) ^ (uint64_t(1) << 63);
}

/// Split-order key a user key is stored under. Since mix62 < 2^62, the
/// reversal leaves bits 0-1 clear; |1 marks it regular (odd).
inline constexpr SetKey regularSoKey(SetKey Key) {
  return toOrdered(reverse64(mix62(static_cast<uint64_t>(Key))) | 1);
}

/// Split-order key of bucket b's dummy node (even). Bucket 0's dummy is
/// the list head itself: dummySoKey(0) == MinSentinel, which is never
/// inserted — the bucket index is seeded with the head handle instead.
inline constexpr SetKey dummySoKey(uint64_t Bucket) {
  return toOrdered(reverse64(Bucket));
}

inline constexpr bool isRegularSoKey(SetKey SoKey) {
  return (fromOrdered(SoKey) & 1) != 0;
}

/// User key back out of a regular split-order key (snapshot decoding).
inline constexpr SetKey decodeRegular(SetKey SoKey) {
  return static_cast<SetKey>(unmix62(reverse64(fromOrdered(SoKey) & ~uint64_t(1))));
}

/// Bucket whose dummy carries this (even) split-order key.
inline constexpr uint64_t bucketOfDummy(SetKey SoKey) {
  return reverse64(fromOrdered(SoKey));
}

/// Parent in the recursive bucket-initialization order: clear the
/// most-significant set bit. The parent's dummy precedes the child's in
/// split order, so initialization can start its splice there.
inline constexpr uint64_t parentBucket(uint64_t Bucket) {
  uint64_t Parent = Bucket;
  for (uint64_t Bit = uint64_t(1) << 62; Bit; Bit >>= 1)
    if (Parent & Bit) {
      Parent &= ~Bit;
      break;
    }
  return Parent;
}

// The encoding is a bijection on the domain...
static_assert(unmix62(mix62(0)) == 0);
static_assert(unmix62(mix62(1)) == 1);
static_assert(unmix62(mix62(0x123456789ABCDEFULL)) == 0x123456789ABCDEFULL);
static_assert(unmix62(mix62(HashKeyMask)) == HashKeyMask);
static_assert(decodeRegular(regularSoKey(0)) == 0);
static_assert(decodeRegular(regularSoKey(42)) == 42);
static_assert(decodeRegular(regularSoKey(SetKey(HashKeyMask))) ==
              SetKey(HashKeyMask));
// ...regular keys are odd and strictly inside the sentinel range...
static_assert(isRegularSoKey(regularSoKey(7)));
static_assert(!isRegularSoKey(dummySoKey(1)));
static_assert(regularSoKey(0) > MinSentinel && regularSoKey(0) < MaxSentinel);
// (rev(mix62) has bits 62-63 clear post-|1, so the max regular image is
// below 2^63 - 1 unsigned, i.e. strictly below MaxSentinel signed)
static_assert(regularSoKey(SetKey(HashKeyMask)) < MaxSentinel);
// ...and dummy keys sort before every key of their bucket but after the
// previous bucket's contents.
static_assert(dummySoKey(0) == MinSentinel);
static_assert(bucketOfDummy(dummySoKey(5)) == 5);
static_assert(parentBucket(1) == 0 && parentBucket(6) == 2 &&
              parentBucket(12) == 4);
static_assert(dummySoKey(1) > MinSentinel && dummySoKey(1) < MaxSentinel);

} // namespace so
} // namespace vbl

#endif // VBL_MAPS_SPLITORDER_H
