//===- maps/SplitOrderedHashSet.h - Resizable lock-free hash set ---------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A split-ordered hash set (Shalev & Shavit, JACM 2006) layered on the
/// repo's list substrates: all elements live in ONE ordered list, sorted
/// by split-order key (maps/SplitOrder.h), and the hash layer is nothing
/// but an array of shortcut pointers ("bucket index") into that list.
/// Resizing therefore never moves a node — doubling the table only adds
/// dummy nodes lazily, one per newly addressable bucket, spliced in
/// under the bucket's parent.
///
/// The substrate is pluggable: any list exposing the BucketHandle hooks
/// (insertFrom / removeFrom / containsFrom / getOrInsertSentinelFrom)
/// works. The repo registers backends on HarrisMichaelList ("so-hash-hm"),
/// VblList ("so-hash-vbl") and HarrisMichaelListHp ("so-hash-hm-hp"), so
/// the paper's concurrency-optimal VBL synchronization carries over to
/// the sharded structure unchanged.
///
/// Bucket-index resizing — the grace-period table swap: the index is an
/// immutable-capacity array of atomic slots. A resize copies the
/// memoized slots into a new array (double capacity on grow, half on
/// shrink), publishes it with a release-CAS on the index pointer — the
/// single resizer is whoever wins that CAS; losers destroy their
/// never-published copy — and retires the displaced array through the
/// substrate's reclamation domain. Concurrent operations may still be
/// traversing the old array (they loaded the pointer before the swap),
/// so freeing in place would be a use-after-free; every operation
/// already brackets itself in a domain guard, so the domain's grace
/// period (EBR epoch, HP hazard scan, VBR teardown parking) is exactly
/// the right lifetime. A slot lost in the copy race (memoized
/// concurrently with the copy) is harmless: the slot array is pure
/// memoization of getOrInsertSentinelFrom, which always agrees on THE
/// unique dummy node for a bucket, so the next lookup re-initializes to
/// the same handle.
///
/// Shrinking leaves the dummies of the no-longer-addressable buckets in
/// the list as orphans — they are sentinels, never removed, and a
/// traversal from a coarser bucket's dummy simply walks past them (even
/// so-keys are skipped like deleted nodes). A later re-grow re-memoizes
/// the very same nodes via get-or-insert agreement. checkInvariants
/// therefore validates dummy addressability against the monotonic
/// high-water capacity (MaxCapacityEver), not the current capacity.
///
/// Hazard-pointer substrates need one extra discipline: the index
/// pointer itself must sit in a hazard slot while dereferenced, and the
/// substrate's per-operation guards share this thread's slot record —
/// their destructors clear every slot, including ours. So the hash
/// layer re-protects the index after every substrate call and, when the
/// index moved meanwhile, skips the (now possibly freed) old array and
/// keeps only the returned dummy handle, which is immortal and correct
/// independent of any index. See loadIndex/indexStillCurrent.
///
/// When/whether to resize is the ResizePolicy carried by HashSetConfig
/// (core/SetConfig.h): grow past GrowLoadFactor keys per bucket, shrink
/// (if enabled) once occupancy falls below 1/ShrinkDivisor of the grow
/// trigger — the hysteresis gap keeps a freshly swapped table from
/// immediately qualifying for the opposite swap. Construction validates
/// the config and refuses misconfiguration with a named
/// HashSetConfigError instead of silently rounding.
///
/// All shared accesses flow through the substrate's Policy, so the hash
/// layer runs under the deterministic scheduler and the happens-before
/// race detector exactly like the lists do (tests/maps).
///
//===----------------------------------------------------------------------===//

#ifndef VBL_MAPS_SPLITORDEREDHASHSET_H
#define VBL_MAPS_SPLITORDEREDHASHSET_H

#include "core/SetConfig.h"
#include "maps/SplitOrder.h"
#include "reclaim/NodePool.h"
#include "stats/Stats.h"
#include "support/Compiler.h"
#include "sync/Policy.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

namespace vbl {
namespace maps {

/// Default construction-time config source: the HashSetConfig defaults
/// (grow-only, 16 initial buckets). Registry entries that want a
/// different default-constructed shape (the `-resize` variants enable
/// shrinking) pass their own provider type so SetAdapter's
/// default-construction path keeps working.
struct DefaultHashSetConfigProvider {
  static HashSetConfig config() { return HashSetConfig{}; }
};

template <class SubstrateT,
          class ConfigProviderT = DefaultHashSetConfigProvider>
class SplitOrderedHashSet {
public:
  using Substrate = SubstrateT;
  using Reclaim = typename SubstrateT::Reclaim;
  using Policy = typename SubstrateT::Policy;
  using BucketHandle = typename SubstrateT::BucketHandle;
  using Guard = typename Reclaim::Guard;

  explicit SplitOrderedHashSet(const HashSetConfig &Config)
      : Cfg(validated(Config)), Domain(List.reclaimDomain()) {
    BucketIndex *Initial = BucketIndex::allocate(Cfg.InitialBuckets);
    // Bucket 0's dummy is the list head sentinel itself.
    Initial->Slots[0].store(List.headHandle(), std::memory_order_relaxed);
    Index.store(Initial, std::memory_order_release);
    MaxCapacityEver.store(Cfg.InitialBuckets, std::memory_order_relaxed);
  }

  SplitOrderedHashSet() : SplitOrderedHashSet(ConfigProviderT::config()) {}

  /// Legacy shape: grow-only with the classic three knobs. Values must
  /// be valid powers of two — the old silent round-up path is gone;
  /// misconfiguration dies with a named HashSetConfigError.
  explicit SplitOrderedHashSet(size_t InitialBuckets,
                               size_t MaxLoadFactor = 4,
                               size_t MaxBuckets = size_t(1) << 22)
      : SplitOrderedHashSet(legacyConfig(ConfigProviderT::config(),
                                         InitialBuckets, MaxLoadFactor,
                                         MaxBuckets)) {}

  ~SplitOrderedHashSet() {
    BucketIndex::destroy(Index.load(std::memory_order_relaxed));
  }

  SplitOrderedHashSet(const SplitOrderedHashSet &) = delete;
  SplitOrderedHashSet &operator=(const SplitOrderedHashSet &) = delete;

  bool insert(SetKey Key) {
    VBL_ASSERT(so::isHashKey(Key), "hash-set keys must lie in [0, 2^62)");
    Guard G(Domain);
    if (!List.insertFrom(so::regularSoKey(Key), bucketForKey(Key, G)))
      return false;
    maybeGrow(adjustCount(+1), G);
    return true;
  }

  bool remove(SetKey Key) {
    VBL_ASSERT(so::isHashKey(Key), "hash-set keys must lie in [0, 2^62)");
    Guard G(Domain);
    if (!List.removeFrom(so::regularSoKey(Key), bucketForKey(Key, G)))
      return false;
    maybeShrink(adjustCount(-1), G);
    return true;
  }

  /// Non-const: a lookup may lazily splice the bucket's dummy node.
  bool contains(SetKey Key) {
    VBL_ASSERT(so::isHashKey(Key), "hash-set keys must lie in [0, 2^62)");
    Guard G(Domain);
    return List.containsFrom(so::regularSoKey(Key), bucketForKey(Key, G));
  }

  /// Quiescent-only: decoded user keys, ascending (dummies filtered).
  /// Range scan. Split order is bit-reversed hash order, not user-key
  /// order, so a window of user keys is scattered across the whole
  /// list: the scan walks the entire substrate once (the substrate's
  /// own linearizable scan, which skips dummies' even so-keys along
  /// with deleted nodes), decodes the regular so-keys, filters to
  /// [Lo, Hi] and sorts. O(n) whatever the window — the price of
  /// hashing; the flat and chunk lists are the range-friendly backends.
  size_t rangeQuery(SetKey Lo, SetKey Hi, std::vector<SetKey> &Out) {
    VBL_ASSERT(so::isHashKey(Lo) && so::isHashKey(Hi),
               "hash-set keys must lie in [0, 2^62)");
    if (Lo > Hi)
      return 0;
    Guard G(Domain);
    // Regular so-keys occupy [MinSentinel+1, MaxSentinel-2]: mix62 stays
    // below 2^62, so the reversal leaves bit 1 clear and the tagged
    // value never reaches the sentinels (SplitOrder.h static_asserts).
    std::vector<SetKey> SoKeys;
    List.rangeQuery(MinSentinel + 1, MaxSentinel - 1, SoKeys);
    const size_t Entry = Out.size();
    for (SetKey SoKey : SoKeys) {
      if (!so::isRegularSoKey(SoKey))
        continue;
      const SetKey K = so::decodeRegular(SoKey);
      if (K >= Lo && K <= Hi)
        Out.push_back(K);
    }
    std::sort(Out.begin() + static_cast<ptrdiff_t>(Entry), Out.end());
    return Out.size() - Entry;
  }

  std::vector<SetKey> snapshot() const {
    std::vector<SetKey> Keys;
    for (SetKey SoKey : List.snapshot())
      if (so::isRegularSoKey(SoKey))
        Keys.push_back(so::decodeRegular(SoKey));
    std::sort(Keys.begin(), Keys.end());
    return Keys;
  }

  /// Quiescent-only: substrate invariants plus hash-layer ones — the
  /// index capacity is a power of two within the configured bounds,
  /// slot 0 is the head, every initialized slot memoizes its own
  /// bucket's dummy, every dummy in the list was addressable under SOME
  /// index this set ever published (shrinking orphans dummies above the
  /// current capacity on purpose), and the element count matches.
  bool checkInvariants() const {
    if (!List.checkInvariants())
      return false;
    const BucketIndex *I = Index.load(std::memory_order_acquire);
    if (!I || !isPowerOfTwo(I->Capacity))
      return false;
    if (I->Capacity < Cfg.MinBuckets || I->Capacity > Cfg.MaxBuckets)
      return false;
    if (static_cast<const void *>(
            I->Slots[0].load(std::memory_order_acquire)) != List.headNode())
      return false;
    for (size_t B = 1; B < I->Capacity; ++B) {
      BucketHandle Handle = I->Slots[B].load(std::memory_order_acquire);
      if (Handle && Substrate::handleKey(Handle) != so::dummySoKey(B))
        return false;
    }
    const size_t Ever = MaxCapacityEver.load(std::memory_order_acquire);
    int64_t Regular = 0;
    for (SetKey SoKey : List.snapshot()) {
      if (so::isRegularSoKey(SoKey)) {
        ++Regular;
        continue;
      }
      if (so::bucketOfDummy(SoKey) >= Ever)
        return false;
    }
    return Regular == Count.load(std::memory_order_acquire);
  }

  size_t sizeSlow() const { return snapshot().size(); }

  /// Element count maintained by insert/remove (exact when quiescent).
  int64_t sizeFast() const {
    return Count.load(std::memory_order_acquire);
  }

  size_t bucketCount() const {
    return Index.load(std::memory_order_acquire)->Capacity;
  }

  /// Largest capacity any published index ever had (monotonic).
  size_t maxBucketCountEver() const {
    return MaxCapacityEver.load(std::memory_order_acquire);
  }

  const HashSetConfig &config() const { return Cfg; }

  Reclaim &reclaimDomain() { return Domain; }

  /// Tooling passthroughs (schedule exporters, explorer chain dumps).
  const void *headNode() const { return List.headNode(); }
  std::vector<std::pair<const void *, SetKey>> nodeChain() const {
    return List.nodeChain();
  }

  /// Flow-invariant self-description: every element and dummy lives in
  /// the one underlying list under split-order keys that stay strictly
  /// inside the sentinel range (maps/SplitOrder.h static_asserts), so
  /// the substrate's own flow view is exactly the oracle's input.
  /// SFINAE-gated so substrates without flowView() merely opt the hash
  /// set out instead of breaking the build.
  template <class S = Substrate>
  auto flowView() -> decltype(std::declval<S &>().flowView()) {
    return List.flowView();
  }

  Substrate &substrate() { return List; }

private:
  /// Immutable-capacity array of memoized bucket handles; null slots are
  /// lazily initialized. Replaced wholesale on growth and shrinkage.
  struct BucketIndex {
    size_t Capacity = 0; // Power of two; immutable after publication.
    std::atomic<BucketHandle> *Slots = nullptr;

    static BucketIndex *allocate(size_t Capacity) {
      auto *I = reclaim::poolCreate<BucketIndex, Policy>();
      I->Capacity = Capacity;
      // Raw pool bytes with per-element placement-new (an array
      // new-expression could prepend a length cookie, overflowing an
      // exactly-sized pool block). Small tables recycle through the
      // pool; indices past 1 KiB take the pool's transparent heap path.
      void *Mem = reclaim::NodePool::allocate<Policy>(
          Capacity * sizeof(std::atomic<BucketHandle>),
          alignof(std::atomic<BucketHandle>));
      I->Slots = static_cast<std::atomic<BucketHandle> *>(Mem);
      for (size_t B = 0; B != Capacity; ++B) {
        ::new (static_cast<void *>(I->Slots + B))
            std::atomic<BucketHandle>();
        I->Slots[B].store(nullptr, std::memory_order_relaxed);
      }
      return I;
    }

    static void destroy(BucketIndex *I) {
      // Capacity is needed to recompute the block's size class; read it
      // before releasing the header. Atomics are trivially destructible.
      const size_t Capacity = I->Capacity;
      reclaim::NodePool::deallocate<Policy>(
          I->Slots, Capacity * sizeof(std::atomic<BucketHandle>),
          alignof(std::atomic<BucketHandle>));
      reclaim::poolDestroy<Policy>(I);
    }

    /// Type-erased deleter for Reclaim::retireRaw.
    static void destroyErased(void *I) {
      destroy(static_cast<BucketIndex *>(I));
    }
  };

  /// Hazard-pointer guards expose slot-indexed protect(); epoch and
  /// version guards do not (their mere existence is the protection).
  static constexpr bool HasHazardGuard =
      requires(Guard &G, const std::atomic<BucketIndex *> &Src) {
        { G.protect(3u, Src) };
      };
  /// HarrisMichaelListHp uses slots 0 (curr) and 1 (prev); the index
  /// takes the top slot so the two layers never collide.
  static constexpr unsigned IndexSlot = 3;

  [[noreturn]] static void reportBadConfig(HashSetConfigError E) {
    std::fprintf(stderr,
                 "SplitOrderedHashSet: invalid HashSetConfig: %s\n",
                 hashSetConfigErrorName(E));
    std::abort();
  }

  static HashSetConfig validated(HashSetConfig C) {
    const HashSetConfigError E = validateHashSetConfig(C);
    if (E != HashSetConfigError::None)
      reportBadConfig(E);
    return C;
  }

  /// The legacy three-knob constructor overlaid on the provider's
  /// config (so a shrink-enabled provider keeps its policy fields).
  static HashSetConfig legacyConfig(HashSetConfig C, size_t InitialBuckets,
                                    size_t MaxLoadFactor,
                                    size_t MaxBuckets) {
    C.InitialBuckets = InitialBuckets;
    C.GrowLoadFactor = MaxLoadFactor;
    C.MaxBuckets = MaxBuckets;
    if (C.MinBuckets > InitialBuckets)
      C.MinBuckets = 1;
    return C;
  }

  /// Current index, safe to dereference for the rest of the operation —
  /// provided no substrate call intervenes (see indexStillCurrent). HP
  /// publishes the pointer in a hazard slot; everywhere else the
  /// operation guard already covers any index the op can observe.
  BucketIndex *loadIndex(Guard &G) {
    if constexpr (HasHazardGuard) {
      // protect() loops store-then-revalidate internally until the slot
      // and the source agree, so the returned pointer cannot be freed
      // while the slot holds it.
      return G.protect(IndexSlot, Index);
    } else {
      (void)G;
      return Policy::read(Index, std::memory_order_acquire, &Index,
                          MemField::Next);
    }
  }

  /// True when \p I is still the published index AND still safe to
  /// dereference. Under HP a substrate call destroyed its inner guard,
  /// which clears every hazard slot of this thread — including the
  /// index slot — so a concurrent resize may have retired AND freed
  /// \p I meanwhile; re-protect and compare. Elsewhere the operation
  /// guard kept \p I alive, and writing a memo into a displaced index
  /// is merely wasted work, so "still current" is always true.
  bool indexStillCurrent(BucketIndex *I, Guard &G) {
    if constexpr (HasHazardGuard) {
      return G.protect(IndexSlot, Index) == I;
    } else {
      (void)I;
      (void)G;
      return true;
    }
  }

  /// Handle of the bucket that must anchor operations on \p Key under
  /// the current index.
  BucketHandle bucketForKey(SetKey Key, Guard &G) {
    BucketIndex *I = loadIndex(G);
    const size_t Cap = Policy::readValue(I->Capacity, I);
    const size_t B =
        static_cast<size_t>(so::mix62(static_cast<uint64_t>(Key))) &
        (Cap - 1);
    bool IndexStale = false;
    return bucketHandle(I, B, G, IndexStale);
  }

  /// Memoized-get-or-initialize of bucket \p B's dummy handle. The
  /// recursion splices missing dummies parent-first (parent = bucket
  /// with its top set bit cleared), which terminates at bucket 0 — the
  /// list head itself. \p IndexStale latches true once a hazard
  /// re-protect observes the index was swapped out from under the
  /// operation: from then on \p I may be freed memory, so the frames
  /// stop touching it (no memo reads, no memo CAS) and rely purely on
  /// get-or-insert agreement — the returned dummy handles are immortal
  /// and correct under ANY index.
  BucketHandle bucketHandle(BucketIndex *I, size_t B, Guard &G,
                            bool &IndexStale) {
    if (B == 0)
      return List.headHandle();
    if (!IndexStale) {
      BucketHandle Memo = Policy::read(
          I->Slots[B], std::memory_order_acquire, &I->Slots[B],
          MemField::Next);
      if (Memo)
        return Memo;
    }
    // One dummy splice, one parent link walked. In this
    // one-link-per-splice recursion the two totals coincide; the chain
    // counter is kept separate so a bulk-init strategy that probes
    // several ancestors per splice stays comparable.
    stats::bump(stats::Counter::MapBucketInits);
    stats::bump(stats::Counter::MapBucketInitChain);
    BucketHandle Parent = bucketHandle(I, so::parentBucket(B), G, IndexStale);
    BucketHandle Dummy =
        List.getOrInsertSentinelFrom(so::dummySoKey(B), Parent);
    if (!indexStillCurrent(I, G))
      IndexStale = true;
    if (!IndexStale) {
      // Losing this CAS means another thread memoized first;
      // get-or-insert agreement guarantees it memoized the same node,
      // so either way Dummy is THE handle for bucket B.
      BucketHandle Expected = nullptr;
      Policy::casStrong(I->Slots[B], Expected, Dummy,
                        std::memory_order_release, &I->Slots[B],
                        MemField::Next);
    }
    return Dummy;
  }

  /// Count is an acquire/acq_rel CAS loop rather than a relaxed
  /// fetch_add so concurrent updates stay ordered under the
  /// happens-before race detector (relaxed accesses count as plain).
  int64_t adjustCount(int64_t Delta) {
    int64_t Observed =
        Policy::read(Count, std::memory_order_acquire, &Count, MemField::Val);
    while (!Policy::casStrong(Count, Observed, Observed + Delta,
                              std::memory_order_acq_rel, &Count,
                              MemField::Val)) {
    }
    return Observed + Delta;
  }

  /// Monotonic high-water mark of published capacities; CAS-max because
  /// a grow after a deep shrink must not regress it.
  void noteCapacity(size_t Cap) {
    size_t Prev = Policy::read(MaxCapacityEver, std::memory_order_acquire,
                               &MaxCapacityEver, MemField::Val);
    while (Prev < Cap &&
           !Policy::casStrong(MaxCapacityEver, Prev, Cap,
                              std::memory_order_acq_rel, &MaxCapacityEver,
                              MemField::Val)) {
    }
  }

  /// Copy \p I's memoized slots [0, Count) into a fresh index of
  /// capacity \p NewCap (callers pass Count = min of the two).
  BucketIndex *copiedIndex(BucketIndex *I, size_t NewCap, size_t CopyCount) {
    BucketIndex *Fresh = BucketIndex::allocate(NewCap);
    Policy::onNewNode(Fresh, static_cast<int64_t>(NewCap));
    for (size_t B = 0; B != CopyCount; ++B) {
      BucketHandle Memo = Policy::read(
          I->Slots[B], std::memory_order_acquire, &I->Slots[B],
          MemField::Next);
      if (Memo)
        Policy::write(Fresh->Slots[B], Memo, std::memory_order_relaxed,
                      &Fresh->Slots[B], MemField::Next);
    }
    return Fresh;
  }

  /// Publish \p Fresh over \p Old. One CAS decides the single resizer;
  /// the loser destroys its never-published copy, the winner retires
  /// the displaced array through the grace-period domain (concurrent
  /// operations that loaded it before the swap still dereference it).
  bool installIndex(BucketIndex *Old, BucketIndex *Fresh) {
    BucketIndex *Expected = Old;
    if (!Policy::casStrong(Index, Expected, Fresh,
                           std::memory_order_release, &Index,
                           MemField::Next)) {
      stats::bump(stats::Counter::MapResizesLost);
      BucketIndex::destroy(Fresh); // Never published.
      return false;
    }
    noteCapacity(Fresh->Capacity);
    stats::bump(stats::Counter::MapResizeSegmentsRetired);
    Domain.retireRaw(Old, &BucketIndex::destroyErased);
    return true;
  }

  /// Doubles the bucket index when the load factor is exceeded. Many
  /// threads may race to resize; one CAS wins (see installIndex).
  void maybeGrow(int64_t NewCount, Guard &G) {
    BucketIndex *I = loadIndex(G);
    const size_t Cap = Policy::readValue(I->Capacity, I);
    if (NewCount <= 0 ||
        static_cast<uint64_t>(NewCount) <= Cap * Cfg.GrowLoadFactor ||
        Cap >= Cfg.MaxBuckets)
      return;
    BucketIndex *Grown = copiedIndex(I, Cap * 2, Cap);
    if (installIndex(I, Grown)) {
      stats::bump(stats::Counter::MapResizes);
      stats::bump(stats::Counter::MapResizeGrows);
    }
  }

  /// Halves the bucket index once occupancy falls below the hysteresis
  /// watermark (1/ShrinkDivisor of the grow trigger), if shrinking is
  /// enabled. The dummies of buckets [Cap/2, Cap) stay in the list as
  /// orphans — sentinels are never removed — and a later grow
  /// re-memoizes them via get-or-insert agreement.
  void maybeShrink(int64_t NewCount, Guard &G) {
    if (!Cfg.EnableShrink)
      return;
    BucketIndex *I = loadIndex(G);
    const size_t Cap = Policy::readValue(I->Capacity, I);
    if (Cap <= Cfg.MinBuckets)
      return;
    const uint64_t Held =
        NewCount > 0 ? static_cast<uint64_t>(NewCount) : 0;
    if (Held * Cfg.ShrinkDivisor >= Cap * Cfg.GrowLoadFactor)
      return;
    BucketIndex *Shrunk = copiedIndex(I, Cap / 2, Cap / 2);
    if (installIndex(I, Shrunk))
      stats::bump(stats::Counter::MapResizeShrinks);
  }

  const HashSetConfig Cfg;
  SubstrateT List;
  Reclaim &Domain; // == List.reclaimDomain(); guards must be shared.
  std::atomic<BucketIndex *> Index{nullptr};
  std::atomic<int64_t> Count{0};
  /// Largest capacity ever published; dummy-addressability invariant
  /// bound (shrink orphans dummies above the current capacity).
  std::atomic<size_t> MaxCapacityEver{0};
};

} // namespace maps
} // namespace vbl

#endif // VBL_MAPS_SPLITORDEREDHASHSET_H
