//===- maps/SplitOrderedHashSet.h - Resizable lock-free hash set ---------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A split-ordered hash set (Shalev & Shavit, JACM 2006) layered on the
/// repo's list substrates: all elements live in ONE ordered list, sorted
/// by split-order key (maps/SplitOrder.h), and the hash layer is nothing
/// but an array of shortcut pointers ("bucket index") into that list.
/// Resizing therefore never moves a node — doubling the table only adds
/// dummy nodes lazily, one per newly addressable bucket, spliced in
/// under the bucket's parent.
///
/// The substrate is pluggable: any list exposing the BucketHandle hooks
/// (insertFrom / removeFrom / containsFrom / getOrInsertSentinelFrom)
/// works. The repo registers two backends ("so-hash-hm" on
/// HarrisMichaelList, "so-hash-vbl" on VblList), so the paper's
/// concurrency-optimal VBL synchronization carries over to the sharded
/// structure unchanged.
///
/// Bucket-index resizing: the index is an immutable-capacity array of
/// atomic slots. Growth copies the memoized slots into a double-size
/// array, publishes it with a release-CAS on the index pointer, and
/// retires the old array through the substrate's reclamation domain —
/// concurrent operations may still be traversing it (they loaded the
/// pointer before the swap), so freeing in place would be a
/// use-after-free; EBR/HP guards already bracket every operation, so the
/// domain's grace period is exactly the right lifetime. A slot lost in
/// the copy race (memoized concurrently with the copy) is harmless: the
/// slot array is pure memoization of getOrInsertSentinelFrom, which
/// always agrees on THE unique dummy node for a bucket, so the next
/// lookup re-initializes to the same handle.
///
/// All shared accesses flow through the substrate's Policy, so the hash
/// layer runs under the deterministic scheduler and the happens-before
/// race detector exactly like the lists do (tests/maps).
///
//===----------------------------------------------------------------------===//

#ifndef VBL_MAPS_SPLITORDEREDHASHSET_H
#define VBL_MAPS_SPLITORDEREDHASHSET_H

#include "core/SetConfig.h"
#include "maps/SplitOrder.h"
#include "reclaim/NodePool.h"
#include "stats/Stats.h"
#include "support/Compiler.h"
#include "sync/Policy.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace vbl {
namespace maps {

template <class SubstrateT> class SplitOrderedHashSet {
public:
  using Substrate = SubstrateT;
  using Reclaim = typename SubstrateT::Reclaim;
  using Policy = typename SubstrateT::Policy;
  using BucketHandle = typename SubstrateT::BucketHandle;

  explicit SplitOrderedHashSet(size_t InitialBuckets = 16,
                               size_t MaxLoadFactor = 4,
                               size_t MaxBuckets = size_t(1) << 22)
      : MaxLoadFactor(MaxLoadFactor ? MaxLoadFactor : 1),
        MaxBuckets(roundUpPow2(MaxBuckets ? MaxBuckets : 1)),
        Domain(List.reclaimDomain()) {
    const size_t Cap =
        std::min(roundUpPow2(InitialBuckets ? InitialBuckets : 1),
                 this->MaxBuckets);
    BucketIndex *Initial = BucketIndex::allocate(Cap);
    // Bucket 0's dummy is the list head sentinel itself.
    Initial->Slots[0].store(List.headHandle(), std::memory_order_relaxed);
    Index.store(Initial, std::memory_order_release);
  }

  ~SplitOrderedHashSet() {
    BucketIndex::destroy(Index.load(std::memory_order_relaxed));
  }

  SplitOrderedHashSet(const SplitOrderedHashSet &) = delete;
  SplitOrderedHashSet &operator=(const SplitOrderedHashSet &) = delete;

  bool insert(SetKey Key) {
    VBL_ASSERT(so::isHashKey(Key), "hash-set keys must lie in [0, 2^62)");
    typename Reclaim::Guard G(Domain);
    if (!List.insertFrom(so::regularSoKey(Key), bucketForKey(Key)))
      return false;
    maybeGrow(adjustCount(+1));
    return true;
  }

  bool remove(SetKey Key) {
    VBL_ASSERT(so::isHashKey(Key), "hash-set keys must lie in [0, 2^62)");
    typename Reclaim::Guard G(Domain);
    if (!List.removeFrom(so::regularSoKey(Key), bucketForKey(Key)))
      return false;
    adjustCount(-1);
    return true;
  }

  /// Non-const: a lookup may lazily splice the bucket's dummy node.
  bool contains(SetKey Key) {
    VBL_ASSERT(so::isHashKey(Key), "hash-set keys must lie in [0, 2^62)");
    typename Reclaim::Guard G(Domain);
    return List.containsFrom(so::regularSoKey(Key), bucketForKey(Key));
  }

  /// Quiescent-only: decoded user keys, ascending (dummies filtered).
  /// Range scan. Split order is bit-reversed hash order, not user-key
  /// order, so a window of user keys is scattered across the whole
  /// list: the scan walks the entire substrate once (the substrate's
  /// own linearizable scan, which skips dummies' even so-keys along
  /// with deleted nodes), decodes the regular so-keys, filters to
  /// [Lo, Hi] and sorts. O(n) whatever the window — the price of
  /// hashing; the flat and chunk lists are the range-friendly backends.
  size_t rangeQuery(SetKey Lo, SetKey Hi, std::vector<SetKey> &Out) {
    VBL_ASSERT(so::isHashKey(Lo) && so::isHashKey(Hi),
               "hash-set keys must lie in [0, 2^62)");
    if (Lo > Hi)
      return 0;
    typename Reclaim::Guard G(Domain);
    // Regular so-keys occupy [MinSentinel+1, MaxSentinel-2]: mix62 stays
    // below 2^62, so the reversal leaves bit 1 clear and the tagged
    // value never reaches the sentinels (SplitOrder.h static_asserts).
    std::vector<SetKey> SoKeys;
    List.rangeQuery(MinSentinel + 1, MaxSentinel - 1, SoKeys);
    const size_t Entry = Out.size();
    for (SetKey SoKey : SoKeys) {
      if (!so::isRegularSoKey(SoKey))
        continue;
      const SetKey K = so::decodeRegular(SoKey);
      if (K >= Lo && K <= Hi)
        Out.push_back(K);
    }
    std::sort(Out.begin() + static_cast<ptrdiff_t>(Entry), Out.end());
    return Out.size() - Entry;
  }

  std::vector<SetKey> snapshot() const {
    std::vector<SetKey> Keys;
    for (SetKey SoKey : List.snapshot())
      if (so::isRegularSoKey(SoKey))
        Keys.push_back(so::decodeRegular(SoKey));
    std::sort(Keys.begin(), Keys.end());
    return Keys;
  }

  /// Quiescent-only: substrate invariants plus hash-layer ones — the
  /// index capacity is a power of two, slot 0 is the head, every
  /// initialized slot memoizes its own bucket's dummy, every dummy in
  /// the list is addressable, and the element count matches.
  bool checkInvariants() const {
    if (!List.checkInvariants())
      return false;
    const BucketIndex *I = Index.load(std::memory_order_acquire);
    if (!I || I->Capacity == 0 || (I->Capacity & (I->Capacity - 1)) != 0)
      return false;
    if (static_cast<const void *>(
            I->Slots[0].load(std::memory_order_acquire)) != List.headNode())
      return false;
    for (size_t B = 1; B < I->Capacity; ++B) {
      BucketHandle Handle = I->Slots[B].load(std::memory_order_acquire);
      if (Handle && Substrate::handleKey(Handle) != so::dummySoKey(B))
        return false;
    }
    int64_t Regular = 0;
    for (SetKey SoKey : List.snapshot()) {
      if (so::isRegularSoKey(SoKey)) {
        ++Regular;
        continue;
      }
      if (so::bucketOfDummy(SoKey) >= I->Capacity)
        return false;
    }
    return Regular == Count.load(std::memory_order_acquire);
  }

  size_t sizeSlow() const { return snapshot().size(); }

  /// Element count maintained by insert/remove (exact when quiescent).
  int64_t sizeFast() const {
    return Count.load(std::memory_order_acquire);
  }

  size_t bucketCount() const {
    return Index.load(std::memory_order_acquire)->Capacity;
  }

  Reclaim &reclaimDomain() { return Domain; }

  /// Tooling passthroughs (schedule exporters, explorer chain dumps).
  const void *headNode() const { return List.headNode(); }
  std::vector<std::pair<const void *, SetKey>> nodeChain() const {
    return List.nodeChain();
  }

  /// Flow-invariant self-description: every element and dummy lives in
  /// the one underlying list under split-order keys that stay strictly
  /// inside the sentinel range (maps/SplitOrder.h static_asserts), so
  /// the substrate's own flow view is exactly the oracle's input.
  /// SFINAE-gated so substrates without flowView() merely opt the hash
  /// set out instead of breaking the build.
  template <class S = Substrate>
  auto flowView() -> decltype(std::declval<S &>().flowView()) {
    return List.flowView();
  }

  Substrate &substrate() { return List; }

private:
  /// Immutable-capacity array of memoized bucket handles; null slots are
  /// lazily initialized. Replaced wholesale on growth.
  struct BucketIndex {
    size_t Capacity = 0; // Power of two; immutable after publication.
    std::atomic<BucketHandle> *Slots = nullptr;

    static BucketIndex *allocate(size_t Capacity) {
      auto *I = reclaim::poolCreate<BucketIndex, Policy>();
      I->Capacity = Capacity;
      // Raw pool bytes with per-element placement-new (an array
      // new-expression could prepend a length cookie, overflowing an
      // exactly-sized pool block). Small tables recycle through the
      // pool; indices past 1 KiB take the pool's transparent heap path.
      void *Mem = reclaim::NodePool::allocate<Policy>(
          Capacity * sizeof(std::atomic<BucketHandle>),
          alignof(std::atomic<BucketHandle>));
      I->Slots = static_cast<std::atomic<BucketHandle> *>(Mem);
      for (size_t B = 0; B != Capacity; ++B) {
        ::new (static_cast<void *>(I->Slots + B))
            std::atomic<BucketHandle>();
        I->Slots[B].store(nullptr, std::memory_order_relaxed);
      }
      return I;
    }

    static void destroy(BucketIndex *I) {
      // Capacity is needed to recompute the block's size class; read it
      // before releasing the header. Atomics are trivially destructible.
      const size_t Capacity = I->Capacity;
      reclaim::NodePool::deallocate<Policy>(
          I->Slots, Capacity * sizeof(std::atomic<BucketHandle>),
          alignof(std::atomic<BucketHandle>));
      reclaim::poolDestroy<Policy>(I);
    }

    /// Type-erased deleter for Reclaim::retireRaw.
    static void destroyErased(void *I) {
      destroy(static_cast<BucketIndex *>(I));
    }
  };

  static constexpr size_t roundUpPow2(size_t X) {
    size_t P = 1;
    while (P < X)
      P <<= 1;
    return P;
  }

  /// Handle of the bucket that must anchor operations on \p Key under
  /// the current index.
  BucketHandle bucketForKey(SetKey Key) {
    BucketIndex *I = Policy::read(Index, std::memory_order_acquire, &Index,
                                  MemField::Next);
    const size_t Cap = Policy::readValue(I->Capacity, I);
    const size_t B =
        static_cast<size_t>(so::mix62(static_cast<uint64_t>(Key))) &
        (Cap - 1);
    return bucketHandle(I, B);
  }

  /// Memoized-get-or-initialize of bucket \p B's dummy handle. The
  /// recursion splices missing dummies parent-first (parent = bucket
  /// with its top set bit cleared), which terminates at slot 0 — always
  /// initialized to the head (directly in the first index, via the copy
  /// in grown ones).
  BucketHandle bucketHandle(BucketIndex *I, size_t B) {
    BucketHandle Memo = Policy::read(I->Slots[B], std::memory_order_acquire,
                                     &I->Slots[B], MemField::Next);
    if (Memo)
      return Memo;
    VBL_ASSERT(B != 0, "slot 0 is preset to the list head");
    // One dummy splice, one parent link walked. In this
    // one-link-per-splice recursion the two totals coincide; the chain
    // counter is kept separate so a bulk-init strategy that probes
    // several ancestors per splice stays comparable.
    stats::bump(stats::Counter::MapBucketInits);
    stats::bump(stats::Counter::MapBucketInitChain);
    BucketHandle Parent = bucketHandle(I, so::parentBucket(B));
    BucketHandle Dummy =
        List.getOrInsertSentinelFrom(so::dummySoKey(B), Parent);
    // Losing this CAS means another thread memoized first; get-or-insert
    // agreement guarantees it memoized the same node, so either way
    // Dummy is THE handle for bucket B.
    BucketHandle Expected = nullptr;
    Policy::casStrong(I->Slots[B], Expected, Dummy,
                      std::memory_order_release, &I->Slots[B],
                      MemField::Next);
    return Dummy;
  }

  /// Count is an acquire/acq_rel CAS loop rather than a relaxed
  /// fetch_add so concurrent updates stay ordered under the
  /// happens-before race detector (relaxed accesses count as plain).
  int64_t adjustCount(int64_t Delta) {
    int64_t Observed =
        Policy::read(Count, std::memory_order_acquire, &Count, MemField::Val);
    while (!Policy::casStrong(Count, Observed, Observed + Delta,
                              std::memory_order_acq_rel, &Count,
                              MemField::Val)) {
    }
    return Observed + Delta;
  }

  /// Doubles the bucket index when the load factor is exceeded. Many
  /// threads may race to grow; one CAS wins, losers free their
  /// never-published copy. The displaced index is retired through the
  /// reclamation domain because concurrent operations that loaded it
  /// before the swap may still dereference its slots.
  void maybeGrow(int64_t NewCount) {
    BucketIndex *I = Policy::read(Index, std::memory_order_acquire, &Index,
                                  MemField::Next);
    const size_t Cap = Policy::readValue(I->Capacity, I);
    if (NewCount <= 0 ||
        static_cast<uint64_t>(NewCount) <= Cap * MaxLoadFactor ||
        Cap >= MaxBuckets)
      return;
    BucketIndex *Grown = BucketIndex::allocate(Cap * 2);
    Policy::onNewNode(Grown, static_cast<int64_t>(Cap * 2));
    for (size_t B = 0; B != Cap; ++B) {
      BucketHandle Memo = Policy::read(
          I->Slots[B], std::memory_order_acquire, &I->Slots[B],
          MemField::Next);
      if (Memo)
        Policy::write(Grown->Slots[B], Memo, std::memory_order_relaxed,
                      &Grown->Slots[B], MemField::Next);
    }
    BucketIndex *Expected = I;
    if (Policy::casStrong(Index, Expected, Grown,
                          std::memory_order_release, &Index,
                          MemField::Next)) {
      stats::bump(stats::Counter::MapResizes);
      Domain.retireRaw(I, &BucketIndex::destroyErased);
    } else {
      stats::bump(stats::Counter::MapResizesLost);
      BucketIndex::destroy(Grown); // Never published.
    }
  }

  const size_t MaxLoadFactor;
  const size_t MaxBuckets;
  SubstrateT List;
  Reclaim &Domain; // == List.reclaimDomain(); guards must be shared.
  std::atomic<BucketIndex *> Index{nullptr};
  std::atomic<int64_t> Count{0};
};

} // namespace maps
} // namespace vbl

#endif // VBL_MAPS_SPLITORDEREDHASHSET_H
