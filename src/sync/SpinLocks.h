//===- sync/SpinLocks.h - Spinlock primitives ----------------------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Spinlock primitives used as the mutual-exclusion substrate of the
/// lock-based lists. The paper's value-aware try-lock is "implemented
/// using compare-and-swap"; TasLock is that CAS lock. TtasLock and
/// TicketLock exist for the lock micro-benchmark and as drop-in
/// alternatives in the lock-based lists.
///
/// All locks expose lock / tryLock / unlock and are neither copyable nor
/// movable (nodes embed them).
///
//===----------------------------------------------------------------------===//

#ifndef VBL_SYNC_SPINLOCKS_H
#define VBL_SYNC_SPINLOCKS_H

#include "stats/Stats.h"
#include "support/Compiler.h"
#include "support/ThreadSafety.h"

#include <atomic>
#include <cstdint>
#include <thread>

namespace vbl {

/// Pause hint for spin loops; keeps the spinning hyperthread from
/// starving the lock holder and cuts the exit latency of the loop.
inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

/// Bounded spin helper: relax for a while, then yield to the OS so the
/// lock holder can run when threads outnumber cores (this repo's
/// benchmarks oversubscribe deliberately).
class SpinBackoff {
public:
  void spin() {
    if (Count < YieldThreshold) {
      ++Count;
      cpuRelax();
      return;
    }
    std::this_thread::yield();
  }

private:
  static constexpr unsigned YieldThreshold = 64;
  unsigned Count = 0;
};

/// Test-and-set lock: a single exchanged byte. This is the paper's
/// CAS-based lock and the default node lock of the VBL and Lazy lists.
class VBL_CAPABILITY("mutex") TasLock {
public:
  TasLock() = default;
  TasLock(const TasLock &) = delete;
  TasLock &operator=(const TasLock &) = delete;

  // The body realizes the capability with a raw atomic, below the level
  // the analysis models; the declaration is what callers are checked
  // against.
  bool tryLock() VBL_TRY_ACQUIRE(true) VBL_NO_THREAD_SAFETY_ANALYSIS {
    return !Locked.exchange(true, std::memory_order_acquire);
  }

  void lock() VBL_ACQUIRE() {
    SpinBackoff Backoff;
    uint64_t Retries = 0; // Failed attempts; one stats call at the end.
    for (;;) {
      if (tryLock())
        break;
      ++Retries;
      Backoff.spin();
    }
    if (VBL_UNLIKELY(Retries != 0))
      stats::bump(stats::Counter::LockAcquireRetries, Retries);
  }

  // Raw-atomic release of the capability (see tryLock).
  void unlock() VBL_RELEASE() VBL_NO_THREAD_SAFETY_ANALYSIS {
    VBL_ASSERT(Locked.load(std::memory_order_relaxed),
               "unlock of an unlocked TasLock");
    Locked.store(false, std::memory_order_release);
  }

  bool isLocked() const { return Locked.load(std::memory_order_acquire); }

private:
  std::atomic<bool> Locked{false};
};

/// Test-and-test-and-set lock: spins on a plain load so waiters keep the
/// line shared instead of bouncing it in exclusive state.
class VBL_CAPABILITY("mutex") TtasLock {
public:
  TtasLock() = default;
  TtasLock(const TtasLock &) = delete;
  TtasLock &operator=(const TtasLock &) = delete;

  // Raw-atomic capability implementation (see TasLock::tryLock).
  bool tryLock() VBL_TRY_ACQUIRE(true) VBL_NO_THREAD_SAFETY_ANALYSIS {
    if (Locked.load(std::memory_order_relaxed))
      return false;
    return !Locked.exchange(true, std::memory_order_acquire);
  }

  // Raw-atomic capability implementation: the TTAS spin reads the lock
  // word directly, which the analysis cannot model.
  void lock() VBL_ACQUIRE() VBL_NO_THREAD_SAFETY_ANALYSIS {
    SpinBackoff Backoff;
    uint64_t Retries = 0; // Contended waits + lost exchanges.
    for (;;) {
      if (Locked.load(std::memory_order_relaxed)) {
        ++Retries;
        do
          Backoff.spin();
        while (Locked.load(std::memory_order_relaxed));
      }
      if (!Locked.exchange(true, std::memory_order_acquire))
        break;
      ++Retries;
    }
    if (VBL_UNLIKELY(Retries != 0))
      stats::bump(stats::Counter::LockAcquireRetries, Retries);
  }

  // Raw-atomic release of the capability (see TasLock::unlock).
  void unlock() VBL_RELEASE() VBL_NO_THREAD_SAFETY_ANALYSIS {
    VBL_ASSERT(Locked.load(std::memory_order_relaxed),
               "unlock of an unlocked TtasLock");
    Locked.store(false, std::memory_order_release);
  }

  bool isLocked() const { return Locked.load(std::memory_order_acquire); }

private:
  std::atomic<bool> Locked{false};
};

/// FIFO ticket lock. Fair under contention, which the lock
/// micro-benchmark uses to show why the lists prefer unfair TAS locks
/// (fairness costs throughput when the critical section is two stores).
class VBL_CAPABILITY("mutex") TicketLock {
public:
  TicketLock() = default;
  TicketLock(const TicketLock &) = delete;
  TicketLock &operator=(const TicketLock &) = delete;

  // Raw-atomic capability implementation (see TasLock::tryLock).
  bool tryLock() VBL_TRY_ACQUIRE(true) VBL_NO_THREAD_SAFETY_ANALYSIS {
    // Acquire: the release in unlock() is on NowServing, so THIS load is
    // the edge that makes the previous critical section visible. (Found
    // the hard way: with a relaxed load here, two serialized tryLock
    // holders have no happens-before edge — a genuine data race.)
    uint32_t Serving = NowServing.load(std::memory_order_acquire);
    uint32_t Expected = Serving;
    // Only take a ticket if it would be served immediately.
    return NextTicket.compare_exchange_strong(Expected, Serving + 1,
                                              std::memory_order_acquire,
                                              std::memory_order_relaxed);
  }

  // Raw-atomic capability implementation: the ticket protocol (take a
  // ticket, spin on NowServing) is below the level the analysis models.
  void lock() VBL_ACQUIRE() VBL_NO_THREAD_SAFETY_ANALYSIS {
    const uint32_t My = NextTicket.fetch_add(1, std::memory_order_relaxed);
    SpinBackoff Backoff;
    bool Waited = false;
    while (NowServing.load(std::memory_order_acquire) != My) {
      Backoff.spin();
      Waited = true;
    }
    // One retry per contended acquisition (ticket waits have no
    // per-attempt structure to count).
    if (VBL_UNLIKELY(Waited))
      stats::bump(stats::Counter::LockAcquireRetries);
  }

  // Raw-atomic release of the capability (see TasLock::unlock).
  void unlock() VBL_RELEASE() VBL_NO_THREAD_SAFETY_ANALYSIS {
    NowServing.store(NowServing.load(std::memory_order_relaxed) + 1,
                     std::memory_order_release);
  }

  bool isLocked() const {
    return NowServing.load(std::memory_order_acquire) !=
           NextTicket.load(std::memory_order_acquire);
  }

private:
  std::atomic<uint32_t> NextTicket{0};
  std::atomic<uint32_t> NowServing{0};
};

} // namespace vbl

#endif // VBL_SYNC_SPINLOCKS_H
