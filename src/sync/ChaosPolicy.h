//===- sync/ChaosPolicy.h - Random-delay schedule fuzzing ----------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A third access policy between DirectPolicy (nothing) and
/// sched::TracedPolicy (full determinism): ChaosPolicy perturbs real
/// concurrent executions by injecting random pauses before shared
/// accesses. It widens the window of every race by orders of magnitude,
/// so stress tests reach interleavings that are astronomically rare
/// under plain timing — cheap schedule fuzzing where the deterministic
/// explorer would be too slow (big lists, many ops).
///
/// The pause distribution is heavy-tailed on purpose: mostly nothing,
/// sometimes a few relax loops, rarely a full OS yield (which on an
/// oversubscribed host parks the thread mid-critical-section — the
/// harshest realistic schedule).
///
//===----------------------------------------------------------------------===//

#ifndef VBL_SYNC_CHAOSPOLICY_H
#define VBL_SYNC_CHAOSPOLICY_H

#include "support/Random.h"
#include "sync/Policy.h"
#include "sync/SpinLocks.h"

#include <thread>

namespace vbl {

/// DirectPolicy plus randomized pauses. All hooks are static; each
/// thread fuzzes with its own generator.
struct ChaosPolicy {
  static constexpr bool Traced = false;

  /// Injected before every shared access. Roughly: 7/8 nothing, 1/8 a
  /// short spin, 1/64 an OS yield.
  static void perturb() {
    thread_local Xoshiro256 Rng(
        0x9e3779b97f4a7c15ULL ^
        std::hash<std::thread::id>{}(std::this_thread::get_id()));
    const uint64_t Roll = Rng.next();
    if ((Roll & 7) != 0)
      return;
    if ((Roll & 63) == 0) {
      std::this_thread::yield();
      return;
    }
    for (unsigned I = 0, E = 1 + (Roll >> 8) % 32; I != E; ++I)
      cpuRelax();
  }

  template <class T>
  static T read(const std::atomic<T> &Atom, std::memory_order Order,
                const void *Node, MemField Field) {
    perturb();
    return DirectPolicy::read(Atom, Order, Node, Field);
  }

  template <class T>
  static T readCheck(const std::atomic<T> &Atom, std::memory_order Order,
                     const void *Node, MemField Field) {
    perturb();
    return DirectPolicy::readCheck(Atom, Order, Node, Field);
  }

  template <class T>
  static void write(std::atomic<T> &Atom, T Value, std::memory_order Order,
                    const void *Node, MemField Field) {
    perturb();
    DirectPolicy::write(Atom, Value, Order, Node, Field);
  }

  template <class T>
  static bool casStrong(std::atomic<T> &Atom, T &Expected, T Desired,
                        std::memory_order Order, const void *Node,
                        MemField Field) {
    perturb();
    return DirectPolicy::casStrong(Atom, Expected, Desired, Order, Node,
                                   Field);
  }

  template <class T>
  static T exchange(std::atomic<T> &Atom, T Value, std::memory_order Order,
                    const void *Node, MemField Field) {
    perturb();
    return DirectPolicy::exchange(Atom, Value, Order, Node, Field);
  }

  template <class T> static T readValue(const T &Plain, const void *Node) {
    perturb();
    return DirectPolicy::readValue(Plain, Node);
  }

  template <class T>
  static T readValueCheck(const T &Plain, const void *Node) {
    perturb();
    return DirectPolicy::readValueCheck(Plain, Node);
  }

  template <class L> static void lockAcquire(L &Lock, const void *Node) {
    perturb();
    DirectPolicy::lockAcquire(Lock, Node);
    // A pause right AFTER acquiring is the nastiest one: it simulates
    // preemption inside the critical section.
    perturb();
  }

  template <class L>
  static bool lockTryAcquire(L &Lock, const void *Node) {
    perturb();
    return DirectPolicy::lockTryAcquire(Lock, Node);
  }

  template <class L> static void lockRelease(L &Lock, const void *Node) {
    perturb();
    DirectPolicy::lockRelease(Lock, Node);
  }

  static void onNewNode(const void *Node, int64_t Val) {
    DirectPolicy::onNewNode(Node, Val);
  }

  static void onRestart() { DirectPolicy::onRestart(); }
};

} // namespace vbl

#endif // VBL_SYNC_CHAOSPOLICY_H
