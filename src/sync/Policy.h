//===- sync/Policy.h - Shared-memory access policies ---------------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every list implementation in this repo is templated on an *access
/// policy* that mediates loads, stores, CASes, lock operations and node
/// creation on list shared state. Two policies exist:
///
///  - DirectPolicy (this header): forwards straight to std::atomic with
///    the requested memory order. Compiles to exactly the plain
///    implementation; this is what benchmarks and production users get.
///
///  - sched::TracedPolicy (src/sched/TracedPolicy.h): yields to a
///    deterministic scheduler before every access and records the event
///    stream, turning the paper's Section 2 "schedules" into executable
///    objects.
///
/// The hooks receive a stable node identifier (the node address) and a
/// field tag so the trace can be mapped back onto the sequential
/// specification LL.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_SYNC_POLICY_H
#define VBL_SYNC_POLICY_H

#include "stats/Stats.h"
#include "support/ThreadSafety.h"

#include <atomic>
#include <cstdint>

namespace vbl {

/// Which logical field of a list node an access touches. `Val` and
/// `Next` are the fields of the sequential spec LL; `Marked` and `Lock`
/// are synchronization metadata that concrete algorithms add. `Epoch`
/// tags the reclamation substrate's own shared state (epoch counters,
/// guard announcements, pool transfer beacons) — never part of LL, but
/// policy-mediated so the race detector can prove a node recycle
/// happens-after every traversal that could still hold the node.
enum class MemField : uint8_t { Val, Next, Marked, Lock, Epoch };

/// High-level set operation kinds, shared by tracing, histories and the
/// linearizability checker.
enum class SetOp : uint8_t { Insert, Remove, Contains, RangeQuery };

inline const char *setOpName(SetOp Op) {
  switch (Op) {
  case SetOp::Insert:
    return "insert";
  case SetOp::Remove:
    return "remove";
  case SetOp::Contains:
    return "contains";
  case SetOp::RangeQuery:
    return "range_query";
  }
  return "?";
}

/// The zero-overhead policy: every hook forwards to std::atomic and the
/// bookkeeping callbacks vanish. All hooks are static so instantiating a
/// list with DirectPolicy carries no state.
struct DirectPolicy {
  static constexpr bool Traced = false;

  template <class T>
  static T read(const std::atomic<T> &Atom, std::memory_order Order,
                const void * /*Node*/, MemField /*Field*/) {
    return Atom.load(Order);
  }

  template <class T>
  static void write(std::atomic<T> &Atom, T Value, std::memory_order Order,
                    const void * /*Node*/, MemField /*Field*/) {
    Atom.store(Value, Order);
  }

  template <class T>
  static bool casStrong(std::atomic<T> &Atom, T &Expected, T Desired,
                        std::memory_order Order, const void * /*Node*/,
                        MemField /*Field*/) {
    return Atom.compare_exchange_strong(Expected, Desired, Order,
                                        std::memory_order_acquire);
  }

  /// Unconditional read-modify-write. The epoch guard's announcement is
  /// a single seq_cst exchange (one fence-bearing RMW instead of two
  /// seq_cst stores); traced mode records it as an always-succeeding CAS.
  template <class T>
  static T exchange(std::atomic<T> &Atom, T Value, std::memory_order Order,
                    const void * /*Node*/, MemField /*Field*/) {
    return Atom.exchange(Value, Order);
  }

  /// Reads an immutable (non-atomic) key field. Traced mode still wants a
  /// yield point here because LL's traversal reads `val`.
  template <class T>
  static T readValue(const T &Plain, const void * /*Node*/) {
    return Plain;
  }

  /// A *validation* read: performed under a lock purely to re-check a
  /// condition, never part of the sequential specification LL. The
  /// schedule exporter drops these when projecting an execution onto LL
  /// (§2.2: the exported schedule keeps only LL's reads and writes).
  template <class T>
  static T readCheck(const std::atomic<T> &Atom, std::memory_order Order,
                     const void * /*Node*/, MemField /*Field*/) {
    return Atom.load(Order);
  }

  /// Validation flavour of readValue (see readCheck).
  template <class T>
  static T readValueCheck(const T &Plain, const void * /*Node*/) {
    return Plain;
  }

  /// Blocking lock acquisition. Traced mode converts the spin into a
  /// scheduler-visible "blocked on lock" state; direct mode just spins.
  template <class L>
  static void lockAcquire(L &Lock, const void * /*Node*/)
      VBL_ACQUIRE(Lock) {
    Lock.lock();
  }

  template <class L>
  static bool lockTryAcquire(L &Lock, const void * /*Node*/)
      VBL_TRY_ACQUIRE(true, Lock) {
    return Lock.tryLock();
  }

  template <class L>
  static void lockRelease(L &Lock, const void * /*Node*/)
      VBL_RELEASE(Lock) {
    Lock.unlock();
  }

  /// A new list node became visible to the algorithm (LL's `new-node`).
  static void onNewNode(const void * /*Node*/, int64_t /*Val*/) {}

  /// The operation abandoned its current attempt and will re-traverse.
  /// The paper's exported schedule keeps only the last attempt's steps.
  /// Every list funnels its restart sites through this hook, so the
  /// restart counter is bumped here once instead of at each site.
  static void onRestart() { stats::bump(stats::Counter::ListRestarts); }
};

} // namespace vbl

#endif // VBL_SYNC_POLICY_H
