//===- sync/VersionedLock.h - Seqlock-style versioned try-lock -----------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A word-sized lock that doubles as a version counter (seqlock
/// discipline): even = unlocked, odd = held, and every release bumps
/// the version. The paper's related-work section credits VBL's design
/// headroom to "separat[ing] metadata (logical deletion and versions)
/// from the structural data"; this is that versions half, offered as a
/// drop-in node lock for the lists.
///
/// Beyond plain mutual exclusion it supports optimistic readers:
///
///   uint64_t V = Lock.readBegin();        // spins past writers
///   ... read the protected fields ...
///   if (Lock.readValidate(V)) { /* reads were atomic */ }
///
/// which the versioned-validation tests use to check that a window
/// observed between readBegin/readValidate was never concurrently
/// mutated.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_SYNC_VERSIONEDLOCK_H
#define VBL_SYNC_VERSIONEDLOCK_H

#include "stats/Stats.h"
#include "support/Compiler.h"
#include "support/ThreadSafety.h"
#include "sync/Policy.h"
#include "sync/SpinLocks.h"

#include <atomic>
#include <cstdint>

namespace vbl {

class VBL_CAPABILITY("mutex") VersionedLock {
public:
  VersionedLock() = default;
  VersionedLock(const VersionedLock &) = delete;
  VersionedLock &operator=(const VersionedLock &) = delete;

  // The capability is realized by the parity bit of a raw version word,
  // below the level the analysis models; callers are checked against
  // the declaration.
  bool tryLock() VBL_TRY_ACQUIRE(true) VBL_NO_THREAD_SAFETY_ANALYSIS {
    uint64_t V = Word.load(std::memory_order_relaxed);
    if (V & 1)
      return false;
    return Word.compare_exchange_strong(V, V + 1,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed);
  }

  void lock() VBL_ACQUIRE() {
    SpinBackoff Backoff;
    uint64_t Retries = 0; // Failed attempts; one stats call at the end.
    for (;;) {
      if (tryLock())
        break;
      ++Retries;
      Backoff.spin();
    }
    if (VBL_UNLIKELY(Retries != 0))
      stats::bump(stats::Counter::LockAcquireRetries, Retries);
  }

  // Raw release: the version bump both drops the capability and
  // invalidates optimistic readers (see tryLock).
  void unlock() VBL_RELEASE() VBL_NO_THREAD_SAFETY_ANALYSIS {
    const uint64_t V = Word.load(std::memory_order_relaxed);
    VBL_ASSERT(V & 1, "unlock of an unlocked VersionedLock");
    // Release bump: ends the critical section and invalidates every
    // optimistic reader that overlapped it.
    Word.store(V + 1, std::memory_order_release);
  }

  bool isLocked() const {
    return Word.load(std::memory_order_acquire) & 1;
  }

  /// Optimistic read entry: returns a version observed while unlocked
  /// (spinning past in-flight writers). Every spin iteration that saw a
  /// writer counts one lock.optimistic_retries.
  uint64_t readBegin() const {
    SpinBackoff Backoff;
    uint64_t Retries = 0;
    for (;;) {
      const uint64_t V = Word.load(std::memory_order_acquire);
      if (!(V & 1)) {
        if (VBL_UNLIKELY(Retries != 0))
          stats::bump(stats::Counter::LockOptimisticRetries, Retries);
        return V;
      }
      ++Retries;
      Backoff.spin();
    }
  }

  /// Single-probe, policy-mediated readBegin: succeeds (storing the
  /// observed version in \p VersionOut) iff the lock was unlocked at
  /// the probe; a locked observation counts one optimistic retry and
  /// returns false instead of spinning. This is the variant the
  /// deterministic-scheduler tests drive — an unbounded spin inside one
  /// scheduler step could never be interleaved (or terminated) by the
  /// explorer, so the retry loop belongs to the caller, as one policy
  /// event per probe.
  template <class PolicyT>
  bool tryReadBegin(uint64_t &VersionOut, const void *Id) const {
    const uint64_t V =
        PolicyT::read(Word, std::memory_order_acquire, Id, MemField::Lock);
    if (V & 1) {
      stats::bump(stats::Counter::LockOptimisticRetries);
      return false;
    }
    VersionOut = V;
    return true;
  }

  /// True iff no writer held the lock since readBegin returned
  /// \p Version: the reads in between were effectively atomic. A failed
  /// validation counts one lock.optimistic_retries (the reader's work
  /// is discarded — the optimistic analogue of a rejected schedule).
  bool readValidate(uint64_t Version) const {
#if defined(__SANITIZE_THREAD__)
    // TSan neither supports nor models fences; the acquire load keeps
    // the build clean and TSan's happens-before tracking exact.
    const bool Ok = Word.load(std::memory_order_acquire) == Version;
#else
    // The fence orders the caller's protected reads before the
    // re-read of the version word (an acquire *load* alone would not
    // order the earlier reads).
    std::atomic_thread_fence(std::memory_order_acquire);
    const bool Ok = Word.load(std::memory_order_relaxed) == Version;
#endif
    if (!Ok)
      stats::bump(stats::Counter::LockOptimisticRetries);
    return Ok;
  }

  /// Policy-mediated readValidate for deterministic tests: the re-read
  /// is a scheduler-visible validation event. Counts a retry on failure
  /// exactly like the direct variant.
  template <class PolicyT>
  bool readValidate(uint64_t Version, const void *Id) const {
    const bool Ok = PolicyT::readCheck(Word, std::memory_order_acquire, Id,
                                       MemField::Lock) == Version;
    if (!Ok)
      stats::bump(stats::Counter::LockOptimisticRetries);
    return Ok;
  }

  /// Current raw version (tests/diagnostics).
  uint64_t version() const {
    return Word.load(std::memory_order_acquire);
  }

private:
  std::atomic<uint64_t> Word{0};
};

} // namespace vbl

#endif // VBL_SYNC_VERSIONEDLOCK_H
