//===- core/ChunkLock.h - Versioned value-aware chunk lock ---------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The chunk-granularity variant of the paper's §3.1 value-aware
/// try-lock. Where ValueAwareTryLock validates a single successor value
/// under a plain spinlock, ChunkLock wraps a VersionedLock so an
/// operation can (a) read a chunk optimistically at a known version and
/// (b) later acquire the lock and *skip revalidation entirely* when the
/// version proves nothing intervened. The protocol:
///
///   uint64_t V = Lock.optimisticVersion<Policy>(Id);   // even or Invalid
///   ... scan the chunk's published slots ...
///   if (Lock.acquireIfValidSince<Policy>(Id, V, validate)) {
///     ... mutate, then Lock.release<Policy>(Id) ...
///   }
///
/// acquireIfValidSince holds the lock when the version is still V
/// (fast path: the optimistic scan doubles as the validation, which is
/// exactly the chunk-granularity reading of "validate data, not
/// pointers") or when \p Validate passes under the lock (slow path: a
/// writer committed in between, so the decision is re-derived from
/// chunk *values* at commit time). On validation failure the lock is
/// released and false returned — the caller re-traverses, same contract
/// as ValueAwareTryLock.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_CORE_CHUNKLOCK_H
#define VBL_CORE_CHUNKLOCK_H

#include "support/ThreadSafety.h"
#include "sync/Policy.h"
#include "sync/VersionedLock.h"

#include <cstdint>

namespace vbl {

class VBL_CAPABILITY("mutex") ChunkLock {
public:
  /// Returned by optimisticVersion when the probe saw a writer; never a
  /// real version (real versions observed unlocked are even).
  static constexpr uint64_t InvalidVersion = ~uint64_t{0};

  ChunkLock() = default;
  ChunkLock(const ChunkLock &) = delete;
  ChunkLock &operator=(const ChunkLock &) = delete;

  /// Single-probe optimistic entry: the chunk's version if it was
  /// unlocked at the probe, InvalidVersion otherwise (one policy event
  /// either way, so the deterministic scheduler can interleave between
  /// probe and retry — the retry loop belongs to the caller).
  template <class Policy>
  uint64_t optimisticVersion(const void *Id) const {
    uint64_t V;
    if (!Inner.tryReadBegin<Policy>(V, Id))
      return InvalidVersion;
    return V;
  }

  /// True iff no writer committed since \p Version was observed. A
  /// scheduler-visible validation event (readCheck class).
  template <class Policy>
  bool readValidate(uint64_t Version, const void *Id) const {
    return Inner.readValidate<Policy>(Version, Id);
  }

  /// Acquires the lock, then decides whether the state observed at
  /// \p Seen is still current: if the version is exactly Seen + 1 (our
  /// own acquisition's parity bump, i.e. no writer committed in
  /// between) the lock is kept with no further checks; otherwise
  /// \p Validate is evaluated under the lock and the lock is kept on
  /// true, released on false. \p Revalidated (optional) reports whether
  /// the slow path ran, so callers can count chunk validation work.
  //
  // Suppressed body: the wrapper capability is realized by the embedded
  // VersionedLock, and the analysis cannot express that the two
  // capabilities alias (acquiring Inner IS acquiring this).
  template <class Policy, class ValidateFn>
  bool acquireIfValidSince(const void *Id, uint64_t Seen,
                           ValidateFn &&Validate,
                           bool *Revalidated = nullptr)
      VBL_TRY_ACQUIRE(true) VBL_NO_THREAD_SAFETY_ANALYSIS {
    Policy::lockAcquire(Inner, Id);
    // Under the lock the version word is stable (only the holder can
    // change it), so a direct read is interleaving-insensitive.
    if (Seen != InvalidVersion && Inner.version() == Seen + 1) {
      if (Revalidated)
        *Revalidated = false;
      return true;
    }
    if (Revalidated)
      *Revalidated = true;
    if (Validate())
      return true;
    Policy::lockRelease(Inner, Id);
    return false;
  }

  /// Releases a lock kept by acquireIfValidSince. The embedded release
  /// bumps the version, invalidating every overlapped optimistic scan.
  //
  // Suppressed body: releases the aliased Inner capability (see
  // acquireIfValidSince).
  template <class Policy>
  void release(const void *Id) VBL_RELEASE() VBL_NO_THREAD_SAFETY_ANALYSIS {
    Policy::lockRelease(Inner, Id);
  }

  /// Observability for tests.
  bool isLocked() const { return Inner.isLocked(); }
  uint64_t version() const { return Inner.version(); }

private:
  VersionedLock Inner;
};

} // namespace vbl

#endif // VBL_CORE_CHUNKLOCK_H
