//===- core/VblList.h - The concurrency-optimal Value-Based List ---------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The VBL list (Algorithm 2 of the paper): a linearizable,
/// deadlock-free, *concurrency-optimal* list-based set. Three ideas
/// compose:
///
///  1. Wait-free value-based traversals (shared with the Lazy list, but
///     without reading any deletion metadata), restarting from `prev`
///     rather than from the head after a failed validation.
///  2. Logical deletion before physical unlink (from Harris-Michael),
///     done under locks so each node is unlinked exactly once.
///  3. The value-aware try-lock (§3.1): updates validate the *data*
///     they are about to act on after acquiring the lock — and inserts
///     or removes that turn out to be read-only never lock at all.
///
/// Template knobs (used by the ablation benchmark):
///  - ReclaimT: memory reclamation domain (default epoch-based; the
///    paper's Java original delegates this to the GC).
///  - PolicyT: shared-memory access policy (DirectPolicy for production,
///    sched::TracedPolicy for deterministic schedule exploration).
///  - LockT: node lock (default CAS test-and-set, as in the paper).
///  - RestartFromPrev: restart failed attempts from `prev` (paper's
///    line-24 optimisation) instead of from the head.
///  - ValueAware: use lockNextAtValue for removals and decide
///    insert-present before locking. Setting this false degrades the
///    algorithm to Lazy-style node-identity validation, quantifying the
///    contribution of the value-aware rule in isolation.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_CORE_VBLLIST_H
#define VBL_CORE_VBLLIST_H

#include "analysis/FlowView.h"
#include "core/SetConfig.h"
#include "core/ValueAwareTryLock.h"
#include "reclaim/EpochDomain.h"
#include "reclaim/NodePool.h"
#include "sync/Policy.h"
#include "sync/SpinLocks.h"

#include <atomic>
#include <tuple>
#include <vector>

namespace vbl {

template <class ReclaimT = reclaim::EpochDomain,
          class PolicyT = DirectPolicy, class LockT = TasLock,
          bool RestartFromPrev = true, bool ValueAware = true>
class VblList {
  /// NodeAlignBytes (core/SetConfig.h) picks between one-node-per-cache-
  /// line (64, the measured default: no false sharing between a locked
  /// node and its neighbours) and packed two-per-line (32).
  struct alignas(NodeAlignBytes) Node {
    explicit Node(SetKey Val) : Val(Val) {}

    const SetKey Val;
    std::atomic<Node *> Next{nullptr};
    std::atomic<bool> Deleted{false};
    ValueAwareTryLock<LockT> NodeLock;
  };

public:
  using Reclaim = ReclaimT;
  using Policy = PolicyT;

  /// Opaque handle to a list node that the caller guarantees is never
  /// removed (the head sentinel, or the dummy nodes a split-ordered
  /// hash overlay pins into the list). Such a handle stays valid for
  /// the lifetime of the list and may seed *From() operations.
  using BucketHandle = Node *;

  VblList() {
    Tail = reclaim::poolCreate<Node, Policy>(MaxSentinel);
    Head = reclaim::poolCreate<Node, Policy>(MinSentinel);
    Head->Next.store(Tail, std::memory_order_relaxed);
  }

  ~VblList() {
    // Reachable nodes are freed here; unlinked nodes were retired and
    // are freed (or deliberately leaked) by the domain's destructor.
    Node *Curr = Head;
    while (Curr) {
      Node *Next = Curr->Next.load(std::memory_order_relaxed);
      reclaim::poolDestroy<Policy>(Curr);
      Curr = Next;
    }
  }

  VblList(const VblList &) = delete;
  VblList &operator=(const VblList &) = delete;

  /// Adds \p Key; returns true iff it was absent. Never blocks — and
  /// never even locks — when the key is already present (ValueAware).
  bool insert(SetKey Key) { return insertFrom(Key, Head); }

  /// Removes \p Key; returns true iff it was present. Marks the node
  /// deleted, then unlinks it, both under the (prev, curr) locks.
  bool remove(SetKey Key) { return removeFrom(Key, Head); }

  /// Wait-free membership test. Reads only values and next pointers —
  /// no locks, no deletion marks (the "value-based" in VBL).
  bool contains(SetKey Key) const { return containsFrom(Key, Head); }

  //===--------------------------------------------------------------===//
  // Split-ordered hash substrate hooks. Identical protocols to the
  // head-anchored operations, but traversal starts at \p Start — a
  // handle to a never-removed node (bucket dummy) with key < Key.
  // Failed validations restart from the last known-good predecessor
  // exactly as before; only a deleted predecessor falls back to the
  // global head, which stays correct because the substrate list is
  // totally ordered.
  //===--------------------------------------------------------------===//

  /// Handle of the head sentinel: bucket 0 of a split-ordered overlay.
  BucketHandle headHandle() { return Head; }

  /// Key stored at a handle (sentinels return their sentinel key).
  static SetKey handleKey(BucketHandle Handle) { return Handle->Val; }

  bool insertFrom(SetKey Key, BucketHandle Start) {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    typename Reclaim::Guard G(Domain);
    Node *NewNode = nullptr;
    Node *Prev = Start;
    for (;;) {
      auto [P, Curr, Val] = traverse(Key, Prev);
      Prev = P;
      if (ValueAware && Val == Key) {
        // Present: decided from data alone, no lock was taken. This is
        // the schedule of Fig. 2 that the Lazy list rejects.
        reclaim::poolDestroy<Policy>(NewNode); // Never published.
        return false;
      }
      if (!NewNode) {
        NewNode = reclaim::poolCreate<Node, Policy>(Key);
        Policy::onNewNode(NewNode, Key);
      }
      Policy::write(NewNode->Next, Curr, std::memory_order_relaxed, NewNode,
                    MemField::Next);
      if (!lockNextAt(Prev, Curr)) {
        Policy::onRestart();
        continue;
      }
      if (!ValueAware && Val == Key) {
        // Ablation mode: Lazy-style decision under the lock.
        Prev->NodeLock.template release<Policy>(Prev);
        reclaim::poolDestroy<Policy>(NewNode);
        return false;
      }
      // Publish: the release store makes NewNode's fields visible to any
      // traversal that acquires Prev->Next.
      Policy::write(Prev->Next, NewNode, std::memory_order_release, Prev,
                    MemField::Next);
      Prev->NodeLock.template release<Policy>(Prev);
      return true;
    }
  }

  bool removeFrom(SetKey Key, BucketHandle Start) {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    typename Reclaim::Guard G(Domain);
    Node *Prev = Start;
    for (;;) {
      auto [P, Curr, Val] = traverse(Key, Prev);
      Prev = P;
      if (Val != Key)
        return false; // Absent: no lock taken.
      Node *Succ = Policy::read(Curr->Next, std::memory_order_acquire, Curr,
                                MemField::Next);
      // if constexpr (not a ternary) so the thread-safety analysis sees
      // a single unconditional try-acquire of Prev->NodeLock per
      // instantiation.
      bool PrevLocked;
      if constexpr (ValueAware)
        PrevLocked = lockNextAtValue(Prev, Key);
      else
        PrevLocked = lockNextAt(Prev, Curr);
      if (!PrevLocked) {
        Policy::onRestart();
        continue;
      }
      // Under Prev's lock Prev->Next is stable: every writer of a next
      // field holds the owning node's lock. (A validation re-read: the
      // LL-visible read of curr was done by the traversal.)
      Node *Victim = Policy::readCheck(Prev->Next, std::memory_order_acquire,
                                       Prev, MemField::Next);
      VBL_ASSERT(!ValueAware || Victim->Val == Key,
                 "lockNextAtValue validated the successor value");
      if (!ValueAware && Victim != Curr)
        vbl_unreachable("lockNextAt validated the successor identity");
      if (!lockNextAt(Victim, Succ)) {
        Prev->NodeLock.template release<Policy>(Prev);
        Policy::onRestart();
        continue;
      }
      // Logical deletion first (release: a traversal that reads the flag
      // must also see the list state that justified it), then unlink.
      Policy::write(Victim->Deleted, true, std::memory_order_release,
                    Victim, MemField::Marked);
      Policy::write(Prev->Next, Succ, std::memory_order_release, Prev,
                    MemField::Next);
      Victim->NodeLock.template release<Policy>(Victim);
      Prev->NodeLock.template release<Policy>(Prev);
      // Retire with the pool deleter: after the grace period the block
      // goes back to the freeing thread's local free list.
      reclaim::poolRetire<Policy>(Domain, Victim);
      return true;
    }
  }

  bool containsFrom(SetKey Key, const Node *Start) const {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    typename Reclaim::Guard G(Domain);
    const Node *Curr = Start;
    SetKey Val = Policy::readValue(Curr->Val, Curr);
    uint64_t Hops = 0; // Accumulated locally; one stats call at the end.
    while (Val < Key) {
      Curr = Policy::read(Curr->Next, std::memory_order_acquire, Curr,
                          MemField::Next);
      // Pull the successor's line while this node's key is compared.
      // Direct mode only: traced runs must not perform an extra
      // scheduler-invisible shared read.
      if constexpr (!Policy::Traced)
        VBL_PREFETCH(Curr->Next.load(std::memory_order_relaxed));
      Val = Policy::readValue(Curr->Val, Curr);
      ++Hops;
    }
    stats::noteTraversal(Hops);
    return Val == Key;
  }

  /// Get-or-insert for split-order dummy nodes: returns a handle to the
  /// unique node carrying \p Key, inserting it if absent. The caller
  /// promises the key is never removed from the set (dummy keys are not
  /// user-visible), which is what makes the returned handle stable.
  BucketHandle getOrInsertSentinelFrom(SetKey Key, BucketHandle Start) {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    typename Reclaim::Guard G(Domain);
    Node *NewNode = nullptr;
    Node *Prev = Start;
    for (;;) {
      auto [P, Curr, Val] = traverse(Key, Prev);
      Prev = P;
      if (Val == Key) {
        // A node carrying Key exists and — caller's contract — is never
        // removed, so its identity is stable and safe to hand out.
        reclaim::poolDestroy<Policy>(NewNode); // Never published.
        return Curr;
      }
      if (!NewNode) {
        NewNode = reclaim::poolCreate<Node, Policy>(Key);
        Policy::onNewNode(NewNode, Key);
      }
      Policy::write(NewNode->Next, Curr, std::memory_order_relaxed, NewNode,
                    MemField::Next);
      if (!lockNextAt(Prev, Curr)) {
        Policy::onRestart();
        continue;
      }
      Policy::write(Prev->Next, NewNode, std::memory_order_release, Prev,
                    MemField::Next);
      Prev->NodeLock.template release<Policy>(Prev);
      return NewNode;
    }
  }

  //===--------------------------------------------------------------===//
  // Test and tooling support (not part of the concurrent hot path).
  //===--------------------------------------------------------------===//

  /// Collects the user keys currently in the list. Quiescent use only.
  std::vector<SetKey> snapshot() const {
    std::vector<SetKey> Keys;
    for (const Node *Curr = Head->Next.load(std::memory_order_acquire);
         Curr->Val != MaxSentinel;
         Curr = Curr->Next.load(std::memory_order_acquire))
      Keys.push_back(Curr->Val);
    return Keys;
  }

  /// Structural invariants that must hold when no operation is running:
  /// strictly sorted, properly terminated, nothing marked, nothing
  /// locked. Returns false (and asserts in debug) on violation.
  bool checkInvariants() const {
    const Node *Curr = Head;
    if (Curr->Val != MinSentinel)
      return false;
    while (true) {
      if (Curr->Deleted.load(std::memory_order_acquire))
        return false;
      if (Curr->NodeLock.isLocked())
        return false;
      const Node *Next = Curr->Next.load(std::memory_order_acquire);
      if (Curr->Val == MaxSentinel)
        return Next == nullptr;
      if (!Next || Next->Val <= Curr->Val)
        return false;
      Curr = Next;
    }
  }

  /// Number of user keys; O(n), quiescent use only.
  size_t sizeSlow() const { return snapshot().size(); }

  Reclaim &reclaimDomain() { return Domain; }

  /// Identity of the head sentinel (schedule exporters key off it).
  const void *headNode() const { return Head; }

  /// Quiescent-only: the (node, key) chain from head to tail inclusive,
  /// used by the schedule checker to reconstruct list states.
  std::vector<std::pair<const void *, SetKey>> nodeChain() const {
    std::vector<std::pair<const void *, SetKey>> Chain;
    for (const Node *Curr = Head; Curr;
         Curr = Curr->Next.load(std::memory_order_relaxed))
      Chain.emplace_back(Curr, Curr->Val);
    return Chain;
  }

  /// Self-description for the flow-invariant oracle. The describe walk
  /// runs between scheduler steps (all workers parked at yields), uses
  /// scheduler-invisible relaxed loads, and must tolerate mid-operation
  /// states — hence the walk cap instead of structural assertions.
  analysis::FlowView flowView() {
    analysis::FlowView View;
    View.HasMark = true;          // Deleted flag.
    View.MarkedMayLinger = false; // remove() unlinks before returning.
    View.Describe = [this] {
      std::vector<analysis::FlowNodeDesc> Chain;
      for (const Node *Curr = Head;
           Curr && Chain.size() < analysis::FlowWalkCap;
           Curr = Curr->Next.load(std::memory_order_relaxed)) {
        analysis::FlowNodeDesc D;
        D.Node = Curr;
        D.Key = Curr->Val;
        D.Marked = Curr->Deleted.load(std::memory_order_relaxed);
        Chain.push_back(std::move(D));
      }
      return Chain;
    };
    return View;
  }

private:
  /// §3.2 waitfreeTraversal: returns (prev, curr, curr.val) with
  /// prev.val < Key <= curr.val. Starts from \p Start unless it has been
  /// logically deleted, in which case it falls back to the head. The
  /// value is returned so callers decide from the traversal's own read
  /// (LL's tval) instead of re-reading.
  std::tuple<Node *, Node *, SetKey> traverse(SetKey Key,
                                              Node *Start) const {
    Node *Prev = Start;
    if (!RestartFromPrev ||
        Policy::read(Prev->Deleted, std::memory_order_acquire, Prev,
                     MemField::Marked))
      Prev = Head;
    Node *Curr = Policy::read(Prev->Next, std::memory_order_acquire, Prev,
                              MemField::Next);
    SetKey Val = Policy::readValue(Curr->Val, Curr);
    uint64_t Hops = 0; // Accumulated locally; one stats call at the end.
    while (Val < Key) {
      Prev = Curr;
      Curr = Policy::read(Curr->Next, std::memory_order_acquire, Curr,
                          MemField::Next);
      // See containsFrom: overlap the successor fetch with the compare.
      if constexpr (!Policy::Traced)
        VBL_PREFETCH(Curr->Next.load(std::memory_order_relaxed));
      Val = Policy::readValue(Curr->Val, Curr);
      ++Hops;
    }
    stats::noteTraversal(Hops);
    return {Prev, Curr, Val};
  }

  /// §3.1 lockNextAt: lock \p Node, keep it only if Node is alive and
  /// still points at \p Expected.
  bool lockNextAt(Node *NodePtr, Node *Expected)
      VBL_TRY_ACQUIRE(true, NodePtr->NodeLock) {
    const bool Ok = NodePtr->NodeLock.template acquireIfValid<Policy>(
        NodePtr, [&] {
          if (Policy::readCheck(NodePtr->Deleted,
                                std::memory_order_acquire, NodePtr,
                                MemField::Marked))
            return false;
          return Policy::readCheck(NodePtr->Next,
                                   std::memory_order_acquire, NodePtr,
                                   MemField::Next) == Expected;
        });
    if (!Ok)
      stats::bump(stats::Counter::ListTrylockFailures);
    return Ok;
  }

  /// §3.1 lockNextAtValue: lock \p Node, keep it only if Node is alive
  /// and its successor still stores \p Val — the successor node itself
  /// may have been replaced, which is exactly the schedule the identity
  /// check of the Lazy list would reject.
  bool lockNextAtValue(Node *NodePtr, SetKey Val)
      VBL_TRY_ACQUIRE(true, NodePtr->NodeLock) {
    const bool Ok = NodePtr->NodeLock.template acquireIfValid<Policy>(
        NodePtr, [&] {
          if (Policy::readCheck(NodePtr->Deleted,
                                std::memory_order_acquire, NodePtr,
                                MemField::Marked))
            return false;
          Node *Succ = Policy::readCheck(NodePtr->Next,
                                         std::memory_order_acquire,
                                         NodePtr, MemField::Next);
          return Policy::readValueCheck(Succ->Val, Succ) == Val;
        });
    // The §3.1 value-based validation rejecting a schedule is the event
    // the whole observability layer exists to count.
    if (!Ok)
      stats::bump(stats::Counter::ListValueValidationAborts);
    return Ok;
  }

  Node *Head;
  Node *Tail;
  /// Mutable so the const, read-only contains() can enter a read-side
  /// critical section.
  mutable Reclaim Domain;
};

} // namespace vbl

#endif // VBL_CORE_VBLLIST_H
