//===- core/VblList.h - The concurrency-optimal Value-Based List ---------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The VBL list (Algorithm 2 of the paper): a linearizable,
/// deadlock-free, *concurrency-optimal* list-based set. Three ideas
/// compose:
///
///  1. Wait-free value-based traversals (shared with the Lazy list, but
///     without reading any deletion metadata), restarting from `prev`
///     rather than from the head after a failed validation.
///  2. Logical deletion before physical unlink (from Harris-Michael),
///     done under locks so each node is unlinked exactly once.
///  3. The value-aware try-lock (§3.1): updates validate the *data*
///     they are about to act on after acquiring the lock — and inserts
///     or removes that turn out to be read-only never lock at all.
///
/// Template knobs (used by the ablation benchmark):
///  - ReclaimT: memory reclamation domain (default epoch-based; the
///    paper's Java original delegates this to the GC).
///  - PolicyT: shared-memory access policy (DirectPolicy for production,
///    sched::TracedPolicy for deterministic schedule exploration).
///  - LockT: node lock (default CAS test-and-set, as in the paper).
///  - RestartFromPrev: restart failed attempts from `prev` (paper's
///    line-24 optimisation) instead of from the head.
///  - ValueAware: use lockNextAtValue for removals and decide
///    insert-present before locking. Setting this false degrades the
///    algorithm to Lazy-style node-identity validation, quantifying the
///    contribution of the value-aware rule in isolation.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_CORE_VBLLIST_H
#define VBL_CORE_VBLLIST_H

#include "analysis/FlowView.h"
#include "core/BatchOp.h"
#include "core/SetConfig.h"
#include "core/ValueAwareTryLock.h"
#include "reclaim/EpochDomain.h"
#include "reclaim/NodePool.h"
#include "reclaim/VbrDomain.h"
#include "sync/Policy.h"
#include "sync/SpinLocks.h"

#include <atomic>
#include <functional>
#include <new>
#include <tuple>
#include <type_traits>
#include <vector>

namespace vbl {

template <class ReclaimT = reclaim::EpochDomain,
          class PolicyT = DirectPolicy, class LockT = TasLock,
          bool RestartFromPrev = true, bool ValueAware = true>
class VblList {
  /// Version-based reclamation changes the read protocol: nodes are
  /// revived in place, so keys become atomic (a revival overwrites them
  /// under readers), every traversal hop re-validates the node's birth
  /// epoch against the operation's start version, and restarts always
  /// re-enter from a never-retired anchor.
  static constexpr bool Versioned = reclaim::IsVersionedDomain<ReclaimT>;

  /// NodeAlignBytes (core/SetConfig.h) picks between one-node-per-cache-
  /// line (64, the measured default: no false sharing between a locked
  /// node and its neighbours) and packed two-per-line (32).
  struct alignas(NodeAlignBytes) Node {
    explicit Node(SetKey Val) : Val(Val) {}

    /// Immutable for the node's lifetime under grace-period domains;
    /// atomic under VBR, where "lifetime" is one incarnation and a
    /// revival release-stores the next key over a stale reader's head.
    std::conditional_t<Versioned, std::atomic<SetKey>, const SetKey> Val;
    std::atomic<Node *> Next{nullptr};
    std::atomic<bool> Deleted{false};
    ValueAwareTryLock<LockT> NodeLock;
  };

public:
  using Reclaim = ReclaimT;
  using Policy = PolicyT;

  /// Opaque handle to a list node that the caller guarantees is never
  /// removed (the head sentinel, or the dummy nodes a split-ordered
  /// hash overlay pins into the list). Such a handle stays valid for
  /// the lifetime of the list and may seed *From() operations.
  using BucketHandle = Node *;

  VblList() {
    if constexpr (Versioned) {
      // Sentinels need epoch headers too: traversals birth-check every
      // node uniformly. A fresh domain's free lists are empty, so both
      // are first incarnations (birth 0, accepted by every version).
      Tail = makeNode(MaxSentinel);
      Head = makeNode(MinSentinel);
    } else {
      Tail = reclaim::poolCreate<Node, Policy>(MaxSentinel);
      Head = reclaim::poolCreate<Node, Policy>(MinSentinel);
    }
    Head->Next.store(Tail, std::memory_order_relaxed);
  }

  ~VblList() {
    // Reachable nodes are freed here; unlinked nodes were retired and
    // are freed (or deliberately leaked) by the domain's destructor.
    Node *Curr = Head;
    while (Curr) {
      Node *Next = Curr->Next.load(std::memory_order_relaxed);
      reclaim::domainDispose<Policy>(Domain, Curr);
      Curr = Next;
    }
  }

  VblList(const VblList &) = delete;
  VblList &operator=(const VblList &) = delete;

  /// Adds \p Key; returns true iff it was absent. Never blocks — and
  /// never even locks — when the key is already present (ValueAware).
  bool insert(SetKey Key) { return insertFrom(Key, Head); }

  /// Removes \p Key; returns true iff it was present. Marks the node
  /// deleted, then unlinks it, both under the (prev, curr) locks.
  bool remove(SetKey Key) { return removeFrom(Key, Head); }

  /// Wait-free membership test. Reads only values and next pointers —
  /// no locks, no deletion marks (the "value-based" in VBL).
  bool contains(SetKey Key) const { return containsFrom(Key, Head); }

  /// Wait-free range scan: appends the keys in [\p Lo, \p Hi] to
  /// \p Out, ascending, and returns how many were appended. The walk is
  /// the value-based traversal of contains() extended past the first
  /// in-range node — no locks, no deletion marks — so each collected
  /// key is justified by the same single value read that linearizes a
  /// contains(key)==true at that hop, and each skipped key by the
  /// ordered pair of reads that straddles it: per-key linearizable over
  /// the scan's interval. Under VBR every hop is birth-certified and a
  /// reject restarts the whole collect from the head (lock-free).
  size_t rangeQuery(SetKey Lo, SetKey Hi, std::vector<SetKey> &Out) {
    VBL_ASSERT(isUserKey(Lo) && isUserKey(Hi),
               "sentinel keys are reserved");
    if (Lo > Hi)
      return 0;
    typename Reclaim::Guard G(Domain);
    const size_t Entry = Out.size();
    if constexpr (Versioned) {
      for (;;) {
        Out.resize(Entry); // Discard any partial attempt.
        const Node *Curr = Policy::read(Head->Next,
                                        std::memory_order_acquire, Head,
                                        MemField::Next);
        uint64_t Hops = 0;
        bool Restart = false;
        for (;;) {
          const SetKey Val = readVal(Curr);
          const Node *Succ = Policy::read(Curr->Next,
                                          std::memory_order_acquire, Curr,
                                          MemField::Next);
          if (!Domain.validAt(Curr, G.version())) {
            Restart = true; // Recycled under us: redo the collect.
            break;
          }
          if (Val > Hi)
            break;
          if (Val >= Lo)
            Out.push_back(Val);
          Curr = Succ;
          ++Hops;
        }
        stats::noteTraversal(Hops);
        if (!Restart)
          return Out.size() - Entry;
        G.refresh();
        Policy::onRestart();
      }
    } else {
      const Node *Curr = Head;
      SetKey Val = Policy::readValue(Curr->Val, Curr);
      uint64_t Hops = 0;
      while (Val <= Hi) {
        if (Val >= Lo)
          Out.push_back(Val);
        Curr = Policy::read(Curr->Next, std::memory_order_acquire, Curr,
                            MemField::Next);
        if constexpr (!Policy::Traced)
          VBL_PREFETCH(Curr->Next.load(std::memory_order_relaxed));
        Val = Policy::readValue(Curr->Val, Curr);
        ++Hops;
      }
      stats::noteTraversal(Hops);
      return Out.size() - Entry;
    }
  }

  //===--------------------------------------------------------------===//
  // Split-ordered hash substrate hooks. Identical protocols to the
  // head-anchored operations, but traversal starts at \p Start — a
  // handle to a never-removed node (bucket dummy) with key < Key.
  // Failed validations restart from the last known-good predecessor
  // exactly as before; only a deleted predecessor falls back to the
  // global head, which stays correct because the substrate list is
  // totally ordered.
  //===--------------------------------------------------------------===//

  /// Handle of the head sentinel: bucket 0 of a split-ordered overlay.
  BucketHandle headHandle() { return Head; }

  /// Key stored at a handle (sentinels return their sentinel key).
  static SetKey handleKey(BucketHandle Handle) { return rawVal(Handle); }

  bool insertFrom(SetKey Key, BucketHandle Start) {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    typename Reclaim::Guard G(Domain);
    Node *Anchor = Start;
    return insertCore(Key, Anchor, G);
  }

  bool removeFrom(SetKey Key, BucketHandle Start) {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    typename Reclaim::Guard G(Domain);
    Node *Anchor = Start;
    return removeCore(Key, Anchor, G);
  }

  bool containsFrom(SetKey Key, const Node *Start) const {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    typename Reclaim::Guard G(Domain);
    if constexpr (Versioned) {
      // Per hop: read the node's fields, then certify its birth epoch
      // against the start version. A reject means the memory under us
      // was recycled mid-walk — refresh the version and re-enter from
      // the never-retired anchor. Degrades wait-free to lock-free
      // (every reject is caused by another thread's completed reuse).
      for (;;) {
        const Node *Curr = Policy::read(Start->Next,
                                        std::memory_order_acquire, Start,
                                        MemField::Next);
        uint64_t Hops = 0;
        for (;;) {
          const SetKey Val = readVal(Curr);
          const Node *Succ = Policy::read(Curr->Next,
                                          std::memory_order_acquire, Curr,
                                          MemField::Next);
          if (!Domain.validAt(Curr, G.version()))
            break; // Recycled under us: restart.
          if (Val >= Key) {
            stats::noteTraversal(Hops);
            return Val == Key;
          }
          Curr = Succ;
          ++Hops;
        }
        stats::noteTraversal(Hops);
        G.refresh();
        Policy::onRestart();
      }
    } else {
      const Node *Curr = Start;
      SetKey Val = Policy::readValue(Curr->Val, Curr);
      uint64_t Hops = 0; // Accumulated locally; one stats call at the end.
      while (Val < Key) {
        Curr = Policy::read(Curr->Next, std::memory_order_acquire, Curr,
                            MemField::Next);
        // Pull the successor's line while this node's key is compared.
        // Direct mode only: traced runs must not perform an extra
        // scheduler-invisible shared read.
        if constexpr (!Policy::Traced)
          VBL_PREFETCH(Curr->Next.load(std::memory_order_relaxed));
        Val = Policy::readValue(Curr->Val, Curr);
        ++Hops;
      }
      stats::noteTraversal(Hops);
      return Val == Key;
    }
  }

  /// Get-or-insert for split-order dummy nodes: returns a handle to the
  /// unique node carrying \p Key, inserting it if absent. The caller
  /// promises the key is never removed from the set (dummy keys are not
  /// user-visible), which is what makes the returned handle stable.
  BucketHandle getOrInsertSentinelFrom(SetKey Key, BucketHandle Start) {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    typename Reclaim::Guard G(Domain);
    Node *NewNode = nullptr;
    Node *From = Start;
    for (;;) {
      auto [Prev, Curr, Val] = traverse(Key, From, G);
      if constexpr (!Versioned)
        From = Prev; // Restart-from-prev; VBR always re-enters at Start.
      if (Val == Key) {
        // A node carrying Key exists and — caller's contract — is never
        // removed, so its identity is stable and safe to hand out.
        reclaim::domainAbandon<Policy>(Domain, NewNode); // Never published.
        return Curr;
      }
      if (!NewNode)
        NewNode = makeNode(Key);
      Policy::write(NewNode->Next, Curr, PrePublishOrder, NewNode,
                    MemField::Next);
      if (!lockNextAt(Prev, Curr, G)) {
        Policy::onRestart();
        continue;
      }
      Policy::write(Prev->Next, NewNode, std::memory_order_release, Prev,
                    MemField::Next);
      Prev->NodeLock.template release<Policy>(Prev);
      return NewNode;
    }
  }

  /// Applies \p N ops, given as pointers in ascending-key order (stable
  /// for equal keys — SetAdapter sorts an index view), under ONE
  /// reclaim guard, re-entering each walk from the previous op's final
  /// predecessor instead of the head. B sorted ops over an n-node list
  /// cost roughly one n-hop pass plus B validations instead of B full
  /// traversals — the service layer's batching win. Safe under full
  /// concurrency: the carried anchor is exactly the restart-from-prev
  /// anchor the per-op protocol already tolerates (traverse falls back
  /// to the head when the anchor is deleted), and the outer guard keeps
  /// the anchor's memory reclaim-safe across ops (EBR guards nest and
  /// pin the epoch). VBR re-enters every op at the head — an op-local
  /// anchor may be recycled into an unpublished node — keeping only the
  /// shared-guard amortization.
  void applyBatchSorted(BatchOp *const *Ops, size_t N) {
    typename Reclaim::Guard G(Domain);
    Node *Anchor = Head;
    SetKey LastKey = MinSentinel;
    for (size_t I = 0; I != N; ++I) {
      BatchOp &O = *Ops[I];
      VBL_ASSERT(isUserKey(O.Key), "sentinel keys are reserved");
      // Same-key ops must arrive in submission order — the per-key FIFO
      // contract. SetAdapter sorts by (Key, submission index), which
      // puts equal keys in ascending array-slot order; pin that here so
      // a caller (or future sort change) that hands equal keys out of
      // order trips the assertion instead of silently reordering an
      // insert(k);remove(k) pair.
      VBL_ASSERT(I == 0 || Ops[I - 1]->Key < O.Key ||
                     (Ops[I - 1]->Key == O.Key &&
                      std::less<const BatchOp *>()(Ops[I - 1], Ops[I])),
                 "same-key batch ops must stay in submission order");
      if (Versioned || O.Key < LastKey)
        Anchor = Head; // VBR head-only anchors; defensive unsorted reset.
      LastKey = O.Key;
      switch (O.Op) {
      case SetOp::Insert:
        O.Result = insertCore(O.Key, Anchor, G);
        break;
      case SetOp::Remove:
        O.Result = removeCore(O.Key, Anchor, G);
        break;
      case SetOp::Contains:
        O.Result = containsCore(O.Key, Anchor, G);
        break;
      case SetOp::RangeQuery: {
        // Scans walk from the head on their own nested guard; the
        // carried anchor (prev.val < LastKey <= every later key) is
        // left untouched for the following point ops.
        std::vector<SetKey> Discard;
        std::vector<SetKey> &Sink = O.Keys ? *O.Keys : Discard;
        O.Result = rangeQuery(O.Key, O.KeyHi, Sink) != 0;
        break;
      }
      }
    }
  }

  //===--------------------------------------------------------------===//
  // Test and tooling support (not part of the concurrent hot path).
  //===--------------------------------------------------------------===//

  /// Collects the user keys currently in the list. Quiescent use only.
  std::vector<SetKey> snapshot() const {
    std::vector<SetKey> Keys;
    for (const Node *Curr = Head->Next.load(std::memory_order_acquire);
         rawVal(Curr) != MaxSentinel;
         Curr = Curr->Next.load(std::memory_order_acquire))
      Keys.push_back(rawVal(Curr));
    return Keys;
  }

  /// Structural invariants that must hold when no operation is running:
  /// strictly sorted, properly terminated, nothing marked, nothing
  /// locked. Returns false (and asserts in debug) on violation.
  bool checkInvariants() const {
    const Node *Curr = Head;
    if (rawVal(Curr) != MinSentinel)
      return false;
    while (true) {
      if (Curr->Deleted.load(std::memory_order_acquire))
        return false;
      if (Curr->NodeLock.isLocked())
        return false;
      const Node *Next = Curr->Next.load(std::memory_order_acquire);
      if (rawVal(Curr) == MaxSentinel)
        return Next == nullptr;
      if (!Next || rawVal(Next) <= rawVal(Curr))
        return false;
      Curr = Next;
    }
  }

  /// Number of user keys; O(n), quiescent use only.
  size_t sizeSlow() const { return snapshot().size(); }

  Reclaim &reclaimDomain() { return Domain; }

  /// Identity of the head sentinel (schedule exporters key off it).
  const void *headNode() const { return Head; }

  /// Quiescent-only: the (node, key) chain from head to tail inclusive,
  /// used by the schedule checker to reconstruct list states.
  std::vector<std::pair<const void *, SetKey>> nodeChain() const {
    std::vector<std::pair<const void *, SetKey>> Chain;
    for (const Node *Curr = Head; Curr;
         Curr = Curr->Next.load(std::memory_order_relaxed))
      Chain.emplace_back(Curr, rawVal(Curr));
    return Chain;
  }

  /// Self-description for the flow-invariant oracle. The describe walk
  /// runs between scheduler steps (all workers parked at yields), uses
  /// scheduler-invisible relaxed loads, and must tolerate mid-operation
  /// states — hence the walk cap instead of structural assertions.
  analysis::FlowView flowView() {
    analysis::FlowView View;
    View.HasMark = true;          // Deleted flag.
    View.MarkedMayLinger = false; // remove() unlinks before returning.
    View.Describe = [this] {
      std::vector<analysis::FlowNodeDesc> Chain;
      for (const Node *Curr = Head;
           Curr && Chain.size() < analysis::FlowWalkCap;
           Curr = Curr->Next.load(std::memory_order_relaxed)) {
        analysis::FlowNodeDesc D;
        D.Node = Curr;
        D.Key = rawVal(Curr);
        D.Marked = Curr->Deleted.load(std::memory_order_relaxed);
        Chain.push_back(std::move(D));
      }
      return Chain;
    };
    return View;
  }

private:
  /// Stores into a not-yet-published node. Plain relaxed for the
  /// grace-period domains; under VBR a revived block may still be read
  /// by a straggler from its previous incarnation, so the store must be
  /// a release to pair with the straggler's acquire.
  static constexpr std::memory_order PrePublishOrder =
      Versioned ? std::memory_order_release : std::memory_order_relaxed;

  /// Traversal/validation read of a node's key. VBR keys are atomic
  /// (revival overwrites them); acquire so the birth check that follows
  /// certifies this read (revival stamps birth before the key).
  static SetKey readVal(const Node *N) {
    if constexpr (Versioned)
      return Policy::read(N->Val, std::memory_order_acquire, N,
                          MemField::Val);
    else
      return Policy::readValue(N->Val, N);
  }

  /// Scheduler-invisible key read for quiescent walks (snapshot,
  /// invariants, flow descriptions).
  static SetKey rawVal(const Node *N) {
    if constexpr (Versioned)
      return N->Val.load(std::memory_order_relaxed);
    else
      return N->Val;
  }

  /// Node allocation. Grace-period domains: pooled placement-new. VBR:
  /// the domain may hand back a retired block whose previous
  /// incarnation is still alive under a stale reader — no constructor
  /// runs; the key and mark are release-stored over the old object,
  /// ordered after the domain's birth stamp so any reader that sees the
  /// new values also sees (and rejects on) the new birth epoch. The
  /// lock is untouched: every retire path releases it first, so a
  /// revived block's lock is free.
  Node *makeNode(SetKey Key) {
    if constexpr (Versioned) {
      bool Fresh = false;
      void *Mem = Domain.template allocBlockFor<Node>(Fresh);
      if (Fresh) {
        Node *N = ::new (Mem) Node(Key);
        Policy::onNewNode(N, Key);
        return N;
      }
      Node *N = std::launder(static_cast<Node *>(Mem));
      Policy::write(N->Val, Key, std::memory_order_release, N,
                    MemField::Val);
      Policy::write(N->Deleted, false, std::memory_order_release, N,
                    MemField::Marked);
      return N;
    } else {
      Node *N = reclaim::poolCreate<Node, Policy>(Key);
      Policy::onNewNode(N, Key);
      return N;
    }
  }

  //===--------------------------------------------------------------===//
  // Operation cores: the per-op protocol loops with the reclaim guard
  // and the traversal anchor hoisted out, shared by the head-/bucket-
  // anchored entry points and the sorted-batch path. \p Anchor enters
  // as the walk's start node and leaves as the final traversal's
  // predecessor (prev.val < Key), which a sorted-batch caller reuses as
  // the next op's start under the same guard. Under VBR the out-value
  // must NOT be reused as an anchor (restart-from-prev is disabled);
  // applyBatchSorted re-enters at the head instead.
  //===--------------------------------------------------------------===//

  bool insertCore(SetKey Key, Node *&Anchor, typename Reclaim::Guard &G) {
    Node *NewNode = nullptr;
    Node *From = Anchor;
    for (;;) {
      auto [Prev, Curr, Val] = traverse(Key, From, G);
      if constexpr (!Versioned)
        From = Prev; // Restart-from-prev; VBR always re-enters at Start.
      Anchor = Prev;
      if (ValueAware && Val == Key) {
        // Present: decided from data alone, no lock was taken. This is
        // the schedule of Fig. 2 that the Lazy list rejects.
        reclaim::domainAbandon<Policy>(Domain, NewNode); // Never published.
        return false;
      }
      if (!NewNode)
        NewNode = makeNode(Key);
      // Pre-publication, but under VBR a stale reader may already hold
      // the revived block — release so its acquire of Next is ordered.
      Policy::write(NewNode->Next, Curr, PrePublishOrder, NewNode,
                    MemField::Next);
      if (!lockNextAt(Prev, Curr, G)) {
        Policy::onRestart();
        continue;
      }
      if (!ValueAware && Val == Key) {
        // Ablation mode: Lazy-style decision under the lock.
        Prev->NodeLock.template release<Policy>(Prev);
        reclaim::domainAbandon<Policy>(Domain, NewNode);
        return false;
      }
      // Publish: the release store makes NewNode's fields visible to any
      // traversal that acquires Prev->Next.
      Policy::write(Prev->Next, NewNode, std::memory_order_release, Prev,
                    MemField::Next);
      Prev->NodeLock.template release<Policy>(Prev);
      return true;
    }
  }

  bool removeCore(SetKey Key, Node *&Anchor, typename Reclaim::Guard &G) {
    Node *From = Anchor;
    for (;;) {
      auto [Prev, Curr, Val] = traverse(Key, From, G);
      if constexpr (!Versioned)
        From = Prev; // Restart-from-prev; VBR always re-enters at Start.
      Anchor = Prev;
      if (Val != Key)
        return false; // Absent: no lock taken.
      Node *Succ = Policy::read(Curr->Next, std::memory_order_acquire, Curr,
                                MemField::Next);
      // if constexpr (not a ternary) so the thread-safety analysis sees
      // a single unconditional try-acquire of Prev->NodeLock per
      // instantiation.
      bool PrevLocked;
      if constexpr (ValueAware)
        PrevLocked = lockNextAtValue(Prev, Key, G);
      else
        PrevLocked = lockNextAt(Prev, Curr, G);
      if (!PrevLocked) {
        Policy::onRestart();
        continue;
      }
      // Under Prev's lock Prev->Next is stable: every writer of a next
      // field holds the owning node's lock. (A validation re-read: the
      // LL-visible read of curr was done by the traversal.)
      Node *Victim = Policy::readCheck(Prev->Next, std::memory_order_acquire,
                                       Prev, MemField::Next);
      VBL_ASSERT(!ValueAware || rawVal(Victim) == Key,
                 "lockNextAtValue validated the successor value");
      if (!ValueAware && Victim != Curr)
        vbl_unreachable("lockNextAt validated the successor identity");
      if (!lockNextAt(Victim, Succ, G)) {
        Prev->NodeLock.template release<Policy>(Prev);
        Policy::onRestart();
        continue;
      }
      // Logical deletion first (release: a traversal that reads the flag
      // must also see the list state that justified it), then unlink.
      Policy::write(Victim->Deleted, true, std::memory_order_release,
                    Victim, MemField::Marked);
      Policy::write(Prev->Next, Succ, std::memory_order_release, Prev,
                    MemField::Next);
      Victim->NodeLock.template release<Policy>(Victim);
      Prev->NodeLock.template release<Policy>(Prev);
      // Grace-period domains: pool deleter after the grace period. VBR:
      // stamp the retire epoch and recycle immediately (the lock is
      // released first — revival never touches lock state).
      reclaim::domainRetire<Policy>(Domain, Victim);
      return true;
    }
  }

  /// Batch membership test. Unlike containsFrom's specialized walk this
  /// rides traverse() so it can hand the predecessor back as the next
  /// op's anchor; the read protocol is the same wait-free value walk.
  bool containsCore(SetKey Key, Node *&Anchor, typename Reclaim::Guard &G) {
    auto [Prev, Curr, Val] = traverse(Key, Anchor, G);
    (void)Curr;
    Anchor = Prev;
    return Val == Key;
  }

  /// §3.2 waitfreeTraversal: returns (prev, curr, curr.val) with
  /// prev.val < Key <= curr.val. Starts from \p Start unless it has been
  /// logically deleted, in which case it falls back to the head. The
  /// value is returned so callers decide from the traversal's own read
  /// (LL's tval) instead of re-reading.
  ///
  /// VBR mode: \p Start must be a never-retired anchor (head or bucket
  /// dummy — restart-from-prev is disabled because a once-certified
  /// prev may be recycled into an in-flight, not-yet-published node
  /// that no birth check against a refreshed version can reject). Each
  /// hop reads curr's key and next, then certifies curr's birth against
  /// the guard's version; a reject refreshes the version and re-walks.
  /// Every node the walk advances over was therefore retired (if at
  /// all) no earlier than the start version, which is what makes the
  /// frozen next pointers of deleted-but-recycled-later nodes safe to
  /// traverse.
  std::tuple<Node *, Node *, SetKey>
  traverse(SetKey Key, Node *Start, typename Reclaim::Guard &G) const {
    if constexpr (Versioned) {
      for (;;) {
        Node *Prev = Start;
        Node *Curr = Policy::read(Prev->Next, std::memory_order_acquire,
                                  Prev, MemField::Next);
        uint64_t Hops = 0;
        for (;;) {
          const SetKey Val = readVal(Curr);
          Node *Succ = Policy::read(Curr->Next, std::memory_order_acquire,
                                    Curr, MemField::Next);
          if (!Domain.validAt(Curr, G.version()))
            break; // Recycled under us: restart from the anchor.
          if (Val >= Key) {
            stats::noteTraversal(Hops);
            return {Prev, Curr, Val};
          }
          Prev = Curr;
          Curr = Succ;
          ++Hops;
        }
        stats::noteTraversal(Hops);
        G.refresh();
        Policy::onRestart();
      }
    } else {
      Node *Prev = Start;
      if (!RestartFromPrev ||
          Policy::read(Prev->Deleted, std::memory_order_acquire, Prev,
                       MemField::Marked))
        Prev = Head;
      Node *Curr = Policy::read(Prev->Next, std::memory_order_acquire, Prev,
                                MemField::Next);
      SetKey Val = Policy::readValue(Curr->Val, Curr);
      uint64_t Hops = 0; // Accumulated locally; one stats call at the end.
      while (Val < Key) {
        Prev = Curr;
        Curr = Policy::read(Curr->Next, std::memory_order_acquire, Curr,
                            MemField::Next);
        // See containsFrom: overlap the successor fetch with the compare.
        if constexpr (!Policy::Traced)
          VBL_PREFETCH(Curr->Next.load(std::memory_order_relaxed));
        Val = Policy::readValue(Curr->Val, Curr);
        ++Hops;
      }
      stats::noteTraversal(Hops);
      return {Prev, Curr, Val};
    }
  }

  /// §3.1 lockNextAt: lock \p Node, keep it only if Node is alive and
  /// still points at \p Expected.
  ///
  /// VBR adds two birth checks, validated *after* the field reads: one
  /// on NodePtr (so the alive + successor facts belong to the traversal-
  /// certified incarnation — a block revived mid-validation shows its
  /// new birth through the same release chain that revealed the revived
  /// field), and one on Expected (the traversal's prev.val < Key <=
  /// curr.val placement was read from Expected's old incarnation; a
  /// recycled Expected republished at the same address could carry any
  /// key).
  bool lockNextAt(Node *NodePtr, Node *Expected, typename Reclaim::Guard &G)
      VBL_TRY_ACQUIRE(true, NodePtr->NodeLock) {
    const bool Ok = NodePtr->NodeLock.template acquireIfValid<Policy>(
        NodePtr, [&] {
          if (Policy::readCheck(NodePtr->Deleted,
                                std::memory_order_acquire, NodePtr,
                                MemField::Marked))
            return false;
          if (Policy::readCheck(NodePtr->Next, std::memory_order_acquire,
                                NodePtr, MemField::Next) != Expected)
            return false;
          if constexpr (Versioned) {
            if (!Domain.validAt(NodePtr, G.version()) ||
                !Domain.validAt(Expected, G.version()))
              return false;
          }
          return true;
        });
    if (!Ok)
      stats::bump(stats::Counter::ListTrylockFailures);
    return Ok;
  }

  /// §3.1 lockNextAtValue: lock \p Node, keep it only if Node is alive
  /// and its successor still stores \p Val — the successor node itself
  /// may have been replaced, which is exactly the schedule the identity
  /// check of the Lazy list would reject.
  ///
  /// VBR adds a birth check on NodePtr only: once NodePtr is certified
  /// alive in a <= version incarnation while we hold its lock, its
  /// successor read is current, so the successor is a live node and the
  /// value re-read under the lock is self-justifying (any live node
  /// storing Val *is* the set's Val node). Without the NodePtr check, a
  /// block recycled into an in-flight insert could pass the alive +
  /// value tests on its not-yet-published state and the unlink below
  /// would corrupt both lists' incarnations.
  bool lockNextAtValue(Node *NodePtr, SetKey Val,
                       typename Reclaim::Guard &G)
      VBL_TRY_ACQUIRE(true, NodePtr->NodeLock) {
    const bool Ok = NodePtr->NodeLock.template acquireIfValid<Policy>(
        NodePtr, [&] {
          if (Policy::readCheck(NodePtr->Deleted,
                                std::memory_order_acquire, NodePtr,
                                MemField::Marked))
            return false;
          Node *Succ = Policy::readCheck(NodePtr->Next,
                                         std::memory_order_acquire,
                                         NodePtr, MemField::Next);
          if constexpr (Versioned) {
            if (!Domain.validAt(NodePtr, G.version()))
              return false;
            return Policy::readCheck(Succ->Val, std::memory_order_acquire,
                                     Succ, MemField::Val) == Val;
          } else {
            return Policy::readValueCheck(Succ->Val, Succ) == Val;
          }
        });
    // The §3.1 value-based validation rejecting a schedule is the event
    // the whole observability layer exists to count.
    if (!Ok)
      stats::bump(stats::Counter::ListValueValidationAborts);
    return Ok;
  }

  Node *Head;
  Node *Tail;
  /// Mutable so the const, read-only contains() can enter a read-side
  /// critical section.
  mutable Reclaim Domain;
};

} // namespace vbl

#endif // VBL_CORE_VBLLIST_H
