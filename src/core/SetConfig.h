//===- core/SetConfig.h - Key type and sentinels for list-based sets -----===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The set type of the paper stores integers; every list in this repo
/// stores SetKey with the two reserved sentinel values the sequential
/// specification LL uses for head (-inf) and tail (+inf).
///
//===----------------------------------------------------------------------===//

#ifndef VBL_CORE_SETCONFIG_H
#define VBL_CORE_SETCONFIG_H

#include "support/Compiler.h"

#include <cstdint>
#include <limits>

/// Node alignment knob. 64 (one node per cache line) avoids false
/// sharing between a node's lock/mark word and its neighbour; 32 packs
/// two nodes per line, halving footprint and doubling the hit rate of a
/// sequential traversal at the cost of cross-node interference under
/// write contention. The default follows the measurement recorded in
/// EXPERIMENTS.md ("Memory subsystem"): at the paper's contended small
/// ranges the two layouts are within noise single-threaded, and 64 wins
/// once writers contend, so the cache-line layout is the default.
/// Override with -DVBL_NODE_ALIGN=32 to get the packed layout.
#ifndef VBL_NODE_ALIGN
#define VBL_NODE_ALIGN 64
#endif

namespace vbl {

/// Alignment applied to every list node type (`alignas(NodeAlignBytes)`).
inline constexpr unsigned NodeAlignBytes = VBL_NODE_ALIGN;
static_assert(NodeAlignBytes >= alignof(std::int64_t) &&
                  (NodeAlignBytes & (NodeAlignBytes - 1)) == 0,
              "VBL_NODE_ALIGN must be a power of two >= 8");
static_assert(NodeAlignBytes <= CacheLineBytes,
              "VBL_NODE_ALIGN above a cache line buys nothing and breaks "
              "the node pool's slab carving");

/// Element type of the integer set. 64-bit so benchmark key ranges and
/// hash-expanded test keys never collide with the sentinels.
using SetKey = int64_t;

/// head.val: smaller than every user key.
inline constexpr SetKey MinSentinel = std::numeric_limits<SetKey>::min();
/// tail.val: greater than every user key.
inline constexpr SetKey MaxSentinel = std::numeric_limits<SetKey>::max();

/// User keys live strictly between the sentinels.
inline constexpr bool isUserKey(SetKey Key) {
  return Key > MinSentinel && Key < MaxSentinel;
}

/// Key domain of the split-ordered hash sets (src/maps). Bit-reversed
/// split-order keys must fit the SetKey space alongside the per-bucket
/// dummy keys and the two sentinels, which caps user keys at 62 bits;
/// see maps/SplitOrder.h for the arithmetic. Lists accept any isUserKey
/// value; the hash overlays accept only isHashKey values.
inline constexpr int HashKeyBits = 62;
/// Exclusive upper bound of the hash-set key domain.
inline constexpr SetKey MaxHashKey = SetKey(1) << HashKeyBits;

inline constexpr bool isHashKey(SetKey Key) {
  return Key >= 0 && Key < MaxHashKey;
}

} // namespace vbl

#endif // VBL_CORE_SETCONFIG_H
