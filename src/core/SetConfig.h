//===- core/SetConfig.h - Key type and sentinels for list-based sets -----===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The set type of the paper stores integers; every list in this repo
/// stores SetKey with the two reserved sentinel values the sequential
/// specification LL uses for head (-inf) and tail (+inf).
///
//===----------------------------------------------------------------------===//

#ifndef VBL_CORE_SETCONFIG_H
#define VBL_CORE_SETCONFIG_H

#include "support/Compiler.h"

#include <cstddef>
#include <cstdint>
#include <limits>

/// Node alignment knob. 64 (one node per cache line) avoids false
/// sharing between a node's lock/mark word and its neighbour; 32 packs
/// two nodes per line, halving footprint and doubling the hit rate of a
/// sequential traversal at the cost of cross-node interference under
/// write contention. The default follows the measurement recorded in
/// EXPERIMENTS.md ("Memory subsystem"): at the paper's contended small
/// ranges the two layouts are within noise single-threaded, and 64 wins
/// once writers contend, so the cache-line layout is the default.
/// Override with -DVBL_NODE_ALIGN=32 to get the packed layout.
#ifndef VBL_NODE_ALIGN
#define VBL_NODE_ALIGN 64
#endif

namespace vbl {

/// Alignment applied to every list node type (`alignas(NodeAlignBytes)`).
inline constexpr unsigned NodeAlignBytes = VBL_NODE_ALIGN;
static_assert(NodeAlignBytes >= alignof(std::int64_t) &&
                  (NodeAlignBytes & (NodeAlignBytes - 1)) == 0,
              "VBL_NODE_ALIGN must be a power of two >= 8");
static_assert(NodeAlignBytes <= CacheLineBytes,
              "VBL_NODE_ALIGN above a cache line buys nothing and breaks "
              "the node pool's slab carving");

/// Element type of the integer set. 64-bit so benchmark key ranges and
/// hash-expanded test keys never collide with the sentinels.
using SetKey = int64_t;

/// head.val: smaller than every user key.
inline constexpr SetKey MinSentinel = std::numeric_limits<SetKey>::min();
/// tail.val: greater than every user key.
inline constexpr SetKey MaxSentinel = std::numeric_limits<SetKey>::max();

/// User keys live strictly between the sentinels.
inline constexpr bool isUserKey(SetKey Key) {
  return Key > MinSentinel && Key < MaxSentinel;
}

/// Key domain of the split-ordered hash sets (src/maps). Bit-reversed
/// split-order keys must fit the SetKey space alongside the per-bucket
/// dummy keys and the two sentinels, which caps user keys at 62 bits;
/// see maps/SplitOrder.h for the arithmetic. Lists accept any isUserKey
/// value; the hash overlays accept only isHashKey values.
inline constexpr int HashKeyBits = 62;
/// Exclusive upper bound of the hash-set key domain.
inline constexpr SetKey MaxHashKey = SetKey(1) << HashKeyBits;

inline constexpr bool isHashKey(SetKey Key) {
  return Key >= 0 && Key < MaxHashKey;
}

/// Construction-time shape of a split-ordered hash set's bucket index
/// and the resize policy that drives the grace-period table swap
/// (maps/SplitOrderedHashSet.h). Every size is a bucket COUNT and must
/// be a power of two — the index is addressed by masking the mixed
/// hash, so a non-pow2 count silently drops buckets. Historically the
/// constructor rounded bad values up; that silent path is gone:
/// validateHashSetConfig names the exact defect and construction
/// refuses misconfigured tables (see HashSetConfigError).
struct HashSetConfig {
  /// Index capacity at construction (pow2, in [MinBuckets, MaxBuckets]).
  size_t InitialBuckets = 16;
  /// Grow high watermark: double the index once
  /// count > capacity * GrowLoadFactor (mean chain length per bucket).
  size_t GrowLoadFactor = 4;
  /// Hard ceiling the index never grows past (pow2).
  size_t MaxBuckets = size_t(1) << 22;
  /// Floor the index never shrinks below (pow2). Also the "low
  /// watermark" the churn tests expect the table to return to.
  size_t MinBuckets = 1;
  /// Hysteresis between the grow and shrink thresholds: halve the index
  /// only once count * ShrinkDivisor < capacity * GrowLoadFactor, i.e.
  /// occupancy must fall to 1/ShrinkDivisor of the grow trigger before
  /// the table gives memory back. >= 4 guarantees a freshly halved
  /// table is not immediately grow-eligible again (no thrash at a
  /// boundary count). Ignored unless EnableShrink.
  size_t ShrinkDivisor = 4;
  /// Master switch for shrinking. Off by default so the classic
  /// grow-only behaviour (and its perf profile) is what you get unless
  /// you opt in; the `so-hash-*-resize` registry entries opt in.
  bool EnableShrink = false;
};

/// Named validation verdicts for HashSetConfig — the registry and the
/// hash-set constructor refuse misconfiguration with one of these
/// instead of silently rounding (see hashSetConfigErrorName).
enum class HashSetConfigError : uint8_t {
  None,                 ///< Config is well-formed.
  InitialNotPowerOfTwo, ///< InitialBuckets is zero or not a power of two.
  MinNotPowerOfTwo,     ///< MinBuckets is zero or not a power of two.
  MaxNotPowerOfTwo,     ///< MaxBuckets is zero or not a power of two.
  BoundsInverted,       ///< Not MinBuckets <= InitialBuckets <= MaxBuckets.
  ZeroLoadFactor,       ///< GrowLoadFactor == 0 (grows on every insert).
  ShrinkDivisorTooSmall,///< EnableShrink with ShrinkDivisor < 2 — no
                        ///  hysteresis; grow and shrink thresholds meet
                        ///  and the table thrashes at the boundary.
};

/// Stable diagnostic name for \p E ("InitialNotPowerOfTwo", ...).
inline constexpr const char *hashSetConfigErrorName(HashSetConfigError E) {
  switch (E) {
  case HashSetConfigError::None:
    return "None";
  case HashSetConfigError::InitialNotPowerOfTwo:
    return "InitialNotPowerOfTwo";
  case HashSetConfigError::MinNotPowerOfTwo:
    return "MinNotPowerOfTwo";
  case HashSetConfigError::MaxNotPowerOfTwo:
    return "MaxNotPowerOfTwo";
  case HashSetConfigError::BoundsInverted:
    return "BoundsInverted";
  case HashSetConfigError::ZeroLoadFactor:
    return "ZeroLoadFactor";
  case HashSetConfigError::ShrinkDivisorTooSmall:
    return "ShrinkDivisorTooSmall";
  }
  return "Unknown";
}

inline constexpr bool isPowerOfTwo(size_t X) {
  return X != 0 && (X & (X - 1)) == 0;
}

/// First defect found in \p C, or HashSetConfigError::None. Pure so
/// tests can assert on the named verdict without constructing a set.
inline constexpr HashSetConfigError
validateHashSetConfig(const HashSetConfig &C) {
  if (!isPowerOfTwo(C.InitialBuckets))
    return HashSetConfigError::InitialNotPowerOfTwo;
  if (!isPowerOfTwo(C.MinBuckets))
    return HashSetConfigError::MinNotPowerOfTwo;
  if (!isPowerOfTwo(C.MaxBuckets))
    return HashSetConfigError::MaxNotPowerOfTwo;
  if (C.MinBuckets > C.InitialBuckets || C.InitialBuckets > C.MaxBuckets)
    return HashSetConfigError::BoundsInverted;
  if (C.GrowLoadFactor == 0)
    return HashSetConfigError::ZeroLoadFactor;
  if (C.EnableShrink && C.ShrinkDivisor < 2)
    return HashSetConfigError::ShrinkDivisorTooSmall;
  return HashSetConfigError::None;
}

} // namespace vbl

#endif // VBL_CORE_SETCONFIG_H
