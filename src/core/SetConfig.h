//===- core/SetConfig.h - Key type and sentinels for list-based sets -----===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The set type of the paper stores integers; every list in this repo
/// stores SetKey with the two reserved sentinel values the sequential
/// specification LL uses for head (-inf) and tail (+inf).
///
//===----------------------------------------------------------------------===//

#ifndef VBL_CORE_SETCONFIG_H
#define VBL_CORE_SETCONFIG_H

#include <cstdint>
#include <limits>

namespace vbl {

/// Element type of the integer set. 64-bit so benchmark key ranges and
/// hash-expanded test keys never collide with the sentinels.
using SetKey = int64_t;

/// head.val: smaller than every user key.
inline constexpr SetKey MinSentinel = std::numeric_limits<SetKey>::min();
/// tail.val: greater than every user key.
inline constexpr SetKey MaxSentinel = std::numeric_limits<SetKey>::max();

/// User keys live strictly between the sentinels.
inline constexpr bool isUserKey(SetKey Key) {
  return Key > MinSentinel && Key < MaxSentinel;
}

/// Key domain of the split-ordered hash sets (src/maps). Bit-reversed
/// split-order keys must fit the SetKey space alongside the per-bucket
/// dummy keys and the two sentinels, which caps user keys at 62 bits;
/// see maps/SplitOrder.h for the arithmetic. Lists accept any isUserKey
/// value; the hash overlays accept only isHashKey values.
inline constexpr int HashKeyBits = 62;
/// Exclusive upper bound of the hash-set key domain.
inline constexpr SetKey MaxHashKey = SetKey(1) << HashKeyBits;

inline constexpr bool isHashKey(SetKey Key) {
  return Key >= 0 && Key < MaxHashKey;
}

} // namespace vbl

#endif // VBL_CORE_SETCONFIG_H
