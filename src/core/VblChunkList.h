//===- core/VblChunkList.h - Unrolled VBL: cache-line chunked nodes ------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unrolled VBL list: an ordered set whose nodes ("chunks") each
/// hold up to ChunkKeys keys in a cache-line-aligned array behind one
/// versioned chunk lock, an occupancy bitmap and an immutable min-key
/// anchor. The flat VBL list pays one cache miss per key on the
/// dominant traversal path; here a traversal reads one header line per
/// *chunk* (anchor + next pointer) and touches key lines only in the
/// single chunk the search key routes to.
///
/// The paper's value-aware discipline survives the layout change by
/// moving from node granularity to chunk granularity:
///
///  - `contains` is wait-free and lock-free end to end: route by
///    anchors (immutable), snapshot the routed chunk's occupancy word
///    (acquire), read the published slots (each slot is *write-once*:
///    written before its occupancy bit is released, never rewritten, so
///    a published value is immutable and an unlocked read of it is
///    never torn or stale).
///  - `insert`/`remove` decide "already present" / "already absent"
///    from that same unlocked scan and return without ever locking —
///    the chunk reading of the schedules Fig. 2 shows the Lazy list
///    rejecting needlessly.
///  - Updates that do mutate lock only the routed chunk and validate by
///    value at commit time: ChunkLock's version fast path proves the
///    optimistic scan is still current, and otherwise the key's
///    presence/absence is re-derived from the chunk's *data* under the
///    lock (never from node identity).
///  - Overflow (no clean slot) freezes the chunk — Harris-style mark
///    under the (pred, chunk) locks — and replaces it with one
///    compacted chunk or a two-way split; an emptied chunk is marked
///    and unlinked the same way. Chunks are never mutated in place
///    structurally: readers that already entered a frozen chunk finish
///    against its immutable final content (the lazy-list marked-node
///    argument, lifted to a fat node).
///
/// Deadlock freedom: every multi-lock acquisition takes (pred, chunk)
/// in list order, and anchors — the order — are immutable.
///
/// Known husk case: a chunk whose slots are all dirty (FirstClean ==
/// ChunkKeys) and whose occupancy is zero survives until a later insert
/// routed to it compacts it away; unlink is attempted eagerly by the
/// emptying remove but is best-effort.
///
/// Template knobs: ChunkKeys (1 recovers a flat VBL-like list and is
/// the bench ablation baseline; 7 fills one 64-byte key line; 15 two),
/// ReclaimT and PolicyT exactly as in VblList, and Adaptive.
///
/// Adaptive chunking (Adaptive = true): the compile-time K becomes an
/// upper bound and the list reshapes online from two stats-layer
/// signals. Contention (the events behind chunk.validation_aborts) is
/// tracked per chunk in a Heat counter; a hot chunk is split at the
/// median even when its keys would fit one chunk, so the keys that
/// contend land behind different locks (small effective K where writers
/// collide). Occupancy (the hist.chunk_occupancy signal, sampled on
/// every structural-path lock acquisition) drives the opposite move: a
/// cold half-empty chunk is merged with its successor when the union
/// fits, restoring large effective K on read-mostly runs. Both moves
/// piggyback on the existing freeze-and-replace protocol — lock in
/// list order, mark the victim(s), swing the predecessor's link, retire
/// through the domain — so no new protocol states exist; a merge simply
/// freezes two adjacent chunks (both marked before the one swing)
/// instead of one. Replacement chunks start cold (Heat = 0), which is
/// also the hysteresis: a chunk must re-earn its heat before it splits
/// again, and a merge is refused while the chunk is hot.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_CORE_VBLCHUNKLIST_H
#define VBL_CORE_VBLCHUNKLIST_H

#include "analysis/FlowView.h"
#include "core/ChunkLock.h"
#include "core/SetConfig.h"
#include "reclaim/EpochDomain.h"
#include "reclaim/NodePool.h"
#include "reclaim/VbrDomain.h"
#include "stats/Stats.h"
#include "support/ThreadSafety.h"
#include "sync/Policy.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace vbl {

template <unsigned ChunkKeys = 7, class ReclaimT = reclaim::EpochDomain,
          class PolicyT = DirectPolicy, bool Adaptive = false>
class VblChunkList {
  static_assert(ChunkKeys >= 1 && ChunkKeys <= 63,
                "the occupancy bitmap is one 64-bit word");

  /// Version-based reclamation: chunks are revived in place, so anchors
  /// become atomic, the routing walk and every optimistic data decision
  /// re-validate the chunk's birth epoch, and the lock validators pin
  /// the incarnation the route certified. ChunkLock versions are type-
  /// stable across incarnations (freeze and unlink both bump them under
  /// the lock), so the version fast path alone can only skip validation
  /// within one incarnation — the pre-lock birth check below closes the
  /// probe-of-recycled-chunk window.
  static constexpr bool Versioned = reclaim::IsVersionedDomain<ReclaimT>;

  struct alignas(CacheLineBytes) Chunk {
    explicit Chunk(SetKey Anchor) : Anchor(Anchor) {}

    /// Immutable min-key bound: every key stored here is >= Anchor and
    /// < the successor's Anchor. Routing compares only anchors, so a
    /// traversal touches one header line per chunk. Immutable per
    /// incarnation; atomic under VBR where a revival overwrites it.
    std::conditional_t<Versioned, std::atomic<SetKey>, const SetKey> Anchor;
    std::atomic<Chunk *> Next{nullptr};
    /// Harris-style logical delete of the whole chunk: set under the
    /// chunk lock when the chunk is frozen (replaced or unlinked). A
    /// marked chunk's Keys/Occ never change again.
    std::atomic<bool> Marked{false};
    /// First never-used slot. Slots are consumed in index order and are
    /// write-once: written before their Occ bit is published, never
    /// rewritten. Mutated only under Lock.
    std::atomic<uint32_t> FirstClean{0};
    /// Contention estimate for adaptive reshaping: bumped (lossy,
    /// single CAS attempt) when an operation's lock-held validation of
    /// this chunk aborts. Advisory only — never part of a correctness
    /// decision — and reset to zero on VBR revival. Unused (always 0)
    /// when Adaptive is off; it shares the header padding either way.
    std::atomic<uint32_t> Heat{0};
    /// Occupancy bitmap: bit i published (release) after Keys[i] is
    /// written, cleared (release) by remove. The one word unlocked
    /// scans snapshot.
    std::atomic<uint64_t> Occ{0};
    ChunkLock Lock;
    /// Keys on their own cache line(s): the routing loop never pulls
    /// them, the final scan reads one line per 8 keys.
    alignas(CacheLineBytes) std::array<std::atomic<SetKey>, ChunkKeys> Keys{};
  };

  static_assert(sizeof(Chunk) <= reclaim::NodePool::MaxBlockBytes,
                "chunks must stay poolable; shrink ChunkKeys");
  static_assert(alignof(Chunk) == CacheLineBytes,
                "chunk headers must be line-aligned for the pool's slabs");

public:
  using Reclaim = ReclaimT;
  using Policy = PolicyT;

  static constexpr unsigned KeysPerChunk = ChunkKeys;
  /// True when this instantiation reshapes chunks online (hot splits,
  /// cold merges); exposed so tests and describe strings can branch.
  static constexpr bool AdaptiveShapes = Adaptive;
  /// Heat at which a chunk is considered contended: structural inserts
  /// split it at the median even when the keys would fit one chunk, and
  /// merges refuse it. Validation aborts are rare in healthy schedules,
  /// so a small absolute count already marks a genuine hot spot.
  static constexpr uint32_t HotSplitThreshold = 4;
  /// Exposed so the NodePool tests can assert the size-class mapping of
  /// real chunk shapes without re-deriving the layout.
  static constexpr size_t ChunkBytes = sizeof(Chunk);
  static constexpr size_t ChunkAlignment = alignof(Chunk);

  VblChunkList() {
    if constexpr (Versioned) {
      // Sentinels need slab headers too: route() runs validAt on every
      // chunk it certifies, Tail included. A fresh domain stamps birth
      // zero, so sentinel certification never fails.
      Tail = makeChunk(MaxSentinel);
      Head = makeChunk(MinSentinel);
    } else {
      Tail = reclaim::poolCreate<Chunk, Policy>(MaxSentinel);
      Head = reclaim::poolCreate<Chunk, Policy>(MinSentinel);
    }
    Head->Next.store(Tail, std::memory_order_relaxed);
  }

  ~VblChunkList() {
    // Reachable chunks are freed here; frozen chunks were retired and
    // are freed (or deliberately leaked) by the domain's destructor.
    Chunk *Curr = Head;
    while (Curr) {
      Chunk *Next = Curr->Next.load(std::memory_order_relaxed);
      reclaim::domainDispose<Policy>(Domain, Curr);
      Curr = Next;
    }
  }

  VblChunkList(const VblChunkList &) = delete;
  VblChunkList &operator=(const VblChunkList &) = delete;

  /// Adds \p Key; true iff it was absent. Never locks when the key is
  /// already present (the value-aware rule, at chunk granularity).
  bool insert(SetKey Key) {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    typename Reclaim::Guard G(Domain);
    for (;;) {
      auto [Pred, Curr] = route(Key, G);
      (void)Pred;
      if (Curr == Head) {
        // Below every anchor: splice a fresh singleton chunk after the
        // head sentinel (the head never stores keys, so no existing
        // chunk can legally receive a key under its anchor).
        if (spliceAfterHead(Key))
          return true;
        Policy::onRestart();
        continue;
      }
      // Optimistic phase: version probe first so the scan can double as
      // the lock's validation (ChunkLock fast path), then liveness,
      // then the data decision.
      const uint64_t Seen =
          Curr->Lock.template optimisticVersion<Policy>(Curr);
      if (Policy::read(Curr->Marked, std::memory_order_acquire, Curr,
                       MemField::Marked)) {
        Policy::onRestart();
        continue;
      }
      const uint64_t Occ = Policy::read(
          Curr->Occ, std::memory_order_acquire, &Curr->Occ, MemField::Marked);
      const int Found = scanFor(Curr, Occ, Key);
      if constexpr (Versioned) {
        // The Marked/Occ/slot reads above may be of a revived block: the
        // lock's version fast path cannot catch cross-incarnation reuse
        // on its own (the freelist round trip performs no lock traffic),
        // so certify the incarnation before trusting the scan or handing
        // Seen to the fast path.
        if (!Domain.validAt(Curr, G.version())) {
          G.refresh();
          Policy::onRestart();
          continue;
        }
      }
      if (Found >= 0)
        return false; // Present: decided from data alone, no lock taken.
      if constexpr (Adaptive) {
        // A contended chunk skips the single-lock fast path: the
        // structural path splits it at the median so the colliding keys
        // end up behind different locks (small effective K where it
        // hurts). The replacement halves start cold.
        if (heatOf(Curr) >= HotSplitThreshold) {
          const int Out = structuralInsert(Key, G);
          if (Out >= 0)
            return Out != 0;
          Policy::onRestart();
          continue;
        }
      }
      bool FoundUnderLock = false;
      const bool Locked = Curr->Lock.template acquireIfValidSince<Policy>(
          Curr, Seen, [&] {
            if (Policy::readCheck(Curr->Marked, std::memory_order_acquire,
                                  Curr, MemField::Marked))
              return false;
            const uint64_t O =
                Policy::readCheck(Curr->Occ, std::memory_order_acquire,
                                  &Curr->Occ, MemField::Marked);
            const int FoundHere = scanForCheck(Curr, O, Key);
            if constexpr (Versioned) {
              // Birth last: only a certified incarnation's scan may
              // produce the authoritative "present" answer below.
              if (!Domain.validAt(Curr, G.version()))
                return false;
            }
            if (FoundHere >= 0) {
              FoundUnderLock = true;
              return false;
            }
            return true;
          });
      if (!Locked) {
        if (FoundUnderLock)
          return false; // Value validation decided "present" — no retry.
        stats::bump(stats::Counter::ChunkValidationAborts);
        noteContention(Curr);
        Policy::onRestart();
        continue;
      }
      // Locked, key absent, chunk live and still covering Key (anchors
      // of a live chunk's successor never decrease).
      const uint32_t FC =
          Policy::readCheck(Curr->FirstClean, std::memory_order_relaxed,
                            &Curr->FirstClean, MemField::Marked);
      if (FC < ChunkKeys) {
        storeSlot(Curr, FC, Key);
        Curr->Lock.template release<Policy>(Curr);
        return true;
      }
      // No clean slot: structural path (freeze and replace), which must
      // take the predecessor's lock first — release and redo as a pair.
      Curr->Lock.template release<Policy>(Curr);
      const int Out = structuralInsert(Key, G);
      if (Out >= 0)
        return Out != 0;
      Policy::onRestart();
    }
  }

  /// Removes \p Key; true iff it was present. Never locks when the key
  /// is absent. An emptied chunk is unlinked best-effort.
  bool remove(SetKey Key) {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    typename Reclaim::Guard G(Domain);
    for (;;) {
      auto [Pred, Curr] = route(Key, G);
      if (Curr == Head)
        return false; // Below every anchor: absent at the route's read.
      const uint64_t Seen =
          Curr->Lock.template optimisticVersion<Policy>(Curr);
      // Liveness must be read between probe and acquire, exactly like
      // insert: the lock's fast path only certifies facts observed
      // after the probe. Without this read, a fresh probe on a chunk
      // frozen just before it takes the fast path and clears a slot in
      // the retired copy while the replacement keeps the key — a lost
      // remove.
      if (Policy::read(Curr->Marked, std::memory_order_acquire, Curr,
                       MemField::Marked)) {
        Policy::onRestart();
        continue;
      }
      const uint64_t Occ = Policy::read(
          Curr->Occ, std::memory_order_acquire, &Curr->Occ, MemField::Marked);
      int Slot = scanFor(Curr, Occ, Key);
      if constexpr (Versioned) {
        // Same incarnation certification as insert: the absent answer
        // and the probe version are only meaningful for the chunk the
        // route certified, not a revived reuse of its block.
        if (!Domain.validAt(Curr, G.version())) {
          G.refresh();
          Policy::onRestart();
          continue;
        }
      }
      if (Slot < 0)
        return false; // Absent: decided from data alone, no lock taken.
      bool AbsentUnderLock = false;
      uint64_t OccHeld = Occ;
      const bool Locked = Curr->Lock.template acquireIfValidSince<Policy>(
          Curr, Seen, [&] {
            if (Policy::readCheck(Curr->Marked, std::memory_order_acquire,
                                  Curr, MemField::Marked))
              return false;
            OccHeld =
                Policy::readCheck(Curr->Occ, std::memory_order_acquire,
                                  &Curr->Occ, MemField::Marked);
            Slot = scanForCheck(Curr, OccHeld, Key);
            if constexpr (Versioned) {
              // Birth last, before the scan's result is trusted.
              if (!Domain.validAt(Curr, G.version()))
                return false;
            }
            if (Slot < 0) {
              AbsentUnderLock = true;
              return false;
            }
            return true;
          });
      if (!Locked) {
        if (AbsentUnderLock)
          return false; // Live chunk covering Key lacks it: authoritative.
        stats::bump(stats::Counter::ChunkValidationAborts);
        noteContention(Curr);
        Policy::onRestart();
        continue;
      }
      const uint64_t NewOcc = OccHeld & ~(uint64_t{1} << Slot);
      Policy::write(Curr->Occ, NewOcc, std::memory_order_release,
                    &Curr->Occ, MemField::Marked);
      Curr->Lock.template release<Policy>(Curr);
      if (NewOcc == 0) {
        tryUnlinkEmpty(Pred, Curr, G);
      } else if constexpr (Adaptive) {
        // Cold-compaction trigger: a quarter-full chunk (or a singleton,
        // which is pure pointer overhead at any K) with no recent
        // contention folds into its successor when the union fits —
        // read-mostly sparse runs drift back toward large effective K.
        // Quarter, not half: split fires at full, so merging anything
        // denser re-creates near-full chunks that the next insert
        // splits again — at the harness's steady-state density of 1/2 a
        // half-full trigger thrashes split/merge on every other update.
        const unsigned Pop = static_cast<unsigned>(std::popcount(NewOcc));
        if ((Pop == 1 || 4 * Pop <= ChunkKeys) &&
            heatOf(Curr) < HotSplitThreshold)
          tryMergeWithNext(Pred, Curr, G);
      }
      return true;
    }
  }

  /// Wait-free membership test: anchors route, one occupancy snapshot
  /// and the published slots decide. No locks, no version retries.
  /// Under VBR the walk and the final scan re-validate birth epochs and
  /// retry on a stale incarnation, trading wait-freedom for immediate
  /// block reuse (the lock-free-but-not-wait-free VBR read protocol).
  bool contains(SetKey Key) const {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    typename Reclaim::Guard G(Domain);
    if constexpr (Versioned) {
      for (;;) {
        auto [Pred, Curr] = route(Key, G);
        (void)Pred;
        const uint64_t Occ =
            Policy::read(Curr->Occ, std::memory_order_acquire, &Curr->Occ,
                         MemField::Marked);
        const int Found = scanFor(Curr, Occ, Key);
        if (Domain.validAt(Curr, G.version()))
          return Found >= 0;
        G.refresh();
        Policy::onRestart();
      }
    } else {
      auto [Pred, Curr] = route(Key, G);
      (void)Pred;
      const uint64_t Occ = Policy::read(
          Curr->Occ, std::memory_order_acquire, &Curr->Occ, MemField::Marked);
      return scanFor(Curr, Occ, Key) >= 0;
    }
  }

  /// Linearizable range scan: appends every key in [Lo, Hi] to \p Out,
  /// sorted, and returns how many were appended.
  ///
  /// Optimistic protocol (see DESIGN.md "Multi-chunk scan windows"):
  /// route to the chunk covering Lo (the head sentinel when Lo is below
  /// every anchor — a concurrent spliceAfterHead commits under the
  /// head's lock, so the head's version must be part of the window),
  /// then per chunk record the seqlock version, check liveness, collect
  /// the published slots, and advance until the successor's anchor
  /// exceeds Hi. Afterwards re-validate the whole window with
  /// ChunkLock::readValidate: every structural change that can move a
  /// key across [Lo, Hi] — slot publish/clear, freeze-and-replace,
  /// unlink, splice — commits under the lock of some window chunk, so
  /// an all-even, all-unchanged window proves the collect equals the
  /// window's content at the moment of its last read (the scan's
  /// linearization point). A failed probe, a frozen chunk or a version
  /// change retries (scan.retries); after ScanMaxRetries the scan
  /// finishes under per-chunk locks instead (scan.fallbacks), which
  /// keeps per-key linearizability and uses an anchor cursor to neither
  /// duplicate nor drop keys across lock hand-offs.
  size_t rangeQuery(SetKey Lo, SetKey Hi, std::vector<SetKey> &Out) const {
    VBL_ASSERT(isUserKey(Lo) && isUserKey(Hi),
               "sentinel keys are reserved");
    if (Lo > Hi)
      return 0;
    typename Reclaim::Guard G(Domain);
    const size_t Entry = Out.size();
    std::vector<std::pair<const Chunk *, uint64_t>> Window;
    for (unsigned Attempt = 0; Attempt < ScanMaxRetries; ++Attempt) {
      Out.resize(Entry);
      Window.clear();
      bool Fail = false;
      bool Stale = false;
      auto [Pred, Start] = route(Lo, G);
      (void)Pred;
      const Chunk *C = Start;
      for (;;) {
        const uint64_t V = C->Lock.template optimisticVersion<Policy>(C);
        if (V == ChunkLock::InvalidVersion) {
          Fail = true;
          break;
        }
        if (Policy::read(C->Marked, std::memory_order_acquire, C,
                         MemField::Marked)) {
          Fail = true;
          break;
        }
        const uint64_t Occ =
            Policy::read(C->Occ, std::memory_order_acquire, &C->Occ,
                         MemField::Marked);
        const size_t Base = Out.size();
        collectInRange(C, Occ, Lo, Hi, Out);
        const Chunk *Next = Policy::read(C->Next,
                                         std::memory_order_acquire, C,
                                         MemField::Next);
        const SetKey NextAnchor = readAnchor(Next);
        if constexpr (Versioned) {
          // Certify both incarnations the hop trusted: C's content reads
          // and Next's anchor (revivals publish birth before fields).
          if (!Domain.validAt(C, G.version()) ||
              !Domain.validAt(Next, G.version())) {
            Stale = true;
            break;
          }
        }
        // Slots are append-ordered; chunk ranges are disjoint and
        // increasing, so a chunk-local sort yields a global order.
        std::sort(Out.begin() + static_cast<ptrdiff_t>(Base), Out.end());
        Window.emplace_back(C, V);
        if (NextAnchor > Hi)
          break;
        C = Next;
      }
      if (!Fail && !Stale) {
        // Whole-window revalidation: all validates run after the last
        // collect, so success pins every chunk's content at that point.
        for (const auto &[WC, WV] : Window)
          if (!WC->Lock.template readValidate<Policy>(WV, WC)) {
            Fail = true;
            break;
          }
        if (!Fail) {
          stats::noteTraversal(Window.size());
          return Out.size() - Entry;
        }
      }
      if constexpr (Versioned) {
        if (Stale)
          G.refresh();
      }
      stats::bump(stats::Counter::ScanRetries);
      Policy::onRestart();
    }
    stats::bump(stats::Counter::ScanFallbacks);
    Out.resize(Entry);
    return lockedScan(Lo, Hi, Out, G);
  }

  //===--------------------------------------------------------------===//
  // Test and tooling support (not part of the concurrent hot path).
  //===--------------------------------------------------------------===//

  /// Collects the user keys currently in the list, sorted. Quiescent
  /// use only.
  std::vector<SetKey> snapshot() const {
    std::vector<SetKey> Out;
    for (const Chunk *Curr = Head->Next.load(std::memory_order_acquire);
         rawAnchor(Curr) != MaxSentinel;
         Curr = Curr->Next.load(std::memory_order_acquire)) {
      const size_t Base = Out.size();
      uint64_t Bits = Curr->Occ.load(std::memory_order_acquire);
      while (Bits) {
        const int I = std::countr_zero(Bits);
        Bits &= Bits - 1;
        Out.push_back(Curr->Keys[static_cast<size_t>(I)].load(
            std::memory_order_relaxed));
      }
      // Slots are append-ordered, not sorted; chunk ranges are disjoint
      // and increasing, so a chunk-local sort yields a global order.
      std::sort(Out.begin() + static_cast<ptrdiff_t>(Base), Out.end());
    }
    return Out;
  }

  /// Structural invariants that must hold when no operation is running:
  /// anchors strictly increasing head to tail, nothing marked or
  /// locked, occupancy confined below FirstClean, every key within its
  /// chunk's [Anchor, NextAnchor) range and distinct, sentinels empty.
  bool checkInvariants() const {
    const Chunk *Curr = Head;
    if (rawAnchor(Curr) != MinSentinel)
      return false;
    while (true) {
      if (Curr->Marked.load(std::memory_order_acquire))
        return false;
      if (Curr->Lock.isLocked())
        return false;
      const uint32_t FC = Curr->FirstClean.load(std::memory_order_acquire);
      const uint64_t Occ = Curr->Occ.load(std::memory_order_acquire);
      if (FC > ChunkKeys)
        return false;
      if ((FC < 64 ? Occ >> FC : 0) != 0)
        return false; // A bit above FirstClean: a never-written slot.
      const Chunk *Next = Curr->Next.load(std::memory_order_acquire);
      if (rawAnchor(Curr) == MaxSentinel)
        return Next == nullptr && Occ == 0;
      if (!Next || rawAnchor(Next) <= rawAnchor(Curr))
        return false;
      if (Curr == Head && Occ != 0)
        return false; // The head sentinel never stores keys.
      std::vector<SetKey> InChunk;
      uint64_t Bits = Occ;
      while (Bits) {
        const int I = std::countr_zero(Bits);
        Bits &= Bits - 1;
        const SetKey K = Curr->Keys[static_cast<size_t>(I)].load(
            std::memory_order_relaxed);
        if (K < rawAnchor(Curr) || K >= rawAnchor(Next))
          return false;
        InChunk.push_back(K);
      }
      std::sort(InChunk.begin(), InChunk.end());
      if (std::adjacent_find(InChunk.begin(), InChunk.end()) !=
          InChunk.end())
        return false;
      Curr = Next;
    }
  }

  /// Number of user keys; O(n), quiescent use only.
  size_t sizeSlow() const { return snapshot().size(); }

  /// Chunks between the sentinels; quiescent use only (tests assert on
  /// split/unlink structure).
  size_t chunkCountSlow() const {
    size_t N = 0;
    for (const Chunk *Curr = Head->Next.load(std::memory_order_acquire);
         rawAnchor(Curr) != MaxSentinel;
         Curr = Curr->Next.load(std::memory_order_acquire))
      ++N;
    return N;
  }

  Reclaim &reclaimDomain() { return Domain; }

  /// Identity of the head sentinel (schedule exporters key off it).
  const void *headNode() const { return Head; }

  /// Quiescent-only: the (chunk, anchor) chain from head to tail
  /// inclusive, used by the schedule tooling to reconstruct states.
  std::vector<std::pair<const void *, SetKey>> nodeChain() const {
    std::vector<std::pair<const void *, SetKey>> Chain;
    for (const Chunk *Curr = Head; Curr;
         Curr = Curr->Next.load(std::memory_order_relaxed))
      Chain.emplace_back(Curr, rawAnchor(Curr));
    return Chain;
  }

  /// Self-description for the flow-invariant oracle: one FlowNodeDesc
  /// per reachable chunk, anchor as the node key, occupied slots (set
  /// Occ bits) listed with their published keys. A frozen (marked)
  /// chunk's content is immutable, so describing it mid-freeze is safe;
  /// its keys transiently flow nowhere until the replacement is swung
  /// in — which is why the per-step uniqueness clause is "at most one".
  analysis::FlowView flowView() {
    analysis::FlowView View;
    View.HasMark = true;          // Chunk-granularity freeze mark.
    View.MarkedMayLinger = false; // The marker swings the link itself.
    View.IsChunked = true;
    View.Describe = [this] {
      std::vector<analysis::FlowNodeDesc> Chain;
      for (const Chunk *Curr = Head;
           Curr && Chain.size() < analysis::FlowWalkCap;
           Curr = Curr->Next.load(std::memory_order_relaxed)) {
        analysis::FlowNodeDesc D;
        D.Node = Curr;
        D.Key = rawAnchor(Curr);
        D.Marked = Curr->Marked.load(std::memory_order_relaxed);
        D.IsChunk = true;
        D.FirstClean = Curr->FirstClean.load(std::memory_order_relaxed);
        D.Capacity = ChunkKeys;
        uint64_t Bits = Curr->Occ.load(std::memory_order_relaxed);
        while (Bits) {
          const int I = std::countr_zero(Bits);
          Bits &= Bits - 1;
          analysis::FlowSlot Slot;
          Slot.Index = static_cast<uint32_t>(I);
          Slot.Key = Curr->Keys[static_cast<size_t>(I)].load(
              std::memory_order_relaxed);
          D.Slots.push_back(Slot);
        }
        Chain.push_back(std::move(D));
      }
      return Chain;
    };
    return View;
  }

private:
  /// The routed chunk's anchor, read on the unlocked walk. Versioned
  /// mode mediates the atomic with acquire so a passing birth check
  /// afterwards certifies the value via the revival release chain.
  static SetKey readAnchor(const Chunk *C) {
    if constexpr (Versioned)
      return Policy::read(C->Anchor, std::memory_order_acquire, C,
                          MemField::Val);
    else
      return Policy::readValue(C->Anchor, C);
  }

  /// readAnchor in validation flavour (under a chunk lock).
  static SetKey readAnchorCheck(const Chunk *C) {
    if constexpr (Versioned)
      return Policy::readCheck(C->Anchor, std::memory_order_acquire, C,
                               MemField::Val);
    else
      return Policy::readValueCheck(C->Anchor, C);
  }

  /// Quiescent / under-lock anchor read with no policy event.
  static SetKey rawAnchor(const Chunk *C) {
    if constexpr (Versioned)
      return C->Anchor.load(std::memory_order_relaxed);
    else
      return C->Anchor;
  }

  /// Anchor routing: returns (Pred, Curr) with Pred->Next observed ==
  /// Curr and Anchor(Curr) <= Key < Anchor of Curr's successor at the
  /// reads. Pred is null exactly when Curr is the head sentinel (Key is
  /// below every anchor). Wait-free in the non-versioned domains:
  /// anchors are immutable and the walk only follows Next pointers
  /// forward. Under VBR every hop reads the candidate's anchor and next
  /// pointer FIRST and certifies its birth epoch AFTER — a revival
  /// publishes the new birth before any new field value, so a passing
  /// check retroactively validates both reads — and a stale incarnation
  /// restarts the walk from the never-retired head with a refreshed
  /// version.
  std::pair<Chunk *, Chunk *> route(SetKey Key,
                                    typename Reclaim::Guard &G) const {
    if constexpr (Versioned) {
      for (;;) {
        Chunk *Pred = nullptr;
        Chunk *Curr = Head;
        Chunk *Next = Policy::read(Curr->Next, std::memory_order_acquire,
                                   Curr, MemField::Next);
        uint64_t Hops = 0;
        bool Stale = false;
        for (;;) {
          const SetKey A = readAnchor(Next);
          Chunk *After = Policy::read(Next->Next, std::memory_order_acquire,
                                      Next, MemField::Next);
          if (!Domain.validAt(Next, G.version())) {
            Stale = true;
            break;
          }
          if (A > Key)
            break;
          Pred = Curr;
          Curr = Next;
          Next = After;
          ++Hops;
        }
        stats::noteTraversal(Hops);
        if (!Stale) {
          if constexpr (!Policy::Traced)
            VBL_PREFETCH(&Curr->Keys[0]);
          return {Pred, Curr};
        }
        G.refresh();
        Policy::onRestart();
      }
    } else {
      (void)G;
      Chunk *Pred = nullptr;
      Chunk *Curr = Head;
      Chunk *Next = Policy::read(Curr->Next, std::memory_order_acquire, Curr,
                                 MemField::Next);
      uint64_t Hops = 0; // Accumulated locally; one stats call at the end.
      while (Policy::readValue(Next->Anchor, Next) <= Key) {
        Pred = Curr;
        Curr = Next;
        Next = Policy::read(Curr->Next, std::memory_order_acquire, Curr,
                            MemField::Next);
        // Pull the chunk-after-next's header line while this anchor is
        // compared. Direct mode only: traced runs must not perform an
        // extra scheduler-invisible shared read.
        if constexpr (!Policy::Traced)
          VBL_PREFETCH(Next->Next.load(std::memory_order_relaxed));
        ++Hops;
      }
      // The routed chunk's key lines are about to be scanned; start the
      // fetch under the final anchor compare.
      if constexpr (!Policy::Traced)
        VBL_PREFETCH(&Curr->Keys[0]);
      stats::noteTraversal(Hops);
      return {Pred, Curr};
    }
  }

  /// Slot-read order. Non-versioned: relaxed — published slots are
  /// write-once and the Occ acquire that exposed the bit orders the
  /// slot store, so a relaxed read returns the one value the slot will
  /// ever hold. Versioned: acquire — a revival rewrites slots in place,
  /// so the read must pair with the reviver's release store for the
  /// trailing birth check to certify it.
  static constexpr std::memory_order SlotReadOrder =
      Versioned ? std::memory_order_acquire : std::memory_order_relaxed;

  /// Slot index in \p C holding \p Key among the set bits of \p Occ, or
  /// -1.
  int scanFor(const Chunk *C, uint64_t Occ, SetKey Key) const {
    uint64_t Bits = Occ;
    while (Bits) {
      const int I = std::countr_zero(Bits);
      Bits &= Bits - 1;
      if (Policy::read(C->Keys[static_cast<size_t>(I)], SlotReadOrder,
                       &C->Keys[static_cast<size_t>(I)],
                       MemField::Val) == Key)
        return I;
    }
    return -1;
  }

  /// Optimistic-scan retry budget before rangeQuery downgrades to the
  /// per-chunk lock fallback.
  static constexpr unsigned ScanMaxRetries = 3;

  /// Appends the published keys of \p C that fall inside [Lo, Hi]
  /// (slot reads in scanFor flavour: part of an optimistic read).
  void collectInRange(const Chunk *C, uint64_t Occ, SetKey Lo, SetKey Hi,
                      std::vector<SetKey> &Out) const {
    uint64_t Bits = Occ;
    while (Bits) {
      const int I = std::countr_zero(Bits);
      Bits &= Bits - 1;
      const SetKey K =
          Policy::read(C->Keys[static_cast<size_t>(I)], SlotReadOrder,
                       &C->Keys[static_cast<size_t>(I)], MemField::Val);
      if (K >= Lo && K <= Hi)
        Out.push_back(K);
    }
  }

  /// Range-scan fallback: collect each window chunk's keys under its
  /// own lock, hand-over-chunk. Only per-chunk atomicity (every key is
  /// read under a lock, so per-key linearizability holds — the same
  /// guarantee contains() gives). The anchor cursor makes restarts
  /// (frozen chunk found at acquire time) re-route without duplicating
  /// keys already committed: a chunk's keys are all >= its anchor, and
  /// the cursor only advances to anchors of fully collected successors.
  //
  // Suppressed: the loop acquires and releases chunk locks through a
  // moving pointer, which the analysis cannot name lexically.
  size_t lockedScan(SetKey Lo, SetKey Hi, std::vector<SetKey> &Out,
                    typename Reclaim::Guard &G) const
      VBL_NO_THREAD_SAFETY_ANALYSIS {
    const size_t Entry = Out.size();
    SetKey Cursor = Lo;
    uint64_t Chunks = 0;
    for (bool Done = false; !Done;) {
      auto [Pred, C] = route(Cursor, G);
      (void)Pred;
      bool Restart = false;
      while (!Done && !Restart) {
        if (!C->Lock.template acquireIfValidSince<Policy>(
                C, ChunkLock::InvalidVersion, [&] {
                  if (Policy::readCheck(C->Marked,
                                        std::memory_order_acquire, C,
                                        MemField::Marked))
                    return false;
                  if constexpr (Versioned) {
                    // Pin the incarnation the route (or the previous
                    // hop's successor read) certified.
                    if (!Domain.validAt(C, G.version()))
                      return false;
                  }
                  return true;
                })) {
          stats::bump(stats::Counter::ChunkValidationAborts);
          if constexpr (Versioned)
            G.refresh();
          Policy::onRestart();
          Restart = true;
          break;
        }
        const uint64_t Occ =
            Policy::readCheck(C->Occ, std::memory_order_acquire, &C->Occ,
                              MemField::Marked);
        const size_t Base = Out.size();
        uint64_t Bits = Occ;
        while (Bits) {
          const int I = std::countr_zero(Bits);
          Bits &= Bits - 1;
          const SetKey K = Policy::readCheck(
              C->Keys[static_cast<size_t>(I)], SlotReadOrder,
              &C->Keys[static_cast<size_t>(I)], MemField::Val);
          if (K >= Cursor && K <= Hi)
            Out.push_back(K);
        }
        std::sort(Out.begin() + static_cast<ptrdiff_t>(Base), Out.end());
        // Under C's lock, Next is C's genuine successor and cannot be
        // frozen (its freezer needs this lock), so its anchor is
        // trustworthy without further certification.
        Chunk *Next = Policy::readCheck(C->Next,
                                        std::memory_order_acquire, C,
                                        MemField::Next);
        const SetKey NextAnchor = rawAnchor(Next);
        C->Lock.template release<Policy>(C);
        ++Chunks;
        if (NextAnchor > Hi) {
          Done = true;
          break;
        }
        Cursor = NextAnchor > Cursor ? NextAnchor : Cursor;
        C = Next;
      }
    }
    stats::noteTraversal(Chunks);
    return Out.size() - Entry;
  }

  /// scanFor in validation flavour (under the chunk lock; the schedule
  /// exporter drops readCheck accesses when projecting onto LL).
  int scanForCheck(const Chunk *C, uint64_t Occ, SetKey Key) const {
    uint64_t Bits = Occ;
    while (Bits) {
      const int I = std::countr_zero(Bits);
      Bits &= Bits - 1;
      if (Policy::readCheck(C->Keys[static_cast<size_t>(I)], SlotReadOrder,
                            &C->Keys[static_cast<size_t>(I)],
                            MemField::Val) == Key)
        return I;
    }
    return -1;
  }

  /// Writes \p Key into clean slot \p FC of locked chunk \p C and
  /// publishes it: slot first (plain), then its Occ bit (release) — the
  /// edge every unlocked scan acquires. The caller must hold C's chunk
  /// lock (slot consumption mutates FirstClean).
  void storeSlot(Chunk *C, uint32_t FC, SetKey Key) VBL_REQUIRES(C->Lock) {
    Policy::write(C->Keys[FC], Key, PrePublishOrder, &C->Keys[FC],
                  MemField::Val);
    const uint64_t O = Policy::readCheck(C->Occ, std::memory_order_relaxed,
                                         &C->Occ, MemField::Marked);
    Policy::write(C->Occ, O | (uint64_t{1} << FC), std::memory_order_release,
                  &C->Occ, MemField::Marked);
    Policy::write(C->FirstClean, FC + 1, std::memory_order_relaxed,
                  &C->FirstClean, MemField::Marked);
  }

  /// Pre-publication initialisation order. Non-versioned domains rely
  /// on the publishing swing's release to order plain stores; under VBR
  /// a stale traversal can reach a revived block through a frozen next
  /// pointer before the swing, so every revival store must itself be a
  /// release behind the freshly stamped birth epoch.
  static constexpr std::memory_order PrePublishOrder =
      Versioned ? std::memory_order_release : std::memory_order_relaxed;

  /// Allocates a raw chunk for \p Anchor. Non-versioned: pool block plus
  /// constructor. Versioned: a fresh slab block is constructed and
  /// announced via onNewNode exactly once; a revived block must NOT
  /// re-run the constructor (its lock word and slab header are live
  /// type-stable state) — the anchor and mark are release-stored over
  /// the previous incarnation instead, ordered behind the birth stamp
  /// allocBlockFor just published.
  Chunk *makeChunk(SetKey Anchor) {
    if constexpr (Versioned) {
      bool Fresh = false;
      void *Mem = Domain.template allocBlockFor<Chunk>(Fresh);
      if (Fresh) {
        Chunk *C = ::new (Mem) Chunk(Anchor);
        Policy::onNewNode(C, Anchor);
        return C;
      }
      Chunk *C = std::launder(static_cast<Chunk *>(Mem));
      Policy::write(C->Anchor, Anchor, std::memory_order_release, C,
                    MemField::Val);
      Policy::write(C->Marked, false, std::memory_order_release, C,
                    MemField::Marked);
      // Revival skips the constructor, so the previous incarnation's
      // contention heat must be cleared by hand: a revived chunk starts
      // cold (also the hysteresis that keeps a just-split chunk from
      // immediately splitting again).
      Policy::write(C->Heat, uint32_t{0}, std::memory_order_release,
                    &C->Heat, MemField::Val);
      return C;
    } else {
      Chunk *C = reclaim::poolCreate<Chunk, Policy>(Anchor);
      Policy::onNewNode(C, Anchor);
      return C;
    }
  }

  /// Builds an unpublished chunk: \p N sorted keys, all published
  /// locally (plain stores — the publishing swing's release orders them
  /// for every later reader; release stores under VBR, see
  /// PrePublishOrder), linked to \p NextC.
  Chunk *buildChunk(SetKey Anchor, const SetKey *Ks, size_t N,
                    Chunk *NextC) {
    Chunk *C = makeChunk(Anchor);
    for (size_t I = 0; I < N; ++I)
      Policy::write(C->Keys[I], Ks[I], PrePublishOrder, &C->Keys[I],
                    MemField::Val);
    Policy::write(C->FirstClean, static_cast<uint32_t>(N),
                  PrePublishOrder, &C->FirstClean, MemField::Marked);
    Policy::write(C->Occ, N == 0 ? 0 : (uint64_t{1} << N) - 1,
                  PrePublishOrder, &C->Occ, MemField::Marked);
    Policy::write(C->Next, NextC, PrePublishOrder, C, MemField::Next);
    return C;
  }

  /// Key below every anchor: splice a singleton chunk between the head
  /// sentinel and its successor. Value-validated under the head's lock
  /// (the successor may be a different chunk than routed — only its
  /// anchor must still exceed Key). False => re-route.
  bool spliceAfterHead(SetKey Key) {
    const bool Ok = Head->Lock.template acquireIfValidSince<Policy>(
        Head, ChunkLock::InvalidVersion, [&] {
          Chunk *First = Policy::readCheck(
              Head->Next, std::memory_order_acquire, Head, MemField::Next);
          // No birth check needed even under VBR: the head sentinel is
          // never retired, so First is its genuine current successor —
          // a live chunk whose anchor read is current by construction.
          return readAnchorCheck(First) > Key;
        });
    if (!Ok) {
      stats::bump(stats::Counter::ChunkValidationAborts);
      return false;
    }
    Chunk *First = Policy::readCheck(Head->Next, std::memory_order_acquire,
                                     Head, MemField::Next);
    Chunk *Fresh = buildChunk(Key, &Key, 1, First);
    Policy::write(Head->Next, Fresh, std::memory_order_release, Head,
                  MemField::Next);
    Head->Lock.template release<Policy>(Head);
    return true;
  }

  /// Insert when the routed chunk has no clean slot: lock (pred, chunk)
  /// in list order, re-decide from data, then either use a slot that a
  /// concurrent remove freed up, or freeze the chunk and replace it
  /// with a compacted copy (live keys + Key still fit) or a two-way
  /// split (chunk genuinely full). Returns 1 inserted, 0 present,
  /// -1 retry.
  int structuralInsert(SetKey Key, typename Reclaim::Guard &G) {
    auto [Pred, Curr] = route(Key, G);
    if (Curr == Head)
      return spliceAfterHead(Key) ? 1 : -1;
    if (!Pred->Lock.template acquireIfValidSince<Policy>(
            Pred, ChunkLock::InvalidVersion, [&] {
              if (Policy::readCheck(Pred->Marked,
                                    std::memory_order_acquire, Pred,
                                    MemField::Marked))
                return false;
              const bool Linked =
                  Policy::readCheck(Pred->Next, std::memory_order_acquire,
                                    Pred, MemField::Next) == Curr;
              if constexpr (Versioned) {
                // Pred could be a recycled block mid-revival as an
                // unpublished chunk whose next happens to equal Curr;
                // writing through it would corrupt the reviver. Pin the
                // incarnation the route certified (birth read last).
                if (!Domain.validAt(Pred, G.version()))
                  return false;
              }
              return Linked;
            })) {
      stats::bump(stats::Counter::ChunkValidationAborts);
      return -1;
    }
    // Under Pred's lock with Pred->Next == Curr, Curr cannot be frozen
    // (its freezer must hold this same Pred lock), so acquiring it only
    // waits out single-chunk inserts/removes.
    bool FoundUnderLock = false;
    uint64_t OccAtAcquire = 0;
    if (!Curr->Lock.template acquireIfValidSince<Policy>(
            Curr, ChunkLock::InvalidVersion, [&] {
              if (Policy::readCheck(Curr->Marked,
                                    std::memory_order_acquire, Curr,
                                    MemField::Marked))
                return false;
              const uint64_t O =
                  Policy::readCheck(Curr->Occ, std::memory_order_acquire,
                                    &Curr->Occ, MemField::Marked);
              const int FoundHere = scanForCheck(Curr, O, Key);
              if constexpr (Versioned) {
                // Curr's anchor justified the placement at route time;
                // only that incarnation may answer for Key's range.
                if (!Domain.validAt(Curr, G.version()))
                  return false;
              }
              if (FoundHere >= 0) {
                FoundUnderLock = true;
                return false;
              }
              OccAtAcquire = O;
              return true;
            })) {
      Pred->Lock.template release<Policy>(Pred);
      if (FoundUnderLock)
        return 0;
      stats::bump(stats::Counter::ChunkValidationAborts);
      noteContention(Curr);
      return -1;
    }
    // Every structural-path lock acquisition samples the chunk's
    // population, so long-stable chunks keep reporting steady-state
    // occupancy even when the path below returns without freezing (the
    // freeze-time Occ equals this sample: Occ only changes under the
    // lock we now hold).
    stats::histogramAdd(
        stats::Histogram::ChunkOccupancy,
        static_cast<uint64_t>(std::popcount(OccAtAcquire)));
    const bool Hot = Adaptive && heatOf(Curr) >= HotSplitThreshold;
    const uint32_t FC =
        Policy::readCheck(Curr->FirstClean, std::memory_order_relaxed,
                          &Curr->FirstClean, MemField::Marked);
    if (FC < ChunkKeys && !Hot) {
      // A slot opened between our single-lock attempt and here.
      storeSlot(Curr, FC, Key);
      Curr->Lock.template release<Policy>(Curr);
      Pred->Lock.template release<Policy>(Pred);
      return 1;
    }
    // Freeze and replace. Gather the live keys plus Key, sorted.
    const uint64_t O = Policy::readCheck(
        Curr->Occ, std::memory_order_relaxed, &Curr->Occ, MemField::Marked);
    std::array<SetKey, ChunkKeys + 1> All;
    size_t Total = 0;
    uint64_t Bits = O;
    while (Bits) {
      const int I = std::countr_zero(Bits);
      Bits &= Bits - 1;
      std::atomic<SetKey> &Slot = Curr->Keys[static_cast<size_t>(I)];
      All[Total++] = Policy::readCheck(Slot, std::memory_order_relaxed,
                                       &Slot, MemField::Val);
    }
    All[Total++] = Key;
    std::sort(All.begin(), All.begin() + static_cast<ptrdiff_t>(Total));
    Chunk *NextC = Policy::readCheck(Curr->Next, std::memory_order_acquire,
                                     Curr, MemField::Next);
    Chunk *Replacement;
    if (Total <= ChunkKeys && !(Hot && Total >= 2)) {
      // Dead slots made room: one compacted copy. A hot chunk refuses
      // the compaction (unless it holds a single key) and splits below
      // instead — that is the adaptive small-K move.
      Replacement = buildChunk(rawAnchor(Curr), All.data(), Total, NextC);
      stats::bump(stats::Counter::ChunkCompactions);
    } else {
      // Genuinely full (or hot): split at the median; the upper half's
      // anchor is its own least key (strictly above the lower half's).
      const size_t Mid = Total / 2;
      Chunk *Upper = buildChunk(All[Mid], All.data() + Mid, Total - Mid,
                                NextC);
      Replacement = buildChunk(rawAnchor(Curr), All.data(), Mid, Upper);
      stats::bump(stats::Counter::ChunkSplits);
    }
    // Freeze: mark, then swing. Readers already inside Curr finish
    // against its immutable final content.
    Policy::write(Curr->Marked, true, std::memory_order_release, Curr,
                  MemField::Marked);
    Policy::write(Pred->Next, Replacement, std::memory_order_release, Pred,
                  MemField::Next);
    Curr->Lock.template release<Policy>(Curr);
    Pred->Lock.template release<Policy>(Pred);
    reclaim::domainRetire<Policy>(Domain, Curr);
    return 1;
  }

  /// Best-effort unlink of a chunk the caller just emptied: lock
  /// (pred, chunk) in list order, revalidate (still linked, still
  /// empty), mark and unlink. Any failed validation simply gives up —
  /// an empty unmarked chunk is legal and a later insert compacts it.
  void tryUnlinkEmpty(Chunk *Pred, Chunk *Curr, typename Reclaim::Guard &G) {
    (void)G;
    if (!Pred->Lock.template acquireIfValidSince<Policy>(
            Pred, ChunkLock::InvalidVersion, [&] {
              if (Policy::readCheck(Pred->Marked,
                                    std::memory_order_acquire, Pred,
                                    MemField::Marked))
                return false;
              const bool Linked =
                  Policy::readCheck(Pred->Next, std::memory_order_acquire,
                                    Pred, MemField::Next) == Curr;
              if constexpr (Versioned) {
                // Same hazard as structuralInsert: exclude a block that
                // was recycled into an unpublished chunk whose next
                // pointer coincidentally equals Curr.
                if (!Domain.validAt(Pred, G.version()))
                  return false;
              }
              return Linked;
            }))
      return;
    // No birth check on Curr even under VBR: with Pred certified live,
    // locked and linked to Curr, Curr is its genuine current successor
    // (unlinking it requires this same Pred lock). Whichever incarnation
    // that is, "successor of Pred with zero occupancy" is exactly the
    // state the unlink below is correct for.
    if (!Curr->Lock.template acquireIfValidSince<Policy>(
            Curr, ChunkLock::InvalidVersion, [&] {
              return Policy::readCheck(Curr->Occ,
                                       std::memory_order_acquire,
                                       &Curr->Occ, MemField::Marked) == 0;
            })) {
      Pred->Lock.template release<Policy>(Pred);
      return;
    }
    Chunk *NextC = Policy::readCheck(Curr->Next, std::memory_order_acquire,
                                     Curr, MemField::Next);
    stats::histogramAdd(stats::Histogram::ChunkOccupancy, 0);
    Policy::write(Curr->Marked, true, std::memory_order_release, Curr,
                  MemField::Marked);
    Policy::write(Pred->Next, NextC, std::memory_order_release, Pred,
                  MemField::Next);
    Curr->Lock.template release<Policy>(Curr);
    Pred->Lock.template release<Policy>(Pred);
    stats::bump(stats::Counter::ChunkUnlinks);
    reclaim::domainRetire<Policy>(Domain, Curr);
  }

  /// Advisory contention heat of a chunk (adaptive builds only). Read
  /// without any lock: the value only steers shape decisions, never
  /// correctness, so a stale read is harmless.
  uint32_t heatOf(const Chunk *C) const {
    if constexpr (!Adaptive) {
      (void)C;
      return 0;
    } else {
      return Policy::read(C->Heat, std::memory_order_acquire, &C->Heat,
                          MemField::Val);
    }
  }

  /// Records a validation abort against \p C with a single, non-looping
  /// CAS. A lost race simply drops the sample — heat is a lossy counter
  /// and under-counting only delays the hot-split decision. Saturates at
  /// 2x the threshold so a long-hot chunk's word stops being written.
  void noteContention(Chunk *C) {
    if constexpr (Adaptive) {
      uint32_t Seen = Policy::read(C->Heat, std::memory_order_acquire,
                                   &C->Heat, MemField::Val);
      if (Seen >= 2 * HotSplitThreshold)
        return;
      (void)Policy::casStrong(C->Heat, Seen, Seen + 1,
                              std::memory_order_acq_rel, &C->Heat,
                              MemField::Val);
    } else {
      (void)C;
    }
  }

  /// Best-effort merge of a cold, underfull chunk with its successor:
  /// lock (pred, chunk, next) in list order, revalidate that the merged
  /// population still fits one chunk, then freeze BOTH sources and swing
  /// pred to a single combined replacement anchored at Curr's anchor.
  /// Both marks precede the one swing, so each source is marked when
  /// last reachable (flow clause F6); two frozen-but-reachable chunks in
  /// between is legal — F5 only bounds unmarked holders per key. Any
  /// failed validation gives up: an underfull chunk is legal and a later
  /// remove retries.
  void tryMergeWithNext(Chunk *Pred, Chunk *Curr,
                        typename Reclaim::Guard &G) {
    (void)G;
    if (!Pred->Lock.template acquireIfValidSince<Policy>(
            Pred, ChunkLock::InvalidVersion, [&] {
              if (Policy::readCheck(Pred->Marked,
                                    std::memory_order_acquire, Pred,
                                    MemField::Marked))
                return false;
              const bool Linked =
                  Policy::readCheck(Pred->Next, std::memory_order_acquire,
                                    Pred, MemField::Next) == Curr;
              if constexpr (Versioned) {
                // Same hazard as tryUnlinkEmpty: exclude a block recycled
                // into an unpublished chunk whose next pointer
                // coincidentally equals Curr.
                if (!Domain.validAt(Pred, G.version()))
                  return false;
              }
              return Linked;
            })) {
      stats::bump(stats::Counter::ChunkValidationAborts);
      return;
    }
    // No birth check on Curr even under VBR (see tryUnlinkEmpty): with
    // Pred locked and linked to Curr, whichever incarnation Curr is,
    // "successor of Pred whose population is small" is exactly the state
    // the merge below is correct for.
    uint64_t OccCurr = 0;
    if (!Curr->Lock.template acquireIfValidSince<Policy>(
            Curr, ChunkLock::InvalidVersion, [&] {
              OccCurr = Policy::readCheck(Curr->Occ,
                                          std::memory_order_acquire,
                                          &Curr->Occ, MemField::Marked);
              // Same quarter-or-singleton rule as the trigger: a chunk
              // refilled past it since the probe no longer wants folding.
              const unsigned Pop =
                  static_cast<unsigned>(std::popcount(OccCurr));
              return Pop != 0 && (Pop == 1 || 4 * Pop <= ChunkKeys);
            })) {
      Pred->Lock.template release<Policy>(Pred);
      return;
    }
    stats::histogramAdd(
        stats::Histogram::ChunkOccupancy,
        static_cast<uint64_t>(std::popcount(OccCurr)));
    // Under Curr's lock its successor is stable (freezing it would need
    // this lock), so NextC is the genuine current neighbour.
    Chunk *NextC = Policy::readCheck(Curr->Next, std::memory_order_acquire,
                                     Curr, MemField::Next);
    if (NextC == Tail) {
      Curr->Lock.template release<Policy>(Curr);
      Pred->Lock.template release<Policy>(Pred);
      return;
    }
    uint64_t OccNext = 0;
    if (!NextC->Lock.template acquireIfValidSince<Policy>(
            NextC, ChunkLock::InvalidVersion, [&] {
              OccNext = Policy::readCheck(NextC->Occ,
                                          std::memory_order_acquire,
                                          &NextC->Occ, MemField::Marked);
              return static_cast<unsigned>(std::popcount(OccCurr)) +
                         static_cast<unsigned>(std::popcount(OccNext)) <=
                     ChunkKeys;
            })) {
      Curr->Lock.template release<Policy>(Curr);
      Pred->Lock.template release<Policy>(Pred);
      return;
    }
    stats::histogramAdd(
        stats::Histogram::ChunkOccupancy,
        static_cast<uint64_t>(std::popcount(OccNext)));
    // Gather both live sets under the locks; the validator bounded the
    // union to one chunk's capacity.
    std::array<SetKey, ChunkKeys> All;
    size_t Total = 0;
    for (Chunk *Src : {Curr, NextC}) {
      uint64_t Bits = Src == Curr ? OccCurr : OccNext;
      while (Bits) {
        const int I = std::countr_zero(Bits);
        Bits &= Bits - 1;
        std::atomic<SetKey> &Slot = Src->Keys[static_cast<size_t>(I)];
        All[Total++] = Policy::readCheck(Slot, std::memory_order_relaxed,
                                         &Slot, MemField::Val);
      }
    }
    std::sort(All.begin(), All.begin() + static_cast<ptrdiff_t>(Total));
    Chunk *NextOfN = Policy::readCheck(
        NextC->Next, std::memory_order_acquire, NextC, MemField::Next);
    Chunk *Replacement =
        buildChunk(rawAnchor(Curr), All.data(), Total, NextOfN);
    // Freeze both sources, then one swing excises the pair.
    Policy::write(Curr->Marked, true, std::memory_order_release, Curr,
                  MemField::Marked);
    Policy::write(NextC->Marked, true, std::memory_order_release, NextC,
                  MemField::Marked);
    Policy::write(Pred->Next, Replacement, std::memory_order_release, Pred,
                  MemField::Next);
    NextC->Lock.template release<Policy>(NextC);
    Curr->Lock.template release<Policy>(Curr);
    Pred->Lock.template release<Policy>(Pred);
    stats::bump(stats::Counter::ChunkMerges);
    reclaim::domainRetire<Policy>(Domain, Curr);
    reclaim::domainRetire<Policy>(Domain, NextC);
  }

  Chunk *Head;
  Chunk *Tail;
  /// Mutable so the const, read-only contains() can enter a read-side
  /// critical section.
  mutable Reclaim Domain;
};

} // namespace vbl

#endif // VBL_CORE_VBLCHUNKLIST_H
