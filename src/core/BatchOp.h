//===- core/BatchOp.h - One operation of a submitted batch ---------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unit of batched submission shared by the list layer (which
/// applies sorted batches in one amortized traversal), the type-erased
/// ConcurrentSet interface, and the service front-end (which queues and
/// flat-combines these records).
///
//===----------------------------------------------------------------------===//

#ifndef VBL_CORE_BATCHOP_H
#define VBL_CORE_BATCHOP_H

#include "core/SetConfig.h"
#include "sync/Policy.h"

#include <cstdint>
#include <vector>

namespace vbl {

/// One operation of a submitted batch. `Result` is written by the set
/// that applies the batch; `Tag` is opaque to every backend and carried
/// through untouched (the service layer stores enqueue timestamps in
/// it).
///
/// RangeQuery ops scan [Key, KeyHi] and append the keys found to
/// `*Keys` (ascending within one backend visit); `Result` reports
/// whether the scan returned at least one key. `KeyHi`/`Keys` are
/// ignored by the point ops.
struct BatchOp {
  SetOp Op = SetOp::Contains;
  SetKey Key = 0;
  SetKey KeyHi = 0;
  bool Result = false;
  uint64_t Tag = 0;
  std::vector<SetKey> *Keys = nullptr;
};

} // namespace vbl

#endif // VBL_CORE_BATCHOP_H
