//===- core/ValueAwareTryLock.h - The paper's §3.1 locking primitive -----===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The value-aware try-lock of §3.1. The primitive couples a CAS-based
/// lock acquisition with a *validation* executed under the lock: if the
/// validation fails the lock is released immediately and the caller is
/// told to re-traverse. The two concrete validations of the paper —
/// lockNextAt (the successor is still the expected node) and
/// lockNextAtValue (the successor still carries the expected *value*) —
/// are built on the generic acquireIfValid() by the VBL node.
///
/// What makes the lock "value-aware" is the second validation: it
/// tolerates the successor *node* having been replaced as long as the
/// successor *value* is unchanged, which is precisely the schedule class
/// the Lazy Linked List needlessly rejects.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_CORE_VALUEAWARETRYLOCK_H
#define VBL_CORE_VALUEAWARETRYLOCK_H

#include "support/ThreadSafety.h"
#include "sync/Policy.h"
#include "sync/SpinLocks.h"

namespace vbl {

/// Wraps a spinlock with the acquire-validate-or-release protocol. All
/// lock traffic is routed through the access Policy so the deterministic
/// scheduler can observe blocking and release.
template <class LockT = TasLock>
class VBL_CAPABILITY("mutex") ValueAwareTryLock {
public:
  ValueAwareTryLock() = default;
  ValueAwareTryLock(const ValueAwareTryLock &) = delete;
  ValueAwareTryLock &operator=(const ValueAwareTryLock &) = delete;

  /// Acquires the lock, then evaluates \p Validate under it. On success
  /// the lock is *kept* and true is returned; on validation failure the
  /// lock is released and false is returned, telling the caller that the
  /// schedule it observed is gone and it must re-traverse.
  //
  // Suppressed body: the wrapper capability is realized by the embedded
  // Inner lock, and the analysis has no way to express that the two
  // capabilities alias (acquiring Inner IS acquiring this).
  template <class Policy, class ValidateFn>
  bool acquireIfValid(const void *NodeId, ValidateFn &&Validate)
      VBL_TRY_ACQUIRE(true) VBL_NO_THREAD_SAFETY_ANALYSIS {
    Policy::lockAcquire(Inner, NodeId);
    if (Validate())
      return true;
    Policy::lockRelease(Inner, NodeId);
    return false;
  }

  /// Releases a lock previously kept by acquireIfValid().
  //
  // Suppressed body: releases the aliased Inner capability (see
  // acquireIfValid).
  template <class Policy>
  void release(const void *NodeId)
      VBL_RELEASE() VBL_NO_THREAD_SAFETY_ANALYSIS {
    Policy::lockRelease(Inner, NodeId);
  }

  /// Observability for tests.
  bool isLocked() const { return Inner.isLocked(); }

private:
  LockT Inner;
};

} // namespace vbl

#endif // VBL_CORE_VALUEAWARETRYLOCK_H
