//===- analysis/RaceDetector.h - Vector-clock happens-before analysis ----===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The happens-before race detector. It replays an episode's
/// AccessRecord stream (already in global execution order — the
/// deterministic scheduler serializes steps) and maintains:
///
///  - one vector clock per thread (advanced on every record),
///  - one clock per lock: acquire joins the lock clock into the thread,
///    release joins the thread clock into the lock,
///  - one sync clock per (node, field) location: a release-class write
///    joins the writer's clock into it, an acquire-class read joins it
///    into the reader. Joining (rather than replacing) over-approximates
///    the C++ release-sequence rules, which can only hide races, never
///    invent them — the right bias for a checker whose positives are
///    asserted exact by tests.
///
/// Two accesses race iff they touch the same (node, field), at least
/// one writes, at least one is *plain* (relaxed / non-atomic — see
/// AccessRecord::isPlain), they come from different threads, and
/// neither happens-before the other. Because records are processed in
/// schedule order, "unordered" reduces to an epoch test: prior access
/// A by thread u races with current access B by thread t iff
/// C_t[u] < epoch(A).
///
//===----------------------------------------------------------------------===//

#ifndef VBL_ANALYSIS_RACEDETECTOR_H
#define VBL_ANALYSIS_RACEDETECTOR_H

#include "analysis/AccessLog.h"
#include "analysis/RaceReport.h"
#include "analysis/VectorClock.h"

#include <vector>

namespace vbl {
namespace analysis {

class RaceDetector {
public:
  /// Analyses \p Records (one episode, in execution order) and returns
  /// every race found, in order of the second access. \p Choices is the
  /// episode's scheduler-choice sequence; each report carries the
  /// prefix that exposes its race. Duplicate site pairs are reported
  /// once per episode.
  static std::vector<RaceReport>
  detect(const std::vector<AccessRecord> &Records,
         const std::vector<unsigned> &Choices = {});
};

} // namespace analysis
} // namespace vbl

#endif // VBL_ANALYSIS_RACEDETECTOR_H
