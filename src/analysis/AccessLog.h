//===- analysis/AccessLog.h - Per-episode shared-memory access log -------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The input stream of the happens-before race detector. The event
/// trace the StepScheduler already records (sched/Event.h) deliberately
/// abstracts away the C++ memory orders — schedules compare against the
/// sequential spec LL, which has none. Race detection needs exactly the
/// opposite: the *synchronization strength* of every access and its
/// source location, and nothing about LL. AnalyzedPolicy
/// (sched/AnalyzedPolicy.h) therefore appends a parallel stream of
/// AccessRecords here while delegating the scheduling behaviour to the
/// TracedPolicy machinery.
///
/// Appends are not internally synchronized: records are only written by
/// the thread currently holding the step token of the deterministic
/// scheduler, which serializes them exactly like the event trace
/// (StepScheduler::Worker::record). The log is a process-wide singleton
/// because policy hooks are static.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_ANALYSIS_ACCESSLOG_H
#define VBL_ANALYSIS_ACCESSLOG_H

#include "sync/Policy.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace vbl {
namespace analysis {

/// What one record describes. Memory accesses carry a memory order;
/// lock operations carry the lock identity; NodeInit models the
/// constructor's plain writes to a freshly allocated node (Val and the
/// initial Next), which race with any reader not ordered after the
/// node's publication.
enum class RecordKind : uint8_t {
  Read,        ///< Atomic load (order in Order).
  Write,       ///< Atomic store (order in Order).
  RmwSuccess,  ///< Successful CAS: atomic read-modify-write.
  RmwFail,     ///< Failed CAS: pure load with the failure order.
  PlainRead,   ///< Non-atomic read of an immutable field (readValue).
  NodeInit,    ///< Plain initialising writes of a new node's fields.
  LockAcquire, ///< Lock taken (sync edge: lock clock -> thread).
  LockRelease, ///< Lock dropped (sync edge: thread -> lock clock).
};

const char *recordKindName(RecordKind Kind);

/// One logged access or synchronization operation.
struct AccessRecord {
  RecordKind Kind = RecordKind::Read;
  uint32_t Thread = 0;
  uint32_t OpIndex = 0;               ///< Per-thread operation counter.
  SetOp Op = SetOp::Contains;         ///< Operation performing the access.
  MemField Field = MemField::Val;     ///< Memory accesses only.
  const void *Node = nullptr;         ///< Node (accesses) / lock (lock ops).
  std::memory_order Order = std::memory_order_relaxed;
  const char *File = "";              ///< Call site (std::source_location).
  uint32_t Line = 0;
  uint32_t Step = 0;                  ///< Index in the episode's log.

  bool isMemoryAccess() const {
    return Kind != RecordKind::LockAcquire && Kind != RecordKind::LockRelease;
  }
  bool isWrite() const {
    return Kind == RecordKind::Write || Kind == RecordKind::RmwSuccess ||
           Kind == RecordKind::NodeInit;
  }
  /// Plain in the algorithmic sense: an access the implementation
  /// declared to need no synchronization (relaxed atomics, non-atomic
  /// field reads, constructor writes). A race must involve at least one
  /// plain access — acquire/release accesses to the same location are
  /// the synchronization itself and never race with each other.
  bool isPlain() const {
    if (Kind == RecordKind::PlainRead || Kind == RecordKind::NodeInit)
      return true;
    if (!isMemoryAccess())
      return false;
    return Order == std::memory_order_relaxed;
  }
  /// The store half publishes (release or stronger).
  bool isReleaseWrite() const {
    return (Kind == RecordKind::Write || Kind == RecordKind::RmwSuccess) &&
           (Order == std::memory_order_release ||
            Order == std::memory_order_acq_rel ||
            Order == std::memory_order_seq_cst);
  }
  /// The load half synchronizes (acquire or stronger). Failed CASes are
  /// loads performed with the hard-wired acquire failure order of the
  /// access policies.
  bool isAcquireRead() const {
    if (Kind == RecordKind::RmwFail)
      return true;
    if (Kind == RecordKind::Read || Kind == RecordKind::RmwSuccess)
      return Order == std::memory_order_acquire ||
             Order == std::memory_order_acq_rel ||
             Order == std::memory_order_seq_cst ||
             Order == std::memory_order_consume;
    return false;
  }

  /// "file.h:123 T0 insert#0 write Next @0x..".
  std::string toString() const;
};

/// The per-episode record stream. enable()/disable() bracket an episode
/// (the InterleavingExplorer drives this); while disabled, AnalyzedPolicy
/// logs nothing and costs one branch per access.
class AccessLog {
public:
  static AccessLog &instance();

  /// Clears the log and starts recording.
  void enable();
  /// Stops recording (records are kept until the next enable()).
  void disable();
  bool enabled() const { return Enabled.load(std::memory_order_acquire); }

  void append(AccessRecord Record) {
    if (!enabled())
      return;
    Record.Step = static_cast<uint32_t>(Records.size());
    Records.push_back(Record);
  }

  const std::vector<AccessRecord> &records() const { return Records; }
  size_t size() const { return Records.size(); }

private:
  AccessLog() = default;

  std::atomic<bool> Enabled{false};
  std::vector<AccessRecord> Records;
};

} // namespace analysis
} // namespace vbl

#endif // VBL_ANALYSIS_ACCESSLOG_H
