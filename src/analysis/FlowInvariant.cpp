//===- analysis/FlowInvariant.cpp - Flow/keyset oracle implementation ----===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "analysis/FlowInvariant.h"

#include "stats/Stats.h"

#include <sstream>

namespace vbl {
namespace analysis {

const char *flowClauseName(FlowClause Clause) {
  switch (Clause) {
  case FlowClause::Shape:
    return "F1.Shape";
  case FlowClause::Sentinels:
    return "F2.Sentinels";
  case FlowClause::Sorted:
    return "F3.Sorted";
  case FlowClause::ChunkInterval:
    return "F4.ChunkInterval";
  case FlowClause::UniqueFlow:
    return "F5.UniqueFlow";
  case FlowClause::UnlinkedUnmarked:
    return "F6.UnlinkedUnmarked";
  case FlowClause::MarkedLingers:
    return "F7.MarkedLingers";
  }
  return "F?.Unknown";
}

std::string FlowReport::toString() const {
  std::ostringstream Out;
  Out << "flow invariant " << flowClauseName(Clause) << " violated at step "
      << Step << " on node " << Node << " (key " << Key << "):\n  "
      << Detail << "\n  reproducing schedule prefix (thread per step): [";
  for (size_t I = 0; I != SchedulePrefix.size(); ++I)
    Out << (I ? " " : "") << SchedulePrefix[I];
  Out << "]";
  return Out.str();
}

void FlowChecker::report(FlowClause Clause, const void *Node, SetKey Key,
                         std::string Detail,
                         const std::vector<unsigned> &Choices) {
  if (!Reported.insert({Clause, Node}).second)
    return;
  FlowReport R;
  R.Clause = Clause;
  R.Node = Node;
  R.Key = Key;
  R.Detail = std::move(Detail);
  R.Step = Step;
  R.SchedulePrefix = Choices;
  Reports.push_back(std::move(R));
}

std::vector<FlowNodeDesc> FlowChecker::snapshot() {
  stats::bump(stats::Counter::AnalysisFlowChecks);
  return View.Describe();
}

void FlowChecker::onStep(const std::vector<unsigned> &Choices) {
  if (!View)
    return;
  // The first call is the pre-step baseline (step 0); later calls land
  // after each Sched.step, so the step index is the prefix length.
  if (SawBaseline)
    Step = Choices.size();
  SawBaseline = true;
  checkStep(snapshot(), Choices);
}

void FlowChecker::onEpisodeEnd(const std::vector<unsigned> &Choices) {
  if (!View)
    return;
  Step = Choices.size();
  checkEnd(snapshot(), Choices);
}

void FlowChecker::checkStep(const std::vector<FlowNodeDesc> &Chain,
                            const std::vector<unsigned> &Choices) {
  // F1 Shape: non-empty, bounded, tail present. An empty snapshot or a
  // cap-length walk that never reached MaxSentinel is a broken chain.
  if (Chain.empty()) {
    report(FlowClause::Shape, nullptr, 0, "head walk found no nodes",
           Choices);
    return;
  }
  if (Chain.back().Key != MaxSentinel) {
    std::ostringstream D;
    if (Chain.size() >= FlowWalkCap)
      D << "walk hit the " << FlowWalkCap
        << "-hop cap without reaching the tail sentinel (cycle or "
           "unbounded chain)";
    else
      D << "walk ended at key " << Chain.back().Key
        << " instead of the tail sentinel";
    report(FlowClause::Shape, Chain.back().Node, Chain.back().Key, D.str(),
           Choices);
    return; // Later clauses assume a well-formed head..tail chain.
  }

  // F2 Sentinels.
  const FlowNodeDesc &Head = Chain.front();
  const FlowNodeDesc &Tail = Chain.back();
  if (Head.Key != MinSentinel)
    report(FlowClause::Sentinels, Head.Node, Head.Key,
           "head key is not MinSentinel", Choices);
  if (Head.Marked)
    report(FlowClause::Sentinels, Head.Node, Head.Key, "head is marked",
           Choices);
  if (Tail.Marked)
    report(FlowClause::Sentinels, Tail.Node, Tail.Key, "tail is marked",
           Choices);
  if (View.IsChunked) {
    if (!Head.Slots.empty())
      report(FlowClause::Sentinels, Head.Node, Head.Key,
             "head sentinel chunk publishes occupied slots", Choices);
    if (!Tail.Slots.empty())
      report(FlowClause::Sentinels, Tail.Node, Tail.Key,
             "tail sentinel chunk publishes occupied slots", Choices);
  }

  // F3 Sorted: strictly increasing keys/anchors over the whole chain,
  // marked nodes included (inserts only link between verified-adjacent
  // nodes, so even a logically deleted node keeps its place).
  for (size_t I = 1; I < Chain.size(); ++I) {
    if (Chain[I - 1].Key >= Chain[I].Key) {
      std::ostringstream D;
      D << (View.IsChunked ? "anchor " : "key ") << Chain[I].Key
        << " does not exceed predecessor's " << Chain[I - 1].Key;
      report(FlowClause::Sorted, Chain[I].Node, Chain[I].Key, D.str(),
             Choices);
    }
  }

  // F4 ChunkInterval (per-step part) + F5 UniqueFlow. Flow of a user
  // key = the set of unmarked reachable nodes/slots holding it; the
  // per-step clause is |flow(k)| <= 1.
  std::map<SetKey, const void *> FlowTarget;
  auto capture = [&](const FlowNodeDesc &N, SetKey Key) {
    if (!isUserKey(Key))
      return;
    auto [It, Fresh] = FlowTarget.insert({Key, N.Node});
    if (!Fresh && It->second != N.Node) {
      std::ostringstream D;
      D << "key " << Key << " flows to two unmarked nodes (" << It->second
        << " and " << N.Node << ")";
      report(FlowClause::UniqueFlow, N.Node, Key, D.str(), Choices);
    }
  };
  for (size_t I = 0; I < Chain.size(); ++I) {
    const FlowNodeDesc &N = Chain[I];
    if (N.IsChunk) {
      const SetKey NextAnchor =
          I + 1 < Chain.size() ? Chain[I + 1].Key : MaxSentinel;
      std::set<SetKey> SlotKeys;
      for (const FlowSlot &Slot : N.Slots) {
        if (Slot.Index >= N.Capacity) {
          std::ostringstream D;
          D << "occupied slot index " << Slot.Index
            << " outside chunk capacity " << N.Capacity;
          report(FlowClause::ChunkInterval, N.Node, Slot.Key, D.str(),
                 Choices);
        }
        if (Slot.Key < N.Key || Slot.Key >= NextAnchor) {
          std::ostringstream D;
          D << "slot " << Slot.Index << " key " << Slot.Key
            << " outside chunk keyset [" << N.Key << ", " << NextAnchor
            << ")";
          report(FlowClause::ChunkInterval, N.Node, Slot.Key, D.str(),
                 Choices);
        }
        if (!SlotKeys.insert(Slot.Key).second) {
          std::ostringstream D;
          D << "key " << Slot.Key << " occupies two slots of one chunk";
          report(FlowClause::ChunkInterval, N.Node, Slot.Key, D.str(),
                 Choices);
        }
        if (!N.Marked)
          capture(N, Slot.Key);
      }
    } else if (!N.Marked) {
      capture(N, N.Key);
    }
  }

  // F6 UnlinkedUnmarked: audit tracked nodes that left the reachable
  // set, then refresh the tracking map from this snapshot. Markless
  // backends (Optimistic, hand-over-hand) unlink live nodes by design
  // — and may free them immediately — so they are never tracked.
  if (!View.HasMark)
    return;
  std::set<const void *> Reachable;
  for (const FlowNodeDesc &N : Chain)
    Reachable.insert(N.Node);
  for (auto It = LastMarked.begin(); It != LastMarked.end();) {
    if (Reachable.count(It->first)) {
      ++It;
      continue;
    }
    if (!It->second.second)
      report(FlowClause::UnlinkedUnmarked, It->first, It->second.first,
             "node became unreachable while still unmarked "
             "(unlink-before-mark)",
             Choices);
    It = LastMarked.erase(It);
  }
  for (const FlowNodeDesc &N : Chain)
    LastMarked[N.Node] = {N.Key, N.Marked};
}

void FlowChecker::checkEnd(const std::vector<FlowNodeDesc> &Chain,
                           const std::vector<unsigned> &Choices) {
  // Re-run the per-step clauses on the final state too: an episode's
  // last step is a step like any other.
  checkStep(Chain, Choices);

  // F7 MarkedLingers: all operations have returned, so every logical
  // delete must have completed its unlink (mark <=> no-flow holds
  // exactly at quiescence). Harris-style backends legally leave marked
  // nodes for later traversals to snip.
  if (View.HasMark && !View.MarkedMayLinger) {
    for (const FlowNodeDesc &N : Chain)
      if (N.Marked)
        report(FlowClause::MarkedLingers, N.Node, N.Key,
               "node still marked and reachable at episode end", Choices);
  }

  // F4 quiescent part: Occ confined below FirstClean. Between
  // storeSlot's Occ publish and its FirstClean advance this is
  // transiently false, so it is only a quiescent-state clause.
  if (View.IsChunked) {
    for (const FlowNodeDesc &N : Chain) {
      if (!N.IsChunk)
        continue;
      if (N.FirstClean > N.Capacity) {
        std::ostringstream D;
        D << "FirstClean " << N.FirstClean << " exceeds capacity "
          << N.Capacity;
        report(FlowClause::ChunkInterval, N.Node, N.Key, D.str(), Choices);
      }
      for (const FlowSlot &Slot : N.Slots) {
        if (Slot.Index >= N.FirstClean) {
          std::ostringstream D;
          D << "occupied slot " << Slot.Index
            << " at or above FirstClean " << N.FirstClean
            << " at episode end";
          report(FlowClause::ChunkInterval, N.Node, Slot.Key, D.str(),
                 Choices);
        }
      }
    }
  }
}

} // namespace analysis
} // namespace vbl
