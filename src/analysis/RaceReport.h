//===- analysis/RaceReport.h - Race diagnostics --------------------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A RaceReport names a pair of conflicting shared-memory accesses that
/// the happens-before analysis found unordered: the two access sites
/// (file:line, thread, operation), the node field they collided on, and
/// the scheduler-choice prefix that exposes the race (feed it back into
/// InterleavingExplorer::run to reproduce the interleaving).
///
//===----------------------------------------------------------------------===//

#ifndef VBL_ANALYSIS_RACEREPORT_H
#define VBL_ANALYSIS_RACEREPORT_H

#include "analysis/AccessLog.h"

#include <string>
#include <vector>

namespace vbl {
namespace analysis {

struct RaceReport {
  AccessRecord First;  ///< The earlier access in the explored schedule.
  AccessRecord Second; ///< The later, conflicting access.
  /// Scheduler choices (thread granted per step) up to and including
  /// the step of Second: replaying this prefix re-exposes the race.
  std::vector<unsigned> SchedulePrefix;

  /// Multi-line human-readable diagnostic.
  std::string toString() const;

  /// True iff both access sites match (same file, line, field and
  /// kind), ignoring schedule/thread specifics. Tests use this to
  /// assert *which* race was found without depending on exploration
  /// order.
  bool sameSites(const RaceReport &Other) const;
};

} // namespace analysis
} // namespace vbl

#endif // VBL_ANALYSIS_RACEREPORT_H
