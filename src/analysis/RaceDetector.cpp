//===- analysis/RaceDetector.cpp - Vector-clock happens-before analysis --===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "analysis/RaceDetector.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <sstream>
#include <utility>

using namespace vbl;
using namespace vbl::analysis;

namespace {

/// A past access stored per location. The epoch (the owning thread's
/// own clock component at access time) is all the happens-before test
/// needs; the record index recovers full diagnostics.
struct PriorAccess {
  uint32_t Thread;
  uint64_t Epoch;
  bool Write;
  bool Plain;
  size_t RecordIndex;
};

struct LocationState {
  /// Accumulated release clocks: everything an acquire reader of this
  /// location is ordered after.
  VectorClock SyncClock;
  std::vector<PriorAccess> History;
};

using LocationKey = std::pair<const void *, MemField>;

bool sameSite(const AccessRecord &A, const AccessRecord &B) {
  return A.Line == B.Line && A.Kind == B.Kind && A.Field == B.Field &&
         std::strcmp(A.File, B.File) == 0;
}

} // namespace

std::string RaceReport::toString() const {
  std::ostringstream Out;
  Out << "data race on node " << First.Node << " field ";
  switch (First.Field) {
  case MemField::Val:
    Out << "Val";
    break;
  case MemField::Next:
    Out << "Next";
    break;
  case MemField::Marked:
    Out << "Marked";
    break;
  case MemField::Lock:
    Out << "Lock";
    break;
  case MemField::Epoch:
    Out << "Epoch";
    break;
  }
  Out << ":\n  first:  " << First.toString()
      << "\n  second: " << Second.toString()
      << "\n  exposing schedule prefix (thread per step): [";
  for (size_t I = 0; I != SchedulePrefix.size(); ++I)
    Out << (I ? " " : "") << SchedulePrefix[I];
  Out << "]\n";
  return Out.str();
}

bool RaceReport::sameSites(const RaceReport &Other) const {
  return (sameSite(First, Other.First) && sameSite(Second, Other.Second)) ||
         (sameSite(First, Other.Second) && sameSite(Second, Other.First));
}

std::vector<RaceReport>
RaceDetector::detect(const std::vector<AccessRecord> &Records,
                     const std::vector<unsigned> &Choices) {
  std::vector<RaceReport> Races;
  std::vector<VectorClock> ThreadClocks;
  std::map<const void *, VectorClock> LockClocks;
  std::map<LocationKey, LocationState> Locations;

  auto clockOf = [&](uint32_t Thread) -> VectorClock & {
    if (ThreadClocks.size() <= Thread)
      ThreadClocks.resize(Thread + 1);
    return ThreadClocks[Thread];
  };

  for (size_t Index = 0; Index != Records.size(); ++Index) {
    const AccessRecord &R = Records[Index];
    VectorClock &C = clockOf(R.Thread);

    if (R.Kind == RecordKind::LockAcquire) {
      C.join(LockClocks[R.Node]);
      C.tick(R.Thread);
      continue;
    }
    if (R.Kind == RecordKind::LockRelease) {
      LockClocks[R.Node].join(C);
      C.tick(R.Thread);
      continue;
    }

    LocationState &Loc = Locations[{R.Node, R.Field}];

    // Synchronizing load: ordered after every release-class write this
    // location has absorbed. Applied before the conflict check — an
    // acquire read of a release store is NOT a race with it.
    if (R.isAcquireRead())
      C.join(Loc.SyncClock);

    for (const PriorAccess &P : Loc.History) {
      if (P.Thread == R.Thread)
        continue;
      if (!P.Write && !R.isWrite())
        continue;
      if (!P.Plain && !R.isPlain())
        continue;
      if (C.get(P.Thread) >= P.Epoch)
        continue; // Prior access happens-before this one.
      RaceReport Report;
      Report.First = Records[P.RecordIndex];
      Report.Second = R;
      // The whole episode's choice sequence: deterministic replay of it
      // through InterleavingExplorer::run re-exposes the race. (The
      // race manifests strictly before the sequence ends; choices are
      // scheduler steps, not log records, so no tighter truncation is
      // available here.)
      Report.SchedulePrefix = Choices;
      const bool Duplicate =
          std::any_of(Races.begin(), Races.end(), [&](const RaceReport &S) {
            return S.sameSites(Report);
          });
      if (!Duplicate)
        Races.push_back(std::move(Report));
    }

    C.tick(R.Thread);
    Loc.History.push_back({R.Thread, C.get(R.Thread), R.isWrite(),
                           R.isPlain(), Index});

    // Publishing store: future acquire readers of this location are
    // ordered after everything this thread has done (including this
    // very write, thanks to the tick above).
    if (R.isReleaseWrite())
      Loc.SyncClock.join(C);
  }
  return Races;
}
