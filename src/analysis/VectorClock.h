//===- analysis/VectorClock.h - Happens-before vector clocks -------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plain vector clocks for the happens-before race detector. One clock
/// per logical thread, per lock and per synchronizing memory location;
/// the component VC[t] counts the accesses thread t has performed. The
/// detector only ever asks one question — "is access A ordered before
/// the current point of thread t?" — which reduces to a scalar
/// comparison against A's epoch (its thread's own component at the time
/// of the access), so individual accesses never store a full clock.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_ANALYSIS_VECTORCLOCK_H
#define VBL_ANALYSIS_VECTORCLOCK_H

#include <cstdint>
#include <string>
#include <vector>

namespace vbl {
namespace analysis {

class VectorClock {
public:
  VectorClock() = default;
  explicit VectorClock(unsigned Threads) : Components(Threads, 0) {}

  /// Component for \p Thread; zero for threads never seen.
  uint64_t get(unsigned Thread) const {
    return Thread < Components.size() ? Components[Thread] : 0;
  }

  void set(unsigned Thread, uint64_t Value) {
    grow(Thread + 1);
    Components[Thread] = Value;
  }

  /// Advances \p Thread's own component (one more event performed).
  void tick(unsigned Thread) {
    grow(Thread + 1);
    ++Components[Thread];
  }

  /// Pointwise maximum: after join(O), everything ordered before O is
  /// also ordered before this clock.
  void join(const VectorClock &Other) {
    grow(static_cast<unsigned>(Other.Components.size()));
    for (size_t I = 0; I != Other.Components.size(); ++I)
      if (Other.Components[I] > Components[I])
        Components[I] = Other.Components[I];
  }

  /// True iff every component of this clock is <= the corresponding
  /// component of \p Other (this point happens-before-or-equals Other).
  bool lessOrEqual(const VectorClock &Other) const {
    for (size_t I = 0; I != Components.size(); ++I)
      if (Components[I] > Other.get(static_cast<unsigned>(I)))
        return false;
    return true;
  }

  void clear() { Components.clear(); }
  bool empty() const {
    for (uint64_t C : Components)
      if (C != 0)
        return false;
    return true;
  }

  std::string toString() const {
    std::string Out = "[";
    for (size_t I = 0; I != Components.size(); ++I) {
      if (I)
        Out += " ";
      Out += std::to_string(Components[I]);
    }
    return Out + "]";
  }

private:
  void grow(unsigned Threads) {
    if (Components.size() < Threads)
      Components.resize(Threads, 0);
  }

  std::vector<uint64_t> Components;
};

} // namespace analysis
} // namespace vbl

#endif // VBL_ANALYSIS_VECTORCLOCK_H
