//===- analysis/FlowView.h - Heap-snapshot hook for the flow oracle ------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bridge between a list backend and the flow-invariant checker
/// (analysis/FlowInvariant.h). A backend that opts in exposes
/// `flowView()` returning a FlowView: a closure that walks the
/// reachable chain from the head sentinel and describes every node (or
/// chunk) it finds, plus the traits the checker needs to pick the right
/// clause set for that algorithm.
///
/// The Describe closure runs *between* scheduler steps, while every
/// worker thread is parked at a policy yield point, so plain relaxed
/// loads are race-free and — critically — scheduler-invisible: the
/// snapshot must not perturb the interleaving being explored. Backends
/// therefore describe themselves with raw `.load(std::memory_order_
/// relaxed)` on their atomics, never through their Policy.
///
/// Memory-safety contract: the checker may follow pointers it read one
/// step earlier only through descriptions it cached while the node was
/// reachable; it never dereferences an unreachable node. Flow-checked
/// episodes still run under reclaim::LeakyDomain so that even the
/// Describe walk racing an unlink (impossible under the step scheduler,
/// but cheap to be safe about) cannot touch freed memory.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_ANALYSIS_FLOWVIEW_H
#define VBL_ANALYSIS_FLOWVIEW_H

#include "core/SetConfig.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace vbl {
namespace analysis {

/// Bound on the Describe walk: a corrupted chain (cycle, lost tail)
/// must terminate the snapshot, not the test binary. Far above any
/// scenario's node count; hitting it reads as a Shape violation.
inline constexpr size_t FlowWalkCap = size_t(1) << 12;

/// One occupied slot of a chunk node: its index in the key array and
/// the key it publishes.
struct FlowSlot {
  uint32_t Index = 0;
  SetKey Key = 0;
};

/// Snapshot of one reachable node. For flat lists only Node/Key/Marked
/// are meaningful; chunked backends set IsChunk and fill the slot and
/// layout fields (Key then holds the chunk's immutable min-key anchor).
struct FlowNodeDesc {
  const void *Node = nullptr;
  SetKey Key = 0;
  bool Marked = false;
  bool IsChunk = false;
  /// First never-written slot index (chunked backends only).
  uint32_t FirstClean = 0;
  /// Slots per chunk (chunked backends only).
  uint32_t Capacity = 0;
  /// Occupied slots, in index order (chunked backends only).
  std::vector<FlowSlot> Slots;
};

/// A backend's self-description for the flow checker. Default-
/// constructed (no Describe closure) means "not flow-checkable" and
/// disables the checker for the episode.
struct FlowView {
  /// Walks head..tail and describes each reachable node. Must use
  /// scheduler-invisible relaxed loads and stop at FlowWalkCap hops.
  std::function<std::vector<FlowNodeDesc>()> Describe;

  /// The algorithm carries a logical-deletion mark (clause F6/F7
  /// apply). False for Optimistic and hand-over-hand lists, whose
  /// removals unlink without marking by design — and whose unlinked
  /// nodes must consequently never be tracked (hand-over-hand frees
  /// them immediately).
  bool HasMark = true;

  /// Marked nodes may legally stay reachable after the removing
  /// operation returns (Harris / Harris-Michael delegated unlinks), so
  /// the episode-end "no reachable marked node" clause is skipped.
  bool MarkedMayLinger = false;

  /// Nodes are sorted chunks: keyset-interval clauses (F4) apply and
  /// Key is the chunk anchor.
  bool IsChunked = false;

  explicit operator bool() const { return static_cast<bool>(Describe); }
};

} // namespace analysis
} // namespace vbl

#endif // VBL_ANALYSIS_FLOWVIEW_H
