//===- analysis/AccessLog.cpp - Per-episode access log -------------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "analysis/AccessLog.h"

#include <cstring>
#include <sstream>

using namespace vbl;
using namespace vbl::analysis;

const char *vbl::analysis::recordKindName(RecordKind Kind) {
  switch (Kind) {
  case RecordKind::Read:
    return "read";
  case RecordKind::Write:
    return "write";
  case RecordKind::RmwSuccess:
    return "cas";
  case RecordKind::RmwFail:
    return "cas-fail";
  case RecordKind::PlainRead:
    return "plain-read";
  case RecordKind::NodeInit:
    return "node-init";
  case RecordKind::LockAcquire:
    return "lock-acquire";
  case RecordKind::LockRelease:
    return "lock-release";
  }
  return "?";
}

static const char *fieldName(MemField Field) {
  switch (Field) {
  case MemField::Val:
    return "Val";
  case MemField::Next:
    return "Next";
  case MemField::Marked:
    return "Marked";
  case MemField::Lock:
    return "Lock";
  case MemField::Epoch:
    return "Epoch";
  }
  return "?";
}

static const char *orderName(std::memory_order Order) {
  switch (Order) {
  case std::memory_order_relaxed:
    return "relaxed";
  case std::memory_order_consume:
    return "consume";
  case std::memory_order_acquire:
    return "acquire";
  case std::memory_order_release:
    return "release";
  case std::memory_order_acq_rel:
    return "acq_rel";
  case std::memory_order_seq_cst:
    return "seq_cst";
  }
  return "?";
}

static const char *baseName(const char *Path) {
  if (const char *Slash = std::strrchr(Path, '/'))
    return Slash + 1;
  return Path;
}

std::string AccessRecord::toString() const {
  std::ostringstream Out;
  Out << baseName(File) << ":" << Line << "  T" << Thread << " "
      << setOpName(Op) << "#" << OpIndex << " " << recordKindName(Kind);
  if (isMemoryAccess()) {
    Out << " " << fieldName(Field);
    if (Kind != RecordKind::PlainRead && Kind != RecordKind::NodeInit)
      Out << "(" << orderName(Order) << ")";
  }
  Out << " @" << Node << " (access #" << Step << ")";
  return Out.str();
}

AccessLog &AccessLog::instance() {
  static AccessLog Log;
  return Log;
}

void AccessLog::enable() {
  Records.clear();
  Enabled.store(true, std::memory_order_release);
}

void AccessLog::disable() {
  Enabled.store(false, std::memory_order_release);
}
