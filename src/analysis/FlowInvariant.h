//===- analysis/FlowInvariant.h - Plankton-style flow/keyset oracle ------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flow-invariant checker: at every step of every explored
/// interleaving it re-derives node-local flow from the reachable heap
/// snapshot (analysis/FlowView.h) and asserts the keyset/flow clauses
/// the paper's correctness argument rests on — the same invariants the
/// plankton verifier states via `@outflow` / `_flow` (see the
/// OptimisticSet exemplar in SNIPPETS.md and DESIGN.md "Flow/keyset
/// invariant oracle").
///
/// Clause catalogue (F-numbers referenced by tests and DESIGN.md):
///
///   F1 Shape            walk from head reaches a MaxSentinel tail
///                       within FlowWalkCap hops (a cycle or lost tail
///                       hits the cap).
///   F2 Sentinels        head key == MinSentinel, tail key ==
///                       MaxSentinel, both unmarked; chunk sentinels
///                       publish no slots.
///   F3 Sorted           keys (anchors for chunks) strictly increase
///                       over the *whole* reachable chain, marked nodes
///                       included — every backend here inserts only
///                       between verified-adjacent nodes, so a marked
///                       node never breaks the order.
///   F4 ChunkInterval    every occupied slot's key lies in
///                       [Anchor, NextAnchor), its index is inside the
///                       chunk, and occupied keys are distinct. The
///                       Occ-vs-FirstClean containment (Index <
///                       FirstClean <= Capacity) is checked at episode
///                       end only: storeSlot publishes the Occ bit and
///                       advances FirstClean in separate steps.
///   F5 UniqueFlow       each user key flows to AT MOST one unmarked
///                       reachable node/slot per step. ("Exactly one"
///                       cannot hold per step — a key's flow is legally
///                       empty while absent, and transiently empty
///                       during a chunk freeze.)
///   F6 UnlinkedUnmarked a tracked node that leaves the reachable set
///                       must have been marked when last observed
///                       reachable (unlink-before-mark is the classic
///                       lost-update bug). Skipped for markless
///                       backends (HasMark == false).
///   F7 MarkedLingers    at episode end no reachable node is still
///                       marked — every logical delete completed its
///                       unlink. Skipped when MarkedMayLinger (Harris /
///                       Harris-Michael delegate unlinks to later ops).
///
/// Together F5 + F6 + F7 are the step-indexed decomposition of the
/// paper's "mark == true <=> flow == emptyset": the biconditional holds
/// at operation boundaries, and these clauses pin down exactly which
/// transient states between them are legal.
///
/// Violations are reported as FlowReport, mirroring RaceReport: the
/// offending node, the clause, a human-readable detail, and the
/// reproducing schedule prefix (the Choices consumed so far, replayable
/// via InterleavingExplorer::run).
///
//===----------------------------------------------------------------------===//

#ifndef VBL_ANALYSIS_FLOWINVARIANT_H
#define VBL_ANALYSIS_FLOWINVARIANT_H

#include "analysis/FlowView.h"

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace vbl {
namespace analysis {

/// Which invariant clause a FlowReport violates. Values mirror the
/// F-numbers in the file comment.
enum class FlowClause {
  Shape,
  Sentinels,
  Sorted,
  ChunkInterval,
  UniqueFlow,
  UnlinkedUnmarked,
  MarkedLingers,
};

const char *flowClauseName(FlowClause Clause);

/// One flow-invariant violation, shaped after RaceReport: enough to
/// print, and enough to reproduce (SchedulePrefix replays through
/// InterleavingExplorer::run up to the step that tripped the clause).
struct FlowReport {
  FlowClause Clause = FlowClause::Shape;
  /// The offending node (or chunk); null when the violation is about
  /// the chain as a whole (e.g. a Shape cap hit with no chain).
  const void *Node = nullptr;
  /// The key (or chunk anchor / slot key) the clause failed for.
  SetKey Key = 0;
  /// Human-readable clause instance, e.g. "slot 3 key 9 outside
  /// [4, 8)".
  std::string Detail;
  /// Scheduler step index at which the violation was observed (0 =
  /// the pre-step baseline snapshot).
  size_t Step = 0;
  /// The schedule choices consumed up to and including this step;
  /// feeding them to InterleavingExplorer::run reproduces the state.
  std::vector<unsigned> SchedulePrefix;

  std::string toString() const;
};

/// Recomputes flow from the FlowView snapshot after every scheduler
/// step and records clause violations. One checker per episode; a
/// default (falsy) FlowView makes every hook a no-op.
///
/// Usage (InterleavingExplorer::run):
///   FlowChecker Flow(Meta.Flow);
///   Flow.onStep(Choices);          // baseline, before the first step
///   ... after each Sched.step(): Flow.onStep(Choices);
///   Flow.onEpisodeEnd(Choices);    // quiescent-state-only clauses
///
/// Each (clause, node) pair is reported once per episode: a violated
/// invariant usually stays violated for the rest of the episode and
/// one report per cause keeps the output readable.
class FlowChecker {
public:
  explicit FlowChecker(FlowView View) : View(std::move(View)) {}

  /// Snapshot + check all per-step clauses. \p Choices is the schedule
  /// prefix so far (copied into any report produced).
  void onStep(const std::vector<unsigned> &Choices);

  /// Check the quiescent-state clauses (F7, chunk Occ/FirstClean
  /// containment) against the final snapshot.
  void onEpisodeEnd(const std::vector<unsigned> &Choices);

  const std::vector<FlowReport> &reports() const { return Reports; }
  std::vector<FlowReport> takeReports() { return std::move(Reports); }

private:
  std::vector<FlowNodeDesc> snapshot();
  void checkStep(const std::vector<FlowNodeDesc> &Chain,
                 const std::vector<unsigned> &Choices);
  void checkEnd(const std::vector<FlowNodeDesc> &Chain,
                const std::vector<unsigned> &Choices);
  void report(FlowClause Clause, const void *Node, SetKey Key,
              std::string Detail, const std::vector<unsigned> &Choices);

  FlowView View;
  std::vector<FlowReport> Reports;
  /// Dedup: report each (clause, node) once per episode.
  std::set<std::pair<FlowClause, const void *>> Reported;
  /// F6 state: last observed (key, mark) of every node seen reachable.
  /// An entry whose node disappears is the unlink we must audit;
  /// entries are erased after auditing so reinsertion of the same
  /// address (impossible under LeakyDomain, harmless otherwise) starts
  /// fresh.
  std::map<const void *, std::pair<SetKey, bool>> LastMarked;
  /// Step counter: 0 is the pre-step baseline snapshot.
  size_t Step = 0;
  bool SawBaseline = false;
};

} // namespace analysis
} // namespace vbl

#endif // VBL_ANALYSIS_FLOWINVARIANT_H
