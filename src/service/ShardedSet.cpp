//===- service/ShardedSet.cpp - Sharded front-end implementation ---------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "service/ShardedSet.h"

#include <algorithm>

using namespace vbl;
using namespace vbl::service;

bool vbl::service::parseCombineMode(const std::string &Text,
                                    CombineMode &Mode) {
  if (Text == "off")
    Mode = CombineMode::Off;
  else if (Text == "on")
    Mode = CombineMode::On;
  else if (Text == "adaptive")
    Mode = CombineMode::Adaptive;
  else
    return false;
  return true;
}

const char *vbl::service::combineModeName(CombineMode Mode) {
  switch (Mode) {
  case CombineMode::Off:
    return "off";
  case CombineMode::On:
    return "on";
  case CombineMode::Adaptive:
    return "adaptive";
  }
  return "?";
}

/// One shard: a backend instance plus its combining state. Heap-held
/// because CombinerShard embeds immovable atomics and a slot array.
struct ShardedSet::Shard {
  std::unique_ptr<ConcurrentSet> Set;
  CombinerShard<ShardedSet::CombinerSlots, TasLock> Combiner;
};

ShardedSet::ShardedSet(const Options &O) : Opts(O) {
  if (Opts.Shards == 0)
    Opts.Shards = 1;
  if (Opts.BatchSize == 0)
    Opts.BatchSize = 1;
  Name = "sharded(" + Opts.Backend + ",s" + std::to_string(Opts.Shards) +
         ",b" + std::to_string(Opts.BatchSize) + "," +
         combineModeName(Opts.Combine) + ")";
}

ShardedSet::~ShardedSet() = default;

std::unique_ptr<ShardedSet> ShardedSet::create(const Options &Opts,
                                               std::string *Error) {
  auto Front = std::unique_ptr<ShardedSet>(new ShardedSet(Opts));
  Front->Shards.reserve(Front->Opts.Shards);
  for (unsigned I = 0; I != Front->Opts.Shards; ++I) {
    auto S = std::make_unique<Shard>();
    S->Set = makeSet(Opts.Backend);
    if (!S->Set) {
      if (Error) {
        *Error = "unknown backend '" + Opts.Backend + "'";
        const std::vector<std::string> Close = suggestSetNames(Opts.Backend);
        if (!Close.empty()) {
          *Error += "; did you mean";
          for (size_t J = 0; J != Close.size(); ++J)
            *Error += (J ? ", " : " ") + Close[J];
          *Error += "?";
        }
        *Error += " (tools/list_backends.py dumps the registry)";
      }
      return nullptr;
    }
    Front->Shards.push_back(std::move(S));
  }
  return Front;
}

bool ShardedSet::insert(SetKey Key) {
  stats::bump(stats::Counter::ServiceOpsDirect);
  return Shards[shardOf(Key)]->Set->insert(Key);
}

bool ShardedSet::remove(SetKey Key) {
  stats::bump(stats::Counter::ServiceOpsDirect);
  return Shards[shardOf(Key)]->Set->remove(Key);
}

bool ShardedSet::contains(SetKey Key) {
  stats::bump(stats::Counter::ServiceOpsDirect);
  return Shards[shardOf(Key)]->Set->contains(Key);
}

size_t ShardedSet::rangeQuery(SetKey Lo, SetKey Hi,
                              std::vector<SetKey> &Out) {
  const size_t Entry = Out.size();
  for (const std::unique_ptr<Shard> &S : Shards)
    S->Set->rangeQuery(Lo, Hi, Out);
  // Each shard appended its keys ascending; the hash partition
  // interleaves them arbitrarily across shards, so sort the tail.
  std::sort(Out.begin() + static_cast<ptrdiff_t>(Entry), Out.end());
  return Out.size() - Entry;
}

size_t ShardedSet::snapshot(std::vector<SetKey> &Out) {
  // Delegate the domain bounds to each shard adapter: hash backends
  // narrow full-set scans to their [0, 2^62) key domain themselves.
  const size_t Entry = Out.size();
  for (const std::unique_ptr<Shard> &S : Shards)
    S->Set->snapshot(Out);
  std::sort(Out.begin() + static_cast<ptrdiff_t>(Entry), Out.end());
  return Out.size() - Entry;
}

std::vector<SetKey> ShardedSet::snapshot() const {
  // Shards partition the key space by hash, not by range: merge and
  // sort to present the set's canonical ascending view.
  std::vector<SetKey> Keys;
  for (const std::unique_ptr<Shard> &S : Shards) {
    std::vector<SetKey> Part = S->Set->snapshot();
    Keys.insert(Keys.end(), Part.begin(), Part.end());
  }
  std::sort(Keys.begin(), Keys.end());
  return Keys;
}

bool ShardedSet::checkInvariants() const {
  for (unsigned I = 0; I != Shards.size(); ++I) {
    if (!Shards[I]->Set->checkInvariants())
      return false;
    // Routing invariant: every key a shard stores must hash to it —
    // a violation means an op bypassed shardOf.
    for (SetKey Key : Shards[I]->Set->snapshot())
      if (shardOf(Key) != I)
        return false;
  }
  return true;
}

ShardedSet::Session ShardedSet::openSession() {
  return Session(*this, NextSession.fetch_add(1, std::memory_order_relaxed));
}

void ShardedSet::runOnShard(unsigned SessionIdx, unsigned ShardIdx,
                            BatchOp *Ops, uint32_t Count) {
  Shard &S = *Shards[ShardIdx];
  stats::histogramAdd(stats::Histogram::ServiceVisitOps, Count);
  const auto ApplyDirect = [&] {
    S.Set->applyBatch(Ops, Count);
    stats::bump(stats::Counter::ServiceOpsDirect, Count);
  };
  switch (Opts.Combine) {
  case CombineMode::Off:
    ApplyDirect();
    return;
  case CombineMode::Adaptive:
    if (!S.Combiner.shouldCombine<DirectPolicy>()) {
      stats::bump(stats::Counter::ServiceAdaptiveDirects);
      S.Combiner.executeDirect<DirectPolicy>(ApplyDirect);
      return;
    }
    [[fallthrough]];
  case CombineMode::On:
    // Sessions beyond the slot array degrade to direct access: the
    // backend is linearizable either way, combining only amortizes.
    if (SessionIdx >= CombinerSlots) {
      ApplyDirect();
      return;
    }
    S.Combiner.execute<DirectPolicy>(
        SessionIdx, Ops, Count,
        [&S](BatchOp *B, uint32_t N) { S.Set->applyBatch(B, N); });
    return;
  }
}

//===----------------------------------------------------------------------===//
// Session
//===----------------------------------------------------------------------===//

ShardedSet::Session::Session(ShardedSet &Parent, unsigned Index)
    : Parent(&Parent), Index(Index), Queues(Parent.Opts.Shards) {
  for (std::vector<BatchOp> &Q : Queues)
    Q.reserve(Parent.Opts.BatchSize);
}

ShardedSet::Session::Session(Session &&Other) noexcept
    : Parent(Other.Parent), Index(Other.Index),
      Queues(std::move(Other.Queues)),
      Completed(std::move(Other.Completed)),
      Scans(std::move(Other.Scans)),
      CompletedScans(std::move(Other.CompletedScans)),
      Pending(Other.Pending) {
  // Detach the source: a moved-from session must not flush the same
  // queued ops a second time from its destructor.
  Other.Parent = nullptr;
  Other.Pending = 0;
}

ShardedSet::Session &
ShardedSet::Session::operator=(Session &&Other) noexcept {
  if (this == &Other)
    return *this;
  if (Parent)
    flush();
  Parent = Other.Parent;
  Index = Other.Index;
  Queues = std::move(Other.Queues);
  Completed = std::move(Other.Completed);
  Scans = std::move(Other.Scans);
  CompletedScans = std::move(Other.CompletedScans);
  Pending = Other.Pending;
  Other.Parent = nullptr;
  Other.Pending = 0;
  return *this;
}

ShardedSet::Session::~Session() {
  // Drain residual below-BatchSize ops: an enqueued op must reach its
  // shard even when the client drops the session without flushing.
  if (Parent)
    flush();
}

bool ShardedSet::Session::apply(SetOp Op, SetKey Key) {
  VBL_ASSERT(Parent, "session used after close()/move");
  BatchOp O;
  O.Op = Op;
  O.Key = Key;
  Parent->runOnShard(Index, Parent->shardOf(Key), &O, 1);
  return O.Result;
}

void ShardedSet::Session::enqueue(SetOp Op, SetKey Key, uint64_t Tag) {
  VBL_ASSERT(Parent, "session used after close()/move");
  const unsigned ShardIdx = Parent->shardOf(Key);
  std::vector<BatchOp> &Q = Queues[ShardIdx];
  BatchOp O;
  O.Op = Op;
  O.Key = Key;
  O.Tag = Tag;
  Q.push_back(O);
  ++Pending;
  if (Q.size() >= Parent->Opts.BatchSize)
    flushShard(ShardIdx);
}

void ShardedSet::Session::enqueueRange(SetKey Lo, SetKey Hi,
                                       uint64_t Tag) {
  VBL_ASSERT(Parent, "session used after close()/move");
  ScanState State;
  State.Keys = std::make_unique<std::vector<SetKey>>();
  State.Lo = Lo;
  State.Hi = Hi;
  State.Tag = Tag;
  State.PiecesLeft = static_cast<unsigned>(Queues.size());
  std::vector<SetKey> *Buffer = State.Keys.get();
  Scans.push_back(std::move(State));
  // One piece per shard, all appending into the shared buffer. Flushes
  // are session-local and sequential, so the appends never race; the
  // completion handler sorts the merged result once the last piece
  // lands. Flush AFTER enqueuing every piece so a BatchSize-1 queue
  // can't complete the scan before all pieces exist.
  for (unsigned ShardIdx = 0; ShardIdx != Queues.size(); ++ShardIdx) {
    BatchOp O;
    O.Op = SetOp::RangeQuery;
    O.Key = Lo;
    O.KeyHi = Hi;
    O.Tag = Tag;
    O.Keys = Buffer;
    Queues[ShardIdx].push_back(O);
    ++Pending;
  }
  for (unsigned ShardIdx = 0; ShardIdx != Queues.size(); ++ShardIdx)
    if (Queues[ShardIdx].size() >= Parent->Opts.BatchSize)
      flushShard(ShardIdx);
}

void ShardedSet::Session::flushShard(unsigned ShardIdx) {
  std::vector<BatchOp> &Q = Queues[ShardIdx];
  if (Q.empty())
    return;
  stats::bump(stats::Counter::ServiceBatchFlushes);
  Parent->runOnShard(Index, ShardIdx, Q.data(),
                     static_cast<uint32_t>(Q.size()));
  Pending -= Q.size();
  for (const BatchOp &O : Q) {
    if (O.Op != SetOp::RangeQuery) {
      Completed.push_back(O);
      continue;
    }
    // A scan piece: find its in-flight record by result buffer. The
    // scan completes when its last shard piece flushes.
    for (size_t I = 0; I != Scans.size(); ++I) {
      ScanState &Scan = Scans[I];
      if (Scan.Keys.get() != O.Keys)
        continue;
      if (--Scan.PiecesLeft == 0) {
        std::sort(Scan.Keys->begin(), Scan.Keys->end());
        CompletedScans.push_back(
            {Scan.Lo, Scan.Hi, Scan.Tag, std::move(*Scan.Keys)});
        Scans.erase(Scans.begin() + static_cast<ptrdiff_t>(I));
      }
      break;
    }
  }
  Q.clear();
}

void ShardedSet::Session::flush() {
  for (unsigned I = 0; I != Queues.size(); ++I)
    flushShard(I);
}

void ShardedSet::Session::close() {
  if (!Parent)
    return;
  flush();
  Parent = nullptr;
}

std::vector<BatchOp> ShardedSet::Session::takeCompleted() {
  std::vector<BatchOp> Out;
  Out.swap(Completed);
  return Out;
}

std::vector<ShardedSet::Session::CompletedScan>
ShardedSet::Session::takeCompletedScans() {
  std::vector<CompletedScan> Out;
  Out.swap(CompletedScans);
  return Out;
}
