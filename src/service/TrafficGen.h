//===- service/TrafficGen.h - Realistic skewed traffic generation --------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synchrobench-style benches draw uniform keys with a fixed update
/// mix; production traffic does none of that. This header provides the
/// service bench's traffic model:
///
///  - ZipfianGen: bounded Zipfian over [0, N) with exponent theta
///    (Gray et al.'s rejection-free inversion, the YCSB generator).
///    theta = 0 degenerates *exactly* to uniform; rank 0 is the hottest
///    key. rankMass() gives the closed-form P(rank) the statistical
///    tests check against.
///  - UpdateMixSchedule: time-varying update percentage — a cyclic
///    phase list "p1 for n1 ops, p2 for n2 ops, ..." indexed by a
///    global op counter.
///  - BurstyArrivals: open-loop arrival gaps — exponential interarrival
///    times whose rate is modulated by an on/off burst cycle (burst
///    phases run BurstFactor times hotter than the calm mean).
///  - TrafficGen: one per worker thread; multiplexes a slice of the
///    simulated client-session space (millions of sessions = millions
///    of independent 8-byte SplitMix64 states, visited round-robin so
///    the working set thrashes like a real frontend's session table).
///
/// Everything is seeded and deterministic: (Seed, WorkerId) fixes the
/// whole stream.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_SERVICE_TRAFFICGEN_H
#define VBL_SERVICE_TRAFFICGEN_H

#include "core/SetConfig.h"
#include "support/Compiler.h"
#include "support/Random.h"
#include "sync/Policy.h"

#include <cmath>
#include <cstdint>
#include <vector>

namespace vbl {
namespace service {

/// Bounded Zipfian: P(rank k) proportional to 1/(k+1)^theta over ranks
/// [0, N). Uses the Gray et al. inversion with zeta(N, theta)
/// precomputed at construction (O(N) once).
class ZipfianGen {
public:
  ZipfianGen(uint64_t N, double Theta);

  uint64_t range() const { return N; }
  double theta() const { return Theta; }

  /// Next rank; 0 is the hottest. \p Rng is any generator with
  /// next() -> uint64_t (Xoshiro256 for workers, SplitMix64 for
  /// per-session streams).
  template <class RngT> uint64_t next(RngT &Rng) const {
    // 53-bit mantissa uniform in [0, 1).
    const double U =
        static_cast<double>(Rng.next() >> 11) * 0x1.0p-53;
    const double Uz = U * Zetan;
    if (Uz < 1.0)
      return 0;
    if (Uz < 1.0 + HalfPowTheta)
      return 1;
    const uint64_t Rank = static_cast<uint64_t>(
        static_cast<double>(N) * std::pow(Eta * U - Eta + 1.0, Alpha));
    return Rank >= N ? N - 1 : Rank;
  }

  /// Closed-form probability of \p Rank (the mass the generator
  /// realizes up to floating-point truncation); tests compare the
  /// empirical hot-key mass against this.
  double rankMass(uint64_t Rank) const;

private:
  uint64_t N;
  double Theta;
  double Zetan;         // zeta(N, theta)
  double Alpha;         // 1 / (1 - theta)
  double Eta;           // Gray et al.'s eta
  double HalfPowTheta;  // 0.5^theta
};

/// One phase of a time-varying update mix.
struct MixPhase {
  uint64_t Ops = 0;          ///< Length of the phase in operations.
  unsigned UpdatePercent = 0;
};

/// Cyclic phase schedule indexed by an op counter. An empty phase list
/// is a flat mix at \p Fallback percent.
class UpdateMixSchedule {
public:
  UpdateMixSchedule(std::vector<MixPhase> Phases, unsigned Fallback);

  unsigned updatePercentAt(uint64_t OpIndex) const;
  uint64_t cycleOps() const { return Cycle; }

private:
  std::vector<MixPhase> Phases;
  unsigned Fallback;
  uint64_t Cycle = 0;
};

/// Open-loop arrival gaps: exponential interarrivals at mean MeanGapNs,
/// with an on/off burst cycle (BurstOps arrivals at MeanGapNs /
/// BurstFactor, then CalmOps at the calm mean). BurstFactor = 1 or
/// BurstOps = 0 disables bursts.
class BurstyArrivals {
public:
  struct Config {
    double MeanGapNs = 1000.0;
    double BurstFactor = 1.0;
    uint64_t BurstOps = 0;
    uint64_t CalmOps = 0;
  };

  explicit BurstyArrivals(const Config &C) : Cfg(C) {}

  template <class RngT> uint64_t nextGapNs(RngT &Rng) {
    double Mean = Cfg.MeanGapNs;
    if (Cfg.BurstFactor > 1.0 && Cfg.BurstOps > 0) {
      const uint64_t Cycle = Cfg.BurstOps + Cfg.CalmOps;
      if ((Arrival++ % Cycle) < Cfg.BurstOps)
        Mean = Cfg.MeanGapNs / Cfg.BurstFactor;
    }
    // Inverse-CDF exponential draw; clamp the uniform away from 0.
    const double U = static_cast<double>((Rng.next() >> 11) | 1) * 0x1.0p-53;
    const double Gap = -Mean * std::log(U);
    return Gap < 0 ? 0 : static_cast<uint64_t>(Gap);
  }

private:
  Config Cfg;
  uint64_t Arrival = 0;
};

/// Worker-local traffic source.
struct TrafficConfig {
  SetKey KeyRange = 16384;
  double Theta = 0.0;          ///< 0 = uniform.
  bool ScrambleKeys = false;   ///< Hash ranks over the range (spreads the
                               ///  hot set; collisions fold masses).
  uint64_t Sessions = 1024;    ///< Simulated clients across ALL workers.
  unsigned UpdatePercent = 20;
  std::vector<MixPhase> Phases; ///< Empty = flat UpdatePercent.
  BurstyArrivals::Config Arrivals;
  uint64_t Seed = 42;
};

class TrafficGen {
public:
  TrafficGen(const TrafficConfig &Cfg, unsigned WorkerId, unsigned Workers);

  struct Item {
    SetOp Op = SetOp::Contains;
    SetKey Key = 0;
    uint64_t SessionId = 0;   ///< Global session id.
    uint64_t ArrivalGapNs = 0; ///< Open-loop gap to the previous arrival.
  };

  /// Draws the next operation: advances to the next simulated session
  /// (round-robin over this worker's slice), draws its key from the
  /// Zipfian, the op kind from the phase schedule, and the open-loop
  /// arrival gap from the burst process.
  Item next();

  uint64_t sessionsOwned() const { return SessionStates.size(); }

private:
  TrafficConfig Cfg;
  ZipfianGen Zipf;
  UpdateMixSchedule Mix;
  BurstyArrivals Arrivals;
  Xoshiro256 WorkerRng; // arrival process
  uint64_t FirstSession = 0;
  std::vector<SplitMix64> SessionStates; // one 8-byte stream per session
  uint64_t Cursor = 0;
  uint64_t OpIndex = 0;
};

} // namespace service
} // namespace vbl

#endif // VBL_SERVICE_TRAFFICGEN_H
