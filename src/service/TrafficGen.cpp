//===- service/TrafficGen.cpp - Traffic model implementation -------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "service/TrafficGen.h"

#include "service/ShardedSet.h" // mixKey for ScrambleKeys

#include <cmath>

using namespace vbl;
using namespace vbl::service;

/// zeta(N, theta) = sum_{k=1..N} 1/k^theta. O(N) once per generator;
/// the service bench constructs a handful of generators per run.
static double zetaSum(uint64_t N, double Theta) {
  double Sum = 0.0;
  for (uint64_t K = 1; K <= N; ++K)
    Sum += 1.0 / std::pow(static_cast<double>(K), Theta);
  return Sum;
}

ZipfianGen::ZipfianGen(uint64_t Range, double ThetaIn)
    : N(Range == 0 ? 1 : Range), Theta(ThetaIn) {
  VBL_ASSERT(Theta >= 0.0, "Zipfian exponent must be non-negative");
  // Gray et al.'s inversion divides by (1 - theta); theta == 1 is a
  // removable singularity we sidestep numerically, as YCSB does.
  if (std::fabs(1.0 - Theta) < 1e-9)
    Theta = 1.0 - 1e-9;
  Zetan = zetaSum(N, Theta);
  Alpha = 1.0 / (1.0 - Theta);
  const double Zeta2 = zetaSum(N < 2 ? N : 2, Theta);
  Eta = (1.0 - std::pow(2.0 / static_cast<double>(N), 1.0 - Theta)) /
        (1.0 - Zeta2 / Zetan);
  HalfPowTheta = std::pow(0.5, Theta);
}

double ZipfianGen::rankMass(uint64_t Rank) const {
  VBL_ASSERT(Rank < N, "rank out of range");
  return 1.0 /
         (std::pow(static_cast<double>(Rank + 1), Theta) * Zetan);
}

UpdateMixSchedule::UpdateMixSchedule(std::vector<MixPhase> PhasesIn,
                                     unsigned FallbackIn)
    : Phases(std::move(PhasesIn)), Fallback(FallbackIn) {
  for (const MixPhase &P : Phases) {
    VBL_ASSERT(P.UpdatePercent <= 100, "phase update percent above 100");
    Cycle += P.Ops;
  }
  if (Cycle == 0)
    Phases.clear(); // All-empty phases degenerate to the flat mix.
}

unsigned UpdateMixSchedule::updatePercentAt(uint64_t OpIndex) const {
  if (Phases.empty())
    return Fallback;
  uint64_t Into = OpIndex % Cycle;
  for (const MixPhase &P : Phases) {
    if (Into < P.Ops)
      return P.UpdatePercent;
    Into -= P.Ops;
  }
  return Fallback; // Unreachable: Cycle == sum of phase lengths.
}

TrafficGen::TrafficGen(const TrafficConfig &CfgIn, unsigned WorkerId,
                       unsigned Workers)
    : Cfg(CfgIn),
      Zipf(static_cast<uint64_t>(Cfg.KeyRange > 0 ? Cfg.KeyRange : 1),
           Cfg.Theta),
      Mix(Cfg.Phases, Cfg.UpdatePercent), Arrivals(Cfg.Arrivals),
      WorkerRng(SplitMix64(Cfg.Seed ^ (0x5e55 + WorkerId)).next()) {
  VBL_ASSERT(WorkerId < Workers, "worker id out of range");
  // Slice the global session space evenly; remainder to low workers.
  const uint64_t Sessions = Cfg.Sessions == 0 ? 1 : Cfg.Sessions;
  const uint64_t Base = Sessions / Workers;
  const uint64_t Extra = Sessions % Workers;
  const uint64_t Owned = Base + (WorkerId < Extra ? 1 : 0);
  FirstSession =
      WorkerId * Base + (WorkerId < Extra ? WorkerId : Extra);
  // One 8-byte SplitMix64 stream per simulated session: a million
  // sessions per worker costs 8 MB and is exactly the session-table
  // cache pressure a real frontend pays.
  SplitMix64 Seeder(Cfg.Seed * 0x9e3779b97f4a7c15ULL + FirstSession);
  const uint64_t Count = Owned == 0 ? 1 : Owned;
  SessionStates.reserve(Count);
  for (uint64_t I = 0; I != Count; ++I)
    SessionStates.emplace_back(Seeder.next());
}

TrafficGen::Item TrafficGen::next() {
  Cursor = (Cursor + 1) % SessionStates.size();
  SplitMix64 &SessionRng = SessionStates[Cursor];
  Item It;
  It.SessionId = FirstSession + Cursor;
  const uint64_t Rank = Zipf.next(SessionRng);
  It.Key = Cfg.ScrambleKeys
               ? static_cast<SetKey>(mixKey(static_cast<SetKey>(Rank)) %
                                     static_cast<uint64_t>(Cfg.KeyRange))
               : static_cast<SetKey>(Rank);
  const unsigned UpdatePct = Mix.updatePercentAt(OpIndex++);
  const uint64_t Roll = SessionRng.next();
  if (Roll % 100 < UpdatePct)
    It.Op = (Roll >> 32) & 1 ? SetOp::Insert : SetOp::Remove;
  else
    It.Op = SetOp::Contains;
  It.ArrivalGapNs = Arrivals.nextGapNs(WorkerRng);
  return It;
}
