//===- service/ShardedSet.h - Key-space-sharded serving front-end --------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving front-end of the repo's "millions of users" scenario: a
/// ShardedSet partitions the key space across S instances of any
/// registered backend (list or split-ordered hash) and offers three
/// access disciplines through per-client Sessions:
///
///  - direct: every op routed straight to its shard (the naive
///    baseline; also what the plain ConcurrentSet methods do),
///  - batched: ops queue per (session, shard) and are applied B at a
///    time per shard visit — the shard adapter sorts the batch and
///    applies it in ONE amortized traversal under one reclaim guard
///    (VblList::applyBatchSorted),
///  - flat-combined: a session publishes its batch in a per-shard slot
///    and either finds it drained by another session's combine round or
///    takes the combiner lock and drains everyone (FlatCombiner.h),
///    with an adaptive mode that degrades to direct access on cold
///    shards.
///
/// Per-key linearizability: shardOf is a pure function of the key, so
/// all ops on one key serialize through one linearizable backend
/// instance; ops on distinct keys commute, so cross-shard (and
/// in-batch cross-key) reordering is unobservable per key. Within a
/// batch, same-key ops keep submission order (stable sort). A batched
/// op's linearization point lies between enqueue and flush-return,
/// inside its widened interval — the history recorder in the tests
/// stamps exactly that interval.
///
/// Key domain: the front-end accepts whatever its backend accepts
/// (hash backends require isHashKey values); it adds no restriction of
/// its own.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_SERVICE_SHARDEDSET_H
#define VBL_SERVICE_SHARDEDSET_H

#include "lists/SetInterface.h"
#include "service/FlatCombiner.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace vbl {
namespace service {

/// Per-shard access discipline for Session-routed operations.
enum class CombineMode : uint8_t {
  Off,      ///< Always direct (per-op or batched) backend access.
  On,       ///< Every shard visit goes through the combining protocol.
  Adaptive, ///< Combine hot shards, direct access on cold ones.
};

/// Parses "off"/"on"/"adaptive"; returns false on anything else.
bool parseCombineMode(const std::string &Text, CombineMode &Mode);
const char *combineModeName(CombineMode Mode);

/// SplitMix64 finalizer over the raw key bits: shardOf must spread
/// adjacent keys (Zipfian rank 0..k hot sets are adjacent integers)
/// across shards, and must be a pure function of the key so per-key
/// ops always meet in the same shard.
inline uint64_t mixKey(SetKey Key) {
  uint64_t X = static_cast<uint64_t>(Key);
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

class ShardedSet final : public ConcurrentSet {
public:
  /// Publication slots per shard; sessions beyond this many fall back
  /// to the direct path (combining is an amortization, not a
  /// correctness requirement, so overflow degrades gracefully).
  static constexpr unsigned CombinerSlots = 64;

  struct Options {
    std::string Backend = "vbl";
    unsigned Shards = 8;
    /// Ops queued per (session, shard) before a flush; 1 = per-op.
    unsigned BatchSize = 1;
    CombineMode Combine = CombineMode::Off;
  };

  /// Builds the front-end, resolving Options::Backend through the
  /// registry. Unknown names return null and set \p Error to a message
  /// naming the closest registered backends (suggestSetNames).
  static std::unique_ptr<ShardedSet> create(const Options &Opts,
                                            std::string *Error = nullptr);

  ~ShardedSet() override;

  unsigned shardOf(SetKey Key) const {
    return static_cast<unsigned>(mixKey(Key) % Opts.Shards);
  }

  const Options &options() const { return Opts; }

  //===--------------------------------------------------------------===//
  // ConcurrentSet interface: direct-routed per-op access (prefill, the
  // generic differential suites, invariant checks). Sessions are the
  // batched/combined hot path.
  //===--------------------------------------------------------------===//

  bool insert(SetKey Key) override;
  bool remove(SetKey Key) override;
  bool contains(SetKey Key) override;
  /// Shards partition by key HASH, not by range, so every shard can
  /// hold keys anywhere in [Lo, Hi]: scan them all, then sort the
  /// appended tail into the canonical ascending order. Atomicity is
  /// per shard (each shard's scan is its backend's); across shards the
  /// scan is linearizable per key, same widened-interval contract as a
  /// batched point op.
  size_t rangeQuery(SetKey Lo, SetKey Hi,
                    std::vector<SetKey> &Out) override;
  size_t snapshot(std::vector<SetKey> &Out) override;
  std::vector<SetKey> snapshot() const override;
  bool checkInvariants() const override;
  const std::string &name() const override { return Name; }

  //===--------------------------------------------------------------===//
  // Sessions.
  //===--------------------------------------------------------------===//

  /// One client's handle: owns per-shard op queues and a combiner slot.
  /// Not thread-safe (one session per client/thread); any number of
  /// sessions may operate concurrently.
  class Session {
  public:
    /// One completed range scan: the window, the caller's tag, and the
    /// merged ascending keys from every shard.
    struct CompletedScan {
      SetKey Lo;
      SetKey Hi;
      uint64_t Tag;
      std::vector<SetKey> Keys;
    };

    /// Sessions move (openSession returns by value) but do not copy;
    /// the moved-from session detaches so it neither flushes nor
    /// touches the front-end again.
    Session(Session &&Other) noexcept;
    Session &operator=(Session &&Other) noexcept;
    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /// Flushes any residual queued ops: an op enqueued on a live
    /// front-end is applied even if the client never reaches an
    /// explicit flush (sessions are dropped mid-batch on shutdown).
    ~Session();

    /// Immediate operation through the configured shard discipline
    /// (combining included). Returns the op's result.
    bool apply(SetOp Op, SetKey Key);

    /// Queues an op; flushes its shard queue once BatchSize ops are
    /// pending there. \p Tag rides along untouched (timestamps).
    void enqueue(SetOp Op, SetKey Key, uint64_t Tag = 0);

    /// Queues a range scan over [\p Lo, \p Hi]: one RangeQuery op per
    /// shard (hash sharding means every shard may hold in-range keys),
    /// all feeding one result buffer. The scan completes when its last
    /// shard piece flushes; takeCompletedScans() then yields the
    /// merged ascending keys.
    void enqueueRange(SetKey Lo, SetKey Hi, uint64_t Tag = 0);

    /// Flushes every non-empty shard queue.
    void flush();

    /// Flushes and detaches from the front-end. Completed results
    /// remain takeable; further enqueues are a bug (asserted).
    void close();

    /// Completed point ops accumulated by flushes since the last take,
    /// in completion order (per-shard queue order within a flush).
    /// RangeQuery pieces are internal and reported through
    /// takeCompletedScans() instead.
    std::vector<BatchOp> takeCompleted();

    /// Scans whose every shard piece has flushed, completion order.
    std::vector<CompletedScan> takeCompletedScans();

    size_t pendingOps() const { return Pending; }

  private:
    friend class ShardedSet;
    Session(ShardedSet &Parent, unsigned Index);

    /// In-flight fan-out scan. Keys is heap-held so the BatchOp
    /// pointers into it survive Session moves and Queues growth.
    struct ScanState {
      std::unique_ptr<std::vector<SetKey>> Keys;
      SetKey Lo;
      SetKey Hi;
      uint64_t Tag;
      unsigned PiecesLeft;
    };

    void flushShard(unsigned ShardIdx);

    ShardedSet *Parent;
    unsigned Index;
    std::vector<std::vector<BatchOp>> Queues; // one per shard
    std::vector<BatchOp> Completed;
    std::vector<ScanState> Scans; // in-flight, enqueue order
    std::vector<CompletedScan> CompletedScans;
    size_t Pending = 0;
  };

  /// Opens a new session. Thread-safe; hand each client thread its own.
  Session openSession();

private:
  explicit ShardedSet(const Options &Opts);

  struct Shard;

  /// Applies \p Count ops (all mapping to \p ShardIdx) through the
  /// configured discipline on behalf of session \p SessionIdx.
  void runOnShard(unsigned SessionIdx, unsigned ShardIdx, BatchOp *Ops,
                  uint32_t Count);

  Options Opts;
  std::string Name;
  std::vector<std::unique_ptr<Shard>> Shards;
  std::atomic<unsigned> NextSession{0};
};

} // namespace service
} // namespace vbl

#endif // VBL_SERVICE_SHARDEDSET_H
