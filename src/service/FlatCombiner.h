//===- service/FlatCombiner.h - Per-shard flat-combining core ------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Flat combining for one service shard (Hendler et al.'s scheme, cut
/// down to the sharded-set use case): each session owns a cache-line
/// publication slot; to run a batch it publishes the batch pointer and
/// then either observes its slot drained by another session's combine
/// round, or acquires the shard's combiner lock and drains EVERY
/// published slot itself under one lock epoch. One lock acquisition
/// therefore pays for all waiters' batches, and the combiner walks hot
/// list prefixes with a warm cache on behalf of everyone.
///
/// Correctness does not depend on combining being exclusive: the
/// backend is a linearizable concurrent set, so ops applied by a
/// combiner and ops applied directly (the adaptive degradation path for
/// cold shards) interleave safely — which is exactly what the
/// combiner-vs-direct handoff scenario explores under the deterministic
/// scheduler. What combining buys is amortization, not safety.
///
/// The core is policy-templated like the lists: DirectPolicy spins on
/// the slot's Done flag with bounded backoff; under a traced policy the
/// waiter parks on the combiner lock via Policy::lockAcquire (the
/// scheduler's blocked-on-lock state) instead of spinning unboundedly,
/// so every episode is finite and the InterleavingExplorer can walk the
/// protocol.
///
/// Slot protocol (all slot words policy-mediated, tagged MemField::Epoch
/// — synchronization substrate, not LL state):
///   waiter:   Done=false (release); Count (release); Ops (release)
///   combiner: Ops (acquire) != null -> Apply(Ops, Count);
///             Ops=null (release); Done=true (release)
///   waiter:   Done (acquire) == true -> results valid
/// The combiner nulls Ops before setting Done, and the slot's owner
/// republishes only after seeing Done — so exactly one side writes each
/// word at a time and the release/acquire pairs order the BatchOp
/// payload both ways.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_SERVICE_FLATCOMBINER_H
#define VBL_SERVICE_FLATCOMBINER_H

#include "core/BatchOp.h"
#include "stats/Stats.h"
#include "support/Compiler.h"
#include "sync/Policy.h"
#include "sync/SpinLocks.h"

#include <atomic>
#include <cstdint>

namespace vbl {
namespace service {

template <unsigned MaxSlotsV = 64, class LockT = TasLock>
class CombinerShard {
public:
  static constexpr unsigned MaxSlots = MaxSlotsV;

  /// Runs \p Count ops through the combining protocol and returns once
  /// every op's Result is filled. \p SlotIdx must be < MaxSlots and
  /// owned exclusively by the calling session. \p Apply is invoked —
  /// by this thread or by another session acting as combiner — as
  /// Apply(BatchOp *, uint32_t) and must fill each op's Result.
  template <class PolicyT, class ApplyFn>
  void execute(unsigned SlotIdx, BatchOp *Ops, uint32_t Count,
               ApplyFn &&Apply) {
    Slot &S = Slots[SlotIdx];
    PolicyT::write(S.Done, false, std::memory_order_release, &S,
                   MemField::Epoch);
    PolicyT::write(S.Count, Count, std::memory_order_release, &S,
                   MemField::Epoch);
    PolicyT::write(S.Ops, Ops, std::memory_order_release, &S,
                   MemField::Epoch);
    if constexpr (PolicyT::Traced) {
      // Bounded wait for the scheduler: park on the combiner lock (the
      // explorer's blocked-on-lock state) instead of spinning on Done.
      for (;;) {
        if (PolicyT::read(S.Done, std::memory_order_acquire, &S,
                          MemField::Epoch)) {
          stats::bump(stats::Counter::ServiceCombineHandoffs);
          return;
        }
        PolicyT::lockAcquire(CombinerLock, this);
        if (PolicyT::read(S.Done, std::memory_order_acquire, &S,
                          MemField::Epoch)) {
          // A previous combiner drained us between the check and the
          // acquisition; nothing of ours is pending.
          PolicyT::lockRelease(CombinerLock, this);
          stats::bump(stats::Counter::ServiceCombineHandoffs);
          return;
        }
        combineLocked<PolicyT>(Apply);
        PolicyT::lockRelease(CombinerLock, this);
        return;
      }
    } else {
      SpinBackoff Backoff;
      for (;;) {
        if (PolicyT::read(S.Done, std::memory_order_acquire, &S,
                          MemField::Epoch)) {
          stats::bump(stats::Counter::ServiceCombineHandoffs);
          return;
        }
        if (PolicyT::lockTryAcquire(CombinerLock, this)) {
          if (PolicyT::read(S.Done, std::memory_order_acquire, &S,
                            MemField::Epoch)) {
            PolicyT::lockRelease(CombinerLock, this);
            stats::bump(stats::Counter::ServiceCombineHandoffs);
            return;
          }
          combineLocked<PolicyT>(Apply);
          PolicyT::lockRelease(CombinerLock, this);
          return;
        }
        Backoff.spin();
      }
    }
  }

  /// Direct path with a contention probe: applies the batch bypassing
  /// the slots, and feeds the adaptive heat signal (another op already
  /// in flight on this shard => the shard is contended and combining
  /// would amortize). All probe state is CAS-updated so the traced
  /// builds carry happens-before edges the race detector can see.
  template <class PolicyT, class ApplyFn>
  void executeDirect(ApplyFn &&Apply) {
    uint32_t Cur =
        PolicyT::read(InFlight, std::memory_order_acquire, this,
                      MemField::Epoch);
    while (!PolicyT::casStrong(InFlight, Cur, Cur + 1,
                               std::memory_order_acq_rel, this,
                               MemField::Epoch)) {
    }
    if (Cur > 0)
      heatAdjust<PolicyT>(+HeatGain);
    Apply();
    Cur = PolicyT::read(InFlight, std::memory_order_acquire, this,
                        MemField::Epoch);
    while (!PolicyT::casStrong(InFlight, Cur, Cur - 1,
                               std::memory_order_acq_rel, this,
                               MemField::Epoch)) {
    }
  }

  /// Adaptive-mode decision: combine once the heat crosses the
  /// threshold. Heat rises on direct-path contention sightings and
  /// decays when a combine round drains only its own batch (see
  /// combineLocked), so a shard that goes cold degrades back to direct
  /// access within a few rounds.
  template <class PolicyT> bool shouldCombine() const {
    return PolicyT::read(Heat, std::memory_order_acquire, this,
                         MemField::Epoch) >= HeatThreshold;
  }

private:
  struct alignas(CacheLineBytes) Slot {
    std::atomic<BatchOp *> Ops{nullptr};
    std::atomic<uint32_t> Count{0};
    std::atomic<bool> Done{false};
  };

  /// One lock epoch: scan the slots, apply every published batch, and
  /// rescan while work keeps arriving (bounded passes so the combiner's
  /// own session is not starved serving a steady publish stream).
  template <class PolicyT, class ApplyFn>
  void combineLocked(ApplyFn &&Apply) VBL_REQUIRES(CombinerLock) {
    uint64_t RoundOps = 0;
    unsigned DrainedSlots = 0;
    for (unsigned Pass = 0; Pass != MaxCombinePasses; ++Pass) {
      unsigned PassSlots = 0;
      for (Slot &S : Slots) {
        BatchOp *Ops = PolicyT::read(S.Ops, std::memory_order_acquire, &S,
                                     MemField::Epoch);
        if (!Ops)
          continue;
        const uint32_t Count = PolicyT::read(
            S.Count, std::memory_order_acquire, &S, MemField::Epoch);
        Apply(Ops, Count);
        PolicyT::write(S.Ops, static_cast<BatchOp *>(nullptr),
                       std::memory_order_release, &S, MemField::Epoch);
        PolicyT::write(S.Done, true, std::memory_order_release, &S,
                       MemField::Epoch);
        ++PassSlots;
        RoundOps += Count;
      }
      DrainedSlots += PassSlots;
      if (PassSlots == 0)
        break;
    }
    stats::bump(stats::Counter::ServiceCombineRounds);
    stats::bump(stats::Counter::ServiceOpsCombined, RoundOps);
    stats::histogramAdd(stats::Histogram::ServiceCombineOps, RoundOps);
    // A round that only served its own batch is evidence the shard went
    // cold; decay toward the direct path.
    if (DrainedSlots <= 1)
      heatAdjust<PolicyT>(-1);
    else
      heatAdjust<PolicyT>(+1);
  }

  /// Lossy saturating heat update: one CAS attempt, losers simply skip
  /// (the signal is a heuristic; a lost update is another session's
  /// concurrent observation of the same regime).
  template <class PolicyT> void heatAdjust(int Delta) {
    uint32_t Cur = PolicyT::read(Heat, std::memory_order_acquire, this,
                                 MemField::Epoch);
    uint32_t Next;
    if (Delta >= 0)
      Next = Cur + static_cast<uint32_t>(Delta) > HeatMax
                 ? HeatMax
                 : Cur + static_cast<uint32_t>(Delta);
    else
      Next = Cur < static_cast<uint32_t>(-Delta)
                 ? 0
                 : Cur - static_cast<uint32_t>(-Delta);
    if (Next != Cur)
      (void)PolicyT::casStrong(Heat, Cur, Next, std::memory_order_acq_rel,
                               this, MemField::Epoch);
  }

  static constexpr unsigned MaxCombinePasses = 3;
  static constexpr uint32_t HeatGain = 2;
  static constexpr uint32_t HeatMax = 16;
  static constexpr uint32_t HeatThreshold = 4;

  LockT CombinerLock;
  std::atomic<uint32_t> Heat{0};
  std::atomic<uint32_t> InFlight{0};
  alignas(CacheLineBytes) Slot Slots[MaxSlots];
};

} // namespace service
} // namespace vbl

#endif // VBL_SERVICE_FLATCOMBINER_H
