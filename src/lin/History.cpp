//===- lin/History.cpp - Concurrent operation histories ------------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "lin/History.h"

#include <algorithm>

using namespace vbl;
using namespace vbl::lin;

HistoryRecorder::HistoryRecorder(unsigned NumThreads) : Logs(NumThreads) {
  for (unsigned I = 0; I != NumThreads; ++I)
    Logs[I].Thread = I;
}

std::vector<CompletedOp> HistoryRecorder::merged() const {
  std::vector<CompletedOp> All;
  All.reserve(totalOps());
  for (const ThreadLog &Log : Logs)
    All.insert(All.end(), Log.Ops.begin(), Log.Ops.end());
  std::sort(All.begin(), All.end(),
            [](const CompletedOp &A, const CompletedOp &B) {
              if (A.Invoke != B.Invoke)
                return A.Invoke < B.Invoke;
              return A.Thread < B.Thread;
            });
  return All;
}

size_t HistoryRecorder::totalOps() const {
  size_t Total = 0;
  for (const ThreadLog &Log : Logs)
    Total += Log.Ops.size();
  return Total;
}
