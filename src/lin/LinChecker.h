//===- lin/LinChecker.h - Linearizability checking for set histories -----===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decides linearizability (§2.1, Herlihy & Wing) of a history of set
/// operations.
///
/// The checker exploits the structure of the set type: an operation on
/// key k reads and writes only k's presence bit, and any two operations
/// on different keys commute in every state. Hence a set history is
/// linearizable iff each per-key projection is linearizable against a
/// single boolean "presence" object — the standard decomposition that
/// turns an NP-hard general problem into independent small searches.
///
/// Each per-key projection is decided with Wing-Gong style DFS over
/// linearization prefixes, memoized on (frontier index, done-mask,
/// presence): cost n * 2^w where w is the history's maximal per-key
/// concurrency (bounded by the thread count), not its length.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_LIN_LINCHECKER_H
#define VBL_LIN_LINCHECKER_H

#include "lin/History.h"

#include <string>
#include <vector>

namespace vbl {
namespace lin {

/// Outcome of a linearizability check.
struct LinResult {
  bool Ok = true;
  /// When !Ok: the key whose projection has no linearization.
  SetKey ViolatingKey = 0;
  /// Human-readable description of the violation for test output.
  std::string Message;
};

/// Checks a complete history of set operations, starting from a set
/// containing exactly \p InitialKeys.
///
/// Limitations (documented contract): all operations must be complete
/// (the harness joins threads before checking), and per-key concurrency
/// must not exceed 64 simultaneous operations (MaxWindow).
LinResult checkSetHistory(const std::vector<CompletedOp> &History,
                          const std::vector<SetKey> &InitialKeys);

/// Checks a single-key projection against a boolean presence object.
/// Exposed for unit tests; \p Ops need not be sorted.
bool checkSingleKeyHistory(std::vector<CompletedOp> Ops,
                           bool InitiallyPresent);

/// Lowers range scans to per-key Contains observations suitable for
/// checkSetHistory: for every key of \p Universe inside a scan's
/// [Lo, Hi] window, one synthesized Contains whose result is whether
/// the scan reported the key, carrying the scan's full [Invoke,
/// Response] interval. This is the widened-interval contract: a scan
/// is linearizable per key iff each such observation can be justified
/// at SOME point inside the scan — exactly what the per-key search
/// then decides. Keys outside \p Universe are ignored (a scan cannot
/// be blamed for keys no operation ever touched).
std::vector<CompletedOp>
decomposeScans(const std::vector<CompletedScan> &Scans,
               const std::vector<SetKey> &Universe);

} // namespace lin
} // namespace vbl

#endif // VBL_LIN_LINCHECKER_H
