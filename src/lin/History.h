//===- lin/History.h - Concurrent operation histories --------------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recording of high-level histories (§2.1): invocations and responses
/// of set operations with real-time ordering, captured with per-thread
/// logs so recording never adds synchronization between the threads
/// under test.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_LIN_HISTORY_H
#define VBL_LIN_HISTORY_H

#include "core/SetConfig.h"
#include "support/Compiler.h"
#include "sync/Policy.h"

#include <cstdint>
#include <vector>

namespace vbl {
namespace lin {

/// One completed high-level operation. Invoke/Response are timestamps
/// from one monotonic clock: Op A precedes Op B in real time iff
/// A.Response < B.Invoke (§2.1's ->_H relation).
struct CompletedOp {
  SetOp Op;
  SetKey Key;
  bool Result;
  uint64_t Invoke;
  uint64_t Response;
  uint32_t Thread;
};

/// One completed range scan: the window it covered, the keys it
/// returned, and its real-time interval. Scans are not checked
/// directly; decomposeScans() lowers each one to per-key Contains
/// observations that ride through the standard per-key decomposition.
struct CompletedScan {
  SetKey Lo;
  SetKey Hi;
  std::vector<SetKey> Keys;
  uint64_t Invoke;
  uint64_t Response;
  uint32_t Thread;
};

/// Collects per-thread logs without cross-thread synchronization; the
/// merge happens after the threads under test have joined.
class HistoryRecorder {
public:
  explicit HistoryRecorder(unsigned NumThreads);

  /// The log operations of thread \p ThreadId are recorded into. Must
  /// only be used from that one thread.
  class ThreadLog {
  public:
    void record(SetOp Op, SetKey Key, bool Result, uint64_t Invoke,
                uint64_t Response) {
      Ops.push_back({Op, Key, Result, Invoke, Response, Thread});
    }

  private:
    friend class HistoryRecorder;
    std::vector<CompletedOp> Ops;
    uint32_t Thread = 0;
  };

  ThreadLog &threadLog(unsigned ThreadId) {
    VBL_ASSERT(ThreadId < Logs.size(), "thread id out of range");
    return Logs[ThreadId];
  }

  /// All recorded operations, sorted by invocation time. Call only
  /// after every recording thread has joined.
  std::vector<CompletedOp> merged() const;

  size_t totalOps() const;

private:
  std::vector<ThreadLog> Logs;
};

/// Runs \p Fn as one timed operation and records it: the standard
/// pattern for instrumenting an op call site.
template <class Fn>
bool recordOp(HistoryRecorder::ThreadLog &Log, SetOp Op, SetKey Key,
              Fn &&Call, uint64_t (*Clock)()) {
  const uint64_t Invoke = Clock();
  const bool Result = Call();
  const uint64_t Response = Clock();
  Log.record(Op, Key, Result, Invoke, Response);
  return Result;
}

} // namespace lin
} // namespace vbl

#endif // VBL_LIN_HISTORY_H
