//===- lin/LinChecker.cpp - Linearizability checking ---------------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "lin/LinChecker.h"

#include "support/Compiler.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

using namespace vbl;
using namespace vbl::lin;

namespace {

/// Wing-Gong style DFS over linearization prefixes of one key's history.
///
/// The done-set is represented as "everything before Frontier except the
/// ops listed in Holes". Holes are remaining ops that were *skipped
/// over* by the chosen linearization; their count is bounded by the true
/// operation concurrency (ops whose real-time intervals are still open),
/// which stays small even when an oversubscribed thread is preempted
/// mid-operation and its interval stretches over hundreds of later ops.
class SingleKeySearch {
public:
  SingleKeySearch(std::vector<CompletedOp> OpsIn, bool Present)
      : Ops(std::move(OpsIn)), InitialPresent(Present) {
    std::sort(Ops.begin(), Ops.end(),
              [](const CompletedOp &A, const CompletedOp &B) {
                return A.Invoke < B.Invoke;
              });
    // Suffix minimum of responses: minimal response among ops[i..).
    SuffixMinResp.assign(Ops.size() + 1, UINT64_MAX);
    for (size_t I = Ops.size(); I != 0; --I)
      SuffixMinResp[I - 1] =
          std::min(SuffixMinResp[I], Ops[I - 1].Response);
  }

  bool run() { return dfs(0, {}, InitialPresent); }

private:
  /// Applies one operation's contract to the presence bit. Returns
  /// false if the recorded result contradicts the state.
  static bool applyOp(const CompletedOp &Op, bool Present,
                      bool &NextPresent) {
    switch (Op.Op) {
    case SetOp::Insert:
      if (Op.Result == Present)
        return false; // insert succeeds iff absent
      NextPresent = true;
      return true;
    case SetOp::Remove:
      if (Op.Result != Present)
        return false; // remove succeeds iff present
      NextPresent = false;
      return true;
    case SetOp::Contains:
      if (Op.Result != Present)
        return false;
      NextPresent = Present;
      return true;
    case SetOp::RangeQuery:
      // Scans never reach the per-key search directly: decomposeScans()
      // lowers them to Contains observations first. A raw RangeQuery
      // record is a caller bug; fail the check loudly rather than guess.
      return false;
    }
    vbl_unreachable("covered switch");
  }

  static uint64_t hashState(size_t Frontier,
                            const std::vector<uint32_t> &Holes,
                            bool Present) {
    uint64_t H = Frontier * 0x9e3779b97f4a7c15ULL + (Present ? 1 : 0);
    for (uint32_t Hole : Holes)
      H = (H ^ Hole) * 0xff51afd7ed558ccdULL;
    return H;
  }

  /// Linearizes op \p I from state (Frontier, Holes): ops in Holes and
  /// ops at indices >= Frontier are remaining.
  bool linearize(size_t I, size_t Frontier, std::vector<uint32_t> Holes,
                 bool Present) {
    bool NextPresent = Present;
    if (!applyOp(Ops[I], Present, NextPresent))
      return false;
    if (I < Frontier) {
      // I was a hole.
      Holes.erase(std::find(Holes.begin(), Holes.end(),
                            static_cast<uint32_t>(I)));
      return dfs(Frontier, std::move(Holes), NextPresent);
    }
    // Ops [Frontier, I) were skipped over: they become holes.
    for (size_t J = Frontier; J != I; ++J)
      Holes.push_back(static_cast<uint32_t>(J));
    return dfs(I + 1, std::move(Holes), NextPresent);
  }

  bool dfs(size_t Frontier, std::vector<uint32_t> Holes, bool Present) {
    if (Frontier == Ops.size() && Holes.empty())
      return true;
    std::sort(Holes.begin(), Holes.end());
    if (!Visited.insert(hashState(Frontier, Holes, Present)).second)
      return false; // Explored (and failed) before. Hash collisions
                    // could only cause a false "not linearizable", and
                    // 64-bit collisions over these state counts are
                    // beyond negligible.

    // An op can be linearized first iff it is invoked before every
    // remaining op's response (Wing-Gong candidate rule).
    uint64_t MinResp = SuffixMinResp[Frontier];
    for (uint32_t Hole : Holes)
      MinResp = std::min(MinResp, Ops[Hole].Response);

    for (uint32_t Hole : Holes)
      if (Ops[Hole].Invoke <= MinResp &&
          linearize(Hole, Frontier, Holes, Present))
        return true;
    for (size_t I = Frontier;
         I != Ops.size() && Ops[I].Invoke <= MinResp; ++I)
      if (linearize(I, Frontier, Holes, Present))
        return true;
    return false;
  }

  std::vector<CompletedOp> Ops;
  std::vector<uint64_t> SuffixMinResp;
  bool InitialPresent;
  std::unordered_set<uint64_t> Visited;
};

} // namespace

bool vbl::lin::checkSingleKeyHistory(std::vector<CompletedOp> Ops,
                                     bool InitiallyPresent) {
  SingleKeySearch Search(std::move(Ops), InitiallyPresent);
  return Search.run();
}

std::vector<CompletedOp>
vbl::lin::decomposeScans(const std::vector<CompletedScan> &Scans,
                         const std::vector<SetKey> &Universe) {
  std::vector<CompletedOp> Synthesized;
  for (const CompletedScan &Scan : Scans) {
    std::unordered_set<SetKey> Reported(Scan.Keys.begin(),
                                        Scan.Keys.end());
    for (SetKey Key : Universe) {
      if (Key < Scan.Lo || Key > Scan.Hi)
        continue;
      Synthesized.push_back({SetOp::Contains, Key,
                             Reported.count(Key) == 1, Scan.Invoke,
                             Scan.Response, Scan.Thread});
    }
  }
  return Synthesized;
}

LinResult vbl::lin::checkSetHistory(
    const std::vector<CompletedOp> &History,
    const std::vector<SetKey> &InitialKeys) {
  std::unordered_map<SetKey, std::vector<CompletedOp>> PerKey;
  for (const CompletedOp &Op : History)
    PerKey[Op.Key].push_back(Op);

  std::unordered_set<SetKey> Initial(InitialKeys.begin(),
                                     InitialKeys.end());

  LinResult Result;
  for (auto &[Key, Ops] : PerKey) {
    if (checkSingleKeyHistory(Ops, Initial.count(Key) == 1))
      continue;
    Result.Ok = false;
    Result.ViolatingKey = Key;
    Result.Message = "no linearization exists for the " +
                     std::to_string(Ops.size()) +
                     " operations on key " + std::to_string(Key);
    return Result;
  }
  return Result;
}
