//===- harness/BenchJson.h - Machine-readable benchmark records ----------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JSON output for the bench harness, consumed by tools/run_benches.py
/// (suite runner) and tools/bench_compare.py (the CI perf-smoke gate).
/// One record per measured (bench, structure, threads, key_range,
/// update_pct) point; the file layout is
///
///   { "schema": "vbl-bench-v1",
///     "context": { "duration_ms": "...", ... },
///     "records": [ { "bench": ..., "structure": ...,
///                    "threads": ..., "key_range": ...,
///                    "update_pct": ..., "repeats": ...,
///                    "throughput_ops_s": ..., "throughput_stddev": ...,
///                    "p50_latency_ns": ...|null,
///                    "p99_latency_ns": ...|null,
///                    "p999_latency_ns": ...|null }, ... ] }
///
/// Latency percentiles are null for throughput-only sweeps (per-op
/// timing adds two clock reads per operation, so figure benches skip
/// it; measurePoint collects one dedicated latency repetition).
///
//===----------------------------------------------------------------------===//

#ifndef VBL_HARNESS_BENCHJSON_H
#define VBL_HARNESS_BENCHJSON_H

#include "harness/Runner.h"

#include <string>
#include <utility>
#include <vector>

namespace vbl {
namespace harness {

/// One measured benchmark point.
struct BenchRecord {
  std::string Bench;
  std::string Structure;
  unsigned Threads = 1;
  SetKey KeyRange = 0;
  unsigned UpdatePercent = 0;
  unsigned Repeats = 0;
  double ThroughputOpsPerSec = 0.0;
  double ThroughputStddev = 0.0;
  bool HasLatency = false;
  double P50LatencyNs = 0.0;
  double P99LatencyNs = 0.0;
  double P999LatencyNs = 0.0;
  /// Counter delta for this point (--stats runs only). Serialized as a
  /// "stats" object appended to the record; readers that only know the
  /// base schema (bench_compare.py) ignore unknown keys.
  bool HasStats = false;
  stats::Snapshot Stats;
};

/// Accumulates records (and free-form context strings) and writes the
/// vbl-bench-v1 JSON document.
class BenchJsonReport {
public:
  void add(BenchRecord Record) { Records.push_back(std::move(Record)); }

  /// Adds a context key/value (duration, machine notes, ...). Keys are
  /// emitted in insertion order.
  void setContext(std::string Key, std::string Value);

  std::string toJson() const;

  /// Writes the document; returns false (with a message on stderr) on
  /// I/O failure.
  bool writeFile(const std::string &Path) const;

  size_t recordCount() const { return Records.size(); }

private:
  std::vector<BenchRecord> Records;
  std::vector<std::pair<std::string, std::string>> Context;
};

/// Full protocol for one point: throughput via measureAlgorithm
/// (Repeats fresh structures), plus — when \p WithLatency — one extra
/// repetition with per-op timing for the latency percentiles across
/// all operation types.
BenchRecord measurePoint(const std::string &Bench,
                         const std::string &Structure,
                         const WorkloadConfig &Config,
                         bool WithLatency = true);

} // namespace harness
} // namespace vbl

#endif // VBL_HARNESS_BENCHJSON_H
