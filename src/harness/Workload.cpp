//===- harness/Workload.cpp - Workload helpers ---------------------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "harness/Workload.h"

using namespace vbl;
using namespace vbl::harness;

size_t vbl::harness::prefill(ConcurrentSet &Set, SetKey KeyRange,
                             uint64_t Seed) {
  Xoshiro256 Rng(Seed ^ 0x5eedULL);
  // Decide membership per key first (so the resulting set depends only
  // on the seed), then insert in shuffled order: insertion order is
  // irrelevant for the lists but worst-case-degenerate for unbalanced
  // trees if ascending (Synchrobench also prepopulates randomly).
  std::vector<SetKey> Chosen;
  Chosen.reserve(static_cast<size_t>(KeyRange) / 2 + 8);
  for (SetKey Key = 0; Key != KeyRange; ++Key)
    if (Rng.nextPercent(50))
      Chosen.push_back(Key);
  for (size_t I = Chosen.size(); I > 1; --I)
    std::swap(Chosen[I - 1], Chosen[Rng.nextBounded(I)]);
  size_t Inserted = 0;
  for (SetKey Key : Chosen)
    Inserted += Set.insert(Key);
  return Inserted;
}
