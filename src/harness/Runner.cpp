//===- harness/Runner.cpp - Timed throughput measurement -----------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "harness/Runner.h"

#include "support/Barrier.h"
#include "support/Compiler.h"
#include "support/Timing.h"

#include <atomic>
#include <thread>
#include <vector>

using namespace vbl;
using namespace vbl::harness;

namespace {

/// Per-thread op counter padded to its own cache line so counting never
/// becomes the bottleneck being measured.
struct alignas(CacheLineBytes) PaddedCounter {
  uint64_t Value = 0;
};

bool CollectStats = false;
stats::Snapshot LastStats;

} // namespace

void vbl::harness::setStatsCollection(bool Enabled) {
  CollectStats = Enabled && stats::Enabled;
}

bool vbl::harness::statsCollectionEnabled() { return CollectStats; }

const stats::Snapshot &vbl::harness::lastMeasuredStats() {
  return LastStats;
}

RunResult vbl::harness::runOnce(ConcurrentSet &Set,
                                const WorkloadConfig &Config) {
  const OpPicker Picker(Config.UpdatePercent);
  SpinBarrier StartBarrier(Config.Threads + 1);
  std::atomic<bool> WarmupDone{false};
  std::atomic<bool> Stop{false};
  std::vector<PaddedCounter> Counters(Config.Threads);

  std::vector<std::thread> Threads;
  Threads.reserve(Config.Threads);
  for (unsigned T = 0; T != Config.Threads; ++T) {
    Threads.emplace_back([&, T] {
      Xoshiro256 Rng(Config.Seed + 7919 * (T + 1));
      const auto Range = static_cast<uint64_t>(Config.KeyRange);
      StartBarrier.arriveAndWait();
      // Warm-up: same op stream, not counted.
      while (!WarmupDone.load(std::memory_order_acquire)) {
        const SetKey Key = static_cast<SetKey>(Rng.nextBounded(Range));
        switch (Picker.pick(Rng)) {
        case SetOp::Insert:
          Set.insert(Key);
          break;
        case SetOp::Remove:
          Set.remove(Key);
          break;
        case SetOp::Contains:
          Set.contains(Key);
          break;
        case SetOp::RangeQuery:
          vbl_unreachable("OpPicker yields point ops only");
        }
      }
      // Measured window.
      uint64_t Ops = 0;
      while (!Stop.load(std::memory_order_acquire)) {
        const SetKey Key = static_cast<SetKey>(Rng.nextBounded(Range));
        switch (Picker.pick(Rng)) {
        case SetOp::Insert:
          Set.insert(Key);
          break;
        case SetOp::Remove:
          Set.remove(Key);
          break;
        case SetOp::Contains:
          Set.contains(Key);
          break;
        case SetOp::RangeQuery:
          vbl_unreachable("OpPicker yields point ops only");
        }
        ++Ops;
      }
      Counters[T].Value = Ops;
    });
  }

  StartBarrier.arriveAndWait();
  std::this_thread::sleep_for(std::chrono::milliseconds(Config.WarmupMs));
  const uint64_t MeasureStart = nowNanos();
  WarmupDone.store(true, std::memory_order_release);
  std::this_thread::sleep_for(
      std::chrono::milliseconds(Config.DurationMs));
  Stop.store(true, std::memory_order_release);
  const uint64_t MeasureEnd = nowNanos();
  for (auto &Thread : Threads)
    Thread.join();

  RunResult Result;
  for (const PaddedCounter &Counter : Counters)
    Result.TotalOps += Counter.Value;
  Result.Seconds =
      static_cast<double>(MeasureEnd - MeasureStart) * 1e-9;
  Result.OpsPerSecond =
      static_cast<double>(Result.TotalOps) / Result.Seconds;
  Result.InvariantsHeld = Set.checkInvariants();
  return Result;
}

RunResult vbl::harness::runOnceLatency(ConcurrentSet &Set,
                                       const WorkloadConfig &Config,
                                       LatencyProfile &Profile) {
  const OpPicker Picker(Config.UpdatePercent);
  SpinBarrier StartBarrier(Config.Threads + 1);
  std::atomic<bool> Stop{false};

  /// Per-thread sample buffers, merged after joining.
  struct ThreadSamples {
    std::vector<double> PerOp[3];
  };
  constexpr size_t MaxSamplesPerOp = 200000;
  std::vector<ThreadSamples> AllSamples(Config.Threads);

  std::vector<std::thread> Threads;
  Threads.reserve(Config.Threads);
  for (unsigned T = 0; T != Config.Threads; ++T) {
    Threads.emplace_back([&, T] {
      Xoshiro256 Rng(Config.Seed + 104729 * (T + 1));
      const auto Range = static_cast<uint64_t>(Config.KeyRange);
      ThreadSamples &Mine = AllSamples[T];
      StartBarrier.arriveAndWait();
      while (!Stop.load(std::memory_order_acquire)) {
        const SetKey Key = static_cast<SetKey>(Rng.nextBounded(Range));
        const SetOp Op = Picker.pick(Rng);
        const uint64_t Begin = nowNanos();
        switch (Op) {
        case SetOp::Insert:
          Set.insert(Key);
          break;
        case SetOp::Remove:
          Set.remove(Key);
          break;
        case SetOp::Contains:
          Set.contains(Key);
          break;
        case SetOp::RangeQuery:
          vbl_unreachable("OpPicker yields point ops only");
        }
        const uint64_t End = nowNanos();
        auto &Bucket = Mine.PerOp[static_cast<int>(Op)];
        if (Bucket.size() < MaxSamplesPerOp)
          Bucket.push_back(static_cast<double>(End - Begin));
      }
    });
  }

  StartBarrier.arriveAndWait();
  const uint64_t MeasureStart = nowNanos();
  std::this_thread::sleep_for(
      std::chrono::milliseconds(Config.WarmupMs + Config.DurationMs));
  Stop.store(true, std::memory_order_release);
  const uint64_t MeasureEnd = nowNanos();
  for (auto &Thread : Threads)
    Thread.join();

  RunResult Result;
  for (const ThreadSamples &Mine : AllSamples) {
    for (int Op = 0; Op != 3; ++Op) {
      SampleStats &Target = Op == static_cast<int>(SetOp::Insert)
                                ? Profile.Insert
                            : Op == static_cast<int>(SetOp::Remove)
                                ? Profile.Remove
                                : Profile.Contains;
      for (double Sample : Mine.PerOp[Op])
        Target.add(Sample);
      Result.TotalOps += Mine.PerOp[Op].size();
    }
  }
  Result.Seconds =
      static_cast<double>(MeasureEnd - MeasureStart) * 1e-9;
  Result.OpsPerSecond =
      static_cast<double>(Result.TotalOps) / Result.Seconds;
  Result.InvariantsHeld = Set.checkInvariants();
  return Result;
}

SampleStats
vbl::harness::measureAlgorithm(const std::string &Algorithm,
                               const WorkloadConfig &Config) {
  // Deltas rather than raw totals: the process-wide counters span every
  // algorithm measured so far, and a bench sweeps many.
  const stats::Snapshot Before =
      CollectStats ? stats::snapshotAll() : stats::Snapshot();
  SampleStats Stats;
  for (unsigned Rep = 0; Rep != Config.Repeats; ++Rep) {
    auto Set = makeSet(Algorithm);
    if (!Set) {
      std::fprintf(stderr, "error: unknown algorithm '%s'\n",
                   Algorithm.c_str());
      std::abort();
    }
    WorkloadConfig RepConfig = Config;
    RepConfig.Seed = Config.Seed + 1000003ULL * Rep;
    prefill(*Set, Config.KeyRange, RepConfig.Seed);
    const RunResult Result = runOnce(*Set, RepConfig);
    if (!Result.InvariantsHeld) {
      std::fprintf(stderr,
                   "error: %s corrupted its structure during the "
                   "benchmark run\n",
                   Algorithm.c_str());
      std::abort();
    }
    Stats.add(Result.OpsPerSecond);
  }
  LastStats =
      CollectStats ? stats::snapshotAll().delta(Before) : stats::Snapshot();
  return Stats;
}
