//===- harness/Workload.h - Synchrobench-style workload definition -------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's experimental methodology (§4), reproduced: a workload is
/// x% updates (split evenly between insert and remove) and (100-x)%
/// contains, keys uniform over a fixed range, the list pre-populated
/// with each key present with probability 1/2 (so the steady-state size
/// is about half the range).
///
//===----------------------------------------------------------------------===//

#ifndef VBL_HARNESS_WORKLOAD_H
#define VBL_HARNESS_WORKLOAD_H

#include "core/SetConfig.h"
#include "lists/SetInterface.h"
#include "support/Random.h"
#include "sync/Policy.h"

#include <cstdint>

namespace vbl {
namespace harness {

struct WorkloadConfig {
  /// x: percentage of update operations (x/2 insert + x/2 remove).
  unsigned UpdatePercent = 20;
  /// Keys are drawn uniformly from [0, KeyRange).
  SetKey KeyRange = 50;
  unsigned Threads = 1;
  /// Measured window per repetition.
  unsigned DurationMs = 100;
  /// Unmeasured warm-up before each measured window.
  unsigned WarmupMs = 30;
  /// Repetitions; the reported figure is the mean (the paper uses 5).
  unsigned Repeats = 3;
  uint64_t Seed = 42;
};

/// One thread's operation picker. Matches the paper's split exactly:
/// updates are x%, half insert and half remove.
class OpPicker {
public:
  explicit OpPicker(unsigned UpdatePercent)
      : UpdatePercent(UpdatePercent) {}

  SetOp pick(Xoshiro256 &Rng) const {
    const uint64_t Roll = Rng.nextBounded(100);
    if (Roll >= UpdatePercent)
      return SetOp::Contains;
    // Independent fair coin for the insert/remove split. Reusing Roll
    // ("Roll * 2 < UpdatePercent") skews odd percentages — at x=5 the
    // update slice {0..4} gave 3 inserts to 2 removes, drifting the
    // steady-state set size above range/2 and understating traversal
    // cost at exactly the low-update settings the paper sweeps.
    return Rng.nextBounded(2) == 0 ? SetOp::Insert : SetOp::Remove;
  }

private:
  unsigned UpdatePercent;
};

/// Pre-populates \p Set: each key in [0, KeyRange) present with
/// probability 1/2 (§4's methodology). Returns the number inserted.
size_t prefill(ConcurrentSet &Set, SetKey KeyRange, uint64_t Seed);

} // namespace harness
} // namespace vbl

#endif // VBL_HARNESS_WORKLOAD_H
