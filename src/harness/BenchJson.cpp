//===- harness/BenchJson.cpp - Machine-readable benchmark records --------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "harness/BenchJson.h"

#include "harness/Workload.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace vbl;
using namespace vbl::harness;

namespace {

void appendEscaped(std::string &Out, const std::string &Text) {
  Out += '"';
  for (char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

void appendNumber(std::string &Out, double Value) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", Value);
  Out += Buf;
}

} // namespace

void BenchJsonReport::setContext(std::string Key, std::string Value) {
  for (auto &Entry : Context) {
    if (Entry.first == Key) {
      Entry.second = std::move(Value);
      return;
    }
  }
  Context.emplace_back(std::move(Key), std::move(Value));
}

std::string BenchJsonReport::toJson() const {
  std::string Out;
  Out += "{\n  \"schema\": \"vbl-bench-v1\",\n  \"context\": {";
  for (size_t I = 0; I != Context.size(); ++I) {
    Out += I ? ",\n    " : "\n    ";
    appendEscaped(Out, Context[I].first);
    Out += ": ";
    appendEscaped(Out, Context[I].second);
  }
  Out += Context.empty() ? "},\n" : "\n  },\n";
  Out += "  \"records\": [";
  for (size_t I = 0; I != Records.size(); ++I) {
    const BenchRecord &R = Records[I];
    Out += I ? ",\n    {" : "\n    {";
    Out += "\"bench\": ";
    appendEscaped(Out, R.Bench);
    Out += ", \"structure\": ";
    appendEscaped(Out, R.Structure);
    Out += ", \"threads\": " + std::to_string(R.Threads);
    Out += ", \"key_range\": " + std::to_string(R.KeyRange);
    Out += ", \"update_pct\": " + std::to_string(R.UpdatePercent);
    Out += ", \"repeats\": " + std::to_string(R.Repeats);
    Out += ", \"throughput_ops_s\": ";
    appendNumber(Out, R.ThroughputOpsPerSec);
    Out += ", \"throughput_stddev\": ";
    appendNumber(Out, R.ThroughputStddev);
    Out += ", \"p50_latency_ns\": ";
    if (R.HasLatency)
      appendNumber(Out, R.P50LatencyNs);
    else
      Out += "null";
    Out += ", \"p99_latency_ns\": ";
    if (R.HasLatency)
      appendNumber(Out, R.P99LatencyNs);
    else
      Out += "null";
    Out += ", \"p999_latency_ns\": ";
    if (R.HasLatency)
      appendNumber(Out, R.P999LatencyNs);
    else
      Out += "null";
    if (R.HasStats) {
      Out += ", \"stats\": {";
      stats::appendJsonFields(R.Stats, Out);
      Out += '}';
    }
    Out += '}';
  }
  Out += Records.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return Out;
}

bool BenchJsonReport::writeFile(const std::string &Path) const {
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File) {
    std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                 Path.c_str());
    return false;
  }
  const std::string Doc = toJson();
  const bool Ok =
      std::fwrite(Doc.data(), 1, Doc.size(), File) == Doc.size();
  std::fclose(File);
  if (!Ok)
    std::fprintf(stderr, "error: short write to '%s'\n", Path.c_str());
  return Ok;
}

BenchRecord vbl::harness::measurePoint(const std::string &Bench,
                                       const std::string &Structure,
                                       const WorkloadConfig &Config,
                                       bool WithLatency) {
  BenchRecord Record;
  Record.Bench = Bench;
  Record.Structure = Structure;
  Record.Threads = Config.Threads;
  Record.KeyRange = Config.KeyRange;
  Record.UpdatePercent = Config.UpdatePercent;
  Record.Repeats = Config.Repeats;

  const SampleStats Throughput = measureAlgorithm(Structure, Config);
  // Median across repeats, not mean: one descheduled window must not
  // drag the record down — the CI gate compares these numbers.
  Record.ThroughputOpsPerSec = Throughput.percentile(50);
  Record.ThroughputStddev = Throughput.stddev();
  // Capture before the latency repetition below so the delta covers
  // exactly the throughput protocol the record reports.
  if (statsCollectionEnabled()) {
    Record.HasStats = true;
    Record.Stats = lastMeasuredStats();
  }

  if (!WithLatency)
    return Record;
  auto Set = makeSet(Structure);
  if (!Set) {
    std::fprintf(stderr, "error: unknown algorithm '%s'\n",
                 Structure.c_str());
    std::abort();
  }
  WorkloadConfig LatencyConfig = Config;
  LatencyConfig.Seed = Config.Seed + 777767777ULL;
  prefill(*Set, Config.KeyRange, LatencyConfig.Seed);
  LatencyProfile Profile;
  runOnceLatency(*Set, LatencyConfig, Profile);
  SampleStats AllOps;
  for (const SampleStats *Stats :
       {&Profile.Insert, &Profile.Remove, &Profile.Contains})
    for (double Sample : Stats->samples())
      AllOps.add(Sample);
  if (!AllOps.empty()) {
    Record.HasLatency = true;
    Record.P50LatencyNs = AllOps.percentile(50);
    Record.P99LatencyNs = AllOps.percentile(99);
    Record.P999LatencyNs = AllOps.percentile(99.9);
  }
  return Record;
}
