//===- harness/TablePrinter.h - Figure/table rendering -------------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders one benchmark panel the way the paper's figures are read:
/// one row per thread count, one column per algorithm, cells in Mops/s,
/// plus derived ratio columns (e.g. vbl/lazy, the paper's headline
/// 1.6x). Also emits the raw series as CSV for external plotting.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_HARNESS_TABLEPRINTER_H
#define VBL_HARNESS_TABLEPRINTER_H

#include "harness/BenchJson.h"
#include "harness/Runner.h"
#include "support/Csv.h"

#include <string>
#include <vector>

namespace vbl {
namespace harness {

/// One figure panel: a thread sweep of several algorithms under one
/// workload.
class Panel {
public:
  Panel(std::string Title, std::vector<std::string> Algorithms,
        std::vector<unsigned> ThreadCounts);

  /// Stores the samples for (Threads, Algorithm).
  void setResult(unsigned Threads, const std::string &Algorithm,
                 const SampleStats &Stats);

  /// Stores the counter delta for (Threads, Algorithm). measureAll
  /// fills this itself; benches with their own measurement loop (scan
  /// mixes) use this so print()/appendJson() carry their counters too.
  void setStats(unsigned Threads, const std::string &Algorithm,
                const stats::Snapshot &Stats);

  /// Runs the full sweep with \p Base (Threads field overwritten).
  void measureAll(const WorkloadConfig &Base);

  /// Prints the panel as an aligned text table to stdout. When two or
  /// more algorithms are present the ratio first/second is appended —
  /// the paper's speedup column.
  void print() const;

  /// Appends this panel's series to a CSV (columns: panel, algorithm,
  /// threads, mops_mean, mops_stddev).
  void appendCsv(CsvWriter &Csv) const;

  /// Header for appendCsv output.
  static CsvWriter makeCsv();

  /// Appends this panel's series as vbl-bench-v1 records (bench = the
  /// panel title; latency fields null — the sweep measures throughput
  /// only). \p Base must be the config handed to measureAll: the
  /// per-point thread count comes from the panel, everything else from
  /// the config.
  void appendJson(BenchJsonReport &Report,
                  const WorkloadConfig &Base) const;

  double mean(unsigned Threads, const std::string &Algorithm) const;

private:
  size_t indexOf(const std::string &Algorithm) const;

  std::string Title;
  std::vector<std::string> Algorithms;
  std::vector<unsigned> ThreadCounts;
  std::vector<std::vector<SampleStats>> Results; // [thread][algo]
  /// Per-cell counter deltas, filled by measureAll when --stats is on
  /// (empty snapshots otherwise). print() renders them per structure;
  /// appendJson folds them into the records.
  std::vector<std::vector<stats::Snapshot>> StatsResults;
};

} // namespace harness
} // namespace vbl

#endif // VBL_HARNESS_TABLEPRINTER_H
