//===- harness/TablePrinter.cpp - Figure/table rendering -----------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "harness/TablePrinter.h"

#include "support/AsciiChart.h"
#include "support/Compiler.h"

#include <cstdio>

using namespace vbl;
using namespace vbl::harness;

Panel::Panel(std::string Title, std::vector<std::string> Algorithms,
             std::vector<unsigned> ThreadCounts)
    : Title(std::move(Title)), Algorithms(std::move(Algorithms)),
      ThreadCounts(std::move(ThreadCounts)) {
  Results.assign(this->ThreadCounts.size(),
                 std::vector<SampleStats>(this->Algorithms.size()));
  StatsResults.assign(this->ThreadCounts.size(),
                      std::vector<stats::Snapshot>(this->Algorithms.size()));
}

size_t Panel::indexOf(const std::string &Algorithm) const {
  for (size_t I = 0; I != Algorithms.size(); ++I)
    if (Algorithms[I] == Algorithm)
      return I;
  vbl_unreachable("algorithm not part of this panel");
}

void Panel::setResult(unsigned Threads, const std::string &Algorithm,
                      const SampleStats &Stats) {
  for (size_t T = 0; T != ThreadCounts.size(); ++T) {
    if (ThreadCounts[T] != Threads)
      continue;
    Results[T][indexOf(Algorithm)] = Stats;
    return;
  }
  vbl_unreachable("thread count not part of this panel");
}

void Panel::setStats(unsigned Threads, const std::string &Algorithm,
                     const stats::Snapshot &Stats) {
  for (size_t T = 0; T != ThreadCounts.size(); ++T) {
    if (ThreadCounts[T] != Threads)
      continue;
    StatsResults[T][indexOf(Algorithm)] = Stats;
    return;
  }
  vbl_unreachable("thread count not part of this panel");
}

void Panel::measureAll(const WorkloadConfig &Base) {
  for (size_t T = 0; T != ThreadCounts.size(); ++T) {
    for (size_t A = 0; A != Algorithms.size(); ++A) {
      WorkloadConfig Config = Base;
      Config.Threads = ThreadCounts[T];
      Results[T][A] = measureAlgorithm(Algorithms[A], Config);
      if (statsCollectionEnabled())
        StatsResults[T][A] = lastMeasuredStats();
    }
  }
}

void Panel::print() const {
  std::printf("\n== %s ==\n", Title.c_str());
  std::printf("%8s", "threads");
  for (const std::string &Algorithm : Algorithms)
    std::printf(" %18s", Algorithm.c_str());
  if (Algorithms.size() >= 2)
    std::printf(" %10s/%s", Algorithms[0].c_str(),
                Algorithms[1].c_str());
  std::printf("\n");
  for (size_t T = 0; T != ThreadCounts.size(); ++T) {
    std::printf("%8u", ThreadCounts[T]);
    for (size_t A = 0; A != Algorithms.size(); ++A) {
      const SampleStats &Stats = Results[T][A];
      if (Stats.empty()) {
        std::printf(" %18s", "-");
        continue;
      }
      std::printf(" %10.3f ±%6.3f", Stats.mean() * 1e-6,
                  Stats.stddev() * 1e-6);
    }
    if (Algorithms.size() >= 2 && !Results[T][0].empty() &&
        !Results[T][1].empty() && Results[T][1].mean() > 0)
      std::printf(" %10.2fx", Results[T][0].mean() / Results[T][1].mean());
    std::printf("\n");
  }
  std::printf("   (cells: Mops/s mean ± stddev over repeats)\n");

  // Draw the panel the way the paper's figures read: throughput over
  // thread count, one glyph per algorithm.
  std::vector<std::string> XLabels;
  for (unsigned Threads : ThreadCounts)
    XLabels.push_back(std::to_string(Threads));
  std::vector<ChartSeries> Series;
  bool Complete = true;
  for (size_t A = 0; A != Algorithms.size(); ++A) {
    ChartSeries S;
    S.Label = Algorithms[A];
    for (size_t T = 0; T != ThreadCounts.size(); ++T) {
      if (Results[T][A].empty()) {
        Complete = false;
        break;
      }
      S.Values.push_back(Results[T][A].mean() * 1e-6);
    }
    Series.push_back(std::move(S));
  }
  if (Complete && ThreadCounts.size() > 1)
    std::fputs(renderAsciiChart(XLabels, Series, 12, "Mops/s").c_str(),
               stdout);

  // --stats runs: one counter table per measured cell, after the
  // figure so the default reading order is unchanged.
  for (size_t T = 0; T != ThreadCounts.size(); ++T) {
    for (size_t A = 0; A != Algorithms.size(); ++A) {
      if (StatsResults[T][A].empty())
        continue;
      std::printf("\n  -- stats: %s @ %u threads --\n",
                  Algorithms[A].c_str(), ThreadCounts[T]);
      std::fputs(stats::renderTable(StatsResults[T][A], "    ").c_str(),
                 stdout);
    }
  }
}

CsvWriter Panel::makeCsv() {
  return CsvWriter(
      {"panel", "algorithm", "threads", "mops_mean", "mops_stddev"});
}

void Panel::appendCsv(CsvWriter &Csv) const {
  for (size_t T = 0; T != ThreadCounts.size(); ++T) {
    for (size_t A = 0; A != Algorithms.size(); ++A) {
      const SampleStats &Stats = Results[T][A];
      if (Stats.empty())
        continue;
      Csv.addRow({Title, Algorithms[A],
                  CsvWriter::cell(static_cast<long long>(ThreadCounts[T])),
                  CsvWriter::cell(Stats.mean() * 1e-6),
                  CsvWriter::cell(Stats.stddev() * 1e-6)});
    }
  }
}

void Panel::appendJson(BenchJsonReport &Report,
                       const WorkloadConfig &Base) const {
  for (size_t T = 0; T != ThreadCounts.size(); ++T) {
    for (size_t A = 0; A != Algorithms.size(); ++A) {
      const SampleStats &Stats = Results[T][A];
      if (Stats.empty())
        continue;
      BenchRecord Record;
      Record.Bench = Title;
      Record.Structure = Algorithms[A];
      Record.Threads = ThreadCounts[T];
      Record.KeyRange = Base.KeyRange;
      Record.UpdatePercent = Base.UpdatePercent;
      Record.Repeats = static_cast<unsigned>(Stats.count());
      // Median across repeats (see measurePoint): gate-friendly.
      Record.ThroughputOpsPerSec = Stats.percentile(50);
      Record.ThroughputStddev = Stats.stddev();
      if (!StatsResults[T][A].empty()) {
        Record.HasStats = true;
        Record.Stats = StatsResults[T][A];
      }
      Report.add(Record);
    }
  }
}

double Panel::mean(unsigned Threads, const std::string &Algorithm) const {
  for (size_t T = 0; T != ThreadCounts.size(); ++T)
    if (ThreadCounts[T] == Threads)
      return Results[T][indexOf(Algorithm)].mean();
  vbl_unreachable("thread count not part of this panel");
}
