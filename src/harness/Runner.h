//===- harness/Runner.h - Timed throughput measurement -------------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a workload against an algorithm and reports throughput, with
/// the paper's protocol: pre-populate, warm up, measure a fixed window,
/// repeat, average. A fresh list is built for every repetition so the
/// measured state is identical across algorithms and repeats.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_HARNESS_RUNNER_H
#define VBL_HARNESS_RUNNER_H

#include "harness/Workload.h"
#include "stats/Stats.h"
#include "support/Stats.h"

#include <string>

namespace vbl {
namespace harness {

struct RunResult {
  double OpsPerSecond = 0.0;
  uint64_t TotalOps = 0;
  double Seconds = 0.0;
  bool InvariantsHeld = true;
};

/// One measured window against an existing (already prefilled) set.
RunResult runOnce(ConcurrentSet &Set, const WorkloadConfig &Config);

/// Full protocol for one (algorithm, config) point: Repeats fresh
/// lists, each prefilled, warmed and measured; returns the throughput
/// samples (ops/second). Aborts the process if the algorithm name is
/// unknown or a structural invariant breaks (a benchmark must never
/// publish numbers from a corrupt structure).
SampleStats measureAlgorithm(const std::string &Algorithm,
                             const WorkloadConfig &Config);

/// Turns per-measurement counter collection on (the benches' --stats
/// flag). Off by default so snapshotting stays out of default runs;
/// forced off when the layer is compiled out (VBL_STATS=0).
void setStatsCollection(bool Enabled);
bool statsCollectionEnabled();

/// Counter/histogram delta covering the most recent measureAlgorithm
/// call: prefill, warm-up and measured window of every repetition, all
/// threads. Empty when collection is off.
const stats::Snapshot &lastMeasuredStats();

/// Per-operation latency samples (nanoseconds), split by operation
/// type. Collected by runOnceLatency.
struct LatencyProfile {
  SampleStats Insert;
  SampleStats Remove;
  SampleStats Contains;
};

/// Like runOnce but times every operation individually (two clock
/// reads per op of overhead — fine for latency analysis, do not mix
/// with throughput numbers). Sample count is capped per thread to
/// bound memory.
RunResult runOnceLatency(ConcurrentSet &Set, const WorkloadConfig &Config,
                         LatencyProfile &Profile);

} // namespace harness
} // namespace vbl

#endif // VBL_HARNESS_RUNNER_H
