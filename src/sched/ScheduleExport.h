//===- sched/ScheduleExport.h - Project raw traces onto LL ---------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The §2.2 projection: "the schedule exported by an execution" keeps
/// only the reads, writes and node creations *corresponding to the
/// sequential implementation LL* that *take effect*. The raw traces of
/// the step scheduler contain much more (lock traffic, deletion marks,
/// validation re-reads, abandoned attempts); this exporter distils them:
///
///  - drops Lock*, Marked, ReadCheck and Restart events;
///  - drops val-reads of the head sentinel (LL never reads head.val);
///  - drops writes to an operation's own not-yet-published node and the
///    NewNode event of an insert that never published (LL's failed
///    insert creates nothing);
///  - re-positions the NewNode event of a published insert directly
///    before its link write (LL creates the node there);
///  - splices traversals across restarts: a restart-from-prev
///    continues the previous walk, so the stale tail of the old walk
///    (everything after the continuation node) is trimmed and the new
///    reads are appended; a restart from the head discards the old walk
///    entirely. The result is the single monotone head-to-target walk
///    that "takes effect".
///
/// OpBegin/OpEnd events are retained: §2.1's histories include
/// invocations and responses, and the checkers need the results.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_SCHED_SCHEDULEEXPORT_H
#define VBL_SCHED_SCHEDULEEXPORT_H

#include "sched/Event.h"
#include "sched/SpecInterpreter.h"

#include <vector>

namespace vbl {
namespace sched {

/// Per-operation export: LL-comparable steps plus metadata.
std::vector<ExportedOp> exportOps(const Schedule &Raw,
                                  const void *HeadNode);

/// Whole-schedule export, preserving the global order of the kept
/// events (with each published NewNode hoisted before its link write).
Schedule exportLLSchedule(const Schedule &Raw, const void *HeadNode);

} // namespace sched
} // namespace vbl

#endif // VBL_SCHED_SCHEDULEEXPORT_H
