//===- sched/InterleavingExplorer.h - Enumerate and replay schedules -----===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two engines on top of the StepScheduler:
///
///  - InterleavingExplorer::exploreAll enumerates EVERY interleaving of
///    an episode's threads (lexicographic DFS with replay-from-scratch,
///    standard stateless model checking). Running the *sequential*
///    implementation LL under it generates the schedule space § of
///    §2.2; running a concurrent list under it model-checks small
///    scenarios exhaustively.
///
///  - replaySchedule drives an implementation so that its execution
///    exports a given target schedule. Success constructs the existence
///    witness of §2.2's "implementation I accepts schedule sigma";
///    failure (a thread blocks on a lock, diverges, or cannot make the
///    required step) is a rejection — the operational content of the
///    paper's Figs. 2 and 3 and of the concurrency-optimality theorem.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_SCHED_INTERLEAVINGEXPLORER_H
#define VBL_SCHED_INTERLEAVINGEXPLORER_H

#include "analysis/FlowInvariant.h"
#include "analysis/RaceReport.h"
#include "sched/Event.h"
#include "sched/StepScheduler.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace vbl {
namespace sched {

/// A fresh system-under-test instance plus the thread programs to run
/// against it. Recreated for every episode.
struct Episode {
  /// One body per logical thread; bodies run ops via tracedOp().
  std::vector<std::function<void()>> Bodies;
  /// Identity of the list's head sentinel.
  const void *HeadNode = nullptr;
  /// Initial (node, key) chain head..tail for state reconstruction.
  std::vector<std::pair<const void *, SetKey>> InitialChain;
  /// Keeps the list (and anything the bodies capture) alive.
  std::shared_ptr<void> Holder;
  /// Flow-invariant self-description of the list (analysis/FlowView.h).
  /// Left falsy (default) to skip flow checking for the episode;
  /// factoryForWith populates it for backends exposing flowView().
  analysis::FlowView Flow;
};

using EpisodeFactory = std::function<Episode()>;

/// Outcome of one fully-executed episode.
struct EpisodeResult {
  Schedule Raw;
  Episode Meta;                  ///< Head/chain of the instance that ran.
  std::vector<unsigned> Choices; ///< Thread granted at each step.
  bool Deadlocked = false;
  /// Happens-before races found in this interleaving. Populated only
  /// when the episode ran under AnalyzedPolicy (the access log is
  /// empty, hence race-free by construction, for other policies).
  std::vector<analysis::RaceReport> Races;
  /// Flow-invariant violations found by re-deriving node-local flow
  /// after every step. Populated only when Meta.Flow is set.
  std::vector<analysis::FlowReport> FlowViolations;
};

class InterleavingExplorer {
public:
  explicit InterleavingExplorer(EpisodeFactory Factory)
      : Factory(std::move(Factory)) {}

  /// Runs one episode: follows \p Forced while it lasts, then always
  /// grants the lowest runnable thread. Records the actual choice at
  /// every step and (optionally) the runnable set per step.
  EpisodeResult
  run(const std::vector<unsigned> &Forced,
      std::vector<std::vector<unsigned>> *RunnableSets = nullptr);

  /// Exhaustive lexicographic DFS over all interleavings. Calls
  /// \p Visitor for every complete episode. Returns the number of
  /// episodes executed; stops early (returning what it has) once
  /// \p MaxEpisodes is reached.
  size_t exploreAll(const std::function<void(const EpisodeResult &)> &Visitor,
                    size_t MaxEpisodes);

private:
  EpisodeFactory Factory;
};

/// Result of a schedule-driven replay.
struct ReplayResult {
  bool Accepted = false;
  std::string Reason; ///< Why the schedule was rejected.
  Schedule RawTrace;  ///< Full raw trace of the attempt.
};

/// Attempts to drive a fresh episode from \p Factory so that its
/// execution exports exactly \p Target (canonical comparison, §2.2
/// node-renaming equivalence). \p Target must be an *exported* schedule
/// of complete operations.
ReplayResult replaySchedule(const EpisodeFactory &Factory,
                            const Schedule &Target);

} // namespace sched
} // namespace vbl

#endif // VBL_SCHED_INTERLEAVINGEXPLORER_H
