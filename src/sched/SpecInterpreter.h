//===- sched/SpecInterpreter.h - Local serializability vs LL -------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decides *local serializability* (Definition 1, condition 1): an
/// operation's projected steps must be producible by the sequential
/// implementation LL — i.e., the step sequence must follow LL's control
/// flow with the read values driving the branches. The interpreter
/// replays the projection against Algorithm 1's shape:
///
///   read next(head) -> c ; { read val(c); [<v] read next(c) -> c }* ;
///   insert:   val==v ? end(false) : newnode ; write next(prev) ; end(true)
///   remove:   val!=v ? end(false) : read next(c) ; write next(prev) ;
///             end(true)
///   contains: end(val==v)
///
//===----------------------------------------------------------------------===//

#ifndef VBL_SCHED_SPECINTERPRETER_H
#define VBL_SCHED_SPECINTERPRETER_H

#include "sched/Event.h"

#include <string>
#include <vector>

namespace vbl {
namespace sched {

/// One operation's exported projection.
struct ExportedOp {
  uint32_t Thread = 0;
  uint32_t OpIndex = 0;
  SetOp Op = SetOp::Contains;
  SetKey Key = 0;
  /// Upper bound of a RangeQuery's [Key, KeyHi] window; 0 otherwise.
  SetKey KeyHi = 0;
  bool Result = false;
  bool Completed = false;
  /// LL-comparable steps only (Read Val/Next, Write Next, NewNode); no
  /// OpBegin/OpEnd markers.
  std::vector<Event> Steps;
};

/// Validates \p Op's steps as a legal LL execution of Op(Key) returning
/// Result, starting at \p HeadNode. On failure, *Error (if non-null)
/// receives a description. Incomplete operations validate as a legal
/// *prefix*.
bool validateAgainstSpec(const ExportedOp &Op, const void *HeadNode,
                         std::string *Error = nullptr);

/// Validates against the *adjusted* sequential specification of §2.3,
/// used for the Harris-Michael family: next words carry the owner's
/// logical-deletion mark in bit 0; remove(v) performs only the logical
/// deletion (a marking write on the victim's next word, optionally
/// followed by the physical unlink); traversals of update operations
/// may unlink marked nodes they encounter ("physical removals are put
/// to the traversal procedure of future update operations"); and
/// contains reads the found node's mark. Successful CAS events play the
/// role of LL's writes.
bool validateAgainstAdjustedSpec(const ExportedOp &Op,
                                 const void *HeadNode,
                                 std::string *Error = nullptr);

} // namespace sched
} // namespace vbl

#endif // VBL_SCHED_SPECINTERPRETER_H
