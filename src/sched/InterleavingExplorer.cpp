//===- sched/InterleavingExplorer.cpp - Enumerate and replay schedules ---===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "sched/InterleavingExplorer.h"

#include "analysis/AccessLog.h"
#include "analysis/RaceDetector.h"
#include "sched/ScheduleExport.h"
#include "support/Compiler.h"

#include <algorithm>

using namespace vbl;
using namespace vbl::sched;

EpisodeResult InterleavingExplorer::run(
    const std::vector<unsigned> &Forced,
    std::vector<std::vector<unsigned>> *RunnableSets) {
  EpisodeResult Result;
  // Arm the race detector's access log for the episode. Prefill inside
  // the factory runs without a TraceContext and is never logged; lists
  // on non-analyzed policies log nothing, so this is free for them.
  analysis::AccessLog &Log = analysis::AccessLog::instance();
  Log.enable();
  Result.Meta = Factory();
  StepScheduler Sched(Result.Meta.Bodies);

  // The flow oracle snapshots the reachable heap between steps, while
  // every worker is parked at a policy yield. A falsy Meta.Flow makes
  // every checker call a no-op.
  analysis::FlowChecker Flow(Result.Meta.Flow);
  Flow.onStep(Result.Choices); // Post-prefill baseline (step 0).

  size_t StepIndex = 0;
  for (;;) {
    const std::vector<unsigned> Runnable = Sched.runnableThreads();
    if (Runnable.empty()) {
      Result.Deadlocked = !Sched.allFinished();
      break;
    }
    unsigned Choice;
    if (StepIndex < Forced.size()) {
      Choice = Forced[StepIndex];
      VBL_ASSERT(std::find(Runnable.begin(), Runnable.end(), Choice) !=
                     Runnable.end(),
                 "forced choice is not runnable (nondeterministic "
                 "episode?)");
    } else {
      Choice = Runnable.front();
    }
    if (RunnableSets)
      RunnableSets->push_back(Runnable);
    Result.Choices.push_back(Choice);
    Sched.step(Choice);
    Flow.onStep(Result.Choices);
    ++StepIndex;
    VBL_ASSERT(StepIndex < (size_t(1) << 22),
               "episode exceeded the step budget");
  }
  Flow.onEpisodeEnd(Result.Choices);
  Result.FlowViolations = Flow.takeReports();
  Result.Raw = Sched.schedule();
  Log.disable();
  if (Log.size() != 0)
    Result.Races = analysis::RaceDetector::detect(Log.records(),
                                                  Result.Choices);
  return Result;
}

size_t InterleavingExplorer::exploreAll(
    const std::function<void(const EpisodeResult &)> &Visitor,
    size_t MaxEpisodes) {
  // Lexicographic DFS with whole-episode replay: re-run with a forced
  // prefix, extend greedily with the lowest runnable thread, then
  // backtrack to the deepest position where a larger alternative
  // remains. Determinism of the algorithms under a fixed interleaving
  // makes replay sound.
  size_t Episodes = 0;
  std::vector<unsigned> Prefix;
  for (;;) {
    std::vector<std::vector<unsigned>> RunnableSets;
    const EpisodeResult Result = run(Prefix, &RunnableSets);
    ++Episodes;
    Visitor(Result);
    if (Episodes >= MaxEpisodes)
      return Episodes;

    // Find the deepest step with an untried larger alternative.
    size_t Pos = Result.Choices.size();
    std::vector<unsigned> Next;
    while (Pos != 0) {
      --Pos;
      const std::vector<unsigned> &Avail = RunnableSets[Pos];
      const auto It = std::upper_bound(Avail.begin(), Avail.end(),
                                       Result.Choices[Pos]);
      if (It != Avail.end()) {
        Next.assign(Result.Choices.begin(),
                    Result.Choices.begin() + Pos);
        Next.push_back(*It);
        break;
      }
    }
    if (Next.empty() && Pos == 0)
      return Episodes; // Tree exhausted.
    Prefix = std::move(Next);
  }
}

ReplayResult vbl::sched::replaySchedule(const EpisodeFactory &Factory,
                                        const Schedule &Target) {
  ReplayResult Out;
  Episode Ep = Factory();
  StepScheduler Sched(Ep.Bodies);

  const auto &TargetEvents = Target.events();
  auto targetPrefixKey = [&](size_t Count) {
    return Schedule(std::vector<Event>(TargetEvents.begin(),
                                       TargetEvents.begin() + Count))
        .canonicalKey();
  };
  auto exportedPrefix = [&](size_t Count, std::string &KeyOut) -> bool {
    const Schedule Exp = exportLLSchedule(Sched.schedule(), Ep.HeadNode);
    if (Exp.size() < Count)
      return false;
    KeyOut = Schedule(std::vector<Event>(Exp.events().begin(),
                                         Exp.events().begin() + Count))
                 .canonicalKey();
    return true;
  };

  for (size_t I = 0; I != TargetEvents.size(); ++I) {
    const unsigned Thread = TargetEvents[I].Thread;
    const std::string WantKey = targetPrefixKey(I + 1);
    bool Matched = false;
    // Step the owning thread until the exported prefix grows to cover
    // the target event. The bound is generous: one exported step costs
    // at most a handful of raw steps (locks, validations) in any of the
    // lists in this repo.
    for (int Tries = 0; Tries != 512; ++Tries) {
      std::string HaveKey;
      if (exportedPrefix(I + 1, HaveKey)) {
        if (HaveKey == WantKey) {
          Matched = true;
          break;
        }
        Out.Reason = "diverged at exported event " + std::to_string(I) +
                     ": wanted [" + TargetEvents[I].toString() + "]";
        Out.RawTrace = Sched.schedule();
        return Out;
      }
      if (!Sched.runnable(Thread)) {
        Out.Reason =
            Sched.finished(Thread)
                ? "thread finished before emitting exported event " +
                      std::to_string(I)
                : "thread blocked on a lock before exported event " +
                      std::to_string(I) + " [" +
                      TargetEvents[I].toString() + "]";
        Out.RawTrace = Sched.schedule();
        return Out;
      }
      Sched.step(Thread);
    }
    if (!Matched) {
      Out.Reason = "no progress towards exported event " +
                   std::to_string(I) + " [" + TargetEvents[I].toString() +
                   "] (operation keeps restarting)";
      Out.RawTrace = Sched.schedule();
      return Out;
    }
  }

  // Let trailing bookkeeping (unlocks, returns) finish.
  if (!Sched.drain()) {
    Out.Reason = "episode could not be drained after the last event";
    Out.RawTrace = Sched.schedule();
    return Out;
  }
  Out.RawTrace = Sched.schedule();
  const Schedule Final = exportLLSchedule(Out.RawTrace, Ep.HeadNode);
  if (Final.canonicalKey() != Target.canonicalKey()) {
    Out.Reason = "drained execution exported a different schedule";
    return Out;
  }
  Out.Accepted = true;
  return Out;
}
