//===- sched/ScheduleChecker.h - Definition 1: correct schedules ---------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decides whether an exported schedule is *correct* per Definition 1:
///
///  (1) locally serializable — every operation's projection is a legal
///      execution of the sequential implementation LL (SpecInterpreter);
///  (2) the extension sigma-bar(v) is linearizable — the high-level
///      history, extended with a trailing contains(v) for every key v of
///      the universe (answered from the list state reconstructed from
///      the schedule's writes), linearizes against the set type. This is
///      the condition that rejects "lost update" schedules whose
///      truncated histories look innocent.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_SCHED_SCHEDULECHECKER_H
#define VBL_SCHED_SCHEDULECHECKER_H

#include "sched/Event.h"

#include <string>
#include <vector>

namespace vbl {
namespace sched {

struct CorrectnessResult {
  bool LocallySerializable = true;
  bool Linearizable = true;
  std::string Error;

  bool correct() const { return LocallySerializable && Linearizable; }
};

/// Which sequential specification local serializability is judged
/// against: the pure LL of Algorithm 1, or the §2.3 adjusted variant
/// with logical deletions and delegated unlinks (the Harris-Michael
/// family). The adjusted variant also makes state reconstruction
/// mark-aware.
enum class SpecKind { PureLL, AdjustedLL };

/// Checks Definition 1 on an *exported* schedule (see ScheduleExport).
///
/// \p InitialChain: the (node, key) chain of the initial list from head
/// to tail inclusive — the schedule's writes are replayed over it to
/// reconstruct the final state.
/// \p UniverseKeys: the keys v for which sigma-bar(v) appends a trailing
/// contains(v); callers pass every key their scenario touches (adding
/// untouched keys is sound but pointless).
CorrectnessResult checkScheduleCorrect(
    const Schedule &Exported,
    const std::vector<std::pair<const void *, SetKey>> &InitialChain,
    const std::vector<SetKey> &UniverseKeys,
    SpecKind Spec = SpecKind::PureLL);

/// Reconstructs the set contents implied by the schedule's writes (the
/// paper's state-reconstruction argument before Theorem 3): applies the
/// last write to every node's next field and walks head to tail.
/// Returns false if the resulting graph is not a valid head-to-tail
/// chain (e.g. a lost node made it cyclic or dangling).
bool reconstructFinalState(
    const Schedule &Exported,
    const std::vector<std::pair<const void *, SetKey>> &InitialChain,
    std::vector<SetKey> &KeysOut);

/// Mark-aware reconstruction for the adjusted spec: bit 0 of a written
/// word marks the *owner* node as logically deleted; marked nodes are
/// traversed but excluded from membership.
bool reconstructFinalStateMarked(
    const Schedule &Exported,
    const std::vector<std::pair<const void *, SetKey>> &InitialChain,
    std::vector<SetKey> &KeysOut);

} // namespace sched
} // namespace vbl

#endif // VBL_SCHED_SCHEDULECHECKER_H
