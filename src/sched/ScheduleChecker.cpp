//===- sched/ScheduleChecker.cpp - Definition 1: correct schedules -------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "sched/ScheduleChecker.h"

#include "lin/LinChecker.h"
#include "sched/ScheduleExport.h"
#include "sched/SpecInterpreter.h"
#include "support/Compiler.h"

#include <unordered_map>
#include <unordered_set>

using namespace vbl;
using namespace vbl::sched;

bool vbl::sched::reconstructFinalState(
    const Schedule &Exported,
    const std::vector<std::pair<const void *, SetKey>> &InitialChain,
    std::vector<SetKey> &KeysOut) {
  VBL_ASSERT(InitialChain.size() >= 2, "chain needs head and tail");

  std::unordered_map<const void *, const void *> NextOf;
  std::unordered_map<const void *, SetKey> KeyOf;
  for (size_t I = 0; I != InitialChain.size(); ++I) {
    KeyOf[InitialChain[I].first] = InitialChain[I].second;
    if (I + 1 != InitialChain.size())
      NextOf[InitialChain[I].first] = InitialChain[I + 1].first;
  }

  // Replay: last write to each node's next wins; new nodes register
  // their key and their initial next (the successor recorded at
  // creation is implied by the subsequent link write's position, so a
  // write *from* the new node, if any, sets it; otherwise the exporter
  // guarantees link order makes the walk below well-defined only if the
  // schedule was complete).
  for (const Event &E : Exported.events()) {
    switch (E.Kind) {
    case EventKind::NewNode:
      KeyOf[E.Node] = static_cast<SetKey>(E.Value);
      break;
    case EventKind::Write:
    case EventKind::Cas:
      if (E.Field == MemField::Next)
        NextOf[E.Node] = reinterpret_cast<const void *>(
            static_cast<uintptr_t>(E.Value));
      break;
    case EventKind::Read:
      // A new node's next is set at creation to the curr that the
      // creating traversal read last; the exporter does not keep that
      // initialization, so recover it from the insert's step pattern
      // below (handled in the second pass).
      break;
    default:
      break;
    }
  }

  // Second pass: for every published insert, the new node's next is the
  // node its traversal ended on (the final val-read's node), unless a
  // later write overrode it.
  // Group events per op to find (new node, final traversal target).
  std::unordered_map<uint64_t, const Event *> LastValRead;
  std::unordered_map<uint64_t, const void *> NewNodeOf;
  auto opKey = [](const Event &E) {
    return (static_cast<uint64_t>(E.Thread) << 32) | E.OpIndex;
  };
  for (const Event &E : Exported.events()) {
    if (E.Kind == EventKind::Read && E.Field == MemField::Val)
      LastValRead[opKey(E)] = &E;
    if (E.Kind == EventKind::NewNode &&
        !NewNodeOf.count(opKey(E))) // first creation only
      NewNodeOf[opKey(E)] = E.Node;
  }
  for (const auto &[Op, NewNode] : NewNodeOf) {
    if (NextOf.count(NewNode))
      continue; // Explicit write already defined it.
    const auto It = LastValRead.find(Op);
    if (It != LastValRead.end())
      NextOf[NewNode] = It->second->Node;
  }

  // Walk head -> tail.
  KeysOut.clear();
  const void *Head = InitialChain.front().first;
  const void *Tail = InitialChain.back().first;
  const void *Curr = Head;
  size_t Hops = 0;
  const size_t MaxHops = NextOf.size() + InitialChain.size() + 4;
  while (Curr != Tail) {
    if (++Hops > MaxHops)
      return false; // Cycle.
    const auto NextIt = NextOf.find(Curr);
    if (NextIt == NextOf.end())
      return false; // Dangling.
    Curr = NextIt->second;
    if (Curr == Tail)
      break;
    const auto KeyIt = KeyOf.find(Curr);
    if (KeyIt == KeyOf.end())
      return false; // Unknown node.
    KeysOut.push_back(KeyIt->second);
  }
  return true;
}

bool vbl::sched::reconstructFinalStateMarked(
    const Schedule &Exported,
    const std::vector<std::pair<const void *, SetKey>> &InitialChain,
    std::vector<SetKey> &KeysOut) {
  VBL_ASSERT(InitialChain.size() >= 2, "chain needs head and tail");
  std::unordered_map<const void *, uint64_t> WordOf;
  std::unordered_map<const void *, SetKey> KeyOf;
  for (size_t I = 0; I != InitialChain.size(); ++I) {
    KeyOf[InitialChain[I].first] = InitialChain[I].second;
    if (I + 1 != InitialChain.size())
      WordOf[InitialChain[I].first] = static_cast<uint64_t>(
          reinterpret_cast<uintptr_t>(InitialChain[I + 1].first));
  }
  for (const Event &E : Exported.events()) {
    if (E.Kind == EventKind::NewNode)
      KeyOf[E.Node] = static_cast<SetKey>(E.Value);
    if ((E.Kind == EventKind::Write || E.Kind == EventKind::Cas) &&
        E.Field == MemField::Next)
      WordOf[E.Node] = E.Value;
  }
  // A new node's initial next (set at creation) is the node its
  // traversal last read a value from, unless overwritten.
  std::unordered_map<uint64_t, const Event *> LastValRead;
  std::unordered_map<uint64_t, const void *> NewNodeOf;
  auto opKey = [](const Event &E) {
    return (static_cast<uint64_t>(E.Thread) << 32) | E.OpIndex;
  };
  for (const Event &E : Exported.events()) {
    if (E.Kind == EventKind::Read && E.Field == MemField::Val)
      LastValRead[opKey(E)] = &E;
    if (E.Kind == EventKind::NewNode && !NewNodeOf.count(opKey(E)))
      NewNodeOf[opKey(E)] = E.Node;
  }
  for (const auto &[Op, NewNode] : NewNodeOf) {
    if (WordOf.count(NewNode))
      continue;
    const auto It = LastValRead.find(Op);
    if (It != LastValRead.end())
      WordOf[NewNode] = static_cast<uint64_t>(
          reinterpret_cast<uintptr_t>(It->second->Node));
  }

  KeysOut.clear();
  const void *Head = InitialChain.front().first;
  const void *Tail = InitialChain.back().first;
  const void *Curr = Head;
  size_t Hops = 0;
  const size_t MaxHops = WordOf.size() + InitialChain.size() + 4;
  while (Curr != Tail) {
    if (++Hops > MaxHops)
      return false;
    const auto WordIt = WordOf.find(Curr);
    if (WordIt == WordOf.end())
      return false;
    Curr = reinterpret_cast<const void *>(
        static_cast<uintptr_t>(WordIt->second & ~uint64_t(1)));
    if (Curr == Tail)
      break;
    const auto KeyIt = KeyOf.find(Curr);
    if (KeyIt == KeyOf.end())
      return false;
    // Membership requires being reachable AND unmarked.
    const auto SelfWord = WordOf.find(Curr);
    const bool Marked =
        SelfWord != WordOf.end() && (SelfWord->second & 1);
    if (!Marked)
      KeysOut.push_back(KeyIt->second);
  }
  return true;
}

CorrectnessResult vbl::sched::checkScheduleCorrect(
    const Schedule &Exported,
    const std::vector<std::pair<const void *, SetKey>> &InitialChain,
    const std::vector<SetKey> &UniverseKeys, SpecKind Spec) {
  CorrectnessResult Result;
  const void *HeadNode = InitialChain.front().first;

  // (1) Local serializability of every operation's projection.
  for (const ExportedOp &Op : exportOps(Exported, HeadNode)) {
    std::string Error;
    const bool Ok = Spec == SpecKind::PureLL
                        ? validateAgainstSpec(Op, HeadNode, &Error)
                        : validateAgainstAdjustedSpec(Op, HeadNode,
                                                      &Error);
    if (Ok)
      continue;
    Result.LocallySerializable = false;
    Result.Error = "not locally serializable: " + Error;
    return Result;
  }

  // (2) Linearizability of sigma-bar(v).
  // 2a. Build the high-level history with event indices as timestamps.
  // Range scans are not checked as single history events: each one is
  // lowered to per-key Contains observations (decomposeScans) carrying
  // the scan's full interval — the widened-interval contract. The keys
  // a scan reported are reconstructed from its exported value reads:
  // every in-range val read collects, except (adjusted spec) values
  // whose node's following next-word read carried the deletion mark.
  std::vector<lin::CompletedOp> History;
  std::vector<lin::CompletedScan> Scans;
  std::unordered_map<uint64_t, size_t> InvokeIndex;
  auto opKey = [](const Event &E) {
    return (static_cast<uint64_t>(E.Thread) << 32) | E.OpIndex;
  };
  const auto &Events = Exported.events();
  for (size_t I = 0; I != Events.size(); ++I) {
    const Event &E = Events[I];
    if (E.Kind == EventKind::OpBegin)
      InvokeIndex[opKey(E)] = I;
    if (E.Kind == EventKind::OpEnd) {
      const auto It = InvokeIndex.find(opKey(E));
      // Exported schedules of complete episodes always pair begin/end.
      VBL_ASSERT(It != InvokeIndex.end(), "OpEnd without OpBegin");
      SetKey Key = 0;
      SetKey KeyHi = 0;
      for (const Event &B : Events)
        if (B.Kind == EventKind::OpBegin && opKey(B) == opKey(E)) {
          Key = static_cast<SetKey>(B.Value);
          KeyHi = static_cast<SetKey>(B.Value2);
          break;
        }
      if (E.Op == SetOp::RangeQuery) {
        lin::CompletedScan Scan;
        Scan.Lo = Key;
        Scan.Hi = KeyHi;
        Scan.Invoke = It->second;
        Scan.Response = I;
        Scan.Thread = E.Thread;
        for (size_t J = 0; J != Events.size(); ++J) {
          const Event &S = Events[J];
          if (opKey(S) != opKey(E) || S.Kind != EventKind::Read ||
              S.Field != MemField::Val)
            continue;
          const auto Val = static_cast<SetKey>(S.Value);
          if (Val < Key || Val > KeyHi)
            continue;
          bool Marked = false;
          if (Spec == SpecKind::AdjustedLL)
            // The scan reads the node's next word right after its
            // value; bit 0 is the deletion mark it consulted.
            for (size_t K = J + 1; K != Events.size(); ++K) {
              const Event &N = Events[K];
              if (opKey(N) != opKey(E))
                continue;
              if (N.Kind == EventKind::Read &&
                  N.Field == MemField::Next && N.Node == S.Node)
                Marked = (N.Value & 1) != 0;
              break;
            }
          if (!Marked)
            Scan.Keys.push_back(Val);
        }
        Scans.push_back(std::move(Scan));
        continue;
      }
      History.push_back({E.Op, Key, E.Value != 0, It->second, I,
                         E.Thread});
    }
  }
  for (lin::CompletedOp &Op : lin::decomposeScans(Scans, UniverseKeys))
    History.push_back(std::move(Op));

  // 2b. Reconstruct the final list state from the writes.
  std::vector<SetKey> FinalKeys;
  const bool Reconstructed =
      Spec == SpecKind::PureLL
          ? reconstructFinalState(Exported, InitialChain, FinalKeys)
          : reconstructFinalStateMarked(Exported, InitialChain,
                                        FinalKeys);
  if (!Reconstructed) {
    Result.Linearizable = false;
    Result.Error = "final state is not a valid list (lost or cyclic "
                   "links after replaying writes)";
    return Result;
  }
  std::unordered_set<SetKey> FinalSet(FinalKeys.begin(), FinalKeys.end());

  // 2c. Extend with a trailing contains(v) for each universe key.
  const uint64_t End = Events.size() + 1;
  uint64_t Tick = 0;
  for (SetKey Key : UniverseKeys)
    History.push_back({SetOp::Contains, Key, FinalSet.count(Key) == 1,
                       End + Tick, End + (Tick++) + 1, 0});

  // 2d. Initial membership from the chain (user keys only).
  std::vector<SetKey> InitialKeys;
  for (size_t I = 1; I + 1 < InitialChain.size(); ++I)
    InitialKeys.push_back(InitialChain[I].second);

  const lin::LinResult Lin = lin::checkSetHistory(History, InitialKeys);
  if (!Lin.Ok) {
    Result.Linearizable = false;
    Result.Error = "sigma-bar(v) not linearizable: " + Lin.Message;
  }
  return Result;
}
