//===- sched/ScheduleExport.cpp - Project raw traces onto LL -------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "sched/ScheduleExport.h"

#include "support/Compiler.h"

#include <algorithm>
#include <map>

using namespace vbl;
using namespace vbl::sched;

namespace {

/// A kept event together with its global ordering key. Sub orders a
/// hoisted NewNode (0) before the link write (1) it precedes.
struct KeptEvent {
  size_t RawIndex;
  int Sub;
  Event E;
};

/// Builder for one operation's export.
class OpExportBuilder {
public:
  OpExportBuilder(const void *HeadNode) : HeadNode(HeadNode) {}

  void add(size_t RawIndex, const Event &E) {
    switch (E.Kind) {
    case EventKind::OpBegin:
      Out.Thread = E.Thread;
      Out.OpIndex = E.OpIndex;
      Out.Op = E.Op;
      Out.Key = static_cast<SetKey>(E.Value);
      Out.KeyHi = static_cast<SetKey>(E.Value2);
      BeginIndex = RawIndex;
      HaveBegin = true;
      return;
    case EventKind::OpEnd:
      Out.Result = E.Value != 0;
      Out.Completed = true;
      EndIndex = RawIndex;
      return;
    case EventKind::Restart:
      Attempts.emplace_back();
      return;
    case EventKind::NewNode:
      // Keep the creation at its true position (its placement relative
      // to other threads' steps is semantically meaningful — Fig. 2
      // turns on it); finalize() removes it again if the node is never
      // published, or re-inserts it before the publish write if a
      // restart trimmed it away.
      NewNodeId = E.Node;
      NewNodeEvent = E;
      break;
    case EventKind::Read:
      // LL never reads head.val; implementations may.
      if (E.Field == MemField::Val && E.Node == HeadNode)
        return;
      if (E.Field != MemField::Val && E.Field != MemField::Next)
        return;
      break;
    case EventKind::Write:
      if (E.Field != MemField::Next)
        return; // Deletion marks are metadata.
      if (E.Node == NewNodeId)
        return; // Initialization of the unpublished node.
      break;
    case EventKind::Cas:
      // Lock-free lists: a successful CAS on a next word is LL's write;
      // failed CASes take no effect.
      if (E.Value2 == 0 || E.Field != MemField::Next)
        return;
      break;
    case EventKind::ReadCheck:
    case EventKind::LockAcquire:
    case EventKind::LockBlocked:
    case EventKind::LockRelease:
      return;
    }
    if (Attempts.empty())
      Attempts.emplace_back();
    Attempts.back().push_back({RawIndex, 1, E});
  }

  /// Splices attempts and finalizes the op's kept steps.
  void finalize() {
    std::vector<KeptEvent> Walk;
    for (const auto &Attempt : Attempts) {
      if (Attempt.empty())
        continue;
      const Event &First = Attempt.front().E;
      const bool StartsTraversal =
          First.Kind == EventKind::Read && First.Field == MemField::Next;
      if (StartsTraversal && First.Node == HeadNode) {
        // Restart from the head: the old walk took no effect.
        Walk.clear();
      } else if (StartsTraversal && !Walk.empty()) {
        // Restart from prev: trim the stale tail of the old walk (every
        // step after the continuation node's val read), then continue.
        const void *Continue = First.Node;
        size_t Keep = Walk.size();
        while (Keep != 0) {
          const Event &W = Walk[Keep - 1].E;
          if (W.Kind == EventKind::Read && W.Field == MemField::Val &&
              W.Node == Continue)
            break;
          --Keep;
        }
        if (Keep != 0)
          Walk.resize(Keep);
      }
      Walk.insert(Walk.end(), Attempt.begin(), Attempt.end());
    }

    // Normalize the NewNode event: drop it when the node was never
    // published (LL's failed insert creates nothing); when a restart
    // trimmed the creation away but the publish survived, re-insert it
    // directly before the publish write (where LL would create it).
    if (NewNodeId) {
      const auto isNewNode = [&](const KeptEvent &K) {
        return K.E.Kind == EventKind::NewNode;
      };
      const auto PublishIt = std::find_if(
          Walk.begin(), Walk.end(), [&](const KeptEvent &K) {
            return (K.E.Kind == EventKind::Write ||
                    K.E.Kind == EventKind::Cas) &&
                   K.E.Field == MemField::Next &&
                   reinterpret_cast<const void *>(static_cast<uintptr_t>(
                       K.E.Value)) == NewNodeId;
          });
      if (PublishIt == Walk.end()) {
        // Drop the creation only once the op has completed without
        // publishing (a failed insert); while the op is in flight the
        // creation is real and the publish may still come.
        if (Out.Completed)
          Walk.erase(std::remove_if(Walk.begin(), Walk.end(), isNewNode),
                     Walk.end());
      } else if (std::none_of(Walk.begin(), PublishIt, isNewNode)) {
        const size_t PublishPos =
            static_cast<size_t>(PublishIt - Walk.begin());
        Walk.erase(std::remove_if(Walk.begin(), Walk.end(), isNewNode),
                   Walk.end());
        Walk.insert(Walk.begin() + PublishPos,
                    {Walk[PublishPos].RawIndex, 0, NewNodeEvent});
      }
    }

    Kept = std::move(Walk);
    for (const KeptEvent &K : Kept)
      Out.Steps.push_back(K.E);
  }

  ExportedOp Out;
  std::vector<KeptEvent> Kept;
  size_t BeginIndex = 0;
  size_t EndIndex = 0;
  bool HaveBegin = false;

private:
  const void *HeadNode;
  const void *NewNodeId = nullptr;
  Event NewNodeEvent;
  std::vector<std::vector<KeptEvent>> Attempts;
};

std::map<std::pair<uint32_t, uint32_t>, OpExportBuilder>
buildOps(const Schedule &Raw, const void *HeadNode) {
  std::map<std::pair<uint32_t, uint32_t>, OpExportBuilder> Builders;
  const auto &Events = Raw.events();
  for (size_t I = 0; I != Events.size(); ++I) {
    const Event &E = Events[I];
    const std::pair<uint32_t, uint32_t> Id{E.Thread, E.OpIndex};
    auto It = Builders.find(Id);
    if (It == Builders.end())
      It = Builders.emplace(Id, OpExportBuilder(HeadNode)).first;
    It->second.add(I, E);
  }
  for (auto &[Id, Builder] : Builders)
    Builder.finalize();
  return Builders;
}

} // namespace

std::vector<ExportedOp> vbl::sched::exportOps(const Schedule &Raw,
                                              const void *HeadNode) {
  auto Builders = buildOps(Raw, HeadNode);
  std::vector<ExportedOp> Ops;
  Ops.reserve(Builders.size());
  for (auto &[Id, Builder] : Builders)
    Ops.push_back(std::move(Builder.Out));
  return Ops;
}

Schedule vbl::sched::exportLLSchedule(const Schedule &Raw,
                                      const void *HeadNode) {
  auto Builders = buildOps(Raw, HeadNode);
  std::vector<KeptEvent> All;
  for (auto &[Id, Builder] : Builders) {
    for (const KeptEvent &K : Builder.Kept)
      All.push_back(K);
    if (Builder.HaveBegin) {
      Event Begin;
      Begin.Thread = Builder.Out.Thread;
      Begin.OpIndex = Builder.Out.OpIndex;
      Begin.Kind = EventKind::OpBegin;
      Begin.Op = Builder.Out.Op;
      Begin.Value = static_cast<uint64_t>(Builder.Out.Key);
      Begin.Value2 = static_cast<uint64_t>(Builder.Out.KeyHi);
      All.push_back({Builder.BeginIndex, 1, Begin});
    }
    if (Builder.Out.Completed) {
      Event End;
      End.Thread = Builder.Out.Thread;
      End.OpIndex = Builder.Out.OpIndex;
      End.Kind = EventKind::OpEnd;
      End.Op = Builder.Out.Op;
      End.Value = Builder.Out.Result ? 1 : 0;
      All.push_back({Builder.EndIndex, 1, End});
    }
  }
  std::sort(All.begin(), All.end(),
            [](const KeptEvent &A, const KeptEvent &B) {
              if (A.RawIndex != B.RawIndex)
                return A.RawIndex < B.RawIndex;
              return A.Sub < B.Sub;
            });
  std::vector<Event> Events;
  Events.reserve(All.size());
  for (const KeptEvent &K : All)
    Events.push_back(K.E);
  return Schedule(std::move(Events));
}
