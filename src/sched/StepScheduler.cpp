//===- sched/StepScheduler.cpp - Deterministic step-gated execution ------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "sched/StepScheduler.h"

using namespace vbl;
using namespace vbl::sched;

StepScheduler::StepScheduler(std::vector<std::function<void()>> Bodies) {
  VBL_ASSERT(!Bodies.empty(), "episode needs at least one thread");
  Workers.reserve(Bodies.size());
  for (size_t I = 0; I != Bodies.size(); ++I) {
    auto W = std::make_unique<Worker>();
    W->Parent = this;
    W->ThreadId = static_cast<uint32_t>(I);
    W->Body = std::move(Bodies[I]);
    Workers.push_back(std::move(W));
  }
  // Spawn after the vector is final so Worker addresses are stable.
  for (auto &W : Workers)
    W->Thread = std::thread([this, Raw = W.get()] { workerMain(*Raw); });
}

StepScheduler::~StepScheduler() {
  if (!allFinished() && !drain())
    vbl_unreachable("StepScheduler: episode cannot be drained (deadlock "
                    "in the algorithm under test?)");
  for (auto &W : Workers)
    W->Thread.join();
}

void StepScheduler::workerMain(Worker &W) {
  W.Go.acquire(); // First grant starts the body.
  TraceContext::current() = &W;
  W.Body();
  TraceContext::current() = nullptr;
  W.Finished.store(true, std::memory_order_release);
  W.Done.release();
}

void StepScheduler::Worker::yield() {
  Done.release();
  Go.acquire();
}

void StepScheduler::Worker::record(Event E) {
  // Only the step-token holder executes, so this append is ordered with
  // every other append.
  Parent->Trace.push_back(E);
}

void StepScheduler::Worker::blockOnLock(const void *LockAddr) {
  BlockedOn.store(LockAddr, std::memory_order_release);
  Done.release(); // End the step that discovered the held lock.
  Go.acquire();   // Parked until noteLockReleased + a fresh grant.
}

void StepScheduler::Worker::noteLockReleased(const void *LockAddr) {
  for (auto &Other : Parent->Workers) {
    const void *Expected = LockAddr;
    Other->BlockedOn.compare_exchange_strong(Expected, nullptr,
                                             std::memory_order_acq_rel);
  }
}

bool StepScheduler::finished(unsigned Thread) const {
  VBL_ASSERT(Thread < Workers.size(), "thread index out of range");
  return Workers[Thread]->Finished.load(std::memory_order_acquire);
}

bool StepScheduler::blocked(unsigned Thread) const {
  VBL_ASSERT(Thread < Workers.size(), "thread index out of range");
  return Workers[Thread]->BlockedOn.load(std::memory_order_acquire) !=
         nullptr;
}

bool StepScheduler::allFinished() const {
  for (unsigned I = 0; I != numThreads(); ++I)
    if (!finished(I))
      return false;
  return true;
}

std::vector<unsigned> StepScheduler::runnableThreads() const {
  std::vector<unsigned> Out;
  for (unsigned I = 0; I != numThreads(); ++I)
    if (runnable(I))
      Out.push_back(I);
  return Out;
}

void StepScheduler::step(unsigned Thread) {
  VBL_ASSERT(runnable(Thread), "stepping a finished or blocked thread");
  Worker &W = *Workers[Thread];
  W.Go.release();
  W.Done.acquire();
}

bool StepScheduler::drain(size_t MaxSteps) {
  size_t Steps = 0;
  unsigned Next = 0;
  while (!allFinished()) {
    // Round-robin over runnable threads.
    unsigned Tried = 0;
    while (Tried != numThreads() && !runnable(Next)) {
      Next = (Next + 1) % numThreads();
      ++Tried;
    }
    if (Tried == numThreads())
      return false; // Everyone is finished or blocked: deadlock.
    if (++Steps > MaxSteps)
      return false;
    step(Next);
    Next = (Next + 1) % numThreads();
  }
  return true;
}

std::vector<Event> StepScheduler::opEndEvents() const {
  std::vector<Event> Out;
  for (const Event &E : Trace)
    if (E.Kind == EventKind::OpEnd)
      Out.push_back(E);
  return Out;
}
