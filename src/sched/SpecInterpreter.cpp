//===- sched/SpecInterpreter.cpp - Local serializability vs LL -----------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "sched/SpecInterpreter.h"

#include "support/Compiler.h"

using namespace vbl;
using namespace vbl::sched;

namespace {

/// Cursor over an op's steps with fail-with-message helpers.
class StepCursor {
public:
  StepCursor(const ExportedOp &Op, std::string *Error)
      : Op(Op), Error(Error) {}

  /// True when all steps are consumed.
  bool atEnd() const { return Index == Op.Steps.size(); }

  /// The op ran out of recorded steps: fine iff it is still in flight.
  bool acceptPrefix() const { return !Op.Completed; }

  const Event *peek() const {
    return atEnd() ? nullptr : &Op.Steps[Index];
  }

  const Event &take() { return Op.Steps[Index++]; }

  bool fail(const std::string &Message) {
    if (Error) {
      *Error = "op T" + std::to_string(Op.Thread) + "." +
               std::to_string(Op.OpIndex) + " (" + setOpName(Op.Op) + "(" +
               std::to_string(Op.Key) + ")): " + Message;
      if (!atEnd())
        *Error += " at step " + std::to_string(Index) + " [" +
                  Op.Steps[Index].toString() + "]";
    }
    return false;
  }

private:
  const ExportedOp &Op;
  std::string *Error;
  size_t Index = 0;
};

} // namespace

namespace {

const void *ptrOfWord(uint64_t Word) {
  return reinterpret_cast<const void *>(
      static_cast<uintptr_t>(Word & ~uint64_t(1)));
}
bool markOfWord(uint64_t Word) { return Word & 1; }

} // namespace

bool vbl::sched::validateAgainstAdjustedSpec(const ExportedOp &Op,
                                             const void *HeadNode,
                                             std::string *Error) {
  StepCursor Cursor(Op, Error);

  // Range scans: the contains walk extended across [Key, KeyHi]. Each
  // visited node's next word is read right after its value (the mark
  // bit decides collection), so the shape is the plain alternating
  // walk, exiting at the first value past the range.
  if (Op.Op == SetOp::RangeQuery) {
    if (Cursor.atEnd())
      return Cursor.acceptPrefix() || Cursor.fail("no steps recorded");
    const Event &First = Cursor.take();
    if (First.Kind != EventKind::Read || First.Field != MemField::Next ||
        First.Node != HeadNode)
      return Cursor.fail("must start by reading head.next");
    const void *Curr = ptrOfWord(First.Value);
    bool Seen = false;
    for (;;) {
      if (Cursor.atEnd())
        return Cursor.acceptPrefix() ||
               Cursor.fail("scan ended without a val read");
      const Event &ValE = Cursor.take();
      if (ValE.Kind != EventKind::Read || ValE.Field != MemField::Val ||
          ValE.Node != Curr)
        return Cursor.fail("expected val read of the current node");
      const SetKey Val = static_cast<SetKey>(ValE.Value);
      if (Val > Op.KeyHi) {
        if (!Cursor.atEnd())
          return Cursor.fail("scan must stop past the range");
        if (Op.Completed && Op.Result != Seen)
          return Cursor.fail("scan result contradicts the walk's reads");
        return true;
      }
      if (Cursor.atEnd())
        return Cursor.acceptPrefix() || Cursor.fail("scan ended mid-hop");
      const Event &NextE = Cursor.take();
      if (NextE.Kind != EventKind::Read ||
          NextE.Field != MemField::Next || NextE.Node != Curr)
        return Cursor.fail("expected next read of the current node");
      if (Val >= Op.Key && !markOfWord(NextE.Value))
        Seen = true;
      Curr = ptrOfWord(NextE.Value);
    }
  }

  // contains uses the plain alternating walk plus a trailing mark read.
  if (Op.Op == SetOp::Contains) {
    if (Cursor.atEnd())
      return Cursor.acceptPrefix() || Cursor.fail("no steps recorded");
    const Event &First = Cursor.take();
    if (First.Kind != EventKind::Read || First.Field != MemField::Next ||
        First.Node != HeadNode)
      return Cursor.fail("must start by reading head.next");
    const void *Curr = ptrOfWord(First.Value);
    SetKey Val = 0;
    for (;;) {
      if (Cursor.atEnd())
        return Cursor.acceptPrefix() ||
               Cursor.fail("traversal ended without a val read");
      const Event &ValE = Cursor.take();
      if (ValE.Kind != EventKind::Read || ValE.Field != MemField::Val ||
          ValE.Node != Curr)
        return Cursor.fail("expected val read of the current node");
      Val = static_cast<SetKey>(ValE.Value);
      if (Val >= Op.Key)
        break;
      if (Cursor.atEnd())
        return Cursor.acceptPrefix() ||
               Cursor.fail("traversal ended mid-hop");
      const Event &NextE = Cursor.take();
      if (NextE.Kind != EventKind::Read ||
          NextE.Field != MemField::Next || NextE.Node != Curr)
        return Cursor.fail("expected next read of the current node");
      Curr = ptrOfWord(NextE.Value);
    }
    if (Val != Op.Key) {
      if (!Cursor.atEnd())
        return Cursor.fail("missing contains must stop at the val read");
      if (Op.Completed && Op.Result)
        return Cursor.fail("contains of an absent key returned true");
      return true;
    }
    if (Cursor.atEnd())
      return Cursor.acceptPrefix() ||
             Cursor.fail("contains found the key but never read its mark");
    const Event &MarkE = Cursor.take();
    if (MarkE.Kind != EventKind::Read || MarkE.Field != MemField::Next ||
        MarkE.Node != Curr)
      return Cursor.fail("expected the found node's mark read");
    if (!Cursor.atEnd())
      return Cursor.fail("contains must stop after the mark read");
    if (Op.Completed && Op.Result != !markOfWord(MarkE.Value))
      return Cursor.fail("contains result contradicts the mark read");
    return true;
  }

  // insert / remove share the helping find() walk: the next word of
  // curr is read BEFORE its value (the mark decides whether to unlink).
  if (Cursor.atEnd())
    return Cursor.acceptPrefix() || Cursor.fail("no steps recorded");
  {
    const Event &First = Cursor.take();
    if (First.Kind != EventKind::Read || First.Field != MemField::Next ||
        First.Node != HeadNode)
      return Cursor.fail("must start by reading head.next");
  }
  const void *Prev = HeadNode;
  const void *Curr = ptrOfWord(Op.Steps[0].Value);
  SetKey Val = 0;
  for (;;) {
    if (Cursor.atEnd())
      return Cursor.acceptPrefix() ||
             Cursor.fail("find ended without locating the key");
    const Event &WordE = Cursor.take();
    if (WordE.Kind != EventKind::Read || WordE.Field != MemField::Next ||
        WordE.Node != Curr)
      return Cursor.fail("expected the current node's next-word read");
    const uint64_t SuccWord = WordE.Value;
    if (markOfWord(SuccWord)) {
      // Delegated physical removal of the marked curr.
      if (Cursor.atEnd())
        return Cursor.acceptPrefix() ||
               Cursor.fail("saw a marked node but never unlinked it");
      const Event &CasE = Cursor.take();
      if (CasE.Kind != EventKind::Cas || CasE.Field != MemField::Next ||
          CasE.Node != Prev)
        return Cursor.fail("expected the helping unlink CAS on prev");
      if (ptrOfWord(CasE.Value) != ptrOfWord(SuccWord) ||
          markOfWord(CasE.Value))
        return Cursor.fail("helping unlink must install the successor");
      Curr = ptrOfWord(SuccWord);
      continue;
    }
    if (Cursor.atEnd())
      return Cursor.acceptPrefix() ||
             Cursor.fail("find ended before the val read");
    const Event &ValE = Cursor.take();
    if (ValE.Kind != EventKind::Read || ValE.Field != MemField::Val ||
        ValE.Node != Curr)
      return Cursor.fail("expected val read of the current node");
    Val = static_cast<SetKey>(ValE.Value);
    if (Val >= Op.Key)
      break;
    Prev = Curr;
    Curr = ptrOfWord(SuccWord);
  }

  if (Op.Op == SetOp::Insert) {
    if (Val == Op.Key) {
      if (!Cursor.atEnd())
        return Cursor.fail("failed insert must not take further steps");
      if (Op.Completed && Op.Result)
        return Cursor.fail("insert of a found key must return false");
      return true;
    }
    if (Cursor.atEnd())
      return Cursor.acceptPrefix() ||
             Cursor.fail("successful insert is missing its steps");
    const Event &NewE = Cursor.take();
    if (NewE.Kind != EventKind::NewNode ||
        static_cast<SetKey>(NewE.Value) != Op.Key)
      return Cursor.fail("expected creation of the key's node");
    if (Cursor.atEnd())
      return Cursor.acceptPrefix() ||
             Cursor.fail("insert created a node but never linked it");
    const Event &LinkE = Cursor.take();
    if (LinkE.Kind != EventKind::Cas || LinkE.Field != MemField::Next ||
        LinkE.Node != Prev)
      return Cursor.fail("expected the link CAS on prev");
    if (ptrOfWord(LinkE.Value) != NewE.Node || markOfWord(LinkE.Value))
      return Cursor.fail("link CAS must publish the new node unmarked");
    if (!Cursor.atEnd())
      return Cursor.fail("insert must stop after the link CAS");
    if (Op.Completed && !Op.Result)
      return Cursor.fail("insert that linked a node must return true");
    return true;
  }

  // Remove under the adjusted spec: logical deletion, optional unlink.
  if (Val != Op.Key) {
    if (!Cursor.atEnd())
      return Cursor.fail("failed remove must not take further steps");
    if (Op.Completed && Op.Result)
      return Cursor.fail("remove of an absent key must return false");
    return true;
  }
  if (Cursor.atEnd())
    return Cursor.acceptPrefix() ||
           Cursor.fail("successful remove is missing its steps");
  const Event &SuccE = Cursor.take();
  if (SuccE.Kind != EventKind::Read || SuccE.Field != MemField::Next ||
      SuccE.Node != Curr)
    return Cursor.fail("expected re-read of the victim's next word");
  if (markOfWord(SuccE.Value))
    return Cursor.fail("last attempt saw an already-marked victim");
  if (Cursor.atEnd())
    return Cursor.acceptPrefix() ||
           Cursor.fail("remove never performed its logical deletion");
  const Event &MarkE = Cursor.take();
  if (MarkE.Kind != EventKind::Cas || MarkE.Field != MemField::Next ||
      MarkE.Node != Curr)
    return Cursor.fail("expected the marking CAS on the victim");
  if (MarkE.Value != (SuccE.Value | uint64_t(1)))
    return Cursor.fail("marking CAS must set exactly the mark bit");
  if (!Cursor.atEnd()) {
    const Event &UnlinkE = Cursor.take();
    if (UnlinkE.Kind != EventKind::Cas ||
        UnlinkE.Field != MemField::Next || UnlinkE.Node != Prev)
      return Cursor.fail("expected the optional physical unlink on prev");
    if (ptrOfWord(UnlinkE.Value) != ptrOfWord(SuccE.Value) ||
        markOfWord(UnlinkE.Value))
      return Cursor.fail("unlink must install the successor unmarked");
    if (!Cursor.atEnd())
      return Cursor.fail("remove must stop after the unlink");
  }
  if (Op.Completed && !Op.Result)
    return Cursor.fail("remove that marked a node must return true");
  return true;
}

bool vbl::sched::validateAgainstSpec(const ExportedOp &Op,
                                     const void *HeadNode,
                                     std::string *Error) {
  StepCursor Cursor(Op, Error);

  // --- Range scans: the LL value walk extended across [Key, KeyHi],
  // exiting at the first value past the range. The VBR read protocol
  // certifies after reading (val, next) per hop, so the exit node may
  // carry one trailing next read. Deletion marks are invisible to this
  // spec (mark reads are dropped by the exporter), so the result is
  // checked one-directionally: a scan that saw no in-range value must
  // not report keys. ---
  if (Op.Op == SetOp::RangeQuery) {
    if (Cursor.atEnd())
      return Cursor.acceptPrefix() || Cursor.fail("no steps recorded");
    const Event &First = Cursor.take();
    if (First.Kind != EventKind::Read || First.Field != MemField::Next ||
        First.Node != HeadNode)
      return Cursor.fail("must start by reading head.next");
    const void *Curr = ptrOfWord(First.Value);
    bool Seen = false;
    for (;;) {
      if (Cursor.atEnd())
        return Cursor.acceptPrefix() ||
               Cursor.fail("scan ended without a val read");
      const Event &ValE = Cursor.take();
      if (ValE.Kind != EventKind::Read || ValE.Field != MemField::Val ||
          ValE.Node != Curr)
        return Cursor.fail("expected val read of the current node");
      const SetKey Val = static_cast<SetKey>(ValE.Value);
      if (Val > Op.KeyHi) {
        if (!Cursor.atEnd()) {
          const Event &TailE = Cursor.take();
          if (TailE.Kind != EventKind::Read ||
              TailE.Field != MemField::Next || TailE.Node != Curr)
            return Cursor.fail("scan must stop past the range");
          if (!Cursor.atEnd())
            return Cursor.fail("scan must stop after the exit-node "
                               "next read");
        }
        if (Op.Completed && Op.Result && !Seen)
          return Cursor.fail("scan reported keys but saw none in range");
        return true;
      }
      Seen = Seen || Val >= Op.Key;
      if (Cursor.atEnd())
        return Cursor.acceptPrefix() || Cursor.fail("scan ended mid-hop");
      const Event &NextE = Cursor.take();
      if (NextE.Kind != EventKind::Read ||
          NextE.Field != MemField::Next || NextE.Node != Curr)
        return Cursor.fail("expected next read of the current node");
      Curr = ptrOfWord(NextE.Value);
    }
  }

  // --- Traversal: read next(head), then alternate val/next reads. ---
  const void *Prev = HeadNode;
  if (Cursor.atEnd())
    return Cursor.acceptPrefix() || Cursor.fail("no steps recorded");
  {
    const Event &E = Cursor.take();
    if (E.Kind != EventKind::Read || E.Field != MemField::Next ||
        E.Node != HeadNode)
      return Cursor.fail("must start by reading head.next");
  }
  const void *Curr = reinterpret_cast<const void *>(
      static_cast<uintptr_t>(Op.Steps[0].Value));
  SetKey Val = 0;
  for (;;) {
    if (Cursor.atEnd())
      return Cursor.acceptPrefix() ||
             Cursor.fail("traversal ended without a val read");
    {
      const Event &E = Cursor.take();
      if (E.Kind != EventKind::Read || E.Field != MemField::Val ||
          E.Node != Curr)
        return Cursor.fail("expected val read of the current node");
      Val = static_cast<SetKey>(E.Value);
    }
    if (Val >= Op.Key)
      break; // LL's loop exit: tval >= v.
    if (Cursor.atEnd())
      return Cursor.acceptPrefix() ||
             Cursor.fail("traversal ended mid-hop");
    const Event &E = Cursor.take();
    if (E.Kind != EventKind::Read || E.Field != MemField::Next ||
        E.Node != Curr)
      return Cursor.fail("expected next read of the current node");
    Prev = Curr;
    Curr = reinterpret_cast<const void *>(
        static_cast<uintptr_t>(E.Value));
  }

  // --- Post-traversal, by operation type. ---
  switch (Op.Op) {
  case SetOp::Contains:
    if (!Cursor.atEnd())
      return Cursor.fail("contains must stop after the final val read");
    if (Op.Completed && Op.Result != (Val == Op.Key))
      return Cursor.fail("contains result contradicts the value read");
    return true;

  case SetOp::Insert: {
    if (Val == Op.Key) {
      if (!Cursor.atEnd())
        return Cursor.fail("failed insert must not take further steps");
      if (Op.Completed && Op.Result)
        return Cursor.fail("insert of a found key must return false");
      return true;
    }
    if (Cursor.atEnd())
      return Cursor.acceptPrefix() ||
             Cursor.fail("successful insert is missing its steps");
    const Event &NewE = Cursor.take();
    if (NewE.Kind != EventKind::NewNode)
      return Cursor.fail("expected node creation");
    if (static_cast<SetKey>(NewE.Value) != Op.Key)
      return Cursor.fail("created node stores the wrong value");
    if (Cursor.atEnd())
      return Cursor.acceptPrefix() ||
             Cursor.fail("insert created a node but never linked it");
    const Event &WriteE = Cursor.take();
    if (WriteE.Kind != EventKind::Write || WriteE.Field != MemField::Next ||
        WriteE.Node != Prev)
      return Cursor.fail("expected the link write to prev.next");
    if (reinterpret_cast<const void *>(static_cast<uintptr_t>(
            WriteE.Value)) != NewE.Node)
      return Cursor.fail("link write must publish the new node");
    if (!Cursor.atEnd())
      return Cursor.fail("insert must stop after the link write");
    if (Op.Completed && !Op.Result)
      return Cursor.fail("insert that linked a node must return true");
    return true;
  }

  case SetOp::Remove: {
    if (Val != Op.Key) {
      if (!Cursor.atEnd())
        return Cursor.fail("failed remove must not take further steps");
      if (Op.Completed && Op.Result)
        return Cursor.fail("remove of an absent key must return false");
      return true;
    }
    if (Cursor.atEnd())
      return Cursor.acceptPrefix() ||
             Cursor.fail("successful remove is missing its steps");
    const Event &SuccE = Cursor.take();
    if (SuccE.Kind != EventKind::Read || SuccE.Field != MemField::Next ||
        SuccE.Node != Curr)
      return Cursor.fail("expected read of the victim's next");
    if (Cursor.atEnd())
      return Cursor.acceptPrefix() ||
             Cursor.fail("remove read the successor but never unlinked");
    const Event &WriteE = Cursor.take();
    if (WriteE.Kind != EventKind::Write || WriteE.Field != MemField::Next ||
        WriteE.Node != Prev)
      return Cursor.fail("expected the unlink write to prev.next");
    if (WriteE.Value != SuccE.Value)
      return Cursor.fail("unlink must write the successor that was read");
    if (!Cursor.atEnd())
      return Cursor.fail("remove must stop after the unlink write");
    if (Op.Completed && !Op.Result)
      return Cursor.fail("remove that unlinked a node must return true");
    return true;
  }

  case SetOp::RangeQuery:
    break; // Handled before the common traversal; never reaches here.
  }
  vbl_unreachable("covered switch");
}
