//===- sched/StepScheduler.h - Deterministic step-gated execution --------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs N logical threads (real std::threads) under a step token: at
/// any moment either the scheduler or exactly one worker runs. Workers
/// stop at every shared access (TracedPolicy::yield) and the scheduler
/// decides who proceeds — turning thread interleaving from an OS
/// accident into a first-class, explorable input. This is the engine
/// behind the §2.2 schedule experiments.
///
/// Step semantics: after step k of a thread, the thread is parked just
/// before its next shared access; that access executes at the start of
/// its step k+1. A step that tries to acquire a held lock parks the
/// thread (Blocked) until some other thread's step releases the lock.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_SCHED_STEPSCHEDULER_H
#define VBL_SCHED_STEPSCHEDULER_H

#include "sched/Event.h"
#include "sched/TracedPolicy.h"
#include "support/Compiler.h"

#include <atomic>
#include <functional>
#include <semaphore>
#include <thread>
#include <vector>

namespace vbl {
namespace sched {

class StepScheduler {
public:
  /// Spawns one worker per body. Workers do not run until step() grants
  /// them a step.
  explicit StepScheduler(std::vector<std::function<void()>> Bodies);

  /// Drains the episode (all workers must be able to finish — the
  /// deadlock-freedom of the algorithms under test guarantees it) and
  /// joins. Aborts if the residue cannot be drained.
  ~StepScheduler();

  StepScheduler(const StepScheduler &) = delete;
  StepScheduler &operator=(const StepScheduler &) = delete;

  unsigned numThreads() const {
    return static_cast<unsigned>(Workers.size());
  }

  bool finished(unsigned Thread) const;
  bool blocked(unsigned Thread) const;
  bool runnable(unsigned Thread) const {
    return !finished(Thread) && !blocked(Thread);
  }
  bool allFinished() const;
  std::vector<unsigned> runnableThreads() const;

  /// Grants one step to \p Thread. Pre: runnable(Thread). Returns once
  /// the worker reaches its next yield point, parks on a lock, or
  /// finishes. The step index in the trace equals the number of events
  /// the worker recorded while it ran.
  void step(unsigned Thread);

  /// Steps threads round-robin until all finish. Returns false if no
  /// progress is possible (deadlock) or \p MaxSteps is exhausted.
  bool drain(size_t MaxSteps = size_t(1) << 20);

  /// The raw trace accumulated so far (every recorded event, in global
  /// execution order).
  const std::vector<Event> &trace() const { return Trace; }
  Schedule schedule() const { return Schedule(Trace); }

  /// Results of completed ops, in (thread, op-index) order of OpEnd
  /// events. Convenience over scanning the trace.
  std::vector<Event> opEndEvents() const;

private:
  /// Worker-side context. State fields are written only by the entity
  /// currently holding the token (worker during its step, scheduler or
  /// the *releasing* worker otherwise); the semaphores provide the
  /// happens-before edges, atomics keep the accesses race-free.
  class Worker : public TraceContext {
  public:
    void yield() override;
    void record(Event E) override;
    void blockOnLock(const void *LockAddr) override;
    void noteLockReleased(const void *LockAddr) override;

    StepScheduler *Parent = nullptr;
    std::function<void()> Body;
    std::thread Thread;
    std::binary_semaphore Go{0};
    std::binary_semaphore Done{0};
    std::atomic<bool> Finished{false};
    std::atomic<const void *> BlockedOn{nullptr};
  };

  void workerMain(Worker &W);

  std::vector<std::unique_ptr<Worker>> Workers;
  std::vector<Event> Trace;
};

} // namespace sched
} // namespace vbl

#endif // VBL_SCHED_STEPSCHEDULER_H
