//===- sched/Schedule.cpp - Event and schedule utilities -----------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "sched/Event.h"

#include <cstdio>
#include <unordered_map>

using namespace vbl;
using namespace vbl::sched;

const char *vbl::sched::eventKindName(EventKind Kind) {
  switch (Kind) {
  case EventKind::Read:
    return "read";
  case EventKind::Write:
    return "write";
  case EventKind::Cas:
    return "cas";
  case EventKind::ReadCheck:
    return "readcheck";
  case EventKind::NewNode:
    return "newnode";
  case EventKind::LockAcquire:
    return "lock+";
  case EventKind::LockBlocked:
    return "lock?";
  case EventKind::LockRelease:
    return "lock-";
  case EventKind::OpBegin:
    return "begin";
  case EventKind::OpEnd:
    return "end";
  case EventKind::Restart:
    return "restart";
  }
  return "?";
}

static const char *fieldName(MemField Field) {
  switch (Field) {
  case MemField::Val:
    return "val";
  case MemField::Next:
    return "next";
  case MemField::Marked:
    return "marked";
  case MemField::Lock:
    return "lock";
  case MemField::Epoch:
    return "epoch";
  }
  return "?";
}

std::string Event::toString() const {
  char Buf[160];
  switch (Kind) {
  case EventKind::OpBegin:
    std::snprintf(Buf, sizeof(Buf), "T%u.%u begin %s(%lld)", Thread,
                  OpIndex, setOpName(Op), static_cast<long long>(Value));
    break;
  case EventKind::OpEnd:
    std::snprintf(Buf, sizeof(Buf), "T%u.%u end -> %s", Thread, OpIndex,
                  Value ? "true" : "false");
    break;
  case EventKind::NewNode:
    std::snprintf(Buf, sizeof(Buf), "T%u.%u newnode %p val=%lld", Thread,
                  OpIndex, Node, static_cast<long long>(Value));
    break;
  default:
    std::snprintf(Buf, sizeof(Buf), "T%u.%u %s %s(%p)=%llx", Thread,
                  OpIndex, eventKindName(Kind), fieldName(Field), Node,
                  static_cast<unsigned long long>(Value));
    break;
  }
  return Buf;
}

std::vector<Event> Schedule::opProjection(uint32_t Thread,
                                          uint32_t OpIndex) const {
  std::vector<Event> Out;
  for (const Event &E : Events)
    if (E.Thread == Thread && E.OpIndex == OpIndex)
      Out.push_back(E);
  return Out;
}

std::vector<std::pair<uint32_t, uint32_t>> Schedule::operations() const {
  std::vector<std::pair<uint32_t, uint32_t>> Ops;
  for (const Event &E : Events) {
    const std::pair<uint32_t, uint32_t> Id{E.Thread, E.OpIndex};
    bool Seen = false;
    for (const auto &Existing : Ops)
      if (Existing == Id) {
        Seen = true;
        break;
      }
    if (!Seen)
      Ops.push_back(Id);
  }
  return Ops;
}

std::string Schedule::canonicalKey() const {
  std::unordered_map<const void *, unsigned> Labels;
  auto label = [&](const void *Node) -> unsigned {
    if (!Node)
      return 0;
    auto [It, Inserted] =
        Labels.emplace(Node, static_cast<unsigned>(Labels.size() + 1));
    (void)Inserted;
    return It->second;
  };
  std::string Key;
  char Buf[96];
  for (const Event &E : Events) {
    // Next-field values are node addresses and must be relabelled too;
    // Val-field values are keys and stay literal.
    const bool ValueIsNode =
        E.Field == MemField::Next &&
        (E.Kind == EventKind::Read || E.Kind == EventKind::Write);
    const unsigned NodeLabel = label(E.Node);
    const unsigned long long Value =
        ValueIsNode ? label(reinterpret_cast<const void *>(
                          static_cast<uintptr_t>(E.Value)))
                    : static_cast<unsigned long long>(E.Value);
    std::snprintf(Buf, sizeof(Buf), "%u.%u:%s.%d n%u v%llu;", E.Thread,
                  E.OpIndex, eventKindName(E.Kind),
                  static_cast<int>(E.Field), NodeLabel, Value);
    Key += Buf;
  }
  return Key;
}

std::string Schedule::toString() const {
  std::string Out;
  for (const Event &E : Events) {
    Out += E.toString();
    Out += '\n';
  }
  return Out;
}
