//===- sched/TracedPolicy.h - Scheduler-mediated access policy -----------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TracedPolicy plugs into the lists' Policy template parameter and
/// routes every shared-memory access through a thread-local
/// TraceContext: the access waits for a grant from the deterministic
/// StepScheduler and is recorded into the episode trace. Code running
/// without a context (setup, prefill) behaves exactly like DirectPolicy.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_SCHED_TRACEDPOLICY_H
#define VBL_SCHED_TRACEDPOLICY_H

#include "sched/Event.h"
#include "stats/Stats.h"
#include "support/ThreadSafety.h"

#include <atomic>

namespace vbl {
namespace sched {

/// Per-logical-thread hook surface the policy talks to. Implemented by
/// StepScheduler's worker state; tests can substitute their own.
class TraceContext {
public:
  virtual ~TraceContext();

  /// Blocks until the scheduler grants one step. Called immediately
  /// before every shared access.
  virtual void yield() = 0;

  /// Appends an event to the episode trace (only called while this
  /// thread holds the step token, so appends are ordered).
  virtual void record(Event E) = 0;

  /// Parks this thread until \p LockAddr is released, then returns so
  /// the caller can retry its tryLock.
  virtual void blockOnLock(const void *LockAddr) = 0;

  /// Called by the releasing thread: wakes threads parked on LockAddr.
  virtual void noteLockReleased(const void *LockAddr) = 0;

  /// High-level operation bracketing (used by tracedOp below). For
  /// RangeQuery ops \p KeyHi carries the window's upper bound; point
  /// ops leave it 0.
  void beginOp(SetOp Op, SetKey Key, SetKey KeyHi = 0);
  void endOp(bool Result);

  /// Stamps thread/op bookkeeping onto an event and records it.
  void emit(EventKind Kind, MemField Field, const void *Node,
            uint64_t Value, uint64_t Value2 = 0);

  /// The context of the calling thread; null outside scheduled
  /// episodes.
  static TraceContext *&current();

  uint32_t ThreadId = 0;
  uint32_t OpIndex = 0;
  uint32_t Attempt = 0;
  SetOp CurrentOp = SetOp::Contains;
};

/// Encodes a policy value (pointer / bool / integer) into an event's
/// 64-bit payload.
template <class T> uint64_t encodeValue(T Value) {
  if constexpr (std::is_pointer_v<T>)
    return reinterpret_cast<uintptr_t>(Value);
  else
    return static_cast<uint64_t>(Value);
}

/// The traced counterpart of DirectPolicy. All hooks are static and
/// dispatch on TraceContext::current().
struct TracedPolicy {
  static constexpr bool Traced = true;

  template <class T>
  static T read(const std::atomic<T> &Atom, std::memory_order Order,
                const void *Node, MemField Field) {
    TraceContext *Ctx = TraceContext::current();
    if (!Ctx)
      return Atom.load(Order);
    Ctx->yield();
    T Value = Atom.load(Order);
    Ctx->emit(EventKind::Read, Field, Node, encodeValue(Value));
    return Value;
  }

  template <class T>
  static T readCheck(const std::atomic<T> &Atom, std::memory_order Order,
                     const void *Node, MemField Field) {
    TraceContext *Ctx = TraceContext::current();
    if (!Ctx)
      return Atom.load(Order);
    Ctx->yield();
    T Value = Atom.load(Order);
    Ctx->emit(EventKind::ReadCheck, Field, Node, encodeValue(Value));
    return Value;
  }

  template <class T>
  static void write(std::atomic<T> &Atom, T Value, std::memory_order Order,
                    const void *Node, MemField Field) {
    TraceContext *Ctx = TraceContext::current();
    if (!Ctx) {
      Atom.store(Value, Order);
      return;
    }
    Ctx->yield();
    Atom.store(Value, Order);
    Ctx->emit(EventKind::Write, Field, Node, encodeValue(Value));
  }

  template <class T>
  static bool casStrong(std::atomic<T> &Atom, T &Expected, T Desired,
                        std::memory_order Order, const void *Node,
                        MemField Field) {
    TraceContext *Ctx = TraceContext::current();
    if (!Ctx)
      return Atom.compare_exchange_strong(Expected, Desired, Order,
                                          std::memory_order_acquire);
    Ctx->yield();
    const bool Ok = Atom.compare_exchange_strong(
        Expected, Desired, Order, std::memory_order_acquire);
    Ctx->emit(EventKind::Cas, Field, Node, encodeValue(Desired), Ok);
    return Ok;
  }

  /// Unconditional RMW (the epoch guard's announcement); recorded as an
  /// always-succeeding CAS so schedule tooling needs no new event kind.
  template <class T>
  static T exchange(std::atomic<T> &Atom, T Value, std::memory_order Order,
                    const void *Node, MemField Field) {
    TraceContext *Ctx = TraceContext::current();
    if (!Ctx)
      return Atom.exchange(Value, Order);
    Ctx->yield();
    T Prev = Atom.exchange(Value, Order);
    Ctx->emit(EventKind::Cas, Field, Node, encodeValue(Value), 1);
    return Prev;
  }

  template <class T> static T readValue(const T &Plain, const void *Node) {
    TraceContext *Ctx = TraceContext::current();
    if (!Ctx)
      return Plain;
    Ctx->yield();
    Ctx->emit(EventKind::Read, MemField::Val, Node, encodeValue(Plain));
    return Plain;
  }

  template <class T>
  static T readValueCheck(const T &Plain, const void *Node) {
    TraceContext *Ctx = TraceContext::current();
    if (!Ctx)
      return Plain;
    Ctx->yield();
    Ctx->emit(EventKind::ReadCheck, MemField::Val, Node,
              encodeValue(Plain));
    return Plain;
  }

  template <class L>
  static void lockAcquire(L &Lock, const void *Node) VBL_ACQUIRE(Lock) {
    TraceContext *Ctx = TraceContext::current();
    if (!Ctx) {
      Lock.lock();
      return;
    }
    for (;;) {
      Ctx->yield();
      if (Lock.tryLock()) {
        Ctx->emit(EventKind::LockAcquire, MemField::Lock, Node, 0);
        return;
      }
      // Record the refusal, then park until the holder releases. The
      // schedule-acceptance tests key off this event: a LockBlocked in
      // a replay means the schedule forced the operation to wait.
      Ctx->emit(EventKind::LockBlocked, MemField::Lock, Node, 0);
      Ctx->blockOnLock(&Lock);
    }
  }

  template <class L>
  static bool lockTryAcquire(L &Lock, const void *Node)
      VBL_TRY_ACQUIRE(true, Lock) {
    TraceContext *Ctx = TraceContext::current();
    if (!Ctx)
      return Lock.tryLock();
    Ctx->yield();
    const bool Ok = Lock.tryLock();
    Ctx->emit(Ok ? EventKind::LockAcquire : EventKind::LockBlocked,
              MemField::Lock, Node, 0);
    return Ok;
  }

  template <class L>
  static void lockRelease(L &Lock, const void *Node) VBL_RELEASE(Lock) {
    TraceContext *Ctx = TraceContext::current();
    if (!Ctx) {
      Lock.unlock();
      return;
    }
    Ctx->yield();
    Lock.unlock();
    Ctx->emit(EventKind::LockRelease, MemField::Lock, Node, 0);
    Ctx->noteLockReleased(&Lock);
  }

  static void onNewNode(const void *Node, int64_t Val) {
    if (TraceContext *Ctx = TraceContext::current())
      Ctx->emit(EventKind::NewNode, MemField::Val, Node,
                static_cast<uint64_t>(Val));
  }

  static void onRestart() {
    // Counted even outside a trace context so deterministic-counter
    // tests and the direct harness agree on what a restart is.
    stats::bump(stats::Counter::ListRestarts);
    TraceContext *Ctx = TraceContext::current();
    if (!Ctx)
      return;
    Ctx->emit(EventKind::Restart, MemField::Val, nullptr, 0);
    ++Ctx->Attempt;
  }
};

/// Runs \p Call as one high-level operation, bracketing it with
/// OpBegin/OpEnd events when executing inside a scheduled episode.
template <class Fn> bool tracedOp(SetOp Op, SetKey Key, Fn &&Call) {
  TraceContext *Ctx = TraceContext::current();
  if (Ctx)
    Ctx->beginOp(Op, Key);
  const bool Result = Call();
  if (Ctx)
    Ctx->endOp(Result);
  return Result;
}

/// Range-query sibling of tracedOp: brackets a scan over [Lo, Hi]. The
/// recorded result is "scan returned at least one key", matching
/// BatchOp's convention for RangeQuery.
template <class Fn> size_t tracedRangeOp(SetKey Lo, SetKey Hi, Fn &&Call) {
  TraceContext *Ctx = TraceContext::current();
  if (Ctx)
    Ctx->beginOp(SetOp::RangeQuery, Lo, Hi);
  const size_t Returned = Call();
  if (Ctx)
    Ctx->endOp(Returned != 0);
  return Returned;
}

} // namespace sched
} // namespace vbl

#endif // VBL_SCHED_TRACEDPOLICY_H
