//===- sched/AnalyzedPolicy.h - Traced policy + race-detector feed -------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AnalyzedPolicy is TracedPolicy plus instrumentation for the
/// happens-before race detector: every hook delegates its scheduling
/// and event-trace behaviour to TracedPolicy (so schedules, replays and
/// exports are bit-identical), then appends an analysis::AccessRecord —
/// carrying the C++ memory order and the call site, the two things the
/// schedule trace deliberately abstracts away — to the global
/// AccessLog.
///
/// The call site is captured through a defaulted std::source_location
/// parameter: list code invokes `Policy::read(...)` with the ordinary
/// four arguments, and the diagnostic names the list's own source line.
///
/// Appends happen inside the access's scheduler step (the calling
/// thread holds the step token until its next yield), so the log order
/// equals the execution order with no extra synchronization.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_SCHED_ANALYZEDPOLICY_H
#define VBL_SCHED_ANALYZEDPOLICY_H

#include "analysis/AccessLog.h"
#include "sched/TracedPolicy.h"
#include "support/ThreadSafety.h"

#include <source_location>

namespace vbl {
namespace sched {

struct AnalyzedPolicy {
  static constexpr bool Traced = true;

  /// Stamps thread/op bookkeeping onto a record and appends it. No-op
  /// outside scheduled episodes (prefill) and while the log is
  /// disabled.
  static void log(analysis::RecordKind Kind, MemField Field,
                  const void *Node, std::memory_order Order,
                  const std::source_location &Loc) {
    analysis::AccessLog &Log = analysis::AccessLog::instance();
    if (!Log.enabled())
      return;
    TraceContext *Ctx = TraceContext::current();
    if (!Ctx)
      return;
    analysis::AccessRecord R;
    R.Kind = Kind;
    R.Thread = Ctx->ThreadId;
    R.OpIndex = Ctx->OpIndex;
    R.Op = Ctx->CurrentOp;
    R.Field = Field;
    R.Node = Node;
    R.Order = Order;
    R.File = Loc.file_name();
    R.Line = Loc.line();
    Log.append(R);
  }

  template <class T>
  static T read(const std::atomic<T> &Atom, std::memory_order Order,
                const void *Node, MemField Field,
                const std::source_location &Loc =
                    std::source_location::current()) {
    T Value = TracedPolicy::read(Atom, Order, Node, Field);
    log(analysis::RecordKind::Read, Field, Node, Order, Loc);
    return Value;
  }

  template <class T>
  static T readCheck(const std::atomic<T> &Atom, std::memory_order Order,
                     const void *Node, MemField Field,
                     const std::source_location &Loc =
                         std::source_location::current()) {
    T Value = TracedPolicy::readCheck(Atom, Order, Node, Field);
    log(analysis::RecordKind::Read, Field, Node, Order, Loc);
    return Value;
  }

  template <class T>
  static void write(std::atomic<T> &Atom, T Value, std::memory_order Order,
                    const void *Node, MemField Field,
                    const std::source_location &Loc =
                        std::source_location::current()) {
    TracedPolicy::write(Atom, Value, Order, Node, Field);
    log(analysis::RecordKind::Write, Field, Node, Order, Loc);
  }

  template <class T>
  static bool casStrong(std::atomic<T> &Atom, T &Expected, T Desired,
                        std::memory_order Order, const void *Node,
                        MemField Field,
                        const std::source_location &Loc =
                            std::source_location::current()) {
    const bool Ok =
        TracedPolicy::casStrong(Atom, Expected, Desired, Order, Node, Field);
    // Failed CASes load with the policies' hard-wired acquire failure
    // order; record it so the detector grants the acquire edge.
    log(Ok ? analysis::RecordKind::RmwSuccess : analysis::RecordKind::RmwFail,
        Field, Node, Ok ? Order : std::memory_order_acquire, Loc);
    return Ok;
  }

  /// A seq_cst (or acq_rel) exchange is both a release write and an
  /// acquire read to the detector — exactly RmwSuccess's semantics.
  template <class T>
  static T exchange(std::atomic<T> &Atom, T Value, std::memory_order Order,
                    const void *Node, MemField Field,
                    const std::source_location &Loc =
                        std::source_location::current()) {
    T Prev = TracedPolicy::exchange(Atom, Value, Order, Node, Field);
    log(analysis::RecordKind::RmwSuccess, Field, Node, Order, Loc);
    return Prev;
  }

  template <class T>
  static T readValue(const T &Plain, const void *Node,
                     const std::source_location &Loc =
                         std::source_location::current()) {
    T Value = TracedPolicy::readValue(Plain, Node);
    log(analysis::RecordKind::PlainRead, MemField::Val, Node,
        std::memory_order_relaxed, Loc);
    return Value;
  }

  template <class T>
  static T readValueCheck(const T &Plain, const void *Node,
                          const std::source_location &Loc =
                              std::source_location::current()) {
    T Value = TracedPolicy::readValueCheck(Plain, Node);
    log(analysis::RecordKind::PlainRead, MemField::Val, Node,
        std::memory_order_relaxed, Loc);
    return Value;
  }

  template <class L>
  static void lockAcquire(L &Lock, const void *Node,
                          const std::source_location &Loc =
                              std::source_location::current())
      VBL_ACQUIRE(Lock) {
    TracedPolicy::lockAcquire(Lock, Node);
    // Keyed by the lock object, not the owning node: a node may embed
    // several locks and the clock must follow the mutex itself.
    log(analysis::RecordKind::LockAcquire, MemField::Lock, &Lock,
        std::memory_order_acquire, Loc);
  }

  template <class L>
  static bool lockTryAcquire(L &Lock, const void *Node,
                             const std::source_location &Loc =
                                 std::source_location::current())
      VBL_TRY_ACQUIRE(true, Lock) {
    const bool Ok = TracedPolicy::lockTryAcquire(Lock, Node);
    if (Ok)
      log(analysis::RecordKind::LockAcquire, MemField::Lock, &Lock,
          std::memory_order_acquire, Loc);
    return Ok;
  }

  template <class L>
  static void lockRelease(L &Lock, const void *Node,
                          const std::source_location &Loc =
                              std::source_location::current())
      VBL_RELEASE(Lock) {
    TracedPolicy::lockRelease(Lock, Node);
    log(analysis::RecordKind::LockRelease, MemField::Lock, &Lock,
        std::memory_order_release, Loc);
  }

  /// Models the constructor's plain initialising writes: any thread
  /// reading a field of this node must be ordered after its
  /// publication, or it observes a half-built node.
  static void onNewNode(const void *Node, int64_t Val,
                        const std::source_location &Loc =
                            std::source_location::current()) {
    TracedPolicy::onNewNode(Node, Val);
    for (MemField Field :
         {MemField::Val, MemField::Next, MemField::Marked})
      log(analysis::RecordKind::NodeInit, Field, Node,
          std::memory_order_relaxed, Loc);
  }

  static void onRestart() { TracedPolicy::onRestart(); }
};

} // namespace sched
} // namespace vbl

#endif // VBL_SCHED_ANALYZEDPOLICY_H
