//===- sched/Event.h - Shared-memory events and schedules ----------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event model behind §2.2: an execution is a sequence of
/// shared-memory events; a *schedule* is its projection onto the reads,
/// writes and node creations of the sequential implementation LL.
/// Raw traces recorded by the deterministic scheduler contain everything
/// (locks, marks, validation reads, restarts); the exporter in
/// ScheduleExport.h distils them into LL-comparable schedules.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_SCHED_EVENT_H
#define VBL_SCHED_EVENT_H

#include "core/SetConfig.h"
#include "sync/Policy.h"

#include <cstdint>
#include <string>
#include <vector>

namespace vbl {
namespace sched {

enum class EventKind : uint8_t {
  Read,        ///< LL-relevant read of Val/Next.
  Write,       ///< LL-relevant write of Next (or Marked for variants).
  Cas,         ///< CAS on a next word (lock-free lists); Value2 = success.
  ReadCheck,   ///< Validation read under a lock; not part of LL.
  NewNode,     ///< Creation of a node (LL's new-node(v, next)).
  LockAcquire, ///< Lock successfully taken.
  LockBlocked, ///< tryLock failed; thread is parked until release.
  LockRelease,
  OpBegin, ///< High-level invocation: Value = key (RangeQuery: Value =
           ///< lo, Value2 = hi), Field unused.
  OpEnd,   ///< High-level response: Value = boolean result.
  Restart, ///< Operation abandoned an attempt and re-traverses.
};

const char *eventKindName(EventKind Kind);

/// One step of one logical thread. Interpretation of Value depends on
/// Kind/Field: node address for Next reads/writes, key for Val reads,
/// 0/1 for Marked, raw word for Cas.
struct Event {
  uint32_t Thread = 0;
  uint32_t OpIndex = 0; ///< Per-thread operation counter.
  uint32_t Attempt = 0; ///< Per-op attempt number (bumped by Restart).
  EventKind Kind = EventKind::Read;
  MemField Field = MemField::Val;
  SetOp Op = SetOp::Contains; ///< Valid on OpBegin/OpEnd.
  const void *Node = nullptr;
  uint64_t Value = 0;
  uint64_t Value2 = 0;

  std::string toString() const;
};

/// An ordered event sequence plus queries used by the checkers.
class Schedule {
public:
  Schedule() = default;
  explicit Schedule(std::vector<Event> EventsIn)
      : Events(std::move(EventsIn)) {}

  const std::vector<Event> &events() const { return Events; }
  std::vector<Event> &events() { return Events; }
  bool empty() const { return Events.empty(); }
  size_t size() const { return Events.size(); }

  /// Projection sigma|pi: the steps of one operation, in order.
  std::vector<Event> opProjection(uint32_t Thread, uint32_t OpIndex) const;

  /// All (thread, op) pairs present, in first-appearance order.
  std::vector<std::pair<uint32_t, uint32_t>> operations() const;

  /// Canonical fingerprint: node addresses are relabelled in order of
  /// first appearance, so two runs of the same abstract schedule with
  /// different allocations compare equal.
  std::string canonicalKey() const;

  /// Multi-line dump for test failure messages.
  std::string toString() const;

private:
  std::vector<Event> Events;
};

} // namespace sched
} // namespace vbl

#endif // VBL_SCHED_EVENT_H
