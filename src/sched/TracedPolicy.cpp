//===- sched/TracedPolicy.cpp - TraceContext plumbing --------------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "sched/TracedPolicy.h"

using namespace vbl;
using namespace vbl::sched;

TraceContext::~TraceContext() = default;

TraceContext *&TraceContext::current() {
  thread_local TraceContext *Current = nullptr;
  return Current;
}

void TraceContext::beginOp(SetOp Op, SetKey Key, SetKey KeyHi) {
  ++OpIndex;
  Attempt = 0;
  CurrentOp = Op;
  Event E;
  E.Thread = ThreadId;
  E.OpIndex = OpIndex;
  E.Attempt = 0;
  E.Kind = EventKind::OpBegin;
  E.Op = Op;
  E.Value = static_cast<uint64_t>(Key);
  E.Value2 = static_cast<uint64_t>(KeyHi);
  record(E);
}

void TraceContext::endOp(bool Result) {
  Event E;
  E.Thread = ThreadId;
  E.OpIndex = OpIndex;
  E.Attempt = Attempt;
  E.Kind = EventKind::OpEnd;
  E.Op = CurrentOp;
  E.Value = Result ? 1 : 0;
  record(E);
}

void TraceContext::emit(EventKind Kind, MemField Field, const void *Node,
                        uint64_t Value, uint64_t Value2) {
  Event E;
  E.Thread = ThreadId;
  E.OpIndex = OpIndex;
  E.Attempt = Attempt;
  E.Kind = Kind;
  E.Field = Field;
  E.Op = CurrentOp;
  E.Node = Node;
  E.Value = Value;
  E.Value2 = Value2;
  record(E);
}
