//===- support/Csv.h - Minimal CSV emission ------------------------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small CSV writer used by the benchmark binaries to dump the raw series
/// behind each figure so plots can be regenerated outside the repo.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_SUPPORT_CSV_H
#define VBL_SUPPORT_CSV_H

#include <cstdio>
#include <string>
#include <vector>

namespace vbl {

/// Buffers rows and writes them to a file (or any FILE*). Values are
/// escaped per RFC 4180 when they contain commas, quotes or newlines.
class CsvWriter {
public:
  explicit CsvWriter(std::vector<std::string> Header);

  /// Appends one row; must have exactly as many cells as the header.
  void addRow(std::vector<std::string> Row);

  /// Convenience: formats arbitrary printf-style cells.
  static std::string cell(double Value);
  static std::string cell(long long Value);
  static std::string cell(unsigned long long Value);

  /// Writes header + rows to \p Path. Returns false on I/O failure.
  bool writeFile(const std::string &Path) const;

  /// Writes header + rows to an already-open stream.
  void writeStream(std::FILE *Out) const;

  size_t numRows() const { return Rows.size(); }

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace vbl

#endif // VBL_SUPPORT_CSV_H
