//===- support/Random.h - Fast seedable PRNGs ----------------------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64 and Xoshiro256** pseudo-random generators. The benchmark
/// harness gives every worker thread its own Xoshiro256** stream so key
/// selection never contends on shared generator state; SplitMix64 seeds
/// the streams and is also handy for cheap hashing in tests.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_SUPPORT_RANDOM_H
#define VBL_SUPPORT_RANDOM_H

#include "support/Compiler.h"

#include <cstdint>

namespace vbl {

/// SplitMix64: tiny, passes BigCrush, and any seed (even 0) is fine.
/// Primarily used to expand one user seed into independent stream seeds.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

private:
  uint64_t State;
};

/// Xoshiro256**: the harness's per-thread generator. Fast (one rotl, one
/// multiply per draw) and with 2^256-1 period, so per-thread streams
/// seeded from SplitMix64 never collide in practice.
class Xoshiro256 {
public:
  explicit Xoshiro256(uint64_t Seed) {
    SplitMix64 SM(Seed);
    for (auto &Word : State)
      Word = SM.next();
  }

  uint64_t next() {
    const uint64_t Result = rotl(State[1] * 5, 7) * 9;
    const uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Uniform draw in [0, Bound) without modulo bias beyond 2^-64 (Lemire's
  /// multiply-shift; the bias is negligible for benchmark key ranges).
  uint64_t nextBounded(uint64_t Bound) {
    VBL_ASSERT(Bound > 0, "nextBounded requires a positive bound");
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next()) * Bound) >> 64);
  }

  /// Bernoulli draw: true with probability Percent/100.
  bool nextPercent(unsigned Percent) {
    VBL_ASSERT(Percent <= 100, "percentage above 100");
    return nextBounded(100) < Percent;
  }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace vbl

#endif // VBL_SUPPORT_RANDOM_H
