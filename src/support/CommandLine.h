//===- support/CommandLine.h - Tiny flag parser for tools ----------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal command-line flag parser shared by the bench and example
/// binaries. Supports `--name=value` and `--name value`, typed accessors,
/// comma-separated unsigned lists (thread sweeps), and `--help` output.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_SUPPORT_COMMANDLINE_H
#define VBL_SUPPORT_COMMANDLINE_H

#include <cstdint>
#include <string>
#include <vector>

namespace vbl {

/// Declarative flag registry. Register flags with defaults, then call
/// parse(); unknown flags or malformed values fail parsing with a message
/// on stderr so benches never run with silently-ignored parameters.
class FlagSet {
public:
  explicit FlagSet(std::string ProgramDescription)
      : Description(std::move(ProgramDescription)) {}

  void addInt(const std::string &Name, int64_t Default,
              const std::string &Help);
  void addBool(const std::string &Name, bool Default, const std::string &Help);
  void addString(const std::string &Name, const std::string &Default,
                 const std::string &Help);
  /// Comma-separated list of unsigned integers, e.g. --threads=1,2,4,8.
  void addUnsignedList(const std::string &Name,
                       const std::vector<unsigned> &Default,
                       const std::string &Help);

  /// Parses argv. Returns false (after printing a diagnostic or the help
  /// text) if the program should exit instead of running.
  bool parse(int Argc, char **Argv);

  int64_t getInt(const std::string &Name) const;
  bool getBool(const std::string &Name) const;
  const std::string &getString(const std::string &Name) const;
  const std::vector<unsigned> &getUnsignedList(const std::string &Name) const;

  void printHelp(const char *Argv0) const;

private:
  enum class FlagKind { Int, Bool, String, UnsignedList };

  struct Flag {
    std::string Name;
    FlagKind Kind;
    std::string Help;
    std::string DefaultText;
    int64_t IntValue = 0;
    bool BoolValue = false;
    std::string StringValue;
    std::vector<unsigned> ListValue;
  };

  Flag *find(const std::string &Name);
  const Flag *findOrDie(const std::string &Name, FlagKind Kind) const;
  bool assign(Flag &F, const std::string &Text);

  std::string Description;
  std::vector<Flag> Flags;
};

} // namespace vbl

#endif // VBL_SUPPORT_COMMANDLINE_H
