//===- support/AsciiChart.cpp - Terminal line charts ---------------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "support/AsciiChart.h"

#include "support/Compiler.h"

#include <algorithm>
#include <cstdio>

using namespace vbl;

static const char SeriesGlyphs[] = {'*', 'o', '+', 'x', '^', '%'};

std::string vbl::renderAsciiChart(
    const std::vector<std::string> &XLabels,
    const std::vector<ChartSeries> &Series, unsigned Height,
    const std::string &YUnit) {
  VBL_ASSERT(Height >= 4, "chart too short to be readable");
  if (XLabels.empty() || Series.empty())
    return "(no data)\n";

  double MaxValue = 0.0;
  for (const ChartSeries &S : Series) {
    VBL_ASSERT(S.Values.size() == XLabels.size(),
               "series length must match the x-axis");
    for (double V : S.Values)
      MaxValue = std::max(MaxValue, V);
  }
  if (MaxValue <= 0.0)
    MaxValue = 1.0;

  // Layout: y-axis gutter of 10 columns, then ColumnWidth per x point.
  constexpr unsigned Gutter = 10;
  const unsigned ColumnWidth = 6;
  const unsigned Width = Gutter + ColumnWidth * (unsigned)XLabels.size();
  std::vector<std::string> Rows(Height, std::string(Width, ' '));

  // Axis.
  for (unsigned R = 0; R != Height; ++R)
    Rows[R][Gutter - 1] = '|';
  Rows[Height - 1].assign(Width, '-');
  Rows[Height - 1].replace(0, Gutter, std::string(Gutter - 1, ' ') + "+");

  // Y labels: top and midpoint.
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "%8.2f", MaxValue);
  Rows[0].replace(0, 8, Buf);
  std::snprintf(Buf, sizeof(Buf), "%8.2f", MaxValue / 2);
  Rows[Height / 2].replace(0, 8, Buf);

  // Points.
  for (size_t SI = 0; SI != Series.size(); ++SI) {
    const char Glyph =
        SeriesGlyphs[SI % (sizeof(SeriesGlyphs) / sizeof(char))];
    for (size_t X = 0; X != XLabels.size(); ++X) {
      const double V = Series[SI].Values[X];
      // Row 0 is the max; the axis row is reserved.
      const double Frac = V / MaxValue;
      unsigned R = Height - 2 -
                   static_cast<unsigned>(Frac * (Height - 2) + 0.5);
      R = std::min(R, Height - 2);
      const unsigned C =
          Gutter + static_cast<unsigned>(X) * ColumnWidth +
          ColumnWidth / 2;
      char &Cell = Rows[R][C];
      Cell = Cell == ' ' ? Glyph : '#';
    }
  }

  std::string Out;
  for (const std::string &Row : Rows) {
    Out += Row;
    Out += '\n';
  }

  // X labels.
  std::string XAxis(Gutter, ' ');
  for (const std::string &Label : XLabels) {
    std::string Cell = Label.substr(0, ColumnWidth - 1);
    while (Cell.size() < ColumnWidth)
      Cell = (Cell.size() % 2) ? Cell + ' ' : ' ' + Cell;
    XAxis += Cell;
  }
  Out += XAxis + '\n';

  // Legend.
  std::string Legend = "          ";
  for (size_t SI = 0; SI != Series.size(); ++SI) {
    const char Glyph =
        SeriesGlyphs[SI % (sizeof(SeriesGlyphs) / sizeof(char))];
    Legend += Glyph;
    Legend += "=" + Series[SI].Label + "  ";
  }
  if (!YUnit.empty())
    Legend += "(y: " + YUnit + ")";
  Out += Legend + '\n';
  return Out;
}
