//===- support/Stats.cpp - Summary statistics ----------------------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include "support/Compiler.h"

#include <algorithm>
#include <cmath>

using namespace vbl;

double SampleStats::mean() const {
  VBL_ASSERT(!Samples.empty(), "mean of zero samples");
  double Sum = 0.0;
  for (double S : Samples)
    Sum += S;
  return Sum / static_cast<double>(Samples.size());
}

double SampleStats::stddev() const {
  if (Samples.size() < 2)
    return 0.0;
  const double M = mean();
  double SumSq = 0.0;
  for (double S : Samples)
    SumSq += (S - M) * (S - M);
  return std::sqrt(SumSq / static_cast<double>(Samples.size() - 1));
}

double SampleStats::min() const {
  VBL_ASSERT(!Samples.empty(), "min of zero samples");
  return *std::min_element(Samples.begin(), Samples.end());
}

double SampleStats::max() const {
  VBL_ASSERT(!Samples.empty(), "max of zero samples");
  return *std::max_element(Samples.begin(), Samples.end());
}

double SampleStats::percentile(double P) const {
  VBL_ASSERT(!Samples.empty(), "percentile of zero samples");
  VBL_ASSERT(P >= 0.0 && P <= 100.0, "percentile out of range");
  std::vector<double> Sorted(Samples);
  std::sort(Sorted.begin(), Sorted.end());
  if (Sorted.size() == 1)
    return Sorted.front();
  const double Rank = P / 100.0 * static_cast<double>(Sorted.size() - 1);
  const size_t Lo = static_cast<size_t>(Rank);
  const size_t Hi = std::min(Lo + 1, Sorted.size() - 1);
  const double Frac = Rank - static_cast<double>(Lo);
  return Sorted[Lo] + (Sorted[Hi] - Sorted[Lo]) * Frac;
}
