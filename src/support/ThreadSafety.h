//===- support/ThreadSafety.h - Clang thread-safety annotations ----------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Macro wrappers for clang's -Wthread-safety attributes (the
/// "capability" static analysis; see
/// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). The locks in
/// src/sync and src/core carry these so a clang build statically checks
/// lock/unlock balance and guarded-field discipline at every call site;
/// under gcc (which has no equivalent analysis) the macros expand to
/// nothing.
///
/// Conventions in this repo:
///  - lock classes are VBL_CAPABILITY("mutex"),
///  - tryLock is VBL_TRY_ACQUIRE(true) (capability held iff it returned
///    true),
///  - any suppression (VBL_NO_THREAD_SAFETY_ANALYSIS) must carry an
///    inline comment justifying why the analysis cannot follow the
///    code, not merely that it complains.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_SUPPORT_THREADSAFETY_H
#define VBL_SUPPORT_THREADSAFETY_H

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define VBL_THREAD_ANNOTATION(X) __attribute__((X))
#endif
#endif
#ifndef VBL_THREAD_ANNOTATION
#define VBL_THREAD_ANNOTATION(X)
#endif

/// Class attribute: instances of this type are lockable capabilities.
#define VBL_CAPABILITY(Name) VBL_THREAD_ANNOTATION(capability(Name))

/// Member attribute: field may only be touched while holding the given
/// capabilities.
#define VBL_GUARDED_BY(...) VBL_THREAD_ANNOTATION(guarded_by(__VA_ARGS__))

/// Member attribute: pointee may only be touched while holding the
/// given capabilities.
#define VBL_PT_GUARDED_BY(...) \
  VBL_THREAD_ANNOTATION(pt_guarded_by(__VA_ARGS__))

/// Function acquires the capability (blocking).
#define VBL_ACQUIRE(...) \
  VBL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define VBL_TRY_ACQUIRE(...) \
  VBL_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define VBL_RELEASE(...) \
  VBL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function requires the capability to be held on entry (and does not
/// release it).
#define VBL_REQUIRES(...) \
  VBL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held.
#define VBL_EXCLUDES(...) VBL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Return value is (a reference to) the given capability.
#define VBL_RETURN_CAPABILITY(X) VBL_THREAD_ANNOTATION(lock_returned(X))

/// Suppress the analysis for one function. Every use must explain
/// itself inline.
#define VBL_NO_THREAD_SAFETY_ANALYSIS \
  VBL_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // VBL_SUPPORT_THREADSAFETY_H
