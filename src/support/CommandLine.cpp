//===- support/CommandLine.cpp - Tiny flag parser ------------------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"

#include "support/Compiler.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

using namespace vbl;

void FlagSet::addInt(const std::string &Name, int64_t Default,
                     const std::string &Help) {
  VBL_ASSERT(!find(Name), "duplicate flag");
  Flag F;
  F.Name = Name;
  F.Kind = FlagKind::Int;
  F.Help = Help;
  F.IntValue = Default;
  F.DefaultText = std::to_string(Default);
  Flags.push_back(std::move(F));
}

void FlagSet::addBool(const std::string &Name, bool Default,
                      const std::string &Help) {
  VBL_ASSERT(!find(Name), "duplicate flag");
  Flag F;
  F.Name = Name;
  F.Kind = FlagKind::Bool;
  F.Help = Help;
  F.BoolValue = Default;
  F.DefaultText = Default ? "true" : "false";
  Flags.push_back(std::move(F));
}

void FlagSet::addString(const std::string &Name, const std::string &Default,
                        const std::string &Help) {
  VBL_ASSERT(!find(Name), "duplicate flag");
  Flag F;
  F.Name = Name;
  F.Kind = FlagKind::String;
  F.Help = Help;
  F.StringValue = Default;
  F.DefaultText = Default;
  Flags.push_back(std::move(F));
}

void FlagSet::addUnsignedList(const std::string &Name,
                              const std::vector<unsigned> &Default,
                              const std::string &Help) {
  VBL_ASSERT(!find(Name), "duplicate flag");
  Flag F;
  F.Name = Name;
  F.Kind = FlagKind::UnsignedList;
  F.Help = Help;
  F.ListValue = Default;
  for (size_t I = 0, E = Default.size(); I != E; ++I) {
    if (I)
      F.DefaultText += ',';
    F.DefaultText += std::to_string(Default[I]);
  }
  Flags.push_back(std::move(F));
}

FlagSet::Flag *FlagSet::find(const std::string &Name) {
  for (Flag &F : Flags)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

const FlagSet::Flag *FlagSet::findOrDie(const std::string &Name,
                                        FlagKind Kind) const {
  for (const Flag &F : Flags) {
    if (F.Name != Name)
      continue;
    VBL_ASSERT(F.Kind == Kind, "flag accessed with wrong type");
    return &F;
  }
  vbl_unreachable("unknown flag queried");
}

static bool parseInt64(const std::string &Text, int64_t &Out) {
  if (Text.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  const long long V = std::strtoll(Text.c_str(), &End, 10);
  if (errno != 0 || End != Text.c_str() + Text.size())
    return false;
  Out = V;
  return true;
}

bool FlagSet::assign(Flag &F, const std::string &Text) {
  switch (F.Kind) {
  case FlagKind::Int:
    return parseInt64(Text, F.IntValue);
  case FlagKind::Bool:
    if (Text == "true" || Text == "1") {
      F.BoolValue = true;
      return true;
    }
    if (Text == "false" || Text == "0") {
      F.BoolValue = false;
      return true;
    }
    return false;
  case FlagKind::String:
    F.StringValue = Text;
    return true;
  case FlagKind::UnsignedList: {
    std::vector<unsigned> Values;
    size_t Pos = 0;
    while (Pos <= Text.size()) {
      const size_t Comma = Text.find(',', Pos);
      const std::string Piece =
          Text.substr(Pos, Comma == std::string::npos ? Comma : Comma - Pos);
      int64_t V = 0;
      if (!parseInt64(Piece, V) || V < 0)
        return false;
      Values.push_back(static_cast<unsigned>(V));
      if (Comma == std::string::npos)
        break;
      Pos = Comma + 1;
    }
    if (Values.empty())
      return false;
    F.ListValue = std::move(Values);
    return true;
  }
  }
  vbl_unreachable("covered switch");
}

bool FlagSet::parse(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      printHelp(Argv[0]);
      return false;
    }
    if (Arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "error: unexpected positional argument '%s'\n",
                   Arg.c_str());
      return false;
    }
    Arg = Arg.substr(2);
    std::string Value;
    bool HaveValue = false;
    const size_t Eq = Arg.find('=');
    if (Eq != std::string::npos) {
      Value = Arg.substr(Eq + 1);
      Arg = Arg.substr(0, Eq);
      HaveValue = true;
    }
    Flag *F = find(Arg);
    if (!F) {
      std::fprintf(stderr, "error: unknown flag '--%s'\n", Arg.c_str());
      return false;
    }
    // A bool flag with no inline value means "set to true".
    if (!HaveValue && F->Kind == FlagKind::Bool) {
      F->BoolValue = true;
      continue;
    }
    if (!HaveValue) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: flag '--%s' expects a value\n",
                     Arg.c_str());
        return false;
      }
      Value = Argv[++I];
    }
    if (!assign(*F, Value)) {
      std::fprintf(stderr, "error: invalid value '%s' for flag '--%s'\n",
                   Value.c_str(), Arg.c_str());
      return false;
    }
  }
  return true;
}

int64_t FlagSet::getInt(const std::string &Name) const {
  return findOrDie(Name, FlagKind::Int)->IntValue;
}

bool FlagSet::getBool(const std::string &Name) const {
  return findOrDie(Name, FlagKind::Bool)->BoolValue;
}

const std::string &FlagSet::getString(const std::string &Name) const {
  return findOrDie(Name, FlagKind::String)->StringValue;
}

const std::vector<unsigned> &
FlagSet::getUnsignedList(const std::string &Name) const {
  return findOrDie(Name, FlagKind::UnsignedList)->ListValue;
}

void FlagSet::printHelp(const char *Argv0) const {
  std::fprintf(stderr, "%s\n\nusage: %s [flags]\n\nflags:\n",
               Description.c_str(), Argv0);
  for (const Flag &F : Flags)
    std::fprintf(stderr, "  --%-20s %s (default: %s)\n", F.Name.c_str(),
                 F.Help.c_str(), F.DefaultText.c_str());
}
