//===- support/AsciiChart.h - Terminal line charts -----------------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders small multi-series line charts as text so the benchmark
/// binaries can *draw* the paper's figures directly in the terminal
/// (throughput on Y, thread count on X), next to the numeric tables.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_SUPPORT_ASCIICHART_H
#define VBL_SUPPORT_ASCIICHART_H

#include <string>
#include <vector>

namespace vbl {

/// One plotted series: a label and y-values over the shared x-axis.
struct ChartSeries {
  std::string Label;
  std::vector<double> Values;
};

/// Renders series over \p XLabels into a fixed-height chart. Each
/// series gets a distinct glyph; collisions print '#'. Y is scaled
/// from zero to the maximum value so relative heights read like the
/// paper's throughput plots.
std::string renderAsciiChart(const std::vector<std::string> &XLabels,
                             const std::vector<ChartSeries> &Series,
                             unsigned Height = 12,
                             const std::string &YUnit = "");

} // namespace vbl

#endif // VBL_SUPPORT_ASCIICHART_H
