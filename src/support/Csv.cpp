//===- support/Csv.cpp - Minimal CSV emission ----------------------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "support/Csv.h"

#include "support/Compiler.h"

using namespace vbl;

CsvWriter::CsvWriter(std::vector<std::string> Header)
    : Header(std::move(Header)) {
  VBL_ASSERT(!this->Header.empty(), "CSV needs at least one column");
}

void CsvWriter::addRow(std::vector<std::string> Row) {
  VBL_ASSERT(Row.size() == Header.size(), "CSV row width mismatch");
  Rows.push_back(std::move(Row));
}

std::string CsvWriter::cell(double Value) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", Value);
  return Buf;
}

std::string CsvWriter::cell(long long Value) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%lld", Value);
  return Buf;
}

std::string CsvWriter::cell(unsigned long long Value) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%llu", Value);
  return Buf;
}

/// Quotes a cell when it contains a character CSV treats specially.
static std::string escapeCell(const std::string &Cell) {
  if (Cell.find_first_of(",\"\n") == std::string::npos)
    return Cell;
  std::string Out = "\"";
  for (char C : Cell) {
    if (C == '"')
      Out += '"';
    Out += C;
  }
  Out += '"';
  return Out;
}

static void writeRow(std::FILE *Out, const std::vector<std::string> &Row) {
  for (size_t I = 0, E = Row.size(); I != E; ++I) {
    if (I)
      std::fputc(',', Out);
    std::fputs(escapeCell(Row[I]).c_str(), Out);
  }
  std::fputc('\n', Out);
}

void CsvWriter::writeStream(std::FILE *Out) const {
  writeRow(Out, Header);
  for (const auto &Row : Rows)
    writeRow(Out, Row);
}

bool CsvWriter::writeFile(const std::string &Path) const {
  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out)
    return false;
  writeStream(Out);
  std::fclose(Out);
  return true;
}
