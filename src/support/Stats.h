//===- support/Stats.h - Summary statistics for benchmark samples --------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Accumulates benchmark samples and reports mean / stddev / min / max /
/// percentiles. The paper reports the mean over 5 runs per point; the
/// harness uses this class to do the same and to expose run-to-run noise.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_SUPPORT_STATS_H
#define VBL_SUPPORT_STATS_H

#include <cstddef>
#include <vector>

namespace vbl {

/// Collects double-valued samples; all queries are over whatever has been
/// added so far. Percentile queries sort a copy, so they are intended for
/// end-of-run reporting, not hot paths.
class SampleStats {
public:
  void add(double Sample) { Samples.push_back(Sample); }
  void clear() { Samples.clear(); }

  size_t count() const { return Samples.size(); }
  bool empty() const { return Samples.empty(); }

  double mean() const;
  /// Sample (n-1) standard deviation; 0 for fewer than two samples.
  double stddev() const;
  double min() const;
  double max() const;
  /// Linear-interpolated percentile, P in [0,100].
  double percentile(double P) const;

  const std::vector<double> &samples() const { return Samples; }

private:
  std::vector<double> Samples;
};

} // namespace vbl

#endif // VBL_SUPPORT_STATS_H
