//===- support/Compiler.h - Portability and assertion helpers ------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiler portability macros, cache-line constants, and the project
/// assertion macros used across every module.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_SUPPORT_COMPILER_H
#define VBL_SUPPORT_COMPILER_H

#include <cassert>
#include <cstdio>
#include <cstdlib>

#if defined(__GNUC__) || defined(__clang__)
#define VBL_LIKELY(X) __builtin_expect(!!(X), 1)
#define VBL_UNLIKELY(X) __builtin_expect(!!(X), 0)
#define VBL_NOINLINE __attribute__((noinline))
#define VBL_ALWAYS_INLINE __attribute__((always_inline)) inline
/// Read-prefetch with high temporal locality: issued on the next node of
/// a list traversal so its line is in flight while the current node's
/// key is compared. A hint only — safe on any address, including null.
#define VBL_PREFETCH(ADDR) __builtin_prefetch((ADDR), 0, 3)
#else
#define VBL_LIKELY(X) (X)
#define VBL_UNLIKELY(X) (X)
#define VBL_NOINLINE
#define VBL_ALWAYS_INLINE inline
#define VBL_PREFETCH(ADDR) ((void)0)
#endif

namespace vbl {

/// Size every contended shared variable is padded to. 64 bytes is the
/// line size on every x86-64 and most AArch64 parts; 128 would also cover
/// adjacent-line prefetchers but doubles footprint for small lists.
inline constexpr unsigned CacheLineBytes = 64;

/// Marks a point in the program that must never be reached. Aborts with a
/// message in all build modes; unlike assert() it is not compiled out,
/// because reaching one of these in a concurrent data structure means
/// memory is already corrupt.
[[noreturn]] inline void unreachableInternal(const char *Msg,
                                             const char *File, int Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%d: %s\n", File, Line,
               Msg ? Msg : "");
  std::abort();
}

} // namespace vbl

#define vbl_unreachable(MSG) ::vbl::unreachableInternal(MSG, __FILE__, __LINE__)

/// Assertion used across the project. Kept separate from <cassert> so test
/// builds can grep for it and so the message convention (predicate &&
/// "explanation") is uniform.
#define VBL_ASSERT(COND, MSG) assert((COND) && (MSG))

#endif // VBL_SUPPORT_COMPILER_H
