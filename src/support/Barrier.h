//===- support/Barrier.h - Sense-reversing spin barrier ------------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reusable spin barrier. The benchmark runner lines every worker up on
/// one of these before starting the measured window so thread-creation
/// skew never leaks into throughput numbers.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_SUPPORT_BARRIER_H
#define VBL_SUPPORT_BARRIER_H

#include "support/Compiler.h"

#include <atomic>
#include <thread>

namespace vbl {

/// Sense-reversing centralized barrier. Reusable across any number of
/// phases; spins with yield so it behaves sanely when threads outnumber
/// cores (the common case for this repo's oversubscription sweeps).
class SpinBarrier {
public:
  explicit SpinBarrier(unsigned NumThreads)
      : Total(NumThreads), Remaining(NumThreads) {
    VBL_ASSERT(NumThreads > 0, "barrier needs at least one participant");
  }

  SpinBarrier(const SpinBarrier &) = delete;
  SpinBarrier &operator=(const SpinBarrier &) = delete;

  /// Blocks until all participants have arrived. The last arrival flips
  /// the global sense, releasing everyone.
  void arriveAndWait() {
    const bool MySense = !Sense.load(std::memory_order_relaxed);
    if (Remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      Remaining.store(Total, std::memory_order_relaxed);
      Sense.store(MySense, std::memory_order_release);
      return;
    }
    while (Sense.load(std::memory_order_acquire) != MySense)
      std::this_thread::yield();
  }

private:
  const unsigned Total;
  std::atomic<unsigned> Remaining;
  std::atomic<bool> Sense{false};
};

} // namespace vbl

#endif // VBL_SUPPORT_BARRIER_H
