//===- support/Timing.h - Monotonic clock helpers ------------------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin wrappers over std::chrono::steady_clock used by the harness.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_SUPPORT_TIMING_H
#define VBL_SUPPORT_TIMING_H

#include <chrono>
#include <cstdint>

namespace vbl {

/// Monotonic timestamp in nanoseconds.
inline uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Simple start/elapsed stopwatch.
class Stopwatch {
public:
  Stopwatch() : Start(nowNanos()) {}

  void reset() { Start = nowNanos(); }
  uint64_t elapsedNanos() const { return nowNanos() - Start; }
  double elapsedSeconds() const {
    return static_cast<double>(elapsedNanos()) * 1e-9;
  }

private:
  uint64_t Start;
};

} // namespace vbl

#endif // VBL_SUPPORT_TIMING_H
