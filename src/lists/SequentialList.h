//===- lists/SequentialList.h - The sequential specification LL ----------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algorithm 1 of the paper: the plain sequential sorted linked list LL
/// that defines the set type and — crucially — defines what a *schedule*
/// is: an interleaving of exactly these reads, writes and node
/// creations. Three roles in this repo:
///
///  1. The oracle for differential tests of every concurrent list.
///  2. Run under sched::TracedPolicy by the interleaving explorer, its
///     unsynchronized steps *generate* the schedule space § of §2.2.
///  3. The reference the SpecInterpreter checks local serializability
///     against.
///
/// NOT thread-safe under DirectPolicy; concurrent execution is only
/// meaningful under the deterministic scheduler, which serializes steps.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_LISTS_SEQUENTIALLIST_H
#define VBL_LISTS_SEQUENTIALLIST_H

#include "core/SetConfig.h"
#include "support/Compiler.h"
#include "sync/Policy.h"

#include <algorithm>
#include <atomic>
#include <unordered_set>
#include <vector>

namespace vbl {

template <class PolicyT = DirectPolicy> class SequentialList {
public:
  using Policy = PolicyT;

  SequentialList() {
    Tail = new Node(MaxSentinel);
    Head = new Node(MinSentinel);
    Head->Next.store(Tail, std::memory_order_relaxed);
  }

  ~SequentialList() {
    // Under the deterministic scheduler this list is deliberately run
    // through *incorrect* interleavings too (that is the point of the
    // schedule experiments), which can double-add a node to the garbage
    // list or even re-link a garbage node into the chain. Deduplicate
    // before freeing.
    std::vector<Node *> ToFree;
    std::unordered_set<Node *> Seen;
    for (Node *Curr = Head; Curr && Seen.insert(Curr).second;
         Curr = Curr->Next.load(std::memory_order_relaxed))
      ToFree.push_back(Curr);
    ToFree.insert(ToFree.end(), Garbage.begin(), Garbage.end());
    std::sort(ToFree.begin(), ToFree.end());
    ToFree.erase(std::unique(ToFree.begin(), ToFree.end()), ToFree.end());
    for (Node *Dead : ToFree)
      delete Dead;
  }

  SequentialList(const SequentialList &) = delete;
  SequentialList &operator=(const SequentialList &) = delete;

  /// LL insert(v): lines 6-15 of Algorithm 1.
  bool insert(SetKey Key) {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    Node *Prev = Head;
    Node *Curr = Policy::read(Prev->Next, std::memory_order_relaxed, Prev,
                              MemField::Next);
    SetKey Val = Policy::readValue(Curr->Val, Curr);
    while (Val < Key) {
      Prev = Curr;
      Curr = Policy::read(Curr->Next, std::memory_order_relaxed, Curr,
                          MemField::Next);
      Val = Policy::readValue(Curr->Val, Curr);
    }
    if (Val == Key)
      return false;
    Node *NewNode = new Node(Key);
    NewNode->Next.store(Curr, std::memory_order_relaxed);
    Policy::onNewNode(NewNode, Key);
    Policy::write(Prev->Next, NewNode, std::memory_order_relaxed, Prev,
                  MemField::Next);
    return true;
  }

  /// LL remove(v): lines 16-25 of Algorithm 1. The removed node is kept
  /// in a garbage list because, under the deterministic scheduler, a
  /// concurrent LL operation may still be positioned on it.
  bool remove(SetKey Key) {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    Node *Prev = Head;
    Node *Curr = Policy::read(Prev->Next, std::memory_order_relaxed, Prev,
                              MemField::Next);
    SetKey Val = Policy::readValue(Curr->Val, Curr);
    while (Val < Key) {
      Prev = Curr;
      Curr = Policy::read(Curr->Next, std::memory_order_relaxed, Curr,
                          MemField::Next);
      Val = Policy::readValue(Curr->Val, Curr);
    }
    if (Val != Key)
      return false;
    Node *Succ = Policy::read(Curr->Next, std::memory_order_relaxed, Curr,
                              MemField::Next);
    Policy::write(Prev->Next, Succ, std::memory_order_relaxed, Prev,
                  MemField::Next);
    Garbage.push_back(Curr);
    return true;
  }

  /// LL contains(v): lines 26-31 of Algorithm 1.
  bool contains(SetKey Key) const {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    const Node *Curr = Policy::read(Head->Next, std::memory_order_relaxed,
                                    Head, MemField::Next);
    SetKey Val = Policy::readValue(Curr->Val, Curr);
    while (Val < Key) {
      Curr = Policy::read(Curr->Next, std::memory_order_relaxed, Curr,
                          MemField::Next);
      Val = Policy::readValue(Curr->Val, Curr);
    }
    return Val == Key;
  }

  /// LL range scan: the reference shape every concurrent scan's exported
  /// projection is checked against — read next(head), then alternate
  /// read val / read next until the value exceeds Hi, collecting keys
  /// inside [Lo, Hi].
  size_t rangeQuery(SetKey Lo, SetKey Hi, std::vector<SetKey> &Out) const {
    VBL_ASSERT(isUserKey(Lo) && isUserKey(Hi),
               "sentinel keys are reserved");
    if (Lo > Hi)
      return 0;
    const size_t Entry = Out.size();
    const Node *Curr = Policy::read(Head->Next, std::memory_order_relaxed,
                                    Head, MemField::Next);
    SetKey Val = Policy::readValue(Curr->Val, Curr);
    while (Val <= Hi) {
      if (Val >= Lo)
        Out.push_back(Val);
      Curr = Policy::read(Curr->Next, std::memory_order_relaxed, Curr,
                          MemField::Next);
      Val = Policy::readValue(Curr->Val, Curr);
    }
    return Out.size() - Entry;
  }

  std::vector<SetKey> snapshot() const {
    std::vector<SetKey> Keys;
    for (const Node *Curr = Head->Next.load(std::memory_order_relaxed);
         Curr->Val != MaxSentinel;
         Curr = Curr->Next.load(std::memory_order_relaxed))
      Keys.push_back(Curr->Val);
    return Keys;
  }

  bool checkInvariants() const {
    const Node *Curr = Head;
    if (Curr->Val != MinSentinel)
      return false;
    while (true) {
      const Node *Next = Curr->Next.load(std::memory_order_relaxed);
      if (Curr->Val == MaxSentinel)
        return Next == nullptr;
      if (!Next || Next->Val <= Curr->Val)
        return false;
      Curr = Next;
    }
  }

  size_t sizeSlow() const { return snapshot().size(); }

  /// Identity of the head sentinel (schedule exporters key off it).
  const void *headNode() const { return Head; }

  /// Quiescent-only: the (node, key) chain from head to tail inclusive,
  /// used by the schedule checker to reconstruct list states.
  std::vector<std::pair<const void *, SetKey>> nodeChain() const {
    std::vector<std::pair<const void *, SetKey>> Chain;
    for (const Node *Curr = Head; Curr;
         Curr = Curr->Next.load(std::memory_order_relaxed))
      Chain.emplace_back(Curr, Curr->Val);
    return Chain;
  }

private:
  struct Node {
    explicit Node(SetKey Val) : Val(Val) {}

    const SetKey Val;
    /// Atomic only so TracedPolicy can mediate the access; the
    /// sequential algorithm itself uses relaxed plain-memory semantics.
    std::atomic<Node *> Next{nullptr};
  };

  Node *Head;
  Node *Tail;
  std::vector<Node *> Garbage;
};

} // namespace vbl

#endif // VBL_LISTS_SEQUENTIALLIST_H
