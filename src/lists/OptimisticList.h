//===- lists/OptimisticList.h - Optimistic locking with re-traversal -----===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Optimistic synchronization (Herlihy & Shavit §9.6): traverse without
/// locks, lock the (prev, curr) window, then *validate by re-traversing
/// from the head* that prev is still reachable and still points at curr.
/// The historical stepping stone between lock-coupling and the Lazy
/// list: it removes lock traffic from traversals but pays a full second
/// traversal per update, and contains() must lock and validate too
/// (there is no deletion mark to make it wait-free).
///
/// Unlinked nodes may still be visited by concurrent lock-free
/// traversals, so this list needs a reclamation domain.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_LISTS_OPTIMISTICLIST_H
#define VBL_LISTS_OPTIMISTICLIST_H

#include "core/SetConfig.h"
#include "reclaim/EpochDomain.h"
#include "reclaim/NodePool.h"
#include "stats/Stats.h"
#include "support/Compiler.h"
#include "sync/SpinLocks.h"

#include <atomic>
#include <vector>

namespace vbl {

template <class ReclaimT = reclaim::EpochDomain, class LockT = TasLock>
class OptimisticList {
public:
  using Reclaim = ReclaimT;

  OptimisticList() {
    Tail = reclaim::poolCreate<Node>(MaxSentinel);
    Head = reclaim::poolCreate<Node>(MinSentinel);
    Head->Next.store(Tail, std::memory_order_relaxed);
  }

  ~OptimisticList() {
    Node *Curr = Head;
    while (Curr) {
      Node *Next = Curr->Next.load(std::memory_order_relaxed);
      reclaim::poolDestroy(Curr);
      Curr = Next;
    }
  }

  OptimisticList(const OptimisticList &) = delete;
  OptimisticList &operator=(const OptimisticList &) = delete;

  bool insert(SetKey Key) {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    typename Reclaim::Guard G(Domain);
    for (;;) {
      auto [Prev, Curr] = traverse(Key);
      Prev->NodeLock.lock();
      Curr->NodeLock.lock();
      if (!validate(Prev, Curr)) {
        Curr->NodeLock.unlock();
        Prev->NodeLock.unlock();
        continue;
      }
      const bool Absent = Curr->Val != Key;
      if (Absent) {
        Node *NewNode = reclaim::poolCreate<Node>(Key);
        NewNode->Next.store(Curr, std::memory_order_relaxed);
        Prev->Next.store(NewNode, std::memory_order_release);
      }
      Curr->NodeLock.unlock();
      Prev->NodeLock.unlock();
      return Absent;
    }
  }

  bool remove(SetKey Key) {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    typename Reclaim::Guard G(Domain);
    for (;;) {
      auto [Prev, Curr] = traverse(Key);
      Prev->NodeLock.lock();
      Curr->NodeLock.lock();
      if (!validate(Prev, Curr)) {
        Curr->NodeLock.unlock();
        Prev->NodeLock.unlock();
        continue;
      }
      const bool Present = Curr->Val == Key;
      if (Present)
        Prev->Next.store(Curr->Next.load(std::memory_order_relaxed),
                         std::memory_order_release);
      Curr->NodeLock.unlock();
      Prev->NodeLock.unlock();
      if (Present)
        reclaim::poolRetire(Domain, Curr);
      return Present;
    }
  }

  /// Membership test; locks and validates like the updates do (the
  /// optimistic list has no wait-free contains — one reason the Lazy
  /// list superseded it).
  bool contains(SetKey Key) const {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    typename Reclaim::Guard G(Domain);
    auto *Self = const_cast<OptimisticList *>(this);
    for (;;) {
      auto [Prev, Curr] = Self->traverse(Key);
      Prev->NodeLock.lock();
      Curr->NodeLock.lock();
      if (!Self->validate(Prev, Curr)) {
        Curr->NodeLock.unlock();
        Prev->NodeLock.unlock();
        continue;
      }
      const bool Present = Curr->Val == Key;
      Curr->NodeLock.unlock();
      Prev->NodeLock.unlock();
      return Present;
    }
  }

  std::vector<SetKey> snapshot() const {
    std::vector<SetKey> Keys;
    for (const Node *Curr = Head->Next.load(std::memory_order_acquire);
         Curr->Val != MaxSentinel;
         Curr = Curr->Next.load(std::memory_order_acquire))
      Keys.push_back(Curr->Val);
    return Keys;
  }

  bool checkInvariants() const {
    const Node *Curr = Head;
    if (Curr->Val != MinSentinel)
      return false;
    while (true) {
      if (Curr->NodeLock.isLocked())
        return false;
      const Node *Next = Curr->Next.load(std::memory_order_acquire);
      if (Curr->Val == MaxSentinel)
        return Next == nullptr;
      if (!Next || Next->Val <= Curr->Val)
        return false;
      Curr = Next;
    }
  }

  size_t sizeSlow() const { return snapshot().size(); }

  Reclaim &reclaimDomain() { return Domain; }

private:
  /// One node per cache line by default (NodeAlignBytes, SetConfig.h).
  struct alignas(NodeAlignBytes) Node {
    explicit Node(SetKey Val) : Val(Val) {}

    const SetKey Val;
    std::atomic<Node *> Next{nullptr};
    LockT NodeLock;
  };

  std::pair<Node *, Node *> traverse(SetKey Key) {
    Node *Prev = Head;
    Node *Curr = Prev->Next.load(std::memory_order_acquire);
    uint64_t Hops = 0; // Accumulated locally; one stats call at the end.
    while (Curr->Val < Key) {
      Prev = Curr;
      Curr = Curr->Next.load(std::memory_order_acquire);
      // Pull the successor's line while this node's key is compared.
      VBL_PREFETCH(Curr->Next.load(std::memory_order_relaxed));
      ++Hops;
    }
    stats::noteTraversal(Hops);
    return {Prev, Curr};
  }

  /// Re-traverses from the head to prove (prev, curr) is still a live
  /// adjacent window. Runs under both locks, so a positive answer stays
  /// true until they are released. Every caller restarts on failure, so
  /// the restart is counted here alongside the abort.
  bool validate(const Node *Prev, const Node *Curr) const {
    const Node *Probe = Head;
    while (Probe->Val <= Prev->Val) {
      if (Probe == Prev) {
        if (Prev->Next.load(std::memory_order_acquire) == Curr)
          return true;
        break;
      }
      Probe = Probe->Next.load(std::memory_order_acquire);
    }
    stats::bump(stats::Counter::ListValidationAborts);
    stats::bump(stats::Counter::ListRestarts);
    return false;
  }

  Node *Head;
  Node *Tail;
  mutable Reclaim Domain;
};

} // namespace vbl

#endif // VBL_LISTS_OPTIMISTICLIST_H
