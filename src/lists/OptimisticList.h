//===- lists/OptimisticList.h - Optimistic locking with re-traversal -----===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Optimistic synchronization (Herlihy & Shavit §9.6): traverse without
/// locks, lock the (prev, curr) window, then *validate by re-traversing
/// from the head* that prev is still reachable and still points at curr.
/// The historical stepping stone between lock-coupling and the Lazy
/// list: it removes lock traffic from traversals but pays a full second
/// traversal per update, and contains() must lock and validate too
/// (there is no deletion mark to make it wait-free).
///
/// Unlinked nodes may still be visited by concurrent lock-free
/// traversals, so this list needs a reclamation domain.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_LISTS_OPTIMISTICLIST_H
#define VBL_LISTS_OPTIMISTICLIST_H

#include "analysis/FlowView.h"
#include "core/SetConfig.h"
#include "reclaim/EpochDomain.h"
#include "reclaim/NodePool.h"
#include "stats/Stats.h"
#include "support/Compiler.h"
#include "sync/Policy.h"
#include "sync/SpinLocks.h"

#include <atomic>
#include <utility>
#include <vector>

namespace vbl {

/// PolicyT comes last (unlike the other lists) so that the historical
/// OptimisticList<Reclaim, Lock> spelling keeps compiling.
template <class ReclaimT = reclaim::EpochDomain, class LockT = TasLock,
          class PolicyT = DirectPolicy>
class OptimisticList {
public:
  using Reclaim = ReclaimT;
  using Policy = PolicyT;

  OptimisticList() {
    Tail = reclaim::poolCreate<Node, Policy>(MaxSentinel);
    Head = reclaim::poolCreate<Node, Policy>(MinSentinel);
    Head->Next.store(Tail, std::memory_order_relaxed);
  }

  ~OptimisticList() {
    Node *Curr = Head;
    while (Curr) {
      Node *Next = Curr->Next.load(std::memory_order_relaxed);
      reclaim::poolDestroy<Policy>(Curr);
      Curr = Next;
    }
  }

  OptimisticList(const OptimisticList &) = delete;
  OptimisticList &operator=(const OptimisticList &) = delete;

  bool insert(SetKey Key) {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    typename Reclaim::Guard G(Domain);
    for (;;) {
      auto [Prev, Curr] = traverse(Key);
      Policy::lockAcquire(Prev->NodeLock, Prev);
      Policy::lockAcquire(Curr->NodeLock, Curr);
      if (!validate(Prev, Curr)) {
        Policy::lockRelease(Curr->NodeLock, Curr);
        Policy::lockRelease(Prev->NodeLock, Prev);
        Policy::onRestart();
        continue;
      }
      const bool Absent = Curr->Val != Key;
      if (Absent) {
        Node *NewNode = reclaim::poolCreate<Node, Policy>(Key);
        Policy::onNewNode(NewNode, Key);
        NewNode->Next.store(Curr, std::memory_order_relaxed);
        Policy::write(Prev->Next, NewNode, std::memory_order_release, Prev,
                      MemField::Next);
      }
      Policy::lockRelease(Curr->NodeLock, Curr);
      Policy::lockRelease(Prev->NodeLock, Prev);
      return Absent;
    }
  }

  bool remove(SetKey Key) {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    typename Reclaim::Guard G(Domain);
    for (;;) {
      auto [Prev, Curr] = traverse(Key);
      Policy::lockAcquire(Prev->NodeLock, Prev);
      Policy::lockAcquire(Curr->NodeLock, Curr);
      if (!validate(Prev, Curr)) {
        Policy::lockRelease(Curr->NodeLock, Curr);
        Policy::lockRelease(Prev->NodeLock, Prev);
        Policy::onRestart();
        continue;
      }
      const bool Present = Curr->Val == Key;
      if (Present)
        Policy::write(Prev->Next,
                      Policy::read(Curr->Next, std::memory_order_relaxed,
                                   Curr, MemField::Next),
                      std::memory_order_release, Prev, MemField::Next);
      Policy::lockRelease(Curr->NodeLock, Curr);
      Policy::lockRelease(Prev->NodeLock, Prev);
      if (Present)
        reclaim::poolRetire<Policy>(Domain, Curr);
      return Present;
    }
  }

  /// Membership test; locks and validates like the updates do (the
  /// optimistic list has no wait-free contains — one reason the Lazy
  /// list superseded it).
  bool contains(SetKey Key) const {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    typename Reclaim::Guard G(Domain);
    auto *Self = const_cast<OptimisticList *>(this);
    for (;;) {
      auto [Prev, Curr] = Self->traverse(Key);
      Policy::lockAcquire(Prev->NodeLock, Prev);
      Policy::lockAcquire(Curr->NodeLock, Curr);
      if (!Self->validate(Prev, Curr)) {
        Policy::lockRelease(Curr->NodeLock, Curr);
        Policy::lockRelease(Prev->NodeLock, Prev);
        Policy::onRestart();
        continue;
      }
      const bool Present = Curr->Val == Key;
      Policy::lockRelease(Curr->NodeLock, Curr);
      Policy::lockRelease(Prev->NodeLock, Prev);
      return Present;
    }
  }

  /// Lock-free range scan. There is no deletion mark: a node reached by
  /// following live links was present at the read that reached it, which
  /// is the per-key linearization point the scan checker relies on.
  /// Unlinked nodes stay structurally intact until the domain reclaims
  /// them, so the walk never locks or validates.
  size_t rangeQuery(SetKey Lo, SetKey Hi, std::vector<SetKey> &Out) const {
    VBL_ASSERT(isUserKey(Lo) && isUserKey(Hi),
               "sentinel keys are reserved");
    if (Lo > Hi)
      return 0;
    typename Reclaim::Guard G(Domain);
    const size_t Entry = Out.size();
    const Node *Curr = Policy::read(Head->Next, std::memory_order_acquire,
                                    Head, MemField::Next);
    SetKey Val = Policy::readValue(Curr->Val, Curr);
    uint64_t Hops = 0; // Accumulated locally; one stats call at the end.
    while (Val <= Hi) {
      if (Val >= Lo)
        Out.push_back(Val);
      Curr = Policy::read(Curr->Next, std::memory_order_acquire, Curr,
                          MemField::Next);
      if constexpr (!Policy::Traced)
        VBL_PREFETCH(Curr->Next.load(std::memory_order_relaxed));
      Val = Policy::readValue(Curr->Val, Curr);
      ++Hops;
    }
    stats::noteTraversal(Hops);
    return Out.size() - Entry;
  }

  std::vector<SetKey> snapshot() const {
    std::vector<SetKey> Keys;
    for (const Node *Curr = Head->Next.load(std::memory_order_acquire);
         Curr->Val != MaxSentinel;
         Curr = Curr->Next.load(std::memory_order_acquire))
      Keys.push_back(Curr->Val);
    return Keys;
  }

  bool checkInvariants() const {
    const Node *Curr = Head;
    if (Curr->Val != MinSentinel)
      return false;
    while (true) {
      if (Curr->NodeLock.isLocked())
        return false;
      const Node *Next = Curr->Next.load(std::memory_order_acquire);
      if (Curr->Val == MaxSentinel)
        return Next == nullptr;
      if (!Next || Next->Val <= Curr->Val)
        return false;
      Curr = Next;
    }
  }

  size_t sizeSlow() const { return snapshot().size(); }

  Reclaim &reclaimDomain() { return Domain; }

  /// Identity of the head sentinel (schedule exporters key off it).
  const void *headNode() const { return Head; }

  /// Quiescent-only: the (node, key) chain from head to tail inclusive.
  std::vector<std::pair<const void *, SetKey>> nodeChain() const {
    std::vector<std::pair<const void *, SetKey>> Chain;
    for (const Node *Curr = Head; Curr;
         Curr = Curr->Next.load(std::memory_order_relaxed))
      Chain.emplace_back(Curr, Curr->Val);
    return Chain;
  }

  /// Self-description for the flow-invariant oracle. HasMark is false:
  /// removal unlinks a live node under locks (no logical-deletion
  /// flag), so the mark-related clauses do not apply — and unlinked
  /// nodes must not be tracked across steps.
  analysis::FlowView flowView() {
    analysis::FlowView View;
    View.HasMark = false;
    View.Describe = [this] {
      std::vector<analysis::FlowNodeDesc> Chain;
      for (const Node *Curr = Head;
           Curr && Chain.size() < analysis::FlowWalkCap;
           Curr = Curr->Next.load(std::memory_order_relaxed)) {
        analysis::FlowNodeDesc D;
        D.Node = Curr;
        D.Key = Curr->Val;
        Chain.push_back(std::move(D));
      }
      return Chain;
    };
    return View;
  }

private:
  /// One node per cache line by default (NodeAlignBytes, SetConfig.h).
  struct alignas(NodeAlignBytes) Node {
    explicit Node(SetKey Val) : Val(Val) {}

    const SetKey Val;
    std::atomic<Node *> Next{nullptr};
    LockT NodeLock;
  };

  std::pair<Node *, Node *> traverse(SetKey Key) {
    Node *Prev = Head;
    Node *Curr = Policy::read(Prev->Next, std::memory_order_acquire, Prev,
                              MemField::Next);
    uint64_t Hops = 0; // Accumulated locally; one stats call at the end.
    while (Policy::readValue(Curr->Val, Curr) < Key) {
      Prev = Curr;
      Curr = Policy::read(Curr->Next, std::memory_order_acquire, Curr,
                          MemField::Next);
      // Pull the successor's line while this node's key is compared
      // (direct mode only; traced runs take no invisible shared reads).
      if constexpr (!Policy::Traced)
        VBL_PREFETCH(Curr->Next.load(std::memory_order_relaxed));
      ++Hops;
    }
    stats::noteTraversal(Hops);
    return {Prev, Curr};
  }

  /// Re-traverses from the head to prove (prev, curr) is still a live
  /// adjacent window. Runs under both locks, so a positive answer stays
  /// true until they are released. Every caller restarts on failure
  /// (and counts the restart via Policy::onRestart at the restart
  /// site); only the abort itself is counted here.
  bool validate(const Node *Prev, const Node *Curr) const {
    const Node *Probe = Head;
    while (Policy::readValueCheck(Probe->Val, Probe) <= Prev->Val) {
      if (Probe == Prev) {
        if (Policy::readCheck(Prev->Next, std::memory_order_acquire, Prev,
                              MemField::Next) == Curr)
          return true;
        break;
      }
      Probe = Policy::readCheck(Probe->Next, std::memory_order_acquire,
                                Probe, MemField::Next);
    }
    stats::bump(stats::Counter::ListValidationAborts);
    return false;
  }

  Node *Head;
  Node *Tail;
  mutable Reclaim Domain;
};

} // namespace vbl

#endif // VBL_LISTS_OPTIMISTICLIST_H
