//===- lists/HarrisMichaelListHp.h - HM list with hazard pointers --------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Harris-Michael list integrated with hazard pointers, following
/// Michael's SPAA 2002 protocol — the reclamation scheme the algorithm
/// was originally published with (the repo's default HarrisMichaelList
/// uses the epoch domain instead). Three slots are enough: curr (0),
/// prev (1), and one spare used during the publication of new nodes.
///
/// The protocol's invariant: a pointer is dereferenced only after (a)
/// publishing it in a hazard slot and (b) re-validating that the edge
/// it was read from is unchanged — which proves the node had not been
/// retired when the protection became visible.
///
/// Trade-offs vs the epoch variant (quantified by bench/reclamation_cost
/// when run with --with-hp): two extra validated loads per traversal
/// hop, bounded garbage; and contains() is lock-free rather than
/// wait-free, because HP protection requires validation retries.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_LISTS_HARRISMICHAELLISTHP_H
#define VBL_LISTS_HARRISMICHAELLISTHP_H

#include "core/SetConfig.h"
#include "reclaim/HazardPointerDomain.h"
#include "reclaim/NodePool.h"
#include "stats/Stats.h"
#include "support/Compiler.h"
#include "sync/Policy.h"

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

namespace vbl {

class HarrisMichaelListHp {
  /// One node per cache line by default (NodeAlignBytes, SetConfig.h).
  struct alignas(NodeAlignBytes) Node {
    explicit Node(SetKey Val) : Val(Val) {}

    const SetKey Val;
    std::atomic<uintptr_t> Next{0};
  };

public:
  using Reclaim = reclaim::HazardPointerDomain;
  /// The HP protocol's seq_cst publish/re-validate loops are not
  /// expressible through the traced policy hooks, so this list runs
  /// direct-only; the split-ordered overlay still needs the alias for
  /// its own accesses (which are plain atomics under DirectPolicy).
  using Policy = DirectPolicy;

  /// Opaque handle to a list node that the caller guarantees is never
  /// removed (the head sentinel, or the dummy nodes a split-ordered
  /// hash overlay pins into the list). Such a handle stays valid for
  /// the lifetime of the list, may seed *From() operations, and — being
  /// immortal — needs no hazard slot of its own.
  using BucketHandle = Node *;

  HarrisMichaelListHp() {
    Tail = reclaim::poolCreate<Node>(MaxSentinel);
    Head = reclaim::poolCreate<Node>(MinSentinel);
    Head->Next.store(pack(Tail, false), std::memory_order_relaxed);
  }

  ~HarrisMichaelListHp() {
    // No concurrent access allowed here; free the reachable chain, the
    // domain's destructor frees everything retired.
    Node *Curr = Head;
    while (Curr) {
      Node *Next = ptrOf(Curr->Next.load(std::memory_order_relaxed));
      reclaim::poolDestroy(Curr);
      Curr = Next;
    }
  }

  HarrisMichaelListHp(const HarrisMichaelListHp &) = delete;
  HarrisMichaelListHp &operator=(const HarrisMichaelListHp &) = delete;

  bool insert(SetKey Key) { return insertFrom(Key, Head); }
  bool remove(SetKey Key) { return removeFrom(Key, Head); }
  bool contains(SetKey Key) const { return containsFrom(Key, Head); }

  //===--------------------------------------------------------------===//
  // Split-ordered hash substrate hooks. Each operation behaves exactly
  // like its head-anchored counterpart but starts traversing at \p
  // Start, which must be a handle to a never-removed node whose key is
  // smaller than \p Key (a bucket dummy). Restarts re-traverse from
  // Start, never from the global head — Start's immortality is what
  // lets find() leave SlotPrev clear at the restart point.
  //===--------------------------------------------------------------===//

  /// Handle of the head sentinel: bucket 0 of a split-ordered overlay.
  BucketHandle headHandle() { return Head; }

  /// Key stored at a handle (sentinels return their sentinel key).
  static SetKey handleKey(BucketHandle Handle) { return Handle->Val; }

  bool insertFrom(SetKey Key, BucketHandle Start) {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    Reclaim::Guard G(Domain);
    Node *NewNode = nullptr;
    for (;;) {
      auto [Prev, Curr] = find(Key, Start, G);
      if (Curr->Val == Key) {
        reclaim::poolDestroy(NewNode); // Never published.
        return false;
      }
      if (!NewNode)
        NewNode = reclaim::poolCreate<Node>(Key);
      NewNode->Next.store(pack(Curr, false), std::memory_order_relaxed);
      uintptr_t Expected = pack(Curr, false);
      if (Prev->Next.compare_exchange_strong(Expected,
                                             pack(NewNode, false),
                                             std::memory_order_release,
                                             std::memory_order_acquire))
        return true;
      stats::bump(stats::Counter::ListCasFailures);
      stats::bump(stats::Counter::ListRestarts);
    }
  }

  bool removeFrom(SetKey Key, BucketHandle Start) {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    Reclaim::Guard G(Domain);
    for (;;) {
      auto [Prev, Curr] = find(Key, Start, G);
      if (Curr->Val != Key)
        return false;
      const uintptr_t SuccWord =
          Curr->Next.load(std::memory_order_acquire);
      if (markOf(SuccWord)) {
        stats::bump(stats::Counter::ListRestarts);
        continue; // Another remover beat us; re-find.
      }
      uintptr_t Expected = SuccWord;
      if (!Curr->Next.compare_exchange_strong(
              Expected, SuccWord | uintptr_t(1),
              std::memory_order_release, std::memory_order_acquire)) {
        stats::bump(stats::Counter::ListCasFailures);
        stats::bump(stats::Counter::ListRestarts);
        continue;
      }
      // Physical unlink, best effort; find() handles failures later.
      Expected = pack(Curr, false);
      if (Prev->Next.compare_exchange_strong(
              Expected, pack(ptrOf(SuccWord), false),
              std::memory_order_release, std::memory_order_acquire))
        reclaim::poolRetire(Domain, Curr);
      return true;
    }
  }

  /// Lock-free (not wait-free) membership test: HP protection needs the
  /// re-validation loop of find().
  bool containsFrom(SetKey Key, BucketHandle Start) const {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    Reclaim::Guard G(Domain);
    auto *Self = const_cast<HarrisMichaelListHp *>(this);
    auto [Prev, Curr] = Self->find(Key, Start, G);
    (void)Prev;
    return Curr->Val == Key;
  }

  /// Get-or-insert for split-order dummy nodes: returns a handle to the
  /// unique node carrying \p Key, inserting it if absent. The caller
  /// promises the key is never removed from the set (dummy keys are not
  /// user-visible), which is what makes the returned handle stable —
  /// and exempt from hazard protection once returned.
  BucketHandle getOrInsertSentinelFrom(SetKey Key, BucketHandle Start) {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    Reclaim::Guard G(Domain);
    Node *NewNode = nullptr;
    for (;;) {
      auto [Prev, Curr] = find(Key, Start, G);
      if (Curr->Val == Key) {
        reclaim::poolDestroy(NewNode); // Never published.
        return Curr;
      }
      if (!NewNode)
        NewNode = reclaim::poolCreate<Node>(Key);
      NewNode->Next.store(pack(Curr, false), std::memory_order_relaxed);
      uintptr_t Expected = pack(Curr, false);
      if (Prev->Next.compare_exchange_strong(Expected,
                                             pack(NewNode, false),
                                             std::memory_order_release,
                                             std::memory_order_acquire))
        return NewNode;
      stats::bump(stats::Counter::ListCasFailures);
      stats::bump(stats::Counter::ListRestarts);
    }
  }

  /// Lock-free range scan under hazard-pointer protection: the walk is
  /// find()'s hand-over-hand protect-then-revalidate loop, collecting
  /// unmarked keys in [Lo, Hi]. A failed revalidation or unlink CAS
  /// restarts from the head and discards the partial collect, so the
  /// returned keys always come from one uninterrupted protected walk.
  size_t rangeQuery(SetKey Lo, SetKey Hi, std::vector<SetKey> &Out) const {
    VBL_ASSERT(isUserKey(Lo) && isUserKey(Hi),
               "sentinel keys are reserved");
    if (Lo > Hi)
      return 0;
    Reclaim::Guard G(Domain);
    const size_t Entry = Out.size();
    uint64_t Hops = 0; // Accumulated across retries; one stats call.
  Retry:
    Out.resize(Entry);
    Node *Prev = Head;
    G.clear(SlotPrev); // Head is immortal.
    uintptr_t CurrWord = Prev->Next.load(std::memory_order_acquire);
    for (;;) {
      Node *Curr = ptrOf(CurrWord);
      G.set(SlotCurr, Curr);
      if (Prev->Next.load(std::memory_order_seq_cst) !=
          pack(Curr, false)) {
        stats::bump(stats::Counter::ListRestarts);
        goto Retry;
      }
      const uintptr_t SuccWord =
          Curr->Next.load(std::memory_order_acquire);
      Node *Succ = ptrOf(SuccWord);
      VBL_PREFETCH(Succ);
      ++Hops;
      if (markOf(SuccWord)) {
        // Curr is logically deleted: unlink it, exactly as find() does,
        // so the revalidation edge stays unmarked.
        uintptr_t Expected = pack(Curr, false);
        if (!Prev->Next.compare_exchange_strong(
                Expected, pack(Succ, false), std::memory_order_release,
                std::memory_order_acquire)) {
          stats::bump(stats::Counter::ListCasFailures);
          stats::bump(stats::Counter::ListRestarts);
          goto Retry;
        }
        reclaim::poolRetire(Domain, Curr);
        CurrWord = pack(Succ, false);
        continue;
      }
      const SetKey Val = Curr->Val;
      if (Val > Hi)
        break;
      if (Val >= Lo)
        Out.push_back(Val);
      Prev = Curr;
      G.set(SlotPrev, Curr);
      CurrWord = SuccWord;
    }
    stats::noteTraversal(Hops);
    return Out.size() - Entry;
  }

  std::vector<SetKey> snapshot() const {
    std::vector<SetKey> Keys;
    for (const Node *Curr =
             ptrOf(Head->Next.load(std::memory_order_acquire));
         Curr->Val != MaxSentinel;
         Curr = ptrOf(Curr->Next.load(std::memory_order_acquire)))
      if (!markOf(Curr->Next.load(std::memory_order_acquire)))
        Keys.push_back(Curr->Val);
    return Keys;
  }

  bool checkInvariants() const {
    const Node *Curr = Head;
    if (Curr->Val != MinSentinel)
      return false;
    while (true) {
      const uintptr_t Word = Curr->Next.load(std::memory_order_acquire);
      const Node *Next = ptrOf(Word);
      if (Curr->Val == MaxSentinel)
        return Next == nullptr && !markOf(Word);
      if (!Next || Next->Val <= Curr->Val)
        return false;
      Curr = Next;
    }
  }

  size_t sizeSlow() const { return snapshot().size(); }

  Reclaim &reclaimDomain() { return Domain; }

  /// Identity of the head sentinel (schedule exporters key off it).
  const void *headNode() const { return Head; }

  /// Quiescent-only: the (node, key) chain from head to tail inclusive
  /// (marked nodes included — they are physically present).
  std::vector<std::pair<const void *, SetKey>> nodeChain() const {
    std::vector<std::pair<const void *, SetKey>> Chain;
    for (const Node *Curr = Head; Curr;
         Curr = ptrOf(Curr->Next.load(std::memory_order_relaxed)))
      Chain.emplace_back(Curr, Curr->Val);
    return Chain;
  }

private:
  static Node *ptrOf(uintptr_t Word) {
    return reinterpret_cast<Node *>(Word & ~uintptr_t(1));
  }
  static bool markOf(uintptr_t Word) { return Word & 1; }
  static uintptr_t pack(const Node *Ptr, bool Marked) {
    const auto Raw = reinterpret_cast<uintptr_t>(Ptr);
    VBL_ASSERT((Raw & 1) == 0, "node pointers must be 2-byte aligned");
    return Raw | static_cast<uintptr_t>(Marked);
  }

  /// Hazard slot assignment.
  enum : unsigned { SlotCurr = 0, SlotPrev = 1 };

  /// Michael's protected find, anchored at \p Start (the head, or an
  /// immortal bucket dummy): on return, Curr is protected by SlotCurr
  /// and Prev by SlotPrev (Start needs no protection), Curr is
  /// unmarked, Prev->Next == Curr and prev.val < Key <= curr.val.
  std::pair<Node *, Node *> find(SetKey Key, Node *Start,
                                 Reclaim::Guard &G) {
    uint64_t Hops = 0; // Accumulated across retries; one stats call.
  Retry:
    Node *Prev = Start;
    G.clear(SlotPrev); // Start is immortal (head or dummy sentinel).
    uintptr_t CurrWord = Prev->Next.load(std::memory_order_acquire);
    for (;;) {
      Node *Curr = ptrOf(CurrWord);
      // Publish protection for Curr, then prove it was still linked
      // from Prev afterwards: a node is only retired after being
      // unlinked, so an unchanged edge means "not retired yet".
      G.set(SlotCurr, Curr);
      if (Prev->Next.load(std::memory_order_seq_cst) !=
          pack(Curr, false)) {
        stats::bump(stats::Counter::ListRestarts);
        goto Retry;
      }
      const uintptr_t SuccWord =
          Curr->Next.load(std::memory_order_acquire);
      Node *Succ = ptrOf(SuccWord);
      // Overlap the successor fetch with the mark test and key compare.
      VBL_PREFETCH(Succ);
      ++Hops;
      if (markOf(SuccWord)) {
        // Curr is logically deleted: unlink it (Succ needs no hazard:
        // it is re-protected as the next Curr before any dereference).
        uintptr_t Expected = pack(Curr, false);
        if (!Prev->Next.compare_exchange_strong(
                Expected, pack(Succ, false), std::memory_order_release,
                std::memory_order_acquire)) {
          stats::bump(stats::Counter::ListCasFailures);
          stats::bump(stats::Counter::ListRestarts);
          goto Retry;
        }
        reclaim::poolRetire(Domain, Curr);
        CurrWord = pack(Succ, false);
        continue;
      }
      if (Curr->Val >= Key) {
        stats::noteTraversal(Hops);
        return {Prev, Curr};
      }
      // Advance: Curr becomes Prev; move its protection to SlotPrev.
      Prev = Curr;
      G.set(SlotPrev, Curr);
      CurrWord = SuccWord;
    }
  }

  Node *Head;
  Node *Tail;
  mutable Reclaim Domain;
};

} // namespace vbl

#endif // VBL_LISTS_HARRISMICHAELLISTHP_H
