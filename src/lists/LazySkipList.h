//===- lists/LazySkipList.h - Lazy concurrent skip list ------------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's concluding section points at skip lists as the natural
/// next target for the concurrency-optimality treatment ("we believe
/// that generalizations of linked lists, such as skip-lists ... may
/// allow for optimizations similar to the ones proposed in this
/// paper"). This is that substrate: the lazy concurrent skip list of
/// Herlihy & Shavit (§14.3), sharing the repo's reclamation domains and
/// registry.
///
/// Notable connection to VBL: the algorithm already *decides failed
/// inserts before locking* — add() returns false from the unlocked find
/// when the key is present, fully linked and unmarked — i.e. the skip
/// list community adopted the "do not synchronize when you will not
/// write" rule that VBL carries to its optimal conclusion for plain
/// lists. Removal, however, still validates node identity (pred.next ==
/// victim) rather than values; a value-aware skip list remove is the
/// open research direction the paper names.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_LISTS_LAZYSKIPLIST_H
#define VBL_LISTS_LAZYSKIPLIST_H

#include "core/SetConfig.h"
#include "reclaim/EpochDomain.h"
#include "reclaim/NodePool.h"
#include "support/Compiler.h"
#include "support/Random.h"
#include "support/ThreadSafety.h"
#include "sync/SpinLocks.h"

#include <atomic>
#include <vector>

namespace vbl {

template <class ReclaimT = reclaim::EpochDomain, class LockT = TasLock>
class LazySkipList {
public:
  using Reclaim = ReclaimT;

  /// Tower height cap. 2^20 expected elements at p=1/2 — far above any
  /// workload in this repo; raising it costs 8 bytes per node level.
  static constexpr int MaxLevel = 20;

  LazySkipList() {
    Tail = reclaim::poolCreate<Node>(MaxSentinel, MaxLevel - 1);
    Head = reclaim::poolCreate<Node>(MinSentinel, MaxLevel - 1);
    for (int Level = 0; Level != MaxLevel; ++Level)
      Head->Next[Level].store(Tail, std::memory_order_relaxed);
    // Sentinels are permanently linked.
    Head->FullyLinked.store(true, std::memory_order_relaxed);
    Tail->FullyLinked.store(true, std::memory_order_relaxed);
  }

  ~LazySkipList() {
    Node *Curr = Head;
    while (Curr) {
      Node *Next = Curr->Next[0].load(std::memory_order_relaxed);
      reclaim::poolDestroy(Curr);
      Curr = Next;
    }
  }

  LazySkipList(const LazySkipList &) = delete;
  LazySkipList &operator=(const LazySkipList &) = delete;

  // Suppressed: predecessor locks are taken conditionally (distinct
  // nodes only) across a tower array and released by unlockPreds — a
  // data-dependent lock set the analysis cannot name.
  bool insert(SetKey Key) VBL_NO_THREAD_SAFETY_ANALYSIS {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    typename Reclaim::Guard G(Domain);
    const int TopLevel = randomLevel();
    Node *Preds[MaxLevel];
    Node *Succs[MaxLevel];
    for (;;) {
      const int FoundLevel = find(Key, Preds, Succs);
      if (FoundLevel != -1) {
        Node *Found = Succs[FoundLevel];
        if (!Found->Marked.load(std::memory_order_acquire)) {
          // Present (or about to be): wait out a concurrent linker,
          // then fail WITHOUT taking any lock — the decide-before-lock
          // rule.
          while (!Found->FullyLinked.load(std::memory_order_acquire))
            cpuRelax();
          return false;
        }
        // Found a marked victim: its removal is in progress; retry
        // until the towers are consistent.
        continue;
      }

      // Lock the distinct predecessors bottom-up and validate each
      // window, exactly as the list-based Lazy algorithm does per
      // level.
      int HighestLocked = -1;
      Node *LastLocked = nullptr;
      bool Valid = true;
      for (int Level = 0; Valid && Level <= TopLevel; ++Level) {
        Node *Pred = Preds[Level];
        Node *Succ = Succs[Level];
        if (Pred != LastLocked) {
          Pred->NodeLock.lock();
          LastLocked = Pred;
          HighestLocked = Level;
        }
        Valid = !Pred->Marked.load(std::memory_order_acquire) &&
                !Succ->Marked.load(std::memory_order_acquire) &&
                Pred->Next[Level].load(std::memory_order_acquire) == Succ;
      }
      if (!Valid) {
        unlockPreds(Preds, HighestLocked);
        continue;
      }

      Node *NewNode = reclaim::poolCreate<Node>(Key, TopLevel);
      for (int Level = 0; Level <= TopLevel; ++Level)
        NewNode->Next[Level].store(Succs[Level],
                                   std::memory_order_relaxed);
      // Publish bottom-up; the release store at each level publishes
      // the node's initialized tower.
      for (int Level = 0; Level <= TopLevel; ++Level)
        Preds[Level]->Next[Level].store(NewNode,
                                        std::memory_order_release);
      NewNode->FullyLinked.store(true, std::memory_order_release);
      unlockPreds(Preds, HighestLocked);
      return true;
    }
  }

  // Suppressed: see insert(); additionally the victim's lock is held
  // across find() retries between loop iterations.
  bool remove(SetKey Key) VBL_NO_THREAD_SAFETY_ANALYSIS {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    typename Reclaim::Guard G(Domain);
    Node *Preds[MaxLevel];
    Node *Succs[MaxLevel];
    Node *Victim = nullptr;
    bool IsMarked = false;
    int TopLevel = -1;
    for (;;) {
      const int FoundLevel = find(Key, Preds, Succs);
      if (!IsMarked) {
        if (FoundLevel == -1)
          return false;
        Victim = Succs[FoundLevel];
        // Only a fully linked, unmarked node found at its own top
        // level is removable (§14.3's isRemovable test).
        if (!Victim->FullyLinked.load(std::memory_order_acquire) ||
            Victim->TopLevel != FoundLevel ||
            Victim->Marked.load(std::memory_order_acquire))
          return false;
        TopLevel = Victim->TopLevel;
        Victim->NodeLock.lock();
        if (Victim->Marked.load(std::memory_order_acquire)) {
          // Lost the race to another remover.
          Victim->NodeLock.unlock();
          return false;
        }
        // Logical deletion: the linearization point.
        Victim->Marked.store(true, std::memory_order_release);
        IsMarked = true;
      }

      int HighestLocked = -1;
      Node *LastLocked = nullptr;
      bool Valid = true;
      for (int Level = 0; Valid && Level <= TopLevel; ++Level) {
        Node *Pred = Preds[Level];
        if (Pred != LastLocked) {
          Pred->NodeLock.lock();
          LastLocked = Pred;
          HighestLocked = Level;
        }
        Valid = !Pred->Marked.load(std::memory_order_acquire) &&
                Pred->Next[Level].load(std::memory_order_acquire) ==
                    Victim;
      }
      if (!Valid) {
        unlockPreds(Preds, HighestLocked);
        continue; // Victim stays marked and locked; re-find preds.
      }

      // Unlink top-down so partially removed towers are never taller
      // than the live remainder.
      for (int Level = TopLevel; Level >= 0; --Level)
        Preds[Level]->Next[Level].store(
            Victim->Next[Level].load(std::memory_order_acquire),
            std::memory_order_release);
      Victim->NodeLock.unlock();
      unlockPreds(Preds, HighestLocked);
      reclaim::poolRetire(Domain, Victim);
      return true;
    }
  }

  /// Wait-free membership: an unlocked find plus the fully-linked /
  /// marked checks.
  bool contains(SetKey Key) const {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    typename Reclaim::Guard G(Domain);
    Node *Preds[MaxLevel];
    Node *Succs[MaxLevel];
    const int FoundLevel =
        const_cast<LazySkipList *>(this)->find(Key, Preds, Succs);
    if (FoundLevel == -1)
      return false;
    Node *Found = Succs[FoundLevel];
    return Found->FullyLinked.load(std::memory_order_acquire) &&
           !Found->Marked.load(std::memory_order_acquire);
  }

  /// Wait-free range scan: a tower descent positions the walk just
  /// below Lo, then the level-0 chain is scanned up to Hi, reporting
  /// fully linked, unmarked nodes (the same per-node test contains
  /// applies — each reported key's linearization point is its mark
  /// read).
  size_t rangeQuery(SetKey Lo, SetKey Hi, std::vector<SetKey> &Out) const {
    VBL_ASSERT(isUserKey(Lo) && isUserKey(Hi),
               "sentinel keys are reserved");
    if (Lo > Hi)
      return 0;
    typename Reclaim::Guard G(Domain);
    const size_t Entry = Out.size();
    const Node *Pred = Head;
    for (int Level = MaxLevel - 1; Level >= 0; --Level) {
      const Node *Curr = Pred->Next[Level].load(std::memory_order_acquire);
      while (Curr->Val < Lo) {
        Pred = Curr;
        Curr = Pred->Next[Level].load(std::memory_order_acquire);
      }
    }
    for (const Node *Curr = Pred->Next[0].load(std::memory_order_acquire);
         Curr->Val <= Hi;
         Curr = Curr->Next[0].load(std::memory_order_acquire))
      if (Curr->Val >= Lo &&
          Curr->FullyLinked.load(std::memory_order_acquire) &&
          !Curr->Marked.load(std::memory_order_acquire))
        Out.push_back(Curr->Val);
    return Out.size() - Entry;
  }

  std::vector<SetKey> snapshot() const {
    std::vector<SetKey> Keys;
    for (const Node *Curr = Head->Next[0].load(std::memory_order_acquire);
         Curr->Val != MaxSentinel;
         Curr = Curr->Next[0].load(std::memory_order_acquire))
      if (!Curr->Marked.load(std::memory_order_acquire))
        Keys.push_back(Curr->Val);
    return Keys;
  }

  bool checkInvariants() const {
    // Level 0 ordering and cleanliness.
    const Node *Curr = Head;
    if (Curr->Val != MinSentinel)
      return false;
    while (Curr->Val != MaxSentinel) {
      const Node *Next = Curr->Next[0].load(std::memory_order_acquire);
      if (!Next || Next->Val <= Curr->Val)
        return false;
      if (Curr->Marked.load(std::memory_order_acquire))
        return false;
      if (Curr->NodeLock.isLocked())
        return false;
      Curr = Next;
    }
    // Every higher level must be a subsequence of level 0 (sorted and
    // terminating at tail).
    for (int Level = 1; Level != MaxLevel; ++Level) {
      const Node *Walk = Head;
      size_t Hops = 0;
      while (Walk->Val != MaxSentinel) {
        const Node *Next = Walk->Next[Level].load(std::memory_order_acquire);
        if (!Next || Next->Val <= Walk->Val)
          return false;
        if (++Hops > (size_t(1) << 24))
          return false; // Cycle guard.
        Walk = Next;
      }
    }
    return true;
  }

  size_t sizeSlow() const { return snapshot().size(); }

  Reclaim &reclaimDomain() { return Domain; }

private:
  /// Towers span multiple cache lines regardless (MaxLevel next
  /// pointers); aligning the base still keeps the hot header fields
  /// (Val, Marked, FullyLinked, lock, levels 0-4) on one line.
  struct alignas(NodeAlignBytes) Node {
    Node(SetKey Val, int TopLevel) : Val(Val), TopLevel(TopLevel) {}

    const SetKey Val;
    const int TopLevel;
    std::atomic<bool> Marked{false};
    std::atomic<bool> FullyLinked{false};
    LockT NodeLock;
    std::atomic<Node *> Next[MaxLevel] = {};
  };

  /// Unlocked skip-list search. Fills Preds/Succs for every level and
  /// returns the highest level at which a node with Key sits, or -1.
  int find(SetKey Key, Node **Preds, Node **Succs) {
    int FoundLevel = -1;
    Node *Pred = Head;
    for (int Level = MaxLevel - 1; Level >= 0; --Level) {
      Node *Curr = Pred->Next[Level].load(std::memory_order_acquire);
      while (Curr->Val < Key) {
        Pred = Curr;
        Curr = Pred->Next[Level].load(std::memory_order_acquire);
        // Pull the successor's line while this node's key is compared.
        VBL_PREFETCH(Curr->Next[Level].load(std::memory_order_relaxed));
      }
      if (FoundLevel == -1 && Curr->Val == Key)
        FoundLevel = Level;
      Preds[Level] = Pred;
      Succs[Level] = Curr;
    }
    return FoundLevel;
  }

  // Suppressed: releases the data-dependent lock set insert()/remove()
  // built up (see insert).
  void unlockPreds(Node **Preds, int HighestLocked)
      VBL_NO_THREAD_SAFETY_ANALYSIS {
    Node *LastUnlocked = nullptr;
    for (int Level = 0; Level <= HighestLocked; ++Level) {
      if (Preds[Level] != LastUnlocked) {
        Preds[Level]->NodeLock.unlock();
        LastUnlocked = Preds[Level];
      }
    }
  }

  /// Geometric tower height, p = 1/2, capped. Per-thread generator
  /// seeded from a process-wide counter so levels stay independent
  /// across threads without shared state.
  static int randomLevel() {
    static std::atomic<uint64_t> SeedCounter{0x9e3779b97f4a7c15ULL};
    thread_local Xoshiro256 Rng(
        SeedCounter.fetch_add(0x6a09e667f3bcc909ULL,
                              std::memory_order_relaxed));
    int Level = 0;
    // One 64-bit draw gives up to 64 coin flips; MaxLevel caps it.
    uint64_t Bits = Rng.next();
    while ((Bits & 1) && Level < MaxLevel - 1) {
      ++Level;
      Bits >>= 1;
    }
    return Level;
  }

  Node *Head;
  Node *Tail;
  mutable Reclaim Domain;
};

} // namespace vbl

#endif // VBL_LISTS_LAZYSKIPLIST_H
