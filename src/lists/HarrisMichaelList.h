//===- lists/HarrisMichaelList.h - Michael's lock-free list --------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Harris-Michael lock-free list (Michael, SPAA 2002; Herlihy &
/// Shavit ch. 9) — the paper's second comparator. Removal is split into
/// a logical CAS (setting the mark bit in the victim's next word) and a
/// physical CAS on the predecessor; if the physical step fails, the
/// *next* traversal that encounters the marked node unlinks it, and a
/// traversal whose unlink CAS fails restarts from the head. That
/// delegation is what makes the algorithm lock-free — and what rejects
/// the correct schedule of Fig. 3.
///
/// Representation: the mark lives in bit 0 of the 'next' word. The
/// paper's Java version needs an RTTI-subclass trick to read the mark
/// without an extra indirection; pointer tagging is the C++ equivalent
/// with zero indirections (see DESIGN.md substitutions).
///
//===----------------------------------------------------------------------===//

#ifndef VBL_LISTS_HARRISMICHAELLIST_H
#define VBL_LISTS_HARRISMICHAELLIST_H

#include "analysis/FlowView.h"
#include "core/SetConfig.h"
#include "reclaim/EpochDomain.h"
#include "reclaim/NodePool.h"
#include "support/Compiler.h"
#include "sync/Policy.h"

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

namespace vbl {

template <class ReclaimT = reclaim::EpochDomain,
          class PolicyT = DirectPolicy>
class HarrisMichaelList {
  /// One node per cache line by default (NodeAlignBytes, SetConfig.h) so
  /// a CAS on one node's tagged word never invalidates a neighbour.
  struct alignas(NodeAlignBytes) Node {
    explicit Node(SetKey Val) : Val(Val) {}

    const SetKey Val;
    /// Tagged word: successor pointer in the upper bits, "this node is
    /// logically deleted" in bit 0.
    std::atomic<uintptr_t> Next{0};
  };

public:
  using Reclaim = ReclaimT;
  using Policy = PolicyT;

  /// Opaque handle to a list node that the caller guarantees is never
  /// removed (the head sentinel, or the dummy nodes a split-ordered
  /// hash overlay pins into the list). Such a handle stays valid for
  /// the lifetime of the list and may seed *From() operations.
  using BucketHandle = Node *;

  HarrisMichaelList() {
    Tail = reclaim::poolCreate<Node, Policy>(MaxSentinel);
    Head = reclaim::poolCreate<Node, Policy>(MinSentinel);
    Head->Next.store(pack(Tail, false), std::memory_order_relaxed);
  }

  ~HarrisMichaelList() {
    Node *Curr = Head;
    while (Curr) {
      Node *Next = ptrOf(Curr->Next.load(std::memory_order_relaxed));
      reclaim::poolDestroy<Policy>(Curr);
      Curr = Next;
    }
  }

  HarrisMichaelList(const HarrisMichaelList &) = delete;
  HarrisMichaelList &operator=(const HarrisMichaelList &) = delete;

  bool insert(SetKey Key) { return insertFrom(Key, Head); }
  bool remove(SetKey Key) { return removeFrom(Key, Head); }
  bool contains(SetKey Key) const { return containsFrom(Key, Head); }

  //===--------------------------------------------------------------===//
  // Split-ordered hash substrate hooks. Each operation behaves exactly
  // like its head-anchored counterpart but starts traversing at \p
  // Start, which must be a handle to a never-removed node whose key is
  // smaller than \p Key (a bucket dummy). Restarts re-traverse from
  // Start, never from the global head.
  //===--------------------------------------------------------------===//

  /// Handle of the head sentinel: bucket 0 of a split-ordered overlay.
  BucketHandle headHandle() { return Head; }

  /// Key stored at a handle (sentinels return their sentinel key).
  static SetKey handleKey(BucketHandle Handle) { return Handle->Val; }

  bool insertFrom(SetKey Key, BucketHandle Start) {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    typename Reclaim::Guard G(Domain);
    Node *NewNode = nullptr;
    for (;;) {
      auto [Prev, Curr] = find(Key, Start);
      if (Curr->Val == Key) {
        reclaim::poolDestroy<Policy>(NewNode); // Never published.
        return false;
      }
      if (!NewNode) {
        NewNode = reclaim::poolCreate<Node, Policy>(Key);
        Policy::onNewNode(NewNode, Key);
      }
      NewNode->Next.store(pack(Curr, false), std::memory_order_relaxed);
      uintptr_t Expected = pack(Curr, false);
      // Release: publishes NewNode's fields together with the link.
      if (Policy::casStrong(Prev->Next, Expected, pack(NewNode, false),
                            std::memory_order_release, Prev,
                            MemField::Next))
        return true;
      stats::bump(stats::Counter::ListCasFailures);
      Policy::onRestart();
    }
  }

  bool removeFrom(SetKey Key, BucketHandle Start) {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    typename Reclaim::Guard G(Domain);
    for (;;) {
      auto [Prev, Curr] = find(Key, Start);
      if (Curr->Val != Key)
        return false;
      const uintptr_t SuccWord =
          Policy::read(Curr->Next, std::memory_order_acquire, Curr,
                       MemField::Next);
      if (markOf(SuccWord)) {
        // Someone else is removing Curr; help by re-finding.
        Policy::onRestart();
        continue;
      }
      Node *Succ = ptrOf(SuccWord);
      // Logical deletion: this CAS is the linearization point.
      uintptr_t Expected = pack(Succ, false);
      if (!Policy::casStrong(Curr->Next, Expected, pack(Succ, true),
                             std::memory_order_release, Curr,
                             MemField::Next)) {
        stats::bump(stats::Counter::ListCasFailures);
        Policy::onRestart();
        continue;
      }
      // Physical unlink: best effort. On failure the node stays linked
      // (marked) and some future find() unlinks and retires it.
      Expected = pack(Curr, false);
      if (Policy::casStrong(Prev->Next, Expected, pack(Succ, false),
                            std::memory_order_release, Prev,
                            MemField::Next))
        reclaim::poolRetire<Policy>(Domain, Curr);
      return true;
    }
  }

  /// Wait-free contains: traverses without helping, then reads the mark
  /// from the found node's next word.
  bool containsFrom(SetKey Key, const Node *Start) const {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    typename Reclaim::Guard G(Domain);
    const Node *Curr = Start;
    SetKey Val = Policy::readValue(Curr->Val, Curr);
    uint64_t Hops = 0; // Accumulated locally; one stats call at the end.
    while (Val < Key) {
      Curr = ptrOf(Policy::read(Curr->Next, std::memory_order_acquire,
                                Curr, MemField::Next));
      // Pull the successor's line while this node's key is compared
      // (direct mode only; traced runs take no invisible shared reads).
      if constexpr (!Policy::Traced)
        VBL_PREFETCH(ptrOf(Curr->Next.load(std::memory_order_relaxed)));
      Val = Policy::readValue(Curr->Val, Curr);
      ++Hops;
    }
    stats::noteTraversal(Hops);
    if (Val != Key)
      return false;
    return !markOf(Policy::read(Curr->Next, std::memory_order_acquire,
                                Curr, MemField::Next));
  }

  /// Wait-free range scan: appends every unmarked key in [Lo, Hi] to
  /// \p Out in ascending order and returns how many were appended. One
  /// next-word read per hop serves both the mark test and the advance,
  /// so a node observed unmarked at its visit is reported present (its
  /// linearization point is that read).
  size_t rangeQuery(SetKey Lo, SetKey Hi, std::vector<SetKey> &Out) const {
    VBL_ASSERT(isUserKey(Lo) && isUserKey(Hi),
               "sentinel keys are reserved");
    if (Lo > Hi)
      return 0;
    typename Reclaim::Guard G(Domain);
    const size_t Entry = Out.size();
    const Node *Curr = ptrOf(Policy::read(
        Head->Next, std::memory_order_acquire, Head, MemField::Next));
    SetKey Val = Policy::readValue(Curr->Val, Curr);
    uint64_t Hops = 0; // Accumulated locally; one stats call at the end.
    while (Val <= Hi) {
      const uintptr_t Word = Policy::read(
          Curr->Next, std::memory_order_acquire, Curr, MemField::Next);
      if (Val >= Lo && !markOf(Word))
        Out.push_back(Val);
      Curr = ptrOf(Word);
      if constexpr (!Policy::Traced)
        VBL_PREFETCH(ptrOf(Curr->Next.load(std::memory_order_relaxed)));
      Val = Policy::readValue(Curr->Val, Curr);
      ++Hops;
    }
    stats::noteTraversal(Hops);
    return Out.size() - Entry;
  }

  /// Get-or-insert for split-order dummy nodes: returns a handle to the
  /// unique node carrying \p Key, inserting it if absent. The caller
  /// promises the key is never removed from the set (dummy keys are not
  /// user-visible), which is what makes the returned handle stable.
  BucketHandle getOrInsertSentinelFrom(SetKey Key, BucketHandle Start) {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    typename Reclaim::Guard G(Domain);
    Node *NewNode = nullptr;
    for (;;) {
      auto [Prev, Curr] = find(Key, Start);
      if (Curr->Val == Key) {
        reclaim::poolDestroy<Policy>(NewNode); // Never published.
        return Curr;
      }
      if (!NewNode) {
        NewNode = reclaim::poolCreate<Node, Policy>(Key);
        Policy::onNewNode(NewNode, Key);
      }
      NewNode->Next.store(pack(Curr, false), std::memory_order_relaxed);
      uintptr_t Expected = pack(Curr, false);
      if (Policy::casStrong(Prev->Next, Expected, pack(NewNode, false),
                            std::memory_order_release, Prev,
                            MemField::Next))
        return NewNode;
      stats::bump(stats::Counter::ListCasFailures);
      Policy::onRestart();
    }
  }

  std::vector<SetKey> snapshot() const {
    std::vector<SetKey> Keys;
    for (const Node *Curr =
             ptrOf(Head->Next.load(std::memory_order_acquire));
         Curr->Val != MaxSentinel;
         Curr = ptrOf(Curr->Next.load(std::memory_order_acquire)))
      if (!markOf(Curr->Next.load(std::memory_order_acquire)))
        Keys.push_back(Curr->Val);
    return Keys;
  }

  bool checkInvariants() const {
    const Node *Curr = Head;
    if (Curr->Val != MinSentinel)
      return false;
    while (true) {
      const uintptr_t Word = Curr->Next.load(std::memory_order_acquire);
      // Quiescent check: marked nodes may legally linger (delegated
      // unlinks), but order must hold along the unmarked chain too.
      const Node *Next = ptrOf(Word);
      if (Curr->Val == MaxSentinel)
        return Next == nullptr && !markOf(Word);
      if (!Next || Next->Val <= Curr->Val)
        return false;
      Curr = Next;
    }
  }

  size_t sizeSlow() const { return snapshot().size(); }

  Reclaim &reclaimDomain() { return Domain; }

  /// Identity of the head sentinel (schedule exporters key off it).
  const void *headNode() const { return Head; }

  /// Quiescent-only: the (node, key) chain from head to tail inclusive
  /// (marked nodes included — they are physically present).
  std::vector<std::pair<const void *, SetKey>> nodeChain() const {
    std::vector<std::pair<const void *, SetKey>> Chain;
    for (const Node *Curr = Head; Curr;
         Curr = ptrOf(Curr->Next.load(std::memory_order_relaxed)))
      Chain.emplace_back(Curr, Curr->Val);
    return Chain;
  }

  /// Self-description for the flow-invariant oracle. The mark is bit 0
  /// of the node's own next word; marked nodes may legally stay
  /// reachable after remove() returns (delegated physical unlink).
  analysis::FlowView flowView() {
    analysis::FlowView View;
    View.HasMark = true;
    View.MarkedMayLinger = true;
    View.Describe = [this] {
      std::vector<analysis::FlowNodeDesc> Chain;
      for (const Node *Curr = Head;
           Curr && Chain.size() < analysis::FlowWalkCap;) {
        const uintptr_t Word = Curr->Next.load(std::memory_order_relaxed);
        analysis::FlowNodeDesc D;
        D.Node = Curr;
        D.Key = Curr->Val;
        D.Marked = markOf(Word);
        Chain.push_back(std::move(D));
        Curr = ptrOf(Word);
      }
      return Chain;
    };
    return View;
  }

private:
  static Node *ptrOf(uintptr_t Word) {
    return reinterpret_cast<Node *>(Word & ~uintptr_t(1));
  }
  static bool markOf(uintptr_t Word) { return Word & 1; }
  static uintptr_t pack(const Node *Ptr, bool Marked) {
    const auto Raw = reinterpret_cast<uintptr_t>(Ptr);
    VBL_ASSERT((Raw & 1) == 0, "node pointers must be 2-byte aligned");
    return Raw | static_cast<uintptr_t>(Marked);
  }

  /// Michael's find: returns (prev, curr) with curr unmarked,
  /// prev.val < Key <= curr.val and prev->next == curr. Unlinks every
  /// marked node it encounters; restarts from \p Start (the head, or a
  /// never-removed bucket dummy) when an unlink CAS loses a race.
  std::pair<Node *, Node *> find(SetKey Key, Node *Start) {
    uint64_t Hops = 0; // Accumulated across retries; one stats call.
  Retry:
    Node *Prev = Start;
    Node *Curr = ptrOf(Policy::read(Prev->Next, std::memory_order_acquire,
                                    Prev, MemField::Next));
    for (;;) {
      const uintptr_t SuccWord =
          Policy::read(Curr->Next, std::memory_order_acquire, Curr,
                       MemField::Next);
      Node *Succ = ptrOf(SuccWord);
      // Overlap the successor fetch with the mark test and key compare.
      if constexpr (!Policy::Traced)
        VBL_PREFETCH(Succ);
      ++Hops;
      if (markOf(SuccWord)) {
        // Curr is logically deleted: delegated physical unlink.
        uintptr_t Expected = pack(Curr, false);
        if (!Policy::casStrong(Prev->Next, Expected, pack(Succ, false),
                               std::memory_order_release, Prev,
                               MemField::Next)) {
          stats::bump(stats::Counter::ListCasFailures);
          Policy::onRestart();
          goto Retry; // The restart Fig. 3 exploits.
        }
        reclaim::poolRetire<Policy>(Domain, Curr);
        Curr = Succ;
        continue;
      }
      if (Policy::readValue(Curr->Val, Curr) >= Key) {
        stats::noteTraversal(Hops);
        return {Prev, Curr};
      }
      Prev = Curr;
      Curr = Succ;
    }
  }

  Node *Head;
  Node *Tail;
  mutable Reclaim Domain;
};

} // namespace vbl

#endif // VBL_LISTS_HARRISMICHAELLIST_H
