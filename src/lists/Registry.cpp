//===- lists/Registry.cpp - Name -> algorithm factory table --------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "lists/SetInterface.h"

#include "core/VblChunkList.h"
#include "core/VblList.h"
#include "lists/CoarseList.h"
#include "lists/HandOverHandList.h"
#include "lists/HarrisList.h"
#include "lists/HarrisMichaelList.h"
#include "lists/HarrisMichaelListHp.h"
#include "lists/LazyList.h"
#include "lists/LazySkipList.h"
#include "lists/OptimisticList.h"
#include "lists/TombstoneBst.h"
#include "maps/SplitOrderedHashSet.h"
#include "reclaim/LeakyDomain.h"
#include "reclaim/VbrDomain.h"
#include "sync/VersionedLock.h"

#include <algorithm>
#include <utility>

using namespace vbl;

ConcurrentSet::~ConcurrentSet() = default;

namespace {

struct RegistryEntry {
  const char *Name;
  std::unique_ptr<ConcurrentSet> (*Factory)(const std::string &Name);
  /// One-line human description: substrate, reclaim domain, chunk K,
  /// lock flavour. Dumped by tools/list_backends.py and echoed in
  /// ShardedSet backend-resolution errors.
  const char *Describe;
  /// Whether the structure accepts every isUserKey value. The
  /// split-ordered hash sets accept only isHashKey values ([0, 2^62)),
  /// so they are resolvable by makeSet() but excluded from
  /// registeredSetNames() — the generic list tests feed negative and
  /// extreme keys. They are enumerated by registeredHashSetNames().
  bool FullKeyDomain = true;
};

} // namespace

template <class ListT>
static std::unique_ptr<ConcurrentSet> makeAdapter(const std::string &Name) {
  return std::make_unique<SetAdapter<ListT>>(Name);
}

// Variant aliases. The default reclamation is epoch-based; "-leaky"
// variants reproduce the paper's C++-without-memory-management setup.
using VblDefault = VblList<>;
using VblLeaky = VblList<reclaim::LeakyDomain>;
using VblHeadRestart =
    VblList<reclaim::EpochDomain, DirectPolicy, TasLock,
            /*RestartFromPrev=*/false, /*ValueAware=*/true>;
using VblNodeAware =
    VblList<reclaim::EpochDomain, DirectPolicy, TasLock,
            /*RestartFromPrev=*/true, /*ValueAware=*/false>;
using VblTtas = VblList<reclaim::EpochDomain, DirectPolicy, TtasLock>;
using VblVersioned =
    VblList<reclaim::EpochDomain, DirectPolicy, VersionedLock>;
using LazyDefault = LazyList<>;
using LazyLeaky = LazyList<reclaim::LeakyDomain>;
using HarrisMichaelDefault = HarrisMichaelList<>;
using HarrisMichaelLeaky = HarrisMichaelList<reclaim::LeakyDomain>;
using HarrisDefault = HarrisList<>;
using OptimisticDefault = OptimisticList<>;
using HandOverHandDefault = HandOverHandList<>;
// Split-ordered hash overlays (src/maps) over the paper's substrates.
using SoHashHm = maps::SplitOrderedHashSet<HarrisMichaelDefault>;
using SoHashVbl = maps::SplitOrderedHashSet<VblDefault>;
// Unrolled chunked VBL (core/VblChunkList.h). K=7 fills one 64-byte key
// line; K=1 is the unrolling ablation (flat-like layout, chunk
// protocol); K=15 fills two key lines per chunk.
using VblChunkDefault = VblChunkList<7>;
using VblChunkK1 = VblChunkList<1>;
using VblChunkK15 = VblChunkList<15>;
using VblChunkLeaky = VblChunkList<7, reclaim::LeakyDomain>;
// Version-based reclamation variants: immediate type-stable block reuse
// with birth-epoch validation folded into the optimistic read protocol.
using VblVbr = VblList<reclaim::VbrDomain>;
using LazyVbr = LazyList<reclaim::VbrDomain>;
using VblChunkVbr = VblChunkList<7, reclaim::VbrDomain>;
using SoHashVblVbr = maps::SplitOrderedHashSet<VblVbr>;
using SoHashHmHp = maps::SplitOrderedHashSet<HarrisMichaelListHp>;
// Resizable hash variants: shrink enabled, so the bucket index follows
// the population both ways (grow at load factor 4, halve once the held
// count falls under a quarter of the grow trigger). Displaced indexes
// retire through the substrate's own domain.
struct ResizeHashConfig {
  static HashSetConfig config() {
    HashSetConfig C;
    C.InitialBuckets = 16;
    C.GrowLoadFactor = 4;
    C.MinBuckets = 1;
    C.ShrinkDivisor = 4;
    C.EnableShrink = true;
    return C;
  }
};
using SoHashHmResize =
    maps::SplitOrderedHashSet<HarrisMichaelDefault, ResizeHashConfig>;
using SoHashVblResize =
    maps::SplitOrderedHashSet<VblDefault, ResizeHashConfig>;
using SoHashVblVbrResize =
    maps::SplitOrderedHashSet<VblVbr, ResizeHashConfig>;
using SoHashHmHpResize =
    maps::SplitOrderedHashSet<HarrisMichaelListHp, ResizeHashConfig>;
// Contention-adaptive chunking: splits hot chunks toward small
// effective K, merges cold runs toward large K, both piggybacked on the
// freeze-and-replace protocol.
using VblChunkAdaptive =
    VblChunkList<7, reclaim::EpochDomain, DirectPolicy, /*Adaptive=*/true>;

static const RegistryEntry Registry[] = {
    {"vbl", &makeAdapter<VblDefault>,
     "paper's VBL list; substrate=flat domain=ebr lock=tas"},
    {"lazy", &makeAdapter<LazyDefault>,
     "lazy list (Heller et al.); substrate=flat domain=ebr lock=tas"},
    {"harris-michael", &makeAdapter<HarrisMichaelDefault>,
     "Harris-Michael CAS list; substrate=flat domain=ebr lock=none"},
    {"harris", &makeAdapter<HarrisDefault>,
     "Harris list (deferred unlink); substrate=flat domain=ebr lock=none"},
    {"optimistic", &makeAdapter<OptimisticDefault>,
     "optimistic re-traversal validation; substrate=flat domain=ebr "
     "lock=tas"},
    {"hand-over-hand", &makeAdapter<HandOverHandDefault>,
     "hand-over-hand (fine-grained) locking; substrate=flat domain=ebr "
     "lock=tas"},
    {"coarse", &makeAdapter<CoarseList>,
     "single global lock baseline; substrate=flat domain=none lock=tas"},
    {"vbl-leaky", &makeAdapter<VblLeaky>,
     "VBL, no reclamation (paper setup); substrate=flat domain=leaky "
     "lock=tas"},
    {"lazy-leaky", &makeAdapter<LazyLeaky>,
     "lazy list, no reclamation; substrate=flat domain=leaky lock=tas"},
    {"harris-michael-leaky", &makeAdapter<HarrisMichaelLeaky>,
     "Harris-Michael, no reclamation; substrate=flat domain=leaky "
     "lock=none"},
    {"vbl-head-restart", &makeAdapter<VblHeadRestart>,
     "VBL restarting from head (ablation); substrate=flat domain=ebr "
     "lock=tas"},
    {"vbl-node-aware", &makeAdapter<VblNodeAware>,
     "VBL with node- not value-aware validation (ablation); "
     "substrate=flat domain=ebr lock=tas"},
    {"vbl-ttas", &makeAdapter<VblTtas>,
     "VBL over test-and-test-and-set locks; substrate=flat domain=ebr "
     "lock=ttas"},
    {"vbl-versioned", &makeAdapter<VblVersioned>,
     "VBL over seqlock-style versioned locks; substrate=flat domain=ebr "
     "lock=versioned"},
    {"harris-michael-hp", &makeAdapter<HarrisMichaelListHp>,
     "Harris-Michael over hazard pointers; substrate=flat domain=hp "
     "lock=none"},
    {"vbl-chunk", &makeAdapter<VblChunkDefault>,
     "unrolled chunked VBL; substrate=chunk K=7 domain=ebr "
     "lock=chunk-seqlock"},
    {"vbl-chunk-k1", &makeAdapter<VblChunkK1>,
     "chunked VBL, K=1 unrolling ablation; substrate=chunk K=1 "
     "domain=ebr lock=chunk-seqlock"},
    {"vbl-chunk-k15", &makeAdapter<VblChunkK15>,
     "chunked VBL, two key lines per chunk; substrate=chunk K=15 "
     "domain=ebr lock=chunk-seqlock"},
    {"vbl-chunk-leaky", &makeAdapter<VblChunkLeaky>,
     "chunked VBL, no reclamation; substrate=chunk K=7 domain=leaky "
     "lock=chunk-seqlock"},
    {"skiplist-lazy", &makeAdapter<LazySkipList<>>,
     "lazy skip list; substrate=skiplist domain=ebr lock=tas"},
    {"bst-tombstone", &makeAdapter<TombstoneBst<>>,
     "tombstone-delete BST; substrate=bst domain=ebr lock=tas"},
    {"vbl-vbr", &makeAdapter<VblVbr>,
     "VBL over version-based reclamation; substrate=flat domain=vbr "
     "lock=tas"},
    {"lazy-vbr", &makeAdapter<LazyVbr>,
     "lazy list over version-based reclamation; substrate=flat "
     "domain=vbr lock=tas"},
    {"vbl-chunk-vbr", &makeAdapter<VblChunkVbr>,
     "chunked VBL over version-based reclamation; substrate=chunk K=7 "
     "domain=vbr lock=chunk-seqlock"},
    {"vbl-chunk-adaptive", &makeAdapter<VblChunkAdaptive>,
     "chunked VBL, contention-adaptive shapes (hot split / cold merge); "
     "substrate=chunk K=7 domain=ebr lock=chunk-seqlock"},
    {"so-hash-hm", &makeAdapter<SoHashHm>,
     "split-ordered hash over Harris-Michael; substrate=hash/flat "
     "domain=ebr lock=none keys=[0,2^62)", /*FullKeyDomain=*/false},
    {"so-hash-vbl", &makeAdapter<SoHashVbl>,
     "split-ordered hash over VBL; substrate=hash/flat domain=ebr "
     "lock=tas keys=[0,2^62)", /*FullKeyDomain=*/false},
    {"so-hash-vbl-vbr", &makeAdapter<SoHashVblVbr>,
     "split-ordered hash over VBL+VBR; substrate=hash/flat domain=vbr "
     "lock=tas keys=[0,2^62)", /*FullKeyDomain=*/false},
    {"so-hash-hm-hp", &makeAdapter<SoHashHmHp>,
     "split-ordered hash over Harris-Michael+HP; substrate=hash/flat "
     "domain=hp lock=none keys=[0,2^62)", /*FullKeyDomain=*/false},
    {"so-hash-hm-resize", &makeAdapter<SoHashHmResize>,
     "split-ordered hash over Harris-Michael, grow+shrink index; "
     "substrate=hash/flat domain=ebr lock=none keys=[0,2^62)",
     /*FullKeyDomain=*/false},
    {"so-hash-vbl-resize", &makeAdapter<SoHashVblResize>,
     "split-ordered hash over VBL, grow+shrink index; substrate=hash/flat "
     "domain=ebr lock=tas keys=[0,2^62)", /*FullKeyDomain=*/false},
    {"so-hash-vbl-vbr-resize", &makeAdapter<SoHashVblVbrResize>,
     "split-ordered hash over VBL+VBR, grow+shrink index; "
     "substrate=hash/flat domain=vbr lock=tas keys=[0,2^62)",
     /*FullKeyDomain=*/false},
    {"so-hash-hm-hp-resize", &makeAdapter<SoHashHmHpResize>,
     "split-ordered hash over Harris-Michael+HP, grow+shrink index; "
     "substrate=hash/flat domain=hp lock=none keys=[0,2^62)",
     /*FullKeyDomain=*/false},
};

std::unique_ptr<ConcurrentSet> vbl::makeSet(const std::string &Name) {
  for (const RegistryEntry &Entry : Registry)
    if (Name == Entry.Name)
      return Entry.Factory(Name);
  return nullptr;
}

std::vector<std::string> vbl::registeredSetNames() {
  std::vector<std::string> Names;
  for (const RegistryEntry &Entry : Registry)
    if (Entry.FullKeyDomain)
      Names.push_back(Entry.Name);
  return Names;
}

std::vector<std::string> vbl::registeredHashSetNames() {
  std::vector<std::string> Names;
  for (const RegistryEntry &Entry : Registry)
    if (!Entry.FullKeyDomain)
      Names.push_back(Entry.Name);
  return Names;
}

std::vector<std::string> vbl::paperComparisonSetNames() {
  return {"vbl", "lazy", "harris-michael"};
}

std::vector<SetDescription> vbl::registeredSetDescriptions() {
  std::vector<SetDescription> Rows;
  for (const RegistryEntry &Entry : Registry)
    Rows.push_back({Entry.Name, Entry.Describe, Entry.FullKeyDomain});
  return Rows;
}

std::string vbl::setDescription(const std::string &Name) {
  for (const RegistryEntry &Entry : Registry)
    if (Name == Entry.Name)
      return Entry.Describe;
  return {};
}

/// Plain Levenshtein distance, O(|A|*|B|) with two rows — names are a
/// couple dozen characters, so no banding needed.
static size_t editDistance(const std::string &A, const std::string &B) {
  std::vector<size_t> Prev(B.size() + 1), Row(B.size() + 1);
  for (size_t J = 0; J <= B.size(); ++J)
    Prev[J] = J;
  for (size_t I = 1; I <= A.size(); ++I) {
    Row[0] = I;
    for (size_t J = 1; J <= B.size(); ++J) {
      const size_t Sub = Prev[J - 1] + (A[I - 1] == B[J - 1] ? 0 : 1);
      Row[J] = std::min({Prev[J] + 1, Row[J - 1] + 1, Sub});
    }
    std::swap(Prev, Row);
  }
  return Prev[B.size()];
}

std::vector<std::string> vbl::suggestSetNames(const std::string &Name,
                                              size_t MaxSuggestions) {
  // Substring hits rank before edit-distance hits: "chunk" should
  // suggest every vbl-chunk-* before anything 3 edits away.
  std::vector<std::pair<size_t, std::string>> Scored;
  for (const RegistryEntry &Entry : Registry) {
    const std::string Registered = Entry.Name;
    const size_t Distance = editDistance(Name, Registered);
    if (!Name.empty() && Registered.find(Name) != std::string::npos)
      Scored.emplace_back(0, Registered);
    else if (Distance <= 3)
      Scored.emplace_back(Distance, Registered);
  }
  std::stable_sort(Scored.begin(), Scored.end(),
                   [](const auto &A, const auto &B) {
                     return A.first < B.first;
                   });
  std::vector<std::string> Suggestions;
  for (const auto &[Distance, Registered] : Scored) {
    if (Suggestions.size() == MaxSuggestions)
      break;
    Suggestions.push_back(Registered);
  }
  return Suggestions;
}
