//===- lists/Registry.cpp - Name -> algorithm factory table --------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "lists/SetInterface.h"

#include "core/VblChunkList.h"
#include "core/VblList.h"
#include "lists/CoarseList.h"
#include "lists/HandOverHandList.h"
#include "lists/HarrisList.h"
#include "lists/HarrisMichaelList.h"
#include "lists/HarrisMichaelListHp.h"
#include "lists/LazyList.h"
#include "lists/LazySkipList.h"
#include "lists/OptimisticList.h"
#include "lists/TombstoneBst.h"
#include "maps/SplitOrderedHashSet.h"
#include "reclaim/LeakyDomain.h"
#include "reclaim/VbrDomain.h"
#include "sync/VersionedLock.h"

using namespace vbl;

ConcurrentSet::~ConcurrentSet() = default;

namespace {

struct RegistryEntry {
  const char *Name;
  std::unique_ptr<ConcurrentSet> (*Factory)(const std::string &Name);
  /// Whether the structure accepts every isUserKey value. The
  /// split-ordered hash sets accept only isHashKey values ([0, 2^62)),
  /// so they are resolvable by makeSet() but excluded from
  /// registeredSetNames() — the generic list tests feed negative and
  /// extreme keys. They are enumerated by registeredHashSetNames().
  bool FullKeyDomain = true;
};

} // namespace

template <class ListT>
static std::unique_ptr<ConcurrentSet> makeAdapter(const std::string &Name) {
  return std::make_unique<SetAdapter<ListT>>(Name);
}

// Variant aliases. The default reclamation is epoch-based; "-leaky"
// variants reproduce the paper's C++-without-memory-management setup.
using VblDefault = VblList<>;
using VblLeaky = VblList<reclaim::LeakyDomain>;
using VblHeadRestart =
    VblList<reclaim::EpochDomain, DirectPolicy, TasLock,
            /*RestartFromPrev=*/false, /*ValueAware=*/true>;
using VblNodeAware =
    VblList<reclaim::EpochDomain, DirectPolicy, TasLock,
            /*RestartFromPrev=*/true, /*ValueAware=*/false>;
using VblTtas = VblList<reclaim::EpochDomain, DirectPolicy, TtasLock>;
using VblVersioned =
    VblList<reclaim::EpochDomain, DirectPolicy, VersionedLock>;
using LazyDefault = LazyList<>;
using LazyLeaky = LazyList<reclaim::LeakyDomain>;
using HarrisMichaelDefault = HarrisMichaelList<>;
using HarrisMichaelLeaky = HarrisMichaelList<reclaim::LeakyDomain>;
using HarrisDefault = HarrisList<>;
using OptimisticDefault = OptimisticList<>;
using HandOverHandDefault = HandOverHandList<>;
// Split-ordered hash overlays (src/maps) over the paper's substrates.
using SoHashHm = maps::SplitOrderedHashSet<HarrisMichaelDefault>;
using SoHashVbl = maps::SplitOrderedHashSet<VblDefault>;
// Unrolled chunked VBL (core/VblChunkList.h). K=7 fills one 64-byte key
// line; K=1 is the unrolling ablation (flat-like layout, chunk
// protocol); K=15 fills two key lines per chunk.
using VblChunkDefault = VblChunkList<7>;
using VblChunkK1 = VblChunkList<1>;
using VblChunkK15 = VblChunkList<15>;
using VblChunkLeaky = VblChunkList<7, reclaim::LeakyDomain>;
// Version-based reclamation variants: immediate type-stable block reuse
// with birth-epoch validation folded into the optimistic read protocol.
using VblVbr = VblList<reclaim::VbrDomain>;
using LazyVbr = LazyList<reclaim::VbrDomain>;
using VblChunkVbr = VblChunkList<7, reclaim::VbrDomain>;
using SoHashVblVbr = maps::SplitOrderedHashSet<VblVbr>;

static const RegistryEntry Registry[] = {
    {"vbl", &makeAdapter<VblDefault>},
    {"lazy", &makeAdapter<LazyDefault>},
    {"harris-michael", &makeAdapter<HarrisMichaelDefault>},
    {"harris", &makeAdapter<HarrisDefault>},
    {"optimistic", &makeAdapter<OptimisticDefault>},
    {"hand-over-hand", &makeAdapter<HandOverHandDefault>},
    {"coarse", &makeAdapter<CoarseList>},
    {"vbl-leaky", &makeAdapter<VblLeaky>},
    {"lazy-leaky", &makeAdapter<LazyLeaky>},
    {"harris-michael-leaky", &makeAdapter<HarrisMichaelLeaky>},
    {"vbl-head-restart", &makeAdapter<VblHeadRestart>},
    {"vbl-node-aware", &makeAdapter<VblNodeAware>},
    {"vbl-ttas", &makeAdapter<VblTtas>},
    {"vbl-versioned", &makeAdapter<VblVersioned>},
    {"harris-michael-hp", &makeAdapter<HarrisMichaelListHp>},
    {"vbl-chunk", &makeAdapter<VblChunkDefault>},
    {"vbl-chunk-k1", &makeAdapter<VblChunkK1>},
    {"vbl-chunk-k15", &makeAdapter<VblChunkK15>},
    {"vbl-chunk-leaky", &makeAdapter<VblChunkLeaky>},
    {"skiplist-lazy", &makeAdapter<LazySkipList<>>},
    {"bst-tombstone", &makeAdapter<TombstoneBst<>>},
    {"vbl-vbr", &makeAdapter<VblVbr>},
    {"lazy-vbr", &makeAdapter<LazyVbr>},
    {"vbl-chunk-vbr", &makeAdapter<VblChunkVbr>},
    {"so-hash-hm", &makeAdapter<SoHashHm>, /*FullKeyDomain=*/false},
    {"so-hash-vbl", &makeAdapter<SoHashVbl>, /*FullKeyDomain=*/false},
    {"so-hash-vbl-vbr", &makeAdapter<SoHashVblVbr>, /*FullKeyDomain=*/false},
};

std::unique_ptr<ConcurrentSet> vbl::makeSet(const std::string &Name) {
  for (const RegistryEntry &Entry : Registry)
    if (Name == Entry.Name)
      return Entry.Factory(Name);
  return nullptr;
}

std::vector<std::string> vbl::registeredSetNames() {
  std::vector<std::string> Names;
  for (const RegistryEntry &Entry : Registry)
    if (Entry.FullKeyDomain)
      Names.push_back(Entry.Name);
  return Names;
}

std::vector<std::string> vbl::registeredHashSetNames() {
  std::vector<std::string> Names;
  for (const RegistryEntry &Entry : Registry)
    if (!Entry.FullKeyDomain)
      Names.push_back(Entry.Name);
  return Names;
}

std::vector<std::string> vbl::paperComparisonSetNames() {
  return {"vbl", "lazy", "harris-michael"};
}
