//===- lists/TombstoneBst.h - Decide-before-lock in a tree ---------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §5 conjectures that the value-aware, decide-before-lock
/// treatment extends to tree dictionaries (citing the authors'
/// concurrency-optimal BST). This class carries the *principle* to a
/// tree in its simplest airtight form: a partially-external BST whose
/// structure only ever grows.
///
///  - A key's membership is one atomic state word on its unique node
///    (DATA = present, ROUTING = tombstone).
///  - contains() is wait-free and lock-free: a traversal plus one state
///    load.
///  - insert()/remove() that do NOT change membership (key already
///    present / already absent) decide from the traversal alone and
///    take no lock — the VBL rule, in a tree.
///  - Mutations are one state flip or one child-pointer publication
///    under a single node lock, validated after acquisition.
///
/// The deliberate trade-off: removed keys leave ROUTING tombstones and
/// nodes are never unlinked (so there is nothing to reclaim and no
/// rebalancing). That makes every correctness argument monotone — a
/// key's search path only extends, a key's node is unique forever — at
/// the cost of memory proportional to the historical key universe.
/// Fine for bounded key ranges (this repo's workloads); a compacting
/// variant is the open research the paper points at.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_LISTS_TOMBSTONEBST_H
#define VBL_LISTS_TOMBSTONEBST_H

#include "core/SetConfig.h"
#include "support/Compiler.h"
#include "sync/SpinLocks.h"

#include <atomic>
#include <vector>

namespace vbl {

template <class LockT = TasLock> class TombstoneBst {
public:
  TombstoneBst() : Root(new Node(0, /*IsData=*/false)) {}

  ~TombstoneBst() { destroySubtree(Root); }

  TombstoneBst(const TombstoneBst &) = delete;
  TombstoneBst &operator=(const TombstoneBst &) = delete;

  bool insert(SetKey Key) {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    for (;;) {
      Node *Found = nullptr;
      Node *Parent = locate(Key, Found);
      if (Found) {
        // The key's node exists; membership is its state word.
        if (Found->IsData.load(std::memory_order_acquire))
          return false; // Present: decided without any lock.
        Found->NodeLock.lock();
        const bool Revived =
            !Found->IsData.load(std::memory_order_relaxed);
        if (Revived)
          Found->IsData.store(true, std::memory_order_release);
        Found->NodeLock.unlock();
        if (Revived)
          return true;
        continue; // Lost to a concurrent insert; key now present.
      }
      // No node yet: publish a new DATA leaf under the frontier node.
      std::atomic<Node *> &Slot =
          (Parent == Root || Key > Parent->Key) ? Parent->Right
                                                : Parent->Left;
      Parent->NodeLock.lock();
      if (Slot.load(std::memory_order_relaxed) != nullptr) {
        // The path grew underneath us; re-traverse (the new subtree
        // may or may not contain the key).
        Parent->NodeLock.unlock();
        continue;
      }
      Node *Leaf = new Node(Key, /*IsData=*/true);
      Slot.store(Leaf, std::memory_order_release);
      Parent->NodeLock.unlock();
      return true;
    }
  }

  bool remove(SetKey Key) {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    for (;;) {
      Node *Found = nullptr;
      locate(Key, Found);
      if (!Found || !Found->IsData.load(std::memory_order_acquire))
        return false; // Absent: decided without any lock.
      Found->NodeLock.lock();
      const bool Killed = Found->IsData.load(std::memory_order_relaxed);
      if (Killed)
        Found->IsData.store(false, std::memory_order_release);
      Found->NodeLock.unlock();
      if (Killed)
        return true;
      // Lost to a concurrent remove; key now absent: retry decides.
    }
  }

  /// Wait-free: the search path to a key only ever extends, so the
  /// traversal terminates at the key's unique node or a frontier.
  bool contains(SetKey Key) const {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    Node *Found = nullptr;
    const_cast<TombstoneBst *>(this)->locate(Key, Found);
    return Found && Found->IsData.load(std::memory_order_acquire);
  }

  /// Wait-free range scan: a pruned in-order walk over [Lo, Hi]
  /// reporting DATA nodes. The structure only grows and each key's node
  /// is unique forever, so every reported key's linearization point is
  /// its state-word read — the same argument as contains().
  size_t rangeQuery(SetKey Lo, SetKey Hi, std::vector<SetKey> &Out) const {
    VBL_ASSERT(isUserKey(Lo) && isUserKey(Hi),
               "sentinel keys are reserved");
    if (Lo > Hi)
      return 0;
    const size_t Entry = Out.size();
    inorderRange(Root->Right.load(std::memory_order_acquire), Lo, Hi, Out);
    return Out.size() - Entry;
  }

  std::vector<SetKey> snapshot() const {
    std::vector<SetKey> Keys;
    inorder(Root->Right.load(std::memory_order_acquire), Keys);
    return Keys;
  }

  bool checkInvariants() const {
    // In-order over DATA and ROUTING alike must be strictly sorted,
    // and no lock may remain held.
    std::vector<SetKey> All;
    if (!inorderAll(Root->Right.load(std::memory_order_acquire), All))
      return false;
    for (size_t I = 1; I < All.size(); ++I)
      if (All[I - 1] >= All[I])
        return false;
    return true;
  }

  size_t sizeSlow() const { return snapshot().size(); }

private:
  struct Node {
    Node(SetKey Key, bool IsDataIn) : Key(Key), IsData(IsDataIn) {}

    const SetKey Key;
    std::atomic<bool> IsData;
    std::atomic<Node *> Left{nullptr};
    std::atomic<Node *> Right{nullptr};
    LockT NodeLock;
  };

  /// Walks the search path of \p Key. If the key's node exists, sets
  /// \p Found; otherwise returns the frontier node whose (null) child
  /// slot the key would occupy.
  Node *locate(SetKey Key, Node *&Found) {
    Found = nullptr;
    Node *Curr = Root; // Pseudo-root: every user key lives to its right.
    for (;;) {
      if (Curr != Root && Key == Curr->Key) {
        Found = Curr;
        return Curr;
      }
      std::atomic<Node *> &Slot =
          (Curr == Root || Key > Curr->Key) ? Curr->Right : Curr->Left;
      Node *Child = Slot.load(std::memory_order_acquire);
      if (!Child)
        return Curr;
      Curr = Child;
    }
  }

  /// In-order restricted to [Lo, Hi]: subtrees wholly outside the
  /// window are pruned by the BST ordering.
  static void inorderRange(const Node *N, SetKey Lo, SetKey Hi,
                           std::vector<SetKey> &Out) {
    if (!N)
      return;
    if (N->Key > Lo)
      inorderRange(N->Left.load(std::memory_order_acquire), Lo, Hi, Out);
    if (N->Key >= Lo && N->Key <= Hi &&
        N->IsData.load(std::memory_order_acquire))
      Out.push_back(N->Key);
    if (N->Key < Hi)
      inorderRange(N->Right.load(std::memory_order_acquire), Lo, Hi, Out);
  }

  static void inorder(const Node *N, std::vector<SetKey> &Out) {
    if (!N)
      return;
    inorder(N->Left.load(std::memory_order_acquire), Out);
    if (N->IsData.load(std::memory_order_acquire))
      Out.push_back(N->Key);
    inorder(N->Right.load(std::memory_order_acquire), Out);
  }

  static bool inorderAll(const Node *N, std::vector<SetKey> &Out) {
    if (!N)
      return true;
    if (N->NodeLock.isLocked())
      return false;
    if (!inorderAll(N->Left.load(std::memory_order_acquire), Out))
      return false;
    Out.push_back(N->Key);
    return inorderAll(N->Right.load(std::memory_order_acquire), Out);
  }

  static void destroySubtree(Node *N) {
    if (!N)
      return;
    destroySubtree(N->Left.load(std::memory_order_relaxed));
    destroySubtree(N->Right.load(std::memory_order_relaxed));
    delete N;
  }

  Node *Root;
};

} // namespace vbl

#endif // VBL_LISTS_TOMBSTONEBST_H
