//===- lists/HarrisList.h - Harris's original non-blocking list ----------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Harris's original lock-free linked list (DISC 2001), kept alongside
/// the Michael variant because the paper cites both [5, 6]. The
/// difference is the cleanup granularity: Harris's search snips a whole
/// run of consecutively marked nodes with a single CAS on the last
/// unmarked predecessor, where Michael's find unlinks one node at a
/// time. Same mark-bit-in-pointer representation.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_LISTS_HARRISLIST_H
#define VBL_LISTS_HARRISLIST_H

#include "analysis/FlowView.h"
#include "core/SetConfig.h"
#include "reclaim/EpochDomain.h"
#include "reclaim/NodePool.h"
#include "support/Compiler.h"
#include "sync/Policy.h"

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

namespace vbl {

template <class ReclaimT = reclaim::EpochDomain,
          class PolicyT = DirectPolicy>
class HarrisList {
public:
  using Reclaim = ReclaimT;
  using Policy = PolicyT;

  HarrisList() {
    Tail = reclaim::poolCreate<Node, Policy>(MaxSentinel);
    Head = reclaim::poolCreate<Node, Policy>(MinSentinel);
    Head->Next.store(pack(Tail, false), std::memory_order_relaxed);
  }

  ~HarrisList() {
    Node *Curr = Head;
    while (Curr) {
      Node *Next = ptrOf(Curr->Next.load(std::memory_order_relaxed));
      reclaim::poolDestroy<Policy>(Curr);
      Curr = Next;
    }
  }

  HarrisList(const HarrisList &) = delete;
  HarrisList &operator=(const HarrisList &) = delete;

  bool insert(SetKey Key) {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    typename Reclaim::Guard G(Domain);
    Node *NewNode = nullptr;
    for (;;) {
      auto [Left, Right] = search(Key);
      if (Right->Val == Key) {
        reclaim::poolDestroy<Policy>(NewNode); // Never published.
        return false;
      }
      if (!NewNode) {
        NewNode = reclaim::poolCreate<Node, Policy>(Key);
        Policy::onNewNode(NewNode, Key);
      }
      NewNode->Next.store(pack(Right, false), std::memory_order_relaxed);
      uintptr_t Expected = pack(Right, false);
      if (Policy::casStrong(Left->Next, Expected, pack(NewNode, false),
                            std::memory_order_release, Left,
                            MemField::Next))
        return true;
      stats::bump(stats::Counter::ListCasFailures);
      Policy::onRestart();
    }
  }

  bool remove(SetKey Key) {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    typename Reclaim::Guard G(Domain);
    for (;;) {
      auto [Left, Right] = search(Key);
      if (Right->Val != Key)
        return false;
      const uintptr_t SuccWord =
          Policy::read(Right->Next, std::memory_order_acquire, Right,
                       MemField::Next);
      if (markOf(SuccWord)) {
        Policy::onRestart();
        continue;
      }
      uintptr_t Expected = SuccWord;
      // Logical deletion (linearization point).
      if (!Policy::casStrong(Right->Next, Expected,
                             SuccWord | uintptr_t(1),
                             std::memory_order_release, Right,
                             MemField::Next)) {
        stats::bump(stats::Counter::ListCasFailures);
        Policy::onRestart();
        continue;
      }
      // Try the cheap single-node unlink; otherwise let a future search
      // snip the marked run.
      Expected = pack(Right, false);
      if (Policy::casStrong(Left->Next, Expected,
                            pack(ptrOf(SuccWord), false),
                            std::memory_order_release, Left,
                            MemField::Next))
        reclaim::poolRetire<Policy>(Domain, Right);
      return true;
    }
  }

  bool contains(SetKey Key) const {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    typename Reclaim::Guard G(Domain);
    const Node *Curr = Head;
    SetKey Val = Policy::readValue(Curr->Val, Curr);
    uint64_t Hops = 0; // Accumulated locally; one stats call at the end.
    while (Val < Key) {
      Curr = ptrOf(Policy::read(Curr->Next, std::memory_order_acquire,
                                Curr, MemField::Next));
      // Pull the successor's line while this node's key is compared
      // (direct mode only; traced runs take no invisible shared reads).
      if constexpr (!Policy::Traced)
        VBL_PREFETCH(ptrOf(Curr->Next.load(std::memory_order_relaxed)));
      Val = Policy::readValue(Curr->Val, Curr);
      ++Hops;
    }
    stats::noteTraversal(Hops);
    if (Val != Key)
      return false;
    return !markOf(Policy::read(Curr->Next, std::memory_order_acquire,
                                Curr, MemField::Next));
  }

  /// Wait-free range scan: appends every unmarked key in [Lo, Hi] to
  /// \p Out in ascending order and returns how many were appended. A
  /// node observed unmarked at its visit is reported present; its
  /// linearization point is that next-word read.
  size_t rangeQuery(SetKey Lo, SetKey Hi, std::vector<SetKey> &Out) const {
    VBL_ASSERT(isUserKey(Lo) && isUserKey(Hi),
               "sentinel keys are reserved");
    if (Lo > Hi)
      return 0;
    typename Reclaim::Guard G(Domain);
    const size_t Entry = Out.size();
    const Node *Curr = ptrOf(Policy::read(
        Head->Next, std::memory_order_acquire, Head, MemField::Next));
    SetKey Val = Policy::readValue(Curr->Val, Curr);
    uint64_t Hops = 0; // Accumulated locally; one stats call at the end.
    while (Val <= Hi) {
      const uintptr_t Word = Policy::read(
          Curr->Next, std::memory_order_acquire, Curr, MemField::Next);
      if (Val >= Lo && !markOf(Word))
        Out.push_back(Val);
      Curr = ptrOf(Word);
      if constexpr (!Policy::Traced)
        VBL_PREFETCH(ptrOf(Curr->Next.load(std::memory_order_relaxed)));
      Val = Policy::readValue(Curr->Val, Curr);
      ++Hops;
    }
    stats::noteTraversal(Hops);
    return Out.size() - Entry;
  }

  std::vector<SetKey> snapshot() const {
    std::vector<SetKey> Keys;
    for (const Node *Curr =
             ptrOf(Head->Next.load(std::memory_order_acquire));
         Curr->Val != MaxSentinel;
         Curr = ptrOf(Curr->Next.load(std::memory_order_acquire)))
      if (!markOf(Curr->Next.load(std::memory_order_acquire)))
        Keys.push_back(Curr->Val);
    return Keys;
  }

  bool checkInvariants() const {
    const Node *Curr = Head;
    if (Curr->Val != MinSentinel)
      return false;
    while (true) {
      const uintptr_t Word = Curr->Next.load(std::memory_order_acquire);
      const Node *Next = ptrOf(Word);
      if (Curr->Val == MaxSentinel)
        return Next == nullptr && !markOf(Word);
      if (!Next || Next->Val <= Curr->Val)
        return false;
      Curr = Next;
    }
  }

  size_t sizeSlow() const { return snapshot().size(); }

  Reclaim &reclaimDomain() { return Domain; }

  /// Identity of the head sentinel (schedule exporters key off it).
  const void *headNode() const { return Head; }

  /// Quiescent-only: the (node, key) chain from head to tail inclusive
  /// (marked nodes included — they are physically present).
  std::vector<std::pair<const void *, SetKey>> nodeChain() const {
    std::vector<std::pair<const void *, SetKey>> Chain;
    for (const Node *Curr = Head; Curr;
         Curr = ptrOf(Curr->Next.load(std::memory_order_relaxed)))
      Chain.emplace_back(Curr, Curr->Val);
    return Chain;
  }

  /// Self-description for the flow-invariant oracle. As in the Michael
  /// variant the mark is bit 0 of the node's own next word, and marked
  /// runs may legally stay reachable until a later search snips them.
  analysis::FlowView flowView() {
    analysis::FlowView View;
    View.HasMark = true;
    View.MarkedMayLinger = true;
    View.Describe = [this] {
      std::vector<analysis::FlowNodeDesc> Chain;
      for (const Node *Curr = Head;
           Curr && Chain.size() < analysis::FlowWalkCap;) {
        const uintptr_t Word = Curr->Next.load(std::memory_order_relaxed);
        analysis::FlowNodeDesc D;
        D.Node = Curr;
        D.Key = Curr->Val;
        D.Marked = markOf(Word);
        Chain.push_back(std::move(D));
        Curr = ptrOf(Word);
      }
      return Chain;
    };
    return View;
  }

private:
  /// One node per cache line by default (NodeAlignBytes, SetConfig.h).
  struct alignas(NodeAlignBytes) Node {
    explicit Node(SetKey Val) : Val(Val) {}

    const SetKey Val;
    std::atomic<uintptr_t> Next{0};
  };

  static Node *ptrOf(uintptr_t Word) {
    return reinterpret_cast<Node *>(Word & ~uintptr_t(1));
  }
  static bool markOf(uintptr_t Word) { return Word & 1; }
  static uintptr_t pack(const Node *Ptr, bool Marked) {
    const auto Raw = reinterpret_cast<uintptr_t>(Ptr);
    VBL_ASSERT((Raw & 1) == 0, "node pointers must be 2-byte aligned");
    return Raw | static_cast<uintptr_t>(Marked);
  }

  /// Harris's search: returns adjacent unmarked (left, right) with
  /// left.val < Key <= right.val, snipping any marked run in between
  /// with one CAS. The snip winner retires the whole run.
  std::pair<Node *, Node *> search(SetKey Key) {
    uint64_t Hops = 0; // Accumulated across retries; one stats call.
    for (;;) {
      Node *Left = Head;
      uintptr_t LeftNextWord =
          Policy::read(Head->Next, std::memory_order_acquire, Head,
                       MemField::Next);
      Node *Right = nullptr;

      // Phase 1: locate left (last unmarked node with val < Key) and
      // right (first unmarked node with val >= Key).
      {
        Node *T = Head;
        uintptr_t TNextWord = LeftNextWord;
        do {
          if (!markOf(TNextWord)) {
            Left = T;
            LeftNextWord = TNextWord;
          }
          T = ptrOf(TNextWord);
          ++Hops;
          // Overlap the next hop's fetch with the sentinel/key checks.
          if constexpr (!Policy::Traced)
            VBL_PREFETCH(ptrOf(T->Next.load(std::memory_order_relaxed)));
          if (T->Val == MaxSentinel)
            break;
          TNextWord = Policy::read(T->Next, std::memory_order_acquire, T,
                                   MemField::Next);
        } while (markOf(TNextWord) ||
                 Policy::readValue(T->Val, T) < Key);
        Right = T;
      }

      // Phase 2: already adjacent?
      if (ptrOf(LeftNextWord) == Right) {
        if (rightBecameMarked(Right)) {
          Policy::onRestart();
          continue;
        }
        stats::noteTraversal(Hops);
        return {Left, Right};
      }

      // Phase 3: snip the marked run [left.next, right).
      uintptr_t Expected = LeftNextWord;
      if (Policy::casStrong(Left->Next, Expected, pack(Right, false),
                            std::memory_order_release, Left,
                            MemField::Next)) {
        // Winner retires the snipped run. See the adjacency argument in
        // tests/HarrisSnipTest: no other successful snip can contain
        // these nodes.
        for (Node *Dead = ptrOf(LeftNextWord); Dead != Right;) {
          Node *DeadNext = ptrOf(Dead->Next.load(std::memory_order_acquire));
          reclaim::poolRetire<Policy>(Domain, Dead);
          Dead = DeadNext;
        }
        if (rightBecameMarked(Right)) {
          Policy::onRestart();
          continue;
        }
        stats::noteTraversal(Hops);
        return {Left, Right};
      }
      stats::bump(stats::Counter::ListCasFailures);
      Policy::onRestart();
    }
  }

  bool rightBecameMarked(Node *Right) const {
    if (Right->Val == MaxSentinel)
      return false;
    return markOf(Policy::read(Right->Next, std::memory_order_acquire,
                               Right, MemField::Next));
  }

  Node *Head;
  Node *Tail;
  mutable Reclaim Domain;
};

} // namespace vbl

#endif // VBL_LISTS_HARRISLIST_H
