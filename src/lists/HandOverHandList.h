//===- lists/HandOverHandList.h - Lock-coupling list ----------------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fine-grained "hand-over-hand" locking (Herlihy & Shavit §9.5): a
/// traversal always holds the lock of the node it stands on, acquiring
/// the successor's lock before releasing the current one. Pipelined but
/// never truly parallel on the shared prefix, so it illustrates why
/// lock-coupling does not scale — the contrast that motivates the
/// optimistic/lazy/VBL family.
///
/// Because any thread positioned on a node holds that node's lock, a
/// remover holding (prev, curr) has exclusive access to curr: unlinked
/// nodes can be freed immediately, no reclamation domain needed.
///
/// `Next` is an atomic only so the access policy can mediate it (the
/// deterministic scheduler needs a yield point per shared access); all
/// accesses are lock-protected, so relaxed ordering suffices and
/// DirectPolicy compiles to the plain pointer the textbook version uses.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_LISTS_HANDOVERHANDLIST_H
#define VBL_LISTS_HANDOVERHANDLIST_H

#include "analysis/FlowView.h"
#include "core/SetConfig.h"
#include "support/ThreadSafety.h"
#include "sync/Policy.h"
#include "sync/SpinLocks.h"

#include <atomic>
#include <utility>
#include <vector>

namespace vbl {

/// PolicyT comes last so the historical HandOverHandList<Lock> spelling
/// keeps compiling.
template <class LockT = TasLock, class PolicyT = DirectPolicy>
class HandOverHandList {
public:
  using Policy = PolicyT;

  HandOverHandList() {
    Tail = new Node(MaxSentinel);
    Head = new Node(MinSentinel);
    Head->Next.store(Tail, std::memory_order_relaxed);
  }

  ~HandOverHandList() {
    Node *Curr = Head;
    while (Curr) {
      Node *Next = Curr->Next.load(std::memory_order_relaxed);
      delete Curr;
      Curr = Next;
    }
  }

  HandOverHandList(const HandOverHandList &) = delete;
  HandOverHandList &operator=(const HandOverHandList &) = delete;

  // Suppressed: releases the (prev, curr) locks lockedTraverse acquired
  // on its behalf — capabilities handed over through return values are
  // invisible to the analysis.
  bool insert(SetKey Key) VBL_NO_THREAD_SAFETY_ANALYSIS {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    auto [Prev, Curr] = lockedTraverse(Key);
    const bool Absent = Curr->Val != Key;
    if (Absent) {
      Node *NewNode = new Node(Key);
      Policy::onNewNode(NewNode, Key);
      NewNode->Next.store(Curr, std::memory_order_relaxed);
      Policy::write(Prev->Next, NewNode, std::memory_order_relaxed, Prev,
                    MemField::Next);
    }
    Policy::lockRelease(Curr->NodeLock, Curr);
    Policy::lockRelease(Prev->NodeLock, Prev);
    return Absent;
  }

  // Suppressed: see insert().
  bool remove(SetKey Key) VBL_NO_THREAD_SAFETY_ANALYSIS {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    auto [Prev, Curr] = lockedTraverse(Key);
    const bool Present = Curr->Val == Key;
    if (Present) {
      Policy::write(Prev->Next,
                    Policy::read(Curr->Next, std::memory_order_relaxed,
                                 Curr, MemField::Next),
                    std::memory_order_relaxed, Prev, MemField::Next);
      Policy::lockRelease(Curr->NodeLock, Curr);
      // Exclusive: nobody else can stand on Curr without its lock, and
      // Curr became unreachable a step ago — the free runs within the
      // lock-release step, before any between-step heap snapshot.
      delete Curr;
    } else {
      Policy::lockRelease(Curr->NodeLock, Curr);
    }
    Policy::lockRelease(Prev->NodeLock, Prev);
    return Present;
  }

  // Suppressed: see insert().
  bool contains(SetKey Key) const VBL_NO_THREAD_SAFETY_ANALYSIS {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    auto [Prev, Curr] =
        const_cast<HandOverHandList *>(this)->lockedTraverse(Key);
    const bool Present = Curr->Val == Key;
    Policy::lockRelease(Curr->NodeLock, Curr);
    Policy::lockRelease(Prev->NodeLock, Prev);
    return Present;
  }

  /// Lock-coupled range scan: walks the whole prefix up to Hi holding
  /// the coupling pair, collecting keys in [Lo, Hi]. Nodes are freed the
  /// instant they are unlinked, so the scan — like every traversal here
  /// — must never stand on a node it does not hold the lock of.
  //
  // Suppressed: see insert().
  size_t rangeQuery(SetKey Lo, SetKey Hi, std::vector<SetKey> &Out) const
      VBL_NO_THREAD_SAFETY_ANALYSIS {
    VBL_ASSERT(isUserKey(Lo) && isUserKey(Hi),
               "sentinel keys are reserved");
    if (Lo > Hi)
      return 0;
    auto *Self = const_cast<HandOverHandList *>(this);
    const size_t Entry = Out.size();
    Node *Prev = Self->Head;
    Policy::lockAcquire(Prev->NodeLock, Prev);
    Node *Curr = Policy::read(Prev->Next, std::memory_order_relaxed, Prev,
                              MemField::Next);
    Policy::lockAcquire(Curr->NodeLock, Curr);
    SetKey Val = Policy::readValue(Curr->Val, Curr);
    while (Val <= Hi) {
      if (Val >= Lo)
        Out.push_back(Val);
      Policy::lockRelease(Prev->NodeLock, Prev);
      Prev = Curr;
      Curr = Policy::read(Curr->Next, std::memory_order_relaxed, Curr,
                          MemField::Next);
      Policy::lockAcquire(Curr->NodeLock, Curr);
      Val = Policy::readValue(Curr->Val, Curr);
    }
    Policy::lockRelease(Curr->NodeLock, Curr);
    Policy::lockRelease(Prev->NodeLock, Prev);
    return Out.size() - Entry;
  }

  std::vector<SetKey> snapshot() const {
    std::vector<SetKey> Keys;
    for (const Node *Curr = Head->Next.load(std::memory_order_relaxed);
         Curr->Val != MaxSentinel;
         Curr = Curr->Next.load(std::memory_order_relaxed))
      Keys.push_back(Curr->Val);
    return Keys;
  }

  bool checkInvariants() const {
    const Node *Curr = Head;
    if (Curr->Val != MinSentinel)
      return false;
    while (true) {
      if (Curr->NodeLock.isLocked())
        return false;
      const Node *Next = Curr->Next.load(std::memory_order_relaxed);
      if (Curr->Val == MaxSentinel)
        return Next == nullptr;
      if (!Next || Next->Val <= Curr->Val)
        return false;
      Curr = Next;
    }
  }

  size_t sizeSlow() const { return snapshot().size(); }

  /// Identity of the head sentinel (schedule exporters key off it).
  const void *headNode() const { return Head; }

  /// Quiescent-only: the (node, key) chain from head to tail inclusive.
  std::vector<std::pair<const void *, SetKey>> nodeChain() const {
    std::vector<std::pair<const void *, SetKey>> Chain;
    for (const Node *Curr = Head; Curr;
         Curr = Curr->Next.load(std::memory_order_relaxed))
      Chain.emplace_back(Curr, Curr->Val);
    return Chain;
  }

  /// Self-description for the flow-invariant oracle. HasMark is false:
  /// removal unlinks a live node under both locks and frees it
  /// immediately, so the mark-related clauses do not apply and unlinked
  /// nodes must never be tracked (they are gone).
  analysis::FlowView flowView() {
    analysis::FlowView View;
    View.HasMark = false;
    View.Describe = [this] {
      std::vector<analysis::FlowNodeDesc> Chain;
      for (const Node *Curr = Head;
           Curr && Chain.size() < analysis::FlowWalkCap;
           Curr = Curr->Next.load(std::memory_order_relaxed)) {
        analysis::FlowNodeDesc D;
        D.Node = Curr;
        D.Key = Curr->Val;
        Chain.push_back(std::move(D));
      }
      return Chain;
    };
    return View;
  }

private:
  struct Node {
    explicit Node(SetKey Val) : Val(Val) {}

    const SetKey Val;
    /// Reads and writes happen only under NodeLock; atomic purely for
    /// policy mediation (see file comment).
    std::atomic<Node *> Next{nullptr};
    LockT NodeLock;
  };

  /// Returns (prev, curr) with both locks held and
  /// prev.val < Key <= curr.val.
  //
  // Suppressed: the coupling loop acquires and releases locks through a
  // moving pointer pair and exits holding the two locks named by its
  // *return value* — neither is expressible as a lexical capability.
  std::pair<Node *, Node *> lockedTraverse(SetKey Key)
      VBL_NO_THREAD_SAFETY_ANALYSIS {
    Node *Prev = Head;
    Policy::lockAcquire(Prev->NodeLock, Prev);
    Node *Curr = Policy::read(Prev->Next, std::memory_order_relaxed, Prev,
                              MemField::Next);
    Policy::lockAcquire(Curr->NodeLock, Curr);
    while (Policy::readValue(Curr->Val, Curr) < Key) {
      Policy::lockRelease(Prev->NodeLock, Prev);
      Prev = Curr;
      Curr = Policy::read(Curr->Next, std::memory_order_relaxed, Curr,
                          MemField::Next);
      Policy::lockAcquire(Curr->NodeLock, Curr);
    }
    return {Prev, Curr};
  }

  Node *Head;
  Node *Tail;
};

} // namespace vbl

#endif // VBL_LISTS_HANDOVERHANDLIST_H
