//===- lists/HandOverHandList.h - Lock-coupling list ----------------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fine-grained "hand-over-hand" locking (Herlihy & Shavit §9.5): a
/// traversal always holds the lock of the node it stands on, acquiring
/// the successor's lock before releasing the current one. Pipelined but
/// never truly parallel on the shared prefix, so it illustrates why
/// lock-coupling does not scale — the contrast that motivates the
/// optimistic/lazy/VBL family.
///
/// Because any thread positioned on a node holds that node's lock, a
/// remover holding (prev, curr) has exclusive access to curr: unlinked
/// nodes can be freed immediately, no reclamation domain needed.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_LISTS_HANDOVERHANDLIST_H
#define VBL_LISTS_HANDOVERHANDLIST_H

#include "core/SetConfig.h"
#include "support/ThreadSafety.h"
#include "sync/SpinLocks.h"

#include <vector>

namespace vbl {

template <class LockT = TasLock> class HandOverHandList {
public:
  HandOverHandList() {
    Tail = new Node(MaxSentinel);
    Head = new Node(MinSentinel);
    Head->Next = Tail;
  }

  ~HandOverHandList() {
    Node *Curr = Head;
    while (Curr) {
      Node *Next = Curr->Next;
      delete Curr;
      Curr = Next;
    }
  }

  HandOverHandList(const HandOverHandList &) = delete;
  HandOverHandList &operator=(const HandOverHandList &) = delete;

  // Suppressed: releases the (prev, curr) locks lockedTraverse acquired
  // on its behalf — capabilities handed over through return values are
  // invisible to the analysis.
  bool insert(SetKey Key) VBL_NO_THREAD_SAFETY_ANALYSIS {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    auto [Prev, Curr] = lockedTraverse(Key);
    const bool Absent = Curr->Val != Key;
    if (Absent) {
      Node *NewNode = new Node(Key);
      NewNode->Next = Curr;
      Prev->Next = NewNode;
    }
    Curr->NodeLock.unlock();
    Prev->NodeLock.unlock();
    return Absent;
  }

  // Suppressed: see insert().
  bool remove(SetKey Key) VBL_NO_THREAD_SAFETY_ANALYSIS {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    auto [Prev, Curr] = lockedTraverse(Key);
    const bool Present = Curr->Val == Key;
    if (Present) {
      Prev->Next = Curr->Next;
      Curr->NodeLock.unlock();
      // Exclusive: nobody else can stand on Curr without its lock.
      delete Curr;
    } else {
      Curr->NodeLock.unlock();
    }
    Prev->NodeLock.unlock();
    return Present;
  }

  // Suppressed: see insert().
  bool contains(SetKey Key) const VBL_NO_THREAD_SAFETY_ANALYSIS {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    auto [Prev, Curr] =
        const_cast<HandOverHandList *>(this)->lockedTraverse(Key);
    const bool Present = Curr->Val == Key;
    Curr->NodeLock.unlock();
    Prev->NodeLock.unlock();
    return Present;
  }

  std::vector<SetKey> snapshot() const {
    std::vector<SetKey> Keys;
    for (const Node *Curr = Head->Next; Curr->Val != MaxSentinel;
         Curr = Curr->Next)
      Keys.push_back(Curr->Val);
    return Keys;
  }

  bool checkInvariants() const {
    const Node *Curr = Head;
    if (Curr->Val != MinSentinel)
      return false;
    while (true) {
      if (Curr->NodeLock.isLocked())
        return false;
      const Node *Next = Curr->Next;
      if (Curr->Val == MaxSentinel)
        return Next == nullptr;
      if (!Next || Next->Val <= Curr->Val)
        return false;
      Curr = Next;
    }
  }

  size_t sizeSlow() const { return snapshot().size(); }

private:
  struct Node {
    explicit Node(SetKey Val) : Val(Val) {}

    const SetKey Val;
    /// Plain pointer: reads and writes happen only under NodeLock.
    Node *Next = nullptr;
    LockT NodeLock;
  };

  /// Returns (prev, curr) with both locks held and
  /// prev.val < Key <= curr.val.
  //
  // Suppressed: the coupling loop acquires and releases locks through a
  // moving pointer pair and exits holding the two locks named by its
  // *return value* — neither is expressible as a lexical capability.
  std::pair<Node *, Node *> lockedTraverse(SetKey Key)
      VBL_NO_THREAD_SAFETY_ANALYSIS {
    Node *Prev = Head;
    Prev->NodeLock.lock();
    Node *Curr = Prev->Next;
    Curr->NodeLock.lock();
    while (Curr->Val < Key) {
      Prev->NodeLock.unlock();
      Prev = Curr;
      Curr = Curr->Next;
      Curr->NodeLock.lock();
    }
    return {Prev, Curr};
  }

  Node *Head;
  Node *Tail;
};

} // namespace vbl

#endif // VBL_LISTS_HANDOVERHANDLIST_H
