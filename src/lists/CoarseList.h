//===- lists/CoarseList.h - Coarse-grained locked list -------------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simplest correct concurrent list-based set: one global mutex
/// around the sequential algorithm. It accepts almost *no* concurrent
/// schedules (every pair of operations conflicts on the lock), making it
/// the floor of the concurrency spectrum the paper's Section 2 measures,
/// and the sanity baseline in the throughput benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_LISTS_COARSELIST_H
#define VBL_LISTS_COARSELIST_H

#include "core/SetConfig.h"
#include "lists/SequentialList.h"

#include <mutex>

namespace vbl {

class CoarseList {
public:
  bool insert(SetKey Key) {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Inner.insert(Key);
  }

  bool remove(SetKey Key) {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Inner.remove(Key);
  }

  bool contains(SetKey Key) const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Inner.contains(Key);
  }

  size_t rangeQuery(SetKey Lo, SetKey Hi, std::vector<SetKey> &Out) const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Inner.rangeQuery(Lo, Hi, Out);
  }

  std::vector<SetKey> snapshot() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Inner.snapshot();
  }

  bool checkInvariants() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Inner.checkInvariants();
  }

  size_t sizeSlow() const { return snapshot().size(); }

private:
  mutable std::mutex Mutex;
  SequentialList<> Inner;
};

} // namespace vbl

#endif // VBL_LISTS_COARSELIST_H
