//===- lists/LazyList.h - The Lazy Linked List (Heller et al.) -----------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Lazy Linked List (Heller et al., OPODIS 2006; Herlihy & Shavit
/// §9.7) — the paper's primary comparator. Updates traverse wait-free,
/// then lock the (prev, curr) window and validate *under* the locks that
/// neither node is marked and prev still points at curr; removal marks
/// before unlinking so contains() can stay wait-free.
///
/// The paper's §2.3 suboptimality argument lives in the code shape: the
/// presence check of insert/remove happens *after* the locks are taken,
/// so an update that will not modify the list still contends on
/// metadata. Fig. 2's schedule — insert(1) completing while insert(2)
/// holds X1's lock — is therefore rejected (insert(1) blocks), which the
/// schedule tests demonstrate via the traced policy.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_LISTS_LAZYLIST_H
#define VBL_LISTS_LAZYLIST_H

#include "analysis/FlowView.h"
#include "core/SetConfig.h"
#include "reclaim/EpochDomain.h"
#include "reclaim/NodePool.h"
#include "support/Compiler.h"
#include "sync/Policy.h"
#include "sync/SpinLocks.h"

#include <atomic>
#include <tuple>
#include <vector>

namespace vbl {

template <class ReclaimT = reclaim::EpochDomain,
          class PolicyT = DirectPolicy, class LockT = TasLock>
class LazyList {
public:
  using Reclaim = ReclaimT;
  using Policy = PolicyT;

  LazyList() {
    Tail = reclaim::poolCreate<Node, Policy>(MaxSentinel);
    Head = reclaim::poolCreate<Node, Policy>(MinSentinel);
    Head->Next.store(Tail, std::memory_order_relaxed);
  }

  ~LazyList() {
    Node *Curr = Head;
    while (Curr) {
      Node *Next = Curr->Next.load(std::memory_order_relaxed);
      reclaim::poolDestroy<Policy>(Curr);
      Curr = Next;
    }
  }

  LazyList(const LazyList &) = delete;
  LazyList &operator=(const LazyList &) = delete;

  bool insert(SetKey Key) {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    typename Reclaim::Guard G(Domain);
    for (;;) {
      auto [Prev, Curr, Val] = traverse(Key);
      // Locks are taken BEFORE the presence check: this is the
      // suboptimality of §2.3 — a failing insert still serializes on
      // the window locks.
      Policy::lockAcquire(Prev->NodeLock, Prev);
      Policy::lockAcquire(Curr->NodeLock, Curr);
      if (!validate(Prev, Curr)) {
        Policy::lockRelease(Curr->NodeLock, Curr);
        Policy::lockRelease(Prev->NodeLock, Prev);
        Policy::onRestart();
        continue;
      }
      const bool Absent = Val != Key;
      if (Absent) {
        Node *NewNode = reclaim::poolCreate<Node, Policy>(Key);
        Policy::onNewNode(NewNode, Key);
        NewNode->Next.store(Curr, std::memory_order_relaxed);
        Policy::write(Prev->Next, NewNode, std::memory_order_release, Prev,
                      MemField::Next);
      }
      Policy::lockRelease(Curr->NodeLock, Curr);
      Policy::lockRelease(Prev->NodeLock, Prev);
      return Absent;
    }
  }

  bool remove(SetKey Key) {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    typename Reclaim::Guard G(Domain);
    for (;;) {
      auto [Prev, Curr, Val] = traverse(Key);
      Policy::lockAcquire(Prev->NodeLock, Prev);
      Policy::lockAcquire(Curr->NodeLock, Curr);
      if (!validate(Prev, Curr)) {
        Policy::lockRelease(Curr->NodeLock, Curr);
        Policy::lockRelease(Prev->NodeLock, Prev);
        Policy::onRestart();
        continue;
      }
      const bool Present = Val == Key;
      if (Present) {
        // Logical deletion first so wait-free contains() never reports
        // a key whose removal already linearized.
        Policy::write(Curr->Marked, true, std::memory_order_release, Curr,
                      MemField::Marked);
        Policy::write(Prev->Next,
                      Policy::read(Curr->Next, std::memory_order_acquire,
                                   Curr, MemField::Next),
                      std::memory_order_release, Prev, MemField::Next);
      }
      Policy::lockRelease(Curr->NodeLock, Curr);
      Policy::lockRelease(Prev->NodeLock, Prev);
      if (Present)
        reclaim::poolRetire<Policy>(Domain, Curr);
      return Present;
    }
  }

  /// Wait-free contains: traverse by value, then consult the mark.
  bool contains(SetKey Key) const {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    typename Reclaim::Guard G(Domain);
    const Node *Curr = Head;
    SetKey Val = Policy::readValue(Curr->Val, Curr);
    uint64_t Hops = 0; // Accumulated locally; one stats call at the end.
    while (Val < Key) {
      Curr = Policy::read(Curr->Next, std::memory_order_acquire, Curr,
                          MemField::Next);
      // Pull the successor's line while this node's key is compared
      // (direct mode only; traced runs take no invisible shared reads).
      if constexpr (!Policy::Traced)
        VBL_PREFETCH(Curr->Next.load(std::memory_order_relaxed));
      Val = Policy::readValue(Curr->Val, Curr);
      ++Hops;
    }
    stats::noteTraversal(Hops);
    return Val == Key && !Policy::read(Curr->Marked,
                                       std::memory_order_acquire, Curr,
                                       MemField::Marked);
  }

  std::vector<SetKey> snapshot() const {
    std::vector<SetKey> Keys;
    for (const Node *Curr = Head->Next.load(std::memory_order_acquire);
         Curr->Val != MaxSentinel;
         Curr = Curr->Next.load(std::memory_order_acquire))
      Keys.push_back(Curr->Val);
    return Keys;
  }

  bool checkInvariants() const {
    const Node *Curr = Head;
    if (Curr->Val != MinSentinel)
      return false;
    while (true) {
      if (Curr->Marked.load(std::memory_order_acquire))
        return false;
      if (Curr->NodeLock.isLocked())
        return false;
      const Node *Next = Curr->Next.load(std::memory_order_acquire);
      if (Curr->Val == MaxSentinel)
        return Next == nullptr;
      if (!Next || Next->Val <= Curr->Val)
        return false;
      Curr = Next;
    }
  }

  size_t sizeSlow() const { return snapshot().size(); }

  Reclaim &reclaimDomain() { return Domain; }

  /// Identity of the head sentinel (schedule exporters key off it).
  const void *headNode() const { return Head; }

  /// Quiescent-only: the (node, key) chain from head to tail inclusive.
  std::vector<std::pair<const void *, SetKey>> nodeChain() const {
    std::vector<std::pair<const void *, SetKey>> Chain;
    for (const Node *Curr = Head; Curr;
         Curr = Curr->Next.load(std::memory_order_relaxed))
      Chain.emplace_back(Curr, Curr->Val);
    return Chain;
  }

  /// Self-description for the flow-invariant oracle; scheduler-
  /// invisible relaxed loads, tolerant of mid-operation states.
  analysis::FlowView flowView() {
    analysis::FlowView View;
    View.HasMark = true;          // Marked flag.
    View.MarkedMayLinger = false; // remove() unlinks under its locks.
    View.Describe = [this] {
      std::vector<analysis::FlowNodeDesc> Chain;
      for (const Node *Curr = Head;
           Curr && Chain.size() < analysis::FlowWalkCap;
           Curr = Curr->Next.load(std::memory_order_relaxed)) {
        analysis::FlowNodeDesc D;
        D.Node = Curr;
        D.Key = Curr->Val;
        D.Marked = Curr->Marked.load(std::memory_order_relaxed);
        Chain.push_back(std::move(D));
      }
      return Chain;
    };
    return View;
  }

private:
  /// One node per cache line by default (NodeAlignBytes, SetConfig.h):
  /// a locked/marked node does not invalidate its neighbours' lines.
  struct alignas(NodeAlignBytes) Node {
    explicit Node(SetKey Val) : Val(Val) {}

    const SetKey Val;
    std::atomic<Node *> Next{nullptr};
    std::atomic<bool> Marked{false};
    LockT NodeLock;
  };

  /// Wait-free traversal from the head (the Lazy list has no
  /// restart-from-prev optimisation). Returns curr's value as well:
  /// values are immutable, so the presence decision made under the
  /// locks can reuse the traversal's read.
  std::tuple<Node *, Node *, SetKey> traverse(SetKey Key) const {
    Node *Prev = Head;
    Node *Curr = Policy::read(Prev->Next, std::memory_order_acquire, Prev,
                              MemField::Next);
    SetKey Val = Policy::readValue(Curr->Val, Curr);
    uint64_t Hops = 0; // Accumulated locally; one stats call at the end.
    while (Val < Key) {
      Prev = Curr;
      Curr = Policy::read(Curr->Next, std::memory_order_acquire, Curr,
                          MemField::Next);
      // See contains(): overlap the successor fetch with the compare.
      if constexpr (!Policy::Traced)
        VBL_PREFETCH(Curr->Next.load(std::memory_order_relaxed));
      Val = Policy::readValue(Curr->Val, Curr);
      ++Hops;
    }
    stats::noteTraversal(Hops);
    return {Prev, Curr, Val};
  }

  /// Heller et al. validation, under both locks: the window is live and
  /// adjacent. A failure here is the §2.3 rejected schedule the
  /// validation-abort counter measures.
  bool validate(Node *Prev, Node *Curr) const {
    const bool Ok =
        !Policy::readCheck(Prev->Marked, std::memory_order_acquire, Prev,
                           MemField::Marked) &&
        !Policy::readCheck(Curr->Marked, std::memory_order_acquire, Curr,
                           MemField::Marked) &&
        Policy::readCheck(Prev->Next, std::memory_order_acquire, Prev,
                          MemField::Next) == Curr;
    if (!Ok)
      stats::bump(stats::Counter::ListValidationAborts);
    return Ok;
  }

  Node *Head;
  Node *Tail;
  mutable Reclaim Domain;
};

} // namespace vbl

#endif // VBL_LISTS_LAZYLIST_H
