//===- lists/LazyList.h - The Lazy Linked List (Heller et al.) -----------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Lazy Linked List (Heller et al., OPODIS 2006; Herlihy & Shavit
/// §9.7) — the paper's primary comparator. Updates traverse wait-free,
/// then lock the (prev, curr) window and validate *under* the locks that
/// neither node is marked and prev still points at curr; removal marks
/// before unlinking so contains() can stay wait-free.
///
/// The paper's §2.3 suboptimality argument lives in the code shape: the
/// presence check of insert/remove happens *after* the locks are taken,
/// so an update that will not modify the list still contends on
/// metadata. Fig. 2's schedule — insert(1) completing while insert(2)
/// holds X1's lock — is therefore rejected (insert(1) blocks), which the
/// schedule tests demonstrate via the traced policy.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_LISTS_LAZYLIST_H
#define VBL_LISTS_LAZYLIST_H

#include "analysis/FlowView.h"
#include "core/SetConfig.h"
#include "reclaim/EpochDomain.h"
#include "reclaim/NodePool.h"
#include "reclaim/VbrDomain.h"
#include "support/Compiler.h"
#include "sync/Policy.h"
#include "sync/SpinLocks.h"

#include <atomic>
#include <new>
#include <tuple>
#include <type_traits>
#include <vector>

namespace vbl {

template <class ReclaimT = reclaim::EpochDomain,
          class PolicyT = DirectPolicy, class LockT = TasLock>
class LazyList {
  /// Version-based reclamation: nodes are revived in place, keys become
  /// atomic, every traversal hop re-validates the node's birth epoch,
  /// and the second window lock degrades to a try-lock (a recycled curr
  /// can reappear *before* prev in the list, so blocking on it in
  /// traversal order could deadlock).
  static constexpr bool Versioned = reclaim::IsVersionedDomain<ReclaimT>;

public:
  using Reclaim = ReclaimT;
  using Policy = PolicyT;

  LazyList() {
    if constexpr (Versioned) {
      // Sentinels carry epoch headers too (traversals birth-check every
      // node); a fresh domain's free lists are empty so both are first
      // incarnations with birth 0.
      Tail = makeNode(MaxSentinel);
      Head = makeNode(MinSentinel);
    } else {
      Tail = reclaim::poolCreate<Node, Policy>(MaxSentinel);
      Head = reclaim::poolCreate<Node, Policy>(MinSentinel);
    }
    Head->Next.store(Tail, std::memory_order_relaxed);
  }

  ~LazyList() {
    Node *Curr = Head;
    while (Curr) {
      Node *Next = Curr->Next.load(std::memory_order_relaxed);
      reclaim::domainDispose<Policy>(Domain, Curr);
      Curr = Next;
    }
  }

  LazyList(const LazyList &) = delete;
  LazyList &operator=(const LazyList &) = delete;

  bool insert(SetKey Key) {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    typename Reclaim::Guard G(Domain);
    for (;;) {
      auto [Prev, Curr, Val] = traverse(Key, G);
      // Locks are taken BEFORE the presence check: this is the
      // suboptimality of §2.3 — a failing insert still serializes on
      // the window locks.
      Policy::lockAcquire(Prev->NodeLock, Prev);
      if (!lockCurr(Curr)) {
        Policy::lockRelease(Prev->NodeLock, Prev);
        Policy::onRestart();
        continue;
      }
      if (!validate(Prev, Curr, G)) {
        Policy::lockRelease(Curr->NodeLock, Curr);
        Policy::lockRelease(Prev->NodeLock, Prev);
        Policy::onRestart();
        continue;
      }
      const bool Absent = Val != Key;
      if (Absent) {
        Node *NewNode = makeNode(Key);
        if constexpr (Versioned)
          // A straggling reader of the revived block pairs its acquire
          // with this release (see makeNode).
          Policy::write(NewNode->Next, Curr, std::memory_order_release,
                        NewNode, MemField::Next);
        else
          NewNode->Next.store(Curr, std::memory_order_relaxed);
        Policy::write(Prev->Next, NewNode, std::memory_order_release, Prev,
                      MemField::Next);
      }
      Policy::lockRelease(Curr->NodeLock, Curr);
      Policy::lockRelease(Prev->NodeLock, Prev);
      return Absent;
    }
  }

  bool remove(SetKey Key) {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    typename Reclaim::Guard G(Domain);
    for (;;) {
      auto [Prev, Curr, Val] = traverse(Key, G);
      Policy::lockAcquire(Prev->NodeLock, Prev);
      if (!lockCurr(Curr)) {
        Policy::lockRelease(Prev->NodeLock, Prev);
        Policy::onRestart();
        continue;
      }
      if (!validate(Prev, Curr, G)) {
        Policy::lockRelease(Curr->NodeLock, Curr);
        Policy::lockRelease(Prev->NodeLock, Prev);
        Policy::onRestart();
        continue;
      }
      const bool Present = Val == Key;
      if (Present) {
        // Logical deletion first so wait-free contains() never reports
        // a key whose removal already linearized.
        Policy::write(Curr->Marked, true, std::memory_order_release, Curr,
                      MemField::Marked);
        Policy::write(Prev->Next,
                      Policy::read(Curr->Next, std::memory_order_acquire,
                                   Curr, MemField::Next),
                      std::memory_order_release, Prev, MemField::Next);
      }
      Policy::lockRelease(Curr->NodeLock, Curr);
      Policy::lockRelease(Prev->NodeLock, Prev);
      if (Present)
        reclaim::domainRetire<Policy>(Domain, Curr);
      return Present;
    }
  }

  /// Wait-free contains: traverse by value, then consult the mark.
  /// Under VBR the walk is birth-checked per hop and restarts from the
  /// head on a reject (lock-free, not wait-free; rejects only happen
  /// when another thread completed a reuse).
  bool contains(SetKey Key) const {
    VBL_ASSERT(isUserKey(Key), "sentinel keys are reserved");
    typename Reclaim::Guard G(Domain);
    if constexpr (Versioned) {
      for (;;) {
        const Node *Curr = Policy::read(Head->Next,
                                        std::memory_order_acquire, Head,
                                        MemField::Next);
        uint64_t Hops = 0;
        for (;;) {
          const SetKey Val = readVal(Curr);
          const Node *Succ = Policy::read(Curr->Next,
                                          std::memory_order_acquire, Curr,
                                          MemField::Next);
          if (!Domain.validAt(Curr, G.version()))
            break; // Recycled under us: restart.
          if (Val >= Key) {
            const bool Marked = Policy::read(Curr->Marked,
                                             std::memory_order_acquire,
                                             Curr, MemField::Marked);
            // Certify the mark read too: it happened after the check
            // above and the block may have been recycled in between.
            if (!Domain.validAt(Curr, G.version()))
              break;
            stats::noteTraversal(Hops);
            return Val == Key && !Marked;
          }
          Curr = Succ;
          ++Hops;
        }
        stats::noteTraversal(Hops);
        G.refresh();
        Policy::onRestart();
      }
    } else {
      const Node *Curr = Head;
      SetKey Val = Policy::readValue(Curr->Val, Curr);
      uint64_t Hops = 0; // Accumulated locally; one stats call at the end.
      while (Val < Key) {
        Curr = Policy::read(Curr->Next, std::memory_order_acquire, Curr,
                            MemField::Next);
        // Pull the successor's line while this node's key is compared
        // (direct mode only; traced runs take no invisible shared reads).
        if constexpr (!Policy::Traced)
          VBL_PREFETCH(Curr->Next.load(std::memory_order_relaxed));
        Val = Policy::readValue(Curr->Val, Curr);
        ++Hops;
      }
      stats::noteTraversal(Hops);
      return Val == Key && !Policy::read(Curr->Marked,
                                         std::memory_order_acquire, Curr,
                                         MemField::Marked);
    }
  }

  /// Wait-free range scan: the contains() walk extended across
  /// [\p Lo, \p Hi], consulting each in-range node's mark exactly as
  /// contains does — a key is collected iff a contains(key) linearized
  /// at that hop would return true, so the scan is per-key linearizable
  /// over its interval. Under VBR a birth reject discards the attempt
  /// and restarts the collect from the head.
  size_t rangeQuery(SetKey Lo, SetKey Hi, std::vector<SetKey> &Out) {
    VBL_ASSERT(isUserKey(Lo) && isUserKey(Hi),
               "sentinel keys are reserved");
    if (Lo > Hi)
      return 0;
    typename Reclaim::Guard G(Domain);
    const size_t Entry = Out.size();
    if constexpr (Versioned) {
      for (;;) {
        Out.resize(Entry); // Discard any partial attempt.
        const Node *Curr = Policy::read(Head->Next,
                                        std::memory_order_acquire, Head,
                                        MemField::Next);
        uint64_t Hops = 0;
        bool Restart = false;
        for (;;) {
          const SetKey Val = readVal(Curr);
          const Node *Succ = Policy::read(Curr->Next,
                                          std::memory_order_acquire, Curr,
                                          MemField::Next);
          if (!Domain.validAt(Curr, G.version())) {
            Restart = true; // Recycled under us: redo the collect.
            break;
          }
          if (Val > Hi)
            break;
          if (Val >= Lo) {
            const bool Marked = Policy::read(Curr->Marked,
                                             std::memory_order_acquire,
                                             Curr, MemField::Marked);
            // Certify the mark read too (see contains()).
            if (!Domain.validAt(Curr, G.version())) {
              Restart = true;
              break;
            }
            if (!Marked)
              Out.push_back(Val);
          }
          Curr = Succ;
          ++Hops;
        }
        stats::noteTraversal(Hops);
        if (!Restart)
          return Out.size() - Entry;
        G.refresh();
        Policy::onRestart();
      }
    } else {
      const Node *Curr = Head;
      SetKey Val = Policy::readValue(Curr->Val, Curr);
      uint64_t Hops = 0;
      while (Val <= Hi) {
        if (Val >= Lo &&
            !Policy::read(Curr->Marked, std::memory_order_acquire, Curr,
                          MemField::Marked))
          Out.push_back(Val);
        Curr = Policy::read(Curr->Next, std::memory_order_acquire, Curr,
                            MemField::Next);
        if constexpr (!Policy::Traced)
          VBL_PREFETCH(Curr->Next.load(std::memory_order_relaxed));
        Val = Policy::readValue(Curr->Val, Curr);
        ++Hops;
      }
      stats::noteTraversal(Hops);
      return Out.size() - Entry;
    }
  }

  std::vector<SetKey> snapshot() const {
    std::vector<SetKey> Keys;
    for (const Node *Curr = Head->Next.load(std::memory_order_acquire);
         rawVal(Curr) != MaxSentinel;
         Curr = Curr->Next.load(std::memory_order_acquire))
      Keys.push_back(rawVal(Curr));
    return Keys;
  }

  bool checkInvariants() const {
    const Node *Curr = Head;
    if (rawVal(Curr) != MinSentinel)
      return false;
    while (true) {
      if (Curr->Marked.load(std::memory_order_acquire))
        return false;
      if (Curr->NodeLock.isLocked())
        return false;
      const Node *Next = Curr->Next.load(std::memory_order_acquire);
      if (rawVal(Curr) == MaxSentinel)
        return Next == nullptr;
      if (!Next || rawVal(Next) <= rawVal(Curr))
        return false;
      Curr = Next;
    }
  }

  size_t sizeSlow() const { return snapshot().size(); }

  Reclaim &reclaimDomain() { return Domain; }

  /// Identity of the head sentinel (schedule exporters key off it).
  const void *headNode() const { return Head; }

  /// Quiescent-only: the (node, key) chain from head to tail inclusive.
  std::vector<std::pair<const void *, SetKey>> nodeChain() const {
    std::vector<std::pair<const void *, SetKey>> Chain;
    for (const Node *Curr = Head; Curr;
         Curr = Curr->Next.load(std::memory_order_relaxed))
      Chain.emplace_back(Curr, rawVal(Curr));
    return Chain;
  }

  /// Self-description for the flow-invariant oracle; scheduler-
  /// invisible relaxed loads, tolerant of mid-operation states.
  analysis::FlowView flowView() {
    analysis::FlowView View;
    View.HasMark = true;          // Marked flag.
    View.MarkedMayLinger = false; // remove() unlinks under its locks.
    View.Describe = [this] {
      std::vector<analysis::FlowNodeDesc> Chain;
      for (const Node *Curr = Head;
           Curr && Chain.size() < analysis::FlowWalkCap;
           Curr = Curr->Next.load(std::memory_order_relaxed)) {
        analysis::FlowNodeDesc D;
        D.Node = Curr;
        D.Key = rawVal(Curr);
        D.Marked = Curr->Marked.load(std::memory_order_relaxed);
        Chain.push_back(std::move(D));
      }
      return Chain;
    };
    return View;
  }

private:
  /// One node per cache line by default (NodeAlignBytes, SetConfig.h):
  /// a locked/marked node does not invalidate its neighbours' lines.
  struct alignas(NodeAlignBytes) Node {
    explicit Node(SetKey Val) : Val(Val) {}

    /// Immutable per incarnation; atomic under VBR where a revival
    /// overwrites it beneath stale readers.
    std::conditional_t<Versioned, std::atomic<SetKey>, const SetKey> Val;
    std::atomic<Node *> Next{nullptr};
    std::atomic<bool> Marked{false};
    LockT NodeLock;
  };

  /// Traversal/validation read of a node's key (see VblList::readVal).
  static SetKey readVal(const Node *N) {
    if constexpr (Versioned)
      return Policy::read(N->Val, std::memory_order_acquire, N,
                          MemField::Val);
    else
      return Policy::readValue(N->Val, N);
  }

  /// Scheduler-invisible key read for quiescent walks.
  static SetKey rawVal(const Node *N) {
    if constexpr (Versioned)
      return N->Val.load(std::memory_order_relaxed);
    else
      return N->Val;
  }

  /// Node allocation; under VBR a recycled block is revived in place by
  /// release stores over the still-alive previous incarnation (no
  /// constructor — its plain writes would race stale readers), ordered
  /// after the domain's birth stamp. Locks are never revived: retire
  /// paths release them first.
  Node *makeNode(SetKey Key) {
    if constexpr (Versioned) {
      bool Fresh = false;
      void *Mem = Domain.template allocBlockFor<Node>(Fresh);
      if (Fresh) {
        Node *N = ::new (Mem) Node(Key);
        Policy::onNewNode(N, Key);
        return N;
      }
      Node *N = std::launder(static_cast<Node *>(Mem));
      Policy::write(N->Val, Key, std::memory_order_release, N,
                    MemField::Val);
      Policy::write(N->Marked, false, std::memory_order_release, N,
                    MemField::Marked);
      return N;
    } else {
      Node *N = reclaim::poolCreate<Node, Policy>(Key);
      Policy::onNewNode(N, Key);
      return N;
    }
  }

  /// Second window lock. Blocking in traversal order is deadlock-free
  /// only while nodes cannot move; under VBR a recycled curr may sit
  /// before prev, so curr is try-locked and a miss restarts.
  bool lockCurr(Node *Curr) VBL_TRY_ACQUIRE(true, Curr->NodeLock) {
    if constexpr (Versioned) {
      const bool Ok = Policy::lockTryAcquire(Curr->NodeLock, Curr);
      if (!Ok)
        stats::bump(stats::Counter::ListTrylockFailures);
      return Ok;
    } else {
      Policy::lockAcquire(Curr->NodeLock, Curr);
      return true;
    }
  }

  /// Wait-free traversal from the head (the Lazy list has no
  /// restart-from-prev optimisation). Returns curr's value as well:
  /// values are immutable, so the presence decision made under the
  /// locks can reuse the traversal's read.
  ///
  /// VBR mode: each hop reads curr's key and next, then certifies
  /// curr's birth epoch against the guard's version; a reject refreshes
  /// the version and re-walks from the head (see VblList::traverse for
  /// the safety argument).
  std::tuple<Node *, Node *, SetKey>
  traverse(SetKey Key, typename Reclaim::Guard &G) const {
    if constexpr (Versioned) {
      for (;;) {
        Node *Prev = Head;
        Node *Curr = Policy::read(Prev->Next, std::memory_order_acquire,
                                  Prev, MemField::Next);
        uint64_t Hops = 0;
        for (;;) {
          const SetKey Val = readVal(Curr);
          Node *Succ = Policy::read(Curr->Next, std::memory_order_acquire,
                                    Curr, MemField::Next);
          if (!Domain.validAt(Curr, G.version()))
            break; // Recycled under us: restart from the head.
          if (Val >= Key) {
            stats::noteTraversal(Hops);
            return {Prev, Curr, Val};
          }
          Prev = Curr;
          Curr = Succ;
          ++Hops;
        }
        stats::noteTraversal(Hops);
        G.refresh();
        Policy::onRestart();
      }
    } else {
      Node *Prev = Head;
      Node *Curr = Policy::read(Prev->Next, std::memory_order_acquire, Prev,
                                MemField::Next);
      SetKey Val = Policy::readValue(Curr->Val, Curr);
      uint64_t Hops = 0; // Accumulated locally; one stats call at the end.
      while (Val < Key) {
        Prev = Curr;
        Curr = Policy::read(Curr->Next, std::memory_order_acquire, Curr,
                            MemField::Next);
        // See contains(): overlap the successor fetch with the compare.
        if constexpr (!Policy::Traced)
          VBL_PREFETCH(Curr->Next.load(std::memory_order_relaxed));
        Val = Policy::readValue(Curr->Val, Curr);
        ++Hops;
      }
      stats::noteTraversal(Hops);
      return {Prev, Curr, Val};
    }
  }

  /// Heller et al. validation, under both locks: the window is live and
  /// adjacent. A failure here is the §2.3 rejected schedule the
  /// validation-abort counter measures.
  ///
  /// VBR adds birth checks on both nodes, evaluated after the field
  /// reads they certify: once prev and curr pass as unmarked, adjacent
  /// and of traversal-certified incarnations while both locks are held,
  /// neither block can be retired (retire needs the mark, the mark
  /// needs the lock) — the window is stable for the critical section.
  bool validate(Node *Prev, Node *Curr,
                typename Reclaim::Guard &G) const {
    bool Ok =
        !Policy::readCheck(Prev->Marked, std::memory_order_acquire, Prev,
                           MemField::Marked) &&
        !Policy::readCheck(Curr->Marked, std::memory_order_acquire, Curr,
                           MemField::Marked) &&
        Policy::readCheck(Prev->Next, std::memory_order_acquire, Prev,
                          MemField::Next) == Curr;
    if constexpr (Versioned)
      Ok = Ok && Domain.validAt(Prev, G.version()) &&
           Domain.validAt(Curr, G.version());
    if (!Ok)
      stats::bump(stats::Counter::ListValidationAborts);
    return Ok;
  }

  Node *Head;
  Node *Tail;
  mutable Reclaim Domain;
};

} // namespace vbl

#endif // VBL_LISTS_LAZYLIST_H
