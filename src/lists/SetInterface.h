//===- lists/SetInterface.h - Type-erased concurrent set API -------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal virtual interface over every concurrent list in the repo so
/// the benchmark harness, stress tests and examples can treat algorithms
/// uniformly. The virtual dispatch cost is identical across algorithms,
/// so relative benchmark comparisons are unaffected; micro-benchmarks
/// that want zero overhead instantiate the concrete templates directly.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_LISTS_SETINTERFACE_H
#define VBL_LISTS_SETINTERFACE_H

#include "core/BatchOp.h"
#include "core/SetConfig.h"
#include "stats/Stats.h"
#include "support/Compiler.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <type_traits>
#include <vector>

namespace vbl {

/// Uniform view of a concurrent integer set.
class ConcurrentSet {
public:
  virtual ~ConcurrentSet();

  /// Adds \p Key; true iff it was absent.
  virtual bool insert(SetKey Key) = 0;
  /// Removes \p Key; true iff it was present.
  virtual bool remove(SetKey Key) = 0;
  /// Membership test.
  virtual bool contains(SetKey Key) = 0;

  /// Applies \p N ops, writing each `Result` in place. Ops on the SAME
  /// key take effect in array order; ops on distinct keys may be
  /// reordered internally (they commute). The default applies the array
  /// front to back; adapters over lists with a sorted-batch entry point
  /// override this with a single amortized traversal.
  virtual void applyBatch(BatchOp *Ops, size_t N) {
    for (size_t I = 0; I != N; ++I)
      applyOneOf(Ops[I]);
  }

  /// Concurrency-safe range scan: appends the stored keys in
  /// [\p Lo, \p Hi] (inclusive) to \p Out, ascending within one call,
  /// and returns the number of keys appended. Linearizable per key:
  /// each key's presence/absence in the result is justified by some
  /// point inside the scan's interval (the widened-interval contract
  /// lincheck verifies); a fully atomic collect is provided where the
  /// substrate supports it (seqlock-validated chunk windows).
  virtual size_t rangeQuery(SetKey Lo, SetKey Hi,
                            std::vector<SetKey> &Out) = 0;

  /// Concurrency-safe full-set scan: rangeQuery over the whole user-key
  /// domain. Backends with a restricted domain narrow it themselves.
  virtual size_t snapshot(std::vector<SetKey> &Out) {
    return rangeQuery(MinSentinel + 1, MaxSentinel - 1, Out);
  }

  /// Quiescent-only: the user keys currently stored, in order.
  virtual std::vector<SetKey> snapshot() const = 0;
  /// Quiescent-only: structural invariants of the underlying list.
  virtual bool checkInvariants() const = 0;

  /// Registry name of the algorithm backing this instance.
  virtual const std::string &name() const = 0;

protected:
  void applyOneOf(BatchOp &O) {
    switch (O.Op) {
    case SetOp::Insert:
      O.Result = insert(O.Key);
      return;
    case SetOp::Remove:
      O.Result = remove(O.Key);
      return;
    case SetOp::Contains:
      O.Result = contains(O.Key);
      return;
    case SetOp::RangeQuery: {
      // Batched scans need an out-buffer; a null Keys still runs the
      // scan (Result reports non-emptiness) into a discarded local.
      std::vector<SetKey> Discard;
      std::vector<SetKey> &Sink = O.Keys ? *O.Keys : Discard;
      O.Result = rangeQuery(O.Key, O.KeyHi, Sink) != 0;
      return;
    }
    }
  }
};

namespace detail {
/// Detects `List.applyBatchSorted(BatchOp *const *, size_t)` — the
/// anchor-reusing single-traversal batch entry point VblList exposes.
template <class T, class = void> struct HasSortedBatch : std::false_type {};
template <class T>
struct HasSortedBatch<
    T, std::void_t<decltype(std::declval<T &>().applyBatchSorted(
           static_cast<BatchOp *const *>(nullptr), size_t(0)))>>
    : std::true_type {};

/// Detects the hash sets (restricted [0, 2^62) key domain) by their
/// bucketCount() accessor, so the adapter can narrow full-set scans.
template <class T, class = void> struct HasBucketCount : std::false_type {};
template <class T>
struct HasBucketCount<
    T, std::void_t<decltype(std::declval<T &>().bucketCount())>>
    : std::true_type {};
} // namespace detail

/// Wraps any concrete list type that provides the common template API.
template <class ListT> class SetAdapter final : public ConcurrentSet {
public:
  explicit SetAdapter(std::string Name) : Name(std::move(Name)) {}

  bool insert(SetKey Key) override { return List.insert(Key); }
  bool remove(SetKey Key) override { return List.remove(Key); }
  bool contains(SetKey Key) override { return List.contains(Key); }

  void applyBatch(BatchOp *Ops, size_t N) override {
    if constexpr (detail::HasSortedBatch<ListT>::value) {
      // Point ops on distinct keys commute, so the sorted fast path may
      // reorder them freely — but a RangeQuery observes every key in
      // its window and does NOT commute with in-range updates. Sorting
      // a scan piece across its neighbours (a scan sorts by its Lo
      // bound) would move same-batch updates in or out of the scan's
      // view. Scans therefore act as batch barriers: each maximal run
      // of point ops is one sorted traversal, each scan runs in its
      // submission position.
      size_t I = 0;
      while (I != N) {
        if (Ops[I].Op == SetOp::RangeQuery) {
          applyOneOf(Ops[I]);
          ++I;
          continue;
        }
        size_t End = I + 1;
        while (End != N && Ops[End].Op != SetOp::RangeQuery)
          ++End;
        applySortedRun(Ops + I, End - I);
        I = End;
      }
      return;
    }
    ConcurrentSet::applyBatch(Ops, N);
  }

  size_t rangeQuery(SetKey Lo, SetKey Hi,
                    std::vector<SetKey> &Out) override {
    const size_t Returned = List.rangeQuery(Lo, Hi, Out);
    stats::bump(stats::Counter::ScanKeysReturned, Returned);
    return Returned;
  }

  size_t snapshot(std::vector<SetKey> &Out) override {
    if constexpr (detail::HasBucketCount<ListT>::value)
      // Hash sets assert their restricted domain on every scan bound.
      return rangeQuery(0, (SetKey{1} << HashKeyBits) - 1, Out);
    else
      return rangeQuery(MinSentinel + 1, MaxSentinel - 1, Out);
  }
  std::vector<SetKey> snapshot() const override { return List.snapshot(); }
  bool checkInvariants() const override { return List.checkInvariants(); }
  const std::string &name() const override { return Name; }

  ListT &underlying() { return List; }

private:
  /// One scan-free run through the list's single-traversal batch entry
  /// point. Only instantiated for lists with applyBatchSorted.
  void applySortedRun(BatchOp *Ops, size_t N) {
    if (N == 1) {
      applyOneOf(Ops[0]);
      return;
    }
    // Sort an index view, not the array: callers read results out
    // of their own op records by position. Same-key ops MUST keep
    // submission order — that is the whole per-key FIFO contract —
    // so the comparator orders by (Key, submission index)
    // explicitly rather than leaning on sort stability.
    // Thread-local scratch: an adapter is shared across threads
    // and concurrent batch flushes to the same shard are legal.
    static thread_local std::vector<size_t> Scratch;
    static thread_local std::vector<BatchOp *> Sorted;
    Scratch.resize(N);
    std::iota(Scratch.begin(), Scratch.end(), size_t{0});
    std::stable_sort(Scratch.begin(), Scratch.end(),
                     [Ops](size_t A, size_t B) {
                       if (Ops[A].Key != Ops[B].Key)
                         return Ops[A].Key < Ops[B].Key;
                       return A < B;
                     });
    Sorted.resize(N);
    for (size_t I = 0; I != N; ++I) {
      Sorted[I] = &Ops[Scratch[I]];
      VBL_ASSERT(I == 0 || Sorted[I - 1]->Key != Sorted[I]->Key ||
                     Sorted[I - 1] < Sorted[I],
                 "same-key batch ops must stay in submission order");
    }
    List.applyBatchSorted(Sorted.data(), N);
  }

  std::string Name;
  ListT List;
};

/// Creates a set by registry name ("vbl", "lazy", "harris-michael",
/// ...); null for unknown names. See Registry.cpp for the full table.
std::unique_ptr<ConcurrentSet> makeSet(const std::string &Name);

/// All registered full-key-domain algorithm names, in registration
/// order. Structures with a restricted key domain (the split-ordered
/// hash sets, which accept only isHashKey values) are excluded; resolve
/// them via makeSet() or enumerate them with registeredHashSetNames().
std::vector<std::string> registeredSetNames();

/// The registered split-ordered hash-set names ([0, 2^62) key domain).
std::vector<std::string> registeredHashSetNames();

/// The subset of names the paper's evaluation compares (VBL, Lazy,
/// Harris-Michael), used as the default series of the figure benches.
std::vector<std::string> paperComparisonSetNames();

/// One registry row for tooling: name, a one-line human description
/// (substrate / reclaim domain / chunk K / lock flavour), and whether
/// the structure accepts the full SetKey domain (hash sets do not).
struct SetDescription {
  std::string Name;
  std::string Describe;
  bool FullKeyDomain = true;
};

/// Every registered structure (lists AND hash sets), registration order.
std::vector<SetDescription> registeredSetDescriptions();

/// The describe string for \p Name; empty if unregistered.
std::string setDescription(const std::string &Name);

/// Registered names closest to the (presumably misspelled) \p Name by
/// edit distance, nearest first; at most \p MaxSuggestions, and only
/// names within a distance that plausibly means "typo" (<= 3 edits or
/// a registered name containing \p Name as a substring).
std::vector<std::string> suggestSetNames(const std::string &Name,
                                         size_t MaxSuggestions = 3);

} // namespace vbl

#endif // VBL_LISTS_SETINTERFACE_H
