//===- lists/SetInterface.h - Type-erased concurrent set API -------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal virtual interface over every concurrent list in the repo so
/// the benchmark harness, stress tests and examples can treat algorithms
/// uniformly. The virtual dispatch cost is identical across algorithms,
/// so relative benchmark comparisons are unaffected; micro-benchmarks
/// that want zero overhead instantiate the concrete templates directly.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_LISTS_SETINTERFACE_H
#define VBL_LISTS_SETINTERFACE_H

#include "core/SetConfig.h"

#include <memory>
#include <string>
#include <vector>

namespace vbl {

/// Uniform view of a concurrent integer set.
class ConcurrentSet {
public:
  virtual ~ConcurrentSet();

  /// Adds \p Key; true iff it was absent.
  virtual bool insert(SetKey Key) = 0;
  /// Removes \p Key; true iff it was present.
  virtual bool remove(SetKey Key) = 0;
  /// Membership test.
  virtual bool contains(SetKey Key) = 0;

  /// Quiescent-only: the user keys currently stored, in order.
  virtual std::vector<SetKey> snapshot() const = 0;
  /// Quiescent-only: structural invariants of the underlying list.
  virtual bool checkInvariants() const = 0;

  /// Registry name of the algorithm backing this instance.
  virtual const std::string &name() const = 0;
};

/// Wraps any concrete list type that provides the common template API.
template <class ListT> class SetAdapter final : public ConcurrentSet {
public:
  explicit SetAdapter(std::string Name) : Name(std::move(Name)) {}

  bool insert(SetKey Key) override { return List.insert(Key); }
  bool remove(SetKey Key) override { return List.remove(Key); }
  bool contains(SetKey Key) override { return List.contains(Key); }

  std::vector<SetKey> snapshot() const override { return List.snapshot(); }
  bool checkInvariants() const override { return List.checkInvariants(); }
  const std::string &name() const override { return Name; }

  ListT &underlying() { return List; }

private:
  std::string Name;
  ListT List;
};

/// Creates a set by registry name ("vbl", "lazy", "harris-michael",
/// ...); null for unknown names. See Registry.cpp for the full table.
std::unique_ptr<ConcurrentSet> makeSet(const std::string &Name);

/// All registered full-key-domain algorithm names, in registration
/// order. Structures with a restricted key domain (the split-ordered
/// hash sets, which accept only isHashKey values) are excluded; resolve
/// them via makeSet() or enumerate them with registeredHashSetNames().
std::vector<std::string> registeredSetNames();

/// The registered split-ordered hash-set names ([0, 2^62) key domain).
std::vector<std::string> registeredHashSetNames();

/// The subset of names the paper's evaluation compares (VBL, Lazy,
/// Harris-Michael), used as the default series of the figure benches.
std::vector<std::string> paperComparisonSetNames();

} // namespace vbl

#endif // VBL_LISTS_SETINTERFACE_H
