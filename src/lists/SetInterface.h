//===- lists/SetInterface.h - Type-erased concurrent set API -------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal virtual interface over every concurrent list in the repo so
/// the benchmark harness, stress tests and examples can treat algorithms
/// uniformly. The virtual dispatch cost is identical across algorithms,
/// so relative benchmark comparisons are unaffected; micro-benchmarks
/// that want zero overhead instantiate the concrete templates directly.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_LISTS_SETINTERFACE_H
#define VBL_LISTS_SETINTERFACE_H

#include "core/BatchOp.h"
#include "core/SetConfig.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <type_traits>
#include <vector>

namespace vbl {

/// Uniform view of a concurrent integer set.
class ConcurrentSet {
public:
  virtual ~ConcurrentSet();

  /// Adds \p Key; true iff it was absent.
  virtual bool insert(SetKey Key) = 0;
  /// Removes \p Key; true iff it was present.
  virtual bool remove(SetKey Key) = 0;
  /// Membership test.
  virtual bool contains(SetKey Key) = 0;

  /// Applies \p N ops, writing each `Result` in place. Ops on the SAME
  /// key take effect in array order; ops on distinct keys may be
  /// reordered internally (they commute). The default applies the array
  /// front to back; adapters over lists with a sorted-batch entry point
  /// override this with a single amortized traversal.
  virtual void applyBatch(BatchOp *Ops, size_t N) {
    for (size_t I = 0; I != N; ++I)
      applyOneOf(Ops[I]);
  }

  /// Quiescent-only: the user keys currently stored, in order.
  virtual std::vector<SetKey> snapshot() const = 0;
  /// Quiescent-only: structural invariants of the underlying list.
  virtual bool checkInvariants() const = 0;

  /// Registry name of the algorithm backing this instance.
  virtual const std::string &name() const = 0;

protected:
  void applyOneOf(BatchOp &O) {
    switch (O.Op) {
    case SetOp::Insert:
      O.Result = insert(O.Key);
      return;
    case SetOp::Remove:
      O.Result = remove(O.Key);
      return;
    case SetOp::Contains:
      O.Result = contains(O.Key);
      return;
    }
  }
};

namespace detail {
/// Detects `List.applyBatchSorted(BatchOp *const *, size_t)` — the
/// anchor-reusing single-traversal batch entry point VblList exposes.
template <class T, class = void> struct HasSortedBatch : std::false_type {};
template <class T>
struct HasSortedBatch<
    T, std::void_t<decltype(std::declval<T &>().applyBatchSorted(
           static_cast<BatchOp *const *>(nullptr), size_t(0)))>>
    : std::true_type {};
} // namespace detail

/// Wraps any concrete list type that provides the common template API.
template <class ListT> class SetAdapter final : public ConcurrentSet {
public:
  explicit SetAdapter(std::string Name) : Name(std::move(Name)) {}

  bool insert(SetKey Key) override { return List.insert(Key); }
  bool remove(SetKey Key) override { return List.remove(Key); }
  bool contains(SetKey Key) override { return List.contains(Key); }

  void applyBatch(BatchOp *Ops, size_t N) override {
    if constexpr (detail::HasSortedBatch<ListT>::value) {
      if (N > 1) {
        // Sort an index view, not the array: callers read results out
        // of their own op records by position. The stable sort keeps
        // same-key ops in submission order, which is the whole per-key
        // FIFO contract; distinct keys commute. Thread-local scratch:
        // an adapter is shared across threads and concurrent batch
        // flushes to the same shard are legal.
        static thread_local std::vector<size_t> Scratch;
        static thread_local std::vector<BatchOp *> Sorted;
        Scratch.resize(N);
        std::iota(Scratch.begin(), Scratch.end(), size_t{0});
        std::stable_sort(Scratch.begin(), Scratch.end(),
                         [Ops](size_t A, size_t B) {
                           return Ops[A].Key < Ops[B].Key;
                         });
        Sorted.resize(N);
        for (size_t I = 0; I != N; ++I)
          Sorted[I] = &Ops[Scratch[I]];
        List.applyBatchSorted(Sorted.data(), N);
        return;
      }
    }
    ConcurrentSet::applyBatch(Ops, N);
  }

  std::vector<SetKey> snapshot() const override { return List.snapshot(); }
  bool checkInvariants() const override { return List.checkInvariants(); }
  const std::string &name() const override { return Name; }

  ListT &underlying() { return List; }

private:
  std::string Name;
  ListT List;
};

/// Creates a set by registry name ("vbl", "lazy", "harris-michael",
/// ...); null for unknown names. See Registry.cpp for the full table.
std::unique_ptr<ConcurrentSet> makeSet(const std::string &Name);

/// All registered full-key-domain algorithm names, in registration
/// order. Structures with a restricted key domain (the split-ordered
/// hash sets, which accept only isHashKey values) are excluded; resolve
/// them via makeSet() or enumerate them with registeredHashSetNames().
std::vector<std::string> registeredSetNames();

/// The registered split-ordered hash-set names ([0, 2^62) key domain).
std::vector<std::string> registeredHashSetNames();

/// The subset of names the paper's evaluation compares (VBL, Lazy,
/// Harris-Michael), used as the default series of the figure benches.
std::vector<std::string> paperComparisonSetNames();

/// One registry row for tooling: name, a one-line human description
/// (substrate / reclaim domain / chunk K / lock flavour), and whether
/// the structure accepts the full SetKey domain (hash sets do not).
struct SetDescription {
  std::string Name;
  std::string Describe;
  bool FullKeyDomain = true;
};

/// Every registered structure (lists AND hash sets), registration order.
std::vector<SetDescription> registeredSetDescriptions();

/// The describe string for \p Name; empty if unregistered.
std::string setDescription(const std::string &Name);

/// Registered names closest to the (presumably misspelled) \p Name by
/// edit distance, nearest first; at most \p MaxSuggestions, and only
/// names within a distance that plausibly means "typo" (<= 3 edits or
/// a registered name containing \p Name as a substring).
std::vector<std::string> suggestSetNames(const std::string &Name,
                                         size_t MaxSuggestions = 3);

} // namespace vbl

#endif // VBL_LISTS_SETINTERFACE_H
