//===- reclaim/NodePool.h - Per-thread size-class node recycler ----------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A per-thread, size-class slab allocator that closes the loop the
/// reclamation domains leave open: a retired node whose grace period has
/// elapsed goes back to the freeing thread's local free list instead of
/// the global heap, so the next insert on that thread reuses a
/// cache-warm block without a lock or a malloc call. This is the move
/// VBR and GCList (PAPERS.md) get their speedups from — the paper's JVM
/// evaluation had it for free from the garbage collector.
///
/// Structure:
///  - Six size classes, 32..1024 bytes (powers of two). A request is
///    served from class max(roundUpPow2(bytes), align); larger or
///    over-aligned requests go straight to the heap, decided purely by
///    size, so deallocate needs no provenance bit.
///  - Per-thread caches: an intrusive free list per class (the block's
///    first word is the next pointer), capped at CacheCapPerClass
///    blocks. Alloc/free against the cache touch no shared state.
///  - A global pool behind a mutex: refills local caches in
///    TransferBatch chunks, absorbs cache overflow, and receives every
///    cached block when a thread exits (slab donation — nothing is
///    stranded in dead threads' caches). Blocks are carved from 16 KiB
///    *self-aligned* slabs, and the global free state is kept per slab
///    (a donated block masks its way back to its home slab's header):
///    every refill batch therefore comes from a single slab, keeping
///    long-lived lists page-compact no matter how shuffled the pool
///    gets over a process lifetime.
///  - The global pool is created with `new` and never destroyed:
///    thread-cache destructors (TLS teardown) may run after any static
///    destructor, and keeping the slab spine alive also keeps every
///    block reachable for LeakSanitizer.
///
/// Lifetime safety is entirely the reclamation domains' job: the pool
/// only ever sees a block after the domain's grace period proved no
/// reader holds it. The handshake that makes a recycle race-free is the
/// epoch domain's policy-mediated announcement protocol (see
/// EpochDomain.h); the pool adds one policy-visible edge of its own, a
/// `TransferBeacon` exchanged with release ordering whenever blocks move
/// to the global pool and read with acquire ordering on refill, so the
/// rare cross-thread block migration is also ordered for the
/// happens-before race detector.
///
/// `VBL_POOL_BYPASS` (compile definition, or environment variable at
/// first use, or the ScopedBypass RAII hook) routes every request to
/// plain aligned operator new/delete so AddressSanitizer sees real
/// use-after-free instead of a silently recycled block. Alloc and free
/// must agree on the mode: a ScopedBypass scope must fully contain the
/// lifetime of every object allocated inside it (the benches construct
/// the whole list inside the scope).
///
//===----------------------------------------------------------------------===//

#ifndef VBL_RECLAIM_NODEPOOL_H
#define VBL_RECLAIM_NODEPOOL_H

#include "support/Compiler.h"
#include "sync/Policy.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>

namespace vbl {
namespace reclaim {

class NodePool {
public:
  /// Smallest block handed out; also the floor of the class ladder. A
  /// block must hold at least the intrusive free-list link.
  static constexpr size_t MinBlockBytes = 32;
  /// Largest pooled block; bigger requests are heap round-trips.
  static constexpr size_t MaxBlockBytes = 1024;
  static constexpr size_t NumClasses = 6; // 32, 64, 128, 256, 512, 1024.
  /// Slab granularity requested from the heap. 16 KiB keeps slab count
  /// low without committing megabytes for tiny tests.
  static constexpr size_t SlabBytes = 16 * 1024;
  /// Per-thread, per-class cache bound. Past this, frees overflow to
  /// the global pool so one churning thread cannot hoard every block.
  static constexpr size_t CacheCapPerClass = 128;
  /// Blocks moved per local<->global transfer, amortizing the mutex.
  static constexpr size_t TransferBatch = 32;

  /// Pool-or-heap allocation of \p Bytes with \p Align. Never returns
  /// null (aborts on heap exhaustion like operator new).
  template <class PolicyT = DirectPolicy>
  static void *allocate(size_t Bytes, size_t Align) {
    if (VBL_UNLIKELY(bypassed()))
      return bypassAllocate(Bytes, Align);
    const int Class = classIndexFor(Bytes, Align);
    if (VBL_UNLIKELY(Class < 0))
      return oversizeAllocate(Bytes, Align);
    bool FromGlobal = false;
    void *Ptr = allocateImpl(static_cast<unsigned>(Class), FromGlobal);
    if constexpr (PolicyT::Traced) {
      // Whether a refill pulled pre-owned global blocks depends on
      // process-global cache state that persists across episodes, so a
      // deterministic replay must trace the handshake unconditionally —
      // identical event streams no matter what the pool did.
      (void)PolicyT::read(transferBeacon(), std::memory_order_acquire,
                          &transferBeacon(), MemField::Epoch);
    } else if (VBL_UNLIKELY(FromGlobal)) {
      // Acquire the release-exchange of whichever thread published these
      // blocks, ordering their previous lives before our reuse.
      (void)PolicyT::read(transferBeacon(), std::memory_order_acquire,
                          &transferBeacon(), MemField::Epoch);
    }
    return Ptr;
  }

  /// Returns a block obtained from allocate() with the same size/align.
  template <class PolicyT = DirectPolicy>
  static void deallocate(void *Ptr, size_t Bytes, size_t Align) {
    if (!Ptr)
      return;
    if (VBL_UNLIKELY(bypassed())) {
      bypassDeallocate(Ptr, Bytes, Align);
      return;
    }
    const int Class = classIndexFor(Bytes, Align);
    if (VBL_UNLIKELY(Class < 0)) {
      oversizeDeallocate(Ptr, Bytes, Align);
      return;
    }
    bool ToGlobal = false;
    deallocateImpl(Ptr, static_cast<unsigned>(Class), ToGlobal);
    if constexpr (PolicyT::Traced) {
      // See allocate(): trace the handshake unconditionally so episode
      // replay stays deterministic across pool cache states.
      const uint64_t Seq =
          transferBeacon().load(std::memory_order_relaxed);
      (void)PolicyT::exchange(transferBeacon(), Seq + 1,
                              std::memory_order_acq_rel, &transferBeacon(),
                              MemField::Epoch);
    } else if (VBL_UNLIKELY(ToGlobal)) {
      // Publish everything this thread wrote into the donated blocks
      // before another thread's refill can hand them out again.
      const uint64_t Seq =
          transferBeacon().load(std::memory_order_relaxed);
      (void)PolicyT::exchange(transferBeacon(), Seq + 1,
                              std::memory_order_acq_rel, &transferBeacon(),
                              MemField::Epoch);
    }
  }

  /// True when requests are being routed to plain operator new/delete.
  static bool bypassed();

  /// RAII runtime bypass for tests and the pool-vs-heap benchmarks.
  /// Every object allocated inside the scope must also be destroyed
  /// inside it: the pool keeps no provenance, so a block allocated in
  /// one mode and freed in the other corrupts either the heap or a
  /// free list.
  class ScopedBypass {
  public:
    ScopedBypass();
    ~ScopedBypass();
    ScopedBypass(const ScopedBypass &) = delete;
    ScopedBypass &operator=(const ScopedBypass &) = delete;
  };

  /// Monotonic counters, aggregated over live threads' caches (approximate
  /// while threads run; exact when they have exited) plus the global pool.
  struct Stats {
    uint64_t PoolAllocs = 0;    ///< Fast-path pops from a local free list.
    uint64_t PoolFrees = 0;     ///< Fast-path pushes to a local free list.
    uint64_t SlabsCarved = 0;   ///< 16 KiB slabs requested from the heap.
    uint64_t BlocksDonated = 0; ///< Blocks handed to the global pool.
    uint64_t GlobalRefills = 0; ///< Batch transfers global -> local.
    uint64_t HeapAllocs = 0;    ///< Bypass or oversize operator new calls.
    uint64_t HeapFrees = 0;     ///< Bypass or oversize operator delete calls.
    uint64_t FallbackBlocks = 0; ///< Heap blocks minted under the slab cap.
  };
  static Stats stats();

  /// Bytes of slab memory currently owned by the global pool.
  static size_t liveSlabBytes();

  /// Size-class index serving a (Bytes, Align) request, or -1 when the
  /// request is heap-only (oversize or over-aligned). Public so the VBR
  /// domain's type-stable free lists bucket recycled blocks by the same
  /// ladder the pool carves slabs with.
  static int sizeClassFor(size_t Bytes, size_t Align) {
    return classIndexFor(Bytes, Align);
  }

  /// Block size handed out for class \p Class (powers of two from
  /// MinBlockBytes).
  static constexpr size_t classBytes(unsigned Class) {
    return MinBlockBytes << Class;
  }

  /// Test hook: caps slab memory so the exhaustion path (single-block
  /// heap fallback, still recycled through the free lists) is reachable
  /// deterministically. 0 restores "unlimited". Not thread-safe against
  /// concurrent allocation; call from quiescent test code only.
  static void setSlabByteLimitForTest(size_t Limit);

private:
  /// Class index serving (Bytes, Align), or -1 for heap-only requests.
  /// The class size is max(roundUpPow2(Bytes), Align, MinBlockBytes):
  /// slabs are self-aligned and carved at class-size strides (the first
  /// slot holds the slab header), so every block of class >= Align is
  /// Align-aligned.
  static int classIndexFor(size_t Bytes, size_t Align) {
    if (VBL_UNLIKELY(Bytes > MaxBlockBytes || Align > CacheLineBytes))
      return -1;
    size_t Need = Bytes < Align ? Align : Bytes;
    if (Need < MinBlockBytes)
      Need = MinBlockBytes;
    int Class = 0;
    size_t Size = MinBlockBytes;
    while (Size < Need) {
      Size <<= 1;
      ++Class;
    }
    return Class;
  }

  static void *allocateImpl(unsigned Class, bool &FromGlobal);
  static void deallocateImpl(void *Ptr, unsigned Class, bool &ToGlobal);
  static void *bypassAllocate(size_t Bytes, size_t Align);
  static void bypassDeallocate(void *Ptr, size_t Bytes, size_t Align);
  static void *oversizeAllocate(size_t Bytes, size_t Align);
  static void oversizeDeallocate(void *Ptr, size_t Bytes, size_t Align);
  static std::atomic<uint64_t> &transferBeacon();
};

/// Pool-backed replacement for `new T(args...)`. The policy parameter
/// only matters for the rare global-pool transfer edge; hot paths never
/// touch shared state.
template <class T, class PolicyT = DirectPolicy, class... Args>
T *poolCreate(Args &&...A) {
  void *Mem = NodePool::allocate<PolicyT>(sizeof(T), alignof(T));
  return ::new (Mem) T(std::forward<Args>(A)...);
}

/// Pool-backed replacement for `delete Ptr` (null-safe).
template <class PolicyT = DirectPolicy, class T> void poolDestroy(T *Ptr) {
  if (!Ptr)
    return;
  Ptr->~T();
  NodePool::deallocate<PolicyT>(Ptr, sizeof(T), alignof(T));
}

/// Type-erased deleter suitable for Domain::retireRaw: destroys the
/// object and recycles its block on the thread that performs the
/// (grace-period-delayed) free.
template <class T, class PolicyT = DirectPolicy>
void (*poolDeleter())(void *) {
  return +[](void *P) {
    static_cast<T *>(P)->~T();
    NodePool::deallocate<PolicyT>(P, sizeof(T), alignof(T));
  };
}

/// `Domain.retire(Ptr)` with the pool deleter instead of `delete`.
template <class PolicyT = DirectPolicy, class DomainT, class T>
void poolRetire(DomainT &Domain, T *Ptr) {
  Domain.retireRaw(Ptr, poolDeleter<T, PolicyT>());
}

} // namespace reclaim
} // namespace vbl

#endif // VBL_RECLAIM_NODEPOOL_H
