//===- reclaim/EpochDomain.h - Epoch-based memory reclamation ------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Epoch-based reclamation (EBR), the default replacement for the JVM
/// garbage collector the paper relies on. The lists' wait-free traversals
/// may hold pointers to nodes that have been unlinked; EBR guarantees an
/// unlinked node is not freed until every thread that could have observed
/// it has left its read-side critical section.
///
/// Protocol (classic Fraser 3-epoch scheme):
///  - A global epoch counter advances when every attached thread that is
///    inside a guard has announced the current epoch.
///  - Guards announce the global epoch on entry and clear their active
///    flag on exit; guards nest.
///  - retire() stamps the pointer with the current global epoch. A
///    pointer retired in epoch e is freed once the global epoch reaches
///    e + 2: any reader that could still hold it announced at most e + 1.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_RECLAIM_EPOCHDOMAIN_H
#define VBL_RECLAIM_EPOCHDOMAIN_H

#include "support/Compiler.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace vbl {
namespace reclaim {

/// An independent EBR instance. Each concurrent set owns one (or shares
/// one); threads attach lazily on first guard entry and detach
/// automatically at thread exit.
class EpochDomain {
public:
  /// Upper bound on concurrently attached threads. Records are claimed
  /// and recycled, so this bounds *simultaneous* threads, not total.
  static constexpr unsigned MaxThreads = 512;

  /// Retired pointers per thread that trigger a collection attempt.
  /// Small enough to bound floating garbage in the benchmarks, large
  /// enough that the scan cost amortizes.
  static constexpr size_t CollectThreshold = 128;

  EpochDomain();
  ~EpochDomain();

  EpochDomain(const EpochDomain &) = delete;
  EpochDomain &operator=(const EpochDomain &) = delete;

  class Guard;

  /// Schedules \p Ptr for deletion once no reader can hold it. Must be
  /// called with a guard held (the unlink that made the node unreachable
  /// happened inside the same critical section).
  template <class T> void retire(T *Ptr) {
    retireRaw(Ptr, [](void *P) { delete static_cast<T *>(P); });
  }

  /// Type-erased retire for adapters.
  void retireRaw(void *Ptr, void (*Deleter)(void *));

  /// Forces collection attempts until nothing more can be freed without
  /// another epoch advance. Test/teardown helper; not thread-safe with
  /// concurrent guards on the *calling* thread.
  void collectAll();

  uint64_t globalEpoch() const {
    return GlobalEpoch.load(std::memory_order_acquire);
  }

  /// Observability for tests and the reclamation benchmark.
  uint64_t freedCount() const {
    return Freed.load(std::memory_order_relaxed);
  }
  uint64_t retiredCount() const {
    return Retired.load(std::memory_order_relaxed);
  }

private:
  struct RetiredPtr {
    void *Ptr;
    void (*Deleter)(void *);
    uint64_t Epoch;
  };

  struct alignas(CacheLineBytes) ThreadRecord {
    /// 0 when the thread is outside any guard; counts nesting.
    std::atomic<uint32_t> ActiveDepth{0};
    /// Epoch announced at outermost guard entry; only meaningful while
    /// ActiveDepth > 0.
    std::atomic<uint64_t> LocalEpoch{0};
    /// Slot ownership flag, claimed with CAS on attach.
    std::atomic<bool> InUse{false};
    /// Owner-thread-only while attached; handed to the domain on detach.
    std::vector<RetiredPtr> RetireList;
  };

  ThreadRecord *attachCurrentThread();
  static void detachTrampoline(void *Domain, void *Record);
  void detach(ThreadRecord *Record);

  /// Tries to advance the global epoch, then frees everything in
  /// \p Record that became safe. Returns true if anything was freed.
  bool collect(ThreadRecord *Record);
  bool tryAdvanceEpoch();
  void freeSafe(std::vector<RetiredPtr> &List, uint64_t SafeEpoch);

  const uint64_t DomainId;
  alignas(CacheLineBytes) std::atomic<uint64_t> GlobalEpoch{2};
  std::atomic<uint32_t> HighWater{0}; ///< One past the highest slot used.
  std::atomic<uint64_t> Freed{0};
  std::atomic<uint64_t> Retired{0};
  std::vector<ThreadRecord> Records;

  /// Retire lists of threads that exited while the domain lives on.
  std::mutex OrphanMutex;
  std::vector<RetiredPtr> Orphans;

public:
  /// RAII read-side critical section. Entering pins the current global
  /// epoch for this thread; nodes unlinked before entry may be freed,
  /// nodes unlinked after entry will not be freed until exit.
  class Guard {
  public:
    explicit Guard(EpochDomain &Domain)
        : Domain(Domain), Record(Domain.attachCurrentThread()) {
      const uint32_t Depth =
          Record->ActiveDepth.load(std::memory_order_relaxed);
      if (Depth != 0) {
        // Nested guard: the outermost entry already announced.
        Record->ActiveDepth.store(Depth + 1, std::memory_order_relaxed);
        return;
      }
      // Publish activity BEFORE reading the global epoch. If the scanner
      // misses this store it means our epoch load comes later in the
      // seq_cst order than any advance the scanner performed, so we can
      // only announce the advanced (current) epoch — never a stale one.
      // Announce-then-read would open the classic EBR race where a
      // stalled thread pins an epoch nobody can see.
      Record->ActiveDepth.store(1, std::memory_order_seq_cst);
      Record->LocalEpoch.store(
          Domain.GlobalEpoch.load(std::memory_order_seq_cst),
          std::memory_order_seq_cst);
    }

    ~Guard() {
      const uint32_t Depth =
          Record->ActiveDepth.load(std::memory_order_relaxed);
      VBL_ASSERT(Depth > 0, "guard exit without matching entry");
      // Release so the epoch-advancer observing Depth==0 also observes
      // every read this critical section performed as complete.
      Record->ActiveDepth.store(Depth - 1, std::memory_order_release);
    }

    Guard(const Guard &) = delete;
    Guard &operator=(const Guard &) = delete;

  private:
    [[maybe_unused]] EpochDomain &Domain;
    ThreadRecord *Record;
  };

  friend class Guard;
};

} // namespace reclaim
} // namespace vbl

#endif // VBL_RECLAIM_EPOCHDOMAIN_H
