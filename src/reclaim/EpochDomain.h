//===- reclaim/EpochDomain.h - Epoch-based memory reclamation ------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Epoch-based reclamation (EBR), the default replacement for the JVM
/// garbage collector the paper relies on. The lists' wait-free traversals
/// may hold pointers to nodes that have been unlinked; EBR guarantees an
/// unlinked node is not freed until every thread that could have observed
/// it has left its read-side critical section.
///
/// Protocol (classic Fraser 3-epoch scheme):
///  - A global epoch counter advances when every attached thread that is
///    inside a guard has announced the current epoch.
///  - Guards announce the global epoch on entry and clear their active
///    flag on exit; guards nest.
///  - retire() stamps the pointer with the current global epoch. A
///    pointer retired in epoch e is freed once the global epoch reaches
///    e + 2: any reader that could still hold it announced at most e + 1.
///
/// Read-side cost: a thread's activity flag and announced epoch share one
/// 64-bit word (bit 0 = active, bits 1+ = epoch), so guard entry is a
/// single fence-bearing `exchange` instead of the two seq_cst stores the
/// first implementation used. Because the epoch must be read *before*
/// composing the word, an advance can slip between the read and the
/// announcement; a validation loop re-reads the global epoch after the
/// exchange and re-announces until the two agree. Both halves of the race
/// stay safe:
///  - The advancer refuses to move the epoch while any active announce
///    word differs from the current epoch, so a stale announcement can
///    only *delay* reclamation (pin the epoch), never unpin memory.
///  - A reader whose announcement is one epoch behind still only holds
///    nodes it found by traversing from an immortal head after its
///    fence; any node retired in epoch r was unlinked before the global
///    epoch reached r + 1, and freeing it requires two further advances,
///    each of which scans (with seq_cst reads) the reader's announce
///    word after the reader's seq_cst announcement — so at most one
///    advance can miss an entering reader, which the e + 2 grace period
///    absorbs (it tolerates readers announcing one epoch late).
/// When the global epoch has not moved since this thread's previous
/// guard — the common case in a hot loop — the validation loop is
/// skipped entirely: re-announcing the identical word cannot pin
/// anything the previous guard did not already pin.
///
/// The domain is templated on the repo's access-Policy concept. The
/// production alias `EpochDomain` uses DirectPolicy (zero overhead);
/// instantiating with sched::AnalyzedPolicy routes the announcement
/// protocol — guard entry exchange, guard exit release store, the
/// advancer's scan and the epoch CAS — through the deterministic
/// scheduler and the happens-before race detector, which is what lets
/// tests/analysis prove that recycling a node (reclaim/NodePool.h) into
/// a concurrent traversal is ordered: the reader's guard exit
/// release-writes its announce word, the advancing thread's scan
/// acquire-reads it, and only then can the free (and pool reuse) happen.
/// Only the announcement protocol is policy-visible; per-thread retire
/// lists, slot claims and the orphan list are private bookkeeping.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_RECLAIM_EPOCHDOMAIN_H
#define VBL_RECLAIM_EPOCHDOMAIN_H

#include "reclaim/DomainRegistry.h"
#include "support/Compiler.h"
#include "sync/Policy.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace vbl {
namespace reclaim {

/// An independent EBR instance. Each concurrent set owns one (or shares
/// one); threads attach lazily on first guard entry and detach
/// automatically at thread exit.
template <class PolicyT = DirectPolicy> class BasicEpochDomain {
public:
  using Policy = PolicyT;

  /// Upper bound on concurrently attached threads. Records are claimed
  /// and recycled, so this bounds *simultaneous* threads, not total.
  static constexpr unsigned MaxThreads = 512;

  /// Retired pointers per thread that trigger a collection attempt.
  /// Small enough to bound floating garbage in the benchmarks, large
  /// enough that the scan cost amortizes.
  static constexpr size_t CollectThreshold = 128;

  BasicEpochDomain() : DomainId(registerDomain()), Records(MaxThreads) {}

  ~BasicEpochDomain() {
    // After this call no exiting thread will touch this domain again.
    unregisterDomain(DomainId);
    // No guard may be active: readers into freed nodes would be fatal.
    for (ThreadRecord &Record : Records)
      VBL_ASSERT((Record.Announce.load(std::memory_order_acquire) & 1) == 0,
                 "EpochDomain destroyed while a guard is active");
    // Everything still pending is safe to free now.
    for (ThreadRecord &Record : Records) {
      for (const RetiredPtr &R : Record.RetireList)
        R.Deleter(R.Ptr);
      Record.RetireList.clear();
    }
    std::lock_guard<std::mutex> Lock(OrphanMutex);
    for (const RetiredPtr &R : Orphans)
      R.Deleter(R.Ptr);
    Orphans.clear();
  }

  BasicEpochDomain(const BasicEpochDomain &) = delete;
  BasicEpochDomain &operator=(const BasicEpochDomain &) = delete;

  class Guard;

  /// Schedules \p Ptr for deletion once no reader can hold it. Must be
  /// called with a guard held (the unlink that made the node unreachable
  /// happened inside the same critical section).
  template <class T> void retire(T *Ptr) {
    retireRaw(Ptr, [](void *P) { delete static_cast<T *>(P); });
  }

  /// Type-erased retire for adapters (and the pool deleters).
  void retireRaw(void *Ptr, void (*Deleter)(void *)) {
    VBL_ASSERT(Ptr, "retiring null");
    ThreadRecord *Record = attachCurrentThread();
    Record->RetireList.push_back(
        {Ptr, Deleter,
         Policy::read(GlobalEpoch, std::memory_order_acquire, &GlobalEpoch,
                      MemField::Epoch)});
    Retired.fetch_add(1, std::memory_order_relaxed);
    stats::bump(stats::Counter::EpochRetired);
    // Attempt collection every CollectThreshold retirements, not on every
    // retirement past the threshold: when a preempted reader pins an old
    // epoch, the latter degrades into a full record scan per retire.
    if (Record->RetireList.size() % CollectThreshold == 0)
      collect(Record);
  }

  /// Forces collection attempts until nothing more can be freed without
  /// another epoch advance. Test/teardown helper. The calling thread
  /// must not hold a guard: collectAll frees this thread's own retired
  /// nodes as soon as the epoch allows, which would pull memory out from
  /// under the caller's still-open critical section.
  void collectAll() {
    ThreadRecord *Record = attachCurrentThread();
    VBL_ASSERT(Record->Depth == 0,
               "collectAll called while the calling thread holds a guard");
    // Each advance can unlock one more epoch bucket; three rounds drain
    // everything when no other thread holds a guard.
    for (int Round = 0; Round != 3; ++Round) {
      tryAdvanceEpoch();
      const uint64_t Global =
          GlobalEpoch.load(std::memory_order_acquire);
      freeSafe(Record->RetireList, Global - 2);
      std::lock_guard<std::mutex> Lock(OrphanMutex);
      freeSafe(Orphans, Global - 2);
    }
  }

  uint64_t globalEpoch() const {
    return GlobalEpoch.load(std::memory_order_acquire);
  }

  /// Observability for tests and the reclamation benchmark.
  uint64_t freedCount() const {
    return Freed.load(std::memory_order_relaxed);
  }
  uint64_t retiredCount() const {
    return Retired.load(std::memory_order_relaxed);
  }

private:
  struct RetiredPtr {
    void *Ptr;
    void (*Deleter)(void *);
    uint64_t Epoch;
  };

  struct alignas(CacheLineBytes) ThreadRecord {
    /// Bit 0: the thread is inside a guard. Bits 1+: the epoch it
    /// announced at its outermost entry (meaningful only while bit 0 is
    /// set). One word so entry is a single RMW.
    std::atomic<uint64_t> Announce{0};
    /// Slot ownership flag, claimed with CAS on attach.
    std::atomic<bool> InUse{false};
    /// Guard nesting depth. Owner-thread-only: nesting is invisible to
    /// other threads (only bit 0 of Announce is), so this needs no
    /// atomicity.
    uint32_t Depth = 0;
    /// The word the last outermost guard announced (active bit set).
    /// Owner-thread-only. Lets the next entry skip epoch validation
    /// when the global epoch has not moved.
    uint64_t LastWord = 0;
    /// Owner-thread-only while attached; handed to the domain on detach.
    std::vector<RetiredPtr> RetireList;
  };

  ThreadRecord *attachCurrentThread() {
    // Fast path: per-(thread, domain) record cached in the TLS registry,
    // with a one-entry inline cache in front since nearly every workload
    // touches one domain at a time.
    thread_local uint64_t CachedDomainId = 0;
    thread_local ThreadRecord *CachedRecord = nullptr;
    if (CachedDomainId == DomainId)
      return CachedRecord;

    if (void *Known = findThreadRecord(DomainId)) {
      CachedDomainId = DomainId;
      CachedRecord = static_cast<ThreadRecord *>(Known);
      return CachedRecord;
    }

    // Slow path: claim a free slot.
    for (uint32_t I = 0; I != MaxThreads; ++I) {
      ThreadRecord &Record = Records[I];
      bool Expected = false;
      if (!Record.InUse.compare_exchange_strong(Expected, true,
                                                std::memory_order_acq_rel))
        continue;
      // Raise the scan high-water mark so epoch advancing sees this slot.
      uint32_t HW = HighWater.load(std::memory_order_relaxed);
      while (HW < I + 1 && !HighWater.compare_exchange_weak(
                               HW, I + 1, std::memory_order_acq_rel)) {
      }
      rememberThreadRecord(DomainId, this, &Record, &detachTrampoline);
      CachedDomainId = DomainId;
      CachedRecord = &Record;
      return &Record;
    }
    vbl_unreachable("EpochDomain: more than MaxThreads concurrent threads");
  }

  static void detachTrampoline(void *Domain, void *Record) {
    static_cast<BasicEpochDomain *>(Domain)->detach(
        static_cast<ThreadRecord *>(Record));
  }

  void detach(ThreadRecord *Record) {
    VBL_ASSERT(Record->Depth == 0, "thread exited inside an epoch guard");
    {
      std::lock_guard<std::mutex> Lock(OrphanMutex);
      Orphans.insert(Orphans.end(), Record->RetireList.begin(),
                     Record->RetireList.end());
    }
    Record->RetireList.clear();
    // Reset the owner-only state before releasing the slot: the next
    // thread claiming it must not inherit a stale LastWord (it would
    // wrongly skip epoch validation) or a phantom nesting depth.
    //
    // Announce is deliberately NOT reset. Depth == 0 means the last
    // guard exit already cleared the active bit, so scans skip this
    // slot either way — but detach runs from TLS teardown, concurrent
    // with everything, and overwriting the word here would (a) destroy
    // the release store the epoch-advance scan synchronizes with and
    // (b) make the value that scan observes depend on OS thread-exit
    // timing, which the deterministic replayer cannot tolerate. The
    // next owner's first guard entry overwrites it with an exchange
    // without ever reading it.
    VBL_ASSERT((Record->Announce.load(std::memory_order_relaxed) & 1) == 0,
               "thread detached with active announce bit set");
    Record->Depth = 0;
    Record->LastWord = 0;
    Record->InUse.store(false, std::memory_order_release);
  }

  /// Tries to advance the global epoch, then frees everything in
  /// \p Record that became safe. Returns true if anything was freed.
  bool collect(ThreadRecord *Record) {
    tryAdvanceEpoch();
    const uint64_t Global = GlobalEpoch.load(std::memory_order_acquire);
    // Retired in epoch e, safe once Global >= e + 2: every reader active
    // now announced at least e + 1 > e after the unlink became visible.
    const size_t Before = Record->RetireList.size();
    freeSafe(Record->RetireList, Global - 2);
    return Record->RetireList.size() != Before;
  }

  bool tryAdvanceEpoch() {
    const uint64_t Current =
        Policy::read(GlobalEpoch, std::memory_order_seq_cst, &GlobalEpoch,
                     MemField::Epoch);
    const uint32_t HW = HighWater.load(std::memory_order_acquire);
    for (uint32_t I = 0; I != HW; ++I) {
      ThreadRecord &Record = Records[I];
      // Policy-visible read of EVERY slot up to the high-water mark,
      // even detached ones: reading the announce word a guard exit
      // release-stored is the edge that orders that reader's critical
      // section before any free (and pool recycle) this advance
      // enables. Skipping detached slots before this read would make
      // both the edge and the traced event stream depend on OS thread
      // exit timing, which the deterministic replayer cannot tolerate.
      const uint64_t Word =
          Policy::read(Record.Announce, std::memory_order_seq_cst, &Record,
                       MemField::Epoch);
      // Once a slot is reclaimed by a new thread, the word read above
      // may no longer be the departed reader's release store. The
      // acquire load of the ownership flag restores the chain for that
      // case (exit -> detach releases InUse -> claim acquires -> here);
      // the value is irrelevant, only the synchronization is.
      (void)Record.InUse.load(std::memory_order_acquire);
      if ((Word & 1) == 0)
        continue; // Not inside a guard (or slot unused/detached).
      if ((Word >> 1) != Current) {
        // A reader still sits in an older epoch: reclamation is pinned.
        // The lag histogram records how far behind it is.
        stats::bump(stats::Counter::EpochStalls);
        stats::histogramAdd(stats::Histogram::EpochLag,
                            Current - (Word >> 1));
        return false;
      }
    }
    uint64_t Expected = Current;
    if (Policy::casStrong(GlobalEpoch, Expected, Current + 1,
                          std::memory_order_acq_rel, &GlobalEpoch,
                          MemField::Epoch))
      stats::bump(stats::Counter::EpochAdvances);
    // Either we advanced or someone else did; both count as progress.
    return true;
  }

  void freeSafe(std::vector<RetiredPtr> &List, uint64_t SafeEpoch) {
    size_t Kept = 0;
    uint64_t FreedHere = 0;
    for (size_t I = 0, E = List.size(); I != E; ++I) {
      if (List[I].Epoch <= SafeEpoch) {
        List[I].Deleter(List[I].Ptr);
        ++FreedHere;
        continue;
      }
      List[Kept++] = List[I];
    }
    List.resize(Kept);
    if (FreedHere) {
      Freed.fetch_add(FreedHere, std::memory_order_relaxed);
      stats::bump(stats::Counter::EpochFreed, FreedHere);
    }
  }

  const uint64_t DomainId;
  alignas(CacheLineBytes) std::atomic<uint64_t> GlobalEpoch{2};
  std::atomic<uint32_t> HighWater{0}; ///< One past the highest slot used.
  std::atomic<uint64_t> Freed{0};
  std::atomic<uint64_t> Retired{0};
  std::vector<ThreadRecord> Records;

  /// Retire lists of threads that exited while the domain lives on.
  std::mutex OrphanMutex;
  std::vector<RetiredPtr> Orphans;

public:
  /// RAII read-side critical section. Entering pins the current global
  /// epoch for this thread; nodes unlinked before entry may be freed,
  /// nodes unlinked after entry will not be freed until exit.
  class Guard {
  public:
    explicit Guard(BasicEpochDomain &Domain)
        : Domain(Domain), Record(Domain.attachCurrentThread()) {
      if (Record->Depth != 0) {
        // Nested guard: the outermost entry already announced.
        ++Record->Depth;
        return;
      }
      Record->Depth = 1;
      uint64_t Epoch =
          Policy::read(Domain.GlobalEpoch, std::memory_order_acquire,
                       &Domain.GlobalEpoch, MemField::Epoch);
      uint64_t Word = (Epoch << 1) | 1;
      // One fence-bearing RMW publishes both the active bit and the
      // epoch (the first implementation paid two seq_cst stores here).
      Policy::exchange(Record->Announce, Word, std::memory_order_seq_cst,
                       Record, MemField::Epoch);
      if (Word == Record->LastWord)
        // The global epoch has not moved since this thread's previous
        // guard, so the validation below cannot observe anything new:
        // re-announcing the identical word pins exactly what the
        // previous guard pinned. This is the hot-loop fast path.
        return;
      // An advance may have slipped between the epoch read and the
      // exchange. Re-announce until the announced epoch matches a
      // global-epoch read made *after* the announcement fence; on exit
      // at most one concurrent advance can have missed us, which the
      // retire grace period (e + 2) absorbs.
      for (;;) {
        const uint64_t Now =
            Policy::read(Domain.GlobalEpoch, std::memory_order_seq_cst,
                         &Domain.GlobalEpoch, MemField::Epoch);
        if (Now == Epoch)
          break;
        Epoch = Now;
        Word = (Epoch << 1) | 1;
        Policy::exchange(Record->Announce, Word, std::memory_order_seq_cst,
                         Record, MemField::Epoch);
      }
      Record->LastWord = Word;
    }

    ~Guard() {
      VBL_ASSERT(Record->Depth > 0, "guard exit without matching entry");
      if (--Record->Depth != 0)
        return;
      // Clear only the active bit, keeping the epoch for the next
      // entry's skip check. Release so the epoch-advancer observing the
      // cleared bit also observes every read this critical section
      // performed as complete — the edge that makes a subsequent node
      // recycle race-free.
      Policy::write(Record->Announce, Record->LastWord & ~uint64_t(1),
                    std::memory_order_release, Record, MemField::Epoch);
    }

    Guard(const Guard &) = delete;
    Guard &operator=(const Guard &) = delete;

  private:
    [[maybe_unused]] BasicEpochDomain &Domain;
    ThreadRecord *Record;
  };

  friend class Guard;
};

/// The production EBR domain (direct, untraced accesses). Explicitly
/// instantiated in EpochDomain.cpp.
using EpochDomain = BasicEpochDomain<DirectPolicy>;

} // namespace reclaim
} // namespace vbl

#endif // VBL_RECLAIM_EPOCHDOMAIN_H
