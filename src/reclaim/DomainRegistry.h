//===- reclaim/DomainRegistry.h - Thread/domain attachment bookkeeping ---===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for reclamation domains that hand out per-thread
/// records. Two lifetime problems are solved here once:
///
///  1. A thread exits while still attached to a domain: its thread-local
///     registry must hand the record back — but only if the domain is
///     still alive.
///  2. A domain dies, then a new domain is allocated at the same address:
///     stale thread-local entries must not match it. Every domain gets a
///     never-reused 64-bit id.
///
/// The global mutex is taken only on attach, detach, domain construction
/// and destruction — never on the guard fast path.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_RECLAIM_DOMAINREGISTRY_H
#define VBL_RECLAIM_DOMAINREGISTRY_H

#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <vector>

namespace vbl {
namespace reclaim {

/// Callback a domain supplies so an exiting thread can return its record.
/// Runs under the registry mutex with the domain confirmed alive.
using DetachFn = void (*)(void *Domain, void *Record);

namespace detail {

struct RegistryState {
  std::mutex Mutex;
  std::unordered_set<uint64_t> LiveDomains;
  uint64_t NextDomainId = 1;
};

inline RegistryState &registryState() {
  // Function-local static: constructed on first use, so no global
  // constructor ordering issues (per LLVM's static-constructor rule).
  static RegistryState State;
  return State;
}

struct TlsEntry {
  uint64_t DomainId;
  void *Domain;
  void *Record;
  DetachFn Detach;
};

struct TlsRegistry {
  std::vector<TlsEntry> Entries;

  ~TlsRegistry() {
    RegistryState &State = registryState();
    std::lock_guard<std::mutex> Lock(State.Mutex);
    for (const TlsEntry &Entry : Entries)
      if (State.LiveDomains.count(Entry.DomainId))
        Entry.Detach(Entry.Domain, Entry.Record);
  }
};

inline TlsRegistry &tlsRegistry() {
  thread_local TlsRegistry Registry;
  return Registry;
}

} // namespace detail

/// Registers a newborn domain; returns its unique id.
inline uint64_t registerDomain() {
  detail::RegistryState &State = detail::registryState();
  std::lock_guard<std::mutex> Lock(State.Mutex);
  const uint64_t Id = State.NextDomainId++;
  State.LiveDomains.insert(Id);
  return Id;
}

/// Marks a domain dead. After this returns, no exiting thread will call
/// back into it.
inline void unregisterDomain(uint64_t Id) {
  detail::RegistryState &State = detail::registryState();
  std::lock_guard<std::mutex> Lock(State.Mutex);
  State.LiveDomains.erase(Id);
}

/// Looks up this thread's record for \p DomainId, or null if the thread
/// has never attached to that domain.
inline void *findThreadRecord(uint64_t DomainId) {
  for (const detail::TlsEntry &Entry : detail::tlsRegistry().Entries)
    if (Entry.DomainId == DomainId)
      return Entry.Record;
  return nullptr;
}

/// Remembers that this thread holds \p Record of \p Domain so the record
/// is returned when the thread exits.
inline void rememberThreadRecord(uint64_t DomainId, void *Domain,
                                 void *Record, DetachFn Detach) {
  detail::tlsRegistry().Entries.push_back({DomainId, Domain, Record, Detach});
}

/// Forgets any record this thread holds for \p DomainId (used by domains
/// that reclaim records eagerly in their destructor).
inline void forgetThreadRecord(uint64_t DomainId) {
  auto &Entries = detail::tlsRegistry().Entries;
  for (size_t I = 0; I != Entries.size(); ++I) {
    if (Entries[I].DomainId != DomainId)
      continue;
    Entries[I] = Entries.back();
    Entries.pop_back();
    return;
  }
}

} // namespace reclaim
} // namespace vbl

#endif // VBL_RECLAIM_DOMAINREGISTRY_H
