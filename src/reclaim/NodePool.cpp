//===- reclaim/NodePool.cpp - Per-thread size-class node recycler --------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "reclaim/NodePool.h"

#include "stats/Stats.h"
#include "support/Compiler.h"

#include <cstdlib>
#include <mutex>
#include <unordered_set>
#include <vector>

using namespace vbl;
using namespace vbl::reclaim;

namespace {

/// Intrusive free-list link living in the block's first word. Every
/// pooled class is at least 32 bytes, so the link always fits.
struct FreeBlock {
  FreeBlock *Next;
};

constexpr size_t classSize(unsigned Class) {
  return NodePool::MinBlockBytes << Class;
}

/// Header at the start of every slab, occupying the first block slot of
/// the slab's class (32 bytes fit even the smallest class). Because
/// slabs are SlabBytes-aligned, any block finds its header by masking.
///
/// Keeping each slab's free blocks on the slab's own list — instead of
/// one process-global list per class — is a locality decision, not a
/// bookkeeping one: a global LIFO shuffles blocks from every slab ever
/// carved, so after enough churn a refill hands a thread 32 blocks on
/// 32 different pages and a 512-node list ends up TLB-missing on every
/// hop. Slab-local lists make every refill batch land within one 16 KiB
/// region, so lists stay compact no matter how long the process churns.
struct SlabHeader {
  FreeBlock *Free = nullptr;
  SlabHeader *NextPartial = nullptr;
  uint32_t FreeCount = 0;
  uint32_t Class = 0;
  bool InPartialList = false;
};

static_assert(sizeof(SlabHeader) <= NodePool::MinBlockBytes,
              "slab header must fit the smallest block slot");

SlabHeader *slabOf(void *Block) {
  return reinterpret_cast<SlabHeader *>(reinterpret_cast<uintptr_t>(Block) &
                                        ~(NodePool::SlabBytes - 1));
}

/// Heap round-trips with the alignment-correct operator new/delete pair
/// (the aligned forms must be matched exactly).
void *alignedNew(size_t Bytes, size_t Align) {
  if (Align > __STDCPP_DEFAULT_NEW_ALIGNMENT__)
    return ::operator new(Bytes, std::align_val_t(Align));
  return ::operator new(Bytes);
}

void alignedDelete(void *Ptr, size_t Align) {
  if (Align > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
    ::operator delete(Ptr, std::align_val_t(Align));
    return;
  }
  ::operator delete(Ptr);
}

/// Shared pool state. Allocated once and never destroyed: thread-cache
/// destructors run during TLS teardown, which the C++ runtime may order
/// after any static destructor, and the leaked spine keeps every slab
/// (and therefore every block) reachable for LeakSanitizer.
struct GlobalState {
  std::mutex Mutex;
  /// Per-class stack of slabs that still have free blocks. Stack order
  /// means a refill prefers the slab that most recently received frees
  /// — warm pages first.
  SlabHeader *Partial[NodePool::NumClasses] = {};
  /// Exhaustion-minted single blocks (no surrounding slab). Only ever
  /// populated when the test hook caps slab growth.
  FreeBlock *FallbackFree[NodePool::NumClasses] = {};
  /// Slab base pointers; membership distinguishes slab blocks from
  /// fallback blocks on the donation path (a fallback block's masked
  /// base is not a slab and must not be dereferenced).
  std::unordered_set<void *> SlabSet;
  std::vector<void *> Slabs;
  size_t SlabBytesLive = 0;
  size_t SlabByteLimit = 0; // 0 = unlimited; test hook.
  /// Counters maintained under Mutex, plus the flushed fast-path
  /// counters of threads that have exited.
  uint64_t SlabsCarved = 0;
  uint64_t GlobalRefills = 0;
  uint64_t BlocksDonated = 0;
  uint64_t FallbackBlocks = 0;
  uint64_t DeadPoolAllocs = 0;
  uint64_t DeadPoolFrees = 0;
};

GlobalState &global() {
  static GlobalState *State = new GlobalState();
  return *State;
}

/// Bypass / oversize traffic can run on any thread without a cache, so
/// these two are process-global.
std::atomic<uint64_t> HeapAllocCount{0};
std::atomic<uint64_t> HeapFreeCount{0};

std::atomic<int> &bypassDepth() {
  static std::atomic<int> Depth{0};
  return Depth;
}

void pushPartial(GlobalState &G, SlabHeader *Slab) {
  if (Slab->InPartialList)
    return;
  Slab->NextPartial = G.Partial[Slab->Class];
  G.Partial[Slab->Class] = Slab;
  Slab->InPartialList = true;
}

/// Returns a donated block to its home slab (or the fallback list).
/// Caller holds G.Mutex.
void globalFree(GlobalState &G, FreeBlock *Block, unsigned Class) {
  SlabHeader *Slab = slabOf(Block);
  if (VBL_UNLIKELY(G.SlabSet.count(Slab) == 0)) {
    // Exhaustion-minted block: no slab around it.
    Block->Next = G.FallbackFree[Class];
    G.FallbackFree[Class] = Block;
    return;
  }
  Block->Next = Slab->Free;
  Slab->Free = Block;
  ++Slab->FreeCount;
  pushPartial(G, Slab);
}

/// Carves a fresh slab for \p Class and pushes it on the partial stack.
/// Caller holds G.Mutex. Returns false when the slab byte limit forbids
/// growth.
bool carveSlab(GlobalState &G, unsigned Class) {
  if (G.SlabByteLimit != 0 &&
      G.SlabBytesLive + NodePool::SlabBytes > G.SlabByteLimit)
    return false;
  // Self-aligned so blocks can mask their way back to the header.
  void *Base = alignedNew(NodePool::SlabBytes, NodePool::SlabBytes);
  G.Slabs.push_back(Base);
  G.SlabSet.insert(Base);
  G.SlabBytesLive += NodePool::SlabBytes;
  ++G.SlabsCarved;
  auto *Slab = ::new (Base) SlabHeader();
  Slab->Class = Class;
  const size_t Size = classSize(Class);
  char *Bytes = static_cast<char *>(Base);
  // The first block slot holds the header; blocks start one class size
  // in, which also keeps every block class-size-aligned within the
  // self-aligned slab.
  for (size_t Offset = Size; Offset + Size <= NodePool::SlabBytes;
       Offset += Size) {
    auto *Block = reinterpret_cast<FreeBlock *>(Bytes + Offset);
    Block->Next = Slab->Free;
    Slab->Free = Block;
    ++Slab->FreeCount;
  }
  pushPartial(G, Slab);
  return true;
}

/// Per-thread cache: one intrusive free list per class, no shared state
/// on the fast path. The destructor donates everything to the global
/// pool, so a thread's exit never strands blocks.
struct ThreadCache {
  FreeBlock *Lists[NodePool::NumClasses] = {};
  size_t Counts[NodePool::NumClasses] = {};
  uint64_t PoolAllocs = 0;
  uint64_t PoolFrees = 0;

  ~ThreadCache() {
    GlobalState &G = global();
    std::lock_guard<std::mutex> Lock(G.Mutex);
    for (unsigned Class = 0; Class != NodePool::NumClasses; ++Class) {
      while (FreeBlock *Block = Lists[Class]) {
        Lists[Class] = Block->Next;
        globalFree(G, Block, Class);
      }
      G.BlocksDonated += Counts[Class];
      Counts[Class] = 0;
    }
    G.DeadPoolAllocs += PoolAllocs;
    G.DeadPoolFrees += PoolFrees;
  }
};

ThreadCache &cache() {
  thread_local ThreadCache Cache;
  return Cache;
}

} // namespace

void *NodePool::allocateImpl(unsigned Class, bool &FromGlobal) {
  ThreadCache &C = cache();
  if (FreeBlock *Block = C.Lists[Class]) {
    // Fast path: LIFO pop — the most recently freed (cache-warmest)
    // block of this class, no lock, no heap.
    C.Lists[Class] = Block->Next;
    --C.Counts[Class];
    ++C.PoolAllocs;
    stats::bump(stats::Counter::PoolHits);
    return Block;
  }

  GlobalState &G = global();
  std::lock_guard<std::mutex> Lock(G.Mutex);
  if (G.Partial[Class] == nullptr && G.FallbackFree[Class] == nullptr) {
    if (!carveSlab(G, Class)) {
      // Exhaustion fallback: mint one heap block of exactly the class
      // size. It recycles through the free lists forever; the donation
      // path recognizes it by its masked base not being a slab.
      ++G.FallbackBlocks;
      ++C.PoolAllocs;
      return alignedNew(classSize(Class), CacheLineBytes);
    }
  } else {
    // Pre-owned blocks: their previous lives must be ordered before our
    // reuse; the caller pairs this with an acquire of the transfer
    // beacon.
    FromGlobal = true;
  }
  ++G.GlobalRefills;
  stats::bump(stats::Counter::PoolMisses);
  // Refill from ONE slab: the whole batch lands within a single 16 KiB
  // region, so the nodes built from it stay page-local no matter how
  // shuffled the rest of the pool is.
  FreeBlock *First = nullptr;
  size_t Moved = 0;
  if (SlabHeader *Slab = G.Partial[Class]) {
    First = Slab->Free;
    Slab->Free = First->Next;
    --Slab->FreeCount;
    while (Moved < TransferBatch - 1 && Slab->Free) {
      FreeBlock *Block = Slab->Free;
      Slab->Free = Block->Next;
      --Slab->FreeCount;
      Block->Next = C.Lists[Class];
      C.Lists[Class] = Block;
      ++C.Counts[Class];
      ++Moved;
    }
    if (Slab->FreeCount == 0) {
      G.Partial[Class] = Slab->NextPartial;
      Slab->NextPartial = nullptr;
      Slab->InPartialList = false;
    }
  } else {
    // Only reachable under the test-hook slab cap: recycle
    // exhaustion-minted blocks.
    First = G.FallbackFree[Class];
    G.FallbackFree[Class] = First->Next;
    while (Moved < TransferBatch - 1 && G.FallbackFree[Class]) {
      FreeBlock *Block = G.FallbackFree[Class];
      G.FallbackFree[Class] = Block->Next;
      Block->Next = C.Lists[Class];
      C.Lists[Class] = Block;
      ++C.Counts[Class];
      ++Moved;
    }
  }
  ++C.PoolAllocs;
  return First;
}

void NodePool::deallocateImpl(void *Ptr, unsigned Class, bool &ToGlobal) {
  ThreadCache &C = cache();
  if (VBL_UNLIKELY(C.Counts[Class] >= CacheCapPerClass)) {
    // Cache full: overflow a batch to the global pool so one churning
    // thread cannot hoard every block of a class.
    GlobalState &G = global();
    std::lock_guard<std::mutex> Lock(G.Mutex);
    for (size_t Moved = 0; Moved != TransferBatch && C.Lists[Class];
         ++Moved) {
      FreeBlock *Block = C.Lists[Class];
      C.Lists[Class] = Block->Next;
      --C.Counts[Class];
      globalFree(G, Block, Class);
      ++G.BlocksDonated;
    }
    ToGlobal = true;
  }
  auto *Block = static_cast<FreeBlock *>(Ptr);
  Block->Next = C.Lists[Class];
  C.Lists[Class] = Block;
  ++C.Counts[Class];
  ++C.PoolFrees;
}

void *NodePool::bypassAllocate(size_t Bytes, size_t Align) {
  HeapAllocCount.fetch_add(1, std::memory_order_relaxed);
  stats::bump(stats::Counter::PoolBypass);
  return alignedNew(Bytes, Align);
}

void NodePool::bypassDeallocate(void *Ptr, size_t /*Bytes*/, size_t Align) {
  HeapFreeCount.fetch_add(1, std::memory_order_relaxed);
  alignedDelete(Ptr, Align);
}

void *NodePool::oversizeAllocate(size_t Bytes, size_t Align) {
  HeapAllocCount.fetch_add(1, std::memory_order_relaxed);
  stats::bump(stats::Counter::PoolBypass);
  return alignedNew(Bytes, Align);
}

void NodePool::oversizeDeallocate(void *Ptr, size_t /*Bytes*/,
                                  size_t Align) {
  HeapFreeCount.fetch_add(1, std::memory_order_relaxed);
  alignedDelete(Ptr, Align);
}

bool NodePool::bypassed() {
#ifdef VBL_POOL_BYPASS
  return true;
#else
  // Environment switch, sampled once: flipping it mid-process would
  // split object lifetimes across allocation modes.
  static const bool EnvBypass = [] {
    const char *Value = std::getenv("VBL_POOL_BYPASS");
    return Value && *Value && !(Value[0] == '0' && Value[1] == '\0');
  }();
  if (VBL_UNLIKELY(EnvBypass))
    return true;
  return bypassDepth().load(std::memory_order_relaxed) > 0;
#endif
}

NodePool::ScopedBypass::ScopedBypass() {
  bypassDepth().fetch_add(1, std::memory_order_relaxed);
}

NodePool::ScopedBypass::~ScopedBypass() {
  bypassDepth().fetch_sub(1, std::memory_order_relaxed);
}

std::atomic<uint64_t> &NodePool::transferBeacon() {
  static std::atomic<uint64_t> Beacon{0};
  return Beacon;
}

NodePool::Stats NodePool::stats() {
  Stats S;
  ThreadCache &C = cache();
  GlobalState &G = global();
  {
    std::lock_guard<std::mutex> Lock(G.Mutex);
    S.SlabsCarved = G.SlabsCarved;
    S.GlobalRefills = G.GlobalRefills;
    S.BlocksDonated = G.BlocksDonated;
    S.FallbackBlocks = G.FallbackBlocks;
    S.PoolAllocs = G.DeadPoolAllocs;
    S.PoolFrees = G.DeadPoolFrees;
  }
  // Only the calling thread's live cache is visible without racing;
  // other running threads' fast-path counters fold in when they exit.
  S.PoolAllocs += C.PoolAllocs;
  S.PoolFrees += C.PoolFrees;
  S.HeapAllocs = HeapAllocCount.load(std::memory_order_relaxed);
  S.HeapFrees = HeapFreeCount.load(std::memory_order_relaxed);
  return S;
}

size_t NodePool::liveSlabBytes() {
  GlobalState &G = global();
  std::lock_guard<std::mutex> Lock(G.Mutex);
  return G.SlabBytesLive;
}

void NodePool::setSlabByteLimitForTest(size_t Limit) {
  GlobalState &G = global();
  std::lock_guard<std::mutex> Lock(G.Mutex);
  G.SlabByteLimit = Limit;
}
