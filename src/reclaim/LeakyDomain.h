//===- reclaim/LeakyDomain.h - No-op reclamation --------------------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "no memory management" domain: retire() leaks. This reproduces the
/// paper's own C++ translations, which the technical report evaluates
/// *without* memory management, and serves as the zero-overhead baseline
/// in the reclamation benchmark. Unlinked nodes stay allocated forever,
/// which also makes wait-free traversals trivially safe.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_RECLAIM_LEAKYDOMAIN_H
#define VBL_RECLAIM_LEAKYDOMAIN_H

#include <atomic>
#include <cstdint>

namespace vbl {
namespace reclaim {

/// Satisfies the same Reclaimer shape as EpochDomain but never frees.
/// The destructor does not free retired nodes either: a leaked node may
/// still be referenced through another leaked node's next pointer, so
/// freeing at destruction would require tracing. Tests that care about
/// leaks use TrackingDomain instead.
class LeakyDomain {
public:
  class Guard {
  public:
    explicit Guard(LeakyDomain &) {}
    Guard(const Guard &) = delete;
    Guard &operator=(const Guard &) = delete;
  };

  template <class T> void retire(T * /*Ptr*/) {
    RetiredCount.fetch_add(1, std::memory_order_relaxed);
  }

  void retireRaw(void *, void (*)(void *)) {
    RetiredCount.fetch_add(1, std::memory_order_relaxed);
  }

  void collectAll() {}

  uint64_t retiredCount() const {
    return RetiredCount.load(std::memory_order_relaxed);
  }
  uint64_t freedCount() const { return 0; }

private:
  std::atomic<uint64_t> RetiredCount{0};
};

} // namespace reclaim
} // namespace vbl

#endif // VBL_RECLAIM_LEAKYDOMAIN_H
