//===- reclaim/VbrDomain.h - Version-based memory reclamation ------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Version-based reclamation (VBR, Sheffi/Herlihy/Petrank — PAPERS.md):
/// the fourth reclamation domain next to EBR, HP and leaky. Where EBR
/// buys safety with grace periods (a retired block is quarantined until
/// every possible reader has left its critical section), VBR reuses a
/// retired block *immediately* and instead makes readers detect that
/// the memory under them changed incarnation:
///
///  - The domain owns a version clock. Every operation records the
///    clock at its start (the Guard's start version `s`).
///  - Every block carries a birth epoch and a retire epoch in a header
///    line in front of the node. retire() stamps the clock into the
///    retire epoch and pushes the block onto a free list; a later
///    allocation revives the block in place and stamps a birth epoch
///    strictly greater than the retire epoch (bumping the clock when
///    the two would collide).
///  - A reader validates after reading a node's fields that the node's
///    birth epoch is <= s. Reuse during the operation forces birth > s
///    (the block it could reach was retired at >= s, and revival stamps
///    past the retire epoch), so the stale read is always caught; the
///    reader refreshes s and restarts. First-incarnation blocks keep
///    birth 0 and are never rejected — the clock only moves on
///    retire/reuse collisions, so rejects are as rare as same-epoch
///    block turnarounds.
///
/// Memory is *type-stable*: blocks come from the NodePool, are revived
/// in place (no destructor, no placement-new after the first
/// incarnation — revival re-stamps fields through atomic release
/// stores so a straggling reader's acquire loads are ordered, never
/// racing), and return to the pool only when the domain is destroyed.
///
/// Why revival must not placement-new: a stale reader may load a field
/// of the old incarnation concurrently with the revival. Constructor
/// writes are plain — a genuine C++ data race, and exactly what the
/// happens-before race detector flags. Release-storing each field over
/// the still-alive previous object keeps every conflicting pair atomic
/// (the detector's clean-pair rule) and gives the ordering the birth
/// check needs: a reader that observes a revived field value acquired
/// the release chain through the field store, which the birth stamp
/// precedes — so the reader's birth validation cannot miss the new
/// epoch.
///
/// The read-side cost profile is the domain's point: a Guard is one
/// acquire load of the clock (EBR pays a fence-bearing seq_cst
/// exchange per operation), retirement is one release store plus a
/// thread-local free-list push, and reuse hands back a cache-warm
/// block with no grace period — the properties that close the gap to
/// the leaky domain on update-heavy workloads (EXPERIMENTS.md).
///
/// retireRaw (the type-erased hook the split-ordered hash layer uses
/// for displaced bucket-index segments) cannot be version-checked —
/// the caller's readers do not run the birth protocol — so those
/// retirees are parked and freed only at domain teardown. Displaced
/// index segments form a geometric series bounded by the final index
/// size, so the retention is bounded.
///
/// The domain is templated on the access policy like BasicEpochDomain:
/// clock reads, birth/retire stamps and the clock-bump CAS are policy-
/// mediated (MemField::Epoch), so instantiating with
/// sched::AnalyzedPolicy lets the deterministic scheduler drive
/// recycle-vs-traversal and stamp-vs-validate interleavings and the
/// race detector prove the revival protocol clean. Free lists and the
/// overflow mutex are private bookkeeping, exactly like EBR's retire
/// lists.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_RECLAIM_VBRDOMAIN_H
#define VBL_RECLAIM_VBRDOMAIN_H

#include "reclaim/DomainRegistry.h"
#include "reclaim/NodePool.h"
#include "stats/Stats.h"
#include "support/Compiler.h"
#include "sync/Policy.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <new>
#include <type_traits>
#include <vector>

namespace vbl {
namespace reclaim {

/// An independent VBR instance. Each concurrent set owns one; threads
/// attach lazily on first allocation/retirement and detach (donating
/// their free lists) at thread exit.
template <class PolicyT = DirectPolicy> class BasicVbrDomain {
public:
  using Policy = PolicyT;

  /// Marker the lists' IsVersionedDomain trait detects: structures built
  /// over this domain must run the birth-check read protocol.
  struct VersionedReclaimTag {};

  /// Upper bound on concurrently attached threads (slots recycle).
  static constexpr unsigned MaxThreads = 512;
  /// One header line in front of every node keeps the node's own
  /// alignment (NodeAlignBytes == CacheLineBytes) intact.
  static constexpr size_t HeaderBytes = CacheLineBytes;
  /// All VBR blocks are line-aligned: the pool's class ladder then
  /// guarantees the node at +HeaderBytes is line-aligned too.
  static constexpr size_t BlockAlign = CacheLineBytes;
  /// Per-thread, per-class free-list bound; past it blocks spill to the
  /// shared overflow so one churning thread cannot hoard every block.
  static constexpr size_t CacheCapPerClass = 128;
  /// Blocks moved per local<->shared transfer, amortizing the mutex.
  static constexpr size_t TransferBatch = 32;

  /// The per-block epoch header. Lives at the block base; the node
  /// starts at +HeaderBytes. Birth/Retire are policy-visible (a stale
  /// reader's birth validation races with revival by design); the
  /// free-list link and size are touched only by the block's current
  /// owner (or under the overflow mutex) while no reader can read them.
  struct alignas(CacheLineBytes) BlockHeader {
    std::atomic<uint64_t> Birth{0};
    std::atomic<uint64_t> Retire{0};
    BlockHeader *FreeNext = nullptr;
    uint32_t BlockBytes = 0;
  };
  static_assert(sizeof(BlockHeader) <= HeaderBytes,
                "the epoch header must fit its reserved line");

  BasicVbrDomain() : DomainId(registerDomain()), Records(MaxThreads) {}

  ~BasicVbrDomain() {
    // After this call no exiting thread will touch this domain again.
    unregisterDomain(DomainId);
    // Type-stability ends here: every recycled block goes back to the
    // pool. Blocks still owned by the data structure were disposed by
    // its destructor before the domain member is destroyed.
    for (ThreadRecord &Record : Records)
      for (unsigned C = 0; C != NodePool::NumClasses; ++C)
        freeChain(Record.Free[C]);
    {
      std::lock_guard<std::mutex> Lock(SharedMutex);
      for (unsigned C = 0; C != NodePool::NumClasses; ++C)
        freeChain(Shared[C].Head);
    }
    std::lock_guard<std::mutex> Lock(RawMutex);
    for (const RawRetiree &R : RawRetirees)
      R.Deleter(R.Ptr);
    RawRetirees.clear();
  }

  BasicVbrDomain(const BasicVbrDomain &) = delete;
  BasicVbrDomain &operator=(const BasicVbrDomain &) = delete;

  /// Maps a node pointer back to its epoch header.
  static BlockHeader *headerOf(const void *NodePtr) {
    return reinterpret_cast<BlockHeader *>(
        reinterpret_cast<uintptr_t>(NodePtr) - HeaderBytes);
  }

  /// The read-protocol check: true iff \p NodePtr's current incarnation
  /// began at or before \p Version. Wrap-aware (signed distance), so the
  /// clock may roll over u64 without ever mistaking an old birth for a
  /// new one. Read AFTER the node fields it certifies: field loads are
  /// acquire and revival stamps birth before re-storing fields, so a
  /// revived field value implies a visible new birth.
  bool validAt(const void *NodePtr, uint64_t Version) const {
    const BlockHeader *H = headerOf(NodePtr);
    const uint64_t B = Policy::read(H->Birth, std::memory_order_acquire, H,
                                    MemField::Epoch);
    // Birth 0 is a first incarnation, accepted at ANY version: its
    // fields were fully written before the publishing link swing, so no
    // reader can observe them half-revived. The unconditional accept
    // also keeps fresh blocks valid when the clock sits in the upper
    // signed half (the distance test alone would read 0 as "after the
    // wrap"). Revivals never stamp 0 — the clock bump skips it.
    return B == 0 || static_cast<int64_t>(B - Version) <= 0;
  }

  /// Allocates a block able to hold a T. Fresh == true: virgin memory,
  /// the caller placement-news. Fresh == false: the previous
  /// incarnation's T is still alive in place (never destructed) and the
  /// caller must revive it by release-storing every field; the birth
  /// epoch is already stamped (release) so those stores publish it.
  template <class T> void *allocBlockFor(bool &Fresh) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "VBR blocks are revived in place and freed raw; node "
                  "types must be trivially destructible");
    static_assert(alignof(T) <= BlockAlign,
                  "nodes may not demand more than line alignment");
    static_assert(HeaderBytes + sizeof(T) <= NodePool::MaxBlockBytes,
                  "VBR nodes must stay poolable");
    const int Class =
        NodePool::sizeClassFor(HeaderBytes + sizeof(T), BlockAlign);
    VBL_ASSERT(Class >= 0, "VBR block exceeds the pooled size classes");
    ThreadRecord *Record = attachCurrentThread();
    BlockHeader *H = popLocal(Record, static_cast<unsigned>(Class));
    if (H) {
      Fresh = false;
      stampBirth(H);
      Reused.fetch_add(1, std::memory_order_relaxed);
      stats::bump(stats::Counter::VbrReused);
      return reinterpret_cast<char *>(H) + HeaderBytes;
    }
    Fresh = true;
    void *Mem =
        NodePool::allocate<Policy>(HeaderBytes + sizeof(T), BlockAlign);
    BlockHeader *NewH = ::new (Mem) BlockHeader();
    NewH->BlockBytes = static_cast<uint32_t>(HeaderBytes + sizeof(T));
    // Birth stays 0: a first incarnation can never be stale, so every
    // reader accepts it and the clock is untouched by fresh churn.
    stats::bump(stats::Counter::VbrFreshAllocs);
    return static_cast<char *>(Mem) + HeaderBytes;
  }

  /// Retires an unlinked node: stamp the retire epoch (release — the
  /// reuse path acquires it through the free list handoff) and make the
  /// block immediately reusable. No destructor runs, ever: straggling
  /// readers may still load the node's fields, which stay valid until
  /// revival re-stamps them.
  template <class T> void retireNode(T *Ptr) {
    VBL_ASSERT(Ptr, "retiring null");
    BlockHeader *H = headerOf(Ptr);
    const uint64_t C = Policy::read(Clock, std::memory_order_acquire, &Clock,
                                    MemField::Epoch);
    Policy::write(H->Retire, C, std::memory_order_release, H,
                  MemField::Epoch);
    Retired.fetch_add(1, std::memory_order_relaxed);
    stats::bump(stats::Counter::VbrRetired);
    pushLocal(attachCurrentThread(), classOf(H), H);
  }

  /// Returns a never-published node (a speculative insert that lost).
  /// No retire stamp: the block was unreachable in this incarnation, so
  /// the previous incarnation's retire epoch still bounds every reader
  /// that could hold the memory.
  template <class T> void abandonNode(T *Ptr) {
    if (!Ptr)
      return;
    BlockHeader *H = headerOf(Ptr);
    pushLocal(attachCurrentThread(), classOf(H), H);
  }

  /// Teardown-only (data-structure destructor, quiescent): hand the
  /// block straight back to the pool.
  template <class T> void disposeNode(T *Ptr) {
    if (!Ptr)
      return;
    BlockHeader *H = headerOf(Ptr);
    const size_t Bytes = H->BlockBytes;
    H->~BlockHeader();
    NodePool::deallocate<Policy>(H, Bytes, BlockAlign);
  }

  /// Type-erased retire for adapters (the split-ordered hash layer's
  /// bucket-index segments). Such memory carries no epoch header and
  /// its readers run no birth checks, so it is parked until teardown
  /// (bounded: displaced index segments sum below the final index).
  void retireRaw(void *Ptr, void (*Deleter)(void *)) {
    VBL_ASSERT(Ptr, "retiring null");
    Retired.fetch_add(1, std::memory_order_relaxed);
    stats::bump(stats::Counter::VbrRetired);
    std::lock_guard<std::mutex> Lock(RawMutex);
    RawRetirees.push_back({Ptr, Deleter});
  }

  /// Nothing is deferred in VBR — retirement already made the block
  /// reusable — so the EBR-shaped drain hook is a no-op. (Raw retirees
  /// deliberately wait for teardown; see retireRaw.)
  void collectAll() {}

  /// Observability for tests and the reclamation benchmarks. VBR frees
  /// nothing mid-life, so "freed" reports blocks whose memory was made
  /// reusable again by an in-place revival — the VBR analogue of a
  /// grace-period free.
  uint64_t freedCount() const {
    return Reused.load(std::memory_order_relaxed);
  }
  uint64_t retiredCount() const {
    return Retired.load(std::memory_order_relaxed);
  }
  uint64_t reusedCount() const {
    return Reused.load(std::memory_order_relaxed);
  }

  uint64_t clock() const {
    return Clock.load(std::memory_order_acquire);
  }

  /// Test hook: plants the version clock (e.g. at UINT64_MAX so the
  /// rollover scenarios cross the wrap). Quiescent use only; \p Value
  /// must be nonzero (0 is reserved for first-incarnation births).
  void setClockForTest(uint64_t Value) {
    VBL_ASSERT(Value != 0, "clock value 0 is reserved");
    Clock.store(Value, std::memory_order_release);
  }

  /// RAII read-side section: one acquire load of the clock — the whole
  /// point of VBR versus EBR's fence-bearing announce exchange. The
  /// start version feeds every birth check of the operation; refresh()
  /// is called when a check fails (the operation restarts from a safe
  /// anchor with the newer snapshot).
  class Guard {
  public:
    explicit Guard(BasicVbrDomain &Domain) : Domain(Domain) {
      Version = Policy::read(Domain.Clock, std::memory_order_acquire,
                             &Domain.Clock, MemField::Epoch);
    }

    Guard(const Guard &) = delete;
    Guard &operator=(const Guard &) = delete;

    uint64_t version() const { return Version; }

    /// Re-reads the clock after a birth check rejected a node. Counts
    /// the reject: every refresh is one detected stale read.
    uint64_t refresh() {
      stats::bump(stats::Counter::VbrBirthRejects);
      Version = Policy::read(Domain.Clock, std::memory_order_acquire,
                             &Domain.Clock, MemField::Epoch);
      return Version;
    }

  private:
    BasicVbrDomain &Domain;
    uint64_t Version;
  };

  friend class Guard;

private:
  struct alignas(CacheLineBytes) ThreadRecord {
    /// Slot ownership flag, claimed with CAS on attach.
    std::atomic<bool> InUse{false};
    /// Intrusive LIFO free list per size class. Owner-thread-only.
    std::array<BlockHeader *, NodePool::NumClasses> Free{};
    std::array<uint32_t, NodePool::NumClasses> Count{};
  };

  struct SharedList {
    BlockHeader *Head = nullptr;
    size_t Count = 0;
  };

  struct RawRetiree {
    void *Ptr;
    void (*Deleter)(void *);
  };

  static unsigned classOf(const BlockHeader *H) {
    const int Class = NodePool::sizeClassFor(H->BlockBytes, BlockAlign);
    VBL_ASSERT(Class >= 0, "VBR header names an unpooled block");
    return static_cast<unsigned>(Class);
  }

  /// Revival epoch protocol: ensure birth lands strictly after the
  /// block's retire epoch. Only when the clock still equals the retire
  /// epoch — a same-epoch retire/reuse turnaround — must the clock move;
  /// that bump is what invalidates every reader whose start version
  /// could still reach the old incarnation.
  void stampBirth(BlockHeader *H) {
    const uint64_t R = Policy::read(H->Retire, std::memory_order_acquire, H,
                                    MemField::Epoch);
    uint64_t C = Policy::read(Clock, std::memory_order_acquire, &Clock,
                              MemField::Epoch);
    if (C == R) {
      // The clock skips 0 on rollover: birth 0 is reserved for first
      // incarnations, which validAt accepts unconditionally — a revival
      // stamping 0 would masquerade as one.
      uint64_t Bumped = C + 1;
      if (Bumped == 0)
        Bumped = 1;
      if (Policy::casStrong(Clock, C, Bumped, std::memory_order_acq_rel,
                            &Clock, MemField::Epoch))
        stats::bump(stats::Counter::VbrClockBumps);
      // Either we advanced or a concurrent reviver did; both put the
      // clock past R.
      C = Policy::read(Clock, std::memory_order_acquire, &Clock,
                       MemField::Epoch);
    }
    // Release: the caller's field revival stores are also release, so a
    // reader that acquires any revived field observes this stamp too.
    Policy::write(H->Birth, C, std::memory_order_release, H,
                  MemField::Epoch);
  }

  BlockHeader *popLocal(ThreadRecord *Record, unsigned Class) {
    BlockHeader *H = Record->Free[Class];
    if (!H) {
      refillFromShared(Record, Class);
      H = Record->Free[Class];
      if (!H)
        return nullptr;
    }
    Record->Free[Class] = H->FreeNext;
    H->FreeNext = nullptr;
    --Record->Count[Class];
    return H;
  }

  void pushLocal(ThreadRecord *Record, unsigned Class, BlockHeader *H) {
    H->FreeNext = Record->Free[Class];
    Record->Free[Class] = H;
    if (++Record->Count[Class] >= CacheCapPerClass)
      spillToShared(Record, Class);
  }

  void refillFromShared(ThreadRecord *Record, unsigned Class) {
    std::lock_guard<std::mutex> Lock(SharedMutex);
    SharedList &List = Shared[Class];
    for (size_t I = 0; I != TransferBatch && List.Head; ++I) {
      BlockHeader *H = List.Head;
      List.Head = H->FreeNext;
      --List.Count;
      H->FreeNext = Record->Free[Class];
      Record->Free[Class] = H;
      ++Record->Count[Class];
    }
  }

  void spillToShared(ThreadRecord *Record, unsigned Class) {
    std::lock_guard<std::mutex> Lock(SharedMutex);
    SharedList &List = Shared[Class];
    for (size_t I = 0; I != TransferBatch && Record->Free[Class]; ++I) {
      BlockHeader *H = Record->Free[Class];
      Record->Free[Class] = H->FreeNext;
      --Record->Count[Class];
      H->FreeNext = List.Head;
      List.Head = H;
      ++List.Count;
    }
  }

  void freeChain(BlockHeader *&Head) {
    while (Head) {
      BlockHeader *H = Head;
      Head = H->FreeNext;
      const size_t Bytes = H->BlockBytes;
      H->~BlockHeader();
      NodePool::deallocate<Policy>(H, Bytes, BlockAlign);
    }
  }

  ThreadRecord *attachCurrentThread() {
    // Fast path: per-(thread, domain) record cached in the TLS registry,
    // with a one-entry inline cache in front (see BasicEpochDomain).
    thread_local uint64_t CachedDomainId = 0;
    thread_local ThreadRecord *CachedRecord = nullptr;
    if (CachedDomainId == DomainId)
      return CachedRecord;

    if (void *Known = findThreadRecord(DomainId)) {
      CachedDomainId = DomainId;
      CachedRecord = static_cast<ThreadRecord *>(Known);
      return CachedRecord;
    }

    for (uint32_t I = 0; I != MaxThreads; ++I) {
      ThreadRecord &Record = Records[I];
      bool Expected = false;
      if (!Record.InUse.compare_exchange_strong(Expected, true,
                                                std::memory_order_acq_rel))
        continue;
      rememberThreadRecord(DomainId, this, &Record, &detachTrampoline);
      CachedDomainId = DomainId;
      CachedRecord = &Record;
      return &Record;
    }
    vbl_unreachable("VbrDomain: more than MaxThreads concurrent threads");
  }

  static void detachTrampoline(void *Domain, void *Record) {
    static_cast<BasicVbrDomain *>(Domain)->detach(
        static_cast<ThreadRecord *>(Record));
  }

  /// Thread exit: donate the free lists so no block is stranded in a
  /// dead thread's cache, then release the slot.
  void detach(ThreadRecord *Record) {
    {
      std::lock_guard<std::mutex> Lock(SharedMutex);
      for (unsigned C = 0; C != NodePool::NumClasses; ++C) {
        while (Record->Free[C]) {
          BlockHeader *H = Record->Free[C];
          Record->Free[C] = H->FreeNext;
          H->FreeNext = Shared[C].Head;
          Shared[C].Head = H;
          ++Shared[C].Count;
        }
        Record->Count[C] = 0;
      }
    }
    Record->InUse.store(false, std::memory_order_release);
  }

  const uint64_t DomainId;
  /// The version clock. Starts above 0 so fresh blocks' birth 0 is
  /// strictly in the past of every possible start version.
  alignas(CacheLineBytes) std::atomic<uint64_t> Clock{1};
  std::atomic<uint64_t> Retired{0};
  std::atomic<uint64_t> Reused{0};
  std::vector<ThreadRecord> Records;

  std::mutex SharedMutex;
  std::array<SharedList, NodePool::NumClasses> Shared{};

  std::mutex RawMutex;
  std::vector<RawRetiree> RawRetirees;
};

/// The production VBR domain (direct, untraced accesses). Explicitly
/// instantiated in VbrDomain.cpp.
using VbrDomain = BasicVbrDomain<DirectPolicy>;

/// True for reclamation domains whose lists must run the birth-check
/// read protocol (conditionally-atomic key fields, per-hop validation,
/// revive-instead-of-construct allocation).
template <class DomainT>
inline constexpr bool IsVersionedDomain =
    requires { typename DomainT::VersionedReclaimTag; };

/// Allocation dispatch for lists templated over any reclamation domain:
/// versioned domains allocate through the domain (revival path runs
/// \p Revive over the still-alive previous incarnation), everything
/// else takes the NodePool directly. \p Revive receives (T *, Args...)
/// and must release-store every field.
template <class T, class PolicyT, class DomainT, class ReviveFn,
          class... Args>
T *domainCreate(DomainT &Domain, ReviveFn &&Revive, Args &&...A) {
  if constexpr (IsVersionedDomain<DomainT>) {
    bool Fresh = false;
    void *Mem = Domain.template allocBlockFor<T>(Fresh);
    if (Fresh)
      return ::new (Mem) T(std::forward<Args>(A)...);
    T *Prior = std::launder(static_cast<T *>(Mem));
    Revive(Prior, std::forward<Args>(A)...);
    return Prior;
  } else {
    (void)Revive;
    return poolCreate<T, PolicyT>(std::forward<Args>(A)...);
  }
}

/// Retire dispatch: versioned domains stamp-and-recycle in place; the
/// grace-period domains quarantine with the pool deleter.
template <class PolicyT = DirectPolicy, class DomainT, class T>
void domainRetire(DomainT &Domain, T *Ptr) {
  if constexpr (IsVersionedDomain<DomainT>)
    Domain.retireNode(Ptr);
  else
    poolRetire<PolicyT>(Domain, Ptr);
}

/// Disposal of a node that was never published (null-safe): versioned
/// domains return the block to the free list without a retire stamp.
template <class PolicyT = DirectPolicy, class DomainT, class T>
void domainAbandon(DomainT &Domain, T *Ptr) {
  if constexpr (IsVersionedDomain<DomainT>)
    Domain.abandonNode(Ptr);
  else
    poolDestroy<PolicyT>(Ptr);
}

/// Teardown disposal from the data structure's destructor (quiescent,
/// null-safe).
template <class PolicyT = DirectPolicy, class DomainT, class T>
void domainDispose(DomainT &Domain, T *Ptr) {
  if constexpr (IsVersionedDomain<DomainT>)
    Domain.disposeNode(Ptr);
  else
    poolDestroy<PolicyT>(Ptr);
}

} // namespace reclaim
} // namespace vbl

#endif // VBL_RECLAIM_VBRDOMAIN_H
