//===- reclaim/HazardPointerDomain.h - Hazard-pointer reclamation --------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Michael-style hazard pointers (SPAA 2002), the reclamation scheme the
/// Harris-Michael list was originally published with. Readers publish
/// each pointer they are about to dereference in a per-thread hazard
/// slot; retirement scans all slots and frees only unprotected pointers.
///
/// Compared to the default EpochDomain: bounded garbage (at most
/// #threads x slots survivors per scan) at the price of one seq_cst
/// store + re-validation per traversal hop, which is exactly the
/// metadata-traffic trade-off the reclamation benchmark quantifies.
///
/// Two amortization guarantees (each protects against a pathology the
/// regression tests in tests/HazardPointerTest pin down):
///
///  - Scan watermark: a scan that keeps K protected pointers raises the
///    next scan trigger to K + threshold, so pinned pointers cannot
///    force a full O(threads x slots) scan on every retire.
///  - Orphan adoption: retirees of exited threads (moved to the orphan
///    list on detach) are adopted in bounded batches by later retire()
///    pressure, so the orphan backlog drains without anyone having to
///    call collectAll().
///
//===----------------------------------------------------------------------===//

#ifndef VBL_RECLAIM_HAZARDPOINTERDOMAIN_H
#define VBL_RECLAIM_HAZARDPOINTERDOMAIN_H

#include "support/Compiler.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace vbl {
namespace reclaim {

/// An independent hazard-pointer instance. Threads attach lazily;
/// Guard gives RAII slot management for one operation.
class HazardPointerDomain {
public:
  static constexpr unsigned MaxThreads = 512;
  /// Slots per thread. List traversals need three live protections
  /// (prev, curr, succ); one spare for algorithm extensions.
  static constexpr unsigned SlotsPerThread = 4;
  /// Default retire-list headroom between scans; constructor-overridable
  /// so the amortization tests can run with tiny lists.
  static constexpr size_t DefaultScanThreshold = 128;

  explicit HazardPointerDomain(size_t ScanThreshold = DefaultScanThreshold);
  ~HazardPointerDomain();

  HazardPointerDomain(const HazardPointerDomain &) = delete;
  HazardPointerDomain &operator=(const HazardPointerDomain &) = delete;

  class Guard;

  template <class T> void retire(T *Ptr) {
    retireRaw(Ptr, [](void *P) { delete static_cast<T *>(P); });
  }

  void retireRaw(void *Ptr, void (*Deleter)(void *));

  /// Scans and frees whatever is unprotected right now (teardown/tests).
  void collectAll();

  uint64_t freedCount() const {
    return Freed.load(std::memory_order_relaxed);
  }
  uint64_t retiredCount() const {
    return Retired.load(std::memory_order_relaxed);
  }
  /// Full hazard-array scans performed so far (watermark test hook).
  uint64_t scanCount() const {
    return Scans.load(std::memory_order_relaxed);
  }
  /// Retirees currently parked on the orphan list (backlog test hook).
  size_t orphanBacklog() const {
    return OrphanCount.load(std::memory_order_acquire);
  }

private:
  struct RetiredPtr {
    void *Ptr;
    void (*Deleter)(void *);
  };

  struct alignas(CacheLineBytes) ThreadRecord {
    std::atomic<void *> Hazards[SlotsPerThread] = {};
    std::atomic<bool> InUse{false};
    std::vector<RetiredPtr> RetireList; ///< Owner-thread-only.
    /// Retire-list size at which the next scan fires. 0 means "not yet
    /// scanned": retireRaw treats it as the domain threshold. Raised to
    /// kept + threshold after every scan so pinned survivors cannot
    /// trigger a scan per retire (owner-thread-only, like RetireList).
    size_t NextScanAt = 0;
  };

  ThreadRecord *attachCurrentThread();
  static void detachTrampoline(void *Domain, void *Record);
  void detach(ThreadRecord *Record);
  /// Scans hazards and frees unprotected entries of \p List; returns how
  /// many entries survived (still protected).
  size_t scan(std::vector<RetiredPtr> &List);
  void adoptOrphans(ThreadRecord *Record);

  const uint64_t DomainId;
  const size_t Threshold;
  std::atomic<uint32_t> HighWater{0};
  std::atomic<uint64_t> Freed{0};
  std::atomic<uint64_t> Retired{0};
  std::atomic<uint64_t> Scans{0};
  std::vector<ThreadRecord> Records;

  std::mutex OrphanMutex;
  std::vector<RetiredPtr> Orphans;
  /// Orphans.size(), readable without OrphanMutex so the retire fast
  /// path can skip adoption when there is no backlog.
  std::atomic<size_t> OrphanCount{0};

public:
  /// RAII wrapper around this thread's hazard slots. All slots are
  /// cleared on destruction, so one Guard per operation is the intended
  /// pattern.
  class Guard {
  public:
    explicit Guard(HazardPointerDomain &Domain)
        : Record(Domain.attachCurrentThread()) {}

    ~Guard() { clearAll(); }

    Guard(const Guard &) = delete;
    Guard &operator=(const Guard &) = delete;

    /// Publishes protection for the pointer currently stored in \p Src
    /// and returns it. Loops until the published value matches a re-read
    /// of the source, which proves the pointer was reachable (hence not
    /// yet passed to retire) at the moment of protection.
    template <class T>
    T *protect(unsigned Slot, const std::atomic<T *> &Src) {
      VBL_ASSERT(Slot < SlotsPerThread, "hazard slot out of range");
      T *Ptr = Src.load(std::memory_order_acquire);
      for (;;) {
        // seq_cst store: must be visible to scanning threads before we
        // re-validate, otherwise scan could miss the protection.
        Record->Hazards[Slot].store(Ptr, std::memory_order_seq_cst);
        T *Again = Src.load(std::memory_order_seq_cst);
        if (Again == Ptr)
          return Ptr;
        Ptr = Again;
      }
    }

    /// Variant for mark-tagged pointer words (Harris-Michael): protects
    /// the unmarked address while validating against the raw word.
    template <class ClearFn>
    void *protectWord(unsigned Slot, const std::atomic<uintptr_t> &Src,
                      ClearFn StripTag) {
      VBL_ASSERT(Slot < SlotsPerThread, "hazard slot out of range");
      uintptr_t Word = Src.load(std::memory_order_acquire);
      for (;;) {
        void *Ptr = StripTag(Word);
        Record->Hazards[Slot].store(Ptr, std::memory_order_seq_cst);
        const uintptr_t Again = Src.load(std::memory_order_seq_cst);
        if (StripTag(Again) == Ptr)
          return Ptr;
        Word = Again;
      }
    }

    /// Publishes an already-validated pointer (caller guarantees it is
    /// still reachable through some protected path).
    void set(unsigned Slot, void *Ptr) {
      VBL_ASSERT(Slot < SlotsPerThread, "hazard slot out of range");
      Record->Hazards[Slot].store(Ptr, std::memory_order_seq_cst);
    }

    void clear(unsigned Slot) {
      VBL_ASSERT(Slot < SlotsPerThread, "hazard slot out of range");
      Record->Hazards[Slot].store(nullptr, std::memory_order_release);
    }

    void clearAll() {
      for (unsigned I = 0; I != SlotsPerThread; ++I)
        Record->Hazards[I].store(nullptr, std::memory_order_release);
    }

  private:
    ThreadRecord *Record;
  };

  friend class Guard;
};

} // namespace reclaim
} // namespace vbl

#endif // VBL_RECLAIM_HAZARDPOINTERDOMAIN_H
