//===- reclaim/HazardPointerDomain.cpp - Hazard-pointer reclamation ------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "reclaim/HazardPointerDomain.h"

#include "reclaim/DomainRegistry.h"
#include "stats/Stats.h"

#include <algorithm>

using namespace vbl;
using namespace vbl::reclaim;

HazardPointerDomain::HazardPointerDomain(size_t ScanThreshold)
    : DomainId(registerDomain()), Threshold(ScanThreshold),
      Records(MaxThreads) {
  VBL_ASSERT(Threshold != 0, "scan threshold must be positive");
}

HazardPointerDomain::~HazardPointerDomain() {
  unregisterDomain(DomainId);
  for (ThreadRecord &Record : Records) {
    for (unsigned I = 0; I != SlotsPerThread; ++I)
      VBL_ASSERT(
          Record.Hazards[I].load(std::memory_order_acquire) == nullptr,
          "HazardPointerDomain destroyed while a pointer is protected");
    for (const RetiredPtr &R : Record.RetireList)
      R.Deleter(R.Ptr);
    Record.RetireList.clear();
  }
  std::lock_guard<std::mutex> Lock(OrphanMutex);
  for (const RetiredPtr &R : Orphans)
    R.Deleter(R.Ptr);
  stats::bump(stats::Counter::HpOrphanBacklog,
              uint64_t(0) - Orphans.size());
  Orphans.clear();
  OrphanCount.store(0, std::memory_order_release);
}

HazardPointerDomain::ThreadRecord *
HazardPointerDomain::attachCurrentThread() {
  thread_local uint64_t CachedDomainId = 0;
  thread_local ThreadRecord *CachedRecord = nullptr;
  if (CachedDomainId == DomainId)
    return CachedRecord;

  if (void *Known = findThreadRecord(DomainId)) {
    CachedDomainId = DomainId;
    CachedRecord = static_cast<ThreadRecord *>(Known);
    return CachedRecord;
  }

  for (uint32_t I = 0; I != MaxThreads; ++I) {
    ThreadRecord &Record = Records[I];
    bool Expected = false;
    if (!Record.InUse.compare_exchange_strong(Expected, true,
                                              std::memory_order_acq_rel))
      continue;
    uint32_t HW = HighWater.load(std::memory_order_relaxed);
    while (HW < I + 1 && !HighWater.compare_exchange_weak(
                             HW, I + 1, std::memory_order_acq_rel)) {
    }
    rememberThreadRecord(DomainId, this, &Record, &detachTrampoline);
    CachedDomainId = DomainId;
    CachedRecord = &Record;
    return &Record;
  }
  vbl_unreachable("HazardPointerDomain: too many concurrent threads");
}

void HazardPointerDomain::detachTrampoline(void *Domain, void *Record) {
  static_cast<HazardPointerDomain *>(Domain)->detach(
      static_cast<ThreadRecord *>(Record));
}

void HazardPointerDomain::detach(ThreadRecord *Record) {
  for (unsigned I = 0; I != SlotsPerThread; ++I)
    Record->Hazards[I].store(nullptr, std::memory_order_release);
  if (!Record->RetireList.empty()) {
    std::lock_guard<std::mutex> Lock(OrphanMutex);
    Orphans.insert(Orphans.end(), Record->RetireList.begin(),
                   Record->RetireList.end());
    OrphanCount.store(Orphans.size(), std::memory_order_release);
    stats::bump(stats::Counter::HpOrphanBacklog,
                Record->RetireList.size());
  }
  Record->RetireList.clear();
  Record->NextScanAt = 0; // Next owner starts from the plain threshold.
  Record->InUse.store(false, std::memory_order_release);
}

/// Moves a bounded batch of orphaned retirees into \p Record's own
/// retire list so the scan that follows can free them. Without this,
/// retirees of exited threads sit on the orphan list forever unless
/// someone calls collectAll() — the backlog regression test exercises
/// exactly that leak.
void HazardPointerDomain::adoptOrphans(ThreadRecord *Record) {
  if (OrphanCount.load(std::memory_order_acquire) == 0)
    return; // Common case: no backlog, no lock traffic.
  std::unique_lock<std::mutex> Lock(OrphanMutex, std::try_to_lock);
  if (!Lock.owns_lock())
    return; // Someone else is adopting; don't serialize retire().
  // Batch bound keeps one retire() from inheriting an unbounded list.
  const size_t N = std::min(Orphans.size(), Threshold);
  if (N == 0)
    return;
  Record->RetireList.insert(Record->RetireList.end(), Orphans.end() - N,
                            Orphans.end());
  Orphans.resize(Orphans.size() - N);
  OrphanCount.store(Orphans.size(), std::memory_order_release);
  stats::bump(stats::Counter::HpOrphansAdopted, N);
  // Down-count by wrapping addition; Snapshot::delta subtracts the same
  // way, so the backlog gauge stays exact.
  stats::bump(stats::Counter::HpOrphanBacklog, uint64_t(0) - N);
}

void HazardPointerDomain::retireRaw(void *Ptr, void (*Deleter)(void *)) {
  VBL_ASSERT(Ptr, "retiring null");
  ThreadRecord *Record = attachCurrentThread();
  Record->RetireList.push_back({Ptr, Deleter});
  Retired.fetch_add(1, std::memory_order_relaxed);
  stats::bump(stats::Counter::HpRetired);
  // Watermark, not plain threshold: after a scan keeps K protected
  // pointers, the next scan waits for K + threshold retirees. A plain
  // ">= threshold" check degenerates into one full scan per retire the
  // moment K reaches the threshold (the scan-thrash regression test).
  const size_t Trigger = std::max(Record->NextScanAt, Threshold);
  if (Record->RetireList.size() >= Trigger) {
    adoptOrphans(Record);
    const size_t Kept = scan(Record->RetireList);
    Record->NextScanAt = Kept + Threshold;
  }
}

size_t HazardPointerDomain::scan(std::vector<RetiredPtr> &List) {
  // Stage 1: snapshot every published hazard.
  std::vector<void *> Protected;
  Protected.reserve(64);
  const uint32_t HW = HighWater.load(std::memory_order_acquire);
  for (uint32_t I = 0; I != HW; ++I) {
    const ThreadRecord &Record = Records[I];
    // Slots of unattached records are all null, so no InUse filter is
    // needed for correctness; reading them is cheap.
    for (unsigned S = 0; S != SlotsPerThread; ++S)
      if (void *Ptr = Record.Hazards[S].load(std::memory_order_seq_cst))
        Protected.push_back(Ptr);
  }
  std::sort(Protected.begin(), Protected.end());

  // Stage 2: free everything not protected.
  size_t Kept = 0;
  uint64_t FreedHere = 0;
  for (size_t I = 0, E = List.size(); I != E; ++I) {
    if (std::binary_search(Protected.begin(), Protected.end(),
                           List[I].Ptr)) {
      List[Kept++] = List[I];
      continue;
    }
    List[I].Deleter(List[I].Ptr);
    ++FreedHere;
  }
  List.resize(Kept);
  if (FreedHere)
    Freed.fetch_add(FreedHere, std::memory_order_relaxed);
  Scans.fetch_add(1, std::memory_order_relaxed);
  stats::bump(stats::Counter::HpScans);
  stats::bump(stats::Counter::HpFreed, FreedHere);
  stats::bump(stats::Counter::HpScanKept, Kept);
  return Kept;
}

void HazardPointerDomain::collectAll() {
  ThreadRecord *Record = attachCurrentThread();
  const size_t Kept = scan(Record->RetireList);
  Record->NextScanAt = Kept + Threshold;
  std::lock_guard<std::mutex> Lock(OrphanMutex);
  const size_t HadOrphans = Orphans.size();
  const size_t OrphansKept = scan(Orphans);
  OrphanCount.store(OrphansKept, std::memory_order_release);
  stats::bump(stats::Counter::HpOrphanBacklog,
              uint64_t(0) - (HadOrphans - OrphansKept));
}
