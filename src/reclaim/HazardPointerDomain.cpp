//===- reclaim/HazardPointerDomain.cpp - Hazard-pointer reclamation ------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "reclaim/HazardPointerDomain.h"

#include "reclaim/DomainRegistry.h"

#include <algorithm>

using namespace vbl;
using namespace vbl::reclaim;

HazardPointerDomain::HazardPointerDomain()
    : DomainId(registerDomain()), Records(MaxThreads) {}

HazardPointerDomain::~HazardPointerDomain() {
  unregisterDomain(DomainId);
  for (ThreadRecord &Record : Records) {
    for (unsigned I = 0; I != SlotsPerThread; ++I)
      VBL_ASSERT(
          Record.Hazards[I].load(std::memory_order_acquire) == nullptr,
          "HazardPointerDomain destroyed while a pointer is protected");
    for (const RetiredPtr &R : Record.RetireList)
      R.Deleter(R.Ptr);
    Record.RetireList.clear();
  }
  std::lock_guard<std::mutex> Lock(OrphanMutex);
  for (const RetiredPtr &R : Orphans)
    R.Deleter(R.Ptr);
  Orphans.clear();
}

HazardPointerDomain::ThreadRecord *
HazardPointerDomain::attachCurrentThread() {
  thread_local uint64_t CachedDomainId = 0;
  thread_local ThreadRecord *CachedRecord = nullptr;
  if (CachedDomainId == DomainId)
    return CachedRecord;

  if (void *Known = findThreadRecord(DomainId)) {
    CachedDomainId = DomainId;
    CachedRecord = static_cast<ThreadRecord *>(Known);
    return CachedRecord;
  }

  for (uint32_t I = 0; I != MaxThreads; ++I) {
    ThreadRecord &Record = Records[I];
    bool Expected = false;
    if (!Record.InUse.compare_exchange_strong(Expected, true,
                                              std::memory_order_acq_rel))
      continue;
    uint32_t HW = HighWater.load(std::memory_order_relaxed);
    while (HW < I + 1 && !HighWater.compare_exchange_weak(
                             HW, I + 1, std::memory_order_acq_rel)) {
    }
    rememberThreadRecord(DomainId, this, &Record, &detachTrampoline);
    CachedDomainId = DomainId;
    CachedRecord = &Record;
    return &Record;
  }
  vbl_unreachable("HazardPointerDomain: too many concurrent threads");
}

void HazardPointerDomain::detachTrampoline(void *Domain, void *Record) {
  static_cast<HazardPointerDomain *>(Domain)->detach(
      static_cast<ThreadRecord *>(Record));
}

void HazardPointerDomain::detach(ThreadRecord *Record) {
  for (unsigned I = 0; I != SlotsPerThread; ++I)
    Record->Hazards[I].store(nullptr, std::memory_order_release);
  {
    std::lock_guard<std::mutex> Lock(OrphanMutex);
    Orphans.insert(Orphans.end(), Record->RetireList.begin(),
                   Record->RetireList.end());
  }
  Record->RetireList.clear();
  Record->InUse.store(false, std::memory_order_release);
}

void HazardPointerDomain::retireRaw(void *Ptr, void (*Deleter)(void *)) {
  VBL_ASSERT(Ptr, "retiring null");
  ThreadRecord *Record = attachCurrentThread();
  Record->RetireList.push_back({Ptr, Deleter});
  Retired.fetch_add(1, std::memory_order_relaxed);
  if (Record->RetireList.size() >= ScanThreshold)
    scan(Record->RetireList);
}

void HazardPointerDomain::scan(std::vector<RetiredPtr> &List) {
  // Stage 1: snapshot every published hazard.
  std::vector<void *> Protected;
  Protected.reserve(64);
  const uint32_t HW = HighWater.load(std::memory_order_acquire);
  for (uint32_t I = 0; I != HW; ++I) {
    const ThreadRecord &Record = Records[I];
    // Slots of unattached records are all null, so no InUse filter is
    // needed for correctness; reading them is cheap.
    for (unsigned S = 0; S != SlotsPerThread; ++S)
      if (void *Ptr = Record.Hazards[S].load(std::memory_order_seq_cst))
        Protected.push_back(Ptr);
  }
  std::sort(Protected.begin(), Protected.end());

  // Stage 2: free everything not protected.
  size_t Kept = 0;
  for (size_t I = 0, E = List.size(); I != E; ++I) {
    if (std::binary_search(Protected.begin(), Protected.end(),
                           List[I].Ptr)) {
      List[Kept++] = List[I];
      continue;
    }
    List[I].Deleter(List[I].Ptr);
    Freed.fetch_add(1, std::memory_order_relaxed);
  }
  List.resize(Kept);
}

void HazardPointerDomain::collectAll() {
  ThreadRecord *Record = attachCurrentThread();
  scan(Record->RetireList);
  std::lock_guard<std::mutex> Lock(OrphanMutex);
  scan(Orphans);
}
