//===- reclaim/TrackingDomain.cpp - Debug reclamation domain -------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "reclaim/TrackingDomain.h"

using namespace vbl;
using namespace vbl::reclaim;

TrackingDomain::~TrackingDomain() {
  VBL_ASSERT(ActiveGuards.load(std::memory_order_acquire) == 0,
             "TrackingDomain destroyed while a guard is active");
  for (const auto &[Ptr, Deleter] : RetiredPtrs)
    Deleter(Ptr);
}

void TrackingDomain::retireRaw(void *Ptr, void (*Deleter)(void *)) {
  VBL_ASSERT(Ptr, "retiring null");
  std::lock_guard<std::mutex> Lock(Mutex);
  RetiredTotal.fetch_add(1, std::memory_order_relaxed);
  const bool Inserted = RetiredPtrs.emplace(Ptr, Deleter).second;
  if (!Inserted)
    DoubleRetire.store(true, std::memory_order_release);
}
