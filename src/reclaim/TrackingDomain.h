//===- reclaim/TrackingDomain.h - Debug reclamation domain ---------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reclamation domain for tests. It never frees during the run (so
/// use-after-unlink cannot crash and can be asserted on), detects
/// double-retire, counts guards, and frees everything exactly once at
/// destruction. Tests wrap a list in this domain to prove the unlink
/// discipline: every node is retired at most once, and the number of
/// retirements matches the number of successful removals.
///
//===----------------------------------------------------------------------===//

#ifndef VBL_RECLAIM_TRACKINGDOMAIN_H
#define VBL_RECLAIM_TRACKINGDOMAIN_H

#include "support/Compiler.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

namespace vbl {
namespace reclaim {

/// Thread-safe; all bookkeeping behind one mutex (tests only — never on
/// a benchmark path).
class TrackingDomain {
public:
  TrackingDomain() = default;
  ~TrackingDomain();

  TrackingDomain(const TrackingDomain &) = delete;
  TrackingDomain &operator=(const TrackingDomain &) = delete;

  class Guard {
  public:
    explicit Guard(TrackingDomain &Domain) : Domain(Domain) {
      Domain.ActiveGuards.fetch_add(1, std::memory_order_acq_rel);
    }
    ~Guard() { Domain.ActiveGuards.fetch_sub(1, std::memory_order_acq_rel); }
    Guard(const Guard &) = delete;
    Guard &operator=(const Guard &) = delete;

  private:
    TrackingDomain &Domain;
  };

  template <class T> void retire(T *Ptr) {
    retireRaw(Ptr, [](void *P) { delete static_cast<T *>(P); });
  }

  void retireRaw(void *Ptr, void (*Deleter)(void *));

  void collectAll() {}

  /// True if some pointer was retired twice (a lost-update-style bug in
  /// the list under test).
  bool sawDoubleRetire() const {
    return DoubleRetire.load(std::memory_order_acquire);
  }

  uint64_t retiredCount() const {
    return RetiredTotal.load(std::memory_order_relaxed);
  }
  uint64_t freedCount() const { return 0; }

  uint64_t activeGuards() const {
    return ActiveGuards.load(std::memory_order_acquire);
  }

private:
  std::atomic<uint64_t> ActiveGuards{0};
  std::atomic<uint64_t> RetiredTotal{0};
  std::atomic<bool> DoubleRetire{false};

  std::mutex Mutex;
  std::unordered_map<void *, void (*)(void *)> RetiredPtrs;

  friend class Guard;
};

} // namespace reclaim
} // namespace vbl

#endif // VBL_RECLAIM_TRACKINGDOMAIN_H
