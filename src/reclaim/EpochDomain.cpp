//===- reclaim/EpochDomain.cpp - Epoch-based memory reclamation ----------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "reclaim/EpochDomain.h"

#include "reclaim/DomainRegistry.h"

using namespace vbl;
using namespace vbl::reclaim;

EpochDomain::EpochDomain() : DomainId(registerDomain()), Records(MaxThreads) {}

EpochDomain::~EpochDomain() {
  // After this call no exiting thread will touch this domain again.
  unregisterDomain(DomainId);
  // No guard may be active: readers into freed nodes would be fatal.
  for (ThreadRecord &Record : Records)
    VBL_ASSERT(Record.ActiveDepth.load(std::memory_order_acquire) == 0,
               "EpochDomain destroyed while a guard is active");
  // Everything still pending is safe to free now.
  for (ThreadRecord &Record : Records) {
    for (const RetiredPtr &R : Record.RetireList)
      R.Deleter(R.Ptr);
    Record.RetireList.clear();
  }
  std::lock_guard<std::mutex> Lock(OrphanMutex);
  for (const RetiredPtr &R : Orphans)
    R.Deleter(R.Ptr);
  Orphans.clear();
}

EpochDomain::ThreadRecord *EpochDomain::attachCurrentThread() {
  // Fast path: per-(thread, domain) record cached in the TLS registry,
  // with a one-entry inline cache in front since nearly every workload
  // touches one domain at a time.
  thread_local uint64_t CachedDomainId = 0;
  thread_local ThreadRecord *CachedRecord = nullptr;
  if (CachedDomainId == DomainId)
    return CachedRecord;

  if (void *Known = findThreadRecord(DomainId)) {
    CachedDomainId = DomainId;
    CachedRecord = static_cast<ThreadRecord *>(Known);
    return CachedRecord;
  }

  // Slow path: claim a free slot.
  for (uint32_t I = 0; I != MaxThreads; ++I) {
    ThreadRecord &Record = Records[I];
    bool Expected = false;
    if (!Record.InUse.compare_exchange_strong(Expected, true,
                                              std::memory_order_acq_rel))
      continue;
    // Raise the scan high-water mark so epoch advancing sees this slot.
    uint32_t HW = HighWater.load(std::memory_order_relaxed);
    while (HW < I + 1 && !HighWater.compare_exchange_weak(
                             HW, I + 1, std::memory_order_acq_rel)) {
    }
    rememberThreadRecord(DomainId, this, &Record, &detachTrampoline);
    CachedDomainId = DomainId;
    CachedRecord = &Record;
    return &Record;
  }
  vbl_unreachable("EpochDomain: more than MaxThreads concurrent threads");
}

void EpochDomain::detachTrampoline(void *Domain, void *Record) {
  static_cast<EpochDomain *>(Domain)->detach(
      static_cast<ThreadRecord *>(Record));
}

void EpochDomain::detach(ThreadRecord *Record) {
  VBL_ASSERT(Record->ActiveDepth.load(std::memory_order_acquire) == 0,
             "thread exited inside an epoch guard");
  {
    std::lock_guard<std::mutex> Lock(OrphanMutex);
    Orphans.insert(Orphans.end(), Record->RetireList.begin(),
                   Record->RetireList.end());
  }
  Record->RetireList.clear();
  Record->InUse.store(false, std::memory_order_release);
}

void EpochDomain::retireRaw(void *Ptr, void (*Deleter)(void *)) {
  VBL_ASSERT(Ptr, "retiring null");
  ThreadRecord *Record = attachCurrentThread();
  Record->RetireList.push_back(
      {Ptr, Deleter, GlobalEpoch.load(std::memory_order_acquire)});
  Retired.fetch_add(1, std::memory_order_relaxed);
  // Attempt collection every CollectThreshold retirements, not on every
  // retirement past the threshold: when a preempted reader pins an old
  // epoch, the latter degrades into a full record scan per retire.
  if (Record->RetireList.size() % CollectThreshold == 0)
    collect(Record);
}

bool EpochDomain::tryAdvanceEpoch() {
  const uint64_t Current = GlobalEpoch.load(std::memory_order_seq_cst);
  const uint32_t HW = HighWater.load(std::memory_order_acquire);
  for (uint32_t I = 0; I != HW; ++I) {
    const ThreadRecord &Record = Records[I];
    if (!Record.InUse.load(std::memory_order_acquire))
      continue;
    if (Record.ActiveDepth.load(std::memory_order_acquire) == 0)
      continue;
    if (Record.LocalEpoch.load(std::memory_order_seq_cst) != Current)
      return false; // A reader still sits in an older epoch.
  }
  uint64_t Expected = Current;
  GlobalEpoch.compare_exchange_strong(Expected, Current + 1,
                                      std::memory_order_acq_rel);
  // Either we advanced or someone else did; both count as progress.
  return true;
}

void EpochDomain::freeSafe(std::vector<RetiredPtr> &List, uint64_t SafeEpoch) {
  size_t Kept = 0;
  for (size_t I = 0, E = List.size(); I != E; ++I) {
    if (List[I].Epoch <= SafeEpoch) {
      List[I].Deleter(List[I].Ptr);
      Freed.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    List[Kept++] = List[I];
  }
  List.resize(Kept);
}

bool EpochDomain::collect(ThreadRecord *Record) {
  tryAdvanceEpoch();
  const uint64_t Global = GlobalEpoch.load(std::memory_order_acquire);
  // Retired in epoch e, safe once Global >= e + 2: every reader active
  // now announced at least e + 1 > e after the unlink became visible.
  const size_t Before = Record->RetireList.size();
  freeSafe(Record->RetireList, Global - 2);
  return Record->RetireList.size() != Before;
}

void EpochDomain::collectAll() {
  ThreadRecord *Record = attachCurrentThread();
  // Each advance can unlock one more epoch bucket; three rounds drain
  // everything when no other thread holds a guard.
  for (int Round = 0; Round != 3; ++Round) {
    tryAdvanceEpoch();
    const uint64_t Global = GlobalEpoch.load(std::memory_order_acquire);
    freeSafe(Record->RetireList, Global - 2);
    std::lock_guard<std::mutex> Lock(OrphanMutex);
    freeSafe(Orphans, Global - 2);
  }
}
