//===- reclaim/EpochDomain.cpp - Epoch-based memory reclamation ----------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "reclaim/EpochDomain.h"

namespace vbl {
namespace reclaim {

// The production instantiation lives here so every list translation unit
// shares one copy of the slow paths (attach, advance, collect).
template class BasicEpochDomain<DirectPolicy>;

} // namespace reclaim
} // namespace vbl
