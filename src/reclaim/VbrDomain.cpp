//===- reclaim/VbrDomain.cpp - Version-based memory reclamation ----------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "reclaim/VbrDomain.h"

namespace vbl {
namespace reclaim {

// The production instantiation lives here so every list translation unit
// shares one copy of the slow paths (attach, refill, spill, teardown).
template class BasicVbrDomain<DirectPolicy>;

} // namespace reclaim
} // namespace vbl
