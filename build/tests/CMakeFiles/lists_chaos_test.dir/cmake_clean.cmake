file(REMOVE_RECURSE
  "CMakeFiles/lists_chaos_test.dir/lists/ChaosStressTest.cpp.o"
  "CMakeFiles/lists_chaos_test.dir/lists/ChaosStressTest.cpp.o.d"
  "lists_chaos_test"
  "lists_chaos_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lists_chaos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
