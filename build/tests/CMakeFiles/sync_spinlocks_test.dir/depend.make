# Empty dependencies file for sync_spinlocks_test.
# This may be replaced when dependencies are built.
