file(REMOVE_RECURSE
  "CMakeFiles/sync_spinlocks_test.dir/sync/SpinLocksTest.cpp.o"
  "CMakeFiles/sync_spinlocks_test.dir/sync/SpinLocksTest.cpp.o.d"
  "sync_spinlocks_test"
  "sync_spinlocks_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_spinlocks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
