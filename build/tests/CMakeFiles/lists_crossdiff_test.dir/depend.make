# Empty dependencies file for lists_crossdiff_test.
# This may be replaced when dependencies are built.
