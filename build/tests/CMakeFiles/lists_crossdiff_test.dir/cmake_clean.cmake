file(REMOVE_RECURSE
  "CMakeFiles/lists_crossdiff_test.dir/lists/CrossDifferentialTest.cpp.o"
  "CMakeFiles/lists_crossdiff_test.dir/lists/CrossDifferentialTest.cpp.o.d"
  "lists_crossdiff_test"
  "lists_crossdiff_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lists_crossdiff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
