file(REMOVE_RECURSE
  "CMakeFiles/sched_explorer_exactness_test.dir/sched/ExplorerExactnessTest.cpp.o"
  "CMakeFiles/sched_explorer_exactness_test.dir/sched/ExplorerExactnessTest.cpp.o.d"
  "sched_explorer_exactness_test"
  "sched_explorer_exactness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_explorer_exactness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
