# Empty dependencies file for sched_explorer_exactness_test.
# This may be replaced when dependencies are built.
