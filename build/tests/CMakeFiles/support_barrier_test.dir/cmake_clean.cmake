file(REMOVE_RECURSE
  "CMakeFiles/support_barrier_test.dir/support/BarrierTest.cpp.o"
  "CMakeFiles/support_barrier_test.dir/support/BarrierTest.cpp.o.d"
  "support_barrier_test"
  "support_barrier_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_barrier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
