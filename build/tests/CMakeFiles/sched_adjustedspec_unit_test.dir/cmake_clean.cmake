file(REMOVE_RECURSE
  "CMakeFiles/sched_adjustedspec_unit_test.dir/sched/AdjustedSpecUnitTest.cpp.o"
  "CMakeFiles/sched_adjustedspec_unit_test.dir/sched/AdjustedSpecUnitTest.cpp.o.d"
  "sched_adjustedspec_unit_test"
  "sched_adjustedspec_unit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_adjustedspec_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
