# Empty dependencies file for sched_adjustedspec_unit_test.
# This may be replaced when dependencies are built.
