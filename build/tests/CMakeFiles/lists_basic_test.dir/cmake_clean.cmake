file(REMOVE_RECURSE
  "CMakeFiles/lists_basic_test.dir/lists/ListBasicTest.cpp.o"
  "CMakeFiles/lists_basic_test.dir/lists/ListBasicTest.cpp.o.d"
  "lists_basic_test"
  "lists_basic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lists_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
