# Empty compiler generated dependencies file for lists_basic_test.
# This may be replaced when dependencies are built.
