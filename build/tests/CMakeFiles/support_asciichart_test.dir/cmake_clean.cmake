file(REMOVE_RECURSE
  "CMakeFiles/support_asciichart_test.dir/support/AsciiChartTest.cpp.o"
  "CMakeFiles/support_asciichart_test.dir/support/AsciiChartTest.cpp.o.d"
  "support_asciichart_test"
  "support_asciichart_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_asciichart_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
