# Empty compiler generated dependencies file for support_asciichart_test.
# This may be replaced when dependencies are built.
