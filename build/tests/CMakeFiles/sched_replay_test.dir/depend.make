# Empty dependencies file for sched_replay_test.
# This may be replaced when dependencies are built.
