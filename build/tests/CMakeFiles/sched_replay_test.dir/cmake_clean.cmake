file(REMOVE_RECURSE
  "CMakeFiles/sched_replay_test.dir/sched/ReplayTest.cpp.o"
  "CMakeFiles/sched_replay_test.dir/sched/ReplayTest.cpp.o.d"
  "sched_replay_test"
  "sched_replay_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_replay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
