# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for lists_bst_test.
