file(REMOVE_RECURSE
  "CMakeFiles/lists_bst_test.dir/lists/TombstoneBstTest.cpp.o"
  "CMakeFiles/lists_bst_test.dir/lists/TombstoneBstTest.cpp.o.d"
  "lists_bst_test"
  "lists_bst_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lists_bst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
