# Empty compiler generated dependencies file for lists_bst_test.
# This may be replaced when dependencies are built.
