# Empty dependencies file for sched_specinterpreter_test.
# This may be replaced when dependencies are built.
