file(REMOVE_RECURSE
  "CMakeFiles/sched_specinterpreter_test.dir/sched/SpecInterpreterTest.cpp.o"
  "CMakeFiles/sched_specinterpreter_test.dir/sched/SpecInterpreterTest.cpp.o.d"
  "sched_specinterpreter_test"
  "sched_specinterpreter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_specinterpreter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
