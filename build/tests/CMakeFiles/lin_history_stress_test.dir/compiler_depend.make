# Empty compiler generated dependencies file for lin_history_stress_test.
# This may be replaced when dependencies are built.
