# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for lin_history_stress_test.
