file(REMOVE_RECURSE
  "CMakeFiles/lin_history_stress_test.dir/lin/HistoryStressTest.cpp.o"
  "CMakeFiles/lin_history_stress_test.dir/lin/HistoryStressTest.cpp.o.d"
  "lin_history_stress_test"
  "lin_history_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lin_history_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
