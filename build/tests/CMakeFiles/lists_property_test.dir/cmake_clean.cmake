file(REMOVE_RECURSE
  "CMakeFiles/lists_property_test.dir/lists/PropertyTest.cpp.o"
  "CMakeFiles/lists_property_test.dir/lists/PropertyTest.cpp.o.d"
  "lists_property_test"
  "lists_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lists_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
