# Empty compiler generated dependencies file for lists_property_test.
# This may be replaced when dependencies are built.
