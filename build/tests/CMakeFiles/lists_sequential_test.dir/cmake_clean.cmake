file(REMOVE_RECURSE
  "CMakeFiles/lists_sequential_test.dir/lists/SequentialListTest.cpp.o"
  "CMakeFiles/lists_sequential_test.dir/lists/SequentialListTest.cpp.o.d"
  "lists_sequential_test"
  "lists_sequential_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lists_sequential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
