# Empty compiler generated dependencies file for lists_sequential_test.
# This may be replaced when dependencies are built.
