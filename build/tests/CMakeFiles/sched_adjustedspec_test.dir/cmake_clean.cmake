file(REMOVE_RECURSE
  "CMakeFiles/sched_adjustedspec_test.dir/sched/AdjustedSpecTest.cpp.o"
  "CMakeFiles/sched_adjustedspec_test.dir/sched/AdjustedSpecTest.cpp.o.d"
  "sched_adjustedspec_test"
  "sched_adjustedspec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_adjustedspec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
