# Empty dependencies file for sched_adjustedspec_test.
# This may be replaced when dependencies are built.
