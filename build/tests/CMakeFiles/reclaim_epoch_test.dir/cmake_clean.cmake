file(REMOVE_RECURSE
  "CMakeFiles/reclaim_epoch_test.dir/reclaim/EpochDomainTest.cpp.o"
  "CMakeFiles/reclaim_epoch_test.dir/reclaim/EpochDomainTest.cpp.o.d"
  "reclaim_epoch_test"
  "reclaim_epoch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reclaim_epoch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
