file(REMOVE_RECURSE
  "CMakeFiles/sched_statereconstruction_test.dir/sched/StateReconstructionTest.cpp.o"
  "CMakeFiles/sched_statereconstruction_test.dir/sched/StateReconstructionTest.cpp.o.d"
  "sched_statereconstruction_test"
  "sched_statereconstruction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_statereconstruction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
