# Empty dependencies file for sched_statereconstruction_test.
# This may be replaced when dependencies are built.
