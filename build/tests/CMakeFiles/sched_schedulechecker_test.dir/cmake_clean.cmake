file(REMOVE_RECURSE
  "CMakeFiles/sched_schedulechecker_test.dir/sched/ScheduleCheckerTest.cpp.o"
  "CMakeFiles/sched_schedulechecker_test.dir/sched/ScheduleCheckerTest.cpp.o.d"
  "sched_schedulechecker_test"
  "sched_schedulechecker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_schedulechecker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
