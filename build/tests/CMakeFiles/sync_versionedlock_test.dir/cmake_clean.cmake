file(REMOVE_RECURSE
  "CMakeFiles/sync_versionedlock_test.dir/sync/VersionedLockTest.cpp.o"
  "CMakeFiles/sync_versionedlock_test.dir/sync/VersionedLockTest.cpp.o.d"
  "sync_versionedlock_test"
  "sync_versionedlock_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_versionedlock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
