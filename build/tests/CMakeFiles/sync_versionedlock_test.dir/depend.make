# Empty dependencies file for sync_versionedlock_test.
# This may be replaced when dependencies are built.
