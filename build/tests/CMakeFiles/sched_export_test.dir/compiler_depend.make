# Empty compiler generated dependencies file for sched_export_test.
# This may be replaced when dependencies are built.
