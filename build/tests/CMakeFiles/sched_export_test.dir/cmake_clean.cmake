file(REMOVE_RECURSE
  "CMakeFiles/sched_export_test.dir/sched/ScheduleExportTest.cpp.o"
  "CMakeFiles/sched_export_test.dir/sched/ScheduleExportTest.cpp.o.d"
  "sched_export_test"
  "sched_export_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_export_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
