file(REMOVE_RECURSE
  "CMakeFiles/sched_soundness_test.dir/sched/SoundnessTest.cpp.o"
  "CMakeFiles/sched_soundness_test.dir/sched/SoundnessTest.cpp.o.d"
  "sched_soundness_test"
  "sched_soundness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_soundness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
