# Empty dependencies file for sched_scheduleutil_test.
# This may be replaced when dependencies are built.
