file(REMOVE_RECURSE
  "CMakeFiles/sched_scheduleutil_test.dir/sched/ScheduleUtilTest.cpp.o"
  "CMakeFiles/sched_scheduleutil_test.dir/sched/ScheduleUtilTest.cpp.o.d"
  "sched_scheduleutil_test"
  "sched_scheduleutil_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_scheduleutil_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
