file(REMOVE_RECURSE
  "CMakeFiles/sched_figures_test.dir/sched/ScheduleFiguresTest.cpp.o"
  "CMakeFiles/sched_figures_test.dir/sched/ScheduleFiguresTest.cpp.o.d"
  "sched_figures_test"
  "sched_figures_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_figures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
