# Empty dependencies file for sched_figures_test.
# This may be replaced when dependencies are built.
