file(REMOVE_RECURSE
  "CMakeFiles/reclaim_hazard_test.dir/reclaim/HazardPointerTest.cpp.o"
  "CMakeFiles/reclaim_hazard_test.dir/reclaim/HazardPointerTest.cpp.o.d"
  "reclaim_hazard_test"
  "reclaim_hazard_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reclaim_hazard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
