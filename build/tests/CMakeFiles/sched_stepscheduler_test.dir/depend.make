# Empty dependencies file for sched_stepscheduler_test.
# This may be replaced when dependencies are built.
