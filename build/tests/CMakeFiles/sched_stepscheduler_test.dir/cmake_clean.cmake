file(REMOVE_RECURSE
  "CMakeFiles/sched_stepscheduler_test.dir/sched/StepSchedulerTest.cpp.o"
  "CMakeFiles/sched_stepscheduler_test.dir/sched/StepSchedulerTest.cpp.o.d"
  "sched_stepscheduler_test"
  "sched_stepscheduler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_stepscheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
