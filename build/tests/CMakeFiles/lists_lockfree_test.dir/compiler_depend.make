# Empty compiler generated dependencies file for lists_lockfree_test.
# This may be replaced when dependencies are built.
