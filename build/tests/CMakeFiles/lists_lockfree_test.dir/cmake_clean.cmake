file(REMOVE_RECURSE
  "CMakeFiles/lists_lockfree_test.dir/lists/LockFreeListTest.cpp.o"
  "CMakeFiles/lists_lockfree_test.dir/lists/LockFreeListTest.cpp.o.d"
  "lists_lockfree_test"
  "lists_lockfree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lists_lockfree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
