# Empty compiler generated dependencies file for lists_skiplist_test.
# This may be replaced when dependencies are built.
