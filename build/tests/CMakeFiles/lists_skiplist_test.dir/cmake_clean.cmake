file(REMOVE_RECURSE
  "CMakeFiles/lists_skiplist_test.dir/lists/SkipListTest.cpp.o"
  "CMakeFiles/lists_skiplist_test.dir/lists/SkipListTest.cpp.o.d"
  "lists_skiplist_test"
  "lists_skiplist_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lists_skiplist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
