file(REMOVE_RECURSE
  "CMakeFiles/reclaim_tracking_test.dir/reclaim/TrackingDomainTest.cpp.o"
  "CMakeFiles/reclaim_tracking_test.dir/reclaim/TrackingDomainTest.cpp.o.d"
  "reclaim_tracking_test"
  "reclaim_tracking_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reclaim_tracking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
