# Empty dependencies file for reclaim_tracking_test.
# This may be replaced when dependencies are built.
