file(REMOVE_RECURSE
  "CMakeFiles/sched_deadlock_test.dir/sched/DeadlockDetectionTest.cpp.o"
  "CMakeFiles/sched_deadlock_test.dir/sched/DeadlockDetectionTest.cpp.o.d"
  "sched_deadlock_test"
  "sched_deadlock_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_deadlock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
