file(REMOVE_RECURSE
  "CMakeFiles/support_commandline_test.dir/support/CommandLineTest.cpp.o"
  "CMakeFiles/support_commandline_test.dir/support/CommandLineTest.cpp.o.d"
  "support_commandline_test"
  "support_commandline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_commandline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
