# Empty compiler generated dependencies file for sched_optimality_test.
# This may be replaced when dependencies are built.
