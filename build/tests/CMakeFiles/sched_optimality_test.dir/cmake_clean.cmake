file(REMOVE_RECURSE
  "CMakeFiles/sched_optimality_test.dir/sched/OptimalityTest.cpp.o"
  "CMakeFiles/sched_optimality_test.dir/sched/OptimalityTest.cpp.o.d"
  "sched_optimality_test"
  "sched_optimality_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_optimality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
