file(REMOVE_RECURSE
  "CMakeFiles/lists_hmhp_test.dir/lists/HarrisMichaelHpTest.cpp.o"
  "CMakeFiles/lists_hmhp_test.dir/lists/HarrisMichaelHpTest.cpp.o.d"
  "lists_hmhp_test"
  "lists_hmhp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lists_hmhp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
