# Empty compiler generated dependencies file for lists_hmhp_test.
# This may be replaced when dependencies are built.
