# Empty dependencies file for lin_checker_test.
# This may be replaced when dependencies are built.
