file(REMOVE_RECURSE
  "CMakeFiles/lin_checker_test.dir/lin/LinCheckerTest.cpp.o"
  "CMakeFiles/lin_checker_test.dir/lin/LinCheckerTest.cpp.o.d"
  "lin_checker_test"
  "lin_checker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lin_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
