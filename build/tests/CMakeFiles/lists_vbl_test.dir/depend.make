# Empty dependencies file for lists_vbl_test.
# This may be replaced when dependencies are built.
