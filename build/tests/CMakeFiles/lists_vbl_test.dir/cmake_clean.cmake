file(REMOVE_RECURSE
  "CMakeFiles/lists_vbl_test.dir/lists/VblListTest.cpp.o"
  "CMakeFiles/lists_vbl_test.dir/lists/VblListTest.cpp.o.d"
  "lists_vbl_test"
  "lists_vbl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lists_vbl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
