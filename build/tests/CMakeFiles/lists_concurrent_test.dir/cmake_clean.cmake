file(REMOVE_RECURSE
  "CMakeFiles/lists_concurrent_test.dir/lists/ListConcurrentTest.cpp.o"
  "CMakeFiles/lists_concurrent_test.dir/lists/ListConcurrentTest.cpp.o.d"
  "lists_concurrent_test"
  "lists_concurrent_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lists_concurrent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
