# Empty dependencies file for lists_concurrent_test.
# This may be replaced when dependencies are built.
