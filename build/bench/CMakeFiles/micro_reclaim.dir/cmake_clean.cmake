file(REMOVE_RECURSE
  "CMakeFiles/micro_reclaim.dir/micro_reclaim.cpp.o"
  "CMakeFiles/micro_reclaim.dir/micro_reclaim.cpp.o.d"
  "micro_reclaim"
  "micro_reclaim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_reclaim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
