# Empty dependencies file for fig1_small_contended.
# This may be replaced when dependencies are built.
