file(REMOVE_RECURSE
  "CMakeFiles/fig1_small_contended.dir/fig1_small_contended.cpp.o"
  "CMakeFiles/fig1_small_contended.dir/fig1_small_contended.cpp.o.d"
  "fig1_small_contended"
  "fig1_small_contended.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_small_contended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
