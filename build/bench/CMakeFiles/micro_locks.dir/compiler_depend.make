# Empty compiler generated dependencies file for micro_locks.
# This may be replaced when dependencies are built.
