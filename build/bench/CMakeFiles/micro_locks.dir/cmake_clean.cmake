file(REMOVE_RECURSE
  "CMakeFiles/micro_locks.dir/micro_locks.cpp.o"
  "CMakeFiles/micro_locks.dir/micro_locks.cpp.o.d"
  "micro_locks"
  "micro_locks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
