file(REMOVE_RECURSE
  "CMakeFiles/readonly_traversal.dir/readonly_traversal.cpp.o"
  "CMakeFiles/readonly_traversal.dir/readonly_traversal.cpp.o.d"
  "readonly_traversal"
  "readonly_traversal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/readonly_traversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
