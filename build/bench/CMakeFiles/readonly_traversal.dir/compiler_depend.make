# Empty compiler generated dependencies file for readonly_traversal.
# This may be replaced when dependencies are built.
