# Empty dependencies file for skiplist_crossover.
# This may be replaced when dependencies are built.
