file(REMOVE_RECURSE
  "CMakeFiles/skiplist_crossover.dir/skiplist_crossover.cpp.o"
  "CMakeFiles/skiplist_crossover.dir/skiplist_crossover.cpp.o.d"
  "skiplist_crossover"
  "skiplist_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skiplist_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
