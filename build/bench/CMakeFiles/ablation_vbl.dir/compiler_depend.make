# Empty compiler generated dependencies file for ablation_vbl.
# This may be replaced when dependencies are built.
