file(REMOVE_RECURSE
  "CMakeFiles/ablation_vbl.dir/ablation_vbl.cpp.o"
  "CMakeFiles/ablation_vbl.dir/ablation_vbl.cpp.o.d"
  "ablation_vbl"
  "ablation_vbl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vbl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
