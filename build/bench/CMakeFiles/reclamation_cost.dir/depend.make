# Empty dependencies file for reclamation_cost.
# This may be replaced when dependencies are built.
