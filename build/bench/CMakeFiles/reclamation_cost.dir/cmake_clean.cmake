file(REMOVE_RECURSE
  "CMakeFiles/reclamation_cost.dir/reclamation_cost.cpp.o"
  "CMakeFiles/reclamation_cost.dir/reclamation_cost.cpp.o.d"
  "reclamation_cost"
  "reclamation_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reclamation_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
