file(REMOVE_RECURSE
  "CMakeFiles/schedule_acceptance.dir/schedule_acceptance.cpp.o"
  "CMakeFiles/schedule_acceptance.dir/schedule_acceptance.cpp.o.d"
  "schedule_acceptance"
  "schedule_acceptance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_acceptance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
