# Empty dependencies file for schedule_acceptance.
# This may be replaced when dependencies are built.
