# Empty dependencies file for fig4_grid.
# This may be replaced when dependencies are built.
