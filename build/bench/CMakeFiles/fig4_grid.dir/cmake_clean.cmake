file(REMOVE_RECURSE
  "CMakeFiles/fig4_grid.dir/fig4_grid.cpp.o"
  "CMakeFiles/fig4_grid.dir/fig4_grid.cpp.o.d"
  "fig4_grid"
  "fig4_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
