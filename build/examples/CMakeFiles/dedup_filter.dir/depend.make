# Empty dependencies file for dedup_filter.
# This may be replaced when dependencies are built.
