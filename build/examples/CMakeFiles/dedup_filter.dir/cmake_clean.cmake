file(REMOVE_RECURSE
  "CMakeFiles/dedup_filter.dir/dedup_filter.cpp.o"
  "CMakeFiles/dedup_filter.dir/dedup_filter.cpp.o.d"
  "dedup_filter"
  "dedup_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedup_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
