file(REMOVE_RECURSE
  "CMakeFiles/lincheck_stress.dir/lincheck_stress.cpp.o"
  "CMakeFiles/lincheck_stress.dir/lincheck_stress.cpp.o.d"
  "lincheck_stress"
  "lincheck_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lincheck_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
