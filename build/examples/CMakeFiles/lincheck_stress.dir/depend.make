# Empty dependencies file for lincheck_stress.
# This may be replaced when dependencies are built.
