
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lin/History.cpp" "src/CMakeFiles/vbl_lin.dir/lin/History.cpp.o" "gcc" "src/CMakeFiles/vbl_lin.dir/lin/History.cpp.o.d"
  "/root/repo/src/lin/LinChecker.cpp" "src/CMakeFiles/vbl_lin.dir/lin/LinChecker.cpp.o" "gcc" "src/CMakeFiles/vbl_lin.dir/lin/LinChecker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vbl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
