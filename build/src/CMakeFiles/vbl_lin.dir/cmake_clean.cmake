file(REMOVE_RECURSE
  "CMakeFiles/vbl_lin.dir/lin/History.cpp.o"
  "CMakeFiles/vbl_lin.dir/lin/History.cpp.o.d"
  "CMakeFiles/vbl_lin.dir/lin/LinChecker.cpp.o"
  "CMakeFiles/vbl_lin.dir/lin/LinChecker.cpp.o.d"
  "libvbl_lin.a"
  "libvbl_lin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbl_lin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
