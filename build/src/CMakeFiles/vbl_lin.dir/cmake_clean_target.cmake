file(REMOVE_RECURSE
  "libvbl_lin.a"
)
