# Empty dependencies file for vbl_lin.
# This may be replaced when dependencies are built.
