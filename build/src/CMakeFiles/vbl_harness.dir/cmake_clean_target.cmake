file(REMOVE_RECURSE
  "libvbl_harness.a"
)
