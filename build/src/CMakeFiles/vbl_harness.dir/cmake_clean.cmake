file(REMOVE_RECURSE
  "CMakeFiles/vbl_harness.dir/harness/Runner.cpp.o"
  "CMakeFiles/vbl_harness.dir/harness/Runner.cpp.o.d"
  "CMakeFiles/vbl_harness.dir/harness/TablePrinter.cpp.o"
  "CMakeFiles/vbl_harness.dir/harness/TablePrinter.cpp.o.d"
  "CMakeFiles/vbl_harness.dir/harness/Workload.cpp.o"
  "CMakeFiles/vbl_harness.dir/harness/Workload.cpp.o.d"
  "libvbl_harness.a"
  "libvbl_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbl_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
