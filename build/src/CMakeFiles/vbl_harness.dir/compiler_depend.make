# Empty compiler generated dependencies file for vbl_harness.
# This may be replaced when dependencies are built.
