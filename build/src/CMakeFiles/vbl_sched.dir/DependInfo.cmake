
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/InterleavingExplorer.cpp" "src/CMakeFiles/vbl_sched.dir/sched/InterleavingExplorer.cpp.o" "gcc" "src/CMakeFiles/vbl_sched.dir/sched/InterleavingExplorer.cpp.o.d"
  "/root/repo/src/sched/Schedule.cpp" "src/CMakeFiles/vbl_sched.dir/sched/Schedule.cpp.o" "gcc" "src/CMakeFiles/vbl_sched.dir/sched/Schedule.cpp.o.d"
  "/root/repo/src/sched/ScheduleChecker.cpp" "src/CMakeFiles/vbl_sched.dir/sched/ScheduleChecker.cpp.o" "gcc" "src/CMakeFiles/vbl_sched.dir/sched/ScheduleChecker.cpp.o.d"
  "/root/repo/src/sched/ScheduleExport.cpp" "src/CMakeFiles/vbl_sched.dir/sched/ScheduleExport.cpp.o" "gcc" "src/CMakeFiles/vbl_sched.dir/sched/ScheduleExport.cpp.o.d"
  "/root/repo/src/sched/SpecInterpreter.cpp" "src/CMakeFiles/vbl_sched.dir/sched/SpecInterpreter.cpp.o" "gcc" "src/CMakeFiles/vbl_sched.dir/sched/SpecInterpreter.cpp.o.d"
  "/root/repo/src/sched/StepScheduler.cpp" "src/CMakeFiles/vbl_sched.dir/sched/StepScheduler.cpp.o" "gcc" "src/CMakeFiles/vbl_sched.dir/sched/StepScheduler.cpp.o.d"
  "/root/repo/src/sched/TracedPolicy.cpp" "src/CMakeFiles/vbl_sched.dir/sched/TracedPolicy.cpp.o" "gcc" "src/CMakeFiles/vbl_sched.dir/sched/TracedPolicy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vbl_lists.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vbl_lin.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vbl_reclaim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vbl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
