file(REMOVE_RECURSE
  "CMakeFiles/vbl_sched.dir/sched/InterleavingExplorer.cpp.o"
  "CMakeFiles/vbl_sched.dir/sched/InterleavingExplorer.cpp.o.d"
  "CMakeFiles/vbl_sched.dir/sched/Schedule.cpp.o"
  "CMakeFiles/vbl_sched.dir/sched/Schedule.cpp.o.d"
  "CMakeFiles/vbl_sched.dir/sched/ScheduleChecker.cpp.o"
  "CMakeFiles/vbl_sched.dir/sched/ScheduleChecker.cpp.o.d"
  "CMakeFiles/vbl_sched.dir/sched/ScheduleExport.cpp.o"
  "CMakeFiles/vbl_sched.dir/sched/ScheduleExport.cpp.o.d"
  "CMakeFiles/vbl_sched.dir/sched/SpecInterpreter.cpp.o"
  "CMakeFiles/vbl_sched.dir/sched/SpecInterpreter.cpp.o.d"
  "CMakeFiles/vbl_sched.dir/sched/StepScheduler.cpp.o"
  "CMakeFiles/vbl_sched.dir/sched/StepScheduler.cpp.o.d"
  "CMakeFiles/vbl_sched.dir/sched/TracedPolicy.cpp.o"
  "CMakeFiles/vbl_sched.dir/sched/TracedPolicy.cpp.o.d"
  "libvbl_sched.a"
  "libvbl_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbl_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
