# Empty compiler generated dependencies file for vbl_sched.
# This may be replaced when dependencies are built.
