file(REMOVE_RECURSE
  "libvbl_sched.a"
)
