# Empty dependencies file for vbl_support.
# This may be replaced when dependencies are built.
