file(REMOVE_RECURSE
  "libvbl_support.a"
)
