
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/AsciiChart.cpp" "src/CMakeFiles/vbl_support.dir/support/AsciiChart.cpp.o" "gcc" "src/CMakeFiles/vbl_support.dir/support/AsciiChart.cpp.o.d"
  "/root/repo/src/support/CommandLine.cpp" "src/CMakeFiles/vbl_support.dir/support/CommandLine.cpp.o" "gcc" "src/CMakeFiles/vbl_support.dir/support/CommandLine.cpp.o.d"
  "/root/repo/src/support/Csv.cpp" "src/CMakeFiles/vbl_support.dir/support/Csv.cpp.o" "gcc" "src/CMakeFiles/vbl_support.dir/support/Csv.cpp.o.d"
  "/root/repo/src/support/Stats.cpp" "src/CMakeFiles/vbl_support.dir/support/Stats.cpp.o" "gcc" "src/CMakeFiles/vbl_support.dir/support/Stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
