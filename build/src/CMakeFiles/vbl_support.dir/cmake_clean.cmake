file(REMOVE_RECURSE
  "CMakeFiles/vbl_support.dir/support/AsciiChart.cpp.o"
  "CMakeFiles/vbl_support.dir/support/AsciiChart.cpp.o.d"
  "CMakeFiles/vbl_support.dir/support/CommandLine.cpp.o"
  "CMakeFiles/vbl_support.dir/support/CommandLine.cpp.o.d"
  "CMakeFiles/vbl_support.dir/support/Csv.cpp.o"
  "CMakeFiles/vbl_support.dir/support/Csv.cpp.o.d"
  "CMakeFiles/vbl_support.dir/support/Stats.cpp.o"
  "CMakeFiles/vbl_support.dir/support/Stats.cpp.o.d"
  "libvbl_support.a"
  "libvbl_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbl_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
