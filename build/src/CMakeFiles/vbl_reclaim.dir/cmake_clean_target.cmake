file(REMOVE_RECURSE
  "libvbl_reclaim.a"
)
