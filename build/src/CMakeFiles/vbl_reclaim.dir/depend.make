# Empty dependencies file for vbl_reclaim.
# This may be replaced when dependencies are built.
