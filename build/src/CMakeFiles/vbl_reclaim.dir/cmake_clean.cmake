file(REMOVE_RECURSE
  "CMakeFiles/vbl_reclaim.dir/reclaim/EpochDomain.cpp.o"
  "CMakeFiles/vbl_reclaim.dir/reclaim/EpochDomain.cpp.o.d"
  "CMakeFiles/vbl_reclaim.dir/reclaim/HazardPointerDomain.cpp.o"
  "CMakeFiles/vbl_reclaim.dir/reclaim/HazardPointerDomain.cpp.o.d"
  "CMakeFiles/vbl_reclaim.dir/reclaim/TrackingDomain.cpp.o"
  "CMakeFiles/vbl_reclaim.dir/reclaim/TrackingDomain.cpp.o.d"
  "libvbl_reclaim.a"
  "libvbl_reclaim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbl_reclaim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
