file(REMOVE_RECURSE
  "CMakeFiles/vbl_lists.dir/lists/Registry.cpp.o"
  "CMakeFiles/vbl_lists.dir/lists/Registry.cpp.o.d"
  "libvbl_lists.a"
  "libvbl_lists.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbl_lists.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
