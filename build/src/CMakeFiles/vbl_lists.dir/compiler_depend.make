# Empty compiler generated dependencies file for vbl_lists.
# This may be replaced when dependencies are built.
