file(REMOVE_RECURSE
  "libvbl_lists.a"
)
