#!/usr/bin/env python3
"""Reject std::atomic operations that rely on the default memory order.

Every list in this repo states its required ordering explicitly — the
paper's schedules are about *which* accesses synchronize, so an implicit
seq_cst hides a design decision (and quietly costs fences on weaker
architectures). This lint scans C++ sources for calls to the atomic
member functions

    load  store  exchange  compare_exchange_weak  compare_exchange_strong
    fetch_add  fetch_sub  fetch_and  fetch_or  fetch_xor  test_and_set

and fails unless the argument list names a std::memory_order. (clear and
wait are omitted: the names collide with the STL container methods and a
textual lint cannot tell them apart.) Calls are matched across line
breaks by balancing parentheses, so formatting does not matter.

The same rule covers the free-function forms: atomic_thread_fence and
atomic_signal_fence must name their order (they take one positional
argument, so a bare call cannot even default it — this catches the
half-written fence), and the C-style free functions atomic_load,
atomic_store, atomic_exchange, atomic_compare_exchange_* and
atomic_fetch_* are rejected outright unless an order token appears
among the arguments — use the *_explicit variants (which the lint's
word-boundary match naturally accepts once the order is spelled) or,
better, the member functions.

A line may opt out with a trailing `// atomics-lint: allow(<reason>)`
comment; the reason is mandatory and is echoed in the report.

Usage: check_atomics.py [--root DIR] [PATHS...]
Default paths: src/ (relative to --root, default: repo root). Test code
is exempt by default: seq_cst is the right call for assertion plumbing.
Exit status 0 if clean, 1 if violations were found.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# Member functions that accept a memory_order argument. clear/wait are
# excluded (container-method name collisions); notify_* take no order.
ORDERED_METHODS = (
    "load",
    "store",
    "exchange",
    "compare_exchange_weak",
    "compare_exchange_strong",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "test_and_set",
)

CALL_RE = re.compile(
    r"[.\->]\s*(" + "|".join(ORDERED_METHODS) + r")\s*\("
)

# Free functions that take (or should take) an explicit order. The
# match requires '(' directly after the name, so the *_explicit
# variants never match (their suffix breaks the name), and a preceding
# [.\->] is rejected so member calls stay CALL_RE's business.
FREE_FUNCTIONS = (
    "atomic_thread_fence",
    "atomic_signal_fence",
    "atomic_load",
    "atomic_store",
    "atomic_exchange",
    "atomic_compare_exchange_weak",
    "atomic_compare_exchange_strong",
    "atomic_fetch_add",
    "atomic_fetch_sub",
    "atomic_fetch_and",
    "atomic_fetch_or",
    "atomic_fetch_xor",
)

FREE_RE = re.compile(
    r"(?<![.\w>])(?:std\s*::\s*)?(" + "|".join(FREE_FUNCTIONS) + r")\s*\("
)
ALLOW_RE = re.compile(r"//\s*atomics-lint:\s*allow\(([^)]*)\)")
SUFFIXES = {".h", ".hpp", ".cc", ".cpp", ".cxx"}

# Identifiers that satisfy the lint when they appear among a call's
# arguments. Both the std:: spellings and this repo's own Order
# variables (policy hooks thread the order through by parameter).
ORDER_TOKEN_RE = re.compile(r"\bmemory_order\w*\b|\bOrder\w*\b|\bFailOrder\b")


def balanced_args(text: str, open_paren: int) -> str | None:
    """Returns the argument text of the call whose '(' is at open_paren,
    or None if the parenthesis never closes (macro soup, etc.)."""
    depth = 0
    for i in range(open_paren, len(text)):
        c = text[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1 : i]
    return None


def strip_comments(text: str) -> str:
    """Blanks out comments and string literals, preserving offsets and
    newlines so line numbers stay valid."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join("\n" if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(" " * (j - i))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def check_file(path: pathlib.Path) -> list[str]:
    raw = path.read_text(encoding="utf-8", errors="replace")
    text = strip_comments(raw)
    raw_lines = raw.splitlines()
    violations = []

    def check_calls(regex: re.Pattern[str], describe) -> None:
        for match in regex.finditer(text):
            name = match.group(1)
            args = balanced_args(text, match.end() - 1)
            if args is None:
                continue
            if ORDER_TOKEN_RE.search(args):
                continue
            line_no = text.count("\n", 0, match.start()) + 1
            line = raw_lines[line_no - 1] if line_no <= len(raw_lines) else ""
            allow = ALLOW_RE.search(line)
            if allow:
                reason = allow.group(1).strip()
                if reason:
                    continue
                violations.append(
                    f"{path}:{line_no}: atomics-lint: allow() needs a reason"
                )
                continue
            violations.append(f"{path}:{line_no}: {describe(name)}")

    check_calls(
        CALL_RE,
        lambda m: f".{m}() without an explicit std::memory_order",
    )
    check_calls(
        FREE_RE,
        lambda f: (
            f"{f}() without an explicit std::memory_order"
            + (
                ""
                if f.endswith("_fence")
                else f" (use {f}_explicit or the member function)"
            )
        ),
    )
    return violations


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None, help="repo root")
    parser.add_argument("paths", nargs="*", default=None)
    args = parser.parse_args(argv)

    root = (
        pathlib.Path(args.root)
        if args.root
        else pathlib.Path(__file__).resolve().parent.parent
    )
    targets = args.paths or ["src"]

    files: list[pathlib.Path] = []
    for target in targets:
        path = root / target
        if path.is_file():
            files.append(path)
        elif path.is_dir():
            files.extend(
                p for p in sorted(path.rglob("*")) if p.suffix in SUFFIXES
            )
        else:
            print(f"check_atomics: no such path: {path}", file=sys.stderr)
            return 2

    violations: list[str] = []
    for file in files:
        violations.extend(check_file(file))

    for v in violations:
        print(v)
    print(
        f"check_atomics: {len(files)} files scanned, "
        f"{len(violations)} violation(s)"
    )
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
