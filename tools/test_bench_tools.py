#!/usr/bin/env python3
"""Unit tests for the bench tooling (bench_compare, split_bench_domains,
run_benches) on crafted malformed inputs.

Each tool is exercised as a subprocess, the way CI invokes it, so the
tests pin exit codes and diagnostics, not internals:

 - bench_compare --field p99_ns on records with zero or null latency
   percentiles must skip-with-note, not raise ZeroDivisionError or
   TypeError mid-compare;
 - split_bench_domains and run_benches must fail with a named
   file/record diagnostic (exit 1) on malformed JSON instead of a
   stacktrace.

Invoked from ctest as bench_tools_selftest.
"""

import json
import os
import stat
import subprocess
import sys
import tempfile
import unittest

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))


def run_tool(name, *argv):
    return subprocess.run(
        [sys.executable, os.path.join(TOOLS_DIR, name)] + list(argv),
        capture_output=True, text=True)


def bench_doc(records):
    return {"schema": "vbl-bench-v1", "context": {}, "records": records}


def record(structure, threads, throughput, p99):
    return {
        "bench": "latency_profile", "structure": structure,
        "threads": threads, "key_range": 1024, "update_pct": 20,
        "throughput_ops_s": throughput, "p99_latency_ns": p99,
    }


class TempDocs(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def write(self, name, payload):
        path = os.path.join(self.dir.name, name)
        with open(path, "w", encoding="utf-8") as handle:
            if isinstance(payload, str):
                handle.write(payload)
            else:
                json.dump(payload, handle)
        return path


class BenchCompareLatencyTest(TempDocs):
    def test_zero_and_null_latency_skip_with_note(self):
        # One comparable point, one null-latency point, one zero-latency
        # point: the gate must compare the first and skip the rest with
        # a note — the zero used to raise ZeroDivisionError in the
        # inverted baseline/candidate ratio.
        base = self.write("base.json", bench_doc([
            record("vbl", 1, 1e6, 800.0),
            record("lazy", 1, 1e6, None),
            record("harris-michael", 1, 1e6, 0.0),
        ]))
        cand = self.write("cand.json", bench_doc([
            record("vbl", 1, 1e6, 780.0),
            record("lazy", 1, 1e6, 900.0),
            record("harris-michael", 1, 1e6, 850.0),
        ]))
        result = run_tool("bench_compare.py", "--baseline", base,
                          "--candidate", cand, "--field", "p99_ns")
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("skipped 2 point(s)", result.stdout)
        self.assertNotIn("Traceback", result.stderr)

    def test_zero_candidate_latency_skips(self):
        base = self.write("base.json", bench_doc([
            record("vbl", 1, 1e6, 800.0),
            record("lazy", 1, 1e6, 750.0),
        ]))
        cand = self.write("cand.json", bench_doc([
            record("vbl", 1, 1e6, 810.0),
            record("lazy", 1, 1e6, 0),
        ]))
        result = run_tool("bench_compare.py", "--baseline", base,
                          "--candidate", cand, "--field", "p99_ns")
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("skipped 1 point(s)", result.stdout)

    def test_all_points_skipped_is_a_format_error(self):
        base = self.write("base.json",
                          bench_doc([record("vbl", 1, 1e6, None)]))
        cand = self.write("cand.json",
                          bench_doc([record("vbl", 1, 1e6, 700.0)]))
        result = run_tool("bench_compare.py", "--baseline", base,
                          "--candidate", cand, "--field", "p99_ns")
        self.assertEqual(result.returncode, 2)
        self.assertIn("no comparable points", result.stderr)


class SplitBenchDomainsTest(TempDocs):
    def out_dir(self):
        return os.path.join(self.dir.name, "out")

    def test_malformed_json_named_exit_1(self):
        merged = self.write("merged.json", "{\"schema\": \"vbl-bench-")
        result = run_tool("split_bench_domains.py", "--merged", merged,
                          "--out-dir", self.out_dir())
        self.assertEqual(result.returncode, 1, result.stderr)
        self.assertIn("merged.json", result.stderr)
        self.assertIn("malformed", result.stderr)
        self.assertNotIn("Traceback", result.stderr)

    def test_non_object_record_named_exit_1(self):
        merged = self.write("merged.json", {
            "schema": "vbl-bench-v1",
            "records": [{"bench": "micro_reclaim",
                         "structure": "guard/vbr"}, "oops"],
        })
        result = run_tool("split_bench_domains.py", "--merged", merged,
                          "--out-dir", self.out_dir())
        self.assertEqual(result.returncode, 1, result.stderr)
        self.assertIn("record #1", result.stderr)
        self.assertNotIn("Traceback", result.stderr)

    def test_well_formed_doc_splits(self):
        merged = self.write("merged.json", {
            "schema": "vbl-bench-v1", "context": {},
            "records": [
                {"bench": "micro_reclaim", "structure": "guard/vbr"},
                {"bench": "micro_reclaim", "structure": "vbl-leaky"},
            ],
        })
        result = run_tool("split_bench_domains.py", "--merged", merged,
                          "--out-dir", self.out_dir())
        self.assertEqual(result.returncode, 0, result.stderr)
        for domain in ("vbr", "leaky"):
            path = os.path.join(self.out_dir(), f"BENCH_{domain}.json")
            with open(path, encoding="utf-8") as handle:
                doc = json.load(handle)
            self.assertEqual(len(doc["records"]), 1)


class RunBenchesMalformedTest(TempDocs):
    def test_bench_emitting_malformed_json_named_exit_1(self):
        # Fake build dir whose first suite binary writes a truncated
        # document, as a bench dying mid-write would.
        bench_dir = os.path.join(self.dir.name, "bench")
        os.makedirs(bench_dir)
        fake = os.path.join(bench_dir, "fig1_small_contended")
        with open(fake, "w", encoding="utf-8") as handle:
            handle.write("#!/bin/sh\n"
                         "out=\"\"\n"
                         "while [ $# -gt 0 ]; do\n"
                         "  if [ \"$1\" = \"--json\" ]; then out=\"$2\"; "
                         "shift; fi\n"
                         "  shift\n"
                         "done\n"
                         "printf '{\"schema\": \"vbl-be' > \"$out\"\n")
        os.chmod(fake, os.stat(fake).st_mode | stat.S_IXUSR)
        out = os.path.join(self.dir.name, "merged.json")
        result = run_tool("run_benches.py", "--build-dir", self.dir.name,
                          "--out", out)
        self.assertEqual(result.returncode, 1, result.stderr)
        self.assertIn("fig1_small_contended", result.stderr)
        self.assertIn("malformed", result.stderr)
        self.assertNotIn("Traceback", result.stderr)
        self.assertFalse(os.path.exists(out))


if __name__ == "__main__":
    unittest.main()
