#!/usr/bin/env python3
"""Run the short-duration benchmark suite and merge the JSON outputs.

Produces one vbl-bench-v1 document from a fixed set of short bench
invocations (fig1_small_contended, hashset_scaling, micro_reclaim,
reclamation_cost, readonly_traversal, skiplist_crossover,
unrolled_crossover, latency_profile, service_throughput, micro_locks
and schedule_acceptance), stamped with
run context (git sha, host, core count, date). This is the suite the
CI bench-smoke job runs on every PR; tools/bench_compare.py gates the
result against the committed BENCH_baseline.json.

Usage:
  tools/run_benches.py --build-dir build --out BENCH_local.json
  tools/run_benches.py --build-dir build --out BENCH_baseline.json \
      --repeats 3 --duration-ms 80
"""

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
from datetime import datetime, timezone


def bench_invocations(args):
    """The suite: (binary, extra flags). Short windows — the gate
    detects gross regressions, not single-digit drift."""
    common = [
        "--duration-ms", str(args.duration_ms),
        "--warmup-ms", str(args.warmup_ms),
        "--repeats", str(args.repeats),
        "--seed", str(args.seed),
    ]
    return [
        ("fig1_small_contended", common + ["--threads", args.threads]),
        # The 64k+ ranges stay out of the smoke suite: their windows are
        # dominated by prefill/cache state and too noisy to gate on.
        # --phased adds the grow/shrink panel: grow-only vs
        # resize-enabled tables under alternating fill/drain phases,
        # the workload the index-swap machinery exists for.
        ("hashset_scaling", common + ["--threads", args.threads,
                                      "--ranges", "1024,16384",
                                      "--latency",
                                      "--phased", "--phase-ms", "30",
                                      "--phases", "4",
                                      "--phased-range", "4096"]),
        # Reclamation primitives plus the pool-vs-bypass churn ratio;
        # gates the node-pool fast path against regressions.
        ("micro_reclaim", common + ["--churn-threads", args.threads,
                                    "--churn-ranges", "128,1024"]),
        # The 4-way reclamation comparison (leaky/EBR/VBR per lock-based
        # list, leaky/EBR/HP for harris-michael); gates the VBR read
        # protocol's overhead and EBR's announce cost end to end.
        ("reclamation_cost", common + ["--threads", args.threads]),
        # The §1 read-only claim (VBL vs Harris-Michael traversals).
        ("readonly_traversal", common + ["--threads", args.threads,
                                         "--ranges", "200,2000"]),
        # List vs skip-list crossover, small ranges only (see above).
        ("skiplist_crossover", common + ["--threads", args.threads,
                                         "--ranges", "200,2000"]),
        # Scan mixes: chunked vs flat vs lock-free rangeQuery. One
        # mixed and one scan-heavy panel at the 8k crossover range —
        # the chunk-window speedup this suite gates; the point-only
        # baseline panels already live in unrolled_crossover.
        ("range_scan", common + ["--threads", args.threads,
                                 "--ranges", "8192",
                                 "--scan-percents", "10,50",
                                 "--scan-lengths", "1024",
                                 "--structures",
                                 "vbl-chunk,vbl,harris-michael"]),
        # Unrolled chunk crossover: the flat-vs-chunked gate. 8192 is
        # the smallest range where the cache-line win must already
        # show; 64k stays out of the smoke suite like everywhere else.
        # --hotcold adds the adaptive-shapes panel: contended hot
        # region + read-mostly cold region, adaptive K vs static K.
        ("unrolled_crossover", common + ["--threads", args.threads,
                                         "--ranges", "128,8192",
                                         "--hotcold",
                                         "--hotcold-range", "4096",
                                         "--hot-keys", "64",
                                         "--hot-percent", "50"]),
        # Per-op tails under the Fig. 1 workload; its latency windows
        # are single repetitions, so no --warmup-ms/--repeats.
        ("latency_profile", ["--threads", args.threads,
                             "--duration-ms", str(args.duration_ms),
                             "--seed", str(args.seed),
                             "--algos", "vbl,lazy,harris-michael"]),
        # Sharded front-end smoke: uniform vs heavy skew, direct vs
        # batched, small session table so the point stays short.
        ("service_throughput", common + ["--threads", args.threads,
                                         "--backends", "vbl",
                                         "--theta", "0,0.99",
                                         "--modes", "direct,batch",
                                         "--shards", "4",
                                         "--sessions", "512",
                                         "--range", "4096"]),
        # Google-Benchmark binary: its own flag set; the uncontended
        # lock costs are stable enough to gate on.
        ("micro_locks", ["--benchmark_filter=uncontended/.*",
                         "--benchmark_min_time=0.05"]),
        # Deterministic schedule counts (Figs. 2-3 matrix): compared at
        # effectively zero tolerance, so any acceptance regression in
        # vbl/lazy trips the gate outright.
        ("schedule_acceptance", ["--max-episodes", "4000"]),
    ]


def git_sha(repo_root):
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=repo_root, check=True,
            capture_output=True, text=True)
        return out.stdout.strip()
    except (subprocess.CalledProcessError, FileNotFoundError):
        return "unknown"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory containing bench/")
    parser.add_argument("--out", required=True,
                        help="path for the merged JSON document")
    parser.add_argument("--threads", default="1,2",
                        help="thread counts passed to every bench")
    parser.add_argument("--duration-ms", type=int, default=120)
    parser.add_argument("--warmup-ms", type=int, default=40)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    bench_dir = os.path.join(args.build_dir, "bench")

    records = []
    contexts = {}
    for name, flags in bench_invocations(args):
        binary = os.path.join(bench_dir, name)
        if not os.path.exists(binary):
            print(f"error: bench binary not found: {binary}",
                  file=sys.stderr)
            return 2
        with tempfile.NamedTemporaryFile(suffix=".json",
                                         delete=False) as tmp:
            tmp_path = tmp.name
        try:
            cmd = [binary, "--json", tmp_path] + flags
            print("+ " + " ".join(cmd), flush=True)
            subprocess.run(cmd, check=True)
            try:
                with open(tmp_path, encoding="utf-8") as handle:
                    doc = json.load(handle)
            except json.JSONDecodeError as err:
                # A bench that dies mid-write leaves a truncated
                # document; name the bench and the parse position
                # instead of dumping a stacktrace.
                print(f"error: {name} emitted malformed JSON: {err}",
                      file=sys.stderr)
                return 1
            if not isinstance(doc, dict):
                print(f"error: {name} emitted a JSON "
                      f"{type(doc).__name__}, not an object",
                      file=sys.stderr)
                return 1
            if doc.get("schema") != "vbl-bench-v1":
                print(f"error: {name} produced unknown schema "
                      f"{doc.get('schema')!r}", file=sys.stderr)
                return 2
            records.extend(doc.get("records", []))
            contexts.update(doc.get("context", {}))
        finally:
            os.unlink(tmp_path)

    contexts.pop("bench_binary", None)
    contexts.update({
        "sha": git_sha(repo_root),
        "host": platform.node() or "unknown",
        "nproc": str(os.cpu_count() or 0),
        "date": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "duration_ms": str(args.duration_ms),
        "repeats": str(args.repeats),
    })
    merged = {"schema": "vbl-bench-v1", "context": contexts,
              "records": records}
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2)
        handle.write("\n")
    print(f"wrote {len(records)} records to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
