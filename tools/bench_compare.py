#!/usr/bin/env python3
"""Gate a benchmark run against a committed baseline.

Matches candidate records to baseline records on the identity tuple
(bench, structure, threads, key_range, update_pct) and compares a
chosen field: throughput by default, or a latency percentile via
--field p50_ns / p99_ns / p999_ns (latency ratios are inverted —
baseline/candidate — so that > 1 is an improvement for every field,
and points where either side lacks the percentile are skipped with a
note rather than failing, since throughput-only sweeps emit null
latencies). Because the baseline and the candidate almost never run on
the same machine (committed baseline vs CI runner), raw ratios mix
machine speed with real regressions; instead the gate normalizes every
candidate/baseline ratio by the median ratio of its thread-count group
— a uniformly faster machine scales every point equally and cancels
out, and grouping by thread count also cancels core-topology
differences (a 2-core runner speeds up 2-thread points without moving
1-thread points).

The verdict is per structure, not per point: the geometric mean of a
structure's normalized ratios must stay above 1 - tolerance. Averaging
a structure's points cancels the per-window scheduling noise that
single short measurements carry, while the regressions this gate
exists for — an accidental O(n) walk, a lost fast path — slow a
structure across its whole sweep and move the geomean right through
the floor. Per-point ratios are printed for diagnosis.

Exit codes: 0 = pass, 1 = regression detected, 2 = usage/format error.

Usage:
  tools/bench_compare.py --baseline BENCH_baseline.json \
      --candidate BENCH_abc123.json --tolerance 0.25
"""

import argparse
import json
import sys
from statistics import geometric_mean, median

# --field name -> (json key, True when smaller raw values are better).
FIELDS = {
    "throughput": ("throughput_ops_s", False),
    "p50_ns": ("p50_latency_ns", True),
    "p99_ns": ("p99_latency_ns", True),
    "p999_ns": ("p999_latency_ns", True),
}


def load_records(path):
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        return None
    if doc.get("schema") != "vbl-bench-v1":
        print(f"error: {path}: unknown schema {doc.get('schema')!r}",
              file=sys.stderr)
        return None
    records = {}
    for index, record in enumerate(doc.get("records", [])):
        # A malformed record used to surface as a bare KeyError with no
        # hint which file or record was at fault; name both instead.
        try:
            key = (record["bench"], record["structure"], record["threads"],
                   record["key_range"], record["update_pct"])
        except (KeyError, TypeError) as err:
            ident = (record.get("structure") or record.get("bench") or "?"
                     ) if isinstance(record, dict) else type(record).__name__
            print(f"error: {path}: record #{index} ({ident}) lacks "
                  f"identity field {err}", file=sys.stderr)
            return None
        records[key] = record
    return records


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--candidate", required=True)
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed normalized shortfall (0.25 = a "
                        "point may be 25%% below the run's median "
                        "speed ratio)")
    parser.add_argument("--field", choices=sorted(FIELDS),
                        default="throughput",
                        help="record field to gate on (latency fields "
                        "compare baseline/candidate, so > 1 is always "
                        "an improvement)")
    args = parser.parse_args()
    field_key, smaller_is_better = FIELDS[args.field]

    baseline = load_records(args.baseline)
    candidate = load_records(args.candidate)
    if baseline is None or candidate is None:
        return 2
    if not baseline:
        print(f"error: {args.baseline} has no records", file=sys.stderr)
        return 2

    matched = []
    missing = []
    skipped = 0
    for key, base in baseline.items():
        cand = candidate.get(key)
        if cand is None:
            missing.append(key)
            continue
        base_val = base.get(field_key)
        cand_val = cand.get(field_key)
        if base_val is None or cand_val is None:
            # Latency percentiles are null on throughput-only sweeps;
            # a null is absent data, not a regression.
            skipped += 1
            continue
        base_val = float(base_val)
        cand_val = float(cand_val)
        if base_val <= 0 or cand_val <= 0:
            # A zero percentile means the histogram never saw a sample
            # (e.g. a mix with no ops of the profiled kind) — comparing
            # it would divide by zero; absent data, same as null.
            skipped += 1
            continue
        # Orient every ratio so > 1 means the candidate improved.
        ratio = (base_val / cand_val if smaller_is_better
                 else cand_val / base_val)
        matched.append((key, ratio, base_val, cand_val))

    if missing:
        for key in missing:
            print(f"error: candidate is missing baseline point {key}",
                  file=sys.stderr)
        return 2
    if skipped:
        print(f"note: skipped {skipped} point(s) without "
              f"{field_key} on both sides")
    if not matched:
        print("error: no comparable points", file=sys.stderr)
        return 2

    global_scale = median(ratio for _, ratio, _, _ in matched)
    if global_scale <= 0:
        print(f"error: nonsensical median speed ratio {global_scale}",
              file=sys.stderr)
        return 2
    groups = {}
    for key, ratio, _, _ in matched:
        groups.setdefault(key[2], []).append(ratio)
    # Small groups fall back to the global normalizer: a median over a
    # couple of points would let a regressed point normalize itself.
    scales = {threads: (median(ratios) if len(ratios) >= 3
                        else global_scale)
              for threads, ratios in groups.items()}
    print(f"{len(matched)} matched points on {field_key}; median ratio "
          f"= {global_scale:.3f}, per-thread-group " +
          ", ".join(f"{t}t={s:.3f}" for t, s in sorted(scales.items())))

    floor = 1.0 - args.tolerance
    structures = {}
    for key, ratio, base_val, cand_val in sorted(
            matched, key=lambda item: item[1]):
        normalized = ratio / scales[key[2]]
        print(f"  [point] {key}: base {base_val:.4g}, "
              f"cand {cand_val:.4g}, raw x{ratio:.3f}, "
              f"normalized x{normalized:.3f}")
        structures.setdefault((key[0], key[1]), []).append(normalized)

    failures = []
    for (bench, structure), ratios in sorted(structures.items()):
        score = geometric_mean(ratios)
        marker = "FAIL" if score < floor else "ok"
        print(f"[{marker}] {bench} / {structure}: normalized geomean "
              f"x{score:.3f} over {len(ratios)} point(s)")
        if score < floor:
            failures.append((bench, structure, score))

    if failures:
        print(f"\nbench gate FAILED: {len(failures)} structure(s) more "
              f"than {args.tolerance:.0%} below the run median",
              file=sys.stderr)
        return 1
    print(f"\nbench gate passed (tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
