#!/usr/bin/env python3
"""Gate a benchmark run against a committed baseline.

Matches candidate records to baseline records on the identity tuple
(bench, structure, threads, key_range, update_pct) and compares
throughput. Because the baseline and the candidate almost never run on
the same machine (committed baseline vs CI runner), raw ratios mix
machine speed with real regressions; instead the gate normalizes every
candidate/baseline ratio by the median ratio of its thread-count group
— a uniformly faster machine scales every point equally and cancels
out, and grouping by thread count also cancels core-topology
differences (a 2-core runner speeds up 2-thread points without moving
1-thread points).

The verdict is per structure, not per point: the geometric mean of a
structure's normalized ratios must stay above 1 - tolerance. Averaging
a structure's points cancels the per-window scheduling noise that
single short measurements carry, while the regressions this gate
exists for — an accidental O(n) walk, a lost fast path — slow a
structure across its whole sweep and move the geomean right through
the floor. Per-point ratios are printed for diagnosis.

Exit codes: 0 = pass, 1 = regression detected, 2 = usage/format error.

Usage:
  tools/bench_compare.py --baseline BENCH_baseline.json \
      --candidate BENCH_abc123.json --tolerance 0.25
"""

import argparse
import json
import sys
from statistics import geometric_mean, median


def load_records(path):
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        return None
    if doc.get("schema") != "vbl-bench-v1":
        print(f"error: {path}: unknown schema {doc.get('schema')!r}",
              file=sys.stderr)
        return None
    records = {}
    for index, record in enumerate(doc.get("records", [])):
        # A malformed record used to surface as a bare KeyError with no
        # hint which file or record was at fault; name both instead.
        try:
            key = (record["bench"], record["structure"], record["threads"],
                   record["key_range"], record["update_pct"])
        except (KeyError, TypeError) as err:
            ident = (record.get("structure") or record.get("bench") or "?"
                     ) if isinstance(record, dict) else type(record).__name__
            print(f"error: {path}: record #{index} ({ident}) lacks "
                  f"identity field {err}", file=sys.stderr)
            return None
        records[key] = record
    return records


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--candidate", required=True)
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed normalized shortfall (0.25 = a "
                        "point may be 25%% below the run's median "
                        "speed ratio)")
    args = parser.parse_args()

    baseline = load_records(args.baseline)
    candidate = load_records(args.candidate)
    if baseline is None or candidate is None:
        return 2
    if not baseline:
        print(f"error: {args.baseline} has no records", file=sys.stderr)
        return 2

    matched = []
    missing = []
    for key, base in baseline.items():
        cand = candidate.get(key)
        if cand is None:
            missing.append(key)
            continue
        base_tput = float(base["throughput_ops_s"])
        cand_tput = float(cand["throughput_ops_s"])
        if base_tput <= 0:
            continue
        matched.append((key, cand_tput / base_tput))

    if missing:
        for key in missing:
            print(f"error: candidate is missing baseline point {key}",
                  file=sys.stderr)
        return 2
    if not matched:
        print("error: no comparable points", file=sys.stderr)
        return 2

    global_scale = median(ratio for _, ratio in matched)
    if global_scale <= 0:
        print(f"error: nonsensical median speed ratio {global_scale}",
              file=sys.stderr)
        return 2
    groups = {}
    for key, ratio in matched:
        groups.setdefault(key[2], []).append(ratio)
    # Small groups fall back to the global normalizer: a median over a
    # couple of points would let a regressed point normalize itself.
    scales = {threads: (median(ratios) if len(ratios) >= 3
                        else global_scale)
              for threads, ratios in groups.items()}
    print(f"{len(matched)} matched points; median speed ratio "
          f"candidate/baseline = {global_scale:.3f}, per-thread-group " +
          ", ".join(f"{t}t={s:.3f}" for t, s in sorted(scales.items())))

    floor = 1.0 - args.tolerance
    structures = {}
    for key, ratio in sorted(matched, key=lambda item: item[1]):
        normalized = ratio / scales[key[2]]
        print(f"  [point] {key}: raw x{ratio:.3f}, "
              f"normalized x{normalized:.3f}")
        structures.setdefault((key[0], key[1]), []).append(normalized)

    failures = []
    for (bench, structure), ratios in sorted(structures.items()):
        score = geometric_mean(ratios)
        marker = "FAIL" if score < floor else "ok"
        print(f"[{marker}] {bench} / {structure}: normalized geomean "
              f"x{score:.3f} over {len(ratios)} point(s)")
        if score < floor:
            failures.append((bench, structure, score))

    if failures:
        print(f"\nbench gate FAILED: {len(failures)} structure(s) more "
              f"than {args.tolerance:.0%} below the run median",
              file=sys.stderr)
        return 1
    print(f"\nbench gate passed (tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
