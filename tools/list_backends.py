#!/usr/bin/env python3
"""List every registered set backend with its description.

Thin wrapper over `service_throughput --list-backends`, which dumps the
C++ registry (lists/Registry.cpp) as tab-separated rows; this renders
them as a table. The same names feed `--algos`/`--backends` flags and
ShardedSet::Options::Backend — unknown names there get "did you mean"
suggestions pointing back here.

Usage:
  tools/list_backends.py [--build-dir build] [--tsv]
  tools/list_backends.py --family hash      # split-ordered tables only
  tools/list_backends.py --family resize    # grow+shrink variants
  tools/list_backends.py --family vbr      # by reclaim domain
"""

import argparse
import os
import subprocess
import sys


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory containing bench/")
    parser.add_argument("--tsv", action="store_true",
                        help="raw tab-separated output (scripting)")
    parser.add_argument("--family", default="",
                        help="only rows whose name or description "
                             "contains this substring (case-insensitive):"
                             " e.g. hash, chunk, resize, adaptive, ebr,"
                             " vbr, hp")
    args = parser.parse_args()

    binary = os.path.join(args.build_dir, "bench", "service_throughput")
    if not os.path.exists(binary):
        print(f"error: {binary} not found; build the repo first "
              f"(cmake --build {args.build_dir})", file=sys.stderr)
        return 2
    out = subprocess.run([binary, "--list-backends"], check=True,
                         capture_output=True, text=True).stdout
    rows = [line.split("\t") for line in out.splitlines() if line]
    if not rows:
        print("error: registry dump was empty", file=sys.stderr)
        return 2
    if args.family:
        # The describe strings carry structured substrate=/domain=/...
        # facets, so one substring filter covers name, family and
        # reclaim-domain queries alike.
        needle = args.family.lower()
        rows = [r for r in rows
                if any(needle in field.lower() for field in r)]
        if not rows:
            print(f"no backends match family '{args.family}'",
                  file=sys.stderr)
            return 1
    if args.tsv:
        sys.stdout.write("".join("\t".join(r) + "\n" for r in rows))
        return 0

    name_w = max(len(r[0]) for r in rows)
    dom_w = max(len(r[2]) for r in rows)
    print(f"{'name':<{name_w}}  {'keys':<{dom_w}}  description")
    print(f"{'-' * name_w}  {'-' * dom_w}  {'-' * 11}")
    for name, describe, domain in rows:
        print(f"{name:<{name_w}}  {domain:<{dom_w}}  {describe}")
    print(f"\n{len(rows)} backends registered")
    return 0


if __name__ == "__main__":
    sys.exit(main())
