#!/usr/bin/env python3
"""Split a merged vbl-bench-v1 document into per-reclamation-domain files.

The reclamation benches (micro_reclaim, reclamation_cost) measure the
same structures under four domains: leaky (no-op ceiling), EBR (the
default), HP (harris-michael only) and VBR. CI uploads one JSON per
domain so a domain's trend can be tracked across runs without
re-filtering the merged document each time.

Only records from the reclamation benches are split; the figure benches
say nothing about reclamation and stay in the merged document alone.

Usage:
  tools/split_bench_domains.py --merged BENCH_abc.json --out-dir out/
"""

import argparse
import json
import os
import sys

def is_reclamation_bench(bench):
    """micro_reclaim stamps its binary name; reclamation_cost's panels
    stamp their titles ("vbl: leaky vs EBR vs VBR", ...)."""
    return bench == "micro_reclaim" or "leaky vs" in bench


def domain_of(structure):
    """Maps a structure name to its reclamation domain. Registry names
    suffix the non-default domain (-leaky, -vbr, -hp); micro_reclaim's
    primitive rows name the domain directly (guard/vbr, retire/hazard);
    churn rows carry a +pool/+bypass suffix on a registry name. EBR is
    the default everywhere it is not named."""
    base = structure.split("+")[0]
    if base.endswith("-leaky") or base.endswith("/leaky"):
        return "leaky"
    if base.endswith("-vbr") or base.endswith("/vbr") \
            or base.endswith("/vbr_mt"):
        return "vbr"
    if base.endswith("-hp") or "hazard" in base:
        return "hp"
    return "ebr"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--merged", required=True,
                        help="merged vbl-bench-v1 document")
    parser.add_argument("--out-dir", required=True,
                        help="directory for the per-domain documents")
    args = parser.parse_args()

    try:
        with open(args.merged, encoding="utf-8") as handle:
            doc = json.load(handle)
    except OSError as err:
        print(f"error: cannot read {args.merged}: {err}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as err:
        # Truncated or hand-edited documents used to surface as a bare
        # stacktrace; name the file and parse position instead.
        print(f"error: {args.merged} is malformed JSON: {err}",
              file=sys.stderr)
        return 1
    if not isinstance(doc, dict):
        print(f"error: {args.merged}: top level is a JSON "
              f"{type(doc).__name__}, not an object", file=sys.stderr)
        return 1
    if doc.get("schema") != "vbl-bench-v1":
        print(f"error: {args.merged}: unknown schema "
              f"{doc.get('schema')!r}", file=sys.stderr)
        return 2

    by_domain = {}
    for index, record in enumerate(doc.get("records", [])):
        if not isinstance(record, dict):
            print(f"error: {args.merged}: record #{index} is a JSON "
                  f"{type(record).__name__}, not an object",
                  file=sys.stderr)
            return 1
        if not is_reclamation_bench(record.get("bench", "")):
            continue
        by_domain.setdefault(domain_of(record.get("structure", "")),
                             []).append(record)
    if not by_domain:
        print("error: no reclamation-bench records to split",
              file=sys.stderr)
        return 2

    os.makedirs(args.out_dir, exist_ok=True)
    for domain, records in sorted(by_domain.items()):
        context = dict(doc.get("context", {}))
        context["reclamation_domain"] = domain
        out_path = os.path.join(args.out_dir, f"BENCH_{domain}.json")
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump({"schema": "vbl-bench-v1", "context": context,
                       "records": records}, handle, indent=2)
            handle.write("\n")
        print(f"wrote {len(records)} {domain} record(s) to {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
