//===- tests/harness/HarnessTest.cpp - Workload/runner/printer tests -----===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "harness/Runner.h"
#include "harness/TablePrinter.h"
#include "harness/Workload.h"

#include <gtest/gtest.h>

using namespace vbl;
using namespace vbl::harness;

TEST(OpPicker, ZeroUpdatesIsAllContains) {
  OpPicker Picker(0);
  Xoshiro256 Rng(1);
  for (int I = 0; I != 1000; ++I)
    EXPECT_EQ(Picker.pick(Rng), SetOp::Contains);
}

TEST(OpPicker, HundredUpdatesHasNoContains) {
  OpPicker Picker(100);
  Xoshiro256 Rng(2);
  int Inserts = 0, Removes = 0;
  for (int I = 0; I != 100000; ++I) {
    const SetOp Op = Picker.pick(Rng);
    ASSERT_NE(Op, SetOp::Contains);
    Inserts += Op == SetOp::Insert;
    Removes += Op == SetOp::Remove;
  }
  // Paper's split: x/2 insert, x/2 remove.
  EXPECT_NEAR(Inserts, 50000, 1500);
  EXPECT_NEAR(Removes, 50000, 1500);
}

TEST(OpPicker, TwentyPercentSplit) {
  OpPicker Picker(20);
  Xoshiro256 Rng(3);
  int Counts[3] = {0, 0, 0};
  for (int I = 0; I != 100000; ++I)
    ++Counts[static_cast<int>(Picker.pick(Rng))];
  EXPECT_NEAR(Counts[static_cast<int>(SetOp::Insert)], 10000, 700);
  EXPECT_NEAR(Counts[static_cast<int>(SetOp::Remove)], 10000, 700);
  EXPECT_NEAR(Counts[static_cast<int>(SetOp::Contains)], 80000, 1500);
}

TEST(OpPicker, OddUpdatePercentSplitsEvenly) {
  // Regression: pick() used to reuse the percent roll for the
  // insert/remove split ("Roll * 2 < UpdatePercent"), which at x=5
  // sent update rolls {0,1,2} to insert and {3,4} to remove — a 3:2
  // bias that unbalanced the workload's steady-state set size. With an
  // independent fair coin |inserts - removes| stays within noise.
  OpPicker Picker(5);
  Xoshiro256 Rng(4);
  int Inserts = 0, Removes = 0, Contains = 0;
  constexpr int Trials = 200000;
  for (int I = 0; I != Trials; ++I) {
    switch (Picker.pick(Rng)) {
    case SetOp::Insert:
      ++Inserts;
      break;
    case SetOp::Remove:
      ++Removes;
      break;
    case SetOp::Contains:
      ++Contains;
      break;
    case SetOp::RangeQuery:
      vbl_unreachable("OpPicker yields point ops only");
    }
  }
  EXPECT_EQ(Inserts + Removes + Contains, Trials);
  const int Updates = Inserts + Removes;
  // Binomial(200000, 0.05): 10000 with sigma ~98; 600 is ~6 sigma.
  EXPECT_NEAR(Updates, Trials / 20, 600);
  // Fair split: I - R has sigma = sqrt(Updates) ~= 100, so 400 is
  // 4 sigma. The old skew put the difference near Updates/5 = 2000.
  EXPECT_NEAR(Inserts - Removes, 0, 400);
}

TEST(Prefill, HalfDensity) {
  auto Set = makeSet("vbl");
  const size_t Inserted = prefill(*Set, 2000, 9);
  EXPECT_EQ(Set->snapshot().size(), Inserted);
  // Binomial(2000, 0.5): 1000 +- ~100 is > 4 sigma.
  EXPECT_NEAR(static_cast<double>(Inserted), 1000.0, 100.0);
}

TEST(Prefill, DeterministicForSeed) {
  auto A = makeSet("vbl");
  auto B = makeSet("lazy");
  prefill(*A, 500, 77);
  prefill(*B, 500, 77);
  EXPECT_EQ(A->snapshot(), B->snapshot())
      << "same seed must give identical initial sets across algorithms";
}

TEST(Runner, ProducesPlausibleThroughput) {
  WorkloadConfig Config;
  Config.UpdatePercent = 20;
  Config.KeyRange = 64;
  Config.Threads = 2;
  Config.DurationMs = 30;
  Config.WarmupMs = 5;
  auto Set = makeSet("vbl");
  prefill(*Set, Config.KeyRange, 1);
  const RunResult Result = runOnce(*Set, Config);
  EXPECT_TRUE(Result.InvariantsHeld);
  EXPECT_GT(Result.TotalOps, 1000u);
  EXPECT_GT(Result.OpsPerSecond, 0.0);
  EXPECT_NEAR(Result.Seconds, 0.030, 0.050);
}

TEST(Runner, MeasureAlgorithmCollectsRepeats) {
  WorkloadConfig Config;
  Config.UpdatePercent = 50;
  Config.KeyRange = 32;
  Config.Threads = 1;
  Config.DurationMs = 10;
  Config.WarmupMs = 2;
  Config.Repeats = 3;
  const SampleStats Stats = measureAlgorithm("coarse", Config);
  EXPECT_EQ(Stats.count(), 3u);
  EXPECT_GT(Stats.mean(), 0.0);
}

TEST(Panel, MeansAndCsv) {
  Panel P("unit", {"a", "b"}, {1, 2});
  SampleStats SA, SB;
  SA.add(2e6);
  SB.add(1e6);
  P.setResult(1, "a", SA);
  P.setResult(1, "b", SB);
  EXPECT_DOUBLE_EQ(P.mean(1, "a"), 2e6);
  EXPECT_DOUBLE_EQ(P.mean(1, "b"), 1e6);

  CsvWriter Csv = Panel::makeCsv();
  P.appendCsv(Csv);
  EXPECT_EQ(Csv.numRows(), 2u) << "only filled cells are emitted";
}
