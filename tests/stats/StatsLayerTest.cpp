//===- tests/stats/StatsLayerTest.cpp - Observability layer units --------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Unit tests for src/stats: sharded counting, snapshot/delta algebra,
/// histogram bucketing, thread churn, and the VBL_STATS=0 contract.
/// Every test runs in both build modes — when the layer is compiled
/// out, the same assertions verify that bumps are no-ops and snapshots
/// stay empty, so the stats-off CI leg exercises this file unchanged.
///
//===----------------------------------------------------------------------===//

#include "stats/Stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

using namespace vbl;

TEST(StatsLayer, CounterAndHistogramNames) {
  // The names are the stable contract shared by the JSON schema, the
  // human-readable table and the docs; spot-check the catalogue.
  EXPECT_STREQ(stats::counterName(stats::Counter::ListTraversals),
               "list.traversals");
  EXPECT_STREQ(stats::counterName(stats::Counter::ListValueValidationAborts),
               "list.value_validation_aborts");
  EXPECT_STREQ(stats::counterName(stats::Counter::LockOptimisticRetries),
               "lock.optimistic_retries");
  EXPECT_STREQ(stats::counterName(stats::Counter::HpOrphanBacklog),
               "hp.orphan_backlog");
  EXPECT_STREQ(stats::counterName(stats::Counter::MapResizesLost),
               "map.resizes_lost");
  EXPECT_STREQ(stats::histogramName(stats::Histogram::TraversalHops),
               "hist.traversal_hops");
  EXPECT_STREQ(stats::histogramName(stats::Histogram::EpochLag),
               "hist.epoch_lag");
  // Every enumerator must have a distinct non-empty name.
  std::vector<std::string> Seen;
  for (size_t I = 0; I != stats::NumCounters; ++I) {
    const std::string Name =
        stats::counterName(static_cast<stats::Counter>(I));
    EXPECT_FALSE(Name.empty());
    for (const std::string &Other : Seen)
      EXPECT_NE(Name, Other);
    Seen.push_back(Name);
  }
}

TEST(StatsLayer, BumpAndDelta) {
  const stats::Snapshot Before = stats::snapshotAll();
  stats::bump(stats::Counter::ListRestarts);
  stats::bump(stats::Counter::ListCasFailures, 41);
  const stats::Snapshot Delta = stats::snapshotAll().delta(Before);
  if (stats::Enabled) {
    EXPECT_EQ(Delta.get(stats::Counter::ListRestarts), 1u);
    EXPECT_EQ(Delta.get(stats::Counter::ListCasFailures), 41u);
    EXPECT_EQ(Delta.get(stats::Counter::ListTrylockFailures), 0u);
    EXPECT_FALSE(Delta.empty());
  } else {
    EXPECT_TRUE(Delta.empty());
  }
}

TEST(StatsLayer, WrappingDeltaSupportsGauges) {
  // hp.orphan_backlog is the one up/down counter: down-counts are
  // wrapping additions, and delta subtracts the same way.
  const stats::Snapshot Before = stats::snapshotAll();
  stats::bump(stats::Counter::HpOrphanBacklog, 7);
  stats::bump(stats::Counter::HpOrphanBacklog, uint64_t(0) - 7);
  const stats::Snapshot Delta = stats::snapshotAll().delta(Before);
  EXPECT_EQ(Delta.get(stats::Counter::HpOrphanBacklog), 0u);
}

TEST(StatsLayer, HistogramBucketing) {
  // Bucket = bit_width(V) capped at 15; bucket 0 is exactly zero.
  EXPECT_EQ(stats::histogramBucket(0), 0u);
  EXPECT_EQ(stats::histogramBucket(1), 1u);
  EXPECT_EQ(stats::histogramBucket(2), 2u);
  EXPECT_EQ(stats::histogramBucket(3), 2u);
  EXPECT_EQ(stats::histogramBucket(4), 3u);
  EXPECT_EQ(stats::histogramBucket(7), 3u);
  EXPECT_EQ(stats::histogramBucket(8), 4u);
  EXPECT_EQ(stats::histogramBucket((1u << 14) - 1), 14u);
  EXPECT_EQ(stats::histogramBucket(1u << 14), 15u);
  EXPECT_EQ(stats::histogramBucket(~uint64_t(0)), 15u);

  const stats::Snapshot Before = stats::snapshotAll();
  stats::histogramAdd(stats::Histogram::EpochLag, 0);
  stats::histogramAdd(stats::Histogram::EpochLag, 1);
  stats::histogramAdd(stats::Histogram::EpochLag, 5);
  stats::histogramAdd(stats::Histogram::EpochLag, 5);
  const stats::Snapshot Delta = stats::snapshotAll().delta(Before);
  if (stats::Enabled) {
    const auto &H = Delta.hist(stats::Histogram::EpochLag);
    EXPECT_EQ(H[0], 1u);
    EXPECT_EQ(H[1], 1u);
    EXPECT_EQ(H[3], 2u);
    EXPECT_EQ(H[2], 0u);
  } else {
    EXPECT_TRUE(Delta.empty());
  }
}

TEST(StatsLayer, NoteTraversalBumpsAllThree) {
  const stats::Snapshot Before = stats::snapshotAll();
  stats::noteTraversal(6);
  stats::noteTraversal(0);
  const stats::Snapshot Delta = stats::snapshotAll().delta(Before);
  if (stats::Enabled) {
    EXPECT_EQ(Delta.get(stats::Counter::ListTraversals), 2u);
    EXPECT_EQ(Delta.get(stats::Counter::ListTraversalHops), 6u);
    const auto &H = Delta.hist(stats::Histogram::TraversalHops);
    EXPECT_EQ(H[0], 1u); // The empty traversal.
    EXPECT_EQ(H[3], 1u); // 6 has bit_width 3.
  } else {
    EXPECT_TRUE(Delta.empty());
  }
}

TEST(StatsLayer, CrossThreadFold) {
  constexpr unsigned Threads = 8;
  constexpr uint64_t PerThread = 10000;
  const stats::Snapshot Before = stats::snapshotAll();
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T != Threads; ++T)
    Workers.emplace_back([] {
      for (uint64_t I = 0; I != PerThread; ++I)
        stats::bump(stats::Counter::EpochRetired);
    });
  for (auto &W : Workers)
    W.join();
  const stats::Snapshot Delta = stats::snapshotAll().delta(Before);
  if (stats::Enabled)
    EXPECT_EQ(Delta.get(stats::Counter::EpochRetired),
              Threads * PerThread);
  else
    EXPECT_TRUE(Delta.empty());
}

TEST(StatsLayer, ThreadChurnLosesNothing) {
  // Shards are parked (unzeroed) on a freelist at thread exit: totals
  // must stay exact and monotonic across heavy thread churn, the
  // explorer's usage pattern.
  constexpr int Generations = 64;
  const stats::Snapshot Before = stats::snapshotAll();
  for (int G = 0; G != Generations; ++G) {
    std::thread Worker(
        [] { stats::bump(stats::Counter::EpochAdvances, 3); });
    Worker.join();
  }
  const stats::Snapshot Delta = stats::snapshotAll().delta(Before);
  if (stats::Enabled)
    EXPECT_EQ(Delta.get(stats::Counter::EpochAdvances),
              static_cast<uint64_t>(Generations) * 3);
  else
    EXPECT_TRUE(Delta.empty());
}

TEST(StatsLayer, RenderTableSkipsZeroRows) {
  stats::Snapshot S;
  EXPECT_TRUE(stats::renderTable(S).empty());
  S.Counters[static_cast<size_t>(stats::Counter::ListRestarts)] = 2;
  const std::string Table = stats::renderTable(S);
  EXPECT_NE(Table.find("list.restarts"), std::string::npos);
  EXPECT_EQ(Table.find("list.traversals"), std::string::npos);
}

TEST(StatsLayer, JsonFieldsAreWellFormed) {
  stats::Snapshot S;
  S.Counters[static_cast<size_t>(stats::Counter::ListCasFailures)] = 9;
  S.Histograms[static_cast<size_t>(stats::Histogram::EpochLag)][1] = 4;
  std::string Out;
  stats::appendJsonFields(S, Out);
  EXPECT_NE(Out.find("\"list.cas_failures\":9"), std::string::npos);
  EXPECT_NE(Out.find("\"hist.epoch_lag\":[0,4,0"), std::string::npos);
  // Parse-level sanity: a reader wrapping this in braces must get JSON.
  EXPECT_EQ(Out.front(), '"');
  EXPECT_EQ(std::count(Out.begin(), Out.end(), '['),
            std::count(Out.begin(), Out.end(), ']'));
}

TEST(StatsLayer, CompileOutContract) {
  // Documented contract either way: Enabled reflects VBL_STATS, and a
  // disabled layer yields empty snapshots no matter what ran before.
#if VBL_STATS
  EXPECT_TRUE(stats::Enabled);
#else
  EXPECT_FALSE(stats::Enabled);
  stats::bump(stats::Counter::ListRestarts, 1000);
  EXPECT_TRUE(stats::snapshotAll().empty());
#endif
}
