//===- tests/sync/VersionedLockTest.cpp - Versioned lock tests -----------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//

#include "sync/VersionedLock.h"

#include "core/VblList.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace vbl;

TEST(VersionedLock, VersionAdvancesPerCriticalSection) {
  VersionedLock Lock;
  const uint64_t V0 = Lock.version();
  Lock.lock();
  EXPECT_EQ(Lock.version(), V0 + 1);
  EXPECT_TRUE(Lock.isLocked());
  Lock.unlock();
  EXPECT_EQ(Lock.version(), V0 + 2);
  EXPECT_FALSE(Lock.isLocked());
}

TEST(VersionedLock, TryLockFailsWhenHeld) {
  VersionedLock Lock;
  ASSERT_TRUE(Lock.tryLock());
  EXPECT_FALSE(Lock.tryLock());
  Lock.unlock();
  EXPECT_TRUE(Lock.tryLock());
  Lock.unlock();
}

TEST(VersionedLock, OptimisticReadValidatesWhenQuiet) {
  VersionedLock Lock;
  const uint64_t V = Lock.readBegin();
  EXPECT_TRUE(Lock.readValidate(V));
}

TEST(VersionedLock, OptimisticReadInvalidatedByWriter) {
  VersionedLock Lock;
  const uint64_t V = Lock.readBegin();
  Lock.lock();
  Lock.unlock();
  EXPECT_FALSE(Lock.readValidate(V));
}

TEST(VersionedLock, ReadBeginSkipsHeldLock) {
  VersionedLock Lock;
  Lock.lock();
  std::atomic<bool> GotVersion{false};
  std::thread Reader([&] {
    const uint64_t V = Lock.readBegin(); // Must wait out the writer.
    EXPECT_EQ(V % 2, 0u);
    GotVersion.store(true, std::memory_order_release);
  });
  // Give the reader a moment; it must not return while locked.
  for (int I = 0; I != 1000; ++I)
    cpuRelax();
  EXPECT_FALSE(GotVersion.load(std::memory_order_acquire));
  Lock.unlock();
  Reader.join();
  EXPECT_TRUE(GotVersion.load());
}

TEST(VersionedLock, MutualExclusionCounter) {
  VersionedLock Lock;
  long Counter = 0;
  std::vector<std::thread> Threads;
  for (int T = 0; T != 4; ++T) {
    Threads.emplace_back([&] {
      for (int I = 0; I != 20000; ++I) {
        Lock.lock();
        ++Counter;
        Lock.unlock();
      }
    });
  }
  for (auto &Thread : Threads)
    Thread.join();
  EXPECT_EQ(Counter, 80000);
}

TEST(VersionedLock, OptimisticSnapshotOfPairIsAtomic) {
  // Writers keep X == Y under the lock; optimistic readers must never
  // validate a torn snapshot. The protected fields are relaxed atomics
  // (the seqlock-with-atomics pattern): ordering comes entirely from
  // the version protocol, and the accesses stay race-free by the
  // letter of the memory model (and under TSan).
  VersionedLock Lock;
  std::atomic<long> X{0}, Y{0};
  std::atomic<bool> Stop{false};
  std::atomic<bool> SawTorn{false};

  std::vector<std::thread> Readers;
  for (int T = 0; T != 2; ++T) {
    Readers.emplace_back([&] {
      while (!Stop.load(std::memory_order_acquire)) {
        const uint64_t V = Lock.readBegin();
        const long SnapX = X.load(std::memory_order_relaxed);
        const long SnapY = Y.load(std::memory_order_relaxed);
        if (Lock.readValidate(V) && SnapX != SnapY)
          SawTorn.store(true, std::memory_order_relaxed);
      }
    });
  }
  std::thread Writer([&] {
    for (int I = 0; I != 200000; ++I) {
      Lock.lock();
      X.store(X.load(std::memory_order_relaxed) + 1,
              std::memory_order_relaxed);
      Y.store(Y.load(std::memory_order_relaxed) + 1,
              std::memory_order_relaxed);
      Lock.unlock();
    }
    Stop.store(true, std::memory_order_release);
  });
  Writer.join();
  for (auto &Reader : Readers)
    Reader.join();
  EXPECT_FALSE(SawTorn.load());
  EXPECT_EQ(X.load(), Y.load());
}

TEST(VersionedLock, WorksAsVblNodeLock) {
  // Drop-in compatibility with the list's lock concept.
  VblList<reclaim::EpochDomain, DirectPolicy, VersionedLock> List;
  EXPECT_TRUE(List.insert(1));
  EXPECT_TRUE(List.insert(2));
  EXPECT_TRUE(List.remove(1));
  EXPECT_FALSE(List.contains(1));
  EXPECT_TRUE(List.contains(2));
  EXPECT_TRUE(List.checkInvariants());

  std::vector<std::thread> Threads;
  std::atomic<long> Balance{0};
  for (int T = 0; T != 4; ++T) {
    Threads.emplace_back([&, T] {
      Xoshiro256 Rng(T + 5);
      long Local = 0;
      for (int I = 0; I != 20000; ++I) {
        const SetKey Key = static_cast<SetKey>(Rng.nextBounded(16));
        if (Rng.nextPercent(50))
          Local += List.insert(Key);
        else
          Local -= List.remove(Key);
      }
      Balance.fetch_add(Local, std::memory_order_relaxed);
    });
  }
  for (auto &Thread : Threads)
    Thread.join();
  // Key 2 was already present before the concurrent phase.
  EXPECT_EQ(static_cast<long>(List.sizeSlow()), Balance.load() + 1);
  EXPECT_TRUE(List.checkInvariants());
}
