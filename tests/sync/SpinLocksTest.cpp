//===- tests/sync/SpinLocksTest.cpp - Lock primitive tests ---------------===//
//
// Part of the VBL project: a reproduction of "Optimal Concurrency for
// List-Based Sets" (PACT 2021).
//
//===----------------------------------------------------------------------===//
///
/// Typed tests: the same mutual-exclusion battery runs over every lock
/// the lists can be instantiated with.
///
//===----------------------------------------------------------------------===//

#include "sync/SpinLocks.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace vbl;

template <class LockT> class SpinLockTest : public ::testing::Test {};

using LockTypes = ::testing::Types<TasLock, TtasLock, TicketLock>;
TYPED_TEST_SUITE(SpinLockTest, LockTypes);

TYPED_TEST(SpinLockTest, InitiallyUnlocked) {
  TypeParam Lock;
  EXPECT_FALSE(Lock.isLocked());
}

TYPED_TEST(SpinLockTest, LockUnlockTogglesState) {
  TypeParam Lock;
  Lock.lock();
  EXPECT_TRUE(Lock.isLocked());
  Lock.unlock();
  EXPECT_FALSE(Lock.isLocked());
}

TYPED_TEST(SpinLockTest, TryLockSucceedsWhenFree) {
  TypeParam Lock;
  EXPECT_TRUE(Lock.tryLock());
  EXPECT_TRUE(Lock.isLocked());
  Lock.unlock();
}

TYPED_TEST(SpinLockTest, TryLockFailsWhenHeld) {
  TypeParam Lock;
  Lock.lock();
  EXPECT_FALSE(Lock.tryLock());
  Lock.unlock();
  EXPECT_TRUE(Lock.tryLock());
  Lock.unlock();
}

TYPED_TEST(SpinLockTest, MutualExclusionCounter) {
  TypeParam Lock;
  constexpr int NumThreads = 4;
  constexpr int Increments = 20000;
  long long Counter = 0; // Deliberately non-atomic: the lock protects it.

  std::vector<std::thread> Threads;
  for (int T = 0; T != NumThreads; ++T) {
    Threads.emplace_back([&] {
      for (int I = 0; I != Increments; ++I) {
        Lock.lock();
        ++Counter;
        Lock.unlock();
      }
    });
  }
  for (auto &Thread : Threads)
    Thread.join();
  EXPECT_EQ(Counter, static_cast<long long>(NumThreads) * Increments);
}

TYPED_TEST(SpinLockTest, TryLockMutualExclusion) {
  TypeParam Lock;
  constexpr int NumThreads = 4;
  long long Counter = 0;
  std::vector<std::thread> Threads;
  for (int T = 0; T != NumThreads; ++T) {
    Threads.emplace_back([&] {
      for (int Acquired = 0; Acquired != 5000;) {
        if (!Lock.tryLock())
          continue;
        ++Counter;
        ++Acquired;
        Lock.unlock();
      }
    });
  }
  for (auto &Thread : Threads)
    Thread.join();
  EXPECT_EQ(Counter, static_cast<long long>(NumThreads) * 5000);
}
